// Command ngend serves the reproduction's compile-and-execute pipeline
// as a long-running HTTP daemon: clients stage kernels, run them, and
// rerun the paper's figure sweeps as queued jobs with streamed
// progress. See docs/SERVER.md for the API and an operator runbook.
//
// Usage:
//
//	ngend [-addr :8035] [-workers N] [-queue N] [-machine name]
//	      [-backend name] [-cachedir dir] [-store dir] [-drain dur]
//	      [-resultcache] [-resultcache-mem MB] [-resultcache-disk MB]
//	      [-coalesce] [-resume] [-plan auto|off]
//
// The daemon prints "ngend: listening on <addr>" once the socket is
// bound, serves until SIGINT/SIGTERM, then drains in-flight jobs
// (bounded by -drain) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/backend/native" // registers the native execution backend
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8035", "HTTP listen address (\":0\" picks an ephemeral port)")
	workers := flag.Int("workers", 1, "job executor pool size")
	queue := flag.Int("queue", 16, "pending-job queue bound (full queue returns 429)")
	machine := flag.String("machine", "", "default microarchitecture (empty = Haswell, the paper's platform)")
	backend := flag.String("backend", "", "execution backend: vm (default) or native (falls back to vm with a notice when unavailable)")
	cachedir := flag.String("cachedir", "", "persistent compile cache directory (warm starts serve compile-free)")
	store := flag.String("store", "", "job store directory (jobs survive restarts; empty = in-memory only)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight jobs")
	resultcache := flag.Bool("resultcache", true, "serve repeated identical requests from the spec-keyed result cache")
	resultcacheMem := flag.Int64("resultcache-mem", 0, "result-cache memory budget in MB (0 = 64)")
	resultcacheDisk := flag.Int64("resultcache-disk", 0, "result-cache disk budget in MB under <cachedir>/results (0 = 256)")
	coalesce := flag.Bool("coalesce", true, "coalesce concurrent identical requests into one execution")
	resume := flag.Bool("resume", true, "resume interrupted sweeps from persisted checkpoints after a restart")
	planMode := flag.String("plan", "auto", "adaptive execution planner: auto (calibrate and pick the fastest backend/tier/lanes per kernel × size; plans persist under -cachedir) or off")
	flag.Parse()

	srv, err := server.New(server.Config{
		Addr:            *addr,
		Workers:         *workers,
		Queue:           *queue,
		Machine:         *machine,
		Backend:         *backend,
		CacheDir:        *cachedir,
		StoreDir:        *store,
		Drain:           *drain,
		ResultCache:     *resultcache,
		ResultCacheMem:  *resultcacheMem << 20,
		ResultCacheDisk: *resultcacheDisk << 20,
		Coalesce:        *coalesce,
		Resume:          *resume,
		Plan:            *planMode,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ngend:", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ngend:", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ngend: shutting down")

	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ngend: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("ngend: stopped")
}
