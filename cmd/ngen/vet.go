package main

import (
	"fmt"
	"os"

	"repro/internal/irverify"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// vetCmd statically verifies every registered kernel against every
// machine description in the database — the `go vet` of staged SIMD
// graphs. Kernel/machine pairs whose required ISA families are absent
// are skipped (mirroring Runtime.Compile's MissingISAs rejection);
// everything else runs the full irverify pass stack. The text report is
// deterministic; -json switches to one JSON line per diagnostic. A
// non-nil error (→ exit 1) is returned iff any error-severity
// diagnostic was found.
func vetCmd(jsonOut bool) error {
	targets := make([]irverify.VetTarget, 0, len(kernels.Targets()))
	for _, t := range kernels.Targets() {
		targets = append(targets, irverify.VetTarget{
			Name: t.Name, Requires: t.Requires, Build: t.Build,
		})
	}
	rep := irverify.Vet(targets, isa.Microarchs())
	if jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		rep.Render(os.Stdout)
	}
	if n := rep.Errors(); n > 0 {
		return fmt.Errorf("vet: %d error(s)", n)
	}
	return nil
}
