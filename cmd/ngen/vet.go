package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/irverify"
	"repro/internal/isa"
	"repro/internal/kernels"
)

// vetRun is the testable core of `ngen vet`: verify every target on
// every machine, render (text or JSON lines) to w, and return a non-nil
// error (→ exit 1) iff an error-severity diagnostic fired — or, under
// -strict, iff any warning survived its waivers. CI wants -strict; a
// developer mid-refactor usually does not.
func vetRun(targets []irverify.VetTarget, machines []*isa.Microarch, jsonOut, strict bool, w io.Writer) error {
	rep := irverify.Vet(targets, machines)
	if jsonOut {
		if err := rep.WriteJSON(w); err != nil {
			return err
		}
	} else {
		rep.Render(w)
	}
	if n := rep.Errors(); n > 0 {
		return fmt.Errorf("vet: %d error(s)", n)
	}
	if n := rep.Warnings(); strict && n > 0 {
		return fmt.Errorf("vet: %d warning(s) with -strict", n)
	}
	return nil
}

// vetCmd statically verifies every registered kernel against every
// machine description in the database — the `go vet` of staged SIMD
// graphs. Kernel/machine pairs whose required ISA families are absent
// are skipped (mirroring Runtime.Compile's MissingISAs rejection);
// everything else runs the full irverify pass stack. The text report is
// deterministic; -json switches to one JSON line per diagnostic;
// -strict promotes warnings to a failing exit.
func vetCmd(argv []string, globalJSON bool) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON lines instead of the text report")
	strict := fs.Bool("strict", false, "exit non-zero on warnings, not just errors")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	targets := make([]irverify.VetTarget, 0, len(kernels.Targets()))
	for _, t := range kernels.Targets() {
		targets = append(targets, irverify.VetTarget{
			Name: t.Name, Requires: t.Requires, Build: t.Build,
		})
	}
	return vetRun(targets, isa.Microarchs(), globalJSON || *jsonOut, *strict, os.Stdout)
}
