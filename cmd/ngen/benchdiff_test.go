package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func writeRecord(t *testing.T, dir, name string, rep bench.BenchReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := bench.WriteBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchdiffTrajectory checks the multi-record behaviors: every
// record gets a wall-time column, a regression in a non-final step
// does not fail the gate, and a regression on the newest step does.
func TestBenchdiffTrajectory(t *testing.T) {
	dir := t.TempDir()
	rec := func(sec float64) bench.BenchReport {
		return bench.BenchReport{"fig6a": {Seconds: sec, AllocsPerOp: 0.1, Ops: 1000}}
	}
	// Middle step regresses 50%, final step recovers: must pass.
	paths := []string{
		writeRecord(t, dir, "a.json", rec(1.0)),
		writeRecord(t, dir, "b.json", rec(1.5)),
		writeRecord(t, dir, "c.json", rec(1.0)),
	}
	var out strings.Builder
	if err := benchdiffCmd(paths, &out); err != nil {
		t.Fatalf("mid-series regression must not fail the gate: %v", err)
	}
	for _, col := range []string{"a.json", "b.json", "c.json", "1.00s", "1.50s"} {
		if !strings.Contains(out.String(), col) {
			t.Fatalf("trajectory output missing %q:\n%s", col, out.String())
		}
	}

	// Final step regresses beyond 10%: must fail.
	paths[2] = writeRecord(t, dir, "d.json", rec(2.0))
	out.Reset()
	err := benchdiffCmd(paths, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("newest-step regression must fail the gate, got %v", err)
	}
	if !strings.Contains(out.String(), "<< REGRESSION") {
		t.Fatalf("regression not marked in output:\n%s", out.String())
	}
}

// TestBenchdiffFigureChurn checks added/removed figures never fail.
func TestBenchdiffFigureChurn(t *testing.T) {
	dir := t.TempDir()
	old := bench.BenchReport{
		"fig6a": {Seconds: 1, AllocsPerOp: 0, Ops: 1},
		"fig7":  {Seconds: 1, AllocsPerOp: 0, Ops: 1},
	}
	novel := bench.BenchReport{
		"fig6a": {Seconds: 1, AllocsPerOp: 0, Ops: 1},
		"fig6b": {Seconds: 9, AllocsPerOp: 0, Ops: 1},
	}
	paths := []string{
		writeRecord(t, dir, "old.json", old),
		writeRecord(t, dir, "new.json", novel),
	}
	var out strings.Builder
	if err := benchdiffCmd(paths, &out); err != nil {
		t.Fatalf("figure churn must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "new figure") || !strings.Contains(out.String(), "figure removed") {
		t.Fatalf("churn not reported:\n%s", out.String())
	}
}

// TestBenchdiffTooFewRecords checks the arity guard.
func TestBenchdiffTooFewRecords(t *testing.T) {
	if err := benchdiffCmd([]string{"only.json"}, os.Stdout); err == nil {
		t.Fatal("single record must be rejected")
	}
}
