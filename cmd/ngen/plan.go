package main

// ngen plan — the execution planner's calibration tool. It compiles a
// set of registry kernels in auto mode with pruning disabled, drives
// each through representative size buckets until every plan calibrates,
// and prints the predicted-vs-measured strategy tables the planner
// decided from. With -cachedir the calibrated plans persist next to the
// compile cache, so a subsequent run (or ngen -auto / ngend) starts
// warm: the `plan probes: 0` line on a second run is the CI plancheck
// gate's evidence that persistence works. See docs/PLANNER.md.

import (
	"flag"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/plan"
	"repro/internal/vm"
)

// planTarget is one kernel the calibrator drives: how to stage it, the
// sizes spanning its interesting buckets, and how to build arguments.
type planTarget struct {
	name  string
	stage func(fs isa.FeatureSet) (*dsl.Kernel, error)
	sizes []int
	args  func(n int) []vm.Value
}

func planTargets() []planTarget {
	return []planTarget{
		{
			name:  "saxpy",
			stage: func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedSaxpy(fs), nil },
			sizes: []int{1 << 6, 1 << 12, 1 << 16},
			args: func(n int) []vm.Value {
				a := vm.PinF32(make([]float32, n))
				y := vm.PinF32(make([]float32, n))
				return []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(y, 0),
					vm.F32Value(2.5), vm.IntValue(n)}
			},
		},
		{
			name:  "mmm",
			stage: func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedMMM(fs), nil },
			sizes: []int{16, 64},
			args: func(n int) []vm.Value {
				a := vm.PinF32(make([]float32, n*n))
				b := vm.PinF32(make([]float32, n*n))
				c := vm.PinF32(make([]float32, n*n))
				return []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0),
					vm.PtrValue(c, 0), vm.IntValue(n)}
			},
		},
		{
			name:  "dot8",
			stage: func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedDot(8, fs) },
			sizes: []int{1 << 8, 1 << 14},
			args: func(n int) []vm.Value {
				a := vm.PinI8(make([]int8, n))
				b := vm.PinI8(make([]int8, n))
				return []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0),
					vm.F32Value(1), vm.IntValue(n)}
			},
		},
	}
}

// calibrateRounds bounds the invocations per size: install (1) plus a
// full probe sweep (≤4 candidates × default budget 2) fits well inside
// it, and warm keys exit on the calibration check after one call.
const calibrateRounds = 16

func planCmd(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	cachedir := fs.String("cachedir", "", "persistent cache directory; calibrated plans are stored and reloaded here")
	check := fs.Bool("check", false, "verify every plan calibrates and its chosen strategy is the measured argmin (exit 1 otherwise)")
	par := fs.Int("par", runtime.NumCPU(), "lane budget for the parallel candidate (≤1 disables it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := planTargets()
	if fs.NArg() > 0 {
		byName := map[string]planTarget{}
		for _, t := range targets {
			byName[t.name] = t
		}
		targets = targets[:0]
		for _, name := range fs.Args() {
			t, ok := byName[name]
			if !ok {
				return fmt.Errorf("plan: unknown kernel %q (have saxpy, mmm, dot8)", name)
			}
			targets = append(targets, t)
		}
	}

	rt := core.DefaultRuntime()
	rt.Machine.Workers = *par
	if *cachedir != "" {
		d, err := core.OpenDiskCache(*cachedir, 0)
		if err != nil {
			return err
		}
		rt.Disk = d
	}

	// Eager native builds on a fork: auto mode never pays a toolchain
	// run mid-measurement (backend.CachedCompiler admits cache hits
	// only), so the calibrator builds the plugins up front. Hosts
	// without the native backend calibrate the interpreter tiers alone.
	nrt := rt.Fork()
	if err := nrt.UseBackend("native"); err != nil {
		fmt.Printf("plan: native backend unavailable (%v); calibrating vm tiers only\n", err)
	} else {
		for _, t := range targets {
			k, err := t.stage(rt.Arch.Features)
			if err != nil {
				return err
			}
			if _, err := nrt.Compile(k); err != nil {
				return fmt.Errorf("plan: native build of %s: %w", t.name, err)
			}
		}
	}

	// ExploreAll: the calibration tool probes every admissible
	// candidate so the table shows a measured column for each row.
	rt.EnableAutoPlanWith(plan.Config{ExploreAll: true})

	for _, t := range targets {
		k, err := t.stage(rt.Arch.Features)
		if err != nil {
			return err
		}
		kn, err := rt.Compile(k)
		if err != nil {
			return err
		}
		kernel := kn.Func().Name
		for _, n := range t.sizes {
			callArgs := t.args(n)
			for i := 0; i < calibrateRounds; i++ {
				if _, err := kn.CallValues(callArgs...); err != nil {
					return err
				}
				if i > 0 && allCalibrated(rt.Planner.KernelViews(kernel)) {
					break
				}
			}
		}
		printPlanTable(kernel, rt.Planner.KernelViews(kernel))
		if *check {
			if err := checkViews(kernel, rt.Planner.KernelViews(kernel)); err != nil {
				return err
			}
		}
	}

	st := rt.Planner.Stats()
	fmt.Printf("plan probes: %d (plans %d, installs %d, loaded %d, persisted %d, mispredicts %d)\n",
		st["probes"], len(rt.Planner.Snapshot()), st["installs"],
		st["loads"], st["persists"], st["mispredict"])
	return nil
}

func allCalibrated(views []plan.View) bool {
	if len(views) == 0 {
		return false
	}
	for _, v := range views {
		if !v.Calibrated {
			return false
		}
	}
	return true
}

// printPlanTable renders one kernel's plans: a block per size bucket
// with the full candidate table, the chosen row starred.
func printPlanTable(kernel string, views []plan.View) {
	fmt.Printf("plan: %s\n%s\n", kernel, strings.Repeat("=", len("plan: ")+len(kernel)))
	for _, v := range views {
		state := "calibrating"
		if v.Calibrated {
			state = "calibrated"
		}
		fmt.Printf("bucket %d (≲%s working set, arch %s) — %s\n",
			v.Bucket, bucketBytes(v.Bucket), v.Arch, state)
		fmt.Printf("  %-1s %-16s %12s %12s %7s\n", "", "strategy", "pred ns", "meas ns", "probes")
		for _, c := range v.Candidates {
			mark := " "
			if c.Spec.String() == v.Spec {
				mark = "*"
			}
			meas := "-"
			if c.Probes > 0 {
				meas = fmt.Sprintf("%.0f", c.MeasNs)
			}
			note := ""
			if c.Pruned {
				note = "  (pruned)"
			}
			fmt.Printf("  %-1s %-16s %12.0f %12s %7d%s\n",
				mark, c.Spec.String(), c.PredNs, meas, c.Probes, note)
		}
	}
}

// checkViews is -check: every bucket calibrated, the chosen strategy
// must be the measured argmin of its candidate table, and it must beat
// the worst candidate by a damped share of the margin the model itself
// predicted — a planner whose "choice" runs no faster than the worst
// strategy has not planned anything.
func checkViews(kernel string, views []plan.View) error {
	if len(views) == 0 {
		return fmt.Errorf("plan check: %s produced no plans", kernel)
	}
	for _, v := range views {
		if !v.Calibrated {
			return fmt.Errorf("plan check: %s bucket %d never calibrated", kernel, v.Bucket)
		}
		best, worstMeas, worstPred := -1.0, -1.0, v.PredNs
		for _, c := range v.Candidates {
			if c.PredNs > worstPred {
				worstPred = c.PredNs
			}
			if c.Probes == 0 {
				continue
			}
			if best < 0 || c.MeasNs < best {
				best = c.MeasNs
			}
			if c.MeasNs > worstMeas {
				worstMeas = c.MeasNs
			}
		}
		if best < 0 {
			return fmt.Errorf("plan check: %s bucket %d has no measured candidate", kernel, v.Bucket)
		}
		if v.MeasNs > best {
			return fmt.Errorf("plan check: %s bucket %d chose %s at %.0fns but a candidate measured %.0fns",
				kernel, v.Bucket, v.Spec, v.MeasNs, best)
		}
		// The model's own margin: predicted worst over the chosen
		// candidate's prediction. Require the measured win to preserve
		// a quarter of it — loose enough for timing noise, tight enough
		// to fail a planner that picks no better than the worst. Skipped
		// when the model predicted no meaningful spread (<10%).
		if modelMargin := worstPred / v.PredNs; modelMargin > 1.10 {
			required := 1 + (modelMargin-1)*0.25
			if got := worstMeas / v.MeasNs; got < required {
				return fmt.Errorf("plan check: %s bucket %d chose %s but beat the worst candidate only %.2fx (model margin %.2fx requires ≥%.2fx)",
					kernel, v.Bucket, v.Spec, got, modelMargin, required)
			}
		}
	}
	return nil
}

// bucketBytes renders a bucket index as its upper byte bound.
func bucketBytes(b int) string {
	bytes := int64(1) << uint(b+1)
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
