package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/conform"
	"repro/internal/obs"
)

// conformCmd runs the grammar-driven conformance suite: generated
// kernels (plus ill-formed mutants) are pushed through the verifier
// and every execution backend against the scalar reference oracle.
// Exit is non-zero iff any case missed, misclassified, diverged or was
// unsoundly accepted.
func conformCmd(argv []string, globalJSON bool) error {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "generator seed (same seed, same cases)")
	count := fs.Int("count", 200, "number of generated cases")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	metrics := fs.Bool("metrics", false, "print the conform.* counters as JSON after the report")
	nativeEvery := fs.Int("native-every", 0,
		"run the native backend on every k-th executed case (0 = default, negative = never)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	rep, err := conform.Run(conform.Options{
		Seed:        *seed,
		Count:       *count,
		NativeEvery: *nativeEvery,
		Log:         os.Stderr,
	})
	if err != nil {
		return err
	}
	if globalJSON || *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		rep.Render(os.Stdout)
	}
	if *metrics {
		reg := obs.NewRegistry()
		rep.Publish(reg)
		if err := reg.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if n := rep.Bad(); n > 0 {
		return fmt.Errorf("conform: %d failure(s)", n)
	}
	return nil
}
