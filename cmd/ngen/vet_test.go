package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/irverify"
	"repro/internal/isa"
)

// cleanTarget builds a kernel that verifies with no diagnostics at all:
// unaligned loads/stores, mutable dst, every lane value consumed.
func cleanTarget() irverify.VetTarget {
	return irverify.VetTarget{
		Name:     "vet_clean",
		Requires: []isa.Family{isa.AVX},
		Build: func(fs isa.FeatureSet) (*ir.Func, error) {
			k := dsl.NewKernel("vet_clean", fs)
			dst := dsl.Mutable(k, k.ParamF32Ptr())
			src := k.ParamF32Ptr()
			n := k.ParamInt()
			k.For(k.ConstInt(0), n, 8, func(i dsl.Int) {
				v := k.MM256LoaduPs(src, i)
				k.MM256StoreuPs(dst, i, k.MM256AddPs(v, v))
			})
			return k.F, nil
		},
	}
}

// warnTarget builds a kernel that draws exactly one warning: an aligned
// load through a pointer that carries no alignment fact. It is
// otherwise well-formed, so only -strict should turn it into a failure.
func warnTarget() irverify.VetTarget {
	return irverify.VetTarget{
		Name:     "vet_warn",
		Requires: []isa.Family{isa.AVX},
		Build: func(fs isa.FeatureSet) (*ir.Func, error) {
			k := dsl.NewKernel("vet_warn", fs)
			dst := dsl.Mutable(k, k.ParamF32Ptr())
			src := k.ParamF32Ptr() // deliberately no dsl.Aligned fact
			n := k.ParamInt()
			k.For(k.ConstInt(0), n, 8, func(i dsl.Int) {
				v := k.MM256LoadPs(src, i)
				k.MM256StoreuPs(dst, i, k.MM256AddPs(v, v))
			})
			return k.F, nil
		},
	}
}

// TestVetRunExitPaths pins the contract of the -strict flag: warnings
// never fail a default run, always fail a strict run, and a clean
// report passes both ways.
func TestVetRunExitPaths(t *testing.T) {
	machines := []*isa.Microarch{isa.Haswell}

	t.Run("clean/default", func(t *testing.T) {
		var buf bytes.Buffer
		if err := vetRun([]irverify.VetTarget{cleanTarget()}, machines, false, false, &buf); err != nil {
			t.Fatalf("clean target failed default vet: %v\n%s", err, buf.String())
		}
	})
	t.Run("clean/strict", func(t *testing.T) {
		var buf bytes.Buffer
		if err := vetRun([]irverify.VetTarget{cleanTarget()}, machines, false, true, &buf); err != nil {
			t.Fatalf("clean target failed strict vet: %v\n%s", err, buf.String())
		}
	})
	t.Run("warning/default", func(t *testing.T) {
		var buf bytes.Buffer
		if err := vetRun([]irverify.VetTarget{warnTarget()}, machines, false, false, &buf); err != nil {
			t.Fatalf("warning failed a non-strict vet (warnings must not gate by default): %v", err)
		}
		if !strings.Contains(buf.String(), "align") {
			t.Errorf("report does not mention the align warning:\n%s", buf.String())
		}
	})
	t.Run("warning/strict", func(t *testing.T) {
		var buf bytes.Buffer
		err := vetRun([]irverify.VetTarget{warnTarget()}, machines, false, true, &buf)
		if err == nil {
			t.Fatalf("warning survived -strict with exit 0:\n%s", buf.String())
		}
		if !strings.Contains(err.Error(), "warning") {
			t.Errorf("strict failure should blame warnings, got: %v", err)
		}
	})
}

// TestVetRunJSON checks the machine-readable surface: one JSON line per
// diagnostic, carrying the pass name.
func TestVetRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := vetRun([]irverify.VetTarget{warnTarget()}, []*isa.Microarch{isa.Haswell}, true, false, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"pass"`) || !strings.Contains(buf.String(), "align") {
		t.Errorf("JSON output missing align diagnostic:\n%s", buf.String())
	}
}
