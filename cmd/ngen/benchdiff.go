package main

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bench"
)

// slowdownTolerance is the per-figure wall-time regression benchdiff
// tolerates before failing: CI runs on shared machines, so small
// deltas are noise, but a >10% slowdown on any figure is a real
// regression the PR must explain.
const slowdownTolerance = 0.10

// benchdiffCmd compares two benchjson records figure by figure and
// returns an error (→ exit 1) when any figure present in both runs got
// more than slowdownTolerance slower. Figures missing from either side
// are reported but never fail the diff — a PR may add or retire a
// figure legitimately.
func benchdiffCmd(oldPath, newPath string, w io.Writer) error {
	oldRep, err := bench.ReadBenchJSON(oldPath)
	if err != nil {
		return fmt.Errorf("benchdiff: %w", err)
	}
	newRep, err := bench.ReadBenchJSON(newPath)
	if err != nil {
		return fmt.Errorf("benchdiff: %w", err)
	}

	names := map[string]bool{}
	for name := range oldRep {
		names[name] = true
	}
	for name := range newRep {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "benchdiff: %s → %s\n", oldPath, newPath)
	fmt.Fprintf(w, "  %-8s %10s %10s %8s %12s %12s\n",
		"figure", "old(s)", "new(s)", "Δtime", "old all/op", "new all/op")
	var regressions []string
	for _, name := range sorted {
		o, haveOld := oldRep[name]
		n, haveNew := newRep[name]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "  %-8s %10s %10.2f %8s (new figure)\n", name, "-", n.Seconds, "-")
		case !haveNew:
			fmt.Fprintf(w, "  %-8s %10.2f %10s %8s (figure removed)\n", name, o.Seconds, "-", "-")
		default:
			delta := (n.Seconds - o.Seconds) / o.Seconds
			mark := ""
			if delta > slowdownTolerance {
				mark = "  << REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2fs → %.2fs (%+.1f%%)", name, o.Seconds, n.Seconds, 100*delta))
			}
			fmt.Fprintf(w, "  %-8s %10.2f %10.2f %+7.1f%% %12.4f %12.4f%s\n",
				name, o.Seconds, n.Seconds, 100*delta, o.AllocsPerOp, n.AllocsPerOp, mark)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchdiff: %d figure(s) regressed beyond %.0f%%: %v",
			len(regressions), 100*slowdownTolerance, regressions)
	}
	return nil
}
