package main

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/bench"
)

// slowdownTolerance is the per-figure wall-time regression benchdiff
// tolerates on the newest step before failing: CI runs on shared
// machines, so small deltas are noise, but a >10% slowdown on any
// figure is a real regression the PR must explain.
const slowdownTolerance = 0.10

// benchdiffCmd compares a series of benchjson records (oldest first)
// figure by figure. Two records give the classic pairwise diff; more
// print the full per-PR trajectory, one wall-time column per record,
// so a slow creep across PRs is visible even when every single step
// stays inside the tolerance. The failure gate is unchanged either
// way: only the newest step (last record vs the one before it) can
// fail, and only when a figure present in both got more than
// slowdownTolerance slower. Figures missing from either side of the
// gate are reported but never fail — a PR may add or retire a figure
// legitimately.
func benchdiffCmd(paths []string, w io.Writer) error {
	if len(paths) < 2 {
		return fmt.Errorf("benchdiff: need at least two records, got %d", len(paths))
	}
	reports := make([]bench.BenchReport, len(paths))
	for i, path := range paths {
		rep, err := bench.ReadBenchJSON(path)
		if err != nil {
			return fmt.Errorf("benchdiff: %w", err)
		}
		reports[i] = rep
	}

	names := map[string]bool{}
	for _, rep := range reports {
		for name := range rep {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	// Header: one wall-time column per record, labeled by file name.
	fmt.Fprintf(w, "benchdiff: trajectory over %d records\n", len(paths))
	fmt.Fprintf(w, "  %-8s", "figure")
	for _, path := range paths {
		fmt.Fprintf(w, " %14s", filepath.Base(path))
	}
	fmt.Fprintf(w, " %8s %12s\n", "Δlast", "allocs/op")

	oldRep, newRep := reports[len(reports)-2], reports[len(reports)-1]
	var regressions []string
	for _, name := range sorted {
		fmt.Fprintf(w, "  %-8s", name)
		for _, rep := range reports {
			if st, ok := rep[name]; ok {
				fmt.Fprintf(w, " %13.2fs", st.Seconds)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		o, haveOld := oldRep[name]
		n, haveNew := newRep[name]
		switch {
		case !haveNew:
			fmt.Fprintf(w, " %8s (figure removed)\n", "-")
		case !haveOld:
			fmt.Fprintf(w, " %8s %12.4f (new figure)\n", "-", n.AllocsPerOp)
		default:
			delta := (n.Seconds - o.Seconds) / o.Seconds
			mark := ""
			if delta > slowdownTolerance {
				mark = "  << REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2fs → %.2fs (%+.1f%%)", name, o.Seconds, n.Seconds, 100*delta))
			}
			fmt.Fprintf(w, " %+7.1f%% %12.4f%s\n", 100*delta, n.AllocsPerOp, mark)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchdiff: %d figure(s) regressed beyond %.0f%% on the newest step: %v",
			len(regressions), 100*slowdownTolerance, regressions)
	}
	return nil
}
