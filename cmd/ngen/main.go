// Command ngen runs the reproduction's experiments and prints the
// paper's tables and figures as text series. Experiment ids match
// DESIGN.md's per-experiment index.
//
// Usage:
//
//	ngen platform            # Appendix A.4's TestPlatform
//	ngen table1b             # intrinsic counts per ISA
//	ngen table3              # spec versions and generator robustness
//	ngen fig6a [-quick]      # SAXPY, Java vs LMS
//	ngen fig6b [-quick]      # MMM, triple/blocked Java vs LMS
//	ngen fig7  [-quick]      # variable-precision dot products
//	ngen speedups [-quick]   # headline "up to N×" factors
//	ngen warmup              # tiered-compilation trace (interpreter → C1 → C2)
//	ngen vet [-json] [-strict]
//	                         # statically verify every registered kernel on
//	                         # every machine description (irverify pass stack);
//	                         # exits 1 if any error-severity diagnostic fires,
//	                         # and with -strict also on unwaived warnings
//	ngen conform [-seed N] [-count N] [-json] [-metrics] [-native-every N]
//	                         # grammar-driven conformance suite: generate
//	                         # well-typed kernels plus ill-formed mutants,
//	                         # cross-check the verifier's verdicts, and run
//	                         # accepted kernels differentially (scalar oracle
//	                         # vs vm plain/opt/parallel vs native backend);
//	                         # exits 1 on any divergence, unsound accept, or
//	                         # missed/misclassified defect (docs/VERIFIER.md)
//	ngen plan [kernel...]    # calibrate the adaptive execution planner on
//	                         # registry kernels (default saxpy, mmm, dot8)
//	                         # and print the predicted-vs-measured strategy
//	                         # tables; -cachedir persists plans (a second
//	                         # run reports `plan probes: 0`), -check exits 1
//	                         # unless every plan calibrates on its measured
//	                         # argmin (docs/PLANNER.md)
//	ngen benchjson [out]     # run the figure sweeps and write the
//	                         # machine-readable benchmark record
//	                         # (-o out, default BENCH_pr<n>.json from -pr)
//	ngen benchdiff a b [...] # compare a series of benchjson records per
//	                         # figure (oldest first): prints the per-PR
//	                         # wall-time trajectory; exits 1 when any
//	                         # figure runs >10% slower on the newest step
//	ngen all   [-quick]      # everything
//	ngen stats [experiment]  # run an experiment (default: -quick fig6a), then
//	                         # print per-stage time totals, compile-cache and
//	                         # frame-pool statistics, and top op counters
//
// Observability (see docs/OBSERVABILITY.md):
//
//	-trace out.trace         # write a Chrome trace_event file of the run
//	                         # (load in about://tracing or ui.perfetto.dev)
//	-metrics                 # print the metrics registry as JSON after the run
//
// Execution tiers (see docs/PARALLEL.md and docs/BACKENDS.md):
//
//	-par N                   # lane budget for the parallel loop tier
//	                         # (default NumCPU; ≤1 forces every loop serial).
//	                         # Results are byte-identical at any setting.
//	-backend native          # compile kernels to Go plugins and run them
//	                         # natively; unavailable hosts fall back to the
//	                         # vm interpreter with a notice, results identical
//	-auto                    # adaptive execution planner: per kernel × size
//	                         # bucket, predict, calibrate and auto-select the
//	                         # fastest (backend, tier, lanes); figure output
//	                         # stays byte-identical (docs/PLANNER.md)
//	-cachedir dir            # persistent compile cache: cold runs fill it,
//	                         # warm runs perform zero graph compiles and
//	                         # print a cachepersist summary line
//
// Without these flags experiment output is byte-identical to an
// uninstrumented build: the tracer and registry stay nil and every
// instrumentation point is an allocation-free no-op.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	_ "repro/internal/backend/native" // registers the native execution backend
	"repro/internal/bench"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/hotspot"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/xmlspec"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ngen [-quick] [-O=false] [-par N] [-auto] [-backend name] [-cachedir dir] [-trace file] [-metrics] {platform|warmup|cache|slp|vet [-json] [-strict]|conform [-seed N] [-count N] [-json]|plan [-cachedir dir] [-check] [kernel...]|benchdiff oldest.json [...] newest.json|table1b|table3|fig6a|fig6b|fig7|speedups|benchjson [-o out]|all|stats [experiment]}")
		flag.PrintDefaults()
	}
	quick := flag.Bool("quick", false, "smaller size sweeps (fast smoke run)")
	optimize := flag.Bool("O", true, "kernelc loop-nest optimizer (-O=false runs the plain interpreter tier)")
	backendName := flag.String("backend", "", "execution backend: vm (interpreter, default), native (plugin-compiled Go; falls back to vm with a notice when unavailable), or auto (adaptive planner)")
	auto := flag.Bool("auto", false, "adaptive execution planner: calibrate and auto-select the fastest backend/tier/lanes per kernel × size (results byte-identical; see docs/PLANNER.md)")
	workers := flag.Int("j", runtime.NumCPU(), "sweep worker goroutines (size points run in parallel)")
	par := flag.Int("par", runtime.NumCPU(), "parallel loop lanes per kernel execution (≤1 keeps every loop on the serial driver)")
	cachedir := flag.String("cachedir", "", "persistent compile cache directory (cold runs fill it; warm runs skip graph compiles)")
	benchOut := flag.String("o", "", "benchjson: output path (overrides the positional argument)")
	prNum := flag.Int("pr", 6, "benchjson: PR number behind the default BENCH_pr<n>.json filename")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this file")
	metrics := flag.Bool("metrics", false, "print the metrics registry as JSON after the run")
	jsonOut := flag.Bool("json", false, "vet: emit diagnostics as JSON lines instead of the text report")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}
	if cmd == "vet" {
		// vet needs no benchmark suite, runtime or observability: it is
		// pure static analysis over freshly staged graphs. Subcommand
		// flags (-json, -strict) are parsed from the remaining args
		// (global flag parsing stops at `vet`); a global -json before
		// the subcommand is honoured too.
		if err := vetCmd(flag.Args()[1:], *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "ngen:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "conform" {
		// conform generates its own kernels and runtimes; like vet it
		// bypasses the benchmark suite. Flags follow the subcommand.
		if err := conformCmd(flag.Args()[1:], *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "ngen:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "plan" {
		// plan builds its own auto-mode runtime (pruning off, eager
		// native builds); flags follow the subcommand.
		if err := planCmd(flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "ngen:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "benchdiff" {
		// benchdiff compares a series of benchjson records; like vet it
		// needs no suite or runtime.
		if flag.NArg() < 3 {
			fmt.Fprintln(os.Stderr, "usage: ngen benchdiff oldest.json [...] newest.json")
			os.Exit(2)
		}
		if err := benchdiffCmd(flag.Args()[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ngen:", err)
			os.Exit(1)
		}
		return
	}
	statsCmd := cmd == "stats"
	target := cmd
	if statsCmd {
		target = flag.Arg(1)
		if target == "" {
			// Bare `ngen stats`: profile a quick SAXPY sweep.
			target = "fig6a"
			*quick = true
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ngen:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ngen:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// Observability is opt-in: without these flags the tracer and
	// registry stay nil, instrumentation no-ops, and experiment output
	// is byte-identical to an unobserved run.
	var tr *obs.Tracer
	var reg *obs.Registry
	if *traceFile != "" || *metrics || statsCmd {
		tr = obs.New()
		reg = obs.NewRegistry()
	}
	inspect := tr.Start("ngen.inspect")
	s := bench.NewSuite()
	inspect.End()
	if !*optimize {
		s.RT.Opt = kernelc.TierPlain
	}
	s.Attach(tr, reg)
	s.Workers = *workers
	s.RT.Machine.Workers = *par
	if *cachedir != "" {
		d, derr := core.OpenDiskCache(*cachedir, 0)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "ngen:", derr)
			os.Exit(1)
		}
		s.RT.Disk = d
	}
	if *backendName != "" && *backendName != "vm" {
		// Backend selection degrades gracefully: an unavailable backend
		// (no toolchain, unsupported OS, race build) prints why and the
		// run proceeds on the interpreter with identical results.
		if berr := s.RT.UseBackend(*backendName); berr != nil {
			fmt.Fprintf(os.Stderr, "ngen: backend %q unavailable, running on vm: %v\n",
				*backendName, berr)
		} else {
			fmt.Printf("backend: %s\n", *backendName)
		}
	}
	if *auto {
		s.RT.EnableAutoPlan()
		fmt.Println("planner: auto (backend/tier/lanes per kernel × size)")
	}
	if *quick {
		s.MaxRunLinear = 1 << 11
		s.MaxRunCubic = 32
		s.Reps = 1
	}

	if cmd == "benchjson" {
		if *benchOut == "" && flag.Arg(1) != "" {
			*benchOut = flag.Arg(1)
		}
		if *benchOut == "" {
			*benchOut = fmt.Sprintf("BENCH_pr%d.json", *prNum)
		}
	}

	root := tr.Start("ngen." + target)
	err := run(s, target, *quick, *benchOut)
	root.End()

	if err == nil && s.RT.Planner != nil {
		// The planner summary mirrors the cachepersist line: warm runs
		// (plans loaded from the cachedir) must report zero probes.
		ps := s.RT.Planner.Stats()
		fmt.Printf("plan: %d plans (%d calibrated), %d decisions, %d probes, %d mispredicts, %d loaded, %d persisted\n",
			len(s.RT.Planner.Snapshot()), ps["calibrated"], ps["decisions"],
			ps["probes"], ps["mispredict"], ps["loads"], ps["persists"])
	}
	if err == nil && s.RT.Disk != nil {
		// The cachepersist CI gate greps this line: a warm cache must
		// report zero graph compiles.
		ds := s.RT.Disk.Stats()
		fmt.Printf("cachepersist: %d disk hits, %d misses, %d stores, %d corrupt, %d evicted; graph compiles: %d\n",
			ds.Hits, ds.Misses, ds.Stores, ds.Corrupt, ds.Evictions, core.FullCompiles())
	}

	if err == nil && *traceFile != "" {
		if werr := writeTrace(tr, *traceFile); werr != nil {
			err = werr
		}
	}
	if err == nil && statsCmd {
		printStats(s, tr, reg)
	}
	if err == nil && *metrics {
		s.PublishMetrics()
		if werr := reg.WriteJSON(os.Stdout); werr != nil {
			err = werr
		}
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "ngen:", merr)
			os.Exit(1)
		}
		runtime.GC()
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "ngen:", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintln(os.Stderr, "ngen:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the recorded spans in Chrome trace_event format.
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStats renders the operator report: where the time went
// (per-stage totals aggregated over the trace), cache and frame-pool
// effectiveness, and the heaviest dynamic op counters.
func printStats(s *bench.Suite, tr *obs.Tracer, reg *obs.Registry) {
	s.PublishMetrics()
	snap := reg.Snapshot()

	fmt.Println()
	fmt.Println("ngen stats")
	fmt.Println("==========")

	// Collapse indexed spans (point#0, point#1, …) into one row each.
	agg := map[string]*obs.StageTotal{}
	var order []string
	for _, st := range tr.Totals() {
		name := st.Name
		if i := strings.IndexByte(name, '#'); i >= 0 {
			name = name[:i]
		}
		a, ok := agg[name]
		if !ok {
			a = &obs.StageTotal{Name: name}
			agg[name] = a
			order = append(order, name)
		}
		a.Count += st.Count
		a.Total += st.Total
	}
	sort.SliceStable(order, func(i, j int) bool {
		return agg[order[i]].Total > agg[order[j]].Total
	})
	fmt.Println("Per-stage totals (aggregated over the trace):")
	fmt.Printf("  %-28s %8s %14s %14s\n", "stage", "count", "total", "mean")
	for _, name := range order {
		st := agg[name]
		fmt.Printf("  %-28s %8d %14s %14s\n", st.Name, st.Count,
			st.Total.Round(time.Microsecond),
			(st.Total / time.Duration(st.Count)).Round(time.Microsecond))
	}
	fmt.Printf("  trace coverage: %.1f%% of %s wall\n",
		100*tr.Coverage(), tr.Wall().Round(time.Millisecond))

	cs := s.RT.CacheStats()
	fmt.Printf("Compile cache:  %d hits, %d misses, %d entries, %d deduped in flight (%d full compiles)\n",
		cs.Hits, cs.Misses, cs.Entries, cs.Deduped, core.FullCompiles())
	if s.RT.Disk != nil {
		ds := s.RT.Disk.Stats()
		fmt.Printf("Disk cache:     %d hits, %d misses, %d stores, %d corrupt, %d evicted (%s)\n",
			ds.Hits, ds.Misses, ds.Stores, ds.Corrupt, ds.Evictions, s.RT.Disk.Dir())
	}
	if eligible, runs, fallbacks, chunks, steals := kernelc.ParStats(); eligible > 0 {
		fmt.Printf("Parallel tier:  %d eligible loops, %d sharded runs, %d serial fallbacks, %d chunks (%d stolen)\n",
			eligible, runs, fallbacks, chunks, steals)
	}
	gets, news := kernelc.PoolStats()
	hitRate := 0.0
	if gets > 0 {
		hitRate = 100 * float64(gets-news) / float64(gets)
	}
	fmt.Printf("Frame pool:     %d checkouts, %d fresh allocations (%.1f%% recycled)\n",
		gets, news, hitRate)
	if w := snap.Gauges["bench.sweep.workers"]; w > 0 {
		fmt.Printf("Sweep workers:  %d (last sweep), %d points measured\n",
			w, snap.Counters["bench.points"])
	}

	// Heaviest dynamic ops across all sweeps and validation runs.
	type opCount struct {
		op string
		n  int64
	}
	var ops []opCount
	for name, v := range snap.Gauges {
		if op, ok := strings.CutPrefix(name, "vm.op."); ok {
			ops = append(ops, opCount{op, v})
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].n != ops[j].n {
			return ops[i].n > ops[j].n
		}
		return ops[i].op < ops[j].op
	})
	if len(ops) > 12 {
		ops = ops[:12]
	}
	fmt.Println("Top dynamic op counts:")
	for _, oc := range ops {
		fmt.Printf("  %-28s %14d\n", oc.op, oc.n)
	}
}

func run(s *bench.Suite, cmd string, quick bool, benchOut string) error {
	switch cmd {
	case "platform":
		fmt.Println(s.RT.SystemReport())
		return nil
	case "table1b":
		return table1b()
	case "table3":
		return table3()
	case "fig6a":
		return fig6a(s, quick)
	case "fig6b":
		return fig6b(s, quick)
	case "fig7":
		return fig7(s, quick)
	case "speedups":
		return speedups(s, quick)
	case "warmup":
		return warmup()
	case "cache":
		return cacheValidate(s)
	case "slp":
		return slpReports()
	case "benchjson":
		return benchJSON(s, quick, benchOut)
	case "all":
		for _, f := range []func() error{
			func() error { fmt.Println(s.RT.SystemReport()); return nil },
			table1b, table3,
			func() error { return fig6a(s, quick) },
			func() error { return fig6b(s, quick) },
			func() error { return fig7(s, quick) },
			func() error { return speedups(s, quick) },
			warmup,
			func() error { return cacheValidate(s) },
			slpReports,
		} {
			if err := f(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

func table1b() error {
	f := xmlspec.Generate(xmlspec.Latest())
	rs, errs := xmlspec.Resolve(f)
	st := xmlspec.ComputeStats(f.Version, rs, len(errs))
	fmt.Println("Table 1b — x86 SIMD intrinsics per ISA (spec data-" + f.Version + ".xml)")
	fmt.Println(st.Table1b())
	fmt.Println("Categories (Table 1a taxonomy):")
	fmt.Println(st.CategoryTable())
	return nil
}

func table3() error {
	fmt.Println("Table 3 — Intel Intrinsics Guide XML specifications")
	fmt.Printf("%-12s %-12s %8s %8s %8s\n", "Spec", "Date", "Total", "AVX-512", "Skipped")
	for _, vi := range xmlspec.Versions() {
		f := xmlspec.Generate(vi)
		rs, errs := xmlspec.Resolve(f)
		st := xmlspec.ComputeStats(vi.Version, rs, len(errs))
		avx512 := 0
		for fam, n := range st.PerFamily {
			if fam.String() == "AVX-512" {
				avx512 = n
			}
		}
		fmt.Printf("data-%-7s %-12s %8d %8d %8d\n",
			vi.Version+".xml", vi.Date, st.Total, avx512, st.Skipped)
	}
	fmt.Println("(every version regenerates eDSL bindings without resolver errors)")
	return nil
}

// sizes delegates to the shared figure axis (bench.FigureSizes), the
// same points ngend sweep jobs measure.
func sizes(figure string, quick bool) []int {
	out, err := bench.FigureSizes(figure, quick)
	if err != nil {
		panic(err) // only called with known figures
	}
	return out
}

// runFigure prints one figure sweep through the shared RunFigure path,
// so CLI and ngend output stay byte-identical by construction.
func runFigure(s *bench.Suite, figure string, quick bool) error {
	out, err := s.RunFigure(figure, sizes(figure, quick))
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func fig6a(s *bench.Suite, quick bool) error { return runFigure(s, "fig6a", quick) }

func fig6b(s *bench.Suite, quick bool) error { return runFigure(s, "fig6b", quick) }

func fig7(s *bench.Suite, quick bool) error { return runFigure(s, "fig7", quick) }

// warmup traces a method through the tiered JVM: interpreter → C1 → C2,
// the "full-tiered compilation" the paper observes with
// -XX:UnlockDiagnosticVMOptions (Section 3.4) and excludes from its
// measurements. The compile threshold is the paper's
// -XX:CompileThreshold=100.
func warmup() error {
	jvm := hotspot.NewVM(isa.Haswell)
	jvm.CompileThreshold = 100
	m, err := jvm.Load(kernels.JavaSaxpy(isa.Haswell.Features))
	if err != nil {
		return err
	}
	const n = 1024
	a := vm.PinF32(make([]float32, n))
	b := vm.PinF32(make([]float32, n))
	args := []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0),
		vm.F32Value(1.5), vm.IntValue(n)}

	fmt.Println("JIT warm-up — JSaxpy through the tiered VM (threshold 100)")
	fmt.Printf("%-12s %-12s %14s\n", "invocation", "tier", "flops/cycle")
	prev := hotspot.Tier(-1)
	for i := 0; i < 130; i++ {
		tier := m.Tier()
		jvm.Machine.Counts.Reset()
		if _, err := m.Invoke(args...); err != nil {
			return err
		}
		if tier != prev || i == 129 {
			rep := m.Estimate(tier, jvm.Machine.Counts, 8*n)
			fmt.Printf("%-12d %-12s %14.3f\n", i+1, tier,
				machine.FlopsPerCycle(kernels.SaxpyFlops(n), rep))
			prev = tier
		}
	}
	fmt.Println("(the benchmarks measure C2 steady state, as the paper does)")
	return nil
}

// cacheValidate cross-checks the analytical memory model against the
// set-associative cache simulator on a warm-cache SAXPY run — the
// model-validation appendix of EXPERIMENTS.md.
func cacheValidate(s *bench.Suite) error {
	kn, err := s.RT.Compile(kernels.StagedSaxpy(s.RT.Arch.Features))
	if err != nil {
		return err
	}
	hier := cachesim.NewHaswellHierarchy()
	s.RT.Machine.Cache = hier
	defer func() { s.RT.Machine.Cache = nil }()

	fmt.Println("Cache-model validation — SAXPY, warm cache, simulated hierarchy")
	fmt.Printf("%-10s %-10s %-12s %-12s %s\n", "n", "footprint", "model-level", "sim-level", "per-level bytes")
	for _, n := range []int{1 << 10, 1 << 13, 1 << 15, 1 << 17, 1 << 19, 1 << 21} {
		a := vm.PinF32(make([]float32, n))
		b := vm.PinF32(make([]float32, n))
		args := []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0),
			vm.F32Value(1.5), vm.IntValue(n)}
		hier.Reset()
		if _, err := kn.CallValues(args...); err != nil {
			return err
		}
		hier.ResetCounters()
		if _, err := kn.CallValues(args...); err != nil {
			return err
		}
		bytes := hier.BytesFrom()
		fmt.Printf("%-10d %-10s %-12s %-12s L1:%dK L2:%dK L3:%dK Mem:%dK\n",
			n, fmtKB(8*n), s.RT.Arch.CacheLevel(8*n), hier.DominantLevel(0.25),
			bytes["L1"]>>10, bytes["L2"]>>10, bytes["L3"]>>10, bytes["Mem"]>>10)
	}
	return nil
}

// slpReports prints what the simulated C2's auto-vectorizer did to every
// Java baseline — the reproduction's analog of the paper's assembly
// diagnostics (-XX:UnlockDiagnosticVMOptions -XX:CompileCommand=print,
// Section 3.4).
func slpReports() error {
	jvm := hotspot.NewVM(isa.Haswell)
	fs := isa.Haswell.Features
	methods := []struct {
		name string
		f    func() (*hotspot.Method, error)
	}{
		{"JSaxpy", func() (*hotspot.Method, error) { return jvm.Load(kernels.JavaSaxpy(fs)) }},
		{"JMMM (triple loop)", func() (*hotspot.Method, error) { return jvm.Load(kernels.JavaMMMTriple(fs)) }},
		{"JMMM (blocked)", func() (*hotspot.Method, error) { return jvm.Load(kernels.JavaMMMBlocked(fs)) }},
	}
	for _, bits := range []int{32, 16, 8, 4} {
		bits := bits
		methods = append(methods, struct {
			name string
			f    func() (*hotspot.Method, error)
		}{fmt.Sprintf("JDot %d-bit", bits), func() (*hotspot.Method, error) {
			f, err := kernels.JavaDot(bits, fs)
			if err != nil {
				return nil, err
			}
			return jvm.Load(f)
		}})
	}
	fmt.Println("C2 auto-vectorization diagnostics (SLP)")
	for _, mm := range methods {
		m, err := mm.f()
		if err != nil {
			return err
		}
		status := "scalar"
		if m.SLP.Vectorized() {
			status = fmt.Sprintf("vectorized %d/%d loops with SSE (%d-wide)",
				m.SLP.LoopsVectorized, m.SLP.LoopsSeen, hotspot.SLPWidth)
		}
		fmt.Printf("  %-22s %s\n", mm.name+":", status)
		for _, r := range m.SLP.Rejections {
			fmt.Printf("  %-22s   rejected: %s\n", "", r)
		}
	}
	return nil
}

// benchJSON runs the three figure sweeps and records each as one
// FigureStat — wall seconds, total dynamic vm ops, and heap allocations
// per op (runtime.MemStats mallocs over the sweep, amortized) — then
// re-reads the file so a schema regression fails the run, not a later
// consumer. It also records the fig6b strategy spread: the same sweep
// under each static execution configuration (plain tier, native
// backend) and under the adaptive planner, so the planner acceptance
// reads straight off the committed record — fig6b_auto must sit at or
// under the best static column and strictly under the worst (see
// docs/PLANNER.md).
func benchJSON(s *bench.Suite, quick bool, path string) error {
	rep := bench.BenchReport{}
	var ms0, ms1 runtime.MemStats
	measure := func(s *bench.Suite, name string, run func() error) error {
		before := s.SweepCounts.Total()
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if err := run(); err != nil {
			return err
		}
		secs := time.Since(t0).Seconds()
		runtime.ReadMemStats(&ms1)
		ops := s.SweepCounts.Total() - before
		if ops <= 0 {
			return fmt.Errorf("benchjson: %s executed no vm ops", name)
		}
		rep[name] = bench.FigureStat{
			Seconds:     secs,
			AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
			Ops:         ops,
		}
		return nil
	}
	figures := []struct {
		name string
		run  func() error
	}{
		{"fig6a", func() error { _, err := s.Fig6a(sizes("fig6a", quick)); return err }},
		{"fig6b", func() error { _, err := s.Fig6b(sizes("fig6b", quick)); return err }},
		{"fig7", func() error { _, err := s.Fig7(sizes("fig7", quick)); return err }},
	}
	for _, fig := range figures {
		if err := measure(s, fig.name, fig.run); err != nil {
			return err
		}
	}
	// The fig6b spread. Each configuration gets a fresh suite (tier,
	// backend, and planner are runtime state) mirroring the base
	// suite's sweep parameters. The native leg runs before the auto
	// leg: its plugin builds land in the process-wide memo, so the
	// planner prices a native candidate without ever building on the
	// hot path. Hosts without a plugin toolchain skip the native leg
	// with a notice and the planner competes vm tiers only.
	spread := []struct {
		name string
		conf func(*bench.Suite) error
	}{
		{"fig6b_plain", func(s *bench.Suite) error { s.RT.Opt = kernelc.TierPlain; return nil }},
		{"fig6b_native", func(s *bench.Suite) error { return s.RT.UseBackend("native") }},
		{"fig6b_auto", func(s *bench.Suite) error { s.RT.EnableAutoPlan(); return nil }},
	}
	for _, sp := range spread {
		s2 := bench.NewSuite()
		s2.Workers = s.Workers
		s2.RT.Machine.Workers = s.RT.Machine.Workers
		s2.RT.Disk = s.RT.Disk
		s2.MaxRunLinear, s2.MaxRunCubic, s2.Reps = s.MaxRunLinear, s.MaxRunCubic, s.Reps
		if err := sp.conf(s2); err != nil {
			fmt.Printf("benchjson: %s skipped (%v)\n", sp.name, err)
			continue
		}
		err := measure(s2, sp.name, func() error {
			_, err := s2.Fig6b(sizes("fig6b", quick))
			return err
		})
		if err != nil {
			return err
		}
	}
	if err := bench.WriteBenchJSON(path, rep); err != nil {
		return err
	}
	read, err := bench.ReadBenchJSON(path)
	if err != nil {
		return fmt.Errorf("benchjson: wrote %s but it fails to re-read: %w", path, err)
	}
	fmt.Printf("benchjson → %s\n", path)
	for _, name := range read.Figures() {
		st := read[name]
		fmt.Printf("  %-8s %8.2fs %14d ops %10.4f allocs/op\n",
			name, st.Seconds, st.Ops, st.AllocsPerOp)
	}
	return nil
}

func fmtKB(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}

func speedups(s *bench.Suite, quick bool) error {
	fmt.Println("Headline speedups (max over sizes, LMS vs Java)")
	fmt.Printf("%-28s %10s %10s\n", "Experiment", "Paper", "Measured")

	mm, err := s.Fig6b(sizes("fig6b", quick))
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %10s %9.1fx\n", "MMM vs blocked Java", "5x", bench.Speedup(mm[1], mm[2]))
	fmt.Printf("%-28s %10s %9.1fx\n", "MMM vs triple-loop Java", "7.8x", bench.Speedup(mm[0], mm[2]))

	dots, err := s.Fig7(sizes("fig7", quick))
	if err != nil {
		return err
	}
	paper := map[int]string{32: "5.4x", 16: "4.8x", 8: "9x", 4: "40x"}
	for i, bits := range []int{32, 16, 8, 4} {
		fmt.Printf("dot product %-16s %10s %9.1fx\n",
			fmt.Sprintf("%d-bit", bits), paper[bits], bench.Speedup(dots[i], dots[i+4]))
	}
	return nil
}
