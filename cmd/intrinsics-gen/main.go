// Command intrinsics-gen regenerates the staged intrinsic bindings
// (internal/dsl/intrin_gen.go) from the XML specification — the analog
// of the paper's automatic eDSL generator (Section 3.2, Figure 1) — and
// prints the per-ISA statistics of Table 1b.
//
// Usage:
//
//	intrinsics-gen [-version 3.3.16] [-o internal/dsl/intrin_gen.go] [-dry]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/xmlspec"
)

func main() {
	version := flag.String("version", "3.3.16", "specification version to generate from (Table 3)")
	out := flag.String("o", "internal/dsl/intrin_gen.go", "output path for the generated bindings")
	dry := flag.Bool("dry", false, "report statistics only; write nothing")
	emitSpec := flag.String("emit-spec", "", "also write the synthesized data-<version>.xml to this path")
	flag.Parse()

	if err := run(*version, *out, *dry, *emitSpec); err != nil {
		fmt.Fprintln(os.Stderr, "intrinsics-gen:", err)
		os.Exit(1)
	}
}

func run(version, out string, dry bool, emitSpec string) error {
	vi, err := xmlspec.LookupVersion(version)
	if err != nil {
		return err
	}
	// Synthesize the spec file, then round-trip it through the XML
	// parser so generation exercises the full parse path.
	raw, err := xmlspec.GenerateXML(vi)
	if err != nil {
		return err
	}
	fmt.Printf("specification data-%s.xml (%s): %d bytes\n", vi.Version, vi.Date, len(raw))
	if emitSpec != "" {
		if err := os.WriteFile(emitSpec, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", emitSpec)
	}

	f, err := xmlspec.ParseString(string(raw))
	if err != nil {
		return err
	}
	rs, errs := xmlspec.Resolve(f)
	st := xmlspec.ComputeStats(vi.Version, rs, len(errs))
	fmt.Println()
	fmt.Println(st.Table1b())

	ix, dups := xmlspec.NewIndex(rs)
	if len(dups) > 0 {
		return fmt.Errorf("duplicate intrinsics in spec: %v", dups[0])
	}

	// Bind the curated (hand-verified) intrinsic set.
	var names []string
	for _, e := range xmlspec.CuratedEntries() {
		names = append(names, e.Name)
	}
	src, report, err := gen.Generate(ix, names)
	if err != nil {
		return err
	}
	bound, skipped := 0, 0
	for _, r := range report {
		if r.Skipped {
			skipped++
			fmt.Printf("  skipped %-28s %s\n", r.CName, r.Reason)
		} else {
			bound++
		}
	}
	fmt.Printf("\nbindings: %d generated, %d skipped, %d bytes of Go\n", bound, skipped, len(src))
	if dry {
		return nil
	}
	if err := os.WriteFile(out, src, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
