package cgen

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/isa"
)

func stageSaxpy() *dsl.Kernel {
	k := dsl.NewKernel("saxpy", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	b := k.ParamF32Ptr()
	s := k.ParamF32()
	n := k.ParamInt()
	n0 := n.Shr(3).Shl(3)
	vs := k.MM256Set1Ps(s)
	k.For(k.ConstInt(0), n0, 8, func(i dsl.Int) {
		va := k.MM256LoaduPs(a, i)
		vb := k.MM256LoaduPs(b, i)
		k.MM256StoreuPs(a, i, k.MM256FmaddPs(vb, vs, va))
	})
	k.For(n0, n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Add(b.At(i).Mul(s)))
	})
	return k
}

func TestEmitPlainC(t *testing.T) {
	src, err := Emit(stageSaxpy().F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#include <immintrin.h>",
		"void saxpy(float* p0, float* p1, float p2, int32_t p3)",
		"_mm256_set1_ps(p2)",
		"p0 + ",
		"_mm256_loadu_ps(x",
		"_mm256_fmadd_ps(",
		"_mm256_storeu_ps(",
		"for (int32_t ",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q:\n%s", want, src)
		}
	}
}

func TestEmitJNIWrapper(t *testing.T) {
	src, err := Emit(stageSaxpy().F, Options{JNI: true, Package: "ch.ethz.acl.ngen", Class: "NSaxpy"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#include <jni.h>",
		"JNIEXPORT void JNICALL Java_ch_ethz_acl_ngen_NSaxpy_saxpy",
		"JNIEnv* env, jobject obj, jfloatArray arg0, jfloatArray arg1, jfloat arg2, jint arg3",
		"GetPrimitiveArrayCritical(env, arg0, 0)",
		"ReleasePrimitiveArrayCritical(env, arg0, p0, 0)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("JNI wrapper missing %q:\n%s", want, src)
		}
	}
}

func TestEmitLoopAccAndReturn(t *testing.T) {
	k := dsl.NewKernel("dot", isa.Haswell.Features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	n := k.ParamInt()
	acc := k.ForAccF32(k.ConstInt(0), n, 1, k.ConstF32(0),
		func(i dsl.Int, acc dsl.F32) dsl.F32 {
			return acc.Add(a.At(i).Mul(b.At(i)))
		})
	k.Return(acc)
	src, err := Emit(k.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"float dot(", "return ", "float x", "+ "} {
		if !strings.Contains(src, want) {
			t.Errorf("loop-acc C missing %q:\n%s", want, src)
		}
	}
	// Accumulator declared before the loop, updated inside.
	if !strings.Contains(src, "= 0f;") && !strings.Contains(src, "= 0;") {
		t.Errorf("accumulator initialisation missing:\n%s", src)
	}
}

func TestEmitCommentsAndConditionals(t *testing.T) {
	k := dsl.NewKernel("cond", isa.Haswell.Features)
	a := k.ParamInt()
	k.Comment("clamp to zero")
	r := k.IfInt(a.Lt(k.ConstInt(0)),
		func() dsl.Int { return k.ConstInt(0) },
		func() dsl.Int { return a })
	k.Return(r)
	src, err := Emit(k.F, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"/* clamp to zero */", "if (", "} else {"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q:\n%s", want, src)
		}
	}
}

func TestToolchainDetection(t *testing.T) {
	ts := Detect(HostEnvironment)
	if len(ts) != 2 {
		t.Fatalf("detected %d toolchains, want 2", len(ts))
	}
	if ts[0].Name != "icc" {
		t.Errorf("preference order wrong: %v (icc preferred per the paper)", ts[0])
	}
	tc, err := Pick(HostEnvironment)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Version != "17.0.0" {
		t.Errorf("picked %v", tc)
	}
	if _, err := Pick(Environment{}); err == nil {
		t.Error("empty environment must fail detection")
	}
}

func TestFlagsPerToolchain(t *testing.T) {
	fs := isa.Haswell.Features
	gcc := Toolchain{Name: "gcc", Path: "/usr/bin/gcc", Version: "4.9.2"}
	flags := strings.Join(gcc.Flags(fs), " ")
	for _, want := range []string{"-O3", "-mavx2", "-mfma", "-mf16c", "-shared", "-fPIC"} {
		if !strings.Contains(flags, want) {
			t.Errorf("gcc flags missing %s: %s", want, flags)
		}
	}
	if strings.Contains(flags, "-mavx512f") {
		t.Errorf("gcc flags include AVX-512 on Haswell: %s", flags)
	}
	icc := Toolchain{Name: "icc"}
	if !strings.Contains(strings.Join(icc.Flags(fs), " "), "-xHost") {
		t.Error("icc flags missing -xHost")
	}
	sky := Toolchain{Name: "clang"}
	if !strings.Contains(strings.Join(sky.Flags(isa.SkylakeX.Features), " "), "-mavx512f") {
		t.Error("clang on SkylakeX missing -mavx512f")
	}
}
