package cgen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Toolchain models one detected native compiler. The paper's runtime
// searches the system for icc, gcc and llvm/clang and "opportunistically
// picks the optimal compiler available" (Section 3.3); this reproduction
// simulates the search over a declared environment so the selection and
// flag-derivation logic runs and is testable without the real binaries.
type Toolchain struct {
	Name    string // "icc", "gcc", "clang"
	Path    string
	Version string
}

// rank orders toolchains by the paper's preference: icc > gcc > clang.
func (t Toolchain) rank() int {
	switch t.Name {
	case "icc":
		return 0
	case "gcc":
		return 1
	case "clang":
		return 2
	default:
		return 9
	}
}

// Environment is the simulated system the detection runs against.
type Environment struct {
	// Available maps compiler name → (path, version).
	Available map[string][2]string
}

// HostEnvironment is the default simulated machine, mirroring the
// paper's testbed (gcc 4.9.2 and icc 17.0.0 installed; Debian jessie).
var HostEnvironment = Environment{Available: map[string][2]string{
	"gcc": {"/usr/bin/gcc", "4.9.2"},
	"icc": {"/opt/intel/bin/icc", "17.0.0"},
}}

// Detect searches the environment for usable toolchains, best first.
func Detect(env Environment) []Toolchain {
	var out []Toolchain
	for name, pv := range env.Available {
		out = append(out, Toolchain{Name: name, Path: pv[0], Version: pv[1]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rank() != out[j].rank() {
			return out[i].rank() < out[j].rank()
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Pick returns the preferred toolchain or an error when none exists.
func Pick(env Environment) (Toolchain, error) {
	ts := Detect(env)
	if len(ts) == 0 {
		return Toolchain{}, fmt.Errorf("cgen: no C compiler found (looked for icc, gcc, clang)")
	}
	return ts[0], nil
}

// Flags derives the optimization and ISA flags for a toolchain on a
// machine with the given features — "the best mix of compiler flags for
// each compiler" (Section 3.3).
func (t Toolchain) Flags(fs isa.FeatureSet) []string {
	var flags []string
	switch t.Name {
	case "icc":
		flags = append(flags, "-O3", "-xHost", "-fno-alias")
		if fs.Has(isa.AVX512) {
			flags = append(flags, "-qopt-zmm-usage=high")
		}
	case "gcc", "clang":
		flags = append(flags, "-O3", "-ffast-math")
		for _, f := range []struct {
			fam  isa.Family
			flag string
		}{
			{isa.SSE42, "-msse4.2"}, {isa.AVX, "-mavx"}, {isa.AVX2, "-mavx2"},
			{isa.FMA, "-mfma"}, {isa.FP16C, "-mf16c"}, {isa.AVX512, "-mavx512f"},
			{isa.RDRAND, "-mrdrnd"}, {isa.BMI2, "-mbmi2"},
		} {
			if fs.Has(f.fam) {
				flags = append(flags, f.flag)
			}
		}
	}
	flags = append(flags, "-shared", "-fPIC")
	return flags
}

// CommandLine renders the full (simulated) compile invocation for a
// generated source file.
func (t Toolchain) CommandLine(fs isa.FeatureSet, src, lib string) string {
	return fmt.Sprintf("%s %s -o %s %s", t.Path, strings.Join(t.Flags(fs), " "), lib, src)
}

// FindGo locates the real Go tool on this host — unlike the simulated C
// toolchain search above, this one must find an actual binary, because
// the native backend invokes it to build kernel plugins. The PATH is
// consulted first, then the running toolchain's GOROOT.
func FindGo() (string, error) {
	if p, err := exec.LookPath("go"); err == nil {
		return p, nil
	}
	p := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(p); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("cgen: no go tool found on PATH or in GOROOT %s", runtime.GOROOT())
}
