package xmlspec

import (
	"fmt"
	"strings"
)

// Entry is a compact curated intrinsic description:
// hand-verified signatures for the intrinsics this reproduction gives
// executable semantics (internal/vm) and generated bindings
// (internal/intrin). The full XML records (description, operation
// pseudocode, instruction, header) are expanded from these by expand().
type Entry struct {
	Ret    string   // C return type
	Name   string   // C intrinsic name
	Params string   // "a:__m256d,b:__m256d"; "" for no parameters
	CPUID  []string // one or more CPUID strings (first = primary family)
	Cat    string   // vendor category name
	Instr  string   // assembly mnemonic; "" = derive from the name
}

func e(ret, name, params, cpuid, cat string) Entry {
	return Entry{Ret: ret, Name: name, Params: params, CPUID: strings.Split(cpuid, "+"), Cat: cat}
}

// suffixes used when stamping out regular op families.
var intSuffixes = []string{"epi8", "epi16", "epi32", "epi64"}

// CuratedEntries returns the curated intrinsic set. Regular families
// (add/sub over every element width, FMA over every type×width) are
// stamped out by loops; irregular intrinsics are listed explicitly. All
// signatures follow the Intel Intrinsics Guide.
func CuratedEntries() []Entry {
	var out []Entry
	add := func(es ...Entry) { out = append(out, es...) }

	// ---- MMX (mmintrin.h) -------------------------------------------
	for _, s := range []string{"pi8", "pi16", "pi32"} {
		add(e("__m64", "_mm_add_"+s, "a:__m64,b:__m64", "MMX", "Arithmetic"))
		add(e("__m64", "_mm_sub_"+s, "a:__m64,b:__m64", "MMX", "Arithmetic"))
		add(e("__m64", "_mm_cmpeq_"+s, "a:__m64,b:__m64", "MMX", "Compare"))
		add(e("__m64", "_mm_cmpgt_"+s, "a:__m64,b:__m64", "MMX", "Compare"))
	}
	add(
		e("__m64", "_mm_and_si64", "a:__m64,b:__m64", "MMX", "Logical"),
		e("__m64", "_mm_or_si64", "a:__m64,b:__m64", "MMX", "Logical"),
		e("__m64", "_mm_xor_si64", "a:__m64,b:__m64", "MMX", "Logical"),
		e("__m64", "_mm_andnot_si64", "a:__m64,b:__m64", "MMX", "Logical"),
		e("__m64", "_mm_set1_pi8", "a:char", "MMX", "Set"),
		e("__m64", "_mm_set1_pi16", "a:short", "MMX", "Set"),
		e("__m64", "_mm_set1_pi32", "a:int", "MMX", "Set"),
		e("__m64", "_mm_setzero_si64", "", "MMX", "Set"),
		e("__m64", "_mm_madd_pi16", "a:__m64,b:__m64", "MMX", "Arithmetic"),
		e("__m64", "_mm_mullo_pi16", "a:__m64,b:__m64", "MMX", "Arithmetic"),
		e("__m64", "_mm_unpacklo_pi8", "a:__m64,b:__m64", "MMX", "Swizzle"),
		e("__m64", "_mm_unpackhi_pi8", "a:__m64,b:__m64", "MMX", "Swizzle"),
		e("int", "_mm_cvtsi64_si32", "a:__m64", "MMX", "Convert"),
		e("__m64", "_mm_cvtsi32_si64", "a:int", "MMX", "Convert"),
		e("void", "_mm_empty", "", "MMX", "General Support"),
	)

	// ---- SSE (xmmintrin.h): 4×f32 -----------------------------------
	for _, op := range []string{"add", "sub", "mul", "div", "max", "min"} {
		add(e("__m128", "_mm_"+op+"_ps", "a:__m128,b:__m128", "SSE", "Arithmetic"))
		add(e("__m128", "_mm_"+op+"_ss", "a:__m128,b:__m128", "SSE", "Arithmetic"))
	}
	for _, op := range []string{"sqrt", "rcp", "rsqrt"} {
		add(e("__m128", "_mm_"+op+"_ps", "a:__m128", "SSE", "Elementary Math Functions"))
	}
	for _, op := range []string{"and", "or", "xor", "andnot"} {
		add(e("__m128", "_mm_"+op+"_ps", "a:__m128,b:__m128", "SSE", "Logical"))
	}
	for _, op := range []string{"cmpeq", "cmplt", "cmple", "cmpgt", "cmpge", "cmpneq"} {
		add(e("__m128", "_mm_"+op+"_ps", "a:__m128,b:__m128", "SSE", "Compare"))
	}
	add(
		e("__m128", "_mm_loadu_ps", "mem_addr:float const*", "SSE", "Load"),
		e("__m128", "_mm_load_ps", "mem_addr:float const*", "SSE", "Load"),
		e("__m128", "_mm_load_ss", "mem_addr:float const*", "SSE", "Load"),
		e("__m128", "_mm_load_ps1", "mem_addr:float const*", "SSE", "Load"),
		e("void", "_mm_storeu_ps", "mem_addr:float*,a:__m128", "SSE", "Store"),
		e("void", "_mm_store_ps", "mem_addr:float*,a:__m128", "SSE", "Store"),
		e("void", "_mm_store_ss", "mem_addr:float*,a:__m128", "SSE", "Store"),
		e("void", "_mm_store_ps1", "mem_addr:float*,a:__m128", "SSE", "Store"),
		e("__m128", "_mm_set1_ps", "a:float", "SSE", "Set"),
		e("__m128", "_mm_set_ps", "e3:float,e2:float,e1:float,e0:float", "SSE", "Set"),
		e("__m128", "_mm_set_ss", "a:float", "SSE", "Set"),
		e("__m128", "_mm_setzero_ps", "", "SSE", "Set"),
		e("__m128", "_mm_movehl_ps", "a:__m128,b:__m128", "SSE", "Move"),
		e("__m128", "_mm_movelh_ps", "a:__m128,b:__m128", "SSE", "Move"),
		e("__m128", "_mm_shuffle_ps", "a:__m128,b:__m128,imm8:unsigned int", "SSE", "Swizzle"),
		e("__m128", "_mm_unpacklo_ps", "a:__m128,b:__m128", "SSE", "Swizzle"),
		e("__m128", "_mm_unpackhi_ps", "a:__m128,b:__m128", "SSE", "Swizzle"),
		e("float", "_mm_cvtss_f32", "a:__m128", "SSE", "Convert"),
		e("int", "_mm_movemask_ps", "a:__m128", "SSE", "Miscellaneous"),
		e("void", "_mm_prefetch", "p:char const*,i:int", "SSE", "Cacheability"),
		e("void", "_mm_sfence", "", "SSE", "General Support"),
		e("__m64", "_mm_avg_pu8", "a:__m64,b:__m64", "SSE", "Probability/Statistics"),
		e("__m64", "_mm_avg_pu16", "a:__m64,b:__m64", "SSE", "Probability/Statistics"),
	)

	// ---- SSE2 (emmintrin.h): 2×f64 and 128-bit integers -------------
	for _, op := range []string{"add", "sub", "mul", "div", "max", "min"} {
		add(e("__m128d", "_mm_"+op+"_pd", "a:__m128d,b:__m128d", "SSE2", "Arithmetic"))
		add(e("__m128d", "_mm_"+op+"_sd", "a:__m128d,b:__m128d", "SSE2", "Arithmetic"))
	}
	add(e("__m128d", "_mm_sqrt_pd", "a:__m128d", "SSE2", "Elementary Math Functions"))
	for _, op := range []string{"and", "or", "xor", "andnot"} {
		add(e("__m128d", "_mm_"+op+"_pd", "a:__m128d,b:__m128d", "SSE2", "Logical"))
		add(e("__m128i", "_mm_"+op+"_si128", "a:__m128i,b:__m128i", "SSE2", "Logical"))
	}
	for _, op := range []string{"cmpeq", "cmplt", "cmple", "cmpgt", "cmpge", "cmpneq"} {
		add(e("__m128d", "_mm_"+op+"_pd", "a:__m128d,b:__m128d", "SSE2", "Compare"))
	}
	for _, s := range intSuffixes {
		add(e("__m128i", "_mm_add_"+s, "a:__m128i,b:__m128i", "SSE2", "Arithmetic"))
		add(e("__m128i", "_mm_sub_"+s, "a:__m128i,b:__m128i", "SSE2", "Arithmetic"))
	}
	for _, s := range []string{"epi8", "epi16", "epi32"} {
		add(e("__m128i", "_mm_cmpeq_"+s, "a:__m128i,b:__m128i", "SSE2", "Compare"))
		add(e("__m128i", "_mm_cmpgt_"+s, "a:__m128i,b:__m128i", "SSE2", "Compare"))
		add(e("__m128i", "_mm_cmplt_"+s, "a:__m128i,b:__m128i", "SSE2", "Compare"))
	}
	for _, s := range []string{"epi16", "epi32", "epi64"} {
		add(e("__m128i", "_mm_slli_"+s, "a:__m128i,imm8:int", "SSE2", "Shift"))
		add(e("__m128i", "_mm_srli_"+s, "a:__m128i,imm8:int", "SSE2", "Shift"))
	}
	for _, s := range []string{"epi16", "epi32"} {
		add(e("__m128i", "_mm_srai_"+s, "a:__m128i,imm8:int", "SSE2", "Shift"))
	}
	for _, s := range []string{"epi8", "epi16", "epi32", "epi64"} {
		add(e("__m128i", "_mm_unpacklo_"+s, "a:__m128i,b:__m128i", "SSE2", "Swizzle"))
		add(e("__m128i", "_mm_unpackhi_"+s, "a:__m128i,b:__m128i", "SSE2", "Swizzle"))
	}
	add(
		e("__m128i", "_mm_madd_epi16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_mullo_epi16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_mulhi_epi16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_mulhi_epu16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_mul_epu32", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_adds_epi8", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_adds_epi16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_adds_epu8", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_adds_epu16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_subs_epi8", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_subs_epi16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_subs_epu8", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_subs_epu16", "a:__m128i,b:__m128i", "SSE2", "Arithmetic"),
		e("__m128i", "_mm_avg_epu8", "a:__m128i,b:__m128i", "SSE2", "Probability/Statistics"),
		e("__m128i", "_mm_avg_epu16", "a:__m128i,b:__m128i", "SSE2", "Probability/Statistics"),
		e("__m128i", "_mm_sad_epu8", "a:__m128i,b:__m128i", "SSE2", "Miscellaneous"),
		e("__m128i", "_mm_max_epu8", "a:__m128i,b:__m128i", "SSE2", "Special Math Functions"),
		e("__m128i", "_mm_min_epu8", "a:__m128i,b:__m128i", "SSE2", "Special Math Functions"),
		e("__m128i", "_mm_max_epi16", "a:__m128i,b:__m128i", "SSE2", "Special Math Functions"),
		e("__m128i", "_mm_min_epi16", "a:__m128i,b:__m128i", "SSE2", "Special Math Functions"),
		e("__m128i", "_mm_packs_epi16", "a:__m128i,b:__m128i", "SSE2", "Miscellaneous"),
		e("__m128i", "_mm_packus_epi16", "a:__m128i,b:__m128i", "SSE2", "Miscellaneous"),
		e("__m128i", "_mm_packs_epi32", "a:__m128i,b:__m128i", "SSE2", "Miscellaneous"),
		e("__m128i", "_mm_shuffle_epi32", "a:__m128i,imm8:int", "SSE2", "Swizzle"),
		e("__m128i", "_mm_shufflehi_epi16", "a:__m128i,imm8:int", "SSE2", "Swizzle"),
		e("__m128i", "_mm_shufflelo_epi16", "a:__m128i,imm8:int", "SSE2", "Swizzle"),
		e("__m128i", "_mm_slli_si128", "a:__m128i,imm8:int", "SSE2", "Shift"),
		e("__m128i", "_mm_srli_si128", "a:__m128i,imm8:int", "SSE2", "Shift"),
		e("int", "_mm_movemask_epi8", "a:__m128i", "SSE2", "Miscellaneous"),
		e("int", "_mm_movemask_pd", "a:__m128d", "SSE2", "Miscellaneous"),
		e("__m128i", "_mm_loadu_si128", "mem_addr:__m128i const*", "SSE2", "Load"),
		e("__m128i", "_mm_load_si128", "mem_addr:__m128i const*", "SSE2", "Load"),
		e("__m128d", "_mm_loadu_pd", "mem_addr:double const*", "SSE2", "Load"),
		e("__m128d", "_mm_load_pd", "mem_addr:double const*", "SSE2", "Load"),
		e("void", "_mm_storeu_si128", "mem_addr:__m128i*,a:__m128i", "SSE2", "Store"),
		e("void", "_mm_store_si128", "mem_addr:__m128i*,a:__m128i", "SSE2", "Store"),
		e("void", "_mm_storeu_pd", "mem_addr:double*,a:__m128d", "SSE2", "Store"),
		e("void", "_mm_store_pd", "mem_addr:double*,a:__m128d", "SSE2", "Store"),
		e("void", "_mm_store_pd1", "mem_addr:double*,a:__m128d", "SSE2", "Store"),
		e("void", "_mm_stream_si128", "mem_addr:__m128i*,a:__m128i", "SSE2", "Store"),
		e("__m128i", "_mm_set1_epi8", "a:char", "SSE2", "Set"),
		e("__m128i", "_mm_set1_epi16", "a:short", "SSE2", "Set"),
		e("__m128i", "_mm_set1_epi32", "a:int", "SSE2", "Set"),
		e("__m128i", "_mm_set1_epi64x", "a:__int64", "SSE2", "Set"),
		e("__m128d", "_mm_set1_pd", "a:double", "SSE2", "Set"),
		e("__m128d", "_mm_set_pd", "e1:double,e0:double", "SSE2", "Set"),
		e("__m128i", "_mm_setzero_si128", "", "SSE2", "Set"),
		e("__m128d", "_mm_setzero_pd", "", "SSE2", "Set"),
		e("__m128d", "_mm_unpacklo_pd", "a:__m128d,b:__m128d", "SSE2", "Swizzle"),
		e("__m128d", "_mm_unpackhi_pd", "a:__m128d,b:__m128d", "SSE2", "Swizzle"),
		e("__m128d", "_mm_shuffle_pd", "a:__m128d,b:__m128d,imm8:int", "SSE2", "Swizzle"),
		e("double", "_mm_cvtsd_f64", "a:__m128d", "SSE2", "Convert"),
		e("__m128d", "_mm_cvtps_pd", "a:__m128", "SSE2", "Convert"),
		e("__m128", "_mm_cvtpd_ps", "a:__m128d", "SSE2", "Convert"),
		e("__m128", "_mm_cvtepi32_ps", "a:__m128i", "SSE2", "Convert"),
		e("__m128i", "_mm_cvtps_epi32", "a:__m128", "SSE2", "Convert"),
		e("__m128i", "_mm_cvttps_epi32", "a:__m128", "SSE2", "Convert"),
		e("__m128d", "_mm_cvtepi32_pd", "a:__m128i", "SSE2", "Convert"),
		e("int", "_mm_cvtsi128_si32", "a:__m128i", "SSE2", "Convert"),
		e("__int64", "_mm_cvtsi128_si64", "a:__m128i", "SSE2", "Convert"),
		e("__m128i", "_mm_cvtsi32_si128", "a:int", "SSE2", "Convert"),
		e("__m128i", "_mm_cvtsi64_si128", "a:__int64", "SSE2", "Convert"),
		e("__m128", "_mm_castpd_ps", "a:__m128d", "SSE2", "Cast"),
		e("__m128d", "_mm_castps_pd", "a:__m128", "SSE2", "Cast"),
		e("__m128i", "_mm_castps_si128", "a:__m128", "SSE2", "Cast"),
		e("__m128", "_mm_castsi128_ps", "a:__m128i", "SSE2", "Cast"),
		e("void", "_mm_lfence", "", "SSE2", "General Support"),
		e("void", "_mm_mfence", "", "SSE2", "General Support"),
	)

	// ---- SSE3 (pmmintrin.h): the full 11-intrinsic family -----------
	add(
		e("__m128", "_mm_hadd_ps", "a:__m128,b:__m128", "SSE3", "Arithmetic"),
		e("__m128", "_mm_hsub_ps", "a:__m128,b:__m128", "SSE3", "Arithmetic"),
		e("__m128d", "_mm_hadd_pd", "a:__m128d,b:__m128d", "SSE3", "Arithmetic"),
		e("__m128d", "_mm_hsub_pd", "a:__m128d,b:__m128d", "SSE3", "Arithmetic"),
		e("__m128", "_mm_addsub_ps", "a:__m128,b:__m128", "SSE3", "Arithmetic"),
		e("__m128d", "_mm_addsub_pd", "a:__m128d,b:__m128d", "SSE3", "Arithmetic"),
		e("__m128", "_mm_movehdup_ps", "a:__m128", "SSE3", "Move"),
		e("__m128", "_mm_moveldup_ps", "a:__m128", "SSE3", "Move"),
		e("__m128d", "_mm_movedup_pd", "a:__m128d", "SSE3", "Move"),
		e("__m128d", "_mm_loaddup_pd", "mem_addr:double const*", "SSE3", "Load"),
		e("__m128i", "_mm_lddqu_si128", "mem_addr:__m128i const*", "SSE3", "Load"),
	)

	// ---- SSSE3 (tmmintrin.h) -----------------------------------------
	for _, s := range []string{"epi8", "epi16", "epi32"} {
		add(e("__m128i", "_mm_abs_"+s, "a:__m128i", "SSSE3", "Special Math Functions"))
		add(e("__m128i", "_mm_sign_"+s, "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"))
	}
	add(
		e("__m128i", "_mm_maddubs_epi16", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_mulhrs_epi16", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_hadd_epi16", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_hadd_epi32", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_hadds_epi16", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_hsub_epi16", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_hsub_epi32", "a:__m128i,b:__m128i", "SSSE3", "Arithmetic"),
		e("__m128i", "_mm_shuffle_epi8", "a:__m128i,b:__m128i", "SSSE3", "Swizzle"),
		e("__m128i", "_mm_alignr_epi8", "a:__m128i,b:__m128i,imm8:int", "SSSE3", "Miscellaneous"),
	)

	// ---- SSE4.1 (smmintrin.h) ----------------------------------------
	for _, s := range []string{"epi8", "epu16", "epi32", "epu32"} {
		add(e("__m128i", "_mm_max_"+s, "a:__m128i,b:__m128i", "SSE4.1", "Special Math Functions"))
		add(e("__m128i", "_mm_min_"+s, "a:__m128i,b:__m128i", "SSE4.1", "Special Math Functions"))
	}
	add(
		e("__m128", "_mm_dp_ps", "a:__m128,b:__m128,imm8:int", "SSE4.1", "Arithmetic"),
		e("__m128d", "_mm_dp_pd", "a:__m128d,b:__m128d,imm8:int", "SSE4.1", "Arithmetic"),
		e("__m128i", "_mm_mullo_epi32", "a:__m128i,b:__m128i", "SSE4.1", "Arithmetic"),
		e("__m128i", "_mm_mul_epi32", "a:__m128i,b:__m128i", "SSE4.1", "Arithmetic"),
		e("__m128", "_mm_blend_ps", "a:__m128,b:__m128,imm8:int", "SSE4.1", "Swizzle"),
		e("__m128d", "_mm_blend_pd", "a:__m128d,b:__m128d,imm8:int", "SSE4.1", "Swizzle"),
		e("__m128", "_mm_blendv_ps", "a:__m128,b:__m128,mask:__m128", "SSE4.1", "Swizzle"),
		e("__m128d", "_mm_blendv_pd", "a:__m128d,b:__m128d,mask:__m128d", "SSE4.1", "Swizzle"),
		e("__m128i", "_mm_blendv_epi8", "a:__m128i,b:__m128i,mask:__m128i", "SSE4.1", "Swizzle"),
		e("__m128i", "_mm_cvtepi8_epi16", "a:__m128i", "SSE4.1", "Convert"),
		e("__m128i", "_mm_cvtepi8_epi32", "a:__m128i", "SSE4.1", "Convert"),
		e("__m128i", "_mm_cvtepu8_epi16", "a:__m128i", "SSE4.1", "Convert"),
		e("__m128i", "_mm_cvtepu8_epi32", "a:__m128i", "SSE4.1", "Convert"),
		e("__m128i", "_mm_cvtepi16_epi32", "a:__m128i", "SSE4.1", "Convert"),
		e("__m128i", "_mm_cvtepu16_epi32", "a:__m128i", "SSE4.1", "Convert"),
		e("__m128i", "_mm_cvtepi32_epi64", "a:__m128i", "SSE4.1", "Convert"),
		e("int", "_mm_extract_epi32", "a:__m128i,imm8:int", "SSE4.1", "Swizzle"),
		e("int", "_mm_extract_epi8", "a:__m128i,imm8:int", "SSE4.1", "Swizzle"),
		e("__m128i", "_mm_insert_epi32", "a:__m128i,i:int,imm8:int", "SSE4.1", "Swizzle"),
		e("__m128", "_mm_round_ps", "a:__m128,rounding:int", "SSE4.1", "Special Math Functions"),
		e("__m128d", "_mm_round_pd", "a:__m128d,rounding:int", "SSE4.1", "Special Math Functions"),
		e("__m128", "_mm_floor_ps", "a:__m128", "SSE4.1", "Special Math Functions"),
		e("__m128d", "_mm_floor_pd", "a:__m128d", "SSE4.1", "Special Math Functions"),
		e("__m128", "_mm_ceil_ps", "a:__m128", "SSE4.1", "Special Math Functions"),
		e("__m128d", "_mm_ceil_pd", "a:__m128d", "SSE4.1", "Special Math Functions"),
		e("int", "_mm_testz_si128", "a:__m128i,b:__m128i", "SSE4.1", "Logical"),
		e("int", "_mm_testc_si128", "a:__m128i,b:__m128i", "SSE4.1", "Logical"),
		e("__m128i", "_mm_packus_epi32", "a:__m128i,b:__m128i", "SSE4.1", "Miscellaneous"),
		e("__m128i", "_mm_minpos_epu16", "a:__m128i", "SSE4.1", "Miscellaneous"),
		e("__m128i", "_mm_stream_load_si128", "mem_addr:__m128i*", "SSE4.1", "Load"),
		e("__m128i", "_mm_cmpeq_epi64", "a:__m128i,b:__m128i", "SSE4.1", "Compare"),
	)

	// ---- SSE4.2 (nmmintrin.h) ----------------------------------------
	add(
		e("__m128i", "_mm_cmpgt_epi64", "a:__m128i,b:__m128i", "SSE4.2", "Compare"),
		e("unsigned int", "_mm_crc32_u8", "crc:unsigned int,v:unsigned char", "SSE4.2", "Cryptography"),
		e("unsigned int", "_mm_crc32_u16", "crc:unsigned int,v:unsigned short", "SSE4.2", "Cryptography"),
		e("unsigned int", "_mm_crc32_u32", "crc:unsigned int,v:unsigned int", "SSE4.2", "Cryptography"),
		e("unsigned __int64", "_mm_crc32_u64", "crc:unsigned __int64,v:unsigned __int64", "SSE4.2", "Cryptography"),
		e("int", "_mm_cmpestri", "a:__m128i,la:int,b:__m128i,lb:int,imm8:int", "SSE4.2", "String Compare"),
		e("__m128i", "_mm_cmpestrm", "a:__m128i,la:int,b:__m128i,lb:int,imm8:int", "SSE4.2", "String Compare"),
		e("int", "_mm_cmpistri", "a:__m128i,b:__m128i,imm8:int", "SSE4.2", "String Compare"),
		e("__m128i", "_mm_cmpistrm", "a:__m128i,b:__m128i,imm8:int", "SSE4.2", "String Compare"),
		e("int", "_mm_cmpistrz", "a:__m128i,b:__m128i,imm8:int", "SSE4.2", "String Compare"),
	)

	// ---- AVX (immintrin.h): 256-bit float/double ---------------------
	for _, t := range []struct{ v, s string }{{"__m256", "ps"}, {"__m256d", "pd"}} {
		for _, op := range []string{"add", "sub", "mul", "div", "max", "min"} {
			add(e(t.v, "_mm256_"+op+"_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Arithmetic"))
		}
		add(e(t.v, "_mm256_sqrt_"+t.s, "a:"+t.v, "AVX", "Elementary Math Functions"))
		for _, op := range []string{"and", "or", "xor", "andnot"} {
			add(e(t.v, "_mm256_"+op+"_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Logical"))
		}
		add(
			e(t.v, "_mm256_hadd_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Arithmetic"),
			e(t.v, "_mm256_hsub_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Arithmetic"),
			e(t.v, "_mm256_addsub_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Arithmetic"),
			e(t.v, "_mm256_unpacklo_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Swizzle"),
			e(t.v, "_mm256_unpackhi_"+t.s, "a:"+t.v+",b:"+t.v, "AVX", "Swizzle"),
			e(t.v, "_mm256_shuffle_"+t.s, "a:"+t.v+",b:"+t.v+",imm8:int", "AVX", "Swizzle"),
			e(t.v, "_mm256_blend_"+t.s, "a:"+t.v+",b:"+t.v+",imm8:int", "AVX", "Swizzle"),
			e(t.v, "_mm256_blendv_"+t.s, "a:"+t.v+",b:"+t.v+",mask:"+t.v, "AVX", "Swizzle"),
			e(t.v, "_mm256_permute2f128_"+t.s, "a:"+t.v+",b:"+t.v+",imm8:int", "AVX", "Swizzle"),
			e(t.v, "_mm256_round_"+t.s, "a:"+t.v+",rounding:int", "AVX", "Special Math Functions"),
			e(t.v, "_mm256_floor_"+t.s, "a:"+t.v, "AVX", "Special Math Functions"),
			e(t.v, "_mm256_ceil_"+t.s, "a:"+t.v, "AVX", "Special Math Functions"),
			e(t.v, "_mm256_cmp_"+t.s, "a:"+t.v+",b:"+t.v+",imm8:int", "AVX", "Compare"),
		)
	}
	add(
		e("__m256", "_mm256_rcp_ps", "a:__m256", "AVX", "Elementary Math Functions"),
		e("__m256", "_mm256_rsqrt_ps", "a:__m256", "AVX", "Elementary Math Functions"),
		e("__m256", "_mm256_permute_ps", "a:__m256,imm8:int", "AVX", "Swizzle"),
		e("__m256d", "_mm256_permute_pd", "a:__m256d,imm8:int", "AVX", "Swizzle"),
		e("__m256i", "_mm256_permute2f128_si256", "a:__m256i,b:__m256i,imm8:int", "AVX", "Swizzle"),
		e("__m256", "_mm256_permutevar_ps", "a:__m256,b:__m256i", "AVX", "Swizzle"),
		e("__m256d", "_mm256_permutevar_pd", "a:__m256d,b:__m256i", "AVX", "Swizzle"),
		e("__m256", "_mm256_loadu_ps", "mem_addr:float const*", "AVX", "Load"),
		e("__m256", "_mm256_load_ps", "mem_addr:float const*", "AVX", "Load"),
		e("__m256d", "_mm256_loadu_pd", "mem_addr:double const*", "AVX", "Load"),
		e("__m256d", "_mm256_load_pd", "mem_addr:double const*", "AVX", "Load"),
		e("__m256i", "_mm256_loadu_si256", "mem_addr:__m256i const*", "AVX", "Load"),
		e("__m256i", "_mm256_load_si256", "mem_addr:__m256i const*", "AVX", "Load"),
		e("__m256i", "_mm256_lddqu_si256", "mem_addr:__m256i const*", "AVX", "Load"),
		e("void", "_mm256_storeu_ps", "mem_addr:float*,a:__m256", "AVX", "Store"),
		e("void", "_mm256_store_ps", "mem_addr:float*,a:__m256", "AVX", "Store"),
		e("void", "_mm256_storeu_pd", "mem_addr:double*,a:__m256d", "AVX", "Store"),
		e("void", "_mm256_store_pd", "mem_addr:double*,a:__m256d", "AVX", "Store"),
		e("void", "_mm256_storeu_si256", "mem_addr:__m256i*,a:__m256i", "AVX", "Store"),
		e("void", "_mm256_store_si256", "mem_addr:__m256i*,a:__m256i", "AVX", "Store"),
		e("void", "_mm256_stream_ps", "mem_addr:float*,a:__m256", "AVX", "Store"),
		e("void", "_mm256_stream_pd", "mem_addr:double*,a:__m256d", "AVX", "Store"),
		e("void", "_mm256_stream_si256", "mem_addr:__m256i*,a:__m256i", "AVX", "Store"),
		e("__m256", "_mm256_maskload_ps", "mem_addr:float const*,mask:__m256i", "AVX", "Load"),
		e("void", "_mm256_maskstore_ps", "mem_addr:float*,mask:__m256i,a:__m256", "AVX", "Store"),
		e("__m256d", "_mm256_maskload_pd", "mem_addr:double const*,mask:__m256i", "AVX", "Load"),
		e("void", "_mm256_maskstore_pd", "mem_addr:double*,mask:__m256i,a:__m256d", "AVX", "Store"),
		e("__m256", "_mm256_broadcast_ss", "mem_addr:float const*", "AVX", "Load"),
		e("__m256d", "_mm256_broadcast_sd", "mem_addr:double const*", "AVX", "Load"),
		e("__m256", "_mm256_broadcast_ps", "mem_addr:__m128 const*", "AVX", "Load"),
		e("__m256d", "_mm256_broadcast_pd", "mem_addr:__m128d const*", "AVX", "Load"),
		e("__m256", "_mm256_set1_ps", "a:float", "AVX", "Set"),
		e("__m256d", "_mm256_set1_pd", "a:double", "AVX", "Set"),
		e("__m256i", "_mm256_set1_epi8", "a:char", "AVX", "Set"),
		e("__m256i", "_mm256_set1_epi16", "a:short", "AVX", "Set"),
		e("__m256i", "_mm256_set1_epi32", "a:int", "AVX", "Set"),
		e("__m256i", "_mm256_set1_epi64x", "a:__int64", "AVX", "Set"),
		e("__m256", "_mm256_set_ps", "e7:float,e6:float,e5:float,e4:float,e3:float,e2:float,e1:float,e0:float", "AVX", "Set"),
		e("__m256d", "_mm256_set_pd", "e3:double,e2:double,e1:double,e0:double", "AVX", "Set"),
		e("__m256", "_mm256_setzero_ps", "", "AVX", "Set"),
		e("__m256d", "_mm256_setzero_pd", "", "AVX", "Set"),
		e("__m256i", "_mm256_setzero_si256", "", "AVX", "Set"),
		e("__m128", "_mm256_extractf128_ps", "a:__m256,imm8:int", "AVX", "Swizzle"),
		e("__m128d", "_mm256_extractf128_pd", "a:__m256d,imm8:int", "AVX", "Swizzle"),
		e("__m128i", "_mm256_extractf128_si256", "a:__m256i,imm8:int", "AVX", "Swizzle"),
		e("__m256", "_mm256_insertf128_ps", "a:__m256,b:__m128,imm8:int", "AVX", "Swizzle"),
		e("__m256d", "_mm256_insertf128_pd", "a:__m256d,b:__m128d,imm8:int", "AVX", "Swizzle"),
		e("__m256i", "_mm256_insertf128_si256", "a:__m256i,b:__m128i,imm8:int", "AVX", "Swizzle"),
		e("__m128", "_mm256_castps256_ps128", "a:__m256", "AVX", "Cast"),
		e("__m256", "_mm256_castps128_ps256", "a:__m128", "AVX", "Cast"),
		e("__m128d", "_mm256_castpd256_pd128", "a:__m256d", "AVX", "Cast"),
		e("__m256d", "_mm256_castpd128_pd256", "a:__m128d", "AVX", "Cast"),
		e("__m256d", "_mm256_castps_pd", "a:__m256", "AVX", "Cast"),
		e("__m256", "_mm256_castpd_ps", "a:__m256d", "AVX", "Cast"),
		e("__m256i", "_mm256_castps_si256", "a:__m256", "AVX", "Cast"),
		e("__m256", "_mm256_castsi256_ps", "a:__m256i", "AVX", "Cast"),
		e("__m128i", "_mm256_castsi256_si128", "a:__m256i", "AVX", "Cast"),
		e("__m256i", "_mm256_castsi128_si256", "a:__m128i", "AVX", "Cast"),
		e("__m256", "_mm256_cvtepi32_ps", "a:__m256i", "AVX", "Convert"),
		e("__m256i", "_mm256_cvtps_epi32", "a:__m256", "AVX", "Convert"),
		e("__m256i", "_mm256_cvttps_epi32", "a:__m256", "AVX", "Convert"),
		e("__m128", "_mm256_cvtpd_ps", "a:__m256d", "AVX", "Convert"),
		e("__m256d", "_mm256_cvtps_pd", "a:__m128", "AVX", "Convert"),
		e("int", "_mm256_movemask_ps", "a:__m256", "AVX", "Miscellaneous"),
		e("int", "_mm256_movemask_pd", "a:__m256d", "AVX", "Miscellaneous"),
		e("int", "_mm256_testz_si256", "a:__m256i,b:__m256i", "AVX", "Logical"),
		e("void", "_mm256_zeroall", "", "AVX", "General Support"),
		e("void", "_mm256_zeroupper", "", "AVX", "General Support"),
	)

	// ---- AVX2 (immintrin.h): 256-bit integer -------------------------
	for _, s := range intSuffixes {
		add(e("__m256i", "_mm256_add_"+s, "a:__m256i,b:__m256i", "AVX2", "Arithmetic"))
		add(e("__m256i", "_mm256_sub_"+s, "a:__m256i,b:__m256i", "AVX2", "Arithmetic"))
		add(e("__m256i", "_mm256_cmpeq_"+s, "a:__m256i,b:__m256i", "AVX2", "Compare"))
		add(e("__m256i", "_mm256_cmpgt_"+s, "a:__m256i,b:__m256i", "AVX2", "Compare"))
		add(e("__m256i", "_mm256_unpacklo_"+s, "a:__m256i,b:__m256i", "AVX2", "Swizzle"))
		add(e("__m256i", "_mm256_unpackhi_"+s, "a:__m256i,b:__m256i", "AVX2", "Swizzle"))
	}
	for _, s := range []string{"epi8", "epi16"} {
		add(e("__m256i", "_mm256_adds_"+s, "a:__m256i,b:__m256i", "AVX2", "Arithmetic"))
		add(e("__m256i", "_mm256_subs_"+s, "a:__m256i,b:__m256i", "AVX2", "Arithmetic"))
		add(e("__m256i", "_mm256_adds_"+strings.Replace(s, "i", "u", 1), "a:__m256i,b:__m256i", "AVX2", "Arithmetic"))
		add(e("__m256i", "_mm256_subs_"+strings.Replace(s, "i", "u", 1), "a:__m256i,b:__m256i", "AVX2", "Arithmetic"))
	}
	for _, s := range []string{"epi8", "epu8", "epi16", "epu16", "epi32", "epu32"} {
		add(e("__m256i", "_mm256_max_"+s, "a:__m256i,b:__m256i", "AVX2", "Special Math Functions"))
		add(e("__m256i", "_mm256_min_"+s, "a:__m256i,b:__m256i", "AVX2", "Special Math Functions"))
	}
	for _, s := range []string{"epi16", "epi32", "epi64"} {
		add(e("__m256i", "_mm256_slli_"+s, "a:__m256i,imm8:int", "AVX2", "Shift"))
		add(e("__m256i", "_mm256_srli_"+s, "a:__m256i,imm8:int", "AVX2", "Shift"))
	}
	for _, s := range []string{"epi16", "epi32"} {
		add(e("__m256i", "_mm256_srai_"+s, "a:__m256i,imm8:int", "AVX2", "Shift"))
	}
	add(
		e("__m256i", "_mm256_and_si256", "a:__m256i,b:__m256i", "AVX2", "Logical"),
		e("__m256i", "_mm256_or_si256", "a:__m256i,b:__m256i", "AVX2", "Logical"),
		e("__m256i", "_mm256_xor_si256", "a:__m256i,b:__m256i", "AVX2", "Logical"),
		e("__m256i", "_mm256_andnot_si256", "a:__m256i,b:__m256i", "AVX2", "Logical"),
		e("__m256i", "_mm256_abs_epi8", "a:__m256i", "AVX2", "Special Math Functions"),
		e("__m256i", "_mm256_abs_epi16", "a:__m256i", "AVX2", "Special Math Functions"),
		e("__m256i", "_mm256_abs_epi32", "a:__m256i", "AVX2", "Special Math Functions"),
		e("__m256i", "_mm256_sign_epi8", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_sign_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_sign_epi32", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_madd_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_maddubs_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_mullo_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_mullo_epi32", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_mulhi_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_mulhrs_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_mul_epi32", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_mul_epu32", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_avg_epu8", "a:__m256i,b:__m256i", "AVX2", "Probability/Statistics"),
		e("__m256i", "_mm256_avg_epu16", "a:__m256i,b:__m256i", "AVX2", "Probability/Statistics"),
		e("__m256i", "_mm256_sad_epu8", "a:__m256i,b:__m256i", "AVX2", "Miscellaneous"),
		e("__m256i", "_mm256_hadd_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_hadd_epi32", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_hsub_epi16", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_hsub_epi32", "a:__m256i,b:__m256i", "AVX2", "Arithmetic"),
		e("__m256i", "_mm256_shuffle_epi8", "a:__m256i,b:__m256i", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_shuffle_epi32", "a:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_shufflehi_epi16", "a:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_shufflelo_epi16", "a:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_alignr_epi8", "a:__m256i,b:__m256i,imm8:int", "AVX2", "Miscellaneous"),
		e("__m256i", "_mm256_blend_epi16", "a:__m256i,b:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_blend_epi32", "a:__m256i,b:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_blendv_epi8", "a:__m256i,b:__m256i,mask:__m256i", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_packs_epi16", "a:__m256i,b:__m256i", "AVX2", "Miscellaneous"),
		e("__m256i", "_mm256_packus_epi16", "a:__m256i,b:__m256i", "AVX2", "Miscellaneous"),
		e("__m256i", "_mm256_packs_epi32", "a:__m256i,b:__m256i", "AVX2", "Miscellaneous"),
		e("__m256i", "_mm256_packus_epi32", "a:__m256i,b:__m256i", "AVX2", "Miscellaneous"),
		e("int", "_mm256_movemask_epi8", "a:__m256i", "AVX2", "Miscellaneous"),
		e("__m256i", "_mm256_permute4x64_epi64", "a:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256d", "_mm256_permute4x64_pd", "a:__m256d,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_permute2x128_si256", "a:__m256i,b:__m256i,imm8:int", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_permutevar8x32_epi32", "a:__m256i,idx:__m256i", "AVX2", "Swizzle"),
		e("__m256", "_mm256_permutevar8x32_ps", "a:__m256,idx:__m256i", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_bslli_epi128", "a:__m256i,imm8:int", "AVX2", "Shift"),
		e("__m256i", "_mm256_bsrli_epi128", "a:__m256i,imm8:int", "AVX2", "Shift"),
		e("__m256i", "_mm256_sllv_epi32", "a:__m256i,count:__m256i", "AVX2", "Shift"),
		e("__m256i", "_mm256_srlv_epi32", "a:__m256i,count:__m256i", "AVX2", "Shift"),
		e("__m256i", "_mm256_srav_epi32", "a:__m256i,count:__m256i", "AVX2", "Shift"),
		e("__m256i", "_mm256_sllv_epi64", "a:__m256i,count:__m256i", "AVX2", "Shift"),
		e("__m256i", "_mm256_srlv_epi64", "a:__m256i,count:__m256i", "AVX2", "Shift"),
		e("__m256i", "_mm256_cvtepi8_epi16", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_cvtepi8_epi32", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_cvtepu8_epi16", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_cvtepu8_epi32", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_cvtepi16_epi32", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_cvtepu16_epi32", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_cvtepi32_epi64", "a:__m128i", "AVX2", "Convert"),
		e("__m256i", "_mm256_i32gather_epi32", "base_addr:int const*,vindex:__m256i,scale:int", "AVX2", "Load"),
		e("__m256", "_mm256_i32gather_ps", "base_addr:float const*,vindex:__m256i,scale:int", "AVX2", "Load"),
		e("__m256d", "_mm256_i32gather_pd", "base_addr:double const*,vindex:__m128i,scale:int", "AVX2", "Load"),
		e("__m256i", "_mm256_maskload_epi32", "mem_addr:int const*,mask:__m256i", "AVX2", "Load"),
		e("void", "_mm256_maskstore_epi32", "mem_addr:int*,mask:__m256i,a:__m256i", "AVX2", "Store"),
		e("__m256i", "_mm256_broadcastsi128_si256", "a:__m128i", "AVX2", "Swizzle"),
		e("__m256", "_mm256_broadcastss_ps", "a:__m128", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_broadcastb_epi8", "a:__m128i", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_broadcastw_epi16", "a:__m128i", "AVX2", "Swizzle"),
		e("__m256i", "_mm256_broadcastd_epi32", "a:__m128i", "AVX2", "Swizzle"),
	)

	// ---- FMA (immintrin.h): the full 32-intrinsic family -------------
	for _, op := range []string{"fmadd", "fmsub", "fnmadd", "fnmsub", "fmaddsub", "fmsubadd"} {
		for _, t := range []struct{ v, s string }{
			{"__m128", "ps"}, {"__m128d", "pd"}, {"__m256", "ps"}, {"__m256d", "pd"},
		} {
			pfx := "_mm_"
			if strings.HasPrefix(t.v, "__m256") {
				pfx = "_mm256_"
			}
			add(e(t.v, pfx+op+"_"+t.s, "a:"+t.v+",b:"+t.v+",c:"+t.v, "FMA", "Arithmetic"))
		}
	}
	for _, op := range []string{"fmadd", "fmsub", "fnmadd", "fnmsub"} {
		add(e("__m128", "_mm_"+op+"_ss", "a:__m128,b:__m128,c:__m128", "FMA", "Arithmetic"))
		add(e("__m128d", "_mm_"+op+"_sd", "a:__m128d,b:__m128d,c:__m128d", "FMA", "Arithmetic"))
	}

	// ---- FP16C: half-precision conversion -----------------------------
	add(
		e("__m128", "_mm_cvtph_ps", "a:__m128i", "FP16C", "Convert"),
		e("__m256", "_mm256_cvtph_ps", "a:__m128i", "FP16C", "Convert"),
		e("__m128i", "_mm_cvtps_ph", "a:__m128,rounding:int", "FP16C", "Convert"),
		e("__m128i", "_mm256_cvtps_ph", "a:__m256,rounding:int", "FP16C", "Convert"),
	)

	// ---- RDRAND / RDSEED ----------------------------------------------
	add(
		e("int", "_rdrand16_step", "val:unsigned short*", "RDRAND", "Random"),
		e("int", "_rdrand32_step", "val:unsigned int*", "RDRAND", "Random"),
		e("int", "_rdrand64_step", "val:unsigned __int64*", "RDRAND", "Random"),
		e("int", "_rdseed16_step", "val:unsigned short*", "RDSEED", "Random"),
		e("int", "_rdseed32_step", "val:unsigned int*", "RDSEED", "Random"),
		e("int", "_rdseed64_step", "val:unsigned __int64*", "RDSEED", "Random"),
	)

	// ---- Small scalar extensions ---------------------------------------
	add(
		e("int", "_mm_popcnt_u32", "a:unsigned int", "POPCNT", "Bit Manipulation"),
		e("__int64", "_mm_popcnt_u64", "a:unsigned __int64", "POPCNT", "Bit Manipulation"),
		e("unsigned int", "_lzcnt_u32", "a:unsigned int", "LZCNT", "Bit Manipulation"),
		e("unsigned __int64", "_lzcnt_u64", "a:unsigned __int64", "LZCNT", "Bit Manipulation"),
		e("unsigned int", "_tzcnt_u32", "a:unsigned int", "BMI1", "Bit Manipulation"),
		e("unsigned __int64", "_tzcnt_u64", "a:unsigned __int64", "BMI1", "Bit Manipulation"),
		e("unsigned int", "_blsr_u32", "a:unsigned int", "BMI1", "Bit Manipulation"),
		e("unsigned int", "_pext_u32", "a:unsigned int,mask:unsigned int", "BMI2", "Bit Manipulation"),
		e("unsigned int", "_pdep_u32", "a:unsigned int,mask:unsigned int", "BMI2", "Bit Manipulation"),
		e("unsigned __int64", "_rdtsc", "", "TSC", "General Support"),
		e("__m128i", "_mm_aesdec_si128", "a:__m128i,RoundKey:__m128i", "AES", "Cryptography"),
		e("__m128i", "_mm_aesenc_si128", "a:__m128i,RoundKey:__m128i", "AES", "Cryptography"),
		e("__m128i", "_mm_sha1msg1_epu32", "a:__m128i,b:__m128i", "SHA", "Cryptography"),
		e("__m128i", "_mm_sha256msg1_epu32", "a:__m128i,b:__m128i", "SHA", "Cryptography"),
		e("__m128i", "_mm_clmulepi64_si128", "a:__m128i,b:__m128i,imm8:int", "PCLMULQDQ", "Application-Targeted"),
	)

	// ---- SVML (curated slice) ------------------------------------------
	for _, t := range []struct{ v, s string }{
		{"__m128", "ps"}, {"__m128d", "pd"}, {"__m256", "ps"}, {"__m256d", "pd"},
	} {
		pfx := "_mm_"
		if strings.HasPrefix(t.v, "__m256") {
			pfx = "_mm256_"
		}
		for _, op := range []string{"sin", "cos", "exp", "log", "pow2o3"} {
			cat := "Trigonometry"
			if op == "exp" || op == "log" || op == "pow2o3" {
				cat = "Elementary Math Functions"
			}
			add(e(t.v, pfx+op+"_"+t.s, "a:"+t.v, "SVML", cat))
		}
		add(e(t.v, pfx+"cdfnorm_"+t.s, "a:"+t.v, "SVML", "Probability/Statistics"))
		add(e(t.v, pfx+"svml_sqrt_"+t.s, "a:"+t.v, "SVML", "Elementary Math Functions"))
		add(e(t.v, pfx+"invsqrt_"+t.s, "a:"+t.v, "SVML", "Elementary Math Functions"))
	}
	add(
		e("__m128i", "_mm_div_epi32", "a:__m128i,b:__m128i", "SVML", "Arithmetic"),
		e("__m256i", "_mm256_div_epi32", "a:__m256i,b:__m256i", "SVML", "Arithmetic"),
		e("__m128i", "_mm_rem_epi32", "a:__m128i,b:__m128i", "SVML", "Arithmetic"),
		e("__m256i", "_mm256_rem_epi32", "a:__m256i,b:__m256i", "SVML", "Arithmetic"),
	)

	// ---- AVX-512 (curated slice; remainder synthesized) ----------------
	for _, t := range []struct{ v, s string }{{"__m512", "ps"}, {"__m512d", "pd"}} {
		for _, op := range []string{"add", "sub", "mul", "div", "max", "min"} {
			add(e(t.v, "_mm512_"+op+"_"+t.s, "a:"+t.v+",b:"+t.v, "AVX-512", "Arithmetic"))
		}
		add(e(t.v, "_mm512_fmadd_"+t.s, "a:"+t.v+",b:"+t.v+",c:"+t.v, "AVX-512", "Arithmetic"))
		add(e(t.v, "_mm512_sqrt_"+t.s, "a:"+t.v, "AVX-512", "Elementary Math Functions"))
		add(e(t.v, "_mm512_set1_"+t.s[len(t.s)-2:], "a:"+map[string]string{"ps": "float", "pd": "double"}[t.s], "AVX-512", "Set"))
	}
	add(
		e("__m512", "_mm512_loadu_ps", "mem_addr:float const*", "AVX-512", "Load"),
		e("void", "_mm512_storeu_ps", "mem_addr:float*,a:__m512", "AVX-512", "Store"),
		e("__m512d", "_mm512_loadu_pd", "mem_addr:double const*", "AVX-512", "Load"),
		e("void", "_mm512_storeu_pd", "mem_addr:double*,a:__m512d", "AVX-512", "Store"),
		e("__m512i", "_mm512_loadu_si512", "mem_addr:void const*", "AVX-512", "Load"),
		e("void", "_mm512_storeu_si512", "mem_addr:void*,a:__m512i", "AVX-512", "Store"),
		e("__m512", "_mm512_setzero_ps", "", "AVX-512", "Set"),
		e("__m512d", "_mm512_setzero_pd", "", "AVX-512", "Set"),
		e("__m512i", "_mm512_setzero_si512", "", "AVX-512", "Set"),
		e("float", "_mm512_reduce_add_ps", "a:__m512", "AVX-512", "Arithmetic"),
		e("double", "_mm512_reduce_add_pd", "a:__m512d", "AVX-512", "Arithmetic"),
		e("__m512i", "_mm512_add_epi32", "a:__m512i,b:__m512i", "AVX-512", "Arithmetic"),
		e("__m512i", "_mm512_sub_epi32", "a:__m512i,b:__m512i", "AVX-512", "Arithmetic"),
		e("__m512i", "_mm512_and_si512", "a:__m512i,b:__m512i", "AVX-512", "Logical"),
		e("__m512i", "_mm512_or_si512", "a:__m512i,b:__m512i", "AVX-512", "Logical"),
		e("__m512i", "_mm512_rol_epi32", "a:__m512i,imm8:int", "AVX-512", "Shift"),
		e("__mmask16", "_mm512_cmpeq_epi32_mask", "a:__m512i,b:__m512i", "AVX-512", "Compare"),
		e("__mmask8", "_mm_cmp_epi16_mask", "a:__m128i,b:__m128i,imm8:int", "AVX-512", "Compare"),
		e("__m512", "_mm512_mask_add_ps", "src:__m512,k:__mmask16,a:__m512,b:__m512", "AVX-512", "Arithmetic"),
	)
	// The paper's Table 1a cites _mm512_storenrngo_pd (a KNC-shared
	// no-read-no-globally-ordered store).
	add(Entry{Ret: "void", Name: "_mm512_storenrngo_pd",
		Params: "mv:void*,v:__m512d", CPUID: []string{"AVX-512", "KNCNI"}, Cat: "Store"})

	// ---- KNC (curated slice) --------------------------------------------
	add(
		e("__m512", "_mm512_extload_ps", "mt:void const*,conv:int,bc:int,hint:int", "KNCNI", "Load"),
		e("void", "_mm512_extstore_ps", "mt:void*,v:__m512,conv:int,hint:int", "KNCNI", "Store"),
		e("__m512i", "_mm512_fmadd233_epi32", "a:__m512i,b:__m512i", "KNCNI", "Arithmetic"),
		e("float", "_mm512_reduce_gmax_ps", "a:__m512", "KNCNI", "Arithmetic"),
		e("__m512i", "_mm512_swizzle_epi32", "v:__m512i,s:int", "KNCNI", "Swizzle"),
	)

	return out
}

// expandEntry turns a compact Entry into a full XML Intrinsic record,
// synthesising the description/operation boilerplate the way the vendor
// file phrases it.
func expandEntry(en Entry) Intrinsic {
	in := Intrinsic{
		Name:    en.Name,
		RetType: en.Ret,
		CPUID:   en.CPUID,
	}
	if en.Cat != "" {
		in.Category = []string{en.Cat}
	}
	if en.Params != "" {
		// Manual walk instead of strings.Split/SplitN: synthesis expands
		// thousands of entries under a sync.Once on the figure path, and
		// the intermediate split slices dominated its allocation profile.
		in.Params = make([]Param, 0, strings.Count(en.Params, ",")+1)
		for s := en.Params; s != ""; {
			var p string
			if i := strings.IndexByte(s, ','); i >= 0 {
				p, s = s[:i], s[i+1:]
			} else {
				p, s = s, ""
			}
			j := strings.IndexByte(p, ':')
			in.Params = append(in.Params, Param{VarName: p[:j], Type: p[j+1:]})
		}
	} else {
		in.Params = []Param{{VarName: "", Type: "void"}}
	}
	in.Types = []string{typeClass(en)}
	in.Description = describe(en)
	in.Operation = operationPseudo(en)
	mn := en.Instr
	if mn == "" {
		mn = deriveMnemonic(en.Name)
	}
	in.Instruction = []Instruction{{Name: mn, Form: deriveForm(en)}}
	in.Header = headerFor(en.CPUID[0])
	return in
}

func typeClass(en Entry) string {
	n := en.Name
	switch {
	case strings.Contains(n, "_ps") || strings.Contains(n, "_pd") ||
		strings.Contains(n, "_ss") || strings.Contains(n, "_sd"):
		return "Floating Point"
	case strings.Contains(n, "_epi") || strings.Contains(n, "_epu") ||
		strings.Contains(n, "_si") || strings.Contains(n, "_pi") ||
		strings.Contains(n, "_u8") || strings.Contains(n, "_u16") ||
		strings.Contains(n, "_u32") || strings.Contains(n, "_u64"):
		return "Integer"
	default:
		return "Other"
	}
}

const describeTail = ", and store the results in \"dst\"."

func describe(en Entry) string {
	verb := verbFor(en.Cat, opToken(en.Name))
	width := elementPhrase(en.Name)
	var b strings.Builder
	b.Grow(len(verb) + 1 + len(width) + len(describeTail))
	writeTitled(&b, verb)
	b.WriteByte(' ')
	b.WriteString(width)
	b.WriteString(describeTail)
	return b.String()
}

// writeTitled is strings.Title restricted to the ASCII verb phrases this
// file produces (one capital after every separator), written straight
// into the builder so describe costs a single allocation instead of the
// Sprintf + Title pair it replaced.
func writeTitled(b *strings.Builder, s string) {
	sep := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if sep && 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		sep = !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			'0' <= c && c <= '9' || c == '_')
		b.WriteByte(c)
	}
}

func verbFor(cat, op string) string {
	switch cat {
	case "Load":
		return "load " + op
	case "Store":
		return "store " + op
	case "Set":
		return "broadcast or set " + op
	case "Compare":
		return "compare (" + op + ")"
	case "Convert", "Cast":
		return "convert (" + op + ")"
	default:
		return op
	}
}

func opToken(name string) string {
	t := strings.TrimPrefix(name, "_mm512_")
	t = strings.TrimPrefix(t, "_mm256_")
	t = strings.TrimPrefix(t, "_mm_")
	t = strings.TrimPrefix(t, "_m_")
	t = strings.TrimPrefix(t, "_")
	if i := strings.LastIndexByte(t, '_'); i > 0 {
		t = t[:i]
	}
	return t
}

func elementPhrase(name string) string {
	switch {
	case strings.HasSuffix(name, "_pd") || strings.HasSuffix(name, "_sd"):
		return "packed double-precision (64-bit) floating-point elements in \"a\" and \"b\""
	case strings.HasSuffix(name, "_ps") || strings.HasSuffix(name, "_ss"):
		return "packed single-precision (32-bit) floating-point elements in \"a\" and \"b\""
	case strings.Contains(name, "epi8") || strings.Contains(name, "epu8"):
		return "packed 8-bit integers in \"a\" and \"b\""
	case strings.Contains(name, "epi16") || strings.Contains(name, "epu16"):
		return "packed 16-bit integers in \"a\" and \"b\""
	case strings.Contains(name, "epi32") || strings.Contains(name, "epu32"):
		return "packed 32-bit integers in \"a\" and \"b\""
	case strings.Contains(name, "epi64") || strings.Contains(name, "epu64"):
		return "packed 64-bit integers in \"a\" and \"b\""
	default:
		return "the source operands"
	}
}

// pseudoByBits precomputes the four possible operation pseudocode
// blocks (the template depends only on the register width at the fixed
// 32-bit step), so expanding thousands of entries shares four strings
// instead of formatting one per entry.
var pseudoByBits = func() map[int]string {
	out := make(map[int]string, 4)
	for _, bits := range []int{64, 128, 256, 512} {
		step := 32
		lanes := bits / step
		out[bits] = fmt.Sprintf("FOR j := 0 to %d\n\ti := j*%d\n\tdst[i+%d:i] := OP(a[i+%d:i], b[i+%d:i])\nENDFOR\ndst[MAX:%d] := 0",
			lanes-1, step, step-1, step-1, step-1, bits)
	}
	return out
}()

func operationPseudo(en Entry) string {
	bits := 128
	switch {
	case strings.HasPrefix(en.Ret, "__m256") || strings.Contains(en.Params, "__m256"):
		bits = 256
	case strings.HasPrefix(en.Ret, "__m512") || strings.Contains(en.Params, "__m512"):
		bits = 512
	case strings.HasPrefix(en.Ret, "__m64") || strings.Contains(en.Params, "__m64"):
		bits = 64
	}
	return pseudoByBits[bits]
}

// deriveMnemonic guesses the assembly mnemonic from the intrinsic name,
// following Intel's conventions (AVX-era instructions carry a "v" prefix;
// the type suffix folds into the mnemonic: add+ps → [v]addps).
func deriveMnemonic(name string) string {
	op := opToken(name)
	suffix := ""
	if i := strings.LastIndexByte(name, '_'); i >= 0 {
		suffix = name[i+1:]
	}
	v := ""
	if strings.HasPrefix(name, "_mm256_") || strings.HasPrefix(name, "_mm512_") {
		v = "v"
	}
	switch suffix {
	case "ps", "pd", "ss", "sd":
		return v + op[:min(len(op), 10)] + suffix
	case "epi8", "epu8":
		return v + "p" + op + "b"
	case "epi16", "epu16":
		return v + "p" + op + "w"
	case "epi32", "epu32":
		return v + "p" + op + "d"
	case "epi64", "epu64":
		return v + "p" + op + "q"
	default:
		return v + op
	}
}

// formTable holds every instruction-form string deriveForm can produce:
// the register class repeated min(params+1, 3) times. Returning the
// precomputed constant replaces the per-call map, split, and join the
// original implementation allocated.
var formTable = map[int][3]string{
	64:  {"mm", "mm, mm", "mm, mm, mm"},
	128: {"xmm", "xmm, xmm", "xmm, xmm, xmm"},
	256: {"ymm", "ymm, ymm", "ymm, ymm, ymm"},
	512: {"zmm", "zmm, zmm", "zmm, zmm, zmm"},
}

func deriveForm(en Entry) string {
	bits := 128
	switch {
	case strings.HasPrefix(en.Ret, "__m256"):
		bits = 256
	case strings.HasPrefix(en.Ret, "__m512"):
		bits = 512
	case strings.HasPrefix(en.Ret, "__m64"):
		bits = 64
	}
	n := 0
	if en.Params != "" {
		n = strings.Count(en.Params, ",") + 1
	}
	if n > 2 {
		n = 2
	}
	return formTable[bits][n]
}

func headerFor(cpuid string) string {
	switch strings.ToUpper(cpuid) {
	case "MMX":
		return "mmintrin.h"
	case "SSE":
		return "xmmintrin.h"
	case "SSE2":
		return "emmintrin.h"
	case "SSE3":
		return "pmmintrin.h"
	case "SSSE3":
		return "tmmintrin.h"
	case "SSE4.1":
		return "smmintrin.h"
	case "SSE4.2":
		return "nmmintrin.h"
	default:
		return "immintrin.h"
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
