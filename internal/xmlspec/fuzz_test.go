package xmlspec

import (
	"strings"
	"testing"
)

// FuzzParseTyp: the type resolver must never panic and must round-trip
// what it accepts.
func FuzzParseTyp(f *testing.F) {
	for _, seed := range []string{
		"__m256d", "float const*", "unsigned __int64", "void*", "__m128i const*",
		"int", "char", "", "const", "*", "float**", "__m4096z",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		typ, err := ParseTyp(s)
		if err != nil {
			return
		}
		// Accepted spellings produce a printable C name that reparses to
		// an equivalent type.
		back, err := ParseTyp(typ.CName())
		if err != nil {
			t.Fatalf("CName %q of accepted %q does not reparse: %v", typ.CName(), s, err)
		}
		if back.CName() != typ.CName() {
			t.Fatalf("round trip %q → %q → %q", s, typ.CName(), back.CName())
		}
	})
}

// FuzzParseDocument: arbitrary XML documents must never panic the parser
// or the resolver.
func FuzzParseDocument(f *testing.F) {
	f.Add(`<intrinsics_list version="1"><intrinsic rettype="__m128" name="_mm_x_ps">
<CPUID>SSE</CPUID><category>Arithmetic</category>
<parameter varname="a" type="__m128"/></intrinsic></intrinsics_list>`)
	f.Add(`<intrinsics_list></intrinsics_list>`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, doc string) {
		file, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		rs, _ := Resolve(file)
		for _, r := range rs {
			_ = r.PrimaryFamily()
			_ = r.ReadsMem
		}
	})
}
