package xmlspec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Stats aggregates a resolved specification the way the paper reports it:
// intrinsic counts per ISA (Table 1b), per category (Table 1a's taxonomy),
// and the AVX-512/KNC sharing figure.
type Stats struct {
	Version      string
	Total        int
	PerFamily    map[isa.Family]int
	PerCategory  map[isa.Category]int
	SharedAVXKNC int // intrinsics carrying both AVX-512 and KNC CPUIDs
	MemReads     int
	MemWrites    int
	Skipped      int
}

// Table1bTotal sums the counts of the 13 families Table 1b reports
// (5912 in data-3.3.16.xml); the small extension sets and any
// unrecognised future ISAs are excluded, matching the paper's accounting.
func (st *Stats) Table1bTotal() int {
	total := 0
	for _, f := range isa.Table1bFamilies() {
		total += st.PerFamily[f]
	}
	return total
}

// ComputeStats aggregates resolved intrinsics. skipped is the number of
// entries the resolver rejected (schema drift), recorded for Table 3.
func ComputeStats(version string, rs []*Resolved, skipped int) *Stats {
	st := &Stats{
		Version:     version,
		Total:       len(rs),
		PerFamily:   make(map[isa.Family]int),
		PerCategory: make(map[isa.Category]int),
		Skipped:     skipped,
	}
	for _, r := range rs {
		st.PerFamily[r.PrimaryFamily()]++
		for _, c := range r.Categories {
			st.PerCategory[c]++
		}
		if r.HasFamily(isa.AVX512) && r.HasFamily(isa.KNC) {
			st.SharedAVXKNC++
		}
		if r.ReadsMem {
			st.MemReads++
		}
		if r.WritesMem {
			st.MemWrites++
		}
	}
	return st
}

// Table1b renders the per-ISA counts in the paper's Table 1b layout.
func (st *Stats) Table1b() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s\n", "ISA", "Count")
	for _, f := range isa.Table1bFamilies() {
		fmt.Fprintf(&b, "%-8s %6d\n", f.String(), st.PerFamily[f])
	}
	fmt.Fprintf(&b, "%-8s %6d\n", "Total", st.Table1bTotal())
	fmt.Fprintf(&b, "(%d shared between AVX-512 and KNC)\n", st.SharedAVXKNC)
	return b.String()
}

// CategoryTable renders counts per category sorted descending, the
// classification view of Table 1a.
func (st *Stats) CategoryTable() string {
	type kv struct {
		c isa.Category
		n int
	}
	var rows []kv
	for c, n := range st.PerCategory {
		rows = append(rows, kv{c, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].c.String() < rows[j].c.String()
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s\n", "Category", "Count")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %6d\n", r.c.String(), r.n)
	}
	return b.String()
}
