package xmlspec

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// The vendor's data-*.xml files are proprietary downloads and unavailable
// offline, so this reproduction synthesises them: each version of Table 3
// is regenerated with the curated (hand-verified, real) intrinsics first
// and programmatically synthesised entries after, until the per-ISA counts
// match the published figures (Table 1b for data-3.3.16.xml). Synthesised
// names follow Intel's naming grammar (prefix by register width, masked
// variants, element-type suffixes), so the entire generator pipeline —
// parse → resolve types → infer effects → emit bindings — runs the same
// code path it would on the vendor file.

// VersionInfo describes one historic specification release (Table 3).
type VersionInfo struct {
	Version string
	Date    string // dd.mm.yyyy as the paper prints it
	// Counts gives the per-family intrinsic count (attribution by
	// primary CPUID). Families absent from the map are absent from the
	// release.
	Counts map[isa.Family]int
	// SharedAVXKNC is the number of AVX-512 intrinsics that also carry
	// the KNCNI CPUID in this release.
	SharedAVXKNC int
	// TechAttr is the 3.4 schema drift: intrinsics carry a tech="..."
	// attribute naming their ISA group.
	TechAttr bool
	// FutureEntries counts intrinsics with CPUID strings unknown to
	// this reproduction (exercises forward compatibility).
	FutureEntries int
}

// table1bCounts are the published per-ISA counts of Table 1b.
var table1bCounts = map[isa.Family]int{
	isa.MMX: 124, isa.SSE: 154, isa.SSE2: 236, isa.SSE3: 11,
	isa.SSSE3: 32, isa.SSE41: 61, isa.SSE42: 19, isa.AVX: 188,
	isa.AVX2: 191, isa.AVX512: 3857, isa.FMA: 32, isa.KNC: 601,
	isa.SVML: 406,
}

// Table1bCounts returns a copy of the published Table 1b counts.
func Table1bCounts() map[isa.Family]int {
	out := make(map[isa.Family]int, len(table1bCounts))
	for k, v := range table1bCounts {
		out[k] = v
	}
	return out
}

func withAVX512(n int) map[isa.Family]int {
	m := Table1bCounts()
	m[isa.AVX512] = n
	return m
}

// Versions returns the six releases of Table 3 in chronological order.
// AVX-512 coverage is what grew between releases; the pre-AVX ISAs were
// stable over the period.
func Versions() []VersionInfo {
	return []VersionInfo{
		{Version: "3.2.2", Date: "03.09.2014", Counts: withAVX512(0), SharedAVXKNC: 0},
		{Version: "3.3.1", Date: "17.10.2014", Counts: withAVX512(1624), SharedAVXKNC: 338},
		{Version: "3.3.11", Date: "27.07.2015", Counts: withAVX512(3082), SharedAVXKNC: 338},
		{Version: "3.3.14", Date: "12.01.2016", Counts: withAVX512(3705), SharedAVXKNC: 338},
		{Version: "3.3.16", Date: "26.01.2016", Counts: Table1bCounts(), SharedAVXKNC: 338},
		{Version: "3.4", Date: "07.09.2017", Counts: Table1bCounts(), SharedAVXKNC: 338,
			TechAttr: true, FutureEntries: 15},
	}
}

// LookupVersion finds a release by version string.
func LookupVersion(v string) (VersionInfo, error) {
	for _, vi := range Versions() {
		if vi.Version == v {
			return vi, nil
		}
	}
	return VersionInfo{}, fmt.Errorf("xmlspec: unknown specification version %q", v)
}

// Latest returns the release the paper generates from (data-3.3.16.xml).
func Latest() VersionInfo {
	vs := Versions()
	for _, v := range vs {
		if v.Version == "3.3.16" {
			return v
		}
	}
	return vs[len(vs)-1]
}

// Generate synthesises the specification file for a release.
func Generate(vi VersionInfo) *File {
	f := &File{Version: vi.Version, Date: vi.Date}

	// Curated entries first, capped per family at the release's count
	// (AVX-512 entries are absent from 3.2.2, which predates it).
	curated := CuratedEntries()
	perFam := map[isa.Family]int{}
	famOf := func(cpuid string) isa.Family {
		fam, _ := isa.ParseFamily(cpuid)
		return fam
	}
	taken := map[string]bool{}
	curatedShared := 0
	for _, en := range curated {
		fam := famOf(en.CPUID[0])
		// Families absent from the Counts map are the small extension
		// sets (FP16C, RDRAND, POPCNT, …): Table 1b does not count
		// them, but the spec carries them in every release.
		limit, counted := vi.Counts[fam]
		if (counted && perFam[fam] >= limit) || taken[en.Name] {
			continue
		}
		perFam[fam]++
		taken[en.Name] = true
		if fam == isa.AVX512 && len(en.CPUID) > 1 {
			curatedShared++
		}
		f.Intrinsics = append(f.Intrinsics, expandEntry(en))
	}

	// Synthesised entries fill each family to its published count.
	fams := make([]isa.Family, 0, len(vi.Counts))
	for fam := range vi.Counts {
		fams = append(fams, fam)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	for _, fam := range fams {
		need := vi.Counts[fam] - perFam[fam]
		if need <= 0 {
			continue
		}
		shared := 0
		if fam == isa.AVX512 {
			shared = vi.SharedAVXKNC - curatedShared
			if shared < 0 {
				shared = 0
			}
		}
		for _, en := range synthEntries(fam, need, shared, taken) {
			in := expandEntry(en)
			if vi.TechAttr {
				in.Tech = techName(fam)
			}
			f.Intrinsics = append(f.Intrinsics, in)
		}
	}

	// Forward-compatibility probes: intrinsics whose CPUID this
	// reproduction does not know (schema 3.4 added post-paper ISAs).
	for i := 0; i < vi.FutureEntries; i++ {
		in := expandEntry(Entry{
			Ret:    "__m512i",
			Name:   fmt.Sprintf("_tile_dpbusd_probe%d_epi32", i),
			Params: "src:__m512i,a:__m512i,b:__m512i",
			CPUID:  []string{"AMX_TILE_FUTURE"},
			Cat:    "Arithmetic",
		})
		if vi.TechAttr {
			in.Tech = "AVX-512"
		}
		f.Intrinsics = append(f.Intrinsics, in)
	}
	return f
}

func techName(f isa.Family) string {
	switch f {
	case isa.MMX:
		return "MMX"
	case isa.SSE, isa.SSE2, isa.SSE3, isa.SSSE3, isa.SSE41, isa.SSE42:
		return "SSE"
	case isa.AVX, isa.AVX2, isa.FMA:
		return "AVX"
	case isa.AVX512:
		return "AVX-512"
	case isa.KNC:
		return "KNC"
	case isa.SVML:
		return "SVML"
	default:
		return "Other"
	}
}

// synthOp is one operation template used to stamp out synthetic names.
type synthOp struct {
	op  string
	cat string
	// arity: 1 or 2 vector inputs; imm adds a trailing immediate.
	arity int
	imm   bool
}

var synthOps = []synthOp{
	{"add", "Arithmetic", 2, false}, {"sub", "Arithmetic", 2, false},
	{"mul", "Arithmetic", 2, false}, {"mullo", "Arithmetic", 2, false},
	{"mulhi", "Arithmetic", 2, false}, {"div", "Arithmetic", 2, false},
	{"adds", "Arithmetic", 2, false}, {"subs", "Arithmetic", 2, false},
	{"abs", "Special Math Functions", 1, false},
	{"max", "Special Math Functions", 2, false},
	{"min", "Special Math Functions", 2, false},
	{"and", "Logical", 2, false}, {"or", "Logical", 2, false},
	{"xor", "Logical", 2, false}, {"andnot", "Logical", 2, false},
	{"sll", "Shift", 2, false}, {"srl", "Shift", 2, false},
	{"sra", "Shift", 2, false},
	{"slli", "Shift", 1, true}, {"srli", "Shift", 1, true},
	{"srai", "Shift", 1, true},
	{"rol", "Shift", 1, true}, {"ror", "Shift", 1, true},
	{"rolv", "Shift", 2, false}, {"rorv", "Shift", 2, false},
	{"cmpeq", "Compare", 2, false}, {"cmpgt", "Compare", 2, false},
	{"cmplt", "Compare", 2, false}, {"cmple", "Compare", 2, false},
	{"cmpge", "Compare", 2, false}, {"cmpneq", "Compare", 2, false},
	{"unpacklo", "Swizzle", 2, false}, {"unpackhi", "Swizzle", 2, false},
	{"shuffle", "Swizzle", 1, true}, {"permutex", "Swizzle", 1, true},
	{"permutexvar", "Swizzle", 2, false},
	{"broadcast", "Swizzle", 1, false},
	{"blend", "Swizzle", 1, true},
	{"compress", "Swizzle", 1, false}, {"expand", "Swizzle", 1, false},
	{"ternarylogic", "Logical", 2, true},
	{"conflict", "Miscellaneous", 1, false},
	{"lzcnt", "Bit Manipulation", 1, false},
	{"popcnt", "Bit Manipulation", 1, false},
	{"madd", "Arithmetic", 2, false},
	{"dpwssd", "Arithmetic", 2, false},
	{"avg", "Probability/Statistics", 2, false},
	{"sad", "Miscellaneous", 2, false},
	{"sqrt", "Elementary Math Functions", 1, false},
	{"rsqrt14", "Elementary Math Functions", 1, false},
	{"rcp14", "Elementary Math Functions", 1, false},
	{"scalef", "Arithmetic", 2, false},
	{"getexp", "Miscellaneous", 1, false},
	{"getmant", "Miscellaneous", 1, true},
	{"reduce", "Special Math Functions", 1, true},
	{"roundscale", "Special Math Functions", 1, true},
	{"fixupimm", "Miscellaneous", 2, true},
	{"range", "Special Math Functions", 2, true},
	{"alignr", "Miscellaneous", 2, true},
	{"mov", "Move", 1, false},
	{"movedup", "Move", 1, false},
	{"cvt", "Convert", 1, false},
	{"cvtt", "Convert", 1, false},
	{"load", "Load", 0, false},
	{"loadu", "Load", 0, false},
	{"store", "Store", 0, false},
	{"storeu", "Store", 0, false},
	{"gather", "Load", 0, false},
	{"scatter", "Store", 0, false},
	{"test", "Logical", 2, false},
	{"sin", "Trigonometry", 1, false}, {"cos", "Trigonometry", 1, false},
	{"tan", "Trigonometry", 1, false}, {"asin", "Trigonometry", 1, false},
	{"acos", "Trigonometry", 1, false}, {"atan", "Trigonometry", 1, false},
	{"sinh", "Trigonometry", 1, false}, {"cosh", "Trigonometry", 1, false},
	{"exp", "Elementary Math Functions", 1, false},
	{"exp2", "Elementary Math Functions", 1, false},
	{"log", "Elementary Math Functions", 1, false},
	{"log2", "Elementary Math Functions", 1, false},
	{"log10", "Elementary Math Functions", 1, false},
	{"cbrt", "Elementary Math Functions", 1, false},
	{"erf", "Probability/Statistics", 1, false},
	{"erfc", "Probability/Statistics", 1, false},
	{"cdfnorminv", "Probability/Statistics", 1, false},
}

// famShape describes how a family's synthetic names are built.
type famShape struct {
	prefixes []string // name prefixes in priority order
	suffixes []string // element-type suffixes
	vec      string   // register type for vector operands
	scalar   bool     // family operates on scalars, not registers
}

func shapeFor(f isa.Family) famShape {
	switch f {
	case isa.MMX:
		return famShape{prefixes: []string{"_mm_", "_m_p"}, suffixes: []string{"pi8", "pi16", "pi32", "pu8", "pu16", "si64"}, vec: "__m64"}
	case isa.SSE:
		return famShape{prefixes: []string{"_mm_"}, suffixes: []string{"ps", "ss", "pi16", "pu16"}, vec: "__m128"}
	case isa.SSE2:
		return famShape{prefixes: []string{"_mm_"}, suffixes: []string{"pd", "sd", "epi8", "epi16", "epi32", "epi64", "epu8", "epu16", "epu32", "si128"}, vec: "__m128i"}
	case isa.SSE3:
		return famShape{prefixes: []string{"_mm_"}, suffixes: []string{"ps", "pd"}, vec: "__m128"}
	case isa.SSSE3:
		return famShape{prefixes: []string{"_mm_", "_mm_x"}, suffixes: []string{"pi8", "pi16", "pi32", "epi8x"}, vec: "__m64"}
	case isa.SSE41:
		return famShape{prefixes: []string{"_mm_"}, suffixes: []string{"epi64", "epu64", "ps1", "pd1"}, vec: "__m128i"}
	case isa.SSE42:
		return famShape{prefixes: []string{"_mm_cmpestr", "_mm_cmpistr"}, suffixes: []string{"a", "c", "o", "s", "z"}, vec: "__m128i"}
	case isa.AVX:
		return famShape{prefixes: []string{"_mm256_"}, suffixes: []string{"ps", "pd", "si256"}, vec: "__m256"}
	case isa.AVX2:
		return famShape{prefixes: []string{"_mm256_"}, suffixes: []string{"epi8", "epi16", "epi32", "epi64", "epu8", "epu16", "epu32", "epu64", "si256"}, vec: "__m256i"}
	case isa.AVX512:
		return famShape{
			prefixes: []string{"_mm512_", "_mm512_mask_", "_mm512_maskz_",
				"_mm256_mask_", "_mm256_maskz_", "_mm_mask_", "_mm_maskz_",
				"_mm512_mask2_", "_mm512_mask3_"},
			suffixes: []string{"ps", "pd", "epi8", "epi16", "epi32", "epi64",
				"epu8", "epu16", "epu32", "epu64", "si512", "sd", "ss", "ph"},
			vec: "__m512",
		}
	case isa.FMA:
		return famShape{prefixes: []string{"_mm_", "_mm256_"}, suffixes: []string{"ps", "pd"}, vec: "__m256"}
	case isa.KNC:
		return famShape{
			prefixes: []string{"_mm512_kn_", "_mm512_mask_kn_", "_mm512_ext_", "_mm512_mask_ext_"},
			suffixes: []string{"ps", "pd", "epi32", "epi64", "epu32", "si512"},
			vec:      "__m512i",
		}
	case isa.SVML:
		return famShape{
			prefixes: []string{"_mm_svml_", "_mm256_svml_", "_mm512_svml_", "_mm_", "_mm256_", "_mm512_"},
			suffixes: []string{"ps", "pd", "epi32", "epu32", "epi64"},
			vec:      "__m256",
		}
	default:
		return famShape{prefixes: []string{"_"}, suffixes: []string{"u32"}, scalar: true}
	}
}

func vecForSuffix(sh famShape, prefix, suffix string) string {
	width := "__m128"
	switch {
	case strings.Contains(prefix, "512"):
		width = "__m512"
	case strings.Contains(prefix, "256"):
		width = "__m256"
	case sh.vec == "__m64":
		width = "__m64"
	}
	switch {
	case width == "__m64":
		return "__m64"
	case strings.HasPrefix(suffix, "ep") || strings.HasPrefix(suffix, "si"):
		switch width {
		case "__m512":
			return "__m512i"
		case "__m256":
			return "__m256i"
		default:
			return "__m128i"
		}
	case suffix == "pd" || suffix == "sd":
		switch width {
		case "__m512":
			return "__m512d"
		case "__m256":
			return "__m256d"
		default:
			return "__m128d"
		}
	default:
		return width
	}
}

// synthEntries stamps out `need` unique synthetic intrinsics for family f.
// The first `shared` of them also carry the KNCNI CPUID (the AVX-512/KNC
// overlap the paper reports). Names already in `taken` are skipped;
// generation is deterministic.
func synthEntries(f isa.Family, need, shared int, taken map[string]bool) []Entry {
	sh := shapeFor(f)
	cpuid := f.String()
	if f == isa.KNC {
		cpuid = "KNCNI"
	}
	// Shared hot-path state: the CPUID slices are reused across every
	// entry (expandEntry only reads them), the round decorations are the
	// three fixed strings "2"/"4"/"6", and the parameter list builds in a
	// reused strings.Builder — together these drop the synthesis pass
	// from ~8 allocations per entry to the 2 the Entry itself needs.
	cpuidOnly := []string{cpuid}
	cpuidShared := []string{cpuid, "KNCNI"}
	roundSuffix := [4]string{"", "2", "4", "6"}
	var pb strings.Builder
	out := make([]Entry, 0, need)
	// Iterate prefixes outermost so masked variants appear once the
	// plain family is exhausted, matching how the real set is dominated
	// by _mm512_mask_* names.
	for round := 0; len(out) < need && round < 4; round++ {
		for _, prefix := range sh.prefixes {
			for _, op := range synthOps {
				for _, suffix := range sh.suffixes {
					if len(out) >= need {
						return out
					}
					// Later rounds add width/variant decorations
					// (e.g. add2, add4) to widen the namespace.
					name := prefix + op.op + roundSuffix[round] + "_" + suffix
					if taken[name] {
						continue
					}
					taken[name] = true
					vec := vecForSuffix(sh, prefix, suffix)
					en := Entry{Ret: vec, Name: name, Cat: op.cat,
						CPUID: cpuidOnly}
					if len(out) < shared && f == isa.AVX512 {
						en.CPUID = cpuidShared
					}
					pb.Reset()
					if strings.Contains(prefix, "mask") {
						pb.WriteString("src:")
						pb.WriteString(vec)
						pb.WriteString(",k:__mmask16,")
					}
					switch op.cat {
					case "Load":
						en.Ret = vec
						pb.WriteString("mem_addr:void const*")
					case "Store":
						en.Ret = "void"
						pb.WriteString("mem_addr:void*,a:")
						pb.WriteString(vec)
					default:
						pb.WriteString("a:")
						pb.WriteString(vec)
						if op.arity == 2 {
							pb.WriteString(",b:")
							pb.WriteString(vec)
						}
						if op.imm {
							pb.WriteString(",imm8:int")
						}
					}
					en.Params = pb.String()
					out = append(out, en)
				}
			}
		}
	}
	return out
}

// Marshal renders a specification file as XML (the synthetic analog of
// data-<version>.xml).
func Marshal(f *File) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(f); err != nil {
		return nil, fmt.Errorf("xmlspec: marshal: %w", err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// GenerateXML synthesises a release and renders it as an XML document,
// round-tripping through the same parser the generator uses.
func GenerateXML(vi VersionInfo) ([]byte, error) {
	return Marshal(Generate(vi))
}
