// Package xmlspec models the Intel Intrinsics Guide XML specification that
// the paper's eDSL generator consumes (Section 3.2, Figure 2), including a
// parser for the historic schema versions of Table 3 and a semantic layer
// that resolves C type spellings against the isa package.
//
// The vendor file (data-3.3.16.xml) is proprietary and unavailable offline;
// see synth.go for the synthetic specification generator that reproduces
// the vendor file's shape and the per-ISA counts of Table 1b.
package xmlspec
