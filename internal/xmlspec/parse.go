package xmlspec

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Parse reads an intrinsics specification file. It tolerates the schema
// drift between the versions of Table 3: singular vs repeated <category>
// and <CPUID> elements, the 3.4 "tech" attribute, and unknown categories
// or CPUID strings in future versions (reported in Stats, not fatal).
func Parse(r io.Reader) (*File, error) {
	dec := xml.NewDecoder(r)
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("xmlspec: decode: %w", err)
	}
	if len(f.Intrinsics) == 0 {
		return nil, fmt.Errorf("xmlspec: specification %q contains no intrinsics", f.Version)
	}
	return &f, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*File, error) {
	return Parse(strings.NewReader(s))
}

// ResolveError records one intrinsic the resolver had to skip and why.
// The paper's generator must be "robust towards minor changes on the XML
// specifications": unknown spellings degrade to skips, never to failure.
type ResolveError struct {
	Name string
	Err  error
}

func (e ResolveError) Error() string { return fmt.Sprintf("%s: %v", e.Name, e.Err) }

// Resolve performs type and CPUID resolution on every intrinsic in the
// file, returning the semantic records plus the list of skipped entries.
func Resolve(f *File) ([]*Resolved, []ResolveError) {
	out := make([]*Resolved, 0, len(f.Intrinsics))
	var errs []ResolveError
	for i := range f.Intrinsics {
		in := &f.Intrinsics[i]
		r, err := ResolveOne(in)
		if err != nil {
			errs = append(errs, ResolveError{Name: in.Name, Err: err})
			continue
		}
		out = append(out, r)
	}
	return out, errs
}

// ResolveOne resolves a single intrinsic element.
func ResolveOne(in *Intrinsic) (*Resolved, error) {
	if in.Name == "" {
		return nil, fmt.Errorf("missing name attribute")
	}
	ret, err := ParseTyp(in.RetType)
	if err != nil {
		return nil, fmt.Errorf("return type: %w", err)
	}
	r := &Resolved{Name: in.Name, Ret: ret, Header: in.Header, Raw: in}
	if n := len(in.Params); n > 0 {
		r.Params = make([]ResolvedParam, 0, n)
	}
	for _, p := range in.Params {
		t, err := ParseTyp(p.Type)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", p.VarName, err)
		}
		if t.IsVoid() && !t.Ptr {
			// `void` as a lone parameter means "no parameters"
			// (e.g. _mm256_setzero_ps (void)).
			continue
		}
		r.Params = append(r.Params, ResolvedParam{Name: p.VarName, Typ: t})
	}
	for _, c := range in.CPUID {
		f, ok := isa.ParseFamily(c)
		if !ok {
			// Future ISA: keep the intrinsic but record no family;
			// the caller decides whether to bind it.
			continue
		}
		r.Families = append(r.Families, f)
	}
	if n := len(in.Category); n > 0 {
		r.Categories = make([]isa.Category, 0, n)
	}
	for _, c := range in.Category {
		r.Categories = append(r.Categories, isa.ParseCategory(c))
	}
	if len(r.Categories) == 0 {
		r.Categories = []isa.Category{isa.CatOther}
	}
	r.ReadsMem, r.WritesMem = inferEffects(r)
	for _, ins := range in.Instruction {
		if strings.EqualFold(ins.Name, "sequence") {
			r.Sequence = true
		}
	}
	return r, nil
}

// inferEffects implements the paper's conservative mutability heuristic:
// load-category intrinsics read every pointer argument, store-category
// intrinsics write every pointer argument. A name-based refinement covers
// the memory intrinsics whose category is not Load/Store (gather, scatter,
// maskload/maskstore, stream, prefetch, rdrand-style out-parameters).
func inferEffects(r *Resolved) (reads, writes bool) {
	hasPtr := false
	for _, p := range r.Params {
		if p.Typ.Ptr {
			hasPtr = true
			break
		}
	}
	for _, c := range r.Categories {
		rd, wr := c.MemoryCategory()
		reads = reads || rd
		writes = writes || wr
	}
	n := r.Name
	switch {
	case strings.Contains(n, "gather") || strings.Contains(n, "maskload") ||
		strings.Contains(n, "lddqu") || strings.Contains(n, "expandloadu"):
		reads = true
	case strings.Contains(n, "scatter") || strings.Contains(n, "maskstore") ||
		strings.Contains(n, "stream") || strings.Contains(n, "compressstoreu"):
		writes = true
	case strings.Contains(n, "load"):
		reads = true
	case strings.Contains(n, "store"):
		writes = true
	}
	// Out-parameters (e.g. _rdrand16_step(unsigned short* val)) write
	// through their pointer even though the category is Random.
	if hasPtr && !reads && !writes {
		writes = true
	}
	if !hasPtr && r.Ret.Ptr {
		reads = true
	}
	if !hasPtr && !r.Ret.Ptr {
		// Pure value intrinsic: no memory effects regardless of category
		// (defensive: a miscategorised arithmetic op must stay pure).
		return false, false
	}
	return reads, writes
}

// Index provides name-based lookup over resolved intrinsics.
type Index struct {
	byName map[string]*Resolved
	all    []*Resolved
}

// NewIndex builds an index; duplicate names keep the first occurrence and
// report the duplicates.
func NewIndex(rs []*Resolved) (*Index, []string) {
	ix := &Index{byName: make(map[string]*Resolved, len(rs))}
	var dups []string
	for _, r := range rs {
		if _, ok := ix.byName[r.Name]; ok {
			dups = append(dups, r.Name)
			continue
		}
		ix.byName[r.Name] = r
		ix.all = append(ix.all, r)
	}
	return ix, dups
}

// Lookup finds an intrinsic by its C name.
func (ix *Index) Lookup(name string) (*Resolved, bool) {
	r, ok := ix.byName[name]
	return r, ok
}

// All returns every indexed intrinsic sorted by name.
func (ix *Index) All() []*Resolved {
	out := make([]*Resolved, len(ix.all))
	copy(out, ix.all)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of distinct intrinsics.
func (ix *Index) Len() int { return len(ix.all) }

// ForFamily returns the intrinsics whose primary family is f, sorted by
// name (this is the Table 1b attribution rule).
func (ix *Index) ForFamily(f isa.Family) []*Resolved {
	var out []*Resolved
	for _, r := range ix.all {
		if r.PrimaryFamily() == f {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
