package xmlspec

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func resolveLatest(t *testing.T) (*File, []*Resolved, *Stats) {
	t.Helper()
	f := Generate(Latest())
	rs, errs := Resolve(f)
	for _, e := range errs {
		t.Errorf("resolve error: %v", e)
	}
	return f, rs, ComputeStats(f.Version, rs, len(errs))
}

func TestTable1bCounts(t *testing.T) {
	_, _, st := resolveLatest(t)
	want := Table1bCounts()
	total := 0
	for _, fam := range isa.Table1bFamilies() {
		if got := st.PerFamily[fam]; got != want[fam] {
			t.Errorf("%s: got %d intrinsics, want %d (Table 1b)", fam, got, want[fam])
		}
		total += want[fam]
	}
	if total != 5912 {
		t.Fatalf("published counts sum to %d, want 5912", total)
	}
	if st.Table1bTotal() != 5912 {
		t.Errorf("Table 1b total = %d, want 5912", st.Table1bTotal())
	}
	if st.Total < 5912 {
		t.Errorf("spec total = %d, must include the 5912 Table 1b intrinsics", st.Total)
	}
	if st.SharedAVXKNC != 338 {
		t.Errorf("shared AVX-512/KNC = %d, want 338", st.SharedAVXKNC)
	}
}

func TestVersionsTable3(t *testing.T) {
	vs := Versions()
	if len(vs) != 6 {
		t.Fatalf("got %d versions, want 6 (Table 3)", len(vs))
	}
	wantDates := map[string]string{
		"3.2.2": "03.09.2014", "3.3.1": "17.10.2014", "3.3.11": "27.07.2015",
		"3.3.14": "12.01.2016", "3.3.16": "26.01.2016", "3.4": "07.09.2017",
	}
	for _, v := range vs {
		if wantDates[v.Version] != v.Date {
			t.Errorf("version %s: date %s, want %s", v.Version, v.Date, wantDates[v.Version])
		}
	}
}

func TestGenerateAllVersionsRoundTrip(t *testing.T) {
	for _, vi := range Versions() {
		vi := vi
		t.Run(vi.Version, func(t *testing.T) {
			xmlBytes, err := GenerateXML(vi)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Parse(strings.NewReader(string(xmlBytes)))
			if err != nil {
				t.Fatal(err)
			}
			if f.Version != vi.Version {
				t.Errorf("round-trip version = %q, want %q", f.Version, vi.Version)
			}
			rs, errs := Resolve(f)
			if len(errs) > 0 {
				t.Errorf("resolver rejected %d entries; first: %v", len(errs), errs[0])
			}
			st := ComputeStats(vi.Version, rs, len(errs))
			for fam, want := range vi.Counts {
				if got := st.PerFamily[fam]; got != want {
					t.Errorf("%s: %d intrinsics, want %d", fam, got, want)
				}
			}
			if st.PerFamily[isa.FamilyNone] != vi.FutureEntries {
				t.Errorf("future entries = %d, want %d",
					st.PerFamily[isa.FamilyNone], vi.FutureEntries)
			}
		})
	}
}

func TestNoAVX512Before33(t *testing.T) {
	vi, err := LookupVersion("3.2.2")
	if err != nil {
		t.Fatal(err)
	}
	f := Generate(vi)
	for _, in := range f.Intrinsics {
		for _, c := range in.CPUID {
			if fam, _ := isa.ParseFamily(c); fam == isa.AVX512 {
				t.Fatalf("version 3.2.2 contains AVX-512 intrinsic %s", in.Name)
			}
		}
	}
}

func TestCuratedEntriesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, en := range CuratedEntries() {
		if seen[en.Name] {
			t.Errorf("duplicate curated intrinsic %s", en.Name)
		}
		seen[en.Name] = true
		in := expandEntry(en)
		r, err := ResolveOne(&in)
		if err != nil {
			t.Errorf("%s: %v", en.Name, err)
			continue
		}
		if len(r.Families) == 0 {
			t.Errorf("%s: no resolvable CPUID in %v", en.Name, en.CPUID)
		}
	}
	if len(seen) < 300 {
		t.Errorf("curated set has %d intrinsics; expected at least 300", len(seen))
	}
}

func TestEffectInference(t *testing.T) {
	_, rs, _ := resolveLatest(t)
	ix, dups := NewIndex(rs)
	if len(dups) > 0 {
		t.Fatalf("duplicate intrinsic names in spec: %v", dups[:min(len(dups), 5)])
	}
	cases := []struct {
		name          string
		reads, writes bool
	}{
		{"_mm256_loadu_ps", true, false},
		{"_mm256_storeu_ps", false, true},
		{"_mm256_add_pd", false, false},
		{"_mm256_fmadd_ps", false, false},
		{"_mm256_i32gather_epi32", true, false},
		{"_mm256_maskstore_ps", false, true},
		{"_mm256_maskload_ps", true, false},
		{"_mm256_stream_ps", false, true},
		{"_rdrand16_step", false, true}, // writes its out-parameter
		{"_mm_lddqu_si128", true, false},
		{"_mm512_storenrngo_pd", false, true},
	}
	for _, c := range cases {
		r, ok := ix.Lookup(c.name)
		if !ok {
			t.Errorf("%s: not in spec", c.name)
			continue
		}
		if r.ReadsMem != c.reads || r.WritesMem != c.writes {
			t.Errorf("%s: effects (read=%v write=%v), want (read=%v write=%v)",
				c.name, r.ReadsMem, r.WritesMem, c.reads, c.writes)
		}
	}
}

func TestParseTyp(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ptr  bool
	}{
		{"__m256d", "__m256d", false},
		{"float const*", "float*", true},
		{"const float *", "float*", true},
		{"unsigned short", "uint16_t", false},
		{"unsigned __int64", "uint64_t", false},
		{"void*", "void*", true},
		{"__m128i const*", "__m128i", true},
		{"double", "double", false},
	}
	for _, c := range cases {
		typ, err := ParseTyp(c.in)
		if err != nil {
			t.Errorf("ParseTyp(%q): %v", c.in, err)
			continue
		}
		if typ.Ptr != c.ptr {
			t.Errorf("ParseTyp(%q).Ptr = %v, want %v", c.in, typ.Ptr, c.ptr)
		}
		if !typ.Ptr && typ.CName() != c.want {
			t.Errorf("ParseTyp(%q) = %s, want %s", c.in, typ.CName(), c.want)
		}
	}
	if _, err := ParseTyp("__fancy_future_t"); err == nil {
		t.Error("ParseTyp accepted an unknown type")
	}
}

func TestParseRejectsEmptySpec(t *testing.T) {
	if _, err := ParseString(`<intrinsics_list version="0"></intrinsics_list>`); err == nil {
		t.Error("Parse accepted a specification with no intrinsics")
	}
	if _, err := ParseString(`not xml at all`); err == nil {
		t.Error("Parse accepted a non-XML document")
	}
}

func TestParsePaperExample(t *testing.T) {
	// The exact XML from Figure 2 of the paper.
	doc := `<intrinsics_list version="3.3.16">
<intrinsic rettype='__m256d' name='_mm256_add_pd'>
	<type>Floating Point</type>
	<CPUID>AVX</CPUID>
	<category>Arithmetic</category>
	<parameter varname='a' type='__m256d'/>
	<parameter varname='b' type='__m256d'/>
	<description>Add packed double-precision (64-bit) floating-point
	elements in "a" and "b", and store the results in "dst".</description>
	<operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[i+63:i] + b[i+63:i]
ENDFOR
dst[MAX:256] := 0
	</operation>
	<instruction name='vaddpd' form='ymm, ymm, ymm'/>
	<header>immintrin.h</header>
</intrinsic>
</intrinsics_list>`
	f, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	rs, errs := Resolve(f)
	if len(errs) != 0 {
		t.Fatalf("resolve errors: %v", errs)
	}
	r := rs[0]
	if r.Name != "_mm256_add_pd" {
		t.Errorf("name = %s", r.Name)
	}
	if r.Ret.Vec != isa.M256d {
		t.Errorf("ret = %v, want __m256d", r.Ret)
	}
	if len(r.Params) != 2 || r.Params[0].Name != "a" || r.Params[1].Name != "b" {
		t.Errorf("params = %+v", r.Params)
	}
	if r.PrimaryFamily() != isa.AVX {
		t.Errorf("family = %v, want AVX", r.PrimaryFamily())
	}
	if !r.HasCategory(isa.CatArithmetic) {
		t.Errorf("categories = %v, want Arithmetic", r.Categories)
	}
	if r.ReadsMem || r.WritesMem {
		t.Error("_mm256_add_pd must be pure")
	}
	if r.Raw.Instruction[0].Name != "vaddpd" {
		t.Errorf("instruction = %v", r.Raw.Instruction)
	}
}

func TestIndexForFamily(t *testing.T) {
	_, rs, _ := resolveLatest(t)
	ix, _ := NewIndex(rs)
	sse3 := ix.ForFamily(isa.SSE3)
	if len(sse3) != 11 {
		t.Fatalf("SSE3 family has %d intrinsics, want 11", len(sse3))
	}
	for i := 1; i < len(sse3); i++ {
		if sse3[i-1].Name >= sse3[i].Name {
			t.Fatalf("ForFamily not sorted: %s >= %s", sse3[i-1].Name, sse3[i].Name)
		}
	}
}

func TestFutureCPUIDTolerated(t *testing.T) {
	vi, err := LookupVersion("3.4")
	if err != nil {
		t.Fatal(err)
	}
	f := Generate(vi)
	rs, errs := Resolve(f)
	if len(errs) != 0 {
		t.Fatalf("3.4 resolve errors: %v", errs[0])
	}
	future := 0
	for _, r := range rs {
		if r.PrimaryFamily() == isa.FamilyNone {
			future++
		}
	}
	if future != vi.FutureEntries {
		t.Errorf("future-CPUID intrinsics = %d, want %d", future, vi.FutureEntries)
	}
}
