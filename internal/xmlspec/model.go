package xmlspec

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/isa"
)

// File is the root element of an intrinsics specification file. The
// vendor schema names it <intrinsics_list> and stamps it with a version
// and a date attribute.
type File struct {
	XMLName    xml.Name    `xml:"intrinsics_list"`
	Version    string      `xml:"version,attr"`
	Date       string      `xml:"date,attr,omitempty"`
	Intrinsics []Intrinsic `xml:"intrinsic"`
}

// Intrinsic is one <intrinsic> element: one C intrinsic function.
type Intrinsic struct {
	Name        string        `xml:"name,attr"`
	RetType     string        `xml:"rettype,attr"`
	Tech        string        `xml:"tech,attr,omitempty"` // added in schema 3.4
	Types       []string      `xml:"type"`
	CPUID       []string      `xml:"CPUID"`
	Category    []string      `xml:"category"`
	Params      []Param       `xml:"parameter"`
	Description string        `xml:"description"`
	Operation   string        `xml:"operation"`
	Instruction []Instruction `xml:"instruction"`
	Header      string        `xml:"header"`
}

// Param is one <parameter> element: an argument of the intrinsic.
type Param struct {
	VarName string `xml:"varname,attr"`
	Type    string `xml:"type,attr"`
}

// Instruction is one <instruction> element: the assembly instruction the
// intrinsic maps to and its operand form.
type Instruction struct {
	Name string `xml:"name,attr"`
	Form string `xml:"form,attr,omitempty"`
}

// Typ is a resolved intrinsic operand or return type: either a vector
// register type, a scalar primitive, or a pointer to a primitive
// (Array[T] ↔ T* in Table 2's mapping).
type Typ struct {
	Vec  isa.VecKind // set when the type is a SIMD register
	Prim isa.Prim    // element/scalar primitive
	Ptr  bool        // true for T* / void*
}

// IsVec reports whether the type is a SIMD register type.
func (t Typ) IsVec() bool { return t.Vec != isa.VecNone }

// IsVoid reports whether the type is void (and not void*).
func (t Typ) IsVoid() bool {
	return !t.Ptr && t.Vec == isa.VecNone && t.Prim == isa.PrimVoid
}

// CName returns the C spelling of the resolved type.
func (t Typ) CName() string {
	switch {
	case t.IsVec():
		return t.Vec.String()
	case t.Ptr:
		return t.Prim.CName() + "*"
	default:
		return t.Prim.CName()
	}
}

// String returns the C spelling.
func (t Typ) String() string { return t.CName() }

// ParseTyp resolves a C type spelling from the XML ("__m256d",
// "unsigned short", "float const *", "void*") into a Typ.
func ParseTyp(s string) (Typ, error) {
	t := strings.TrimSpace(s)
	// Pointers: strip one level of '*' plus const qualifiers.
	if i := strings.IndexByte(t, '*'); i >= 0 {
		base := strings.TrimSpace(t[:i])
		base = strings.TrimSuffix(strings.TrimSpace(base), "const")
		base = strings.TrimSpace(base)
		if v, ok := isa.ParseVecKind(base); ok {
			// Pointer to a vector type, used by aligned loads: keep
			// the vector kind and flag the pointer.
			return Typ{Vec: v, Ptr: true}, nil
		}
		p, ok := isa.ParsePrimC(base)
		if !ok {
			return Typ{}, fmt.Errorf("xmlspec: unknown pointee type %q", base)
		}
		return Typ{Prim: p, Ptr: true}, nil
	}
	if v, ok := isa.ParseVecKind(t); ok {
		return Typ{Vec: v}, nil
	}
	if p, ok := isa.ParsePrimC(t); ok {
		return Typ{Prim: p}, nil
	}
	return Typ{}, fmt.Errorf("xmlspec: unknown type %q", t)
}

// Resolved is the semantic view of an Intrinsic after type resolution and
// CPUID/category parsing. This is the record the binding generator and
// the effect-inference heuristic work from.
type Resolved struct {
	Name       string
	Ret        Typ
	Params     []ResolvedParam
	Families   []isa.Family
	Categories []isa.Category
	// ReadsMem/WritesMem are the inferred effects (Section 3.2,
	// "Infer intrinsic mutability"): conservative per-category plus a
	// name-based refinement for gathers/scatters/masked memory ops.
	ReadsMem  bool
	WritesMem bool
	Header    string
	Sequence  bool // true when the "instruction" is a sequence
	Raw       *Intrinsic
}

// ResolvedParam is a resolved parameter.
type ResolvedParam struct {
	Name string
	Typ  Typ
}

// PrimaryFamily returns the first CPUID family, which is how Table 1b
// attributes each intrinsic to a single ISA (the 338 intrinsics shared
// between AVX-512 and KNC count under AVX-512).
func (r *Resolved) PrimaryFamily() isa.Family {
	if len(r.Families) == 0 {
		return isa.FamilyNone
	}
	return r.Families[0]
}

// HasFamily reports whether the intrinsic belongs to family f.
func (r *Resolved) HasFamily(f isa.Family) bool {
	for _, g := range r.Families {
		if g == f {
			return true
		}
	}
	return false
}

// HasCategory reports whether the intrinsic carries category c.
func (r *Resolved) HasCategory(c isa.Category) bool {
	for _, d := range r.Categories {
		if d == c {
			return true
		}
	}
	return false
}

// AvailableOn reports whether every CPUID family the intrinsic requires
// is present in the feature set. SVML intrinsics are library calls, not
// CPUID features: any vector ISA (SSE upward) satisfies them, mirroring
// the staging frontend's rule in dsl.Kernel.Intrinsic.
func (r *Resolved) AvailableOn(fs isa.FeatureSet) bool {
	for _, fam := range r.Families {
		if fam == isa.SVML && fs[isa.SSE] {
			continue
		}
		if !fs[fam] {
			return false
		}
	}
	return true
}
