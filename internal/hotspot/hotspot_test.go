package hotspot

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// javaSaxpy stages the paper's JSaxpy: the plain Java loop
// `for (i) a[i] += b[i] * s`.
func javaSaxpy() *ir.Func {
	k := dsl.NewKernel("JSaxpy_apply", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	b := k.ParamF32Ptr()
	s := k.ParamF32()
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Add(b.At(i).Mul(s)))
	})
	return k.F
}

// javaDot stages the scalar reduction `for (i) acc += a[i]*b[i]`.
func javaDot() *ir.Func {
	k := dsl.NewKernel("JDot_apply", isa.Haswell.Features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	n := k.ParamInt()
	acc := k.ForAccF32(k.ConstInt(0), n, 1, k.ConstF32(0),
		func(i dsl.Int, acc dsl.F32) dsl.F32 {
			return acc.Add(a.At(i).Mul(b.At(i)))
		})
	k.Return(acc)
	return k.F
}

func TestSLPVectorizesSaxpy(t *testing.T) {
	f := javaSaxpy()
	vf, rep := AutoVectorize(f, isa.Haswell.Features)
	if !rep.Vectorized() {
		t.Fatalf("SLP did not vectorize saxpy: %v", rep.Rejections)
	}
	ops := ir.Schedule(vf).CountOps()
	if ops["_mm_loadu_ps"] == 0 || ops["_mm_storeu_ps"] == 0 ||
		ops["_mm_mul_ps"] == 0 || ops["_mm_add_ps"] == 0 {
		t.Errorf("vectorized ops = %v", ops)
	}
	if ops["_mm256_loadu_ps"] != 0 {
		t.Error("SLP must use SSE width only, not AVX")
	}
	for op := range ops {
		if strings.Contains(op, "fmadd") {
			t.Error("SLP must not contract to FMA")
		}
	}
}

func TestSLPVectorizedSaxpyIsCorrect(t *testing.T) {
	v := NewVM(isa.Haswell)
	m, err := v.Load(javaSaxpy())
	if err != nil {
		t.Fatal(err)
	}
	n := 23
	a := make([]float32, n)
	b := make([]float32, n)
	want := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
		b[i] = float32(2 * i)
		want[i] = a[i] + b[i]*3
	}
	aBuf, bBuf := vm.PinF32(a), vm.PinF32(b)
	if _, err := m.InvokeAt(TierC2, vm.PtrValue(aBuf, 0), vm.PtrValue(bBuf, 0),
		vm.F32Value(3), vm.IntValue(n)); err != nil {
		t.Fatal(err)
	}
	aBuf.UnpinF32(a)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("a[%d] = %v, want %v", i, a[i], want[i])
		}
	}
	// The C2 run must actually have used SSE.
	if v.Machine.Counts["_mm_loadu_ps"] == 0 {
		t.Error("C2 execution used no SSE loads")
	}
	if got := v.Machine.Counts["_mm_storeu_ps"]; got != 5 { // 20 elements / 4
		t.Errorf("SSE stores = %d, want 5", got)
	}
	if got := v.Machine.Counts["scalar.store"]; got != 3 { // 23-20 tail
		t.Errorf("scalar tail stores = %d, want 3", got)
	}
}

func TestSLPRejectsReduction(t *testing.T) {
	_, rep := AutoVectorize(javaDot(), isa.Haswell.Features)
	if rep.Vectorized() {
		t.Fatal("SLP vectorized a reduction; HotSpot's SLP cannot")
	}
	found := false
	for _, r := range rep.Rejections {
		if strings.Contains(r, "reduction") {
			found = true
		}
	}
	if !found {
		t.Errorf("rejection reasons = %v, want a reduction rejection", rep.Rejections)
	}
}

func TestSLPRejectsNonContiguous(t *testing.T) {
	k := dsl.NewKernel("strided", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i.MulC(2), a.At(i.MulC(2)).Add(k.ConstF32(1)))
	})
	_, rep := AutoVectorize(k.F, isa.Haswell.Features)
	if rep.Vectorized() {
		t.Fatal("SLP vectorized a strided access")
	}
}

func TestSLPRejectsTypePromotion(t *testing.T) {
	// Java 8-bit loop: bytes promote to int before arithmetic.
	k := dsl.NewKernel("bytes", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamI8Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).AddC(1))
	})
	_, rep := AutoVectorize(k.F, isa.Haswell.Features)
	if rep.Vectorized() {
		t.Fatal("SLP vectorized promoted byte arithmetic")
	}
}

func TestSLPWithoutSSE(t *testing.T) {
	fs := isa.NewFeatureSet(isa.MMX) // no SSE at all
	_, rep := AutoVectorize(javaSaxpy(), fs)
	if rep.Vectorized() {
		t.Fatal("vectorized without SSE")
	}
}

func TestTieredCompilation(t *testing.T) {
	v := NewVM(isa.Haswell)
	v.CompileThreshold = 100 // the paper's -XX:CompileThreshold=100
	m, err := v.Load(javaSaxpy())
	if err != nil {
		t.Fatal(err)
	}
	if m.Tier() != TierInterpreter {
		t.Errorf("fresh method at %v, want interpreter", m.Tier())
	}
	a, b := vm.PinF32(make([]float32, 8)), vm.PinF32(make([]float32, 8))
	args := []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0), vm.F32Value(1), vm.IntValue(8)}
	for i := 0; i < 25; i++ {
		if _, err := m.Invoke(args...); err != nil {
			t.Fatal(err)
		}
	}
	if m.Tier() != TierC1 {
		t.Errorf("after 25 invocations: %v, want C1", m.Tier())
	}
	for i := 0; i < 80; i++ {
		if _, err := m.Invoke(args...); err != nil {
			t.Fatal(err)
		}
	}
	if m.Tier() != TierC2 {
		t.Errorf("after 105 invocations: %v, want C2", m.Tier())
	}
	if TierInterpreter.CostMultiplier() <= TierC1.CostMultiplier() ||
		TierC1.CostMultiplier() <= TierC2.CostMultiplier() {
		t.Error("tier cost multipliers must strictly improve")
	}
}

func TestEstimateTierScaling(t *testing.T) {
	v := NewVM(isa.Haswell)
	m, err := v.Load(javaSaxpy())
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	a, b := vm.PinF32(make([]float32, n)), vm.PinF32(make([]float32, n))
	args := []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0), vm.F32Value(1), vm.IntValue(n)}

	v.Machine.Counts.Reset()
	if _, err := m.InvokeAt(TierC2, args...); err != nil {
		t.Fatal(err)
	}
	c2 := m.Estimate(TierC2, v.Machine.Counts, n*8)

	v.Machine.Counts.Reset()
	if _, err := m.InvokeAt(TierInterpreter, args...); err != nil {
		t.Fatal(err)
	}
	interp := m.Estimate(TierInterpreter, v.Machine.Counts, n*8)

	if interp.Cycles <= c2.Cycles*5 {
		t.Errorf("interpreter estimate %.0f should be ≫ C2 estimate %.0f",
			interp.Cycles, c2.Cycles)
	}
}
