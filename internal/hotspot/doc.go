// Package hotspot simulates the baseline managed runtime the paper
// compares against: a tiered JVM (interpreter → C1 → C2) whose C2
// compiler auto-vectorizes with Superword Level Parallelism (Larsen &
// Amarasinghe, PLDI 2000) — with exactly the limitations the paper
// measures (Sections 2.2, 3.4, 4.2):
//
//   - vectorization uses SSE width only (the assembly diagnostics in
//     Section 3.4 show HotSpot emitting SSE while the staged code uses
//     AVX+FMA);
//   - no FMA contraction;
//   - no reduction idioms: loop-carried accumulators stay scalar, which
//     is why the Java dot products lose Figure 7;
//   - only contiguous unit-stride float accesses pack, which is why
//     both Java MMM variants stay scalar in Figure 6b;
//   - 8/16-bit integer arithmetic promotes to 32-bit first.
package hotspot
