package hotspot

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// SLPWidth is the SSE vector width in f32 lanes.
const SLPWidth = 4

// SLPReport records what the auto-vectorizer did to one method.
type SLPReport struct {
	LoopsSeen       int
	LoopsVectorized int
	Rejections      []string
}

// Vectorized reports whether any loop was vectorized.
func (r SLPReport) Vectorized() bool { return r.LoopsVectorized > 0 }

// slpPlan is the analysis result for one vectorizable loop body.
type slpPlan struct {
	body *ir.Block
}

// analyzeLoop decides whether a mirrored loop body is an SLP pack
// candidate and explains rejections.
func analyzeLoop(d *ir.Def) (slpPlan, string) {
	if len(d.Args) == 4 {
		return slpPlan{}, "reduction: loop-carried accumulator (SLP cannot detect reduction idioms)"
	}
	stride, ok := d.Args[2].(ir.Const)
	if !ok || stride.AsInt() != 1 {
		return slpPlan{}, "non-unit stride"
	}
	body := d.Blocks[0]
	iv := body.Params[0]
	hasStore := false
	for _, n := range body.Nodes {
		def := n.Def
		switch def.Op {
		case ir.OpALoad:
			idx, ok := def.Args[1].(ir.Sym)
			if !ok || idx != iv {
				return slpPlan{}, "non-contiguous memory access"
			}
			if n.Sym.Typ != ir.TF32 {
				return slpPlan{}, fmt.Sprintf("unsupported element type %s", n.Sym.Typ)
			}
		case ir.OpAStore:
			idx, ok := def.Args[1].(ir.Sym)
			if !ok || idx != iv {
				return slpPlan{}, "non-contiguous memory access"
			}
			if def.Args[2].Type() != ir.TF32 {
				return slpPlan{}, fmt.Sprintf("unsupported store type %s", def.Args[2].Type())
			}
			hasStore = true
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax:
			if def.Typ != ir.TF32 {
				return slpPlan{}, fmt.Sprintf("non-f32 arithmetic (%s on %s)", def.Op, def.Typ)
			}
			// The loop variable must not feed arithmetic (only
			// addressing): isomorphic packs need pure data ops.
			for _, a := range def.ArgSyms() {
				if a == iv {
					return slpPlan{}, "loop variable used as data"
				}
			}
		case ir.OpConv:
			return slpPlan{}, "type promotion in loop body"
		case ir.OpLoop, ir.OpIf:
			return slpPlan{}, "control flow in loop body"
		default:
			return slpPlan{}, fmt.Sprintf("unsupported operation %s", def.Op)
		}
	}
	if !hasStore {
		return slpPlan{}, "no packable store"
	}
	return slpPlan{body: body}, ""
}

// AutoVectorize runs the SLP pass over a scalar method, producing the
// C2-compiled version. Features decide availability (no SSE → scalar).
func AutoVectorize(f *ir.Func, features isa.FeatureSet) (*ir.Func, SLPReport) {
	rep := SLPReport{}
	if !features.Has(isa.SSE) {
		rep.Rejections = append(rep.Rejections, "no SSE support on this machine")
		return ir.NewTransformer().Mirror(f), rep
	}
	tr := ir.NewTransformer()
	tr.Rewrite = func(dst *ir.Graph, d *ir.Def) (ir.Exp, bool) {
		if d.Op != ir.OpLoop {
			return nil, false
		}
		rep.LoopsSeen++
		plan, reason := analyzeLoop(d)
		if reason != "" {
			rep.Rejections = append(rep.Rejections, reason)
			return nil, false
		}
		rep.LoopsVectorized++
		return emitVectorLoop(dst, d, plan), true
	}
	return tr.Mirror(f), rep
}

// emitVectorLoop rewrites a packable scalar loop into an SSE main loop
// plus a scalar tail, returning the (void) expression of the rewritten
// region.
func emitVectorLoop(g *ir.Graph, d *ir.Def, plan slpPlan) ir.Exp {
	start, end := d.Args[0], d.Args[1]
	body := plan.body
	iv := body.Params[0]

	// n0 = start + ((end-start) & ^(w-1))
	span := g.Sub(end, start)
	aligned := g.And(span, ir.ConstInt(^(SLPWidth - 1)))
	n0 := g.Add(start, aligned)

	// Hoist loop-invariant broadcast of external scalars and constants.
	splats := map[string]ir.Exp{}
	splat := func(e ir.Exp) ir.Exp {
		key := e.String()
		if v, ok := splats[key]; ok {
			return v
		}
		v := g.Emit(&ir.Def{Op: "_mm_set1_ps", Typ: ir.TM128,
			Args: []ir.Exp{e}, Effect: ir.PureEffect})
		splats[key] = v
		return v
	}

	// Main vector loop.
	vIv := g.Fresh(ir.TI32)
	vBlk := g.InBlock([]ir.Sym{vIv}, func() ir.Exp {
		vec := map[int]ir.Exp{} // scalar sym → vector exp
		lookup := func(e ir.Exp) ir.Exp {
			if s, ok := e.(ir.Sym); ok {
				if v, hit := vec[s.ID]; hit {
					return v
				}
				return splat(s) // loop-invariant scalar
			}
			return splat(e) // constant
		}
		for _, n := range body.Nodes {
			def := n.Def
			switch def.Op {
			case ir.OpALoad:
				ptr := g.PtrAdd(def.Args[0], vIv)
				root := g.RootPtr(ptr.(ir.Sym))
				vec[n.Sym.ID] = g.Emit(&ir.Def{Op: "_mm_loadu_ps", Typ: ir.TM128,
					Args: []ir.Exp{ptr}, Effect: ir.ReadEffect(root)})
			case ir.OpAStore:
				ptr := g.PtrAdd(def.Args[0], vIv)
				root := g.RootPtr(ptr.(ir.Sym))
				g.EmitStmt(&ir.Def{Op: "_mm_storeu_ps", Typ: ir.TVoid,
					Args:   []ir.Exp{ptr, lookup(def.Args[2])},
					Effect: ir.WriteEffect(root)})
			default:
				op := map[string]string{
					ir.OpAdd: "_mm_add_ps", ir.OpSub: "_mm_sub_ps",
					ir.OpMul: "_mm_mul_ps", ir.OpMin: "_mm_min_ps",
					ir.OpMax: "_mm_max_ps",
				}[def.Op]
				vec[n.Sym.ID] = g.Emit(&ir.Def{Op: op, Typ: ir.TM128,
					Args:   []ir.Exp{lookup(def.Args[0]), lookup(def.Args[1])},
					Effect: ir.PureEffect})
			}
		}
		return nil
	})
	loopEff := vBlk.Effect()
	g.EmitStmt(&ir.Def{Op: ir.OpLoop, Typ: ir.TVoid,
		Args:   []ir.Exp{start, n0, ir.ConstInt(SLPWidth)},
		Blocks: []*ir.Block{vBlk}, Effect: loopEff})

	// Scalar tail: replay the original body with a fresh loop variable.
	tIv := g.Fresh(ir.TI32)
	tBlk := g.InBlock([]ir.Sym{tIv}, func() ir.Exp {
		sub := map[int]ir.Exp{iv.ID: tIv}
		get := func(e ir.Exp) ir.Exp {
			if s, ok := e.(ir.Sym); ok {
				if r, hit := sub[s.ID]; hit {
					return r
				}
			}
			return e
		}
		for _, n := range body.Nodes {
			def := n.Def
			nd := &ir.Def{Op: def.Op, Typ: def.Typ, Effect: def.Effect}
			for _, a := range def.Args {
				nd.Args = append(nd.Args, get(a))
			}
			sub[n.Sym.ID] = g.Emit(nd)
		}
		return nil
	})
	return g.Emit(&ir.Def{Op: ir.OpLoop, Typ: ir.TVoid,
		Args:   []ir.Exp{n0, end, ir.ConstInt(1)},
		Blocks: []*ir.Block{tBlk}, Effect: tBlk.Effect()})
}
