package hotspot

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/machine"
	"repro/internal/vm"
)

// Tier is a method's compilation state.
type Tier int

// The HotSpot Server VM tiers (Section 2.2): bytecode interpretation,
// the fast lightly-optimizing C1, and the aggressive C2 with SLP.
const (
	TierInterpreter Tier = iota
	TierC1
	TierC2
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierInterpreter:
		return "interpreter"
	case TierC1:
		return "C1"
	default:
		return "C2"
	}
}

// CostMultiplier scales a tier's cycle estimate relative to C2-quality
// code: interpretation dispatches bytecodes (~15× slower), C1 compiles
// quickly with few optimizations (~3×).
func (t Tier) CostMultiplier() float64 {
	switch t {
	case TierInterpreter:
		return 15
	case TierC1:
		return 3
	default:
		return 1
	}
}

// VM is one simulated HotSpot instance.
type VM struct {
	Arch *isa.Microarch
	// CompileThreshold is the C2 promotion threshold
	// (-XX:CompileThreshold; the paper's benchmarks set 100). C1 kicks
	// in at a quarter of it.
	CompileThreshold int
	Machine          *vm.Machine
	methods          map[string]*Method
}

// NewVM boots a simulated HotSpot Server VM on the given machine.
func NewVM(arch *isa.Microarch) *VM {
	return &VM{Arch: arch, CompileThreshold: 10000,
		Machine: vm.NewMachine(arch), methods: map[string]*Method{}}
}

// Method is one loaded Java method with its tier state.
type Method struct {
	vm          *VM
	Name        string
	Scalar      *ir.Func // as written (interpreter/C1 execute this)
	C2          *ir.Func // after SLP auto-vectorization
	SLP         SLPReport
	Invocations int

	scalarProg *kernelc.Program
	c2Prog     *kernelc.Program
}

// Load installs a method into the VM, compiling both tiers' bodies
// eagerly (the simulation has no reason to defer).
func (v *VM) Load(f *ir.Func) (*Method, error) {
	if m, ok := v.methods[f.Name]; ok {
		return m, nil
	}
	scalarProg, err := kernelc.Compile(f)
	if err != nil {
		return nil, fmt.Errorf("hotspot: %s: %w", f.Name, err)
	}
	c2f, rep := AutoVectorize(f, v.Arch.Features)
	c2Prog, err := kernelc.Compile(c2f)
	if err != nil {
		return nil, fmt.Errorf("hotspot: %s (C2): %w", f.Name, err)
	}
	m := &Method{vm: v, Name: f.Name, Scalar: f, C2: c2f, SLP: rep,
		scalarProg: scalarProg, c2Prog: c2Prog}
	v.methods[f.Name] = m
	return m, nil
}

// Tier returns the method's current tier from its invocation profile.
func (m *Method) Tier() Tier {
	switch {
	case m.Invocations >= m.vm.CompileThreshold:
		return TierC2
	case m.Invocations >= m.vm.CompileThreshold/4:
		return TierC1
	default:
		return TierInterpreter
	}
}

// Invoke runs the method at its current tier, bumping the profile
// counter (so repeated invocation walks interpreter → C1 → C2 like a
// warming JVM).
func (m *Method) Invoke(args ...vm.Value) (vm.Value, error) {
	tier := m.Tier()
	m.Invocations++
	prog := m.scalarProg
	if tier == TierC2 {
		prog = m.c2Prog
	}
	return prog.Run(m.vm.Machine, args...)
}

// InvokeAt runs at a forced tier without touching the profile (the
// benchmarks measure C2 steady state, "excluding the JIT warm-up time"
// per Section 3.4).
func (m *Method) InvokeAt(tier Tier, args ...vm.Value) (vm.Value, error) {
	prog := m.scalarProg
	if tier == TierC2 {
		prog = m.c2Prog
	}
	return prog.Run(m.vm.Machine, args...)
}

// MethodCallCycles is the fixed cost of one compiled-method invocation
// (call, prologue, profiling counter) — the managed-side analog of the
// JNI crossing cost, an order of magnitude cheaper.
const MethodCallCycles = 40

// Estimate prices the counts of a preceding Invoke/InvokeAt at a tier.
// The dependency-chain analysis runs over the function the tier actually
// executed.
func (m *Method) Estimate(tier Tier, counts vm.Counter, footprint int) machine.Report {
	f := m.Scalar
	if tier == TierC2 {
		f = m.C2
	}
	est := machine.NewEstimator(m.vm.Arch)
	rep := est.Estimate(f, counts, footprint)
	mult := tier.CostMultiplier()
	rep.Cycles *= mult
	rep.Compute *= mult
	rep.Memory *= mult
	rep.Latency *= mult
	rep.Overhead += MethodCallCycles
	rep.Cycles += MethodCallCycles
	return rep
}
