package hotspot

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/vm"
)

// randomLoopKernel stages a random element-wise loop over two inputs and
// one output: out[i] = f(a[i], b[i]) where f is a random expression tree
// over {+, −, ×, min, max} and float constants. Every such loop is SLP-
// vectorizable, and vectorization must not change any lane's value
// (element-wise maps have no reassociation freedom).
type loopSpec struct {
	Ops    []uint8
	Consts []int8
}

func buildRandomLoop(spec loopSpec) *ir.Func {
	k := dsl.NewKernel("randloop", isa.Haswell.Features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	out := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		x := a.At(i)
		y := b.At(i)
		vals := []dsl.F32{x, y}
		for j, op := range spec.Ops {
			if j > 6 {
				break
			}
			lhs := vals[int(op)%len(vals)]
			rhs := vals[(int(op)/4)%len(vals)]
			if j < len(spec.Consts) {
				rhs = k.ConstF32(float32(spec.Consts[j]))
			}
			var v dsl.F32
			switch op % 5 {
			case 0:
				v = lhs.Add(rhs)
			case 1:
				v = lhs.Sub(rhs)
			case 2:
				v = lhs.Mul(rhs)
			case 3:
				v = dsl.F32{K: k, E: k.F.G.Min(lhs.E, rhs.E)}
			default:
				v = dsl.F32{K: k, E: k.F.G.Max(lhs.E, rhs.E)}
			}
			vals = append(vals, v)
		}
		out.Set(i, vals[len(vals)-1])
	})
	return k.F
}

func TestQuickSLPPreservesSemantics(t *testing.T) {
	check := func(spec loopSpec, seed uint64, rawN uint8) bool {
		if len(spec.Ops) == 0 {
			return true
		}
		n := int(rawN)%50 + 3 // 3..52, exercises vector body + tail
		f := buildRandomLoop(spec)

		scalarProg, err := kernelc.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		vf, rep := AutoVectorize(f, isa.Haswell.Features)
		vecProg, err := kernelc.Compile(vf)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Vectorized() {
			t.Fatalf("elementwise loop not vectorized: %v", rep.Rejections)
		}

		rng := vm.NewXorshift(seed)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.Uniform()*16 - 8)
			b[i] = float32(rng.Uniform()*16 - 8)
		}
		run := func(p *kernelc.Program) []float32 {
			out := vm.NewBuffer(vm.PinF32(a).Prim, n)
			m := vm.NewMachine(isa.Haswell)
			if _, err := p.Run(m, vm.PtrValue(vm.PinF32(a), 0),
				vm.PtrValue(vm.PinF32(b), 0), vm.PtrValue(out, 0),
				vm.IntValue(n)); err != nil {
				t.Fatal(err)
			}
			res := make([]float32, n)
			out.UnpinF32(res)
			return res
		}
		s := run(scalarProg)
		v := run(vecProg)
		for i := range s {
			sb := math.Float32bits(s[i])
			vb := math.Float32bits(v[i])
			if sb != vb && !(math.IsNaN(float64(s[i])) && math.IsNaN(float64(v[i]))) {
				t.Logf("lane %d: scalar %v (%#x) vs vectorized %v (%#x)",
					i, s[i], sb, v[i], vb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
