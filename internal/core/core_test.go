package core

import (
	"strings"
	"testing"

	"repro/internal/cgen"
	"repro/internal/dsl"
	"repro/internal/isa"
	"repro/internal/vm"
)

func stageDouble(rt *Runtime) *dsl.Kernel {
	k := rt.NewKernel("double_all")
	a := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	two := k.MM256Set1Ps(k.ConstF32(2))
	k.For(k.ConstInt(0), n, 8, func(i dsl.Int) {
		k.MM256StoreuPs(a, i, k.MM256MulPs(k.MM256LoaduPs(a, i), two))
	})
	return k
}

func TestPipelineEndToEnd(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kn.Source(), "JNIEXPORT") {
		t.Error("compiled kernel carries no JNI C source")
	}
	if !strings.Contains(kn.CompileCommand(), "icc") {
		t.Errorf("compile command should use the preferred compiler: %s", kn.CompileCommand())
	}
	xs := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := kn.Call(xs, len(xs)); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if x != float32(2*(i+1)) {
			t.Fatalf("xs[%d] = %v", i, x)
		}
	}
}

func TestCompileRejectsMissingISA(t *testing.T) {
	rt, err := NewRuntime(isa.Nehalem, cgen.HostEnvironment)
	if err != nil {
		t.Fatal(err)
	}
	k := rt.NewKernel("avx_on_nehalem")
	a := dsl.Mutable(k, k.ParamF32Ptr())
	v := k.MM256Set1Ps(k.ConstF32(1)) // AVX on an SSE4.2 machine
	k.MM256StoreuPs(a, k.ConstInt(0), v)
	if _, err := rt.Compile(k); err == nil {
		t.Fatal("compile accepted AVX intrinsics on Nehalem")
	} else if !strings.Contains(err.Error(), "AVX") {
		t.Errorf("error should name the missing ISA: %v", err)
	}
}

func TestJNICounting(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	rt.Machine.Counts.Reset()
	xs := make([]float32, 16)
	for i := 0; i < 7; i++ {
		if _, err := kn.Call(xs, len(xs)); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Machine.Counts[JNICall]; got != 7 {
		t.Errorf("jni.call count = %d, want 7", got)
	}
}

func TestCallArgumentKinds(t *testing.T) {
	rt := DefaultRuntime()
	k := rt.NewKernel("copy8")
	src := k.ParamI8Ptr()
	dst := dsl.Mutable(k, k.ParamI8Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		dst.Set(i, src.At(i))
	})
	kn, err := rt.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	in := []int8{1, -2, 3}
	out := make([]int8, 3)
	if _, err := kn.Call(in, out, 3); err != nil {
		t.Fatal(err)
	}
	if out[1] != -2 {
		t.Errorf("int8 slice copy-back failed: %v", out)
	}
	// Unsupported argument type errors cleanly.
	if _, err := kn.Call("nope", out, 3); err == nil {
		t.Error("string argument accepted")
	}
}

func TestCallBuffersAvoidCopy(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	buf := vm.PinF32([]float32{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := kn.Call(buf, 8); err != nil {
		t.Fatal(err)
	}
	if buf.F32At(0) != 2 {
		t.Error("buffer argument not mutated in place")
	}
}

func TestSystemReport(t *testing.T) {
	rep := DefaultRuntime().SystemReport()
	for _, want := range []string{"Haswell", "AVX2", "FMA", "icc 17.0.0", "-xHost", "L1 32KB"} {
		if !strings.Contains(rep, want) {
			t.Errorf("system report missing %q:\n%s", want, rep)
		}
	}
}

func TestNewRuntimeNoCompiler(t *testing.T) {
	if _, err := NewRuntime(isa.Haswell, cgen.Environment{}); err == nil {
		t.Error("runtime must fail without any native compiler")
	}
}
