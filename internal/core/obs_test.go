package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestPipelineSpans: one traced Compile records the stage tree of the
// paper's Figure 3 pipeline with kernel/arch/cache attributes, a repeat
// compile records a cache hit with no rebuild stages, and calls record
// under the kernel's span name.
func TestPipelineSpans(t *testing.T) {
	rt := DefaultRuntime()
	rt.Tracer = obs.New()
	rt.Metrics = obs.NewRegistry()

	kn, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Compile(stageSumSquares(rt)); err != nil {
		t.Fatal(err)
	}
	if _, err := kn.Call(8); err != nil {
		t.Fatal(err)
	}

	skel := rt.Tracer.Skeleton(nil)
	wantLines := []string{
		"cache=miss",
		"  cgen.emit",
		"  kernelc.compile",
		"  toolchain.link",
		"cache=hit",
		"call:sum_squares",
	}
	for _, w := range wantLines {
		if !strings.Contains(skel, w) {
			t.Errorf("trace skeleton missing %q:\n%s", w, skel)
		}
	}
	if !strings.Contains(skel, "kernel=sum_squares") || !strings.Contains(skel, "hash=") {
		t.Errorf("compile span must carry kernel and graph-hash attrs:\n%s", skel)
	}
	// The cache hit must not re-run the build stages.
	if n := strings.Count(skel, "cgen.emit"); n != 1 {
		t.Errorf("expected 1 cgen.emit span (hit skips rebuild), got %d", n)
	}

	if hits := rt.Metrics.Counter("ngen.cache.hit").Load(); hits != 1 {
		t.Errorf("metrics cache.hit = %d, want 1", hits)
	}
	if calls := rt.Metrics.Counter("ngen.kernel.call").Load(); calls != 1 {
		t.Errorf("metrics kernel.call = %d, want 1", calls)
	}

	rt.PublishMetrics()
	snap := rt.Metrics.Snapshot()
	if snap.Gauges["ngen.cache.entries"] != 1 {
		t.Errorf("PublishMetrics cache gauges: %v", snap.Gauges)
	}
	if snap.Gauges["vm.op."+JNICall] != 1 {
		t.Errorf("PublishMetrics must mirror machine counts: %v", snap.Gauges)
	}
	if snap.Gauges["kernelc.pool.gets"] < 1 {
		t.Errorf("PublishMetrics must report frame-pool traffic: %v", snap.Gauges)
	}
}

// TestSpanParenting: with Runtime.Span set (as the sweep harness does),
// pipeline spans nest under it instead of the tracer root.
func TestSpanParenting(t *testing.T) {
	rt := DefaultRuntime()
	rt.Tracer = obs.New()
	point := rt.Tracer.Start("point#0")
	rt.Span = point
	kn, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kn.Call(4); err != nil {
		t.Fatal(err)
	}
	point.End()
	rt.Span = nil

	roots := rt.Tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("all spans must nest under the point span, got %d roots", len(roots))
	}
	var names []string
	for _, c := range roots[0].Children {
		names = append(names, c.Name)
	}
	got := strings.Join(names, ",")
	if got != "ngen.compile,call:sum_squares" {
		t.Fatalf("point children = %q", got)
	}
}

// TestCallDisabledObsAllocsNothing is the benchmark-guarded contract
// from the issue: with observability off (the default), the
// instrumented Kernel.Call hot path adds zero allocations.
func TestCallDisabledObsAllocsNothing(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kn.Call(16); err != nil { // warm the conversion scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := kn.Call(16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Call with obs disabled allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkCallDisabledObs keeps the 0 allocs/op figure visible in the
// benchmark suite (-benchmem).
func BenchmarkCallDisabledObs(b *testing.B) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kn.Call(16); err != nil {
			b.Fatal(err)
		}
	}
}
