package core

// Auto-planned execution: with Opt = kernelc.TierAuto the runtime
// defers the (backend, tier, lanes) choice to the adaptive planner
// (internal/plan) per kernel × size bucket. The artifact carries both
// interpreter tiers and, when a prebuilt plugin is on hand, the native
// executable; every strategy executes the identical counted op stream,
// so planning changes wall time only — results, writes, dynamic counts,
// and therefore figure bytes are invariant (pinned by the tier/backend/
// parallel differential suites and TestAutoPlanDifferential).

import (
	"errors"
	"time"

	"repro/internal/backend"
	"repro/internal/ir"
	"repro/internal/kernelc"
	"repro/internal/machine"
	"repro/internal/plan"
	"repro/internal/vm"
)

// defaultSpec is the planner's safe incumbent: the zero-value runtime
// behavior (interpreter, opt tier, serial). A cold key's first
// invocation always runs it, and pruning never removes it.
var defaultSpec = machine.StrategySpec{Backend: "vm", Tier: "opt", Lanes: 1}

// EnableAutoPlan switches the runtime to planner-driven execution:
// Opt becomes kernelc.TierAuto and a Planner is attached (sharing the
// disk cache for plan persistence when one is present). Idempotent;
// forks made afterwards share the planner, so calibration from any
// worker benefits all of them.
func (rt *Runtime) EnableAutoPlan() {
	rt.EnableAutoPlanWith(plan.Config{})
}

// EnableAutoPlanWith is EnableAutoPlan with explicit planner tuning —
// `ngen plan` uses ExploreAll to probe every candidate for its
// predicted-vs-measured table.
func (rt *Runtime) EnableAutoPlanWith(cfg plan.Config) {
	rt.Opt = kernelc.TierAuto
	if rt.Planner == nil {
		rt.Planner = plan.New(cfg)
	}
	if rt.Disk != nil {
		rt.Planner.SetStore(rt.Disk)
	}
}

// estimator returns the runtime's lazily built cost estimator. Like
// the machine, it is private to the runtime (its chain-analysis
// scratch is not goroutine-safe); forks build their own.
func (rt *Runtime) estimator() *machine.Estimator {
	if rt.est == nil {
		rt.est = machine.NewEstimator(rt.Arch)
	}
	return rt.est
}

// autoExec resolves a native executable for auto mode without ever
// paying a toolchain build: only a process-memo or blob-store hit
// (backend.CachedCompiler) qualifies. Cold caches simply run without a
// native candidate; `ngen plan` builds plugins eagerly so warm runs
// have one.
func (rt *Runtime) autoExec(f *ir.Func) backend.Executable {
	be, err := backend.Lookup("native")
	if err != nil || be.Available() != nil {
		return nil
	}
	if sa, ok := be.(backend.StoreAware); ok && rt.Disk != nil {
		sa.SetStore(rt.Disk)
	}
	cc, ok := be.(backend.CachedCompiler)
	if !ok {
		return nil
	}
	exe, ok := cc.CompileCached(f, kernelc.TierOpt)
	if !ok {
		return nil
	}
	return exe
}

// run routes one invocation: planner-driven in auto mode, the static
// artifact path otherwise.
func (kn *Kernel) run(m *vm.Machine, args ...vm.Value) (vm.Value, error) {
	rt := kn.rt
	if rt.Opt != kernelc.TierAuto || rt.Planner == nil || kn.art.progPlain == nil {
		return kn.art.run(m, args...)
	}
	return kn.runPlanned(m, args...)
}

// runPlanned executes under the planner. A cold (hash, arch, bucket)
// key runs the default strategy, prices every admissible candidate
// from that run's op-count delta, and folds its timing in as the first
// probe — exploration is amortized over real invocations, never extra
// runs. Known keys execute whatever Decide returns (a calibration
// probe or the calibrated winner) and report the measured time back.
func (kn *Kernel) runPlanned(m *vm.Machine, args ...vm.Value) (vm.Value, error) {
	rt := kn.rt
	key := plan.Key{Hash: kn.art.hash, Arch: rt.Arch.Name, Bucket: plan.Bucket(footprint(args))}
	d, ok := rt.Planner.Decide(key)
	if !ok {
		before := m.Counts.Total()
		start := time.Now()
		out, err := kn.execStrategy(m, defaultSpec, args)
		elapsed := time.Since(start)
		if err != nil {
			return out, err
		}
		kn.installPlan(key, m.Counts.Total()-before)
		rt.Planner.Observe(key, defaultSpec, float64(elapsed.Nanoseconds()))
		return out, nil
	}
	start := time.Now()
	out, err := kn.execStrategy(m, d.Spec, args)
	if err == nil {
		rt.Planner.Observe(key, d.Spec, float64(time.Since(start).Nanoseconds()))
	}
	return out, err
}

// installPlan prices the admissible strategies for one cold key from
// a measured single-invocation op-count delta and registers the plan.
// The default strategy is always first (Install keeps it unpruned).
func (kn *Kernel) installPlan(key plan.Key, deltaOps int64) {
	rt := kn.rt
	f := kn.art.f
	specs := make([]machine.StrategySpec, 0, 4)
	specs = append(specs, defaultSpec)
	specs = append(specs, machine.StrategySpec{Backend: "vm", Tier: "plain", Lanes: 1})
	if kn.art.exec != nil {
		specs = append(specs, machine.StrategySpec{Backend: "native", Tier: "opt", Lanes: 1})
	}
	if w := rt.Machine.Workers; w > 1 && machine.ParallelEligible(f) {
		specs = append(specs, machine.StrategySpec{Backend: "vm", Tier: "opt", Lanes: w})
	}
	counts := vm.Counter{"ops": deltaOps}
	costs := rt.estimator().PredictStrategies(f, counts, specs)
	rt.Planner.Install(key, f.Name, costs)
}

// execStrategy runs one invocation under an explicit strategy. The
// serial strategies force the machine's lane budget off so a runtime
// configured with workers still measures a true serial baseline; the
// parallel strategy installs the planner's lane count and chunk hint
// for the duration of the call.
func (kn *Kernel) execStrategy(m *vm.Machine, s machine.StrategySpec, args []vm.Value) (vm.Value, error) {
	if s.Backend == "native" && kn.art.exec != nil {
		out, err := kn.art.exec.Run(m, args...)
		if !errors.Is(err, backend.ErrFallback) {
			return out, err
		}
		// The executable declined this particular call (cache simulator
		// attached, argument shape mismatch): the interpreter serves it.
	}
	prog := kn.art.prog
	if s.Tier == "plain" && kn.art.progPlain != nil {
		prog = kn.art.progPlain
	}
	savedW, savedH := m.Workers, m.ChunkHint
	if s.Lanes > 1 {
		m.Workers, m.ChunkHint = s.Lanes, int64(s.Chunk)
	} else {
		m.Workers, m.ChunkHint = 0, 0
	}
	out, err := prog.Run(m, args...)
	m.Workers, m.ChunkHint = savedW, savedH
	return out, err
}

// footprint sums the byte sizes of the invocation's pinned buffers —
// the working set the size bucket is derived from. Scalar arguments
// contribute nothing: strategy crossovers track memory traffic.
func footprint(args []vm.Value) int64 {
	var b int64
	for i := range args {
		if args[i].Mem != nil {
			b += int64(len(args[i].Mem.Data))
		}
	}
	return b
}
