package core

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/obs"
)

// stageBadStore stages a kernel whose graph is deliberately ill-formed:
// a vector store emitted with PureEffect through an immutable parameter.
// The dsl bindings cannot produce this (they attach write effects and
// require dsl.Mutable), so the raw graph is edited directly — exactly
// the kind of hand-staged mistake irverify exists to catch.
func stageBadStore(rt *Runtime) *dsl.Kernel {
	k := rt.NewKernel("bad_store")
	k.ParamF32Ptr()
	g := k.F.G
	v := g.Emit(&ir.Def{Op: "_mm256_setzero_ps", Typ: ir.TM256, Effect: ir.PureEffect})
	g.EmitStmt(&ir.Def{Op: "_mm256_storeu_ps", Typ: ir.TVoid,
		Args: []ir.Exp{k.F.Param(0), v}, Effect: ir.PureEffect})
	return k
}

// TestCompileRejectsIllFormedGraph: Compile must fail fast with the
// rendered diagnostics before any code generation, and count the errors.
func TestCompileRejectsIllFormedGraph(t *testing.T) {
	rt := DefaultRuntime()
	rt.Metrics = obs.NewRegistry()
	_, err := rt.Compile(stageBadStore(rt))
	if err == nil {
		t.Fatal("Compile accepted an ill-formed graph")
	}
	for _, want := range []string{"failed verification", "without a write effect", "immutable"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("compile error missing %q:\n%s", want, err)
		}
	}
	if runs := rt.Metrics.Counter("verify.run").Load(); runs != 1 {
		t.Errorf("verify.run = %d, want 1", runs)
	}
	if errs := rt.Metrics.Counter("verify.errors").Load(); errs == 0 {
		t.Error("verify.errors not counted")
	}
	// A failed build must not poison the cache with a half-made artifact.
	if st := rt.CacheStats(); st.Entries != 0 {
		t.Errorf("failed compile left %d cache entries", st.Entries)
	}
}

// TestVerifyResultRidesTheCache: the verdict is computed once per
// artifact; a cache hit reuses it (counted under verify.cached) and
// renders byte-identically.
func TestVerifyResultRidesTheCache(t *testing.T) {
	rt := DefaultRuntime()
	rt.Metrics = obs.NewRegistry()
	rt.Tracer = obs.New()

	kn1, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	kn2, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	if kn1.Verify() == nil || !kn1.Verify().Ok() {
		t.Fatal("clean kernel must carry an ok verify result")
	}
	if kn1.Verify() != kn2.Verify() {
		t.Error("cache hit must reuse the stored verify result")
	}
	if a, b := kn1.Verify().Render(), kn2.Verify().Render(); a != b {
		t.Errorf("verdict renders differ across hit/miss:\n%s\n%s", a, b)
	}
	if runs := rt.Metrics.Counter("verify.run").Load(); runs != 1 {
		t.Errorf("verify.run = %d, want 1 (hit must not re-verify)", runs)
	}
	if hits := rt.Metrics.Counter("verify.cached").Load(); hits != 1 {
		t.Errorf("verify.cached = %d, want 1", hits)
	}
	// The verifier is a traced pipeline stage on the miss only.
	skel := rt.Tracer.Skeleton(nil)
	if n := strings.Count(skel, "irverify.run"); n != 1 {
		t.Errorf("expected 1 irverify.run span (hit skips the pass stack), got %d:\n%s", n, skel)
	}
}
