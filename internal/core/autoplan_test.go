package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plan"
)

// TestAutoPlanDifferential pins the planner's safety invariant: a
// runtime in auto mode — probing plain, opt, and (when available)
// native strategies across calls — produces byte-identical results and
// identical dynamic op counts to the static default runtime. Figures
// derive from counts, so this is what keeps planner modes out of the
// figure bytes.
func TestAutoPlanDifferential(t *testing.T) {
	rtDef := DefaultRuntime()
	rtAuto := DefaultRuntime()
	rtAuto.EnableAutoPlanWith(plan.Config{ExploreAll: true, ProbeBudget: 1})
	knDef, err := rtDef.Compile(stageDouble(rtDef))
	if err != nil {
		t.Fatal(err)
	}
	knAuto, err := rtAuto.Compile(stageDouble(rtAuto))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{8, 64, 1024} {
		for rep := 0; rep < 6; rep++ {
			xs := make([]float32, n)
			ys := make([]float32, n)
			for i := range xs {
				xs[i] = float32(i%37) * 0.5
				ys[i] = xs[i]
			}
			if _, err := knDef.Call(xs, n); err != nil {
				t.Fatal(err)
			}
			if _, err := knAuto.Call(ys, n); err != nil {
				t.Fatal(err)
			}
			for i := range xs {
				if xs[i] != ys[i] {
					t.Fatalf("n=%d rep=%d: auto diverged at [%d]: %v vs %v", n, rep, i, ys[i], xs[i])
				}
			}
		}
	}
	def, auto := rtDef.Machine.Counts, rtAuto.Machine.Counts
	if len(def) != len(auto) {
		t.Fatalf("op-count key sets differ: %d vs %d", len(def), len(auto))
	}
	for op, n := range def {
		if auto[op] != n {
			t.Errorf("count[%s]: auto %d, static %d", op, auto[op], n)
		}
	}
	st := rtAuto.Planner.Stats()
	if st["installs"] == 0 || st["calibrated"] == 0 {
		t.Fatalf("planner never calibrated: %v", st)
	}
}

// TestAutoPlanWarmStart pins the persistence contract end to end
// through a real DiskCache: a cold process calibrates and writes
// plan-*.json files; a fresh runtime over the same directory loads
// them, runs zero probes, and leaves every plan file byte-identical.
func TestAutoPlanWarmStart(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := DefaultRuntime()
	rt.Disk = d
	rt.EnableAutoPlan()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float32, 1024)
	for i := 0; i < 12; i++ {
		if _, err := kn.Call(xs, len(xs)); err != nil {
			t.Fatal(err)
		}
	}
	views := rt.Planner.Snapshot()
	if len(views) == 0 || !views[0].Calibrated {
		t.Fatalf("cold run did not calibrate: %+v", views)
	}
	planFiles, _ := filepath.Glob(filepath.Join(dir, "plan-*.json"))
	if len(planFiles) == 0 {
		t.Fatal("no plan files persisted")
	}
	frozen := map[string][]byte{}
	for _, p := range planFiles {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		frozen[p] = raw
	}

	rt2 := DefaultRuntime()
	rt2.Disk = d
	rt2.EnableAutoPlan()
	kn2, err := rt2.Compile(stageDouble(rt2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := kn2.Call(xs, len(xs)); err != nil {
			t.Fatal(err)
		}
	}
	st := rt2.Planner.Stats()
	if st["loads"] != 1 || st["probes"] != 0 || st["installs"] != 0 {
		t.Fatalf("warm run explored: %v", st)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "plan-*.json"))
	if len(after) != len(planFiles) {
		t.Fatalf("warm run changed the plan file set: %d vs %d", len(after), len(planFiles))
	}
	for _, p := range after {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(frozen[p]) {
			t.Fatalf("warm run rewrote %s", p)
		}
	}
}

// TestAutoPlanForksShareCalibration: a forked runtime (the bench
// worker/tenant pattern) decides from the parent's calibrated plans
// without re-exploring.
func TestAutoPlanForksShareCalibration(t *testing.T) {
	rt := DefaultRuntime()
	rt.EnableAutoPlan()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float32, 256)
	for i := 0; i < 12; i++ {
		if _, err := kn.Call(xs, len(xs)); err != nil {
			t.Fatal(err)
		}
	}
	if v := rt.Planner.Snapshot(); len(v) == 0 || !v[0].Calibrated {
		t.Fatal("parent never calibrated")
	}
	probesBefore := rt.Planner.Stats()["probes"]
	f := rt.Fork()
	knF, err := f.Compile(stageDouble(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := knF.Call(xs, len(xs)); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Planner.Stats()["probes"]; got != probesBefore {
		t.Fatalf("fork re-explored: probes %d → %d", probesBefore, got)
	}
}
