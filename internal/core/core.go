// Package core is NGen — the runtime pipeline of the paper (Figure 3):
// inspect the system (CPUID → available ISAs), detect native compilers
// and derive flags, take a staged SIMD function, generate C from its
// computation graph, "compile and link" it, and hand back a callable
// kernel with zero per-element overhead (one JNI-priced boundary
// crossing per invocation).
//
// In this reproduction the generated C is retained for inspection while
// execution goes through internal/kernelc over the software SIMD machine
// — see DESIGN.md's substitution table.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cgen"
	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/vm"
)

// JNICall is the counter key for managed↔native boundary crossings.
const JNICall = "jni.call"

// Runtime is one initialised NGen instance.
type Runtime struct {
	Arch      *isa.Microarch
	Toolchain cgen.Toolchain
	Machine   *vm.Machine
}

// NewRuntime inspects the (simulated) system: CPUID via the
// microarchitecture database, compiler discovery via the environment.
func NewRuntime(arch *isa.Microarch, env cgen.Environment) (*Runtime, error) {
	tc, err := cgen.Pick(env)
	if err != nil {
		return nil, err
	}
	return &Runtime{Arch: arch, Toolchain: tc, Machine: vm.NewMachine(arch)}, nil
}

// DefaultRuntime builds the paper's testbed: Haswell with gcc and icc
// installed.
func DefaultRuntime() *Runtime {
	rt, err := NewRuntime(isa.Haswell, cgen.HostEnvironment)
	if err != nil {
		panic(err) // HostEnvironment always has compilers
	}
	return rt
}

// NewKernel starts staging a kernel against this runtime's detected
// features.
func (rt *Runtime) NewKernel(name string) *dsl.Kernel {
	return dsl.NewKernel(name, rt.Arch.Features)
}

// Kernel is a compiled, callable kernel.
type Kernel struct {
	rt      *Runtime
	k       *dsl.Kernel
	prog    *kernelc.Program
	source  string
	command string
}

// Compile runs the full pipeline on a staged kernel: ISA validation, C
// generation with JNI binding, (simulated) native compilation, and
// executable lowering.
func (rt *Runtime) Compile(k *dsl.Kernel) (*Kernel, error) {
	if miss := k.MissingISAs(); len(miss) > 0 {
		return nil, fmt.Errorf("core: %s uses unavailable ISAs:\n  %s",
			k.Name(), strings.Join(miss, "\n  "))
	}
	src, err := cgen.Emit(k.F, cgen.Options{JNI: true, Package: "ch.ethz.acl.ngen", Class: "NKernel"})
	if err != nil {
		return nil, err
	}
	prog, err := kernelc.Compile(k.F)
	if err != nil {
		return nil, err
	}
	lib := "lib" + k.Name() + ".so"
	return &Kernel{
		rt:      rt,
		k:       k,
		prog:    prog,
		source:  src,
		command: rt.Toolchain.CommandLine(rt.Arch.Features, k.Name()+".c", lib),
	}, nil
}

// Source returns the generated C translation unit.
func (kn *Kernel) Source() string { return kn.source }

// CompileCommand returns the (simulated) native compiler invocation.
func (kn *Kernel) CompileCommand() string { return kn.command }

// Func exposes the staged function (for the cost model's chain
// analysis).
func (kn *Kernel) Func() *ir.Func { return kn.k.F }

// Call invokes the kernel with Go values. Slices pin into vm buffers on
// entry and copy back on exit — the GetPrimitiveArrayCritical behaviour
// of Section 3.5 — and each invocation counts one JNI crossing.
func (kn *Kernel) Call(args ...any) (vm.Value, error) {
	m := kn.rt.Machine
	vals := make([]vm.Value, len(args))
	type pinned struct {
		buf  *vm.Buffer
		back func()
	}
	var pins []pinned
	for i, a := range args {
		switch x := a.(type) {
		case []float32:
			buf := vm.PinF32(x)
			pins = append(pins, pinned{buf, func() { buf.UnpinF32(x) }})
			vals[i] = vm.PtrValue(buf, 0)
		case []float64:
			buf := vm.PinF64(x)
			pins = append(pins, pinned{buf, func() { buf.UnpinF64(x) }})
			vals[i] = vm.PtrValue(buf, 0)
		case []int8:
			buf := vm.PinI8(x)
			pins = append(pins, pinned{buf, func() {
				for j := range x {
					x[j] = int8(buf.Data[j])
				}
			}})
			vals[i] = vm.PtrValue(buf, 0)
		case []uint8:
			buf := vm.PinU8(x)
			pins = append(pins, pinned{buf, func() { copy(x, buf.Data) }})
			vals[i] = vm.PtrValue(buf, 0)
		case []int16:
			buf := vm.PinI16(x)
			pins = append(pins, pinned{buf, func() {
				for j := range x {
					x[j] = int16(buf.IntAt(j))
				}
			}})
			vals[i] = vm.PtrValue(buf, 0)
		case []uint16:
			buf := vm.PinU16(x)
			pins = append(pins, pinned{buf, func() {
				for j := range x {
					x[j] = uint16(buf.IntAt(j))
				}
			}})
			vals[i] = vm.PtrValue(buf, 0)
		case []int32:
			buf := vm.PinI32(x)
			pins = append(pins, pinned{buf, func() { buf.UnpinI32(x) }})
			vals[i] = vm.PtrValue(buf, 0)
		case *vm.Buffer:
			vals[i] = vm.PtrValue(x, 0)
		case float32:
			vals[i] = vm.F32Value(x)
		case float64:
			vals[i] = vm.F64Value(x)
		case int:
			vals[i] = vm.IntValue(x)
		case int32:
			vals[i] = vm.IntValue(int(x))
		case int64:
			vals[i] = vm.Value{Kind: ir.KindI64, I: x}
		case bool:
			vals[i] = vm.BoolValue(x)
		default:
			return vm.Value{}, fmt.Errorf("core: unsupported argument type %T", a)
		}
	}
	m.Counts.Add(JNICall, 1)
	out, err := kn.prog.Run(m, vals...)
	for _, p := range pins {
		p.back()
	}
	return out, err
}

// CallValues invokes the kernel with prebuilt machine values (the
// benchmark harness pins buffers once and reuses them across
// repetitions). One JNI crossing is still counted per invocation.
func (kn *Kernel) CallValues(args ...vm.Value) (vm.Value, error) {
	kn.rt.Machine.Counts.Add(JNICall, 1)
	return kn.prog.Run(kn.rt.Machine, args...)
}

// MustCall is Call that panics on error (examples and benchmarks).
func (kn *Kernel) MustCall(args ...any) vm.Value {
	out, err := kn.Call(args...)
	if err != nil {
		panic(err)
	}
	return out
}

// SystemReport renders the runtime's view of the machine — the
// "TestPlatform" inspection of the artifact (Appendix A.4).
func (rt *Runtime) SystemReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU:       %s (%s), %.2f GHz\n", rt.Arch.Name, rt.Arch.Vendor, rt.Arch.BaseGHz)
	fmt.Fprintf(&b, "Caches:    L1 %dKB, L2 %dKB, L3 %dMB\n",
		rt.Arch.L1Bytes>>10, rt.Arch.L2Bytes>>10, rt.Arch.L3Bytes>>20)
	fmt.Fprintf(&b, "ISAs:      %s\n", rt.Arch.Features)
	fmt.Fprintf(&b, "Compiler:  %s %s (%s)\n", rt.Toolchain.Name, rt.Toolchain.Version, rt.Toolchain.Path)
	fmt.Fprintf(&b, "Flags:     %s\n", strings.Join(rt.Toolchain.Flags(rt.Arch.Features), " "))
	return b.String()
}
