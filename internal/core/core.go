// Package core is NGen — the runtime pipeline of the paper (Figure 3):
// inspect the system (CPUID → available ISAs), detect native compilers
// and derive flags, take a staged SIMD function, generate C from its
// computation graph, "compile and link" it, and hand back a callable
// kernel with zero per-element overhead (one JNI-priced boundary
// crossing per invocation).
//
// In this reproduction the generated C is retained for inspection while
// execution goes through internal/kernelc over the software SIMD machine
// — see DESIGN.md's substitution table.
//
// Compilation is memoized: artifacts are cached under the canonical
// structural hash of the staged graph (ir.Hash) plus the kernel name,
// microarchitecture, and toolchain, so sweeps that re-stage the same
// kernel at every size point pay for one compile, not dozens.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/cgen"
	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/irverify"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/vm"
)

// JNICall is the counter key for managed↔native boundary crossings.
const JNICall = "jni.call"

// Runtime is one initialised NGen instance.
type Runtime struct {
	Arch      *isa.Microarch
	Toolchain cgen.Toolchain
	Machine   *vm.Machine
	// Cache memoizes compiled artifacts. Forked runtimes share it; set
	// it to nil to force every Compile through the full pipeline.
	Cache *CompileCache
	// Disk is the optional persistent tier below Cache: a
	// content-addressed on-disk store consulted on memory misses and
	// filled after full compiles. A disk hit skips verification and C
	// generation and pays only interpreter lowering. Nil by default
	// (the CLI attaches one via -cachedir); forks share it.
	Disk *DiskCache
	// Tracer and Metrics, when set, receive a span per pipeline stage
	// (ngen.compile → cgen.emit / kernelc.compile / toolchain.link, and
	// call:<kernel> per invocation) and the cache hit/miss counters.
	// Both are nil by default: the disabled obs fast path costs nothing
	// on the Call hot path.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Span, when set, parents this runtime's stage spans — the bench
	// harness points it at the current sweep-point span so compiles and
	// calls nest under the point that triggered them. With Span nil,
	// stage spans are top-level on Tracer.
	Span *obs.Span
	// Opt selects the kernelc lowering tier. The zero value is
	// kernelc.TierOpt (loop-nest optimizer on); set kernelc.TierPlain to
	// reproduce the pre-optimizer interpreter for differential runs. The
	// tier is part of the compile-cache key, so runtimes at different
	// tiers sharing one cache never cross-contaminate.
	Opt kernelc.Tier
	// Backend, when non-nil, is tried ahead of the interpreter: Compile
	// asks it for an Executable alongside the kernelc program, and Call
	// routes through it unless a particular invocation signals
	// backend.ErrFallback (then the interpreter serves that call). A
	// backend Compile failure is not an error — the kernel stays on the
	// vm and the reason is retained (Kernel.BackendFallback). Nil means
	// interpreter-only, exactly the pre-Backend behavior. The backend
	// name is part of the compile-cache key.
	Backend backend.Backend
	// Planner, with Opt = kernelc.TierAuto, picks the execution
	// strategy (backend, tier, lanes) per kernel × size bucket —
	// model-predicted cold, calibrated by bounded online probing. Set
	// via EnableAutoPlan (or UseBackend("auto")); forks share it. Nil
	// means static execution, exactly the pre-planner behavior.
	Planner *plan.Planner

	// est is the lazily built cost estimator backing the planner's
	// predictions; private because its chain-analysis scratch is not
	// goroutine-safe (forks build their own).
	est *machine.Estimator
}

// span opens one pipeline-stage span under the runtime's current
// parent. Nil-safe throughout: with no tracer attached it returns a nil
// span whose methods no-op without allocating.
func (rt *Runtime) span(name string) *obs.Span {
	if rt.Span != nil {
		return rt.Span.Child(name)
	}
	return rt.Tracer.Start(name)
}

// NewRuntime inspects the (simulated) system: CPUID via the
// microarchitecture database, compiler discovery via the environment.
func NewRuntime(arch *isa.Microarch, env cgen.Environment) (*Runtime, error) {
	tc, err := cgen.Pick(env)
	if err != nil {
		return nil, err
	}
	return &Runtime{Arch: arch, Toolchain: tc, Machine: vm.NewMachine(arch),
		Cache: NewCompileCache()}, nil
}

// DefaultRuntime builds the paper's testbed: Haswell with gcc and icc
// installed.
func DefaultRuntime() *Runtime {
	rt, err := NewRuntime(isa.Haswell, cgen.HostEnvironment)
	if err != nil {
		panic(err) // HostEnvironment always has compilers
	}
	return rt
}

// Fork returns a runtime sharing this one's architecture, toolchain,
// compile cache and observability sinks but owning a private machine
// (counter, RNG, cache sim). Parallel sweep workers each fork the suite
// runtime so their counts never race while compiled artifacts are still
// shared; the fork's Span starts nil so each worker re-parents its own
// spans.
func (rt *Runtime) Fork() *Runtime {
	m := vm.NewMachine(rt.Arch)
	m.Workers = rt.Machine.Workers
	return &Runtime{Arch: rt.Arch, Toolchain: rt.Toolchain,
		Machine: m, Cache: rt.Cache, Disk: rt.Disk,
		Tracer: rt.Tracer, Metrics: rt.Metrics, Opt: rt.Opt,
		Backend: rt.Backend, Planner: rt.Planner}
}

// ForkTenant returns a runtime serving one tenant's work: Fork's
// shared-cache/private-machine split, optionally retargeted at a
// different microarchitecture (nil keeps the parent's). Compiled
// artifacts are still shared across tenants — the cache key includes
// the microarchitecture, so retargeted forks never cross-contaminate —
// while dynamic machine state (op counters, RNG, cache sim) stays
// private to the tenant. This is the isolation unit ngend hands each
// request: one process-wide compile cache serving many machines.
func (rt *Runtime) ForkTenant(arch *isa.Microarch) *Runtime {
	f := rt.Fork()
	if arch != nil && arch != rt.Arch {
		m := vm.NewMachine(arch)
		m.Workers = rt.Machine.Workers
		f.Arch = arch
		f.Machine = m
	}
	return f
}

// BackendName reports the cache-key name of the active execution
// backend ("vm" when interpreter-only).
func (rt *Runtime) BackendName() string { return rt.backendName() }

// BackendCounters exposes the active backend's build/load statistics
// (nil when no backend beyond the interpreter is attached, or when the
// backend publishes none).
func (rt *Runtime) BackendCounters() map[string]int64 {
	if rt.Backend == nil {
		return nil
	}
	if bc, ok := rt.Backend.(interface{ Counters() map[string]int64 }); ok {
		return bc.Counters()
	}
	return nil
}

// DiskStats reports the persistent cache tier's statistics. ok is
// false when no disk cache is attached.
func (rt *Runtime) DiskStats() (DiskCacheStats, bool) {
	if rt.Disk == nil {
		return DiskCacheStats{}, false
	}
	return rt.Disk.Stats(), true
}

// NewKernel starts staging a kernel against this runtime's detected
// features.
func (rt *Runtime) NewKernel(name string) *dsl.Kernel {
	return dsl.NewKernel(name, rt.Arch.Features)
}

// UseBackend selects the named execution backend for subsequent
// compiles. "vm" (or "") restores the interpreter-only default. An
// unknown or unavailable backend returns an error with the reason; the
// runtime is left unchanged so the caller can report it and keep
// running on the vm.
func (rt *Runtime) UseBackend(name string) error {
	if name == "auto" {
		// "auto" is not a concrete backend: it enables planner-driven
		// execution, which routes among vm tiers, lanes, and (when a
		// prebuilt plugin is on hand) the native backend per call.
		rt.EnableAutoPlan()
		return nil
	}
	be, err := backend.Lookup(name)
	if err != nil {
		return err
	}
	if err := be.Available(); err != nil {
		return err
	}
	if be.Name() == "vm" {
		rt.Backend = nil
		return nil
	}
	rt.Backend = be
	return nil
}

// backendName returns the cache-key name of the active backend.
func (rt *Runtime) backendName() string {
	if rt.Backend == nil {
		return "vm"
	}
	return rt.Backend.Name()
}

// backendCompile asks the active backend for an executable, attaching
// the disk cache as its artifact store first so built objects persist.
// A nil return with a reason means the kernel stays on the interpreter;
// backend compilation failures are routing decisions, never errors.
func (rt *Runtime) backendCompile(f *ir.Func, parent *obs.Span) (backend.Executable, string) {
	if rt.Backend == nil {
		return nil, ""
	}
	if sa, ok := rt.Backend.(backend.StoreAware); ok && rt.Disk != nil {
		sa.SetStore(rt.Disk)
	}
	sp := parent.Child("backend.compile")
	exe, err := rt.Backend.Compile(f, rt.Opt)
	sp.SetAttr("backend", rt.Backend.Name())
	if err != nil {
		sp.SetAttr("fallback", err.Error())
		sp.End()
		rt.Metrics.Counter("backend.fallback").Add(1)
		return nil, err.Error()
	}
	sp.End()
	return exe, ""
}

// --- compile cache ----------------------------------------------------------

// cacheKey identifies one compiled artifact: the structural graph hash
// plus everything else that shapes the output — kernel name (embedded in
// the C translation unit and link command), microarchitecture (flags,
// feature checks), toolchain (command line) and lowering tier (opt vs
// plain interpreter programs differ).
type cacheKey struct {
	hash      uint64
	name      string
	arch      string
	toolchain string
	tier      kernelc.Tier
	// backend names the execution backend the artifact was compiled
	// for ("vm" for interpreter-only). Two backends may lower the same
	// graph to very different executables, so they never share an entry.
	backend string
}

// artifact is the immutable, machine-independent product of one compile:
// the staged function actually lowered, its executable program, the
// generated C, and the native compile command. Kernels wrap an artifact
// together with a runtime, so one artifact serves many machines.
type artifact struct {
	f       *ir.Func
	prog    *kernelc.Program
	source  string
	command string
	// verify is the static-analysis verdict the graph passed on its way
	// to code generation (warnings only — errors abort the build). It
	// rides in the cache with the artifact, so hits reuse the verdict.
	verify *irverify.Result
	// exec, when non-nil, is the backend executable tried ahead of prog;
	// fallback records why the backend declined this kernel (empty when
	// exec is set or no backend was requested).
	exec     backend.Executable
	fallback string
	// progPlain and hash are the auto-plan extras (nil/0 outside
	// TierAuto): the plain-tier program so the planner can switch tiers
	// without recompiling, and the canonical graph hash keying the
	// kernel's plans.
	progPlain *kernelc.Program
	hash      uint64
}

// run executes the artifact: the backend executable first, re-routing
// to the interpreter program when a call signals backend.ErrFallback.
func (a *artifact) run(m *vm.Machine, args ...vm.Value) (vm.Value, error) {
	if a.exec != nil {
		out, err := a.exec.Run(m, args...)
		if !errors.Is(err, backend.ErrFallback) {
			return out, err
		}
	}
	return a.prog.Run(m, args...)
}

// CompileCache memoizes compile artifacts across runtimes.
type CompileCache struct {
	mu      sync.RWMutex
	entries map[cacheKey]*artifact
	fmu     sync.Mutex
	flight  map[cacheKey]*flightCall
	hits    atomic.Int64
	misses  atomic.Int64
	dedups  atomic.Int64
}

// NewCompileCache creates an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{
		entries: map[cacheKey]*artifact{},
		flight:  map[cacheKey]*flightCall{},
	}
}

// flightCall is one in-progress compile other goroutines wait on
// instead of duplicating the work.
type flightCall struct {
	done chan struct{}
	art  *artifact
	err  error
}

// once is the single-flight gate: the first caller for a key runs fn
// and publishes the artifact; concurrent callers for the same key block
// on that flight and share its result, so a fan-out of workers staging
// the same kernel compiles (and writes the persistent entry) exactly
// once. Failed flights are not cached — the next caller retries.
func (c *CompileCache) once(key cacheKey, fn func() (*artifact, error)) (*artifact, error) {
	c.fmu.Lock()
	if f, ok := c.flight[key]; ok {
		c.fmu.Unlock()
		c.dedups.Add(1)
		<-f.done
		return f.art, f.err
	}
	// Losing a lookup/insert race is legal; re-check under the flight
	// lock so a just-completed flight is observed instead of re-run.
	c.mu.RLock()
	art, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.fmu.Unlock()
		return art, nil
	}
	f := &flightCall{done: make(chan struct{})}
	c.flight[key] = f
	c.fmu.Unlock()

	f.art, f.err = fn()
	if f.err == nil {
		f.art = c.insert(key, f.art)
	}
	c.fmu.Lock()
	delete(c.flight, key)
	c.fmu.Unlock()
	close(f.done)
	return f.art, f.err
}

// lookup returns the cached artifact for key, counting a hit or miss.
func (c *CompileCache) lookup(key cacheKey) (*artifact, bool) {
	c.mu.RLock()
	art, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return art, ok
}

// insert stores art under key unless another goroutine won the compile
// race, in which case the first-stored artifact is kept and returned so
// every caller shares one program.
func (c *CompileCache) insert(key cacheKey, art *artifact) *artifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[key]; ok {
		return prev
	}
	c.entries[key] = art
	return art
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
	// Deduped counts misses that piggybacked on another goroutine's
	// in-flight compile of the same key instead of compiling again.
	Deduped int64
}

// Stats returns hit/miss counters and the live entry count.
func (c *CompileCache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: n, Deduped: c.dedups.Load()}
}

// CacheStats reports the runtime's compile-cache effectiveness. A
// runtime with the cache disabled reports zeros.
func (rt *Runtime) CacheStats() CacheStats {
	if rt.Cache == nil {
		return CacheStats{}
	}
	return rt.Cache.Stats()
}

// PublishMetrics syncs every snapshot-style statistic into the attached
// registry: the authoritative compile-cache totals (gauges — the live
// ngen.cache.hit/miss counters only see compiles made through
// metric-attached runtimes), the interpreter frame-pool traffic, and
// the machine's dynamic op counts under vm.op.*. Idempotent; the
// harness calls it right before each metrics snapshot. No-op without a
// registry.
func (rt *Runtime) PublishMetrics() {
	r := rt.Metrics
	if r == nil {
		return
	}
	st := rt.CacheStats()
	r.Gauge("ngen.cache.hits").Set(st.Hits)
	r.Gauge("ngen.cache.misses").Set(st.Misses)
	r.Gauge("ngen.cache.entries").Set(int64(st.Entries))
	gets, news := kernelc.PoolStats()
	r.Gauge("kernelc.pool.gets").Set(gets)
	r.Gauge("kernelc.pool.news").Set(news)
	resets, slots := kernelc.ArenaStats()
	r.Gauge("vec.arena.resets").Set(resets)
	r.Gauge("vec.arena.slots").Set(slots)
	eligible, runs, fallbacks, chunks, steals := kernelc.ParStats()
	r.Gauge("kernelc.par.eligible").Set(eligible)
	r.Gauge("kernelc.par.runs").Set(runs)
	r.Gauge("kernelc.par.fallbacks").Set(fallbacks)
	r.Gauge("kernelc.par.chunks").Set(chunks)
	r.Gauge("kernelc.par.steals").Set(steals)
	r.Gauge("ngen.cache.deduped").Set(st.Deduped)
	r.Gauge("ngen.compile.full").Set(FullCompiles())
	if rt.Disk != nil {
		ds := rt.Disk.Stats()
		r.Gauge("ngen.disk.hits").Set(ds.Hits)
		r.Gauge("ngen.disk.misses").Set(ds.Misses)
		r.Gauge("ngen.disk.stores").Set(ds.Stores)
		r.Gauge("ngen.disk.corrupt").Set(ds.Corrupt)
		r.Gauge("ngen.disk.evictions").Set(ds.Evictions)
	}
	// Backend build/load statistics publish as backend.<name>.<stat>
	// through an optional interface, so core stays ignorant of concrete
	// backend internals.
	if rt.Backend != nil {
		if bc, ok := rt.Backend.(interface{ Counters() map[string]int64 }); ok {
			prefix := "backend." + rt.Backend.Name() + "."
			for k, v := range bc.Counters() {
				r.Gauge(prefix + k).Set(v)
			}
		}
	}
	// Cost-model health: how many distinct intrinsic names were priced
	// through the defensive fallback (each also logs once — a nonzero
	// gauge means the op table needs a row).
	r.Gauge("machine.unknown_op").Set(machine.UnknownOpCount())
	// Planner decision/calibration traffic, when auto-planning is on.
	if rt.Planner != nil {
		for k, v := range rt.Planner.Stats() {
			r.Gauge("plan." + k).Set(v)
		}
	}
	rt.Machine.Counts.Publish(r, "vm.op.")
}

// Kernel is a compiled, callable kernel. The zero-allocation Call path
// reuses per-kernel conversion scratch, so a Kernel must not be Called
// from multiple goroutines at once — compile (cheap on cache hits) one
// Kernel per goroutine instead. CallValues has no such restriction.
type Kernel struct {
	rt  *Runtime
	art *artifact

	// Observability: the precomputed span name ("call:<kernel>") and the
	// invocation counter (nil when metrics are disabled).
	spanName string
	calls    *obs.Counter

	// Reused argument-conversion state for Call: value boxes, pin
	// records, and one pinned buffer per argument position.
	vals    []vm.Value
	pins    []pinnedArg
	argBufs []*vm.Buffer
}

// Compile runs the full pipeline on a staged kernel: ISA validation, C
// generation with JNI binding, (simulated) native compilation, and
// executable lowering. Results are memoized on (graph hash, name,
// microarch, toolchain); repeat compiles of a structurally identical
// kernel return a fresh Kernel wrapping the cached artifact.
func (rt *Runtime) Compile(k *dsl.Kernel) (*Kernel, error) {
	sp := rt.span("ngen.compile")
	defer sp.End()
	sp.SetAttr("kernel", k.Name()).SetAttr("arch", rt.Arch.Name)
	if miss := k.MissingISAs(); len(miss) > 0 {
		return nil, fmt.Errorf("core: %s uses unavailable ISAs:\n  %s",
			k.Name(), strings.Join(miss, "\n  "))
	}
	if rt.Cache == nil {
		art, err := rt.build(k, sp)
		if err != nil {
			return nil, err
		}
		return rt.newKernel(art), nil
	}
	key := cacheKey{
		hash:      ir.Hash(k.F),
		name:      k.Name(),
		arch:      rt.Arch.Name,
		toolchain: rt.Toolchain.Name + " " + rt.Toolchain.Version,
		tier:      rt.Opt,
		backend:   rt.backendName(),
	}
	if sp != nil {
		sp.SetAttr("hash", fmt.Sprintf("%016x", key.hash))
	}
	art, ok := rt.Cache.lookup(key)
	if ok {
		sp.SetAttr("cache", "hit")
		rt.Metrics.Counter("ngen.cache.hit").Add(1)
		// The verifier verdict is part of the artifact: alignment facts
		// feed ir.Hash, so a hit is guaranteed to have verified clean
		// against the same facts.
		rt.Metrics.Counter("verify.cached").Add(1)
	} else {
		sp.SetAttr("cache", "miss")
		rt.Metrics.Counter("ngen.cache.miss").Add(1)
		var err error
		art, err = rt.Cache.once(key, func() (*artifact, error) {
			return rt.compileKey(k, key, sp)
		})
		if err != nil {
			return nil, err
		}
	}
	return rt.newKernel(art), nil
}

// compileKey produces the artifact for one cache key, consulting the
// persistent tier before paying for a full graph compile. A disk hit
// reuses the stored verifier verdict, generated C, and link command and
// only re-runs interpreter lowering — the dlopen analog. Full compiles
// are written back so the next process starts warm.
func (rt *Runtime) compileKey(k *dsl.Kernel, key cacheKey, parent *obs.Span) (*artifact, error) {
	if rt.Disk != nil {
		fp := rt.diskFingerprint()
		dsp := parent.Child("diskcache.load")
		ent, ok := rt.Disk.load(key, fp)
		dsp.End()
		if ok {
			parent.SetAttr("disk", "hit")
			rt.Metrics.Counter("ngen.disk.hit").Add(1)
			lsp := parent.Child("kernelc.compile")
			prog, err := kernelc.CompileTier(k.F, rt.Opt)
			var progPlain *kernelc.Program
			if err == nil && rt.Opt == kernelc.TierAuto {
				progPlain, err = kernelc.CompileTier(k.F, kernelc.TierPlain)
			}
			lsp.End()
			if err == nil {
				// The backend re-resolves its own artifact here too: with
				// the disk cache attached as its store, a warm native run
				// loads the built plugin without touching the toolchain.
				exe, why := rt.backendCompile(k.F, parent)
				if exe == nil && rt.Opt == kernelc.TierAuto {
					exe = rt.autoExec(k.F)
				}
				return &artifact{f: k.F, prog: prog, source: ent.Source,
					command: ent.Command, verify: ent.Verify,
					exec: exe, fallback: why,
					progPlain: progPlain, hash: key.hash}, nil
			}
			// A persisted entry that no longer lowers predates an
			// interpreter change the fingerprint missed: fall through to
			// a full rebuild, which overwrites it.
		} else {
			parent.SetAttr("disk", "miss")
			rt.Metrics.Counter("ngen.disk.miss").Add(1)
		}
	}
	art, err := rt.build(k, parent)
	if err != nil {
		return nil, err
	}
	if rt.Disk != nil {
		ssp := parent.Child("diskcache.store")
		rt.Disk.store(key, rt.diskFingerprint(), art)
		ssp.End()
		rt.Metrics.Counter("ngen.disk.store").Add(1)
	}
	return art, nil
}

// fullCompiles counts uncached graph compiles — runs of the full
// verify → cgen → lower → link pipeline — across every runtime in the
// process. The cachepersist CI gate asserts a warm-disk-cache run keeps
// this at zero.
var fullCompiles atomic.Int64

// FullCompiles returns how many full graph compiles the process has
// performed (cache hits at either tier do not count).
func FullCompiles() int64 { return fullCompiles.Load() }

// ResetFullCompiles zeroes the full-compile counter (tests).
func ResetFullCompiles() { fullCompiles.Store(0) }

// newKernel wraps an artifact for this runtime, precomputing the
// per-call span name so the Call hot path never concatenates.
func (rt *Runtime) newKernel(art *artifact) *Kernel {
	return &Kernel{rt: rt, art: art, spanName: "call:" + art.f.Name,
		calls: rt.Metrics.Counter("ngen.kernel.call")}
}

// build runs the uncached pipeline, one child span per stage.
func (rt *Runtime) build(k *dsl.Kernel, parent *obs.Span) (*artifact, error) {
	fullCompiles.Add(1)
	sp := parent.Child("irverify.run")
	res := irverify.Verify(k.F, rt.Arch)
	sp.End()
	rt.Metrics.Counter("verify.run").Add(1)
	rt.Metrics.Counter("verify.errors").Add(int64(res.Errors()))
	rt.Metrics.Counter("verify.warnings").Add(int64(res.Warnings()))
	if !res.Ok() {
		return nil, fmt.Errorf("core: %s failed verification:\n%s", k.Name(), res.Render())
	}

	sp = parent.Child("cgen.emit")
	src, err := cgen.Emit(k.F, cgen.Options{JNI: true, Package: "ch.ethz.acl.ngen", Class: "NKernel"})
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = parent.Child("kernelc.compile")
	prog, err := kernelc.CompileTier(k.F, rt.Opt)
	var progPlain *kernelc.Program
	if err == nil && rt.Opt == kernelc.TierAuto {
		// Auto mode lowers both tiers under one artifact so the planner
		// can switch per invocation without recompiling.
		progPlain, err = kernelc.CompileTier(k.F, kernelc.TierPlain)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	// The optimizer's per-compile yield, as a span (structure) and as
	// counters (totals across compiles).
	sp = parent.Child("opt.run")
	sp.SetAttr("tier", rt.Opt.String()).
		SetAttr("hoisted", fmt.Sprint(prog.Hoisted())).
		SetAttr("strength", fmt.Sprint(prog.Strength())).
		SetAttr("chains", fmt.Sprint(prog.FusedChains()))
	sp.End()
	rt.Metrics.Counter("opt.hoisted").Add(int64(prog.Hoisted()))
	rt.Metrics.Counter("opt.strength").Add(int64(prog.Strength()))
	rt.Metrics.Counter("opt.fused.chain").Add(int64(prog.FusedChains()))
	sp = parent.Child("toolchain.link")
	lib := "lib" + k.Name() + ".so"
	command := rt.Toolchain.CommandLine(rt.Arch.Features, k.Name()+".c", lib)
	sp.End()
	exe, why := rt.backendCompile(k.F, parent)
	art := &artifact{
		f:        k.F,
		prog:     prog,
		source:   src,
		command:  command,
		verify:   res,
		exec:     exe,
		fallback: why,
	}
	if rt.Opt == kernelc.TierAuto {
		art.progPlain = progPlain
		art.hash = ir.Hash(k.F)
		if art.exec == nil {
			art.exec = rt.autoExec(k.F)
		}
	}
	return art, nil
}

// Source returns the generated C translation unit.
func (kn *Kernel) Source() string { return kn.art.source }

// CompileCommand returns the (simulated) native compiler invocation.
func (kn *Kernel) CompileCommand() string { return kn.art.command }

// Func exposes the staged function that was lowered (for the cost
// model's chain analysis). On cache hits this is the first-compiled
// structurally identical instance, keeping its symbol ids consistent
// with the cached program's internal counters.
func (kn *Kernel) Func() *ir.Func { return kn.art.f }

// BackendFallback reports why the requested execution backend declined
// this kernel at compile time ("" when it compiled, or when no backend
// beyond the interpreter was requested). The kernel still runs — on the
// vm — so this is diagnostic, surfaced by the CLI's backend report.
func (kn *Kernel) BackendFallback() string { return kn.art.fallback }

// Verify exposes the static-analysis verdict the kernel's graph passed
// before code generation. On cache hits this is the verdict of the
// first-compiled structurally identical instance — ir.Hash covers the
// facts the verifier consumes, so the verdict transfers.
func (kn *Kernel) Verify() *irverify.Result { return kn.art.verify }

// pinnedArg records one pinned slice argument so results copy back to
// the caller on exit. Exactly one slice field is set.
type pinnedArg struct {
	buf *vm.Buffer
	f32 []float32
	f64 []float64
	i8  []int8
	u8  []uint8
	i16 []int16
	u16 []uint16
	i32 []int32
}

func (p *pinnedArg) copyBack() {
	switch {
	case p.f32 != nil:
		p.buf.UnpinF32(p.f32)
	case p.f64 != nil:
		p.buf.UnpinF64(p.f64)
	case p.i8 != nil:
		for j := range p.i8 {
			p.i8[j] = int8(p.buf.Data[j])
		}
	case p.u8 != nil:
		copy(p.u8, p.buf.Data)
	case p.i16 != nil:
		for j := range p.i16 {
			p.i16[j] = int16(p.buf.IntAt(j))
		}
	case p.u16 != nil:
		for j := range p.u16 {
			p.u16[j] = uint16(p.buf.IntAt(j))
		}
	case p.i32 != nil:
		p.buf.UnpinI32(p.i32)
	}
}

// Call invokes the kernel with Go values. Slices pin into vm buffers on
// entry and copy back on exit — the GetPrimitiveArrayCritical behaviour
// of Section 3.5 — and each invocation counts one JNI crossing. The
// value boxes and pinned buffers are owned by the Kernel and reused
// across calls, so steady-state invocation does not allocate.
func (kn *Kernel) Call(args ...any) (vm.Value, error) {
	sp := kn.rt.span(kn.spanName)
	kn.calls.Add(1)
	m := kn.rt.Machine
	if cap(kn.vals) < len(args) {
		kn.vals = make([]vm.Value, len(args))
		kn.pins = make([]pinnedArg, 0, len(args))
		kn.argBufs = make([]*vm.Buffer, len(args))
	}
	vals := kn.vals[:len(args)]
	kn.pins = kn.pins[:0]
	for i, a := range args {
		switch x := a.(type) {
		case []float32:
			buf := vm.RepinF32(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, f32: x})
			vals[i] = vm.PtrValue(buf, 0)
		case []float64:
			buf := vm.RepinF64(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, f64: x})
			vals[i] = vm.PtrValue(buf, 0)
		case []int8:
			buf := vm.RepinI8(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, i8: x})
			vals[i] = vm.PtrValue(buf, 0)
		case []uint8:
			buf := vm.RepinU8(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, u8: x})
			vals[i] = vm.PtrValue(buf, 0)
		case []int16:
			buf := vm.RepinI16(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, i16: x})
			vals[i] = vm.PtrValue(buf, 0)
		case []uint16:
			buf := vm.RepinU16(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, u16: x})
			vals[i] = vm.PtrValue(buf, 0)
		case []int32:
			buf := vm.RepinI32(kn.argBufs[i], x)
			kn.argBufs[i] = buf
			kn.pins = append(kn.pins, pinnedArg{buf: buf, i32: x})
			vals[i] = vm.PtrValue(buf, 0)
		case *vm.Buffer:
			vals[i] = vm.PtrValue(x, 0)
		case float32:
			vals[i] = vm.F32Value(x)
		case float64:
			vals[i] = vm.F64Value(x)
		case int:
			vals[i] = vm.IntValue(x)
		case int32:
			vals[i] = vm.IntValue(int(x))
		case int64:
			vals[i] = vm.Value{Kind: ir.KindI64, I: x}
		case bool:
			vals[i] = vm.BoolValue(x)
		default:
			return vm.Value{}, fmt.Errorf("core: unsupported argument type %T", a)
		}
	}
	m.Counts.Add(JNICall, 1)
	out, err := kn.run(m, vals...)
	for i := range kn.pins {
		kn.pins[i].copyBack()
	}
	sp.End()
	return out, err
}

// CallValues invokes the kernel with prebuilt machine values (the
// benchmark harness pins buffers once and reuses them across
// repetitions). One JNI crossing is still counted per invocation.
func (kn *Kernel) CallValues(args ...vm.Value) (vm.Value, error) {
	sp := kn.rt.span(kn.spanName)
	kn.calls.Add(1)
	kn.rt.Machine.Counts.Add(JNICall, 1)
	out, err := kn.run(kn.rt.Machine, args...)
	sp.End()
	return out, err
}

// MustCall is Call that panics on error (examples and benchmarks).
func (kn *Kernel) MustCall(args ...any) vm.Value {
	out, err := kn.Call(args...)
	if err != nil {
		panic(err)
	}
	return out
}

// SystemReport renders the runtime's view of the machine — the
// "TestPlatform" inspection of the artifact (Appendix A.4).
func (rt *Runtime) SystemReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU:       %s (%s), %.2f GHz\n", rt.Arch.Name, rt.Arch.Vendor, rt.Arch.BaseGHz)
	fmt.Fprintf(&b, "Caches:    L1 %dKB, L2 %dKB, L3 %dMB\n",
		rt.Arch.L1Bytes>>10, rt.Arch.L2Bytes>>10, rt.Arch.L3Bytes>>20)
	fmt.Fprintf(&b, "ISAs:      %s\n", rt.Arch.Features)
	fmt.Fprintf(&b, "Compiler:  %s %s (%s)\n", rt.Toolchain.Name, rt.Toolchain.Version, rt.Toolchain.Path)
	fmt.Fprintf(&b, "Flags:     %s\n", strings.Join(rt.Toolchain.Flags(rt.Arch.Features), " "))
	return b.String()
}
