package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernelc"
)

// diskRuntime builds a fresh runtime (empty in-memory cache) attached
// to the given persistent cache directory, as `ngen -cachedir` does.
func diskRuntime(t *testing.T, dir string) *Runtime {
	t.Helper()
	rt := DefaultRuntime()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.Disk = d
	return rt
}

// TestDiskCacheColdWarm is the cachepersist contract: a cold process
// pays one graph compile and stores the artifact; a fresh process
// sharing the directory performs zero graph compiles yet produces an
// identical artifact and a working program.
func TestDiskCacheColdWarm(t *testing.T) {
	dir := t.TempDir()

	rt1 := diskRuntime(t, dir)
	ResetFullCompiles()
	kn1, err := rt1.Compile(stageSumSquares(rt1))
	if err != nil {
		t.Fatal(err)
	}
	if got := FullCompiles(); got != 1 {
		t.Fatalf("cold compile: %d graph compiles, want 1", got)
	}
	if st := rt1.Disk.Stats(); st.Misses != 1 || st.Stores != 1 || st.Hits != 0 {
		t.Fatalf("cold disk stats %+v, want 1 miss / 1 store", st)
	}

	// Fresh runtime, fresh in-memory cache, same directory: the warm
	// path must lower from the persisted entry without a graph compile.
	rt2 := diskRuntime(t, dir)
	ResetFullCompiles()
	kn2, err := rt2.Compile(stageSumSquares(rt2))
	if err != nil {
		t.Fatal(err)
	}
	if got := FullCompiles(); got != 0 {
		t.Fatalf("warm compile: %d graph compiles, want 0", got)
	}
	if st := rt2.Disk.Stats(); st.Hits != 1 || st.Misses != 0 || st.Stores != 0 {
		t.Fatalf("warm disk stats %+v, want 1 hit", st)
	}
	if kn1.Source() != kn2.Source() || kn1.CompileCommand() != kn2.CompileCommand() {
		t.Fatal("warm artifact diverges from the cold one")
	}
	out, err := kn2.Call(10)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(285); out.I != want { // sum i^2, i<10
		t.Fatalf("warm-loaded kernel computed %d, want %d", out.I, want)
	}
}

// TestDiskCacheCorruptionTolerance: a truncated or scribbled entry must
// count as corrupt, be deleted, fall back to a full rebuild, and be
// rewritten so the next process hits again.
func TestDiskCacheCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	rt1 := diskRuntime(t, dir)
	if _, err := rt1.Compile(stageSumSquares(rt1)); err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one persisted entry, got %v (%v)", ents, err)
	}
	if err := os.WriteFile(ents[0], []byte(`{"hash":"scribble`), 0o644); err != nil {
		t.Fatal(err)
	}

	rt2 := diskRuntime(t, dir)
	ResetFullCompiles()
	if _, err := rt2.Compile(stageSumSquares(rt2)); err != nil {
		t.Fatal(err)
	}
	if st := rt2.Disk.Stats(); st.Corrupt != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("corrupt-entry stats %+v, want 1 corrupt / 1 miss / 1 store", st)
	}
	if got := FullCompiles(); got != 1 {
		t.Fatalf("corrupt entry must force a full rebuild, got %d", got)
	}

	rt3 := diskRuntime(t, dir)
	if _, err := rt3.Compile(stageSumSquares(rt3)); err != nil {
		t.Fatal(err)
	}
	if st := rt3.Disk.Stats(); st.Hits != 1 {
		t.Fatalf("rewritten entry should hit, stats %+v", st)
	}
}

// TestDiskCacheLRUEviction drives eviction white-box: three entries
// under a two-entry budget, with the oldest entry's LRU position
// refreshed by a hit, must evict the middle (least recently used) one.
func TestDiskCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.maxBytes = 1 << 30 // hold eviction off while sizing
	fp := "test-fp"
	key := func(h uint64) cacheKey {
		return cacheKey{hash: h, name: "k", arch: "haswell", toolchain: "gcc", tier: kernelc.TierOpt}
	}
	art := &artifact{source: strings.Repeat("x", 512), command: "cc"}

	d.store(key(1), fp, art)
	size := func() int64 {
		info, err := os.Stat(d.path(key(1), fp))
		if err != nil {
			t.Fatal(err)
		}
		return info.Size()
	}()
	d.store(key(2), fp, art)

	// Touch entry 1 with a far-future mtime so it is the most recently
	// used despite being written first.
	prev := nowForMtime
	nowForMtime = func() time.Time { return time.Now().Add(time.Hour) }
	defer func() { nowForMtime = prev }()
	if _, ok := d.load(key(1), fp); !ok {
		t.Fatal("entry 1 should load")
	}

	// Budget for two entries; storing the third must evict entry 2.
	d.maxBytes = 2*size + size/2
	d.store(key(3), fp, art)

	if st := d.Stats(); st.Evictions != 1 {
		t.Fatalf("want exactly 1 eviction, stats %+v", st)
	}
	if _, ok := d.load(key(2), fp); ok {
		t.Fatal("entry 2 (least recently used) should have been evicted")
	}
	if _, ok := d.load(key(1), fp); !ok {
		t.Fatal("entry 1 (refreshed) should have survived")
	}
	if _, ok := d.load(key(3), fp); !ok {
		t.Fatal("entry 3 (just stored) should have survived")
	}
}

// TestSingleFlightDedup holds N-1 concurrent compiles of one key on a
// single flight: the builder runs once, every caller gets the same
// artifact, and the dedup counter records the waiters.
func TestSingleFlightDedup(t *testing.T) {
	c := NewCompileCache()
	key := cacheKey{hash: 7, name: "k", arch: "haswell", toolchain: "gcc", tier: kernelc.TierOpt}
	const n = 8
	release := make(chan struct{})
	var calls atomic.Int32
	want := &artifact{source: "once"}

	var wg sync.WaitGroup
	arts := make([]*artifact, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			arts[i], errs[i] = c.once(key, func() (*artifact, error) {
				calls.Add(1)
				<-release
				return want, nil
			})
		}()
	}
	// Wait until every other caller is parked on the flight, then let
	// the builder finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.dedups.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d callers joined the flight", c.dedups.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || arts[i] != want {
			t.Fatalf("caller %d got (%v, %v), want the shared artifact", i, arts[i], errs[i])
		}
	}
	if st := c.Stats(); st.Deduped != n-1 {
		t.Fatalf("Deduped = %d, want %d", st.Deduped, n-1)
	}

	// A failed flight must not poison the cache: the next caller
	// re-runs the builder.
	calls.Store(0)
	key2 := key
	key2.hash = 8
	if _, err := c.once(key2, func() (*artifact, error) {
		calls.Add(1)
		return nil, os.ErrInvalid
	}); err == nil {
		t.Fatal("failing builder should surface its error")
	}
	if art, err := c.once(key2, func() (*artifact, error) {
		calls.Add(1)
		return want, nil
	}); err != nil || art != want {
		t.Fatalf("retry after failed flight got (%v, %v)", art, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("failed flight must not be cached; builder ran %d times, want 2", got)
	}
}
