package core

import (
	"fmt"
	"reflect"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Bind populates a native-function placeholder with the compiled kernel
// — the analog of the paper's Figure 4 step 4, where `compile(...)`
// links the generated library against the `@native def apply`
// declaration via JNI naming, reflection and Scala macros.
//
// The paper lists as a limitation (Section 3.5) that "there is no
// mechanism to ensure the isomorphism between the native function
// placeholder and the staged function"; this reproduction closes that
// gap: Bind checks, via reflection, that the placeholder's parameter
// and result types are isomorphic to the staged function's signature
// (slice element types against pointer parameters, scalar kinds against
// scalar parameters) and refuses mismatches with a positional error.
//
// fnPtr must be a pointer to a function variable, e.g.:
//
//	var saxpy func(a, b []float32, s float32, n int)
//	if err := core.Bind(kernel, &saxpy); err != nil { ... }
//	saxpy(xs, ys, 2.5, len(xs))
//
// Bound functions panic on runtime kernel errors (out-of-bounds array
// accesses surface exactly where a segfault would in the paper's
// setting); use Kernel.Call for error returns.
func Bind(kn *Kernel, fnPtr any) error {
	pv := reflect.ValueOf(fnPtr)
	if pv.Kind() != reflect.Ptr || pv.Elem().Kind() != reflect.Func {
		return fmt.Errorf("core: Bind needs a pointer to a func variable, got %T", fnPtr)
	}
	ft := pv.Elem().Type()
	params := kn.art.f.Params
	if ft.NumIn() != len(params) {
		return fmt.Errorf("core: placeholder has %d parameters, staged %s has %d",
			ft.NumIn(), kn.art.f.Name, len(params))
	}
	for i := 0; i < ft.NumIn(); i++ {
		if err := checkParam(ft.In(i), params[i].Typ); err != nil {
			return fmt.Errorf("core: %s parameter %d: %w", kn.art.f.Name, i, err)
		}
	}
	if err := checkResult(ft, kn.art.f.G.Root().Result); err != nil {
		return fmt.Errorf("core: %s: %w", kn.art.f.Name, err)
	}

	impl := reflect.MakeFunc(ft, func(in []reflect.Value) []reflect.Value {
		args := make([]any, len(in))
		for i, v := range in {
			args[i] = v.Interface()
		}
		out, err := kn.Call(args...)
		if err != nil {
			panic(fmt.Sprintf("core: %s: %v", kn.art.f.Name, err))
		}
		if ft.NumOut() == 0 {
			return nil
		}
		return []reflect.Value{scalarValue(out, ft.Out(0))}
	})
	pv.Elem().Set(impl)
	return nil
}

// MustBind is Bind that panics on signature mismatch.
func MustBind(kn *Kernel, fnPtr any) {
	if err := Bind(kn, fnPtr); err != nil {
		panic(err)
	}
}

// checkParam verifies one placeholder parameter against a staged type.
func checkParam(goT reflect.Type, staged ir.Type) error {
	if staged.Kind == ir.KindPtr {
		if goT.Kind() != reflect.Slice {
			return fmt.Errorf("staged %s needs a slice, placeholder has %s", staged, goT)
		}
		want := goElemKind(staged.Elem)
		if goT.Elem().Kind() != want {
			return fmt.Errorf("staged %s needs []%s, placeholder has %s",
				staged, want, goT)
		}
		return nil
	}
	want := scalarGoKind(staged.Kind)
	if want == reflect.Invalid {
		return fmt.Errorf("staged type %s has no Go equivalent", staged)
	}
	if goT.Kind() != want {
		return fmt.Errorf("staged %s needs %s, placeholder has %s", staged, want, goT)
	}
	return nil
}

func checkResult(ft reflect.Type, result ir.Exp) error {
	if result == nil {
		if ft.NumOut() != 0 {
			return fmt.Errorf("placeholder returns %s but the staged function is void", ft.Out(0))
		}
		return nil
	}
	if ft.NumOut() != 1 {
		return fmt.Errorf("staged function returns %s but the placeholder returns %d values",
			result.Type(), ft.NumOut())
	}
	want := scalarGoKind(result.Type().Kind)
	if ft.Out(0).Kind() != want {
		return fmt.Errorf("staged result %s needs %s, placeholder returns %s",
			result.Type(), want, ft.Out(0))
	}
	return nil
}

func goElemKind(p isa.Prim) reflect.Kind {
	switch p {
	case isa.PrimF32:
		return reflect.Float32
	case isa.PrimF64:
		return reflect.Float64
	case isa.PrimI8:
		return reflect.Int8
	case isa.PrimU8:
		return reflect.Uint8
	case isa.PrimI16:
		return reflect.Int16
	case isa.PrimU16:
		return reflect.Uint16
	case isa.PrimI32:
		return reflect.Int32
	case isa.PrimU32:
		return reflect.Uint32
	case isa.PrimI64:
		return reflect.Int64
	case isa.PrimU64:
		return reflect.Uint64
	default:
		return reflect.Invalid
	}
}

func scalarGoKind(k ir.Kind) reflect.Kind {
	switch k {
	case ir.KindF32:
		return reflect.Float32
	case ir.KindF64:
		return reflect.Float64
	case ir.KindI32:
		return reflect.Int
	case ir.KindI64:
		return reflect.Int64
	case ir.KindBool:
		return reflect.Bool
	case ir.KindU32:
		return reflect.Uint32
	case ir.KindU64:
		return reflect.Uint64
	default:
		return reflect.Invalid
	}
}

// scalarValue converts a kernel result to the placeholder's return type.
func scalarValue(v vm.Value, t reflect.Type) reflect.Value {
	out := reflect.New(t).Elem()
	switch t.Kind() {
	case reflect.Float32, reflect.Float64:
		out.SetFloat(v.AsFloat())
	case reflect.Bool:
		out.SetBool(v.B)
	case reflect.Uint32, reflect.Uint64:
		out.SetUint(uint64(v.AsInt()))
	default:
		out.SetInt(v.AsInt())
	}
	return out
}
