package core

import (
	"strings"
	"testing"

	"repro/internal/dsl"
)

func TestBindRejectsNonFuncPointer(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	if err := Bind(kn, 42); err == nil {
		t.Error("Bind accepted a non-pointer")
	}
	var notFunc int
	if err := Bind(kn, &notFunc); err == nil {
		t.Error("Bind accepted a pointer to non-func")
	}
}

func TestMustBindPanicsOnMismatch(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBind did not panic on mismatch")
		}
	}()
	var wrong func(int)
	MustBind(kn, &wrong)
}

func TestBoundFuncPanicsOnRuntimeError(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	var double func(a []float32, n int)
	if err := Bind(kn, &double); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-bounds bound call did not panic")
		}
		if !strings.Contains(r.(string), "out-of-bounds") {
			t.Errorf("panic message = %v", r)
		}
	}()
	double(make([]float32, 4), 16) // 16 elements over a 4-element array
}

func TestMustCallPanics(t *testing.T) {
	rt := DefaultRuntime()
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCall did not panic")
		}
	}()
	kn.MustCall("bogus", 1)
}

func TestBindVoidReturnShape(t *testing.T) {
	rt := DefaultRuntime()
	k := rt.NewKernel("ret32")
	x := k.ParamInt()
	k.Return(x.MulC(3))
	kn, err := rt.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	// Void placeholder against a value-returning kernel: rejected.
	var void func(x int)
	if err := Bind(kn, &void); err == nil {
		t.Error("value-returning kernel bound to void placeholder")
	}
	var ok func(x int) int
	if err := Bind(kn, &ok); err != nil {
		t.Fatal(err)
	}
	if got := ok(7); got != 21 {
		t.Errorf("bound ok(7) = %d", got)
	}
	_ = dsl.Kernel{} // keep the dsl import for stageDouble's file
}
