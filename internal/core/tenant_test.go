package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
)

// TestForkTenantSharesCacheAcrossMachines pins the serving contract:
// tenant forks retargeted at different microarchitectures share one
// compile cache without cross-contaminating (the key includes the
// arch), and each fork's machine state stays private.
func TestForkTenantSharesCacheAcrossMachines(t *testing.T) {
	rt := DefaultRuntime()

	hw := rt.ForkTenant(nil)
	if hw.Arch != rt.Arch || hw.Cache != rt.Cache {
		t.Fatal("nil-arch tenant fork must keep the parent's arch and cache")
	}
	if hw.Machine == rt.Machine {
		t.Fatal("tenant fork must own a private machine")
	}

	skx, err := isa.LookupMicroarch("skylakex")
	if err != nil {
		t.Fatal(err)
	}
	other := rt.ForkTenant(skx)
	if other.Arch != skx {
		t.Fatalf("retargeted fork arch = %s, want %s", other.Arch.Name, skx.Name)
	}
	if other.Cache != rt.Cache {
		t.Fatal("retargeted fork must share the compile cache")
	}

	if _, err := hw.Compile(kernels.StagedSaxpy(hw.Arch.Features)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Compile(kernels.StagedSaxpy(other.Arch.Features)); err != nil {
		t.Fatal(err)
	}
	st := rt.CacheStats()
	// Two distinct arches: two entries, no hits stolen across machines.
	if st.Entries < 2 {
		t.Fatalf("expected per-arch cache entries, got %d", st.Entries)
	}

	// A second Haswell tenant hits the shared cache.
	hw2 := rt.ForkTenant(rt.Arch)
	before := rt.CacheStats().Hits
	if _, err := hw2.Compile(kernels.StagedSaxpy(hw2.Arch.Features)); err != nil {
		t.Fatal(err)
	}
	if rt.CacheStats().Hits != before+1 {
		t.Fatal("second tenant on the same arch should hit the shared cache")
	}
}

// TestExportedRuntimeStats covers the accessors the serving layer
// publishes from /healthz.
func TestExportedRuntimeStats(t *testing.T) {
	rt := DefaultRuntime()
	if got := rt.BackendName(); got != "vm" {
		t.Fatalf("BackendName = %q, want vm", got)
	}
	if rt.BackendCounters() != nil {
		t.Fatal("interpreter-only runtime should expose no backend counters")
	}
	if _, ok := rt.DiskStats(); ok {
		t.Fatal("DiskStats ok without a disk cache")
	}
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.Disk = d
	if _, ok := rt.DiskStats(); !ok {
		t.Fatal("DiskStats should report once a disk cache is attached")
	}
}
