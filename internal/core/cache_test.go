package core

import (
	"sync"
	"testing"

	"repro/internal/cgen"
	"repro/internal/dsl"
	"repro/internal/isa"
)

// stageSumSquares stages a scalar kernel every microarchitecture can
// compile (no SIMD), so cache tests can span feature sets.
func stageSumSquares(rt *Runtime) *dsl.Kernel {
	k := rt.NewKernel("sum_squares")
	n := k.ParamInt()
	sum := k.ForAccInt(k.ConstInt(0), n, 1, k.ConstInt(0),
		func(i dsl.Int, acc dsl.Int) dsl.Int {
			return acc.Add(i.Mul(i))
		})
	k.Return(sum)
	return k
}

func TestCompileCacheHitMissAccounting(t *testing.T) {
	rt := DefaultRuntime()
	kn1, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	if st := rt.CacheStats(); st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after first compile: %+v, want 0 hits / 1 miss / 1 entry", st)
	}
	kn2, err := rt.Compile(stageSumSquares(rt))
	if err != nil {
		t.Fatal(err)
	}
	if st := rt.CacheStats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after recompile: %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if kn1.Source() != kn2.Source() {
		t.Error("cache hit must return the identical generated source")
	}
	if kn1.CompileCommand() != kn2.CompileCommand() {
		t.Error("cache hit must return the identical compile command")
	}

	// A structurally different kernel misses.
	other := rt.NewKernel("sum_squares")
	n := other.ParamInt()
	other.Return(other.ForAccInt(other.ConstInt(0), n, 1, other.ConstInt(0),
		func(i dsl.Int, acc dsl.Int) dsl.Int {
			return acc.Add(i) // sum, not sum of squares
		}))
	if _, err := rt.Compile(other); err != nil {
		t.Fatal(err)
	}
	if st := rt.CacheStats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("different graph, same name must miss: %+v", st)
	}
}

func TestCompileCacheCrossMicroarchIsolation(t *testing.T) {
	rt1 := DefaultRuntime()
	rt2, err := NewRuntime(isa.Nehalem, cgen.HostEnvironment)
	if err != nil {
		t.Fatal(err)
	}
	rt2.Cache = rt1.Cache // one shared cache, two microarchitectures

	if _, err := rt1.Compile(stageSumSquares(rt1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Compile(stageSumSquares(rt2)); err != nil {
		t.Fatal(err)
	}
	if st := rt1.CacheStats(); st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("same kernel on two arches must occupy two entries: %+v", st)
	}
	// Each runtime hits only its own entry on recompile.
	if _, err := rt2.Compile(stageSumSquares(rt2)); err != nil {
		t.Fatal(err)
	}
	if st := rt1.CacheStats(); st.Hits != 1 || st.Entries != 2 {
		t.Fatalf("recompile on the second arch must hit its own entry: %+v", st)
	}
}

func TestCompileCacheDisabled(t *testing.T) {
	rt := DefaultRuntime()
	rt.Cache = nil
	if _, err := rt.Compile(stageSumSquares(rt)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Compile(stageSumSquares(rt)); err != nil {
		t.Fatal(err)
	}
	if st := rt.CacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache must report zeros: %+v", st)
	}
}

// TestCompileCacheConcurrent hammers one shared cache from forked
// runtimes; run with -race. Every Compile is one lookup, so hits+misses
// must equal the call count, and racing first compiles collapse to one
// live entry.
func TestCompileCacheConcurrent(t *testing.T) {
	rt := DefaultRuntime()
	const goroutines = 16
	const perG = 8
	kernels := make([]*Kernel, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fork := rt.Fork()
			for r := 0; r < perG; r++ {
				kn, err := fork.Compile(stageSumSquares(fork))
				if err != nil {
					t.Error(err)
					return
				}
				kernels[g] = kn
			}
		}(g)
	}
	wg.Wait()

	st := rt.CacheStats()
	if st.Hits+st.Misses != goroutines*perG {
		t.Errorf("hits %d + misses %d != %d compiles", st.Hits, st.Misses, goroutines*perG)
	}
	if st.Entries != 1 {
		t.Errorf("racing first compiles must collapse to 1 entry, got %d", st.Entries)
	}
	if st.Hits == 0 {
		t.Error("repeat compiles must hit")
	}
	// All kernels share the winning artifact's source.
	for g := 1; g < goroutines; g++ {
		if kernels[g].Source() != kernels[0].Source() {
			t.Fatalf("goroutine %d saw a different artifact", g)
		}
	}

	// Forked machines stay private: running on one fork must not touch
	// the parent's counters.
	forked := rt.Fork()
	kn, err := forked.Compile(stageSumSquares(forked))
	if err != nil {
		t.Fatal(err)
	}
	rt.Machine.Counts.Reset()
	if _, err := kn.Call(4); err != nil {
		t.Fatal(err)
	}
	if got := rt.Machine.Counts[JNICall]; got != 0 {
		t.Errorf("fork execution leaked %d JNI counts into the parent", got)
	}
	if got := forked.Machine.Counts[JNICall]; got != 1 {
		t.Errorf("fork counted %d JNI calls, want 1", got)
	}
}
