package core

import (
	"testing"

	"repro/internal/kernelc"
)

// TestCompileCacheTierIsolation shares one cache between an optimized
// and a plain-tier runtime: the same staged graph must occupy two
// entries (the tier is part of the key), and each runtime must hit only
// its own entry on recompile.
func TestCompileCacheTierIsolation(t *testing.T) {
	opt := DefaultRuntime()
	plain := DefaultRuntime()
	plain.Opt = kernelc.TierPlain
	plain.Cache = opt.Cache // one shared cache, two lowering tiers

	if opt.Opt != kernelc.TierOpt {
		t.Fatalf("zero-valued runtime must default to the optimized tier, got %v", opt.Opt)
	}

	if _, err := opt.Compile(stageSumSquares(opt)); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Compile(stageSumSquares(plain)); err != nil {
		t.Fatal(err)
	}
	if st := opt.CacheStats(); st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("same kernel at two tiers must occupy two entries: %+v", st)
	}

	// Recompiles at each tier hit their own entries.
	if _, err := opt.Compile(stageSumSquares(opt)); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Compile(stageSumSquares(plain)); err != nil {
		t.Fatal(err)
	}
	if st := opt.CacheStats(); st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("tier recompiles must hit their own entries: %+v", st)
	}
}

// TestForkPropagatesTier checks forked sweep workers inherit the
// parent's lowering tier — a plain-tier suite must stay plain across
// its parallel workers or differential sweeps would silently compare a
// tier against itself.
func TestForkPropagatesTier(t *testing.T) {
	rt := DefaultRuntime()
	rt.Opt = kernelc.TierPlain
	if f := rt.Fork(); f.Opt != kernelc.TierPlain {
		t.Fatalf("fork dropped the lowering tier: got %v", f.Opt)
	}
}

// TestTierProgramsAgree runs the same kernel compiled at both tiers and
// demands identical results and identical dynamic op counts — the
// cost-model invariant at the core API level.
func TestTierProgramsAgree(t *testing.T) {
	opt := DefaultRuntime()
	plain := DefaultRuntime()
	plain.Opt = kernelc.TierPlain

	knO, err := opt.Compile(stageSumSquares(opt))
	if err != nil {
		t.Fatal(err)
	}
	knP, err := plain.Compile(stageSumSquares(plain))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 7, 100} {
		opt.Machine.Counts.Reset()
		plain.Machine.Counts.Reset()
		gotO, err := knO.Call(n)
		if err != nil {
			t.Fatal(err)
		}
		gotP, err := knP.Call(n)
		if err != nil {
			t.Fatal(err)
		}
		if gotO != gotP {
			t.Fatalf("n=%d: tiers disagree: opt=%v plain=%v", n, gotO, gotP)
		}
		for k, v := range plain.Machine.Counts {
			if opt.Machine.Counts[k] != v {
				t.Fatalf("n=%d: counter %q diverges: opt=%d plain=%d",
					n, k, opt.Machine.Counts[k], v)
			}
		}
		if len(opt.Machine.Counts) != len(plain.Machine.Counts) {
			t.Fatalf("n=%d: counter sets differ:\nopt:   %v\nplain: %v",
				n, opt.Machine.Counts, plain.Machine.Counts)
		}
	}
}
