package core

// Persistent second level of the compile cache. The in-memory
// CompileCache dies with the process, so every `ngen` invocation used
// to re-verify and re-emit every kernel it touched. DiskCache stores
// the machine-independent compile products — generated C, native
// compile command, verifier verdict — content-addressed by the same
// key the memory cache uses (graph hash ⊕ kernel ⊕ microarch ⊕
// toolchain ⊕ tier) plus a toolchain fingerprint (Go runtime version,
// persistence format, feature set), so a stale or foreign entry can
// never be mistaken for a hit.
//
// A disk hit skips verification and C generation — the expensive
// "graph compile" — and goes straight to interpreter lowering, the
// analog of dlopen'ing a previously built shared object. Writes are
// atomic (temp file + rename in the cache directory), loads are
// corruption-tolerant (any parse, key, or checksum mismatch deletes
// the entry and falls back to a full rebuild), and the directory is
// kept under a byte budget by least-recently-used eviction (hits
// refresh mtimes).

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/irverify"
)

// nowForMtime stamps LRU-refresh mtimes; a variable so eviction tests
// can order entries without sleeping.
var nowForMtime = time.Now

// persistVersion is bumped whenever the entry schema or the meaning of
// a field changes; it is folded into the fingerprint, so old entries
// miss instead of misparse. v2 added the execution-backend dimension to
// the key.
const persistVersion = 2

// DefaultDiskCacheBytes is the eviction budget used by the CLI.
const DefaultDiskCacheBytes = 256 << 20

// DiskCache is an on-disk, content-addressed compile cache directory.
type DiskCache struct {
	dir      string
	maxBytes int64
	mu       sync.Mutex // serialises store+evict scans

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	corrupt   atomic.Int64
	evictions atomic.Int64
}

// OpenDiskCache opens (creating if needed) a cache directory with the
// given eviction budget in bytes (≤0 selects DefaultDiskCacheBytes).
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskCacheBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: disk cache: %w", err)
	}
	return &DiskCache{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the cache directory.
func (d *DiskCache) Dir() string { return d.dir }

// DiskCacheStats is a point-in-time view of persistent-cache traffic.
type DiskCacheStats struct {
	Hits, Misses, Stores, Corrupt, Evictions int64
}

// Stats returns the cache's cumulative counters.
func (d *DiskCache) Stats() DiskCacheStats {
	return DiskCacheStats{
		Hits: d.hits.Load(), Misses: d.misses.Load(), Stores: d.stores.Load(),
		Corrupt: d.corrupt.Load(), Evictions: d.evictions.Load(),
	}
}

// diskEntry is the persisted form of one artifact. Program closures
// cannot serialise, so the entry carries everything needed to rebuild
// one cheaply: the verifier verdict (skipping irverify) and the
// generated C and link command (skipping cgen). Interpreter lowering
// re-runs on load — that is the dlopen analog, not a graph compile.
type diskEntry struct {
	Hash        string           `json:"hash"`
	Kernel      string           `json:"kernel"`
	Arch        string           `json:"arch"`
	Toolchain   string           `json:"toolchain"`
	Tier        string           `json:"tier"`
	Backend     string           `json:"backend"`
	Fingerprint string           `json:"fingerprint"`
	Source      string           `json:"source"`
	Command     string           `json:"command"`
	Verify      *irverify.Result `json:"verify"`
	Sum         uint64           `json:"sum"` // fnv-1a over the entry with Sum=0
}

func (e *diskEntry) checksum() uint64 {
	shadow := *e
	shadow.Sum = 0
	raw, err := json.Marshal(&shadow)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

// matches verifies the entry belongs to (key, fingerprint) and its
// checksum holds.
func (e *diskEntry) matches(key cacheKey, fp string) bool {
	return e.Hash == fmt.Sprintf("%016x", key.hash) &&
		e.Kernel == key.name &&
		e.Arch == key.arch &&
		e.Toolchain == key.toolchain &&
		e.Tier == key.tier.String() &&
		e.Backend == key.backend &&
		e.Fingerprint == fp &&
		e.Sum == e.checksum()
}

// path derives the entry filename: the graph hash plus an fnv of the
// remaining key dimensions, so kernels sharing a graph at different
// tiers, toolchains, or execution backends occupy distinct files.
func (d *DiskCache) path(key cacheKey, fp string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%s\x00%s",
		key.name, key.arch, key.toolchain, key.tier, key.backend, fp)
	return filepath.Join(d.dir, fmt.Sprintf("%016x-%016x.json", key.hash, h.Sum64()))
}

// load returns the entry for (key, fingerprint) when present and
// intact. Corrupt or mismatched files are removed so the next store
// rewrites them.
func (d *DiskCache) load(key cacheKey, fp string) (*diskEntry, bool) {
	path := d.path(key, fp)
	raw, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	var ent diskEntry
	if json.Unmarshal(raw, &ent) != nil || !ent.matches(key, fp) {
		d.corrupt.Add(1)
		d.misses.Add(1)
		os.Remove(path) // best-effort: recompile will rewrite it
		return nil, false
	}
	d.hits.Add(1)
	now := nowForMtime()
	os.Chtimes(path, now, now) // refresh LRU position; best-effort
	return &ent, true
}

// store persists an artifact under (key, fingerprint) with an atomic
// rename, then enforces the byte budget.
func (d *DiskCache) store(key cacheKey, fp string, art *artifact) {
	ent := &diskEntry{
		Hash:        fmt.Sprintf("%016x", key.hash),
		Kernel:      key.name,
		Arch:        key.arch,
		Toolchain:   key.toolchain,
		Tier:        key.tier.String(),
		Backend:     key.backend,
		Fingerprint: fp,
		Source:      art.source,
		Command:     art.command,
		Verify:      art.verify,
	}
	ent.Sum = ent.checksum()
	raw, err := json.Marshal(ent)
	if err != nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*.json")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), d.path(key, fp)) != nil {
		os.Remove(tmp.Name())
		return
	}
	d.stores.Add(1)
	d.evict()
}

// evict removes least-recently-used entries until the directory fits
// the byte budget. Called with mu held.
func (d *DiskCache) evict() {
	dents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime int64
	}
	var files []fileInfo
	var total int64
	for _, de := range dents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{
			path: filepath.Join(d.dir, de.Name()), size: info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	if total <= d.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= d.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			d.evictions.Add(1)
		}
	}
}

// --- blob sidecars -----------------------------------------------------------
//
// Backend build products (native plugin objects) persist as opaque
// .so sidecars next to the JSON entries, satisfying
// backend.ArtifactStore. Sidecars are deliberately exempt from the
// LRU eviction scan (which only considers .json files): a loaded Go
// plugin stays mapped for the process lifetime, so deleting its file
// out from under a running process buys nothing, and the canonical
// path must stay stable because the plugin runtime keys loaded modules
// by path.

// BlobPath returns the canonical sidecar path for key, whether or not
// a blob exists there.
func (d *DiskCache) BlobPath(key string) string {
	return filepath.Join(d.dir, "blob-"+key+".so")
}

// LoadBlob reports the canonical path of the stored blob for key, if
// present.
func (d *DiskCache) LoadBlob(key string) (string, bool) {
	p := d.BlobPath(key)
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

// StoreBlob atomically writes data under key and returns its canonical
// path.
func (d *DiskCache) StoreBlob(key string, data []byte) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*.so")
	if err != nil {
		return "", err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return "", werr
		}
		return "", cerr
	}
	p := d.BlobPath(key)
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return p, nil
}

// --- plan sidecars -----------------------------------------------------------
//
// Calibrated execution plans (internal/plan) persist as plan-<id>.json
// entries in the same directory, satisfying plan.Store. They are
// ordinary .json files, so the LRU eviction scan covers them — a plan
// is regenerable by recalibration, exactly like a compile entry is by
// recompilation. Plans are write-once: the planner never rewrites a
// calibrated plan, so warm runs leave the files byte-identical (the
// planner-determinism test pins this).

// PlanPath returns the canonical path of the persisted plan for id.
func (d *DiskCache) PlanPath(id string) string {
	return filepath.Join(d.dir, "plan-"+id+".json")
}

// LoadPlan returns the persisted plan bytes for id, if present.
func (d *DiskCache) LoadPlan(id string) ([]byte, bool) {
	p := d.PlanPath(id)
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	now := nowForMtime()
	os.Chtimes(p, now, now) // refresh LRU position; best-effort
	return raw, true
}

// StorePlan atomically writes the plan bytes under id.
func (d *DiskCache) StorePlan(id string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*.plan")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), d.PlanPath(id)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// diskFingerprint identifies everything outside the cache key that
// shapes a persisted artifact: the Go toolchain that built this
// binary, the persistence schema, and the exact feature set behind the
// microarchitecture name.
func (rt *Runtime) diskFingerprint() string {
	return fmt.Sprintf("%s;fmt%d;%s", runtime.Version(), persistVersion, rt.Arch.Features)
}
