package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/ir"
	"repro/internal/kernelc"
	"repro/internal/vm"
)

// stubBackend is a test double standing in for a real execution
// backend: it hands out executables that defer every call to the
// interpreter via ErrFallback, or refuses to compile at all.
type stubBackend struct {
	name    string
	refuse  error
	runErr  error
	runHits int
}

func (s *stubBackend) Name() string     { return s.name }
func (s *stubBackend) Available() error { return nil }

func (s *stubBackend) Compile(f *ir.Func, _ kernelc.Tier) (backend.Executable, error) {
	if s.refuse != nil {
		return nil, s.refuse
	}
	return stubExec{s}, nil
}

type stubExec struct{ b *stubBackend }

func (e stubExec) Run(m *vm.Machine, args ...vm.Value) (vm.Value, error) {
	e.b.runHits++
	if e.b.runErr != nil {
		return vm.Value{}, e.b.runErr
	}
	return vm.Value{}, backend.ErrFallback
}

// TestBackendCacheKeyIsolation pins the cache-key contract: the same
// graph compiled under different backends (or the interpreter default)
// occupies distinct entries in the shared compile cache, and only the
// backend-compiled artifact carries an executable.
func TestBackendCacheKeyIsolation(t *testing.T) {
	rtVM := DefaultRuntime()
	rtNat := rtVM.Fork()
	rtNat.Backend = &stubBackend{name: "stub"}

	knVM, err := rtVM.Compile(stageDouble(rtVM))
	if err != nil {
		t.Fatal(err)
	}
	knNat, err := rtNat.Compile(stageDouble(rtNat))
	if err != nil {
		t.Fatal(err)
	}
	if got := rtVM.Cache.Stats().Entries; got != 2 {
		t.Fatalf("vm and stub artifacts share the cache: %d entries, want 2", got)
	}
	if knVM.art.exec != nil {
		t.Error("interpreter-only artifact carries a backend executable")
	}
	if knNat.art.exec == nil {
		t.Error("backend artifact lost its executable")
	}
	// Recompiling under each runtime must hit its own entry, not the
	// other backend's.
	before := rtVM.Cache.Stats().Hits
	if _, err := rtVM.Compile(stageDouble(rtVM)); err != nil {
		t.Fatal(err)
	}
	if _, err := rtNat.Compile(stageDouble(rtNat)); err != nil {
		t.Fatal(err)
	}
	st := rtVM.Cache.Stats()
	if st.Entries != 2 || st.Hits != before+2 {
		t.Fatalf("recompiles missed their backend-keyed entries: %+v", st)
	}
}

// TestBackendCompileFallbackIsNotAnError pins the graceful-degradation
// contract: a backend that cannot lower a kernel does not fail the
// compile — the kernel lands on the interpreter and the reason is
// retained for reporting.
func TestBackendCompileFallbackIsNotAnError(t *testing.T) {
	rt := DefaultRuntime()
	rt.Backend = &stubBackend{name: "stub", refuse: errors.New("no emitter for _mm256_mul_ps")}
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatalf("backend refusal escaped as a compile error: %v", err)
	}
	if got := kn.BackendFallback(); got != "no emitter for _mm256_mul_ps" {
		t.Fatalf("fallback reason = %q", got)
	}
	xs := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := kn.Call(xs, len(xs)); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 2 {
		t.Fatalf("kernel did not run on the interpreter after fallback: %v", xs)
	}
}

// TestBackendPerCallFallbackRouting pins the ErrFallback routing: an
// executable that declines a call sends it to the interpreter, which
// must still produce the correct result.
func TestBackendPerCallFallbackRouting(t *testing.T) {
	rt := DefaultRuntime()
	sb := &stubBackend{name: "stub"}
	rt.Backend = sb
	kn, err := rt.Compile(stageDouble(rt))
	if err != nil {
		t.Fatal(err)
	}
	xs := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := kn.Call(xs, len(xs)); err != nil {
		t.Fatal(err)
	}
	if sb.runHits != 1 {
		t.Fatalf("backend executable saw %d calls, want 1", sb.runHits)
	}
	if xs[0] != 2 {
		t.Fatalf("interpreter did not serve the declined call: %v", xs)
	}
	// A genuine backend error, by contrast, must surface.
	sb.runErr = errors.New("kernelc: double_all: boom")
	if _, err := kn.Call(xs, len(xs)); err == nil || err.Error() != "kernelc: double_all: boom" {
		t.Fatalf("backend error did not surface: %v", err)
	}
}

// TestDiskKeyBackendIsolation pins the persistent tier's key contract:
// entries for the same graph hash under different backends map to
// distinct files, and an entry never matches a key naming another
// backend.
func TestDiskKeyBackendIsolation(t *testing.T) {
	d, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	kv := cacheKey{hash: 0xabcd, name: "k", arch: "hsw", toolchain: "icc 16", tier: kernelc.TierOpt, backend: "vm"}
	kn := kv
	kn.backend = "native"
	if d.path(kv, "fp") == d.path(kn, "fp") {
		t.Fatal("vm and native disk entries share a file")
	}
	ent := &diskEntry{Hash: "000000000000abcd", Kernel: "k", Arch: "hsw",
		Toolchain: "icc 16", Tier: kernelc.TierOpt.String(), Backend: "vm", Fingerprint: "fp"}
	ent.Sum = ent.checksum()
	if !ent.matches(kv, "fp") {
		t.Fatal("entry does not match its own key")
	}
	if ent.matches(kn, "fp") {
		t.Fatal("vm entry matched a native key")
	}
}

// TestBlobSidecarRoundtrip pins the ArtifactStore implementation: blobs
// round-trip through their canonical path and survive JSON-entry
// eviction (a mapped plugin cannot be deleted usefully).
func TestBlobSidecarRoundtrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 1) // 1-byte budget: every store evicts
	if err != nil {
		t.Fatal(err)
	}
	var _ backend.ArtifactStore = d // compile-time interface check
	if _, ok := d.LoadBlob("deadbeef"); ok {
		t.Fatal("load hit on an empty store")
	}
	p, err := d.StoreBlob("deadbeef", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p != d.BlobPath("deadbeef") {
		t.Fatalf("store path %q is not canonical %q", p, d.BlobPath("deadbeef"))
	}
	got, ok := d.LoadBlob("deadbeef")
	if !ok || got != p {
		t.Fatalf("LoadBlob = %q, %v", got, ok)
	}
	// Force an eviction pass via a JSON store; the sidecar must survive.
	key := cacheKey{hash: 1, name: "k", arch: "a", toolchain: "t", backend: "vm"}
	d.store(key, "fp", &artifact{})
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("eviction removed the blob sidecar: %v", err)
	}
	ents, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(ents) != 0 {
		t.Fatalf("1-byte budget left %d json entries", len(ents))
	}
}
