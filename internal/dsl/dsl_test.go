package dsl

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

func hk(name string) *Kernel { return NewKernel(name, isa.Haswell.Features) }

func TestParamsAllocateInOrder(t *testing.T) {
	k := hk("params")
	a := k.ParamF32Ptr()
	s := k.ParamF32()
	n := k.ParamInt()
	if len(k.F.Params) != 3 {
		t.Fatalf("param count %d", len(k.F.Params))
	}
	if a.sym() != k.F.Params[0] || s.E != ir.Exp(k.F.Params[1]) || n.E != ir.Exp(k.F.Params[2]) {
		t.Error("parameter symbols out of order")
	}
	if k.F.Params[0].Typ.Kind != ir.KindPtr || k.F.Params[1].Typ != ir.TF32 {
		t.Error("parameter types wrong")
	}
}

func TestMutableGuardsStores(t *testing.T) {
	k := hk("mut")
	a := k.ParamF32Ptr()
	defer func() {
		if recover() == nil {
			t.Error("store through immutable array must panic")
		}
	}()
	a.Set(k.ConstInt(0), k.ConstF32(1))
}

func TestIntrinsicStoreRequiresMutable(t *testing.T) {
	k := hk("mutvec")
	a := k.ParamF32Ptr()
	v := k.MM256Set1Ps(k.ConstF32(1))
	defer func() {
		if recover() == nil {
			t.Error("vector store through immutable array must panic")
		}
	}()
	k.MM256StoreuPs(a, k.ConstInt(0), v)
}

func TestGeneratedBindingShape(t *testing.T) {
	k := hk("bind")
	a := k.ParamF32Ptr()
	v := k.MM256LoaduPs(a, k.ConstInt(8))
	if v.E.Type() != ir.TM256 {
		t.Errorf("loadu result type %v", v.E.Type())
	}
	// Two nodes: the ptradd displacement and the load.
	var loadDef *ir.Def
	for _, n := range k.F.G.Root().Nodes {
		if n.Def.Op == "_mm256_loadu_ps" {
			loadDef = n.Def
		}
	}
	if loadDef == nil {
		t.Fatal("load node missing")
	}
	if loadDef.Effect.IsPure() || len(loadDef.Effect.Reads) != 1 {
		t.Errorf("load effect wrong: %+v", loadDef.Effect)
	}
	if root := loadDef.Effect.Reads[0]; root != a.sym() {
		t.Errorf("read effect names %v, want the array parameter", root)
	}
}

func TestOffsetZeroIsFree(t *testing.T) {
	k := hk("offset")
	a := k.ParamF32Ptr()
	before := k.F.G.NumNodes()
	_ = k.MM256LoaduPs(a, k.ConstInt(0))
	// Only the load node itself: a zero offset must not stage a ptradd.
	if got := k.F.G.NumNodes() - before; got != 1 {
		t.Errorf("zero-offset load staged %d nodes, want 1", got)
	}
}

func TestMissingISATracking(t *testing.T) {
	k := NewKernel("no512", isa.Haswell.Features)
	k.MM512AddPs(M512{k, k.F.G.Fresh(ir.TM512)}, M512{k, k.F.G.Fresh(ir.TM512)})
	miss := k.MissingISAs()
	if len(miss) != 1 || !strings.Contains(miss[0], "AVX-512") {
		t.Errorf("missing = %v", miss)
	}
}

func TestIntrinMetaTable(t *testing.T) {
	meta, ok := IntrinMeta["_mm256_fmadd_ps"]
	if !ok {
		t.Fatal("fmadd missing from IntrinMeta")
	}
	if meta.Header != "immintrin.h" || meta.Reads || meta.Writes {
		t.Errorf("fmadd meta = %+v", meta)
	}
	load := IntrinMeta["_mm256_loadu_ps"]
	if !load.Reads || load.Writes {
		t.Errorf("loadu meta = %+v", load)
	}
	store := IntrinMeta["_mm256_storeu_ps"]
	if store.Reads || !store.Writes {
		t.Errorf("storeu meta = %+v", store)
	}
	if len(IntrinMeta) < 600 {
		t.Errorf("IntrinMeta has %d entries, want 600+", len(IntrinMeta))
	}
}

func TestScalarOpSugar(t *testing.T) {
	k := hk("sugar")
	n := k.ParamInt()
	n0 := n.Shr(3).Shl(3)
	if _, isConst := n0.E.(ir.Const); isConst {
		t.Error("n0 must stay symbolic")
	}
	eight := k.ConstInt(12).Sub(k.ConstInt(4))
	if c, ok := eight.E.(ir.Const); !ok || c.I != 8 {
		t.Errorf("constant folding through sugar failed: %v", eight.E)
	}
	b := n.Lt(k.ConstInt(10)).And(n.Ge(k.ConstInt(0)))
	if b.E.Type() != ir.TBool {
		t.Error("comparison chain type wrong")
	}
	f := n.ToF32().Mul(k.ConstF32(2)).ToF64().ToF32()
	if f.E.Type() != ir.TF32 {
		t.Error("conversion chain type wrong")
	}
}

func TestForAccTypes(t *testing.T) {
	k := hk("acc")
	n := k.ParamInt()
	iAcc := k.ForAccInt(k.ConstInt(0), n, 1, k.ConstInt(0),
		func(i Int, acc Int) Int { return acc.Add(i) })
	if iAcc.E.Type() != ir.TI32 {
		t.Errorf("int accumulator type %v", iAcc.E.Type())
	}
	vAcc := k.ForAccM256(k.ConstInt(0), n, 8, k.MM256SetzeroPs(),
		func(i Int, acc M256) M256 { return acc })
	if vAcc.E.Type() != ir.TM256 {
		t.Errorf("vector accumulator type %v", vAcc.E.Type())
	}
}

func TestIfSugar(t *testing.T) {
	k := hk("ifs")
	n := k.ParamInt()
	clamped := k.IfInt(n.Lt(k.ConstInt(0)),
		func() Int { return k.ConstInt(0) },
		func() Int { return n })
	k.Return(clamped)
	if k.F.G.Root().Result == nil {
		t.Error("Return did not set the root result")
	}
}
