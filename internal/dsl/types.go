package dsl

import (
	"repro/internal/ir"
)

// Typed staged values. Each wrapper pairs the kernel with an ir
// expression, mirroring the paper's Rep[__m256d], Rep[Float],
// Rep[Array[Float]] hierarchy (Section 3.1). The vector wrappers carry no
// operations of their own: every operation on them is an intrinsic
// (generated bindings); the scalar wrappers carry the host-language
// arithmetic the staged graph interleaves with intrinsics.

// --- vector register types -----------------------------------------------------

// M64 is a staged __m64 (MMX).
type M64 struct {
	K *Kernel
	E ir.Exp
}

// M128 is a staged __m128 (SSE, 4×f32).
type M128 struct {
	K *Kernel
	E ir.Exp
}

// M128d is a staged __m128d (SSE2, 2×f64).
type M128d struct {
	K *Kernel
	E ir.Exp
}

// M128i is a staged __m128i (SSE2 integer).
type M128i struct {
	K *Kernel
	E ir.Exp
}

// M256 is a staged __m256 (AVX, 8×f32).
type M256 struct {
	K *Kernel
	E ir.Exp
}

// M256d is a staged __m256d (AVX, 4×f64).
type M256d struct {
	K *Kernel
	E ir.Exp
}

// M256i is a staged __m256i (AVX integer).
type M256i struct {
	K *Kernel
	E ir.Exp
}

// M512 is a staged __m512 (AVX-512, 16×f32).
type M512 struct {
	K *Kernel
	E ir.Exp
}

// M512d is a staged __m512d (AVX-512, 8×f64).
type M512d struct {
	K *Kernel
	E ir.Exp
}

// M512i is a staged __m512i (AVX-512 integer).
type M512i struct {
	K *Kernel
	E ir.Exp
}

// Mask8 is a staged __mmask8.
type Mask8 struct {
	K *Kernel
	E ir.Exp
}

// Mask16 is a staged __mmask16.
type Mask16 struct {
	K *Kernel
	E ir.Exp
}

func (v M64) exp() ir.Exp    { return v.E }
func (v M128) exp() ir.Exp   { return v.E }
func (v M128d) exp() ir.Exp  { return v.E }
func (v M128i) exp() ir.Exp  { return v.E }
func (v M256) exp() ir.Exp   { return v.E }
func (v M256d) exp() ir.Exp  { return v.E }
func (v M256i) exp() ir.Exp  { return v.E }
func (v M512) exp() ir.Exp   { return v.E }
func (v M512d) exp() ir.Exp  { return v.E }
func (v M512i) exp() ir.Exp  { return v.E }
func (v Mask8) exp() ir.Exp  { return v.E }
func (v Mask16) exp() ir.Exp { return v.E }

// --- scalar types ----------------------------------------------------------------

// Int is a staged 32-bit integer (the JVM Int).
type Int struct {
	K *Kernel
	E ir.Exp
}

// I64 is a staged 64-bit integer.
type I64 struct {
	K *Kernel
	E ir.Exp
}

// U16 is a staged unsigned 16-bit integer (Scala Unsigned's UShort).
type U16 struct {
	K *Kernel
	E ir.Exp
}

// U32 is a staged unsigned 32-bit integer.
type U32 struct {
	K *Kernel
	E ir.Exp
}

// U64 is a staged unsigned 64-bit integer.
type U64 struct {
	K *Kernel
	E ir.Exp
}

// I8 is a staged signed byte.
type I8 struct {
	K *Kernel
	E ir.Exp
}

// U8 is a staged unsigned byte.
type U8 struct {
	K *Kernel
	E ir.Exp
}

// I16 is a staged 16-bit integer.
type I16 struct {
	K *Kernel
	E ir.Exp
}

// F32 is a staged float.
type F32 struct {
	K *Kernel
	E ir.Exp
}

// F64 is a staged double.
type F64 struct {
	K *Kernel
	E ir.Exp
}

// Bool is a staged boolean.
type Bool struct {
	K *Kernel
	E ir.Exp
}

func (v Int) exp() ir.Exp  { return v.E }
func (v I64) exp() ir.Exp  { return v.E }
func (v I8) exp() ir.Exp   { return v.E }
func (v U8) exp() ir.Exp   { return v.E }
func (v I16) exp() ir.Exp  { return v.E }
func (v U16) exp() ir.Exp  { return v.E }
func (v U32) exp() ir.Exp  { return v.E }
func (v U64) exp() ir.Exp  { return v.E }
func (v F32) exp() ir.Exp  { return v.E }
func (v F64) exp() ir.Exp  { return v.E }
func (v Bool) exp() ir.Exp { return v.E }

// --- pointer (array) types --------------------------------------------------------

// PF32 is a staged float* (Array[Float]).
type PF32 struct {
	K *Kernel
	E ir.Exp
}

// PF64 is a staged double*.
type PF64 struct {
	K *Kernel
	E ir.Exp
}

// PI8 is a staged int8_t*.
type PI8 struct {
	K *Kernel
	E ir.Exp
}

// PU8 is a staged uint8_t*.
type PU8 struct {
	K *Kernel
	E ir.Exp
}

// PI16 is a staged int16_t*.
type PI16 struct {
	K *Kernel
	E ir.Exp
}

// PU16 is a staged uint16_t*.
type PU16 struct {
	K *Kernel
	E ir.Exp
}

// PI32 is a staged int32_t*.
type PI32 struct {
	K *Kernel
	E ir.Exp
}

// PU32 is a staged uint32_t*.
type PU32 struct {
	K *Kernel
	E ir.Exp
}

// PI64 is a staged int64_t*.
type PI64 struct {
	K *Kernel
	E ir.Exp
}

// PU64 is a staged uint64_t*.
type PU64 struct {
	K *Kernel
	E ir.Exp
}

// PVoid is a staged void*.
type PVoid struct {
	K *Kernel
	E ir.Exp
}

func (p PF32) exp() ir.Exp  { return p.E }
func (p PF64) exp() ir.Exp  { return p.E }
func (p PI8) exp() ir.Exp   { return p.E }
func (p PU8) exp() ir.Exp   { return p.E }
func (p PI16) exp() ir.Exp  { return p.E }
func (p PU16) exp() ir.Exp  { return p.E }
func (p PI32) exp() ir.Exp  { return p.E }
func (p PU32) exp() ir.Exp  { return p.E }
func (p PI64) exp() ir.Exp  { return p.E }
func (p PU64) exp() ir.Exp  { return p.E }
func (p PVoid) exp() ir.Exp { return p.E }

func (p PF32) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PF64) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PI8) sym() ir.Sym   { return p.E.(ir.Sym) }
func (p PU8) sym() ir.Sym   { return p.E.(ir.Sym) }
func (p PI16) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PU16) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PI32) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PU32) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PI64) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PU64) sym() ir.Sym  { return p.E.(ir.Sym) }
func (p PVoid) sym() ir.Sym { return p.E.(ir.Sym) }

// --- scalar operations ---------------------------------------------------------

// Int arithmetic.

// Add stages a + b.
func (v Int) Add(o Int) Int { return Int{v.K, v.K.F.G.Add(v.E, o.E)} }

// AddC stages a + constant.
func (v Int) AddC(c int) Int { return v.Add(v.K.ConstInt(c)) }

// Sub stages a - b.
func (v Int) Sub(o Int) Int { return Int{v.K, v.K.F.G.Sub(v.E, o.E)} }

// Mul stages a * b.
func (v Int) Mul(o Int) Int { return Int{v.K, v.K.F.G.Mul(v.E, o.E)} }

// MulC stages a * constant.
func (v Int) MulC(c int) Int { return v.Mul(v.K.ConstInt(c)) }

// Div stages a / b.
func (v Int) Div(o Int) Int { return Int{v.K, v.K.F.G.Div(v.E, o.E)} }

// Rem stages a % b.
func (v Int) Rem(o Int) Int { return Int{v.K, v.K.F.G.Rem(v.E, o.E)} }

// Shl stages a << c.
func (v Int) Shl(c int) Int { return Int{v.K, v.K.F.G.Shl(v.E, ir.ConstInt(c))} }

// Shr stages a >> c (arithmetic).
func (v Int) Shr(c int) Int { return Int{v.K, v.K.F.G.Shr(v.E, ir.ConstInt(c))} }

// And stages a & b.
func (v Int) And(o Int) Int { return Int{v.K, v.K.F.G.And(v.E, o.E)} }

// Or stages a | b.
func (v Int) Or(o Int) Int { return Int{v.K, v.K.F.G.Or(v.E, o.E)} }

// Xor stages a ^ b.
func (v Int) Xor(o Int) Int { return Int{v.K, v.K.F.G.Xor(v.E, o.E)} }

// Min stages min(a, b).
func (v Int) Min(o Int) Int { return Int{v.K, v.K.F.G.Min(v.E, o.E)} }

// Max stages max(a, b).
func (v Int) Max(o Int) Int { return Int{v.K, v.K.F.G.Max(v.E, o.E)} }

// Lt stages a < b.
func (v Int) Lt(o Int) Bool { return Bool{v.K, v.K.F.G.Lt(v.E, o.E)} }

// Le stages a <= b.
func (v Int) Le(o Int) Bool { return Bool{v.K, v.K.F.G.Le(v.E, o.E)} }

// Gt stages a > b.
func (v Int) Gt(o Int) Bool { return Bool{v.K, v.K.F.G.Gt(v.E, o.E)} }

// Ge stages a >= b.
func (v Int) Ge(o Int) Bool { return Bool{v.K, v.K.F.G.Ge(v.E, o.E)} }

// Eq stages a == b.
func (v Int) Eq(o Int) Bool { return Bool{v.K, v.K.F.G.Eq(v.E, o.E)} }

// Ne stages a != b.
func (v Int) Ne(o Int) Bool { return Bool{v.K, v.K.F.G.Ne(v.E, o.E)} }

// ToF32 stages an int→float conversion.
func (v Int) ToF32() F32 { return F32{v.K, v.K.F.G.Conv(v.E, ir.TF32)} }

// ToI64 stages an int→long conversion.
func (v Int) ToI64() I64 { return I64{v.K, v.K.F.G.Conv(v.E, ir.TI64)} }

// I64 arithmetic (subset used by kernels).

// Add stages a + b.
func (v I64) Add(o I64) I64 { return I64{v.K, v.K.F.G.Add(v.E, o.E)} }

// Sub stages a - b.
func (v I64) Sub(o I64) I64 { return I64{v.K, v.K.F.G.Sub(v.E, o.E)} }

// Mul stages a * b.
func (v I64) Mul(o I64) I64 { return I64{v.K, v.K.F.G.Mul(v.E, o.E)} }

// ToInt stages a long→int truncation.
func (v I64) ToInt() Int { return Int{v.K, v.K.F.G.Conv(v.E, ir.TI32)} }

// F32 arithmetic.

// Add stages a + b.
func (v F32) Add(o F32) F32 { return F32{v.K, v.K.F.G.Add(v.E, o.E)} }

// Sub stages a - b.
func (v F32) Sub(o F32) F32 { return F32{v.K, v.K.F.G.Sub(v.E, o.E)} }

// Mul stages a * b.
func (v F32) Mul(o F32) F32 { return F32{v.K, v.K.F.G.Mul(v.E, o.E)} }

// Div stages a / b.
func (v F32) Div(o F32) F32 { return F32{v.K, v.K.F.G.Div(v.E, o.E)} }

// Neg stages -a.
func (v F32) Neg() F32 { return F32{v.K, v.K.F.G.Neg(v.E)} }

// Lt stages a < b.
func (v F32) Lt(o F32) Bool { return Bool{v.K, v.K.F.G.Lt(v.E, o.E)} }

// Gt stages a > b.
func (v F32) Gt(o F32) Bool { return Bool{v.K, v.K.F.G.Gt(v.E, o.E)} }

// ToF64 stages a float→double conversion.
func (v F32) ToF64() F64 { return F64{v.K, v.K.F.G.Conv(v.E, ir.TF64)} }

// ToInt stages a float→int truncation.
func (v F32) ToInt() Int { return Int{v.K, v.K.F.G.Conv(v.E, ir.TI32)} }

// F64 arithmetic.

// Add stages a + b.
func (v F64) Add(o F64) F64 { return F64{v.K, v.K.F.G.Add(v.E, o.E)} }

// Sub stages a - b.
func (v F64) Sub(o F64) F64 { return F64{v.K, v.K.F.G.Sub(v.E, o.E)} }

// Mul stages a * b.
func (v F64) Mul(o F64) F64 { return F64{v.K, v.K.F.G.Mul(v.E, o.E)} }

// Div stages a / b.
func (v F64) Div(o F64) F64 { return F64{v.K, v.K.F.G.Div(v.E, o.E)} }

// ToF32 stages a double→float conversion.
func (v F64) ToF32() F32 { return F32{v.K, v.K.F.G.Conv(v.E, ir.TF32)} }

// Bool operations.

// And stages a && b.
func (v Bool) And(o Bool) Bool { return Bool{v.K, v.K.F.G.And(v.E, o.E)} }

// Or stages a || b.
func (v Bool) Or(o Bool) Bool { return Bool{v.K, v.K.F.G.Or(v.E, o.E)} }

// Not stages !a.
func (v Bool) Not() Bool { return Bool{v.K, v.K.F.G.Not(v.E)} }

// --- array access ------------------------------------------------------------------

// At stages a[i].
func (p PF32) At(i Int) F32 { return F32{p.K, p.K.F.G.ALoad(p.E, i.E)} }

// Set stages a[i] = v.
func (p PF32) Set(i Int, v F32) { p.K.F.G.AStore(p.E, i.E, v.E) }

// Plus stages pointer displacement a + i.
func (p PF32) Plus(i Int) PF32 { return PF32{p.K, p.K.Offset(p.E, i)} }

// At stages a[i].
func (p PF64) At(i Int) F64 { return F64{p.K, p.K.F.G.ALoad(p.E, i.E)} }

// Set stages a[i] = v.
func (p PF64) Set(i Int, v F64) { p.K.F.G.AStore(p.E, i.E, v.E) }

// Plus stages pointer displacement a + i.
func (p PF64) Plus(i Int) PF64 { return PF64{p.K, p.K.Offset(p.E, i)} }

// At stages a[i] sign-extended to Int (Java's byte loads promote).
func (p PI8) At(i Int) Int {
	v := p.K.F.G.ALoad(p.E, i.E)
	return Int{p.K, p.K.F.G.Conv(v, ir.TI32)}
}

// Set stages a[i] = (int8) v.
func (p PI8) Set(i Int, v Int) {
	p.K.F.G.AStore(p.E, i.E, p.K.F.G.Conv(v.E, ir.TI8))
}

// Plus stages pointer displacement a + i.
func (p PI8) Plus(i Int) PI8 { return PI8{p.K, p.K.Offset(p.E, i)} }

// At stages a[i] zero-extended to Int.
func (p PU8) At(i Int) Int {
	v := p.K.F.G.ALoad(p.E, i.E)
	return Int{p.K, p.K.F.G.Conv(v, ir.TI32)}
}

// Set stages a[i] = (uint8) v.
func (p PU8) Set(i Int, v Int) {
	p.K.F.G.AStore(p.E, i.E, p.K.F.G.Conv(v.E, ir.TU8))
}

// Plus stages pointer displacement a + i.
func (p PU8) Plus(i Int) PU8 { return PU8{p.K, p.K.Offset(p.E, i)} }

// At stages a[i] sign-extended to Int (Java short semantics).
func (p PI16) At(i Int) Int {
	v := p.K.F.G.ALoad(p.E, i.E)
	return Int{p.K, p.K.F.G.Conv(v, ir.TI32)}
}

// Set stages a[i] = (int16) v.
func (p PI16) Set(i Int, v Int) {
	p.K.F.G.AStore(p.E, i.E, p.K.F.G.Conv(v.E, ir.TI16))
}

// Plus stages pointer displacement a + i.
func (p PI16) Plus(i Int) PI16 { return PI16{p.K, p.K.Offset(p.E, i)} }

// At stages a[i] zero-extended to Int.
func (p PU16) At(i Int) Int {
	v := p.K.F.G.ALoad(p.E, i.E)
	return Int{p.K, p.K.F.G.Conv(v, ir.TI32)}
}

// Set stages a[i] = (uint16) v.
func (p PU16) Set(i Int, v Int) {
	p.K.F.G.AStore(p.E, i.E, p.K.F.G.Conv(v.E, ir.TU16))
}

// Plus stages pointer displacement a + i.
func (p PU16) Plus(i Int) PU16 { return PU16{p.K, p.K.Offset(p.E, i)} }

// At stages a[i].
func (p PI32) At(i Int) Int { return Int{p.K, p.K.F.G.ALoad(p.E, i.E)} }

// Set stages a[i] = v.
func (p PI32) Set(i Int, v Int) { p.K.F.G.AStore(p.E, i.E, v.E) }

// Plus stages pointer displacement a + i.
func (p PI32) Plus(i Int) PI32 { return PI32{p.K, p.K.Offset(p.E, i)} }
