// Package dsl is the staged SIMD frontend: the reproduction of the
// paper's ISA-specific eDSLs (Section 3). A Kernel accumulates intrinsic
// invocations, auxiliary scalar operations and control flow into an
// internal/ir graph instead of executing them; the runtime (internal/core)
// then compiles the graph once and runs it at full speed.
//
// Go has no operator overloading, so where the Scala eDSL writes
// `a + b` on Rep[T] values, this frontend writes `a.Add(b)` on typed
// wrappers; everything else — the deferred API, SSA graph, effect
// inference, ISA mixing — matches the paper's architecture.
//
// The intrinsic bindings themselves (methods like MM256LoaduPs) live in
// generated code (intrin_gen.go, produced by cmd/intrinsics-gen from the
// XML specification), exactly as the paper generates its eDSLs.
package dsl

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Kernel is a staged function under construction.
type Kernel struct {
	F        *ir.Func
	Features isa.FeatureSet
	// missing collects intrinsics staged without hardware support, so
	// the compile pipeline can report them all at once.
	missing []string
}

// NewKernel starts staging a kernel for a machine with the given ISA
// features (the paper's "mixin one or several ISA-specific eDSLs").
func NewKernel(name string, features isa.FeatureSet) *Kernel {
	return &Kernel{F: ir.NewFunc(name), Features: features}
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.F.Name }

// MissingISAs returns the intrinsics staged without the required CPU
// features, in staging order.
func (k *Kernel) MissingISAs() []string { return append([]string(nil), k.missing...) }

// --- parameters --------------------------------------------------------------

func (k *Kernel) param(t ir.Type) ir.Sym {
	s := k.F.G.Fresh(t)
	k.F.Params = append(k.F.Params, s)
	return s
}

// ParamF32 declares a float scalar parameter.
func (k *Kernel) ParamF32() F32 { return F32{k, k.param(ir.TF32)} }

// ParamF64 declares a double scalar parameter.
func (k *Kernel) ParamF64() F64 { return F64{k, k.param(ir.TF64)} }

// ParamInt declares an int32 parameter.
func (k *Kernel) ParamInt() Int { return Int{k, k.param(ir.TI32)} }

// ParamI64 declares an int64 parameter.
func (k *Kernel) ParamI64() I64 { return I64{k, k.param(ir.TI64)} }

// ParamF32Ptr declares a float-array parameter (Array[Float] ↔ float*).
func (k *Kernel) ParamF32Ptr() PF32 { return PF32{k, k.param(ir.PtrType(isa.PrimF32))} }

// ParamF64Ptr declares a double-array parameter.
func (k *Kernel) ParamF64Ptr() PF64 { return PF64{k, k.param(ir.PtrType(isa.PrimF64))} }

// ParamI8Ptr declares a byte-array parameter.
func (k *Kernel) ParamI8Ptr() PI8 { return PI8{k, k.param(ir.PtrType(isa.PrimI8))} }

// ParamU8Ptr declares an unsigned-byte-array parameter.
func (k *Kernel) ParamU8Ptr() PU8 { return PU8{k, k.param(ir.PtrType(isa.PrimU8))} }

// ParamI16Ptr declares a short-array parameter.
func (k *Kernel) ParamI16Ptr() PI16 { return PI16{k, k.param(ir.PtrType(isa.PrimI16))} }

// ParamU16Ptr declares an unsigned-short-array parameter.
func (k *Kernel) ParamU16Ptr() PU16 { return PU16{k, k.param(ir.PtrType(isa.PrimU16))} }

// ParamI32Ptr declares an int-array parameter.
func (k *Kernel) ParamI32Ptr() PI32 { return PI32{k, k.param(ir.PtrType(isa.PrimI32))} }

// Mutable marks an array parameter writable — the paper's
// reflectMutableSym (Figure 4 makes SAXPY's `a` mutable before storing).
func Mutable[P interface{ sym() ir.Sym }](k *Kernel, p P) P {
	k.F.G.MarkMutable(p.sym())
	return p
}

// Aligned declares that the array behind a parameter is aligned to the
// given byte boundary. The static verifier (internal/irverify) requires
// such a fact before it accepts aligned load/store intrinsics through
// the pointer; without one it suggests the unaligned variant.
func Aligned[P interface{ sym() ir.Sym }](k *Kernel, p P, bytes int) P {
	k.F.G.MarkAligned(p.sym(), bytes)
	return p
}

// --- control flow -------------------------------------------------------------

// For stages `for (i = start; i < end; i += stride) body` — the paper's
// forloop(start, end, fresh[Int], stride, body).
func (k *Kernel) For(start, end Int, stride int, body func(i Int)) {
	k.F.G.Loop(start.E, end.E, ir.ConstInt(stride), func(iv ir.Sym) {
		body(Int{k, iv})
	})
}

// ForExp is For with a staged stride.
func (k *Kernel) ForExp(start, end, stride Int, body func(i Int)) {
	k.F.G.Loop(start.E, end.E, stride.E, func(iv ir.Sym) {
		body(Int{k, iv})
	})
}

// ForAccM256 stages a counted loop carrying a __m256 accumulator (the
// `acc += dot_ps(...)` pattern of Section 4.1).
func (k *Kernel) ForAccM256(start, end Int, stride int, init M256, body func(i Int, acc M256) M256) M256 {
	e := k.F.G.LoopAcc(start.E, end.E, ir.ConstInt(stride), init.E,
		func(iv, acc ir.Sym) ir.Exp { return body(Int{k, iv}, M256{k, acc}).E })
	return M256{k, e}
}

// ForAccM256i stages a counted loop carrying a __m256i accumulator.
func (k *Kernel) ForAccM256i(start, end Int, stride int, init M256i, body func(i Int, acc M256i) M256i) M256i {
	e := k.F.G.LoopAcc(start.E, end.E, ir.ConstInt(stride), init.E,
		func(iv, acc ir.Sym) ir.Exp { return body(Int{k, iv}, M256i{k, acc}).E })
	return M256i{k, e}
}

// ForAccM512 stages a counted loop carrying a __m512 accumulator.
func (k *Kernel) ForAccM512(start, end Int, stride int, init M512, body func(i Int, acc M512) M512) M512 {
	e := k.F.G.LoopAcc(start.E, end.E, ir.ConstInt(stride), init.E,
		func(iv, acc ir.Sym) ir.Exp { return body(Int{k, iv}, M512{k, acc}).E })
	return M512{k, e}
}

// ForAccF32 stages a counted loop carrying a float accumulator (the
// Java-style scalar reduction the SLP baseline cannot vectorize).
func (k *Kernel) ForAccF32(start, end Int, stride int, init F32, body func(i Int, acc F32) F32) F32 {
	e := k.F.G.LoopAcc(start.E, end.E, ir.ConstInt(stride), init.E,
		func(iv, acc ir.Sym) ir.Exp { return body(Int{k, iv}, F32{k, acc}).E })
	return F32{k, e}
}

// ForAccInt stages a counted loop carrying an int accumulator.
func (k *Kernel) ForAccInt(start, end Int, stride int, init Int, body func(i Int, acc Int) Int) Int {
	e := k.F.G.LoopAcc(start.E, end.E, ir.ConstInt(stride), init.E,
		func(iv, acc ir.Sym) ir.Exp { return body(Int{k, iv}, Int{k, acc}).E })
	return Int{k, e}
}

// ForAccI64 stages a counted loop carrying a long accumulator.
func (k *Kernel) ForAccI64(start, end Int, stride int, init I64, body func(i Int, acc I64) I64) I64 {
	e := k.F.G.LoopAcc(start.E, end.E, ir.ConstInt(stride), init.E,
		func(iv, acc ir.Sym) ir.Exp { return body(Int{k, iv}, I64{k, acc}).E })
	return I64{k, e}
}

// If stages a statement-level conditional.
func (k *Kernel) If(cond Bool, then, els func()) {
	k.F.G.If(cond.E, ir.TVoid,
		func() ir.Exp {
			then()
			return nil
		},
		func() ir.Exp {
			if els != nil {
				els()
			}
			return nil
		})
}

// IfInt stages an int-valued conditional expression.
func (k *Kernel) IfInt(cond Bool, then, els func() Int) Int {
	e := k.F.G.If(cond.E, ir.TI32,
		func() ir.Exp { return then().E },
		func() ir.Exp { return els().E })
	return Int{k, e}
}

// IfF32 stages a float-valued conditional expression.
func (k *Kernel) IfF32(cond Bool, then, els func() F32) F32 {
	e := k.F.G.If(cond.E, ir.TF32,
		func() ir.Exp { return then().E },
		func() ir.Exp { return els().E })
	return F32{k, e}
}

// Comment stages a comment that survives into generated C.
func (k *Kernel) Comment(text string) { k.F.G.Comment(text) }

// Return sets the kernel's result expression.
func (k *Kernel) Return(v interface{ exp() ir.Exp }) {
	k.F.G.Root().Result = v.exp()
}

// --- literals ------------------------------------------------------------------

// ConstInt stages an i32 literal.
func (k *Kernel) ConstInt(v int) Int { return Int{k, ir.ConstInt(v)} }

// ConstF32 stages an f32 literal.
func (k *Kernel) ConstF32(v float32) F32 { return F32{k, ir.ConstF32(v)} }

// ConstF64 stages an f64 literal.
func (k *Kernel) ConstF64(v float64) F64 { return F64{k, ir.ConstF64(v)} }

// ConstI64 stages an i64 literal.
func (k *Kernel) ConstI64(v int64) I64 { return I64{k, ir.ConstI64(v)} }

// ConstI8 stages an i8 literal (char-typed intrinsic immediates).
func (k *Kernel) ConstI8(v int8) I8 { return I8{k, ir.Const{Typ: ir.TI8, I: int64(v)}} }

// ConstI16 stages an i16 literal (short-typed intrinsic immediates).
func (k *Kernel) ConstI16(v int16) I16 { return I16{k, ir.Const{Typ: ir.TI16, I: int64(v)}} }

// ConstU8 stages a u8 literal.
func (k *Kernel) ConstU8(v uint8) U8 { return U8{k, ir.Const{Typ: ir.TU8, U: uint64(v)}} }

// ConstU16 stages a u16 literal.
func (k *Kernel) ConstU16(v uint16) U16 { return U16{k, ir.Const{Typ: ir.TU16, U: uint64(v)}} }

// --- intrinsic emission (used by the generated bindings) -----------------------

// Intrinsic stages one intrinsic invocation. required lists the CPUID
// families the intrinsic needs; eff carries the inferred memory effect
// with pointer roots already resolved. This is the runtime half of the
// paper's generated `def _mm256_add_pd(...) = MM256_ADD_PD(...)`
// conversions.
func (k *Kernel) Intrinsic(name string, typ ir.Type, required []isa.Family, eff ir.Effect, args ...ir.Exp) ir.Exp {
	for _, fam := range required {
		// SVML is a compiler-provided library, not a CPUID feature: its
		// intrinsics lower to sequences of whatever vector ISA exists.
		if fam == isa.SVML && k.Features[isa.SSE] {
			continue
		}
		if !k.Features[fam] {
			k.missing = append(k.missing,
				fmt.Sprintf("%s requires %s (machine has: %s)", name, fam, k.Features))
			break
		}
	}
	return k.F.G.Emit(&ir.Def{Op: name, Typ: typ, Args: args, Effect: eff})
}

// ReadEff builds a read effect through the pointer expression's root.
func (k *Kernel) ReadEff(ptrs ...ir.Exp) ir.Effect {
	return ir.ReadEffect(k.roots(ptrs)...)
}

// WriteEff builds a write effect through the pointer expression's root.
func (k *Kernel) WriteEff(ptrs ...ir.Exp) ir.Effect {
	eff := ir.WriteEffect(k.roots(ptrs)...)
	for _, root := range eff.Writes {
		if !k.F.G.IsMutable(root) {
			panic(fmt.Sprintf("dsl: intrinsic store through immutable array %v; wrap the parameter in dsl.Mutable", root))
		}
	}
	return eff
}

func (k *Kernel) roots(ptrs []ir.Exp) []ir.Sym {
	out := make([]ir.Sym, 0, len(ptrs))
	for _, p := range ptrs {
		if s, ok := p.(ir.Sym); ok {
			out = append(out, k.F.G.RootPtr(s))
		}
	}
	return out
}

// Offset displaces a pointer expression by idx elements (`a + i`).
func (k *Kernel) Offset(ptr ir.Exp, idx Int) ir.Exp {
	if c, ok := idx.E.(ir.Const); ok && c.IsZero() {
		return ptr
	}
	return k.F.G.PtrAdd(ptr, idx.E)
}
