package dsl

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/ir"
	"repro/internal/isa"
)

// allFeatures enables every family so no binding records a missing ISA.
func allFeatures() isa.FeatureSet {
	fs := isa.NewFeatureSet()
	for _, f := range isa.Families() {
		fs.Add(f)
	}
	return fs
}

// buildArg constructs a staged argument of the given reflect type.
func buildArg(t *testing.T, k *Kernel, typ reflect.Type) reflect.Value {
	fresh := func(irT ir.Type) ir.Exp { return k.F.G.Fresh(irT) }
	switch typ.Name() {
	case "M64":
		return reflect.ValueOf(M64{k, fresh(ir.TM64)})
	case "M128":
		return reflect.ValueOf(M128{k, fresh(ir.TM128)})
	case "M128d":
		return reflect.ValueOf(M128d{k, fresh(ir.TM128d)})
	case "M128i":
		return reflect.ValueOf(M128i{k, fresh(ir.TM128i)})
	case "M256":
		return reflect.ValueOf(M256{k, fresh(ir.TM256)})
	case "M256d":
		return reflect.ValueOf(M256d{k, fresh(ir.TM256d)})
	case "M256i":
		return reflect.ValueOf(M256i{k, fresh(ir.TM256i)})
	case "M512":
		return reflect.ValueOf(M512{k, fresh(ir.TM512)})
	case "M512d":
		return reflect.ValueOf(M512d{k, fresh(ir.TM512d)})
	case "M512i":
		return reflect.ValueOf(M512i{k, fresh(ir.TM512i)})
	case "Mask8":
		return reflect.ValueOf(Mask8{k, fresh(ir.TMask8)})
	case "Mask16":
		return reflect.ValueOf(Mask16{k, fresh(ir.TMask16)})
	case "Int":
		return reflect.ValueOf(k.ConstInt(0))
	case "I64":
		return reflect.ValueOf(k.ConstI64(0))
	case "I8":
		return reflect.ValueOf(k.ConstI8(0))
	case "U8":
		return reflect.ValueOf(k.ConstU8(0))
	case "I16":
		return reflect.ValueOf(k.ConstI16(0))
	case "U16":
		return reflect.ValueOf(k.ConstU16(0))
	case "U32":
		return reflect.ValueOf(U32{k, ir.Const{Typ: ir.TU32}})
	case "U64":
		return reflect.ValueOf(U64{k, ir.Const{Typ: ir.TU64}})
	case "F32":
		return reflect.ValueOf(k.ConstF32(0))
	case "F64":
		return reflect.ValueOf(k.ConstF64(0))
	case "Bool":
		return reflect.ValueOf(Bool{k, ir.ConstBool(false)})
	case "PF32":
		return reflect.ValueOf(Mutable(k, k.ParamF32Ptr()))
	case "PF64":
		return reflect.ValueOf(Mutable(k, k.ParamF64Ptr()))
	case "PI8":
		return reflect.ValueOf(Mutable(k, k.ParamI8Ptr()))
	case "PU8":
		return reflect.ValueOf(Mutable(k, k.ParamU8Ptr()))
	case "PI16":
		return reflect.ValueOf(Mutable(k, k.ParamI16Ptr()))
	case "PU16":
		return reflect.ValueOf(Mutable(k, k.ParamU16Ptr()))
	case "PI32":
		return reflect.ValueOf(Mutable(k, k.ParamI32Ptr()))
	case "int":
		return reflect.ValueOf(0)
	case "Pointer", "": // the Pointer interface
		if typ.Kind() == reflect.Interface {
			return reflect.ValueOf(Mutable(k, k.ParamF32Ptr()))
		}
	}
	t.Fatalf("no argument builder for type %v", typ)
	return reflect.Value{}
}

// TestExerciseEveryGeneratedBinding reflectively invokes all generated
// intrinsic bindings with well-typed staged arguments, checking that
// each stages a node with the right op name, carries no missing-ISA
// record under a full feature set, and stays consistent with its
// IntrinMeta effects (pure intrinsics stage pure nodes; memory
// intrinsics stage effectful ones).
func TestExerciseEveryGeneratedBinding(t *testing.T) {
	exercised := 0
	for cname, meta := range IntrinMeta {
		k := NewKernel("exercise", allFeatures())
		method := reflect.ValueOf(k).MethodByName(gen.MethodName(cname))
		if !method.IsValid() {
			t.Errorf("%s: no generated method %s", cname, gen.MethodName(cname))
			continue
		}
		mt := method.Type()
		args := make([]reflect.Value, mt.NumIn())
		for i := range args {
			args[i] = buildArg(t, k, mt.In(i))
		}
		method.Call(args)
		if miss := k.MissingISAs(); len(miss) != 0 {
			t.Errorf("%s: missing ISA under full feature set: %v", cname, miss)
			continue
		}
		// Find the staged intrinsic node.
		var def *ir.Def
		var walk func(b *ir.Block)
		walk = func(b *ir.Block) {
			for _, n := range b.Nodes {
				if n.Def.Op == cname {
					def = n.Def
				}
				for _, blk := range n.Def.Blocks {
					walk(blk)
				}
			}
		}
		walk(k.F.G.Root())
		if def == nil {
			t.Errorf("%s: binding staged no node", cname)
			continue
		}
		pure := def.Effect.IsPure()
		if (meta.Reads || meta.Writes) && pure {
			t.Errorf("%s: memory intrinsic staged a pure node", cname)
		}
		if !meta.Reads && !meta.Writes && !pure {
			t.Errorf("%s: pure intrinsic staged an effectful node (%+v)", cname, def.Effect)
		}
		if meta.Reads && len(def.Effect.Reads) == 0 {
			t.Errorf("%s: read effect lost", cname)
		}
		if meta.Writes && len(def.Effect.Writes) == 0 {
			t.Errorf("%s: write effect lost", cname)
		}
		exercised++
	}
	if exercised < 600 {
		t.Errorf("exercised only %d bindings", exercised)
	}
}
