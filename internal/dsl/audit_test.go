package dsl

import (
	"sort"
	"testing"

	"repro/internal/vm"
)

// TestEveryBindingHasSemanticsExceptKNC audits coverage: every generated
// binding must have an executable semantic in the software SIMD machine,
// except the KNC-specific intrinsics (no modeled microarchitecture can
// run KNC code, so they stay metadata-only and fail at compile time with
// a clear error — see kernelc.TestCompileRejectsUnimplementedIntrinsic).
func TestEveryBindingHasSemanticsExceptKNC(t *testing.T) {
	knownMetadataOnly := map[string]bool{
		"_mm512_extload_ps":     true,
		"_mm512_extstore_ps":    true,
		"_mm512_fmadd233_epi32": true,
		"_mm512_reduce_gmax_ps": true,
		"_mm512_swizzle_epi32":  true,
	}
	var missing []string
	for name := range IntrinMeta {
		if !vm.Implemented(name) && !knownMetadataOnly[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) != 0 {
		t.Errorf("bindings without vm semantics: %v", missing)
	}
	// And the allowlist must not rot: everything on it is really absent.
	for name := range knownMetadataOnly {
		if vm.Implemented(name) {
			t.Errorf("%s gained semantics; remove it from the allowlist", name)
		}
		if _, bound := IntrinMeta[name]; !bound {
			t.Errorf("%s is allowlisted but no longer bound", name)
		}
	}
}
