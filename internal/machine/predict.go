package machine

import (
	"runtime"
	"strconv"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/loopdep"
	"repro/internal/vm"
)

// Strategy prediction: pricing the admissible execution strategies of
// one kernel invocation before any of them has run. The modeled cycle
// estimate (Estimate) is strategy-invariant — every tier, lane count,
// and backend executes the identical op stream — so what distinguishes
// strategies is the host's own mechanism cost: interpreter dispatch per
// op (higher on the plain tier, whose lowering fuses nothing), the
// fixed managed↔native crossing the paper models for JNI (plus the
// plugin call itself) on the native backend, and goroutine startup +
// counter merge for sharded parallel loops. The constants below are
// mechanism estimates for the reproduction host, deliberately rough:
// they only need to rank strategies well enough for cold-start
// decisions, because online calibration (internal/plan) replaces them
// with exponentially-smoothed measurements after the first probe runs.
const (
	// HostNsOpt and HostNsPlain are interpreter dispatch costs per
	// counted op on the opt and plain tiers (the plain tier re-walks
	// operand trees the optimizer would have fused or hoisted).
	HostNsOpt   = 30.0
	HostNsPlain = 60.0
	// HostNsNative is the per-op cost on the native plugin backend. The
	// plugin still drives the counted software-SIMD machine (counts
	// must stay byte-identical), so it shaves dispatch, not execution.
	HostNsNative = 24.0
	// HostParStartupNs and HostParLaneNs price a sharded loop: one
	// fixed scheduler startup plus a per-lane term covering goroutine
	// spawn, the runtime address probe, and the post-join counter merge
	// (kernelc shards into 4 chunks per lane; the merge walks each
	// chunk's private counter).
	HostParStartupNs = 8000.0
	HostParLaneNs    = 12000.0
)

// CrossingNs is the fixed managed↔native boundary cost per invocation
// in nanoseconds — the paper's JNI crossing, priced from the modeled
// microarchitecture's cycle cost at its base clock.
func CrossingNs(a *isa.Microarch) float64 {
	return a.JNICycles / a.BaseGHz
}

// StrategySpec names one admissible execution configuration: which
// backend runs the kernel, which lowering tier, and how many parallel
// lanes (1 = serial) with which shard chunk size (0 = scheduler
// default).
type StrategySpec struct {
	Backend string `json:"backend"`
	Tier    string `json:"tier"`
	Lanes   int    `json:"lanes"`
	Chunk   int    `json:"chunk,omitempty"`
}

// String renders the spec the way planner tables print it.
func (s StrategySpec) String() string {
	out := s.Backend + "/" + s.Tier + "/" + strconv.Itoa(s.Lanes)
	if s.Chunk > 0 {
		out += "c" + strconv.Itoa(s.Chunk)
	}
	return out
}

// StrategyCost is one priced strategy: the host-mechanism prediction
// the planner ranks by, alongside the (strategy-invariant) model
// report for display.
type StrategyCost struct {
	Spec StrategySpec `json:"spec"`
	// HostNs is the predicted wall-clock nanoseconds for one invocation
	// under this strategy on the reproduction host.
	HostNs float64 `json:"host_ns"`
}

// PredictStrategies prices each admissible strategy for one kernel
// invocation whose dynamic op counts (a single-invocation delta) and
// working-set footprint are known. The returned slice parallels specs;
// it is not sorted — callers rank by HostNs.
func (e *Estimator) PredictStrategies(f *ir.Func, counts vm.Counter, specs []StrategySpec) []StrategyCost {
	total := float64(counts.Total())
	out := make([]StrategyCost, len(specs))
	ncpu := float64(runtime.NumCPU())
	for i, s := range specs {
		perOp := HostNsOpt
		if s.Tier == "plain" {
			perOp = HostNsPlain
		}
		if s.Backend == "native" {
			perOp = HostNsNative
		}
		ns := total * perOp
		if s.Backend == "native" {
			ns += CrossingNs(e.Arch)
		}
		if s.Lanes > 1 {
			eff := float64(s.Lanes)
			if eff > ncpu {
				eff = ncpu
			}
			if eff < 1 {
				eff = 1
			}
			ns = ns/eff + HostParStartupNs + float64(s.Lanes)*HostParLaneNs
		}
		out[i] = StrategyCost{Spec: s, HostNs: ns}
	}
	return out
}

// ParallelEligible reports whether the staged function contains at
// least one loop whose iterations the dependence analysis proves
// independent — the admission test for parallel-lane strategies (a
// kernel with only serial loops cannot benefit from lanes, so the
// planner never probes them).
func ParallelEligible(f *ir.Func) bool {
	if f == nil {
		return false
	}
	return parWalk(f, f.G.Root())
}

func parWalk(f *ir.Func, b *ir.Block) bool {
	for _, n := range b.Nodes {
		if n.Def.Op == ir.OpLoop {
			if rep := loopdep.Analyze(f, n); rep.OK {
				return true
			}
		}
		for _, blk := range n.Def.Blocks {
			if parWalk(f, blk) {
				return true
			}
		}
	}
	return false
}
