package machine

import (
	"testing"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

func TestClassifyBuckets(t *testing.T) {
	cases := []struct {
		op   string
		res  Resource
		load int
	}{
		{"_mm256_fmadd_ps", ResFMA, 0},
		{"_mm256_mul_ps", ResFMA, 0},
		{"_mm256_add_ps", ResFPAdd, 0},
		{"_mm256_loadu_ps", ResLoad, 32},
		{"_mm_loadu_ps", ResLoad, 16},
		{"_mm512_loadu_ps", ResLoad, 64},
		{"_mm256_storeu_ps", ResStore, 0},
		{"_mm256_shuffle_ps", ResShuf, 0},
		{"_mm256_permute2f128_ps", ResShuf, 0},
		{"_mm256_maddubs_epi16", ResVecMul, 0},
		{"_mm256_madd_epi16", ResVecMul, 0},
		{"_mm256_add_epi32", ResVecInt, 0},
		{"_mm256_sign_epi8", ResVecInt, 0},
		{"_mm256_cvtph_ps", ResShuf, 0},
		{"_mm256_i32gather_ps", ResLoad, 32},
		{"_mm256_div_ps", ResDiv, 0},
		{"_mm256_sqrt_pd", ResDiv, 0},
		{"_mm512_reduce_add_ps", ResShuf, 0},
		{"_rdrand16_step", ResALU, 0},
		{"_mm256_sin_ps", ResFMA, 0},
		{"scalar.load", ResLoad, 4},
		{"scalar.load.strided", ResLoad, 16},
		{"scalar.fp", ResFPAdd, 0},
		{"scalar.branch", ResBranch, 0},
	}
	for _, c := range cases {
		got := Classify(c.op)
		if got.Res != c.res {
			t.Errorf("Classify(%s).Res = %v, want %v", c.op, got.Res, c.res)
		}
		if got.LoadBytes != c.load {
			t.Errorf("Classify(%s).LoadBytes = %d, want %d", c.op, got.LoadBytes, c.load)
		}
	}
}

func TestStoreBytesOnStores(t *testing.T) {
	if Classify("_mm256_storeu_ps").StoreBytes != 32 {
		t.Error("256-bit store must move 32 bytes")
	}
	if Classify("_mm_storeu_si128").StoreBytes != 16 {
		t.Error("128-bit store must move 16 bytes")
	}
}

func TestEstimateComputeBound(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	counts := vm.Counter{"_mm256_fmadd_ps": 1000}
	rep := e.Estimate(nil, counts, 1024)
	// 1000 FMAs on 2 ports = 500 cycles.
	if rep.Compute != 500 {
		t.Errorf("compute = %v, want 500", rep.Compute)
	}
	if rep.Bound != "compute" {
		t.Errorf("bound = %s", rep.Bound)
	}
}

func TestEstimateFrontEndBound(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	// Spread across many resources so no single port dominates; the
	// 4-wide front end must bound.
	counts := vm.Counter{
		"_mm256_add_epi32": 1000, // vecint: 500
		"_mm256_add_ps":    1000, // fpadd: 1000 — dominates ports
		"scalar.alu":       3000, // alu: 750
	}
	rep := e.Estimate(nil, counts, 1024)
	front := 5000.0 / IssueWidth // 1250
	if rep.Compute < front {
		t.Errorf("front-end bound %v not applied: compute %v", front, rep.Compute)
	}
}

func TestEstimateMemoryLevels(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	counts := vm.Counter{"_mm256_loadu_ps": 1000} // 32KB moved
	l1 := e.Estimate(nil, counts, 16<<10)
	mem := e.Estimate(nil, counts, 64<<20)
	if l1.Level != "L1" || mem.Level != "Mem" {
		t.Fatalf("levels: %s, %s", l1.Level, mem.Level)
	}
	if mem.Memory <= l1.Memory {
		t.Error("DRAM bandwidth must cost more than L1")
	}
	if mem.Bound != "memory" {
		t.Errorf("large working set should be memory bound, got %s", mem.Bound)
	}
}

func TestNarrowAccessUtilizationPenalty(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	// Same bytes via 32B or 4B accesses: narrow pays a bandwidth
	// utilization penalty.
	wide := e.Estimate(nil, vm.Counter{"_mm256_loadu_ps": 1000}, 64<<20)
	narrow := e.Estimate(nil, vm.Counter{"scalar.load": 8000}, 64<<20)
	if narrow.Memory <= wide.Memory {
		t.Errorf("narrow accesses should sustain less bandwidth: %v vs %v",
			narrow.Memory, wide.Memory)
	}
}

func TestJNIOverheadCounted(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	with := e.Estimate(nil, vm.Counter{"_mm256_add_ps": 10, "jni.call": 1}, 64)
	without := e.Estimate(nil, vm.Counter{"_mm256_add_ps": 10}, 64)
	if with.Cycles-without.Cycles != isa.Haswell.JNICycles {
		t.Errorf("JNI overhead delta = %v, want %v",
			with.Cycles-without.Cycles, isa.Haswell.JNICycles)
	}
}

func TestChainLatencyScalarReduction(t *testing.T) {
	// acc += a[i]*b[i]: the carried chain is one FP add (3 cycles); the
	// multiply feeds it but is not carried.
	k := dsl.NewKernel("dot", isa.Haswell.Features)
	a, b := k.ParamF32Ptr(), k.ParamF32Ptr()
	n := k.ParamInt()
	acc := k.ForAccF32(k.ConstInt(0), n, 1, k.ConstF32(0),
		func(i dsl.Int, acc dsl.F32) dsl.F32 {
			return acc.Add(a.At(i).Mul(b.At(i)))
		})
	k.Return(acc)

	e := NewEstimator(isa.Haswell)
	// Find the loop's sym id the way kernelc reports it.
	var loopID int
	for _, node := range k.F.G.Root().Nodes {
		if node.Def.Op == ir.OpLoop {
			loopID = node.Sym.ID
		}
	}
	counts := vm.Counter{
		"scalar.load": 2000, "scalar.fmul": 1000, "scalar.fp": 1000,
		"scalar.loop": 1000,
	}
	counts[chainKey(loopID)] = 1000
	rep := e.Estimate(k.F, counts, 1024)
	if rep.Latency != 3000 {
		t.Errorf("chain latency = %v, want 3000 (1000 iterations × 3-cycle FP add)", rep.Latency)
	}
	if rep.Bound != "latency" {
		t.Errorf("bound = %s, want latency", rep.Bound)
	}
}

func chainKey(id int) string {
	return "loop.#" + itoa(id)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestChainLatencyVectorFMA(t *testing.T) {
	// Four chained FMAs per iteration = 20 cycles of carried latency.
	k := dsl.NewKernel("dotvec", isa.Haswell.Features)
	a, b := k.ParamF32Ptr(), k.ParamF32Ptr()
	n := k.ParamInt()
	acc := k.ForAccM256(k.ConstInt(0), n, 32, k.MM256SetzeroPs(),
		func(i dsl.Int, acc dsl.M256) dsl.M256 {
			for u := 0; u < 4; u++ {
				acc = k.MM256FmaddPs(k.MM256LoaduPs(a, i.AddC(8*u)),
					k.MM256LoaduPs(b, i.AddC(8*u)), acc)
			}
			return acc
		})
	_ = acc
	var loopID int
	for _, node := range k.F.G.Root().Nodes {
		if node.Def.Op == ir.OpLoop {
			loopID = node.Sym.ID
		}
	}
	counts := vm.Counter{chainKey(loopID): 100}
	rep := NewEstimator(isa.Haswell).Estimate(k.F, counts, 1024)
	if rep.Latency != 2000 {
		t.Errorf("vector chain latency = %v, want 2000 (100 × 4×5)", rep.Latency)
	}
}

func TestFlopsPerCycle(t *testing.T) {
	if got := FlopsPerCycle(100, Report{Cycles: 50}); got != 2 {
		t.Errorf("FlopsPerCycle = %v", got)
	}
	if got := FlopsPerCycle(100, Report{}); got != 0 {
		t.Errorf("zero cycles must yield 0, got %v", got)
	}
}
