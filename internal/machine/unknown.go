package machine

import (
	"log"
	"sort"
	"sync"
)

// Unknown-op visibility: Classify prices names it does not know with a
// defensive one-uop vector-integer cost. That keeps estimation total,
// but a silently mispriced op skews every downstream consumer — most
// of all the execution planner, whose strategy ranking trusts the
// table. Each distinct unknown spelling is therefore recorded and
// logged exactly once per process; the count surfaces as the
// machine.unknown_op gauge via core.Runtime.PublishMetrics.
var (
	unknownMu  sync.Mutex
	unknownSet map[string]struct{}
)

// DebugLogf receives the one-shot diagnostic for each unknown op name.
// It defaults to the standard logger (stderr); tests may swap it.
var DebugLogf = log.Printf

func noteUnknown(name string) {
	unknownMu.Lock()
	if unknownSet == nil {
		unknownSet = map[string]struct{}{}
	}
	if _, seen := unknownSet[name]; !seen {
		unknownSet[name] = struct{}{}
		if f := DebugLogf; f != nil {
			f("machine: unknown op %q priced with fallback cost (vecint, 1 uop, lat 1)", name)
		}
	}
	unknownMu.Unlock()
}

// UnknownOpCount returns how many distinct op names have been priced
// through the fallback path since process start (or the last reset).
func UnknownOpCount() int64 {
	unknownMu.Lock()
	defer unknownMu.Unlock()
	return int64(len(unknownSet))
}

// UnknownOps returns the distinct unknown op names, sorted.
func UnknownOps() []string {
	unknownMu.Lock()
	defer unknownMu.Unlock()
	out := make([]string, 0, len(unknownSet))
	for n := range unknownSet {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResetUnknownOps clears the recorded unknown-op set (tests).
func ResetUnknownOps() {
	unknownMu.Lock()
	unknownSet = nil
	unknownMu.Unlock()
}
