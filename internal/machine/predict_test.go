package machine

import (
	"testing"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

func predictSpecs() []StrategySpec {
	return []StrategySpec{
		{Backend: "vm", Tier: "opt", Lanes: 1},
		{Backend: "vm", Tier: "plain", Lanes: 1},
		{Backend: "native", Tier: "opt", Lanes: 1},
		{Backend: "vm", Tier: "opt", Lanes: 4},
	}
}

// TestPredictStrategiesCrossover pins the qualitative shape the planner
// relies on: at tiny op counts the fixed managed↔native crossing makes
// the interpreter win; at large counts the native backend's cheaper
// dispatch amortizes it and wins; the plain tier never beats opt.
func TestPredictStrategiesCrossover(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	f := stagedLoop(t)

	price := func(ops int64) map[string]float64 {
		counts := vm.Counter{"ops": ops}
		out := map[string]float64{}
		for _, c := range e.PredictStrategies(f, counts, predictSpecs()) {
			out[c.Spec.String()] = c.HostNs
		}
		return out
	}

	small := price(10)
	if small["vm/opt/1"] >= small["native/opt/1"] {
		t.Fatalf("at 10 ops the crossing cost must dominate: vm %v, native %v",
			small["vm/opt/1"], small["native/opt/1"])
	}
	large := price(100000)
	if large["native/opt/1"] >= large["vm/opt/1"] {
		t.Fatalf("at 100k ops native dispatch must win: native %v, vm %v",
			large["native/opt/1"], large["vm/opt/1"])
	}
	for _, m := range []map[string]float64{small, large} {
		if m["vm/plain/1"] <= m["vm/opt/1"] {
			t.Fatalf("plain tier predicted faster than opt: %v", m)
		}
	}
}

// TestCrossingNs pins the crossing price to the modeled
// microarchitecture's JNI cycles at base clock — the paper's fixed
// per-invocation boundary cost.
func TestCrossingNs(t *testing.T) {
	want := isa.Haswell.JNICycles / isa.Haswell.BaseGHz
	if got := CrossingNs(isa.Haswell); got != want {
		t.Fatalf("CrossingNs = %v, want %v", got, want)
	}
	if CrossingNs(isa.Haswell) <= 0 {
		t.Fatal("crossing cost must be positive")
	}
}

// TestParallelPricing: lanes divide the work term but charge startup
// and per-lane overhead, so small kernels must price parallel slower
// than serial.
func TestParallelPricing(t *testing.T) {
	e := NewEstimator(isa.Haswell)
	f := stagedLoop(t)
	counts := vm.Counter{"ops": 100}
	got := e.PredictStrategies(f, counts, predictSpecs())
	var serial, par float64
	for _, c := range got {
		switch c.Spec.String() {
		case "vm/opt/1":
			serial = c.HostNs
		case "vm/opt/4":
			par = c.HostNs
		}
	}
	if par <= serial {
		t.Fatalf("100-op kernel priced parallel (%v) under serial (%v)", par, serial)
	}
	if par < HostParStartupNs {
		t.Fatalf("parallel price %v below the fixed startup term", par)
	}
}

// TestParallelEligible: an elementwise loop qualifies for lanes, a
// loop-free kernel does not.
func TestParallelEligible(t *testing.T) {
	if !ParallelEligible(stagedLoop(t)) {
		t.Fatal("independent elementwise loop rejected for lanes")
	}
	k := dsl.NewKernel("noloop", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	k.MM256StoreuPs(a, k.ConstInt(0), k.MM256Set1Ps(k.ConstF32(1)))
	if ParallelEligible(k.F) {
		t.Fatal("loop-free kernel admitted for lanes")
	}
	if ParallelEligible(nil) {
		t.Fatal("nil func admitted for lanes")
	}
}

// stagedLoop stages a minimal independent elementwise loop.
func stagedLoop(t *testing.T) *ir.Func {
	t.Helper()
	k := dsl.NewKernel("pred_loop", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	two := k.MM256Set1Ps(k.ConstF32(2))
	k.For(k.ConstInt(0), n, 8, func(i dsl.Int) {
		k.MM256StoreuPs(a, i, k.MM256MulPs(k.MM256LoaduPs(a, i), two))
	})
	return k.F
}
