package machine

import (
	"testing"

	"repro/internal/vm"
)

// TestUnknownOpFallbackCost pins the defensive price an unrecognized
// intrinsic gets: one uop on the vector-integer port at latency 1.
// Downstream consumers (figure renormalization, the execution
// planner's strategy ranking) depend on this exact fallback staying
// put — a silent change would shift every estimate containing an
// unpriced op.
func TestUnknownOpFallbackCost(t *testing.T) {
	ResetUnknownOps()
	defer ResetUnknownOps()
	got := Classify("_mm256_totally_alien_op_ps")
	want := OpCost{Res: ResVecInt, Uops: 1, Lat: 1}
	if got != want {
		t.Fatalf("fallback cost = %+v, want %+v", got, want)
	}
	if n := UnknownOpCount(); n != 1 {
		t.Fatalf("UnknownOpCount = %d, want 1", n)
	}
}

// TestUnknownOpLogsOncePerName: each distinct unknown spelling logs
// exactly once per process, repeats are silent, and the counter tracks
// distinct names.
func TestUnknownOpLogsOncePerName(t *testing.T) {
	ResetUnknownOps()
	orig := DebugLogf
	defer func() {
		ResetUnknownOps()
		DebugLogf = orig
	}()
	var logged []string
	DebugLogf = func(format string, args ...any) {
		logged = append(logged, format)
	}
	Classify("_mm_bogus_a")
	Classify("_mm_bogus_a")
	Classify("_mm_bogus_a")
	Classify("_mm_bogus_b")
	if len(logged) != 2 {
		t.Fatalf("logged %d times, want 2 (once per distinct name)", len(logged))
	}
	if n := UnknownOpCount(); n != 2 {
		t.Fatalf("UnknownOpCount = %d, want 2", n)
	}
	ops := UnknownOps()
	if len(ops) != 2 || ops[0] != "_mm_bogus_a" || ops[1] != "_mm_bogus_b" {
		t.Fatalf("UnknownOps = %v", ops)
	}
}

// TestRegistryOpsAllKnown sweeps representative names from every
// family the interpreter registers — including the integer-ALU ops
// that used to ride the silent default — and asserts none of them
// trips the unknown-op path.
func TestRegistryOpsAllKnown(t *testing.T) {
	ResetUnknownOps()
	defer ResetUnknownOps()
	known := []string{
		"_mm256_add_ps", "_mm256_mul_pd", "_mm256_fmadd_ps",
		"_mm256_loadu_ps", "_mm256_storeu_ps", "_mm256_set1_ps",
		"_mm256_add_epi32", "_mm256_and_si256", "_mm256_cmpeq_epi16",
		"_mm256_slli_epi32", "_mm256_max_epu8", "_mm256_hadd_epi16",
		"_mm256_castps_si256", "_mm256_stream_ps", "_mm_testz_si128",
		"_mm512_rol_epi32", "_mm_minpos_epu16", "_mm256_avg_epu8",
		"_mm256_sign_epi16", "_mm_rem_epi32", "loop.#0", "jni.call",
	}
	for _, name := range known {
		Classify(name)
	}
	if n := UnknownOpCount(); n != 0 {
		t.Fatalf("known ops flagged as unknown: %v", UnknownOps())
	}
}

// TestEveryRegisteredIntrinsicPriced sweeps the interpreter's entire
// executable registry through Classify: every op the vm can count must
// have an explicit price, so the unknown-op path only ever fires for
// genuinely alien names.
func TestEveryRegisteredIntrinsicPriced(t *testing.T) {
	ResetUnknownOps()
	defer ResetUnknownOps()
	names := vm.ImplementedNames()
	if len(names) == 0 {
		t.Fatal("empty intrinsic registry")
	}
	for _, name := range names {
		Classify(name)
	}
	if n := UnknownOpCount(); n != 0 {
		t.Fatalf("%d registered intrinsics priced by fallback: %v", n, UnknownOps())
	}
}
