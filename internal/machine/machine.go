// Package machine is the analytical performance model that converts a
// kernel's dynamic instruction counts (from internal/kernelc runs on the
// software SIMD machine) into cycle estimates on a modeled
// microarchitecture — the substitution for the paper's measurements on a
// real Haswell Xeon (Section 3.4's experimental setup).
//
// The model is deliberately mechanism-based rather than curve-fit: it
// reproduces the paper's figure shapes through the same causes the paper
// cites — port throughput limits, the cache hierarchy's bandwidth
// staircase, loop-carried dependency latency, fixed JNI crossing costs —
// so experiments remain sensitive to the code the kernels actually
// stage.
package machine

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Resource names one contended execution resource.
type Resource string

// The modeled resources, roughly Haswell's port groups.
const (
	ResFMA    Resource = "fma"     // p0/p1: FP multiply and FMA
	ResFPAdd  Resource = "fpadd"   // p1: FP add
	ResVecInt Resource = "vecint"  // p1/p5: vector integer ALU
	ResVecMul Resource = "vecmul"  // p0: vector integer multiply (pmadd*)
	ResShuf   Resource = "shuffle" // p5: shuffles/permutes/packs
	ResLoad   Resource = "load"    // p2/p3: loads
	ResStore  Resource = "store"   // p4: store data
	ResALU    Resource = "alu"     // p0156: scalar integer
	ResDiv    Resource = "divider" // FP divide/sqrt unit
	ResBranch Resource = "branch"  // p6
	// ResFront is the decode/rename front end: every uop passes it.
	ResFront Resource = "frontend"
)

// IssueWidth is the front-end width in uops/cycle (Haswell: 4).
const IssueWidth = 4

// Resource slot indices for the fixed-size pressure accumulator:
// Estimate runs once per measurement repetition, so its working state
// is a stack array instead of a map.
const (
	idxFMA = iota
	idxFPAdd
	idxVecInt
	idxVecMul
	idxShuf
	idxLoad
	idxStore
	idxALU
	idxDiv
	idxBranch
	idxFront
	numRes
)

// resByIndex maps pressure slots back to their Resource names.
var resByIndex = [numRes]Resource{
	ResFMA, ResFPAdd, ResVecInt, ResVecMul, ResShuf,
	ResLoad, ResStore, ResALU, ResDiv, ResBranch, ResFront,
}

// resIndex returns a resource's pressure slot.
func resIndex(r Resource) int {
	switch r {
	case ResFMA:
		return idxFMA
	case ResFPAdd:
		return idxFPAdd
	case ResVecInt:
		return idxVecInt
	case ResVecMul:
		return idxVecMul
	case ResShuf:
		return idxShuf
	case ResLoad:
		return idxLoad
	case ResStore:
		return idxStore
	case ResALU:
		return idxALU
	case ResDiv:
		return idxDiv
	case ResBranch:
		return idxBranch
	default:
		return idxFront
	}
}

// OpCost describes one operation class.
type OpCost struct {
	Res  Resource
	Uops float64 // uops on that resource (1/throughput)
	Lat  float64 // result latency, for dependency chains
	// Bytes moved to/from the memory hierarchy.
	LoadBytes, StoreBytes int
}

// capacity returns how many uops of a resource the microarchitecture
// retires per cycle.
func capacity(a *isa.Microarch, r Resource) float64 {
	switch r {
	case ResFMA:
		return float64(a.FMAPorts)
	case ResFPAdd:
		return float64(a.AddPorts)
	case ResVecInt:
		return 2
	case ResVecMul:
		return 1
	case ResFront:
		return IssueWidth
	case ResShuf:
		return float64(a.ShufPorts)
	case ResLoad:
		return float64(a.LoadPorts)
	case ResStore:
		return float64(a.StorePorts)
	case ResALU:
		return float64(a.ALUPorts)
	case ResDiv:
		return 1
	case ResBranch:
		return 2
	default:
		return 1
	}
}

// vecBytes extracts the register width in bytes from an intrinsic name.
func vecBytes(name string) int {
	switch {
	case strings.HasPrefix(name, "_mm512_"):
		return 64
	case strings.HasPrefix(name, "_mm256_"):
		return 32
	case strings.HasPrefix(name, "_mm_"):
		return 16
	default:
		return 8
	}
}

func has(name string, subs ...string) bool {
	for _, s := range subs {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// Classify maps a counted op name to its cost. Unknown intrinsics
// default to a one-uop vector-integer op; the first time each unknown
// spelling is priced it is recorded and logged once (see UnknownOps),
// so planner mispredictions caused by unpriced ops stay visible.
func Classify(name string) OpCost {
	c, known := classify(name)
	if !known {
		noteUnknown(name)
	}
	return c
}

// classify is the pricing table. known is false only when the name
// matched no class at all and fell through to the defensive default.
func classify(name string) (c OpCost, known bool) {
	// Scalar pseudo-ops from the kernel compiler.
	switch name {
	case "scalar.alu":
		return OpCost{Res: ResALU, Uops: 1, Lat: 1}, true
	case "scalar.mul":
		return OpCost{Res: ResALU, Uops: 1, Lat: 3}, true
	case "scalar.div":
		return OpCost{Res: ResDiv, Uops: 20, Lat: 25}, true
	case "scalar.fp":
		return OpCost{Res: ResFPAdd, Uops: 1, Lat: 3}, true
	case "scalar.fmul":
		return OpCost{Res: ResFMA, Uops: 1, Lat: 5}, true
	case "scalar.fdiv":
		return OpCost{Res: ResDiv, Uops: 7, Lat: 13}, true
	case "scalar.load":
		return OpCost{Res: ResLoad, Uops: 1, Lat: 4, LoadBytes: 4}, true
	case "scalar.load.strided":
		// Stride-n accesses miss L1 but neighbouring sweeps share cache
		// lines; charge a quarter line per access.
		return OpCost{Res: ResLoad, Uops: 1, Lat: 4, LoadBytes: 16}, true
	case "scalar.store":
		return OpCost{Res: ResStore, Uops: 1, Lat: 1, StoreBytes: 4}, true
	case "scalar.conv":
		return OpCost{Res: ResALU, Uops: 1, Lat: 2}, true
	case "scalar.loop":
		// Increment + compare per iteration (the branch is separate).
		return OpCost{Res: ResALU, Uops: 1.5, Lat: 1}, true
	case "scalar.branch":
		return OpCost{Res: ResBranch, Uops: 1, Lat: 1}, true
	}
	if strings.HasPrefix(name, "loop.#") || name == "jni.call" {
		return OpCost{}, true // accounted separately
	}
	b := vecBytes(name)

	switch {
	// Memory first: anything that moves memory is priced as a memory op
	// even when its mnemonic also matches an arithmetic substring.
	case has(name, "gather"):
		lanes := 8
		if b == 16 {
			lanes = 4
		}
		return OpCost{Res: ResLoad, Uops: float64(lanes), Lat: 18, LoadBytes: b}, true
	case has(name, "maskstore", "scatter"):
		return OpCost{Res: ResStore, Uops: 2, Lat: 5, StoreBytes: b}, true
	case has(name, "maskload"):
		return OpCost{Res: ResLoad, Uops: 2, Lat: 8, LoadBytes: b}, true
	case has(name, "load", "lddqu"):
		return OpCost{Res: ResLoad, Uops: 1, Lat: 4, LoadBytes: b}, true
	case has(name, "store"):
		return OpCost{Res: ResStore, Uops: 1, Lat: 1, StoreBytes: b}, true
	case has(name, "broadcast_s", "broadcast_p"): // from memory
		return OpCost{Res: ResLoad, Uops: 1, Lat: 5, LoadBytes: 8}, true
	case has(name, "prefetch"):
		return OpCost{Res: ResLoad, Uops: 1, Lat: 0}, true

	// Cross-lane reductions decompose into shuffle+add sequences.
	case has(name, "reduce_add", "reduce_gmax"):
		return OpCost{Res: ResShuf, Uops: 4, Lat: 12}, true

	// FP arithmetic.
	case has(name, "fmadd", "fmsub", "fnmadd", "fnmsub", "fmaddsub", "fmsubadd"):
		return OpCost{Res: ResFMA, Uops: 1, Lat: 5}, true
	case has(name, "dp_ps", "dp_pd"):
		return OpCost{Res: ResFMA, Uops: 3, Lat: 14}, true
	case has(name, "mul_ps", "mul_pd", "mul_ss", "mul_sd"):
		return OpCost{Res: ResFMA, Uops: 1, Lat: 5}, true
	case has(name, "div_ps", "div_pd", "div_ss", "div_sd"):
		u := 7.0
		if b >= 32 {
			u = 14
		}
		return OpCost{Res: ResDiv, Uops: u, Lat: 19}, true
	case has(name, "sqrt", "rsqrt", "rcp"):
		return OpCost{Res: ResDiv, Uops: 7, Lat: 19}, true
	case has(name, "hadd_p", "hsub_p"):
		// 2 shuffles + 1 add on hardware.
		return OpCost{Res: ResShuf, Uops: 2, Lat: 5}, true
	case has(name, "addsub_p"):
		return OpCost{Res: ResFPAdd, Uops: 1, Lat: 3}, true
	case has(name, "add_ps", "add_pd", "sub_ps", "sub_pd", "add_ss", "sub_ss", "add_sd", "sub_sd"):
		return OpCost{Res: ResFPAdd, Uops: 1, Lat: 3}, true
	case has(name, "max_p", "min_p", "max_s", "min_s"):
		return OpCost{Res: ResFPAdd, Uops: 1, Lat: 3}, true
	case has(name, "cmp_ps", "cmp_pd", "cmpeq_p", "cmplt_p", "cmple_p", "cmpgt_p", "cmpge_p", "cmpneq_p"):
		return OpCost{Res: ResFPAdd, Uops: 1, Lat: 3}, true
	case has(name, "round", "floor", "ceil"):
		return OpCost{Res: ResShuf, Uops: 1, Lat: 6}, true

	// SVML: polynomial sequences.
	case has(name, "sin", "cos", "tan", "exp", "log", "cbrt", "erf", "cdfnorm", "pow", "invsqrt"):
		return OpCost{Res: ResFMA, Uops: 10, Lat: 30}, true

	// Integer multiply family: the vector integer multiplier is a
	// single port (Haswell p0).
	case has(name, "madd", "mullo", "mulhi", "mulhrs", "mul_ep", "sad_"):
		return OpCost{Res: ResVecMul, Uops: 1, Lat: 5}, true

	// Conversions and half-float codecs run on the shuffle port.
	case has(name, "cvtph", "cvtps_ph"):
		return OpCost{Res: ResShuf, Uops: 1, Lat: 6}, true
	case has(name, "cvt"):
		return OpCost{Res: ResShuf, Uops: 1, Lat: 4}, true

	// Data movement.
	case has(name, "unpack", "shuffle", "permute", "alignr", "pack",
		"insert", "extract", "blend", "movehl", "movelh", "movedup",
		"movehdup", "moveldup", "bslli", "bsrli", "slli_si", "srli_si",
		"broadcast"):
		return OpCost{Res: ResShuf, Uops: 1, Lat: 1}, true
	case has(name, "movemask"):
		return OpCost{Res: ResALU, Uops: 1, Lat: 2}, true
	case has(name, "set1", "set_"):
		return OpCost{Res: ResShuf, Uops: 1, Lat: 3}, true
	case has(name, "setzero"):
		return OpCost{Res: ResVecInt, Uops: 0.5, Lat: 0}, true // xor-zeroing is almost free
	case has(name, "zeroall", "zeroupper", "empty", "fence"):
		return OpCost{Res: ResALU, Uops: 1, Lat: 0}, true

	// Scalar extension sets.
	case has(name, "rdrand", "rdseed"):
		return OpCost{Res: ResALU, Uops: 16, Lat: 300}, true
	case has(name, "popcnt", "lzcnt", "tzcnt", "crc32", "pext", "pdep", "blsr"):
		return OpCost{Res: ResALU, Uops: 1, Lat: 3}, true
	case has(name, "rdtsc"):
		return OpCost{Res: ResALU, Uops: 10, Lat: 24}, true
	case has(name, "aes", "sha", "clmul"):
		return OpCost{Res: ResVecInt, Uops: 1, Lat: 7}, true
	case has(name, "cmpistr", "cmpestr"):
		return OpCost{Res: ResVecInt, Uops: 3, Lat: 11}, true

	// The vector integer ALU family: add/sub/logic/compare/minmax/abs/
	// sign/avg/shift/cast, spelled out so the defensive default below
	// only catches names the table genuinely does not know.
	case has(name, "add_", "adds_", "sub_", "subs_", "abs_", "sign_", "avg_", "and", "or_",
		"cmp", "div_ep", "rem_ep", "hadd", "hsub", "max_", "min_", "minpos",
		"rol", "ror", "sll", "srl", "sra", "cast", "stream", "test",
		"mov", "conflict", "ternarylogic", "compress", "expand"):
		return OpCost{Res: ResVecInt, Uops: 1, Lat: 1}, true

	// Truly unknown: price as a one-uop vector-integer op (the least
	// wrong default for a SIMD spelling) and let Classify record it.
	default:
		return OpCost{Res: ResVecInt, Uops: 1, Lat: 1}, false
	}
}

// Report is a cycle estimate with its contributing bounds.
type Report struct {
	Cycles   float64
	Compute  float64 // port-throughput bound
	Memory   float64 // bandwidth bound at the working set's cache level
	Latency  float64 // loop-carried dependency bound
	Overhead float64 // JNI crossings and other fixed costs
	Bound    string  // which bound dominated
	Level    string  // cache level of the working set
}

// Estimator converts counts to cycles for one microarchitecture. It
// carries reusable chain-analysis scratch, so one Estimator serves one
// goroutine at a time (sweep workers each own one); Estimate itself is
// allocation-free in steady state.
type Estimator struct {
	Arch *isa.Microarch

	// loopKeys caches "loop.#<id>" counter-key spellings; depth is the
	// chain-latency working map, cleared between uses.
	loopKeys map[int]string
	depth    map[int]float64
}

// NewEstimator builds an estimator.
func NewEstimator(arch *isa.Microarch) *Estimator { return &Estimator{Arch: arch} }

// bandwidth returns the sustained bytes/cycle at a cache level.
func (e *Estimator) bandwidth(level string) float64 {
	switch level {
	case "L1":
		return e.Arch.L1BW
	case "L2":
		return e.Arch.L2BW
	case "L3":
		return e.Arch.L3BW
	default:
		return e.Arch.MemBW
	}
}

// Estimate prices one kernel run. f may be nil when no dependency-chain
// analysis is wanted; footprint is the run's working-set size in bytes.
func (e *Estimator) Estimate(f *ir.Func, counts vm.Counter, footprint int) Report {
	var pressure [numRes]float64
	loadBytes, storeBytes := 0.0, 0.0
	accesses := 0.0
	for op, n := range counts {
		c := Classify(op)
		if c.Res != "" {
			u := float64(n) * c.Uops
			pressure[resIndex(c.Res)] += u
			pressure[idxFront] += u
		}
		loadBytes += float64(n) * float64(c.LoadBytes)
		storeBytes += float64(n) * float64(c.StoreBytes)
		if c.LoadBytes > 0 || c.StoreBytes > 0 {
			accesses += float64(n)
		}
	}

	var rep Report
	for i, p := range pressure {
		if p == 0 {
			continue
		}
		if cyc := p / capacity(e.Arch, resByIndex[i]); cyc > rep.Compute {
			rep.Compute = cyc
		}
	}

	rep.Level = e.Arch.CacheLevel(footprint)
	bw := e.bandwidth(rep.Level)
	// Narrow accesses sustain less of the peak bandwidth: fewer bytes in
	// flight per instruction limit memory-level parallelism. This is the
	// mechanism behind the paper's observation that AVX code keeps a
	// small edge over HotSpot's SSE even when both are bandwidth-bound.
	util := 1.0
	if accesses > 0 {
		avg := (loadBytes + storeBytes) / accesses
		if avg < 32 {
			util = 0.75 + 0.25*avg/32
		}
	}
	rep.Memory = (loadBytes + storeBytes) / (bw * util)

	if f != nil {
		rep.Latency = e.chainCycles(f, counts)
	}
	rep.Overhead = float64(counts["jni.call"]) * e.Arch.JNICycles

	rep.Cycles = rep.Compute
	rep.Bound = "compute"
	if rep.Memory > rep.Cycles {
		rep.Cycles, rep.Bound = rep.Memory, "memory"
	}
	if rep.Latency > rep.Cycles {
		rep.Cycles, rep.Bound = rep.Latency, "latency"
	}
	rep.Cycles += rep.Overhead
	return rep
}

// chainCycles prices loop-carried dependency chains: for every staged
// loop carrying an accumulator, the longest latency path from the
// carried symbol to the next-iteration value, times the loop's dynamic
// iteration count.
func (e *Estimator) chainCycles(f *ir.Func, counts vm.Counter) float64 {
	return e.chainWalk(f.G.Root(), counts)
}

// loopKey returns the cached "loop.#<id>" counter-key spelling.
func (e *Estimator) loopKey(id int) string {
	if k, ok := e.loopKeys[id]; ok {
		return k
	}
	if e.loopKeys == nil {
		e.loopKeys = map[int]string{}
	}
	k := fmt.Sprintf("loop.#%d", id)
	e.loopKeys[id] = k
	return k
}

func (e *Estimator) chainWalk(b *ir.Block, counts vm.Counter) float64 {
	total := 0.0
	for _, n := range b.Nodes {
		if n.Def.Op == ir.OpLoop && len(n.Def.Args) == 4 {
			body := n.Def.Blocks[0]
			iters := float64(counts[e.loopKey(n.Sym.ID)])
			if iters > 0 {
				total += e.chainLatency(body) * iters
			}
		}
		for _, blk := range n.Def.Blocks {
			total += e.chainWalk(blk, counts)
		}
	}
	return total
}

// nodeLatency prices one IR node for chain analysis: intrinsics via the
// cost table, host-language scalar ops via their type (an FP add is a
// 3-cycle chain link; integer adds a 1-cycle one).
func nodeLatency(d *ir.Def) float64 {
	if ir.IsIntrinsicOp(d.Op) {
		return Classify(d.Op).Lat
	}
	fp := d.Typ.IsFloat()
	switch d.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMin, ir.OpMax, ir.OpNeg:
		if fp {
			return 3
		}
		return 1
	case ir.OpMul:
		if fp {
			return 5
		}
		return 3
	case ir.OpDiv, ir.OpRem:
		if fp {
			return 13
		}
		return 25
	case ir.OpALoad:
		return 4
	case ir.OpConv:
		return 2
	default:
		return 1
	}
}

// chainLatency computes the longest latency path from the block's
// carried parameter to its result.
func (e *Estimator) chainLatency(b *ir.Block) float64 {
	if len(b.Params) < 2 || b.Result == nil {
		return 0
	}
	acc := b.Params[1]
	if e.depth == nil {
		e.depth = map[int]float64{}
	}
	depth := e.depth
	for k := range depth {
		delete(depth, k)
	}
	depth[acc.ID] = 0
	for _, n := range b.Nodes {
		best := -1.0
		for _, a := range n.Def.ArgSyms() {
			if d, ok := depth[a.ID]; ok && d > best {
				best = d
			}
		}
		if best < 0 {
			continue // not on the chain
		}
		depth[n.Sym.ID] = best + nodeLatency(n.Def)
	}
	if r, ok := b.Result.(ir.Sym); ok {
		if d, ok := depth[r.ID]; ok {
			return d
		}
	}
	return 0
}

// FlopsPerCycle is the reporting metric of every figure in the paper.
func FlopsPerCycle(flops int64, rep Report) float64 {
	if rep.Cycles <= 0 {
		return 0
	}
	return float64(flops) / rep.Cycles
}
