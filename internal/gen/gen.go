// Package gen is the eDSL binding generator: the Go analog of the
// paper's "Generate ISA specific DSL in LMS" step (Section 3.2,
// Figure 1). It consumes the resolved XML specification and emits Go
// source defining one typed staged method per intrinsic on dsl.Kernel,
// plus a metadata table (CPUID families, header, category, assembly
// mnemonic) that the C unparser and the machine model consult.
//
// cmd/intrinsics-gen drives this package and writes the output to
// internal/dsl/intrin_gen.go, which is checked in — exactly how the
// paper's lms-intrinsics artifact ships pre-generated eDSLs.
package gen

import (
	"fmt"
	"go/format"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/xmlspec"
)

// immediateParams are intrinsic parameters that C requires to be
// compile-time constants (they encode into the instruction); bindings
// take them as plain Go ints.
var immediateParams = map[string]bool{
	"imm8": true, "rounding": true, "scale": true, "hint": true,
	"conv": true, "bc": true, "s": true, "i": true, "sae": true,
}

// famIdents maps families to their Go identifiers in package isa.
var famIdents = map[isa.Family]string{
	isa.MMX: "isa.MMX", isa.SSE: "isa.SSE", isa.SSE2: "isa.SSE2",
	isa.SSE3: "isa.SSE3", isa.SSSE3: "isa.SSSE3", isa.SSE41: "isa.SSE41",
	isa.SSE42: "isa.SSE42", isa.AVX: "isa.AVX", isa.AVX2: "isa.AVX2",
	isa.AVX512: "isa.AVX512", isa.FMA: "isa.FMA", isa.KNC: "isa.KNC",
	isa.SVML: "isa.SVML", isa.FP16C: "isa.FP16C", isa.RDRAND: "isa.RDRAND",
	isa.RDSEED: "isa.RDSEED", isa.POPCNT: "isa.POPCNT", isa.LZCNT: "isa.LZCNT",
	isa.BMI1: "isa.BMI1", isa.BMI2: "isa.BMI2", isa.AES: "isa.AES",
	isa.SHA: "isa.SHA", isa.PCLMULQDQ: "isa.PCLMULQDQ", isa.TSC: "isa.TSC",
	isa.MONITOR: "isa.MONITOR", isa.XSAVE: "isa.XSAVE",
}

// MethodName converts a C intrinsic name to the exported Go method name:
// _mm256_add_pd → MM256AddPd, _rdrand16_step → Rdrand16Step.
func MethodName(cname string) string {
	parts := strings.Split(strings.TrimLeft(cname, "_"), "_")
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		switch {
		case p == "mm" || p == "mm256" || p == "mm512" || p == "m":
			b.WriteString(strings.ToUpper(p))
		default:
			b.WriteString(strings.ToUpper(p[:1]))
			b.WriteString(p[1:])
		}
	}
	return b.String()
}

// wrapper maps a resolved type to its dsl wrapper type name and the ir
// type expression used in the emitted call.
func wrapper(t xmlspec.Typ) (goType, irType string, err error) {
	if t.Ptr {
		switch t.Prim {
		case isa.PrimF32:
			return "PF32", "", nil
		case isa.PrimF64:
			return "PF64", "", nil
		case isa.PrimI8:
			return "PI8", "", nil
		case isa.PrimU8:
			return "PU8", "", nil
		case isa.PrimI16:
			return "PI16", "", nil
		case isa.PrimU16:
			return "PU16", "", nil
		case isa.PrimI32:
			return "PI32", "", nil
		default:
			// void*, vector pointers, wide integers: any array works.
			return "Pointer", "", nil
		}
	}
	if t.IsVec() {
		switch t.Vec {
		case isa.M64:
			return "M64", "ir.TM64", nil
		case isa.M128:
			return "M128", "ir.TM128", nil
		case isa.M128d:
			return "M128d", "ir.TM128d", nil
		case isa.M128i:
			return "M128i", "ir.TM128i", nil
		case isa.M256:
			return "M256", "ir.TM256", nil
		case isa.M256d:
			return "M256d", "ir.TM256d", nil
		case isa.M256i:
			return "M256i", "ir.TM256i", nil
		case isa.M512:
			return "M512", "ir.TM512", nil
		case isa.M512d:
			return "M512d", "ir.TM512d", nil
		case isa.M512i:
			return "M512i", "ir.TM512i", nil
		case isa.MMask8:
			return "Mask8", "ir.TMask8", nil
		case isa.MMask16:
			return "Mask16", "ir.TMask16", nil
		}
		return "", "", fmt.Errorf("unsupported vector kind %v", t.Vec)
	}
	switch t.Prim {
	case isa.PrimVoid:
		return "", "ir.TVoid", nil
	case isa.PrimBool:
		return "Bool", "ir.TBool", nil
	case isa.PrimI8:
		return "I8", "ir.TI8", nil
	case isa.PrimU8:
		return "U8", "ir.TU8", nil
	case isa.PrimI16:
		return "I16", "ir.TI16", nil
	case isa.PrimU16:
		return "U16", "ir.TU16", nil
	case isa.PrimI32:
		return "Int", "ir.TI32", nil
	case isa.PrimU32:
		return "U32", "ir.TU32", nil
	case isa.PrimI64:
		return "I64", "ir.TI64", nil
	case isa.PrimU64:
		return "U64", "ir.TU64", nil
	case isa.PrimF32:
		return "F32", "ir.TF32", nil
	case isa.PrimF64:
		return "F64", "ir.TF64", nil
	}
	return "", "", fmt.Errorf("unsupported primitive %v", t.Prim)
}

func sanitizeParam(name string) string {
	n := strings.ToLower(name)
	n = strings.ReplaceAll(n, " ", "")
	switch n {
	case "", "kb", "k", "func", "type", "range", "var", "map", "len":
		return n + "p"
	}
	// mem_addr → memAddr
	parts := strings.Split(n, "_")
	for i := 1; i < len(parts); i++ {
		if parts[i] != "" {
			parts[i] = strings.ToUpper(parts[i][:1]) + parts[i][1:]
		}
	}
	return strings.Join(parts, "")
}

// Binding describes one generated method, for reporting.
type Binding struct {
	CName, GoName string
	Skipped       bool
	Reason        string
}

// Generate emits the bindings file for every spec intrinsic whose name
// appears in `names`. The output is gofmt-formatted Go source for
// package dsl.
func Generate(ix *xmlspec.Index, names []string) ([]byte, []Binding, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)

	var b strings.Builder
	b.WriteString(`// Code generated by cmd/intrinsics-gen from the Intel Intrinsics Guide
// XML specification (synthetic reproduction, version ` + "3.3.16" + `). DO NOT EDIT.
//
// One staged method per intrinsic, following the paper's generated eDSL
// design: the method checks ISA availability, applies the inferred
// memory effect, and appends an SSA node to the kernel's graph.

package dsl

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// Pointer is any staged array reference; memory intrinsics whose C
// signature takes void* (or a vector pointer) accept any array type.
type Pointer interface{ exp() ir.Exp }

`)
	var report []Binding
	var metaRows []string
	for _, name := range sorted {
		r, ok := ix.Lookup(name)
		if !ok {
			report = append(report, Binding{CName: name, Skipped: true, Reason: "not in specification"})
			continue
		}
		src, err := emitOne(r)
		if err != nil {
			report = append(report, Binding{CName: name, Skipped: true, Reason: err.Error()})
			continue
		}
		b.WriteString(src)
		report = append(report, Binding{CName: name, GoName: MethodName(name)})

		fams := make([]string, 0, len(r.Families))
		for _, f := range r.Families {
			if id, ok := famIdents[f]; ok {
				fams = append(fams, id)
			}
		}
		instr := ""
		if len(r.Raw.Instruction) > 0 {
			instr = r.Raw.Instruction[0].Name
		}
		cat := ""
		if len(r.Categories) > 0 {
			cat = r.Categories[0].String()
		}
		metaRows = append(metaRows, fmt.Sprintf(
			"\t%q: {Families: []isa.Family{%s}, Header: %q, Category: %q, Instruction: %q, Reads: %v, Writes: %v},",
			r.Name, strings.Join(fams, ", "), r.Header, cat, instr, r.ReadsMem, r.WritesMem))
	}

	b.WriteString(`
// IntrinInfo is the generated metadata record for one intrinsic.
type IntrinInfo struct {
	Families    []isa.Family
	Header      string
	Category    string
	Instruction string
	Reads       bool
	Writes      bool
}

// IntrinMeta maps every bound intrinsic to its metadata.
var IntrinMeta = map[string]IntrinInfo{
`)
	b.WriteString(strings.Join(metaRows, "\n"))
	b.WriteString("\n}\n")

	out, err := format.Source([]byte(b.String()))
	if err != nil {
		return []byte(b.String()), report, fmt.Errorf("gen: generated code does not format: %w", err)
	}
	return out, report, nil
}

// emitOne renders one staged method.
func emitOne(r *xmlspec.Resolved) (string, error) {
	goName := MethodName(r.Name)
	retGo, retIR, err := wrapper(r.Ret)
	if err != nil {
		return "", fmt.Errorf("return: %w", err)
	}
	if r.Ret.Ptr {
		return "", fmt.Errorf("pointer-returning intrinsics unsupported")
	}

	type param struct {
		name, goType string
		imm          bool
		ptr          bool
	}
	var params []param
	for _, p := range r.Params {
		pn := sanitizeParam(p.Name)
		if !p.Typ.Ptr && p.Typ.Prim == isa.PrimI32 && immediateParams[strings.ToLower(p.Name)] {
			params = append(params, param{name: pn, goType: "int", imm: true})
			continue
		}
		gt, _, err := wrapper(p.Typ)
		if err != nil {
			return "", fmt.Errorf("parameter %s: %w", p.Name, err)
		}
		params = append(params, param{name: pn, goType: gt, ptr: p.Typ.Ptr})
	}

	// Memory intrinsics take a companion element-offset for each pointer
	// parameter — the paper's (mem_addr, mem_addrOffset) pairs.
	var sig []string
	for _, p := range params {
		if p.ptr {
			sig = append(sig, fmt.Sprintf("%s %s, %sOffset Int", p.name, p.goType, p.name))
		} else {
			sig = append(sig, fmt.Sprintf("%s %s", p.name, p.goType))
		}
	}

	var body strings.Builder
	var args []string
	var ptrExprs []string
	for _, p := range params {
		switch {
		case p.imm:
			args = append(args, fmt.Sprintf("ir.ConstInt(%s)", p.name))
		case p.ptr:
			v := p.name + "P"
			fmt.Fprintf(&body, "\t%s := kb.Offset(%s.exp(), %sOffset)\n", v, p.name, p.name)
			args = append(args, v)
			ptrExprs = append(ptrExprs, v)
		default:
			args = append(args, p.name+".E")
		}
	}

	eff := "ir.PureEffect"
	switch {
	case r.ReadsMem && r.WritesMem:
		eff = fmt.Sprintf("kb.ReadEff(%s).Union(kb.WriteEff(%s))",
			strings.Join(ptrExprs, ", "), strings.Join(ptrExprs, ", "))
	case r.ReadsMem:
		eff = fmt.Sprintf("kb.ReadEff(%s)", strings.Join(ptrExprs, ", "))
	case r.WritesMem:
		eff = fmt.Sprintf("kb.WriteEff(%s)", strings.Join(ptrExprs, ", "))
	}

	var fams []string
	for _, f := range r.Families {
		if id, ok := famIdents[f]; ok {
			fams = append(fams, id)
		}
	}

	doc := strings.TrimSpace(strings.Join(strings.Fields(r.Raw.Description), " "))
	if doc == "" {
		doc = "staged intrinsic."
	}
	cpuids := make([]string, len(r.Families))
	for i, f := range r.Families {
		cpuids[i] = f.String()
	}

	var out strings.Builder
	fmt.Fprintf(&out, "// %s stages %s.\n//\n// %s\n// CPUID: %s.\n",
		goName, r.Name, doc, strings.Join(cpuids, "+"))
	ret := retGo
	if retIR == "ir.TVoid" {
		ret = ""
	}
	fmt.Fprintf(&out, "func (kb *Kernel) %s(%s) %s {\n", goName, strings.Join(sig, ", "), ret)
	out.WriteString(body.String())
	call := fmt.Sprintf("kb.Intrinsic(%q, %s, []isa.Family{%s}, %s, %s)",
		r.Name, irOrVec(retIR, retGo), strings.Join(fams, ", "), eff, strings.Join(args, ", "))
	if len(args) == 0 {
		call = fmt.Sprintf("kb.Intrinsic(%q, %s, []isa.Family{%s}, %s)",
			r.Name, irOrVec(retIR, retGo), strings.Join(fams, ", "), eff)
	}
	if ret == "" {
		fmt.Fprintf(&out, "\t%s\n}\n\n", call)
	} else {
		fmt.Fprintf(&out, "\treturn %s{kb, %s}\n}\n\n", retGo, call)
	}
	return out.String(), nil
}

func irOrVec(irType, goType string) string {
	if irType != "" {
		return irType
	}
	// Pointer returns are rejected earlier; scalars and vectors always
	// have an ir type.
	return "ir.TVoid"
}
