package gen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/xmlspec"
)

func TestMethodName(t *testing.T) {
	cases := map[string]string{
		"_mm256_add_pd":        "MM256AddPd",
		"_mm_loadu_ps":         "MMLoaduPs",
		"_rdrand16_step":       "Rdrand16Step",
		"_mm512_storenrngo_pd": "MM512StorenrngoPd",
		"_mm_cvtss_f32":        "MMCvtssF32",
		"_lzcnt_u32":           "LzcntU32",
	}
	for in, want := range cases {
		if got := MethodName(in); got != want {
			t.Errorf("MethodName(%q) = %q, want %q", in, got, want)
		}
	}
}

func latestIndex(t *testing.T) *xmlspec.Index {
	t.Helper()
	f := xmlspec.Generate(xmlspec.Latest())
	rs, errs := xmlspec.Resolve(f)
	if len(errs) != 0 {
		t.Fatalf("resolve errors: %v", errs[0])
	}
	ix, dups := xmlspec.NewIndex(rs)
	if len(dups) != 0 {
		t.Fatalf("duplicates: %v", dups[0])
	}
	return ix
}

func TestGenerateParsesAsGo(t *testing.T) {
	ix := latestIndex(t)
	names := []string{"_mm256_add_pd", "_mm256_loadu_ps", "_mm256_storeu_ps",
		"_mm256_fmadd_ps", "_rdrand16_step", "_mm256_shuffle_ps"}
	src, report, err := Generate(ix, names)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range report {
		if r.Skipped {
			t.Errorf("%s skipped: %s", r.CName, r.Reason)
		}
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "intrin_gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v", err)
	}
	text := string(src)
	for _, want := range []string{
		"func (kb *Kernel) MM256AddPd(a M256d, b M256d) M256d",
		"func (kb *Kernel) MM256LoaduPs(memAddr PF32, memAddrOffset Int) M256",
		"func (kb *Kernel) MM256StoreuPs(memAddr PF32, memAddrOffset Int, a M256)",
		"func (kb *Kernel) MM256ShufflePs(a M256, b M256, imm8 int) M256",
		"kb.ReadEff(memAddrP)",
		"kb.WriteEff(memAddrP)",
		"IntrinMeta = map[string]IntrinInfo",
		"{Families: []isa.Family{isa.AVX}, Header: \"immintrin.h\", Category: \"Arithmetic\", Instruction: \"vaddpd\"",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	ix := latestIndex(t)
	names := []string{"_mm256_add_pd", "_mm_add_ps", "_mm256_fmadd_ps"}
	a, _, err := Generate(ix, names)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(ix, append([]string(nil), names...))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("generation is not deterministic")
	}
	// Order of the input list must not matter.
	c, _, err := Generate(ix, []string{"_mm256_fmadd_ps", "_mm256_add_pd", "_mm_add_ps"})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Error("generation depends on input order")
	}
}

func TestGenerateReportsUnknown(t *testing.T) {
	ix := latestIndex(t)
	_, report, err := Generate(ix, []string{"_mm256_add_pd", "_mm999_warp_drive"})
	if err != nil {
		t.Fatal(err)
	}
	var skipped int
	for _, r := range report {
		if r.Skipped {
			skipped++
			if r.CName != "_mm999_warp_drive" {
				t.Errorf("wrong intrinsic skipped: %s", r.CName)
			}
		}
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
}

func TestFullCuratedSetGenerates(t *testing.T) {
	ix := latestIndex(t)
	var names []string
	for _, e := range xmlspec.CuratedEntries() {
		names = append(names, e.Name)
	}
	src, report, err := Generate(ix, names)
	if err != nil {
		t.Fatal(err)
	}
	bound := 0
	for _, r := range report {
		if r.Skipped {
			t.Errorf("%s skipped: %s", r.CName, r.Reason)
		} else {
			bound++
		}
	}
	if bound < 600 {
		t.Errorf("bound %d intrinsics, expected 600+", bound)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "intrin_gen.go", src, 0); err != nil {
		t.Fatalf("full generated file does not parse: %v", err)
	}
}

func TestSanitizeParam(t *testing.T) {
	cases := map[string]string{
		"mem_addr": "memAddr", "k": "kp", "a": "a", "RoundKey": "roundkey",
		"func": "funcp",
	}
	for in, want := range cases {
		if got := sanitizeParam(in); got != want {
			t.Errorf("sanitizeParam(%q) = %q, want %q", in, got, want)
		}
	}
}
