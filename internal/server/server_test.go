package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend/native"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernels"
)

// testServer boots a server (no TCP listener of its own) behind an
// httptest front end and tears both down with the test.
func testServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts.URL
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// submitJob posts a spec and returns the accepted record.
func submitJob(t *testing.T, base string, spec Spec) Record {
	t.Helper()
	resp := postJSON(t, base+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		defer resp.Body.Close()
		var e errorBody
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e.Error)
	}
	var rec Record
	decodeInto(t, resp, &rec)
	return rec
}

func getJob(t *testing.T, base, id string) Record {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var rec Record
	decodeInto(t, resp, &rec)
	return rec
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, base, id string) Record {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec := getJob(t, base, id)
		if rec.State.Terminal() {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Record{}
}

func fetchResult(t *testing.T, base, id string) (string, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := copyAll(&sb, resp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, sb.String())
	}
	return sb.String(), resp.Header.Get("Content-Type")
}

func copyAll(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32*1024)
	var n int64
	for {
		m, err := resp.Body.Read(buf)
		sb.Write(buf[:m])
		n += int64(m)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// TestExecuteMatchesLibraryPath runs saxpy through the daemon and
// through the library directly: the served output buffer must be
// bit-identical to an in-process Call with the same inputs.
func TestExecuteMatchesLibraryPath(t *testing.T) {
	_, base := testServer(t, Config{Workers: 1, Queue: 4})

	const n = 256
	rec := submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: n})
	final := waitTerminal(t, base, rec.ID)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	body, ctype := fetchResult(t, base, rec.ID)
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("unexpected content type %q", ctype)
	}
	var got ExecResult
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}

	rt := core.DefaultRuntime()
	kn, err := rt.Compile(kernels.StagedSaxpy(rt.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	a, b := randSlice(n, 1), randSlice(n, 2)
	if _, err := kn.Call(a, b, float32(2.5), n); err != nil {
		t.Fatal(err)
	}
	want := hexF32s(a)
	if len(got.Output) != len(want) {
		t.Fatalf("output length %d, want %d", len(got.Output), len(want))
	}
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output[%d] = %s, want %s (served path diverged from library)", i, got.Output[i], want[i])
		}
	}
	if got.VMOps == 0 {
		t.Fatal("vm_ops not reported")
	}
}

// TestSweepMatchesCLI reruns a figure sweep as a job and requires the
// result payload to be byte-identical to Suite.RunFigure — the exact
// code path behind `ngen -quick fig6a`.
func TestSweepMatchesCLI(t *testing.T) {
	_, base := testServer(t, Config{Workers: 1, Queue: 4})
	sizes := []int{64, 128}

	rec := submitJob(t, base, Spec{Type: "sweep", Figure: "fig6a", Quick: true, Sizes: sizes})
	final := waitTerminal(t, base, rec.ID)
	if final.State != StateDone {
		t.Fatalf("sweep ended %s: %s", final.State, final.Error)
	}
	got, ctype := fetchResult(t, base, rec.ID)
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("unexpected content type %q", ctype)
	}

	s := bench.NewSuite()
	s.MaxRunLinear = 1 << 11
	s.MaxRunCubic = 32
	s.Reps = 1
	want, err := s.RunFigure("fig6a", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("served sweep diverged from the CLI path:\n--- served ---\n%s--- cli ---\n%s", got, want)
	}
}

// TestStreamEvents subscribes to a sweep job's NDJSON stream and
// checks the full event sequence: pending, running, monotonically
// increasing progress, and a terminal done event that closes the body.
func TestStreamEvents(t *testing.T) {
	_, base := testServer(t, Config{Workers: 1, Queue: 4})
	rec := submitJob(t, base, Spec{Type: "sweep", Figure: "fig6a", Quick: true, Sizes: []int{64, 128, 256}})

	resp, err := http.Get(base + "/v1/jobs/" + rec.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("too few events: %+v", events)
	}
	if events[0].Event != "state" || events[0].State != StatePending {
		t.Fatalf("first event %+v, want pending", events[0])
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.State != StateDone {
		t.Fatalf("last event %+v, want done", last)
	}
	prev := 0
	total := 0
	for _, ev := range events {
		if ev.Event != "progress" {
			continue
		}
		if ev.Done <= prev {
			t.Fatalf("progress not monotonic: %+v after done=%d", ev, prev)
		}
		prev, total = ev.Done, ev.Total
	}
	if prev != total || total == 0 {
		t.Fatalf("progress ended at %d/%d", prev, total)
	}
}

// TestQueueOverflow fills the worker and the one queue slot, then
// requires admission control to reject the next submission with 429 +
// Retry-After — and the rejected job must leave no trace. The queued
// job is then cancelled while still pending.
func TestQueueOverflow(t *testing.T) {
	s, base := testServer(t, Config{Workers: 1, Queue: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.beforeJob = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	j1 := submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: 64})
	<-entered // worker holds j1, queue empty
	j2 := submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: 64})

	resp := postJSON(t, base+"/v1/jobs", Spec{Type: "execute", Kernel: "saxpy", N: 64})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull queue returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()

	// The rejected submission must not appear in the job list.
	var listed []Record
	lresp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, lresp, &listed)
	if len(listed) != 2 {
		t.Fatalf("job list has %d entries after rejection, want 2: %+v", len(listed), listed)
	}

	// Cancel the queued job before a worker reaches it.
	cresp := postJSON(t, base+"/v1/jobs/"+j2.ID+"/cancel", struct{}{})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel pending: status %d", cresp.StatusCode)
	}
	cresp.Body.Close()
	close(release)

	if rec := waitTerminal(t, base, j1.ID); rec.State != StateDone {
		t.Fatalf("j1 ended %s: %s", rec.State, rec.Error)
	}
	if rec := waitTerminal(t, base, j2.ID); rec.State != StateCancelled {
		t.Fatalf("cancelled pending job ended %s", rec.State)
	}
	// A result request for the cancelled job conflicts.
	rresp, err := http.Get(base + "/v1/jobs/" + j2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, want 409", rresp.StatusCode)
	}
}

// TestCancelMidSweep cancels a running sweep and requires the job to
// land in cancelled, with the executor interrupted at a point boundary
// rather than running the sweep to completion.
func TestCancelMidSweep(t *testing.T) {
	s, base := testServer(t, Config{Workers: 1, Queue: 4})
	firstPoint := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.pointHook = func() {
		once.Do(func() { close(firstPoint) })
		select {
		case <-release:
		case <-time.After(30 * time.Second):
		}
	}

	rec := submitJob(t, base, Spec{Type: "sweep", Figure: "fig6a", Quick: true, Workers: 1})
	<-firstPoint // sweep is mid-flight, holding the first measured point
	cresp := postJSON(t, base+"/v1/jobs/"+rec.ID+"/cancel", struct{}{})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: status %d", cresp.StatusCode)
	}
	cresp.Body.Close()
	close(release)

	final := waitTerminal(t, base, rec.ID)
	if final.State != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", final.State)
	}
	if final.Result != "" {
		t.Fatal("cancelled sweep kept a result payload")
	}
}

// TestStoreRecovery restarts the daemon over a populated job store:
// terminal jobs come back verbatim (result included), a record stuck
// in running — a simulated crash — resurfaces as failed, a corrupt
// file is counted and skipped, and the id sequence resumes above every
// recovered id.
func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: 1, Queue: 4, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	rec := submitJob(t, ts1.URL, Spec{Type: "execute", Kernel: "saxpy", N: 64})
	done := waitTerminal(t, ts1.URL, rec.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	result1, _ := fetchResult(t, ts1.URL, rec.ID)
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s1.Shutdown(ctx)

	// Simulate a crash: a record persisted mid-run plus a torn file.
	st, err := openFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.put(Record{ID: "j000077", Spec: Spec{Type: "sweep", Figure: "fig6a"},
		State: StateRunning, CreatedNS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-j000099.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, base := testServer(t, Config{Workers: 1, Queue: 4, StoreDir: dir})
	if got := s2.store.Corrupt(); got != 1 {
		t.Fatalf("corrupt count %d, want 1", got)
	}
	back := getJob(t, base, rec.ID)
	if back.State != StateDone || back.Result != done.Result {
		t.Fatalf("done job did not survive the restart: %+v", back)
	}
	if body, _ := fetchResult(t, base, rec.ID); body != result1 {
		t.Fatal("recovered result payload differs from the pre-restart one")
	}
	crashed := getJob(t, base, "j000077")
	if crashed.State != StateFailed || !strings.Contains(crashed.Error, "restarted while job was running") {
		t.Fatalf("crashed job recovered as %+v", crashed)
	}
	// New ids continue above the recovered sequence.
	next := submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: 8})
	if next.ID <= "j000077" {
		t.Fatalf("id sequence regressed: %s", next.ID)
	}
	if rec := waitTerminal(t, base, next.ID); rec.State != StateDone {
		t.Fatalf("post-recovery job ended %s: %s", rec.State, rec.Error)
	}
}

// TestSubmitValidation checks that malformed specs are rejected at the
// door with 400, before consuming a queue slot.
func TestSubmitValidation(t *testing.T) {
	_, base := testServer(t, Config{Workers: 1, Queue: 4})
	bad := []Spec{
		{Type: "explode"},
		{Type: "execute", Kernel: "no-such-kernel", N: 8},
		{Type: "execute", Kernel: "saxpy", N: 0},
		{Type: "execute", Kernel: "saxpy", N: maxExecLinear + 1},
		{Type: "execute", Kernel: "mmm_blocked", N: 12}, // not a multiple of 8
		{Type: "execute", Kernel: "saxpy", N: 8, Machine: "no-such-uarch"},
		{Type: "execute", Kernel: "logistic", N: 8}, // stageable, not executable
		{Type: "sweep", Figure: "fig9"},
		{Type: "sweep", Figure: "fig6a", Machine: "SkylakeX"},
	}
	for _, spec := range bad {
		resp := postJSON(t, base+"/v1/jobs", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestStageAndTenants stages on two machines under two tenants and
// checks the synchronous stage path plus tenant accounting.
func TestStageAndTenants(t *testing.T) {
	_, base := testServer(t, Config{Workers: 1, Queue: 4})

	var a StageResult
	resp := postJSON(t, base+"/v1/stage", Spec{Kernel: "saxpy", Tenant: "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stage: status %d", resp.StatusCode)
	}
	decodeInto(t, resp, &a)
	if a.Hash == "" || a.SourceBytes == 0 || a.Machine != "Haswell" {
		t.Fatalf("stage result incomplete: %+v", a)
	}

	var b StageResult
	resp = postJSON(t, base+"/v1/stage", Spec{Kernel: "saxpy", Tenant: "bob", Machine: "SkylakeX"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stage on SkylakeX: status %d", resp.StatusCode)
	}
	decodeInto(t, resp, &b)
	if b.Machine != "SkylakeX" {
		t.Fatalf("stage ran on %q, want SkylakeX", b.Machine)
	}

	// Staging a wide kernel on a machine without its ISA must fail.
	resp = postJSON(t, base+"/v1/stage", Spec{Kernel: "dot512", Machine: "Nehalem"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dot512 on Nehalem: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	var tenants []TenantInfo
	tresp, err := http.Get(base + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, tresp, &tenants)
	names := make([]string, len(tenants))
	for i, ti := range tenants {
		names[i] = ti.Name
	}
	// The failed dot512 stage above ran under the default tenant.
	if fmt.Sprint(names) != "[alice bob default]" {
		t.Fatalf("tenants %v, want [alice bob default]", names)
	}
}

// TestWarmStartServesCompileFree restarts the daemon over a warm
// compile-cache directory and requires the second process to serve the
// same requests with zero graph compiles.
func TestWarmStartServesCompileFree(t *testing.T) {
	cache := t.TempDir()
	run := func() string {
		_, base := testServer(t, Config{Workers: 1, Queue: 4, CacheDir: cache})
		resp := postJSON(t, base+"/v1/stage", Spec{Kernel: "saxpy"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stage: status %d", resp.StatusCode)
		}
		resp.Body.Close()
		rec := submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: 64})
		if final := waitTerminal(t, base, rec.ID); final.State != StateDone {
			t.Fatalf("job ended %s: %s", final.State, final.Error)
		}
		body, _ := fetchResult(t, base, rec.ID)
		return body
	}

	cold := run()
	core.ResetFullCompiles()
	warm := run()
	if got := core.FullCompiles(); got != 0 {
		t.Fatalf("warm daemon performed %d graph compiles, want 0", got)
	}
	if warm != cold {
		t.Fatal("warm result differs from cold result")
	}
}

// TestWarmStartNativeZeroBuilds proves a warm native-backend daemon
// invokes `go build` zero times: the warm server's backend points its
// GoTool at a nonexistent binary, so any attempted build would fail
// the request loudly. Skipped where the native backend cannot load
// plugins (e.g. race-instrumented test builds).
func TestWarmStartNativeZeroBuilds(t *testing.T) {
	if err := native.New().Available(); err != nil {
		t.Skipf("native backend unavailable: %v", err)
	}
	cache := t.TempDir()

	cold, err := New(Config{Workers: 1, Queue: 4, CacheDir: cache, Backend: "native"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cold.Handler())
	rec := submitJob(t, ts.URL, Spec{Type: "execute", Kernel: "saxpy", N: 64})
	final := waitTerminal(t, ts.URL, rec.ID)
	if final.State != StateDone {
		t.Fatalf("cold job ended %s: %s", final.State, final.Error)
	}
	coldBody, _ := fetchResult(t, ts.URL, rec.ID)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cold.Shutdown(ctx)

	warm, base := testServer(t, Config{Workers: 1, Queue: 4, CacheDir: cache, Backend: "native"})
	nb := native.New()
	nb.GoTool = filepath.Join(t.TempDir(), "no-such-go") // any build attempt now fails loudly
	warm.RT.Backend = nb
	core.ResetFullCompiles()

	rec = submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: 64})
	final = waitTerminal(t, base, rec.ID)
	if final.State != StateDone {
		t.Fatalf("warm native job ended %s: %s", final.State, final.Error)
	}
	warmBody, _ := fetchResult(t, base, rec.ID)
	if warmBody != coldBody {
		t.Fatal("warm native result differs from cold")
	}
	if got := core.FullCompiles(); got != 0 {
		t.Fatalf("warm native daemon performed %d graph compiles, want 0", got)
	}
	if builds := nb.Counters()["build"]; builds != 0 {
		t.Fatalf("warm native daemon ran %d plugin builds, want 0", builds)
	}
}

// TestHealthzAndMetrics sanity-checks the observability endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, base := testServer(t, Config{Workers: 2, Queue: 8})

	var h Healthz
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &h)
	if h.Status != "ok" || h.Machine != "Haswell" || h.Backend != "vm" ||
		h.Workers != 2 || h.QueueCap != 8 {
		t.Fatalf("healthz: %+v", h)
	}

	rec := submitJob(t, base, Spec{Type: "execute", Kernel: "dot32", N: 64})
	if final := waitTerminal(t, base, rec.ID); final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	decodeInto(t, mresp, &m)
	if m.Counters["http.jobs.submit.requests"] == 0 {
		t.Fatalf("submit requests not counted: %v", m.Counters)
	}
	if m.Counters["http.jobs.submit.status.2xx"] == 0 {
		t.Fatal("submit 2xx not counted")
	}
	if _, ok := m.Gauges["server.queue.capacity"]; !ok {
		t.Fatalf("server gauges missing: %v", m.Gauges)
	}
	if m.Gauges["server.jobs.done"] == 0 {
		t.Fatal("done jobs gauge not published")
	}

	var kresp struct {
		Machine string       `json:"machine"`
		Kernels []kernelInfo `json:"kernels"`
	}
	k, err := http.Get(base + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, k, &kresp)
	if len(kresp.Kernels) < 5 {
		t.Fatalf("kernel listing too short: %+v", kresp)
	}

	// Unknown job ids are a 404, not a 500.
	nf, err := http.Get(base + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", nf.StatusCode)
	}
}

// TestConfigMachine boots the daemon on a non-default machine and
// checks it propagates to healthz, staging, and job execution; an
// unknown machine name must fail construction.
func TestConfigMachine(t *testing.T) {
	_, base := testServer(t, Config{Workers: 1, Queue: 4, Machine: "SkylakeX"})
	var h Healthz
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &h)
	if h.Machine != "SkylakeX" {
		t.Fatalf("daemon machine %q, want SkylakeX", h.Machine)
	}
	rec := submitJob(t, base, Spec{Type: "execute", Kernel: "saxpy", N: 32})
	if final := waitTerminal(t, base, rec.ID); final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	body, _ := fetchResult(t, base, rec.ID)
	var res ExecResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Machine != "SkylakeX" {
		t.Fatalf("job ran on %q, want SkylakeX", res.Machine)
	}

	if _, err := New(Config{Machine: "no-such-uarch"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

// TestDrainingRejectsSubmissions checks shutdown admission control.
func TestDrainingRejectsSubmissions(t *testing.T) {
	s, err := New(Config{Workers: 1, Queue: 4, Drain: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", Spec{Type: "execute", Kernel: "saxpy", N: 8})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server returned %d, want 503", resp.StatusCode)
	}
}
