package server

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/obs"
)

const testMachine = "Haswell"

// decodeSpec mimics the submit path: the wire JSON decodes into Spec
// before anything hashes, so field order and whitespace are shed here.
func decodeSpec(t testing.TB, raw string) Spec {
	t.Helper()
	var spec Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatalf("bad test JSON %q: %v", raw, err)
	}
	return spec
}

// TestSpecHashEquivalence pins the normalization rules: each group
// lists wire bodies that must hash identically, and every group must
// hash differently from every other.
func TestSpecHashEquivalence(t *testing.T) {
	groups := [][]string{
		{ // field order, whitespace, tenant, default elision
			`{"type":"sweep","figure":"fig6a","quick":true}`,
			`{  "figure": "fig6a", "quick": true, "type": "sweep"  }`,
			`{"type":"sweep","figure":"fig6a","quick":true,"tenant":"alice"}`,
			`{"type":"sweep","figure":"fig6a","quick":true,"workers":0}`,
			`{"type":"sweep","figure":"fig6a","quick":true,"workers":8}`,
			// a stray execute-only field must not split the key
			`{"type":"sweep","figure":"fig6a","quick":true,"n":64}`,
			// spelling out the default axis equals eliding it
			`{"type":"sweep","figure":"fig6a","quick":true,"sizes":[64,128,256,512,1024,2048,4096,8192,16384,32768,65536]}`,
		},
		{ // explicit non-default sizes are their own key
			`{"type":"sweep","figure":"fig6a","quick":true,"sizes":[64,128]}`,
		},
		{ // quick flips the measurement knobs even at equal sizes
			`{"type":"sweep","figure":"fig6a","sizes":[64,128]}`,
		},
		{
			`{"type":"sweep","figure":"fig6b","quick":true}`,
		},
		{ // execute: machine "" means the daemon's machine
			`{"type":"execute","kernel":"saxpy","n":64}`,
			`{"type":"execute","kernel":"saxpy","n":64,"machine":"Haswell"}`,
			`{"type":"execute","kernel":"saxpy","n":64,"tenant":"bob"}`,
		},
		{
			`{"type":"execute","kernel":"saxpy","n":128}`,
		},
		{
			`{"type":"execute","kernel":"saxpy","n":64,"machine":"SkylakeX"}`,
		},
		{ // stage never collides with execute of the same kernel: the
			// type is part of the canonical form, and stage drops n
			`{"type":"stage","kernel":"saxpy"}`,
			`{"type":"stage","kernel":"saxpy","machine":"Haswell"}`,
			`{"type":"stage","kernel":"saxpy","n":64}`,
		},
	}
	seen := map[string]string{} // hash → first body
	for gi, group := range groups {
		ref := hashSpec(decodeSpec(t, group[0]), testMachine)
		for _, body := range group[1:] {
			if h := hashSpec(decodeSpec(t, body), testMachine); h != ref {
				t.Errorf("group %d: %s hashed %s, want %s (from %s)", gi, body, h, ref, group[0])
			}
		}
		if prev, dup := seen[ref]; dup {
			t.Errorf("cross-group collision: %s vs %s", group[0], prev)
		}
		seen[ref] = group[0]
	}
}

// TestCanonicalSpecEmptySizes: an explicit empty size list measures
// zero points — it must not canonicalize into the default axis.
func TestCanonicalSpecEmptySizes(t *testing.T) {
	withDefault := hashSpec(Spec{Type: "sweep", Figure: "fig6a", Quick: true}, testMachine)
	withEmpty := hashSpec(Spec{Type: "sweep", Figure: "fig6a", Quick: true, Sizes: []int{}}, testMachine)
	if withDefault == withEmpty {
		t.Fatal("empty sizes canonicalized into the default axis")
	}
}

// TestRetryAfterClampBounds pins the adaptive Retry-After computation
// to its clamp bounds: no history or fast jobs → the 1s floor, a huge
// mean service time → the 60s ceiling, and a mid-range mean lands on
// the backlog-scaled estimate in between.
func TestRetryAfterClampBounds(t *testing.T) {
	mk := func(workers, queueCap int) *Server {
		return &Server{
			cfg:   Config{Workers: workers, Queue: queueCap},
			Reg:   obs.NewRegistry(),
			queue: make(chan *job, queueCap),
		}
	}

	s := mk(2, 4)
	if got := s.retryAfterSeconds(); got != retryAfterMin {
		t.Errorf("no history: %d, want the %ds floor", got, retryAfterMin)
	}

	s.Reg.Histogram("server.job.us").Observe(10) // 10µs jobs
	if got := s.retryAfterSeconds(); got != retryAfterMin {
		t.Errorf("fast jobs: %d, want the %ds floor", got, retryAfterMin)
	}

	s = mk(1, 4)
	s.Reg.Histogram("server.job.us").Observe(3600 * 1e6) // one-hour jobs
	if got := s.retryAfterSeconds(); got != retryAfterMax {
		t.Errorf("slow jobs: %d, want the %ds ceiling", got, retryAfterMax)
	}

	// Mean 2s, 2 workers, empty queue: backlog 2 → ceil(2·2/2) = 2s.
	s = mk(2, 4)
	s.Reg.Histogram("server.job.us").Observe(2 * 1e6)
	if got := s.retryAfterSeconds(); got != 2 {
		t.Errorf("2s mean, 2 workers: %d, want 2", got)
	}
	// Two queued jobs raise the backlog to 4 → 4s.
	s.queue <- &job{}
	s.queue <- &job{}
	if got := s.retryAfterSeconds(); got != 4 {
		t.Errorf("2s mean, 2 queued: %d, want 4", got)
	}
}

// FuzzSpecCanonicalize: semantically equal request JSON — shuffled
// field order, elided defaults, extra whitespace — must hash
// identically, and specs differing in a semantic field must not
// collide.
func FuzzSpecCanonicalize(f *testing.F) {
	f.Add(uint8(0), true, false, uint8(3), "alice", uint16(64))
	f.Add(uint8(1), false, true, uint8(0), "", uint16(8))
	f.Add(uint8(2), true, true, uint8(7), "bob", uint16(512))
	f.Fuzz(func(t *testing.T, figIdx uint8, quick, withSizes bool, workers uint8, tenant string, n uint16) {
		figures := []string{"fig6a", "fig6b", "fig7"}
		figure := figures[int(figIdx)%len(figures)]
		if n == 0 {
			n = 1
		}
		sizes := ""
		if withSizes {
			sizes = fmt.Sprintf(`"sizes":[%d,%d],`, n, int(n)*2)
		}
		tj, _ := json.Marshal(tenant)

		// Canonical field order, defaults explicit where elidable.
		a := fmt.Sprintf(`{"type":"sweep","tenant":%s,"figure":%q,"quick":%v,%s"workers":%d}`,
			tj, figure, quick, sizes, workers)
		// Reversed order, tenant/workers elided, noisy whitespace.
		b := fmt.Sprintf("{ %s\"quick\": %v ,\n\t\"figure\": %q, \"type\": \"sweep\" }",
			sizes, quick, figure)

		ha := hashSpec(decodeSpec(t, a), testMachine)
		hb := hashSpec(decodeSpec(t, b), testMachine)
		if ha != hb {
			t.Fatalf("equivalent specs hash apart:\n%s → %s\n%s → %s", a, ha, b, hb)
		}

		// Flip one semantic field at a time; each flip must move the hash.
		base := decodeSpec(t, a)
		for _, mutant := range []Spec{
			{Type: base.Type, Figure: figures[(int(figIdx)+1)%len(figures)], Quick: base.Quick, Sizes: base.Sizes},
			{Type: base.Type, Figure: base.Figure, Quick: !base.Quick, Sizes: base.Sizes},
			{Type: base.Type, Figure: base.Figure, Quick: base.Quick, Sizes: append([]int{3}, base.Sizes...)},
		} {
			if hashSpec(mutant, testMachine) == ha {
				t.Fatalf("mutated spec %+v collides with %s", mutant, a)
			}
		}
	})
}
