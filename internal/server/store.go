package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
)

// fsStore persists job records, one JSON file per job, in the same
// durability idiom as core.DiskCache: writes go to a temp file in the
// directory and atomically rename into place, so a crash mid-write
// leaves either the old record or the new one, never a torn file. A
// checksum over the record's identity fields catches the remaining
// corruption modes (truncated disks, hand-edited files); corrupt
// records are counted and skipped at load, never fatal.
type fsStore struct {
	dir     string
	mu      sync.Mutex // serializes writes per process; rename is the cross-process guard
	corrupt atomic.Int64
}

// openFSStore creates dir if needed and returns the store.
func openFSStore(dir string) (*fsStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: job store: %w", err)
	}
	return &fsStore{dir: dir}, nil
}

// checksum covers the fields whose silent corruption would change what
// a recovered server believes happened: identity, outcome, and result.
func (r Record) checksum() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%s|%s|%d", r.ID, r.Spec.Type, r.State, r.Error, r.Result, r.CreatedNS)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (st *fsStore) path(id string) string {
	return filepath.Join(st.dir, "job-"+id+".json")
}

// put persists one record (called on every state transition).
func (st *fsStore) put(rec Record) error {
	if st == nil {
		return nil
	}
	rec.Checksum = rec.checksum()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tmp, err := os.CreateTemp(st.dir, "job-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), st.path(rec.ID))
}

// loadAll reads every persisted record, skipping (and counting)
// corrupt files. Records return sorted by id so recovery replays in
// submission order.
func (st *fsStore) loadAll() ([]Record, error) {
	if st == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			st.corrupt.Add(1)
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			st.corrupt.Add(1)
			continue
		}
		if rec.ID == "" || rec.Checksum != rec.checksum() {
			st.corrupt.Add(1)
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ckptFile is the persisted checkpoint state of one interrupted sweep
// job: every completed point's exact-bit payload, keyed by the
// forEachPoint index. Sum is the same durability checksum idiom as the
// job records — a torn or mangled file loads as "no checkpoints"
// (the sweep re-measures everything), never as wrong data.
type ckptFile struct {
	JobID  string                    `json:"job_id"`
	Points map[int][]bench.PointCkpt `json:"points"`
	Sum    string                    `json:"checksum,omitempty"`
}

func (c ckptFile) checksum() string {
	shadow := c
	shadow.Sum = ""
	data, _ := json.Marshal(shadow) // map keys marshal sorted: deterministic
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (st *fsStore) ckptPath(id string) string {
	return filepath.Join(st.dir, "ckpt-"+id+".json")
}

// putCkpt persists a job's completed-point map (atomic rename, same
// crash guarantee as put). Called after every point, so the file
// tracks sweep progress closely enough that a kill loses at most the
// in-flight points.
func (st *fsStore) putCkpt(id string, points map[int][]bench.PointCkpt) error {
	if st == nil {
		return nil
	}
	c := ckptFile{JobID: id, Points: points}
	c.Sum = c.checksum()
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	tmp, err := os.CreateTemp(st.dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), st.ckptPath(id))
}

// loadCkpt reads a job's checkpoint map; a missing or corrupt file is
// nil, nil — resume then simply re-measures.
func (st *fsStore) loadCkpt(id string) (map[int][]bench.PointCkpt, error) {
	if st == nil {
		return nil, nil
	}
	data, err := os.ReadFile(st.ckptPath(id))
	if err != nil {
		return nil, nil
	}
	var c ckptFile
	if err := json.Unmarshal(data, &c); err != nil {
		st.corrupt.Add(1)
		return nil, nil
	}
	if c.JobID != id || c.Sum != c.checksum() {
		st.corrupt.Add(1)
		return nil, nil
	}
	return c.Points, nil
}

// delCkpt removes a terminal job's checkpoint file — checkpoints only
// matter for jobs interrupted mid-flight.
func (st *fsStore) delCkpt(id string) {
	if st == nil {
		return
	}
	os.Remove(st.ckptPath(id))
}

// Corrupt reports how many store files failed to load.
func (st *fsStore) Corrupt() int64 {
	if st == nil {
		return 0
	}
	return st.corrupt.Load()
}
