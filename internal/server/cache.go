package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Result-cache byte budgets (zero Config fields pick these).
const (
	defaultResultMemBudget  = 64 << 20  // 64 MiB of in-memory entries
	defaultResultDiskBudget = 256 << 20 // 256 MiB under <cachedir>/results
)

// resultEntry is one cached terminal result, keyed by the canonical
// spec hash. The canonical spec itself is stored alongside as the
// collision guard (a 64-bit hash can collide; serving the wrong
// figure must not be possible), and Sum is the durability checksum in
// the core.DiskCache idiom — a mangled on-disk entry loads as a miss,
// never as a wrong answer.
type resultEntry struct {
	Spec       Spec   `json:"spec"`
	Result     string `json:"result"`
	ResultType string `json:"result_type"`
	Sum        string `json:"checksum,omitempty"`
}

func (e resultEntry) size() int64 { return int64(len(e.Result)) }

func (e resultEntry) checksum() string {
	shadow := e
	shadow.Sum = ""
	data, _ := json.Marshal(shadow)
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// matches guards against hash collisions and stale-format entries: the
// stored canonical spec must equal the requested one exactly.
func (e resultEntry) matches(canon Spec) bool {
	a, _ := json.Marshal(e.Spec)
	b, _ := json.Marshal(canon)
	return string(a) == string(b)
}

// resultCache is the spec-keyed result store: a byte-budgeted
// memory map in LRU order in front of an optional on-disk layer
// (atomic-rename writes, checksum-validated loads, mtime-LRU
// eviction — the same durability idiom as core.DiskCache). A disk
// entry surviving a restart is what makes a warm daemon answer
// repeated sweeps without executing anything.
type resultCache struct {
	mu         sync.Mutex
	mem        map[string]resultEntry
	order      []string // LRU order, oldest first
	memBytes   int64
	memBudget  int64
	dir        string // "" = memory-only
	diskBudget int64

	hits, misses, stores, evictions atomic.Int64
}

// newResultCache builds the cache; dir "" skips the disk layer, and
// non-positive budgets pick the defaults.
func newResultCache(dir string, memBudget, diskBudget int64) (*resultCache, error) {
	if memBudget <= 0 {
		memBudget = defaultResultMemBudget
	}
	if diskBudget <= 0 {
		diskBudget = defaultResultDiskBudget
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
	}
	return &resultCache{
		mem:        map[string]resultEntry{},
		memBudget:  memBudget,
		dir:        dir,
		diskBudget: diskBudget,
	}, nil
}

func (rc *resultCache) path(hash string) string {
	return filepath.Join(rc.dir, "res-"+hash+".json")
}

// get looks a canonical spec up by hash: memory first, then disk (a
// disk hit promotes the entry back into memory).
func (rc *resultCache) get(hash string, canon Spec) (resultEntry, bool) {
	rc.mu.Lock()
	if e, ok := rc.mem[hash]; ok && e.matches(canon) {
		rc.touch(hash)
		rc.mu.Unlock()
		rc.hits.Add(1)
		return e, true
	}
	rc.mu.Unlock()

	if rc.dir != "" {
		if e, ok := rc.load(hash); ok && e.matches(canon) {
			rc.mu.Lock()
			rc.insertMem(hash, e)
			rc.mu.Unlock()
			rc.hits.Add(1)
			return e, true
		}
	}
	rc.misses.Add(1)
	return resultEntry{}, false
}

// put stores one terminal result under its spec hash, in memory and —
// when the disk layer exists — durably.
func (rc *resultCache) put(hash string, canon Spec, result, resultType string) {
	e := resultEntry{Spec: canon, Result: result, ResultType: resultType}
	e.Sum = e.checksum()
	rc.mu.Lock()
	rc.insertMem(hash, e)
	rc.mu.Unlock()
	rc.stores.Add(1)
	if rc.dir == "" {
		return
	}
	if err := rc.store(hash, e); err != nil {
		fmt.Printf("ngend: result cache write failed: %v\n", err)
		return
	}
	rc.evictDisk()
}

// insertMem adds or refreshes a memory entry and evicts LRU entries
// past the byte budget. Callers hold rc.mu.
func (rc *resultCache) insertMem(hash string, e resultEntry) {
	if old, ok := rc.mem[hash]; ok {
		rc.memBytes -= old.size()
	}
	rc.mem[hash] = e
	rc.memBytes += e.size()
	rc.touch(hash)
	for rc.memBytes > rc.memBudget && len(rc.order) > 1 {
		oldest := rc.order[0]
		rc.order = rc.order[1:]
		if victim, ok := rc.mem[oldest]; ok {
			rc.memBytes -= victim.size()
			delete(rc.mem, oldest)
			rc.evictions.Add(1)
		}
	}
}

// touch moves hash to the MRU end of the order. Callers hold rc.mu.
func (rc *resultCache) touch(hash string) {
	for i, h := range rc.order {
		if h == hash {
			rc.order = append(rc.order[:i], rc.order[i+1:]...)
			break
		}
	}
	rc.order = append(rc.order, hash)
}

// load reads and validates one disk entry; any corruption is a miss.
func (rc *resultCache) load(hash string) (resultEntry, bool) {
	data, err := os.ReadFile(rc.path(hash))
	if err != nil {
		return resultEntry{}, false
	}
	var e resultEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return resultEntry{}, false
	}
	if e.Sum == "" || e.Sum != e.checksum() {
		return resultEntry{}, false
	}
	return e, true
}

// store writes one disk entry via temp file + atomic rename.
func (rc *resultCache) store(hash string, e resultEntry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(rc.dir, "res-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), rc.path(hash))
}

// evictDisk removes oldest-modified entries until the directory fits
// the byte budget (mtime LRU, as in core.DiskCache).
func (rc *resultCache) evictDisk() {
	entries, err := os.ReadDir(rc.dir)
	if err != nil {
		return
	}
	type file struct {
		name  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "res-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, file{name, info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if total <= rc.diskBudget {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= rc.diskBudget || len(files) == 1 {
			break
		}
		if os.Remove(filepath.Join(rc.dir, f.name)) == nil {
			total -= f.size
			rc.evictions.Add(1)
		}
	}
}

// memSize reports the current in-memory byte footprint.
func (rc *resultCache) memSize() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.memBytes
}
