package server

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/vm"
)

// tenant is one isolation domain: a core.ForkTenant runtime whose
// machine accumulates the tenant's dynamic op counts across jobs,
// while compiled artifacts stay in the process-wide shared caches.
// Jobs never execute on the tenant runtime directly — each job forks
// its own (so two of the tenant's jobs can run concurrently without
// racing on counters) and the worker merges the job's counts back
// here when it finishes.
type tenant struct {
	name string
	mu   sync.Mutex
	rt   *core.Runtime
	jobs int64
}

// fork checks out a private runtime for one job, retargeted at arch
// when the request names a non-default machine.
func (t *tenant) fork(arch *isa.Microarch) *core.Runtime {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rt.ForkTenant(arch)
}

// absorb folds a finished job's machine counts into the tenant total.
func (t *tenant) absorb(counts vm.Counter) {
	t.mu.Lock()
	t.rt.Machine.Counts.Merge(counts)
	t.jobs++
	t.mu.Unlock()
}

// TenantInfo is the client-visible view of one tenant.
type TenantInfo struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	Jobs    int64  `json:"jobs"`
	VMOps   int64  `json:"vm_ops"`
}

func (t *tenant) info() TenantInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TenantInfo{
		Name:    t.name,
		Machine: t.rt.Arch.Name,
		Jobs:    t.jobs,
		VMOps:   t.rt.Machine.Counts.Total(),
	}
}

// tenantSet lazily creates tenants off the server's base runtime. The
// empty tenant name maps to "default".
type tenantSet struct {
	mu      sync.Mutex
	base    *core.Runtime
	tenants map[string]*tenant
}

func newTenantSet(base *core.Runtime) *tenantSet {
	return &tenantSet{base: base, tenants: map[string]*tenant{}}
}

func (ts *tenantSet) get(name string) *tenant {
	if name == "" {
		name = "default"
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.tenants[name]
	if !ok {
		t = &tenant{name: name, rt: ts.base.ForkTenant(nil)}
		ts.tenants[name] = t
	}
	return t
}

// list returns tenant summaries sorted by name.
func (ts *tenantSet) list() []TenantInfo {
	ts.mu.Lock()
	tenants := make([]*tenant, 0, len(ts.tenants))
	for _, t := range ts.tenants {
		tenants = append(tenants, t)
	}
	ts.mu.Unlock()
	out := make([]TenantInfo, len(tenants))
	for i, t := range tenants {
		out[i] = t.info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
