// Package server is ngend — NGen as a service. It wraps the staged
// compile/execute pipeline (internal/core) and the sweep harness
// (internal/bench) in a long-running HTTP daemon: kernel-stage,
// execute, and figure-sweep requests arrive as JSON, queue FIFO under
// admission control (429 + Retry-After when the bounded queue is
// full), and run on a fixed worker pool where every job gets a
// per-tenant isolated runtime via core.ForkTenant — one process-wide
// compile cache (plus the optional persistent DiskCache, which makes
// warm serving essentially compile-free) shared across tenants whose
// machine state never mixes.
//
// Job lifecycle is pending → running → done/failed/cancelled, with
// every transition persisted to a filesystem job store (atomic-rename
// JSON records, corruption-tolerant loads, restart recovery of the
// index). Sweep jobs stream progress as chunked JSON lines; sweep
// results are byte-identical to the ngen CLI's figure tables by
// construction (both render through bench.RunFigure). Shutdown drains
// in-flight jobs against a deadline, cancels what remains, and leaves
// the store consistent. docs/SERVER.md is the operator runbook.
package server
