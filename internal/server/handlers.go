package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/isa"
)

// Retry-After clamp bounds: never tell a client to hammer faster than
// 1s, never to go away for more than a minute.
const (
	retryAfterMin = 1
	retryAfterMax = 60
)

// retryAfterSeconds estimates when a queue slot will free up: the
// recent mean job service time (the server.job.us histogram the
// executor feeds) times the backlog each worker faces. With no
// history yet it falls back to the minimum — optimistic, but the next
// rejection will know better.
func (s *Server) retryAfterSeconds() int {
	mean := s.Reg.Histogram("server.job.us").Snapshot().Mean() // µs
	if mean <= 0 {
		return retryAfterMin
	}
	backlog := len(s.queue) + s.cfg.Workers // queued + likely in-flight
	secs := int(math.Ceil(mean * float64(backlog) / float64(s.cfg.Workers) / 1e6))
	if secs < retryAfterMin {
		return retryAfterMin
	}
	if secs > retryAfterMax {
		return retryAfterMax
	}
	return secs
}

// Handler builds the daemon's route table. Every route is wrapped in
// the obs HTTP middleware, so /metrics carries per-endpoint request
// counts, status classes and latency histograms with no further
// plumbing.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, s.Reg.InstrumentHTTP(name, h))
	}
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /metrics", "metrics", s.handleMetrics)
	route("GET /v1/kernels", "kernels", s.handleKernels)
	route("GET /v1/tenants", "tenants", s.handleTenants)
	route("POST /v1/stage", "stage", s.handleStage)
	route("POST /v1/jobs", "jobs.submit", s.handleSubmit)
	route("GET /v1/jobs", "jobs.list", s.handleList)
	route("GET /v1/jobs/{id}", "jobs.get", s.handleGet)
	route("GET /v1/jobs/{id}/result", "jobs.result", s.handleResult)
	route("GET /v1/jobs/{id}/stream", "jobs.stream", s.handleStream)
	route("POST /v1/jobs/{id}/cancel", "jobs.cancel", s.handleCancel)
	return mux
}

// writeJSON emits one JSON response body, indented for curl users.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// Healthz is the GET /healthz body: liveness plus the shared-cache and
// backend state an operator checks first.
type Healthz struct {
	Status      string               `json:"status"` // "ok" | "draining"
	Machine     string               `json:"machine"`
	Backend     string               `json:"backend"`
	Workers     int                  `json:"workers"`
	QueueDepth  int                  `json:"queue_depth"`
	QueueCap    int                  `json:"queue_cap"`
	Jobs        map[State]int        `json:"jobs"`
	Cache       core.CacheStats      `json:"cache"`
	DiskCache   *core.DiskCacheStats `json:"disk_cache,omitempty"`
	BackendCtrs map[string]int64     `json:"backend_counters,omitempty"`
	StoreCorrpt int64                `json:"store_corrupt"`
	Compiles    int64                `json:"graph_compiles"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	h := Healthz{
		Status:      status,
		Machine:     s.RT.Arch.Name,
		Backend:     s.RT.BackendName(),
		Workers:     s.cfg.Workers,
		QueueDepth:  len(s.queue),
		QueueCap:    cap(s.queue),
		Jobs:        s.jobs.byState(),
		Cache:       s.RT.CacheStats(),
		BackendCtrs: s.RT.BackendCounters(),
		StoreCorrpt: s.store.Corrupt(),
		Compiles:    core.FullCompiles(),
	}
	if ds, ok := s.RT.DiskStats(); ok {
		h.DiskCache = &ds
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.publishMetrics()
	w.Header().Set("Content-Type", "application/json")
	if err := s.Reg.WriteJSON(w); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// kernelInfo is one row of GET /v1/kernels.
type kernelInfo struct {
	Name       string `json:"name"`
	Executable bool   `json:"executable"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	exec := map[string]bool{}
	for _, name := range ExecutableKernels() {
		exec[name] = true
	}
	var out []kernelInfo
	for _, name := range StageableKernels() {
		out = append(out, kernelInfo{Name: name, Executable: exec[name]})
	}
	writeJSON(w, http.StatusOK, struct {
		Machine  string       `json:"machine"`
		Machines []string     `json:"machines"`
		Kernels  []kernelInfo `json:"kernels"`
	}{s.RT.Arch.Name, microarchNames(), out})
}

func microarchNames() []string {
	var out []string
	for _, m := range isa.Microarchs() {
		out = append(out, m.Name)
	}
	return out
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tenants.list())
}

// handleStage compiles synchronously — staging is cheap (cached after
// the first hit) and callers want the artifact metadata inline.
func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec.Type = "stage"
	if err := validateSpec(spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	arch, err := archFor(spec.Machine)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t := s.tenants.get(spec.Tenant)
	jrt := t.fork(arch)
	res, err := stageKernel(jrt, spec.Kernel)
	t.absorb(jrt.Machine.Counts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, err := s.submit(spec)
	switch err {
	case nil:
		writeJSON(w, http.StatusAccepted, j.snapshot())
	case errBusy:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, err)
	case errDraining:
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

// jobFor resolves the {id} path segment, writing 404 on a miss.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleResult serves the raw result payload with the job's content
// type — for sweep jobs this is bytes-for-bytes the CLI figure table.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	rec := j.snapshot()
	switch rec.State {
	case StateDone:
		ctype := rec.ResultType
		if ctype == "" {
			ctype = "text/plain; charset=utf-8"
		}
		w.Header().Set("Content-Type", ctype)
		fmt.Fprint(w, rec.Result)
	case StateFailed, StateCancelled:
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s: %s", rec.ID, rec.State, rec.Error))
	default:
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll or stream until done", rec.ID, rec.State))
	}
}

// handleStream serves the job's event history and then live NDJSON
// lines until the job reaches a terminal state or the client leaves.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	history, live := j.stream.subscribe()
	for _, line := range history {
		fmt.Fprintln(w, line)
	}
	flush()
	if live == nil {
		return
	}
	defer j.stream.unsubscribe(live)
	for {
		select {
		case line, open := <-live:
			if !open {
				return
			}
			fmt.Fprintln(w, line)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if !s.cancelJob(j) {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is already %s", j.snapshot().ID, j.snapshot().State))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}
