package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/vm"
)

// maxExecN bounds execute-request sizes so one request cannot pin
// gigabytes (admission control on memory, not just queue depth).
const (
	maxExecLinear = 1 << 22
	maxExecMatrix = 1024
)

// stageable maps kernel names to their staging constructors — the
// subset of the registry that compiles through core (the Java baseline
// methods load into the simulated JVM instead and are not served).
func stageable() map[string]func(fs isa.FeatureSet) (*dsl.Kernel, error) {
	wrap := func(f func(isa.FeatureSet) *dsl.Kernel) func(isa.FeatureSet) (*dsl.Kernel, error) {
		return func(fs isa.FeatureSet) (*dsl.Kernel, error) { return f(fs), nil }
	}
	return map[string]func(fs isa.FeatureSet) (*dsl.Kernel, error){
		"saxpy":       wrap(kernels.StagedSaxpy),
		"saxpy_multi": wrap(kernels.StagedSaxpyMulti),
		"mmm_blocked": wrap(kernels.StagedMMM),
		"mmm_naive":   wrap(kernels.StagedMMMNaive),
		"dot32":       func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedDot(32, fs) },
		"dot16":       func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedDot(16, fs) },
		"dot8":        func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedDot(8, fs) },
		"dot4":        func(fs isa.FeatureSet) (*dsl.Kernel, error) { return kernels.StagedDot(4, fs) },
		"dot4_alu":    wrap(kernels.StagedDot4ALU),
		"dot512":      wrap(kernels.StagedDot512),
		"logistic":    wrap(kernels.StagedLogistic),
	}
}

// StageResult is the response to a stage request: what the compile
// produced, without the artifact itself (that lives in the shared
// caches, ready for execute requests).
type StageResult struct {
	Kernel          string `json:"kernel"`
	Machine         string `json:"machine"`
	Hash            string `json:"hash"`
	SourceBytes     int    `json:"source_bytes"`
	CompileCommand  string `json:"compile_command"`
	VerifyWarnings  int    `json:"verify_warnings"`
	Backend         string `json:"backend"`
	BackendFallback string `json:"backend_fallback,omitempty"`
}

// stageKernel compiles one named kernel on the given runtime (a tenant
// fork). Cheap when the artifact is cached — which is the point: warm
// serving is compile-free.
func stageKernel(rt *core.Runtime, name string) (StageResult, error) {
	build, ok := stageable()[name]
	if !ok {
		return StageResult{}, fmt.Errorf("unknown stageable kernel %q (GET /v1/kernels lists them)", name)
	}
	k, err := build(rt.Arch.Features)
	if err != nil {
		return StageResult{}, err
	}
	kn, err := rt.Compile(k)
	if err != nil {
		return StageResult{}, err
	}
	return StageResult{
		Kernel:          name,
		Machine:         rt.Arch.Name,
		Hash:            fmt.Sprintf("%016x", ir.Hash(kn.Func())),
		SourceBytes:     len(kn.Source()),
		CompileCommand:  kn.CompileCommand(),
		VerifyWarnings:  kn.Verify().Warnings(),
		Backend:         rt.BackendName(),
		BackendFallback: kn.BackendFallback(),
	}, nil
}

// ExecResult is the response body of a finished execute job. Output is
// the mutated destination buffer as float32 bit patterns — a bitwise,
// platform-independent encoding, so "byte-identical to the CLI path"
// is checkable on the wire.
type ExecResult struct {
	Kernel  string   `json:"kernel"`
	Machine string   `json:"machine"`
	N       int      `json:"n"`
	Result  string   `json:"result"`
	Output  []string `json:"output,omitempty"`
	VMOps   int64    `json:"vm_ops"`
}

// randSlice mirrors the bench harness's deterministic input generator:
// same seed, same bytes, so served executions reproduce the harness's.
func randSlice(n int, seed uint64) []float32 {
	rng := vm.NewXorshift(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.Uniform()*2 - 1)
	}
	return out
}

func hexF32s(xs []float32) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%08x", math.Float32bits(x))
	}
	return out
}

// renderValue encodes a kernel's scalar return bitwise.
func renderValue(v vm.Value) string {
	switch v.Kind {
	case ir.KindVoid:
		return "void"
	case ir.KindF32:
		return fmt.Sprintf("f32:%08x", math.Float32bits(float32(v.F)))
	case ir.KindF64:
		return fmt.Sprintf("f64:%016x", math.Float64bits(v.F))
	case ir.KindBool:
		return fmt.Sprintf("bool:%v", v.B)
	case ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
		return fmt.Sprintf("%s:%x", ir.Type{Kind: v.Kind}, v.U)
	default:
		return fmt.Sprintf("%s:%d", ir.Type{Kind: v.Kind}, v.I)
	}
}

// execPlan describes how to run one executable kernel at size n with
// the deterministic inputs, and which buffer comes back as the output.
type execPlan struct {
	validate func(n int) error
	run      func(kn *core.Kernel, n int) (vm.Value, []float32, error)
}

func linearN(n int) error {
	if n <= 0 || n > maxExecLinear {
		return fmt.Errorf("n must be in [1, %d]", maxExecLinear)
	}
	return nil
}

func matrixN(n int) error {
	if n <= 0 || n > maxExecMatrix || n%8 != 0 {
		return fmt.Errorf("n must be a multiple of 8 in [8, %d]", maxExecMatrix)
	}
	return nil
}

func saxpyPlan() execPlan {
	return execPlan{validate: linearN,
		run: func(kn *core.Kernel, n int) (vm.Value, []float32, error) {
			a, b := randSlice(n, 1), randSlice(n, 2)
			res, err := kn.Call(a, b, float32(2.5), n)
			return res, a, err
		}}
}

func mmmPlan() execPlan {
	return execPlan{validate: matrixN,
		run: func(kn *core.Kernel, n int) (vm.Value, []float32, error) {
			a, b := randSlice(n*n, 3), randSlice(n*n, 4)
			c := make([]float32, n*n)
			res, err := kn.Call(a, b, c, n)
			return res, c, err
		}}
}

// executable maps the kernels an execute job may name to their plans.
func executable() map[string]execPlan {
	return map[string]execPlan{
		"saxpy":       saxpyPlan(),
		"saxpy_multi": saxpyPlan(),
		"mmm_blocked": mmmPlan(),
		"mmm_naive":   mmmPlan(),
		"dot32": {validate: linearN,
			run: func(kn *core.Kernel, n int) (vm.Value, []float32, error) {
				a, b := randSlice(n, 7), randSlice(n, 8)
				res, err := kn.Call(a, b, n)
				return res, nil, err
			}},
	}
}

// ExecutableKernels lists the kernels execute jobs accept, sorted.
func ExecutableKernels() []string {
	m := executable()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StageableKernels lists the kernels stage requests accept, sorted.
func StageableKernels() []string {
	m := stageable()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// validateSpec rejects malformed specs at submission time, before the
// queue — bad requests should cost a 400, not a worker slot.
func validateSpec(spec Spec) error {
	lookupMachine := func() error {
		if spec.Machine == "" {
			return nil
		}
		_, err := isa.LookupMicroarch(spec.Machine)
		return err
	}
	switch spec.Type {
	case "stage":
		if _, ok := stageable()[spec.Kernel]; !ok {
			return fmt.Errorf("unknown stageable kernel %q", spec.Kernel)
		}
		return lookupMachine()
	case "execute":
		plan, ok := executable()[spec.Kernel]
		if !ok {
			return fmt.Errorf("kernel %q is not executable (GET /v1/kernels lists the executable set)", spec.Kernel)
		}
		if err := plan.validate(spec.N); err != nil {
			return fmt.Errorf("kernel %q: %w", spec.Kernel, err)
		}
		return lookupMachine()
	case "sweep":
		if _, err := bench.FigureSizes(spec.Figure, spec.Quick); err != nil {
			return err
		}
		if spec.Machine != "" {
			return fmt.Errorf("sweep jobs run on the daemon's configured machine; drop the machine field")
		}
		if spec.Workers < 0 {
			return fmt.Errorf("workers must be >= 0")
		}
		for _, n := range spec.Sizes {
			if n <= 0 || n > maxExecLinear {
				return fmt.Errorf("sweep size %d out of range [1, %d]", n, maxExecLinear)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown job type %q (stage | execute | sweep)", spec.Type)
	}
}

// archFor resolves a spec's machine name (empty means the daemon's).
func archFor(name string) (*isa.Microarch, error) {
	if name == "" {
		return nil, nil
	}
	return isa.LookupMicroarch(name)
}

// runJob executes one job on a freshly forked per-job runtime and
// returns the result payload. ctx cancellation surfaces as
// context.Canceled, which the worker records as StateCancelled.
func (s *Server) runJob(j *job) (payload string, contentType string, counts vm.Counter, err error) {
	spec := j.snapshot().Spec
	t := s.tenants.get(spec.Tenant)
	arch, err := archFor(spec.Machine)
	if err != nil {
		return "", "", nil, err
	}
	jrt := t.fork(arch)

	if err := j.ctx.Err(); err != nil {
		return "", "", nil, context.Canceled
	}

	switch spec.Type {
	case "stage":
		res, err := stageKernel(jrt, spec.Kernel)
		if err != nil {
			return "", "", jrt.Machine.Counts, err
		}
		data, _ := json.MarshalIndent(res, "", "  ")
		return string(data) + "\n", "application/json", jrt.Machine.Counts, nil

	case "execute":
		build := stageable()[spec.Kernel]
		ep := executable()[spec.Kernel]
		k, err := build(jrt.Arch.Features)
		if err != nil {
			return "", "", jrt.Machine.Counts, err
		}
		kn, err := jrt.Compile(k)
		if err != nil {
			return "", "", jrt.Machine.Counts, err
		}
		res, out, err := ep.run(kn, spec.N)
		if err != nil {
			return "", "", jrt.Machine.Counts, err
		}
		j.attachPlan(jrt, kn.Func().Name)
		body := ExecResult{
			Kernel:  spec.Kernel,
			Machine: jrt.Arch.Name,
			N:       spec.N,
			Result:  renderValue(res),
			Output:  hexF32s(out),
			VMOps:   jrt.Machine.Counts.Total(),
		}
		data, _ := json.MarshalIndent(body, "", "  ")
		return string(data) + "\n", "application/json", jrt.Machine.Counts, nil

	case "sweep":
		text, counts, err := s.runSweep(j, jrt)
		return text, "text/plain; charset=utf-8", counts, err

	default:
		return "", "", nil, fmt.Errorf("unknown job type %q", spec.Type)
	}
}

// runSweep reruns one CLI figure sweep as a job: same sizes, same
// suite knobs, same Format call — byte-identical output by
// construction. Progress streams one event per measured point, and
// the job context interrupts the sweep at point granularity.
func (s *Server) runSweep(j *job, jrt *core.Runtime) (string, vm.Counter, error) {
	spec := j.snapshot().Spec
	suite := bench.NewSuite()
	suite.RT = jrt
	if spec.Quick {
		// The CLI's -quick knobs, so served quick sweeps match
		// `ngen -quick fig*` exactly.
		suite.MaxRunLinear = 1 << 11
		suite.MaxRunCubic = 32
		suite.Reps = 1
	}
	if spec.Workers > 1 {
		suite.Workers = spec.Workers
	}
	suite.OnPoint = func(sweep string, done, total int) {
		if s.pointHook != nil {
			s.pointHook()
		}
		s.publishJob(j, Event{Event: "progress", Sweep: sweep, Done: done, Total: total}, false)
	}
	suite.Interrupt = func() error { return j.ctx.Err() }

	// Checkpoint/resume: restore the points an interrupted run already
	// measured, and persist each completed point so the next restart
	// can do the same. ckptMu also covers the store write, keeping the
	// persisted file monotonic under parallel sweep workers.
	j.ckptMu.Lock()
	if len(j.ckpt) > 0 {
		// The suite reads Resume while OnPointDone grows j.ckpt, so it
		// gets its own snapshot.
		resume := make(map[int][]bench.PointCkpt, len(j.ckpt))
		for i, pts := range j.ckpt {
			resume[i] = pts
		}
		suite.Resume = resume
		s.Reg.Counter("server.resume.points").Add(int64(len(resume)))
	}
	j.ckptMu.Unlock()
	suite.OnPointDone = func(sweep string, i int, pts []bench.PointCkpt) {
		j.ckptMu.Lock()
		if j.ckpt == nil {
			j.ckpt = map[int][]bench.PointCkpt{}
		}
		j.ckpt[i] = pts
		if s.store != nil {
			if err := s.store.putCkpt(j.rec.ID, j.ckpt); err != nil {
				fmt.Printf("ngend: checkpoint write failed: %v\n", err)
			}
		}
		j.ckptMu.Unlock()
	}

	sizes := spec.Sizes
	if sizes == nil {
		var err error
		sizes, err = bench.FigureSizes(spec.Figure, spec.Quick)
		if err != nil {
			return "", nil, err
		}
	}
	text, err := suite.RunFigure(spec.Figure, sizes)
	counts := suite.SweepCounts.Clone()
	counts.Merge(jrt.Machine.Counts)
	if err != nil {
		return "", counts, err
	}
	j.attachPlan(jrt, "")
	return text, counts, nil
}

// attachPlan records the planner's decisions on the job record — the
// named kernel's plans, or every live plan when kernel is "" (sweeps
// touch several kernels). No-op when the planner is off. Runs before
// the job turns terminal, so the views ride the persisted record and
// /v1/jobs/<id>.
func (j *job) attachPlan(jrt *core.Runtime, kernel string) {
	if jrt.Planner == nil {
		return
	}
	views := jrt.Planner.Snapshot()
	if kernel != "" {
		views = jrt.Planner.KernelViews(kernel)
	}
	if len(views) == 0 {
		return
	}
	j.mu.Lock()
	j.rec.Plan = views
	j.mu.Unlock()
}
