package server

import (
	"encoding/json"
	"sync"
)

// Event is one progress line on a job's stream — marshaled as a single
// JSON object per line (NDJSON), the chunked wire format of
// GET /v1/jobs/{id}/stream.
type Event struct {
	Event string `json:"event"`           // "state" | "progress" | "done"
	State State  `json:"state,omitempty"` // on state/done events
	Error string `json:"error,omitempty"`
	Sweep string `json:"sweep,omitempty"` // on progress events
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
}

// stream fans one job's progress events out to any number of HTTP
// subscribers. Events are retained for the job's lifetime, so a late
// subscriber replays history before going live — every consumer sees
// the same ordered line sequence. Publishing never blocks the
// executing worker: a subscriber that cannot keep up has events
// dropped (they still appear in its replay-free history gap counter),
// and the terminal event closes every subscriber.
type stream struct {
	mu     sync.Mutex
	lines  []string
	subs   map[chan string]struct{}
	closed bool
	// dropped counts events a slow subscriber missed; surfaced as the
	// server.stream.dropped counter.
	dropped int64
}

func newStream() *stream {
	return &stream{subs: map[chan string]struct{}{}}
}

// publish appends one event and fans it out. terminal closes the
// stream after delivery.
func (st *stream) publish(ev Event, terminal bool) {
	data, err := json.Marshal(ev)
	if err != nil {
		return // Event is marshal-safe by construction
	}
	line := string(data)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.lines = append(st.lines, line)
	for ch := range st.subs {
		select {
		case ch <- line:
		default:
			st.dropped++
		}
	}
	if terminal {
		st.closed = true
		for ch := range st.subs {
			close(ch)
		}
		st.subs = map[chan string]struct{}{}
	}
	st.mu.Unlock()
}

// history returns a copy of every line published so far.
func (st *stream) history() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, len(st.lines))
	copy(out, st.lines)
	return out
}

// adopt seeds a fresh stream with replayed lines — a coalesced
// follower's stream starts with the leader's history so every
// subscriber sees the same ordered sequence regardless of when the
// follower attached.
func (st *stream) adopt(lines []string) {
	st.mu.Lock()
	st.lines = append(st.lines, lines...)
	st.mu.Unlock()
}

// close marks the stream finished without a new event (recovered
// terminal jobs).
func (st *stream) close() {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		for ch := range st.subs {
			close(ch)
		}
		st.subs = map[chan string]struct{}{}
	}
	st.mu.Unlock()
}

// subscribe returns the replay history and, when the stream is still
// live, a channel of subsequent lines (nil once closed — the history
// is complete).
func (st *stream) subscribe() ([]string, chan string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	history := make([]string, len(st.lines))
	copy(history, st.lines)
	if st.closed {
		return history, nil
	}
	ch := make(chan string, 64)
	st.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe detaches a live subscriber (client went away).
func (st *stream) unsubscribe(ch chan string) {
	st.mu.Lock()
	if _, ok := st.subs[ch]; ok {
		delete(st.subs, ch)
		close(ch)
	}
	st.mu.Unlock()
}

// droppedCount reports fan-out drops for metrics.
func (st *stream) droppedCount() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}
