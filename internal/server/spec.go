package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/bench"
	"repro/internal/isa"
)

// specVersion prefixes every canonical-spec hash. Bump it whenever the
// canonical form or the execution semantics behind it change — old
// cache entries then miss instead of serving stale results.
const specVersion = "specv1|"

// canonicalSpec reduces a validated spec to its execution-relevant
// core, so that two requests hash equal exactly when they would
// produce identical results:
//
//   - Tenant is dropped: tenants isolate accounting, not results.
//   - Fields the job type ignores are zeroed (a stray "n" on a sweep
//     must not split the cache).
//   - Machine resolves to the microarch's canonical name; empty means
//     the daemon's machine, so "" and its explicit name hash equal.
//   - Sweep Workers is dropped (results are identical at any worker
//     count) and nil Sizes resolves to the figure's default axis, so
//     eliding the default and spelling it out hash equal. An explicit
//     empty list stays distinct — it measures zero points.
//
// JSON field order and whitespace never reach the hash at all: the
// request was decoded into the Spec struct first, and the canonical
// encoding below is the deterministic struct-order marshal.
func canonicalSpec(spec Spec, daemonMachine string) Spec {
	resolve := func(name string) string {
		if name == "" {
			return daemonMachine
		}
		if arch, err := isa.LookupMicroarch(name); err == nil {
			return arch.Name
		}
		return name
	}
	c := Spec{Type: spec.Type}
	switch spec.Type {
	case "stage":
		c.Kernel = spec.Kernel
		c.Machine = resolve(spec.Machine)
	case "execute":
		c.Kernel = spec.Kernel
		c.Machine = resolve(spec.Machine)
		c.N = spec.N
	case "sweep":
		c.Figure = spec.Figure
		c.Quick = spec.Quick
		c.Machine = daemonMachine // sweeps always run on the daemon's machine
		c.Sizes = spec.Sizes
		if c.Sizes == nil {
			if sizes, err := bench.FigureSizes(spec.Figure, spec.Quick); err == nil {
				c.Sizes = sizes
			}
		}
	default:
		c = spec
		c.Tenant = ""
	}
	return c
}

// hashSpec is the canonical content hash of a request — the key of the
// result cache and the single-flight table.
func hashSpec(spec Spec, daemonMachine string) string {
	data, err := json.Marshal(canonicalSpec(spec, daemonMachine))
	if err != nil {
		// Spec marshals by construction; a failure here must still
		// produce a unique non-colliding key.
		data = []byte(fmt.Sprintf("unmarshalable:%+v", spec))
	}
	h := fnv.New64a()
	h.Write([]byte(specVersion))
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}
