package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend/native"
	"repro/internal/bench"
	"repro/internal/core"
)

// metricsOf fetches /metrics into counter and gauge maps.
func metricsOf(t *testing.T, base string) (map[string]int64, map[string]int64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	decodeInto(t, resp, &m)
	return m.Counters, m.Gauges
}

// streamLines drains a job's NDJSON stream to completion.
func streamLines(t *testing.T, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// trySubmit posts a spec without failing the test from a non-test
// goroutine; errors surface as a zero Record plus the error string.
func trySubmit(base string, spec Spec) (Record, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return Record{}, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(data)))
	if err != nil {
		return Record{}, err
	}
	defer resp.Body.Close()
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return Record{}, err
	}
	if rec.ID == "" {
		return Record{}, fmt.Errorf("submit rejected: status %d", resp.StatusCode)
	}
	return rec, nil
}

// TestResultCacheServesRepeatSweep: the acceptance-criterion e2e — a
// repeated identical sweep answers from the result cache with zero
// graph compiles and zero measured points, under a different tenant
// and a differently-spelled (but canonically equal) spec. The tenant
// still gets the job attributed, with zero vm ops.
func TestResultCacheServesRepeatSweep(t *testing.T) {
	cache := t.TempDir()
	var points atomic.Int64
	s, base := testServer(t, Config{Workers: 1, Queue: 4, CacheDir: cache,
		ResultCache: true, Coalesce: true})
	s.pointHook = func() { points.Add(1) }

	spec := Spec{Type: "sweep", Figure: "fig6a", Quick: true, Tenant: "alice"}
	first := waitTerminal(t, base, submitJob(t, base, spec).ID)
	if first.State != StateDone || first.Cached {
		t.Fatalf("first sweep: %+v", first)
	}
	firstBody, _ := fetchResult(t, base, first.ID)
	ran := points.Load()
	if ran == 0 {
		t.Fatal("first sweep measured no points")
	}

	core.ResetFullCompiles()
	// Same canonical spec: different tenant, workers knob set, default
	// axis spelled out via nil-elision — all normalization paths.
	repeat := Spec{Type: "sweep", Figure: "fig6a", Quick: true, Tenant: "bob", Workers: 4}
	second := waitTerminal(t, base, submitJob(t, base, repeat).ID)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("repeat sweep not served from cache: %+v", second)
	}
	if body, _ := fetchResult(t, base, second.ID); body != firstBody {
		t.Fatal("cached result differs from the executed one")
	}
	if got := points.Load(); got != ran {
		t.Fatalf("cached sweep measured %d points, want 0", got-ran)
	}
	if got := core.FullCompiles(); got != 0 {
		t.Fatalf("cached sweep performed %d graph compiles, want 0", got)
	}

	// Tenant accounting: bob owns one job and zero vm ops.
	for _, ti := range s.tenants.list() {
		if ti.Name == "bob" {
			if ti.Jobs != 1 || ti.VMOps != 0 {
				t.Fatalf("bob accounting: %+v, want 1 job / 0 ops", ti)
			}
		}
	}

	_, gauges := metricsOf(t, base)
	if gauges["server.resultcache.hits"] != 1 || gauges["server.resultcache.stores"] == 0 {
		t.Fatalf("result cache metrics: %v", gauges)
	}

	// Disk layer: a fresh daemon over the same cachedir (empty memory
	// LRU) must serve the same spec without executing anything.
	var points2 atomic.Int64
	s2, base2 := testServer(t, Config{Workers: 1, Queue: 4, CacheDir: cache,
		ResultCache: true, Coalesce: true})
	s2.pointHook = func() { points2.Add(1) }
	core.ResetFullCompiles()
	third := waitTerminal(t, base2, submitJob(t, base2, spec).ID)
	if third.State != StateDone || !third.Cached {
		t.Fatalf("restarted daemon missed the disk result cache: %+v", third)
	}
	if body, _ := fetchResult(t, base2, third.ID); body != firstBody {
		t.Fatal("disk-cached result differs")
	}
	if points2.Load() != 0 || core.FullCompiles() != 0 {
		t.Fatalf("disk-cached sweep executed: %d points, %d compiles",
			points2.Load(), core.FullCompiles())
	}
}

// TestResultCacheNativeZeroBuilds: the `go build` half of the
// acceptance criterion — a warm daemon on the native backend with a
// poisoned GoTool (any build attempt fails loudly) still serves the
// repeated execute request, proving zero builds. Skipped where the
// native backend cannot load plugins.
func TestResultCacheNativeZeroBuilds(t *testing.T) {
	if err := native.New().Available(); err != nil {
		t.Skipf("native backend unavailable: %v", err)
	}
	cache := t.TempDir()
	cfg := Config{Workers: 1, Queue: 4, CacheDir: cache, Backend: "native", ResultCache: true}

	cold, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cold.Handler())
	spec := Spec{Type: "execute", Kernel: "saxpy", N: 64}
	first := waitTerminal(t, ts.URL, submitJob(t, ts.URL, spec).ID)
	if first.State != StateDone {
		t.Fatalf("cold job ended %s: %s", first.State, first.Error)
	}
	coldBody, _ := fetchResult(t, ts.URL, first.ID)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cold.Shutdown(ctx)

	warm, base := testServer(t, cfg)
	nb := native.New()
	nb.GoTool = filepath.Join(t.TempDir(), "no-such-go")
	warm.RT.Backend = nb
	core.ResetFullCompiles()

	second := waitTerminal(t, base, submitJob(t, base, spec).ID)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("warm job not served from result cache: %+v", second)
	}
	if body, _ := fetchResult(t, base, second.ID); body != coldBody {
		t.Fatal("cached native result differs from cold")
	}
	if got := core.FullCompiles(); got != 0 {
		t.Fatalf("%d graph compiles, want 0", got)
	}
	if builds := nb.Counters()["build"]; builds != 0 {
		t.Fatalf("%d plugin builds, want 0", builds)
	}
}

// TestCoalescedStorm: N concurrent identical sweep submissions execute
// the pipeline exactly once. One job leads, the rest attach as
// followers sharing its stream and result; every tenant still gets
// its jobs attributed. Runs under -race via the race gate.
func TestCoalescedStorm(t *testing.T) {
	const n = 8
	var points atomic.Int64
	gate := make(chan struct{})
	s, base := testServer(t, Config{Workers: 1, Queue: n + 2, Coalesce: true})
	s.pointHook = func() { points.Add(1) }
	s.beforeJob = func() { <-gate } // hold the worker until all N are submitted

	tenants := []string{"alice", "bob"}
	recs := make([]Record, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i], errs[i] = trySubmit(base,
				Spec{Type: "sweep", Figure: "fig6a", Quick: true, Tenant: tenants[i%2]})
		}(i)
	}
	wg.Wait()
	close(gate)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}

	// Exactly one leader; every follower names it.
	leaders := 0
	var leaderID string
	for _, rec := range recs {
		if rec.CoalescedWith == "" {
			leaders++
			leaderID = rec.ID
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders among %d identical submissions, want 1", leaders, n)
	}

	var refBody string
	for i, rec := range recs {
		final := waitTerminal(t, base, rec.ID)
		if final.State != StateDone {
			t.Fatalf("job %s ended %s: %s", rec.ID, final.State, final.Error)
		}
		if rec.CoalescedWith != "" && rec.CoalescedWith != leaderID {
			t.Fatalf("follower %s coalesced with %s, want %s", rec.ID, rec.CoalescedWith, leaderID)
		}
		body, _ := fetchResult(t, base, rec.ID)
		if i == 0 {
			refBody = body
		} else if body != refBody {
			t.Fatalf("job %s result differs from job %s", rec.ID, recs[0].ID)
		}
	}

	// One execution: the measured point count equals a single quick
	// fig6a axis, not n of them.
	axis, err := bench.FigureSizes("fig6a", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := points.Load(); got != int64(len(axis)) {
		t.Fatalf("storm measured %d points, want %d (one run)", got, len(axis))
	}

	// Per-tenant accounting: n jobs total, and only the leader's
	// tenant carries the vm ops.
	var jobs, opsTenants int64
	for _, ti := range s.tenants.list() {
		jobs += ti.Jobs
		if ti.VMOps > 0 {
			opsTenants++
		}
	}
	if jobs != n {
		t.Fatalf("tenants account %d jobs, want %d", jobs, n)
	}
	if opsTenants != 1 {
		t.Fatalf("%d tenants carry vm ops, want 1 (the leader's)", opsTenants)
	}

	_, gauges := metricsOf(t, base)
	if gauges["server.coalesce.followers"] != n-1 {
		t.Fatalf("coalesce metrics: %v", gauges)
	}
}

// TestCoalescedFollowerStream: a follower's NDJSON stream replays the
// leader's history and then mirrors it live — terminating with its
// own done event.
func TestCoalescedFollowerStream(t *testing.T) {
	gate := make(chan struct{})
	s, base := testServer(t, Config{Workers: 1, Queue: 4, Coalesce: true})
	s.beforeJob = func() { <-gate }

	spec := Spec{Type: "sweep", Figure: "fig6a", Quick: true}
	leader := submitJob(t, base, spec)
	follower := submitJob(t, base, spec)
	if follower.CoalescedWith != leader.ID {
		t.Fatalf("follower coalesced with %q, want %s", follower.CoalescedWith, leader.ID)
	}
	close(gate)

	if final := waitTerminal(t, base, follower.ID); final.State != StateDone {
		t.Fatalf("follower ended %s: %s", final.State, final.Error)
	}
	lines := streamLines(t, base, follower.ID)
	if len(lines) < 3 { // pending + progress... + done
		t.Fatalf("follower stream too short: %v", lines)
	}
	if want := `{"event":"state","state":"pending"}`; lines[0] != want {
		t.Fatalf("follower stream starts %q, want replayed %q", lines[0], want)
	}
	last := lines[len(lines)-1]
	if last != `{"event":"done","state":"done"}` {
		t.Fatalf("follower stream ends %q", last)
	}
}

// TestSweepCheckpointResume: a daemon abandoned mid-sweep (simulated
// kill: its worker parks forever inside a point hook) leaves a
// running record plus point checkpoints in the store. A second daemon
// over the same store re-enqueues the job, restores the completed
// points, and finishes with a table byte-identical to a direct
// uninterrupted bench run.
func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	const interruptAfter = 3

	// Daemon 1: park the worker inside the sweep after 3 points. No
	// Shutdown — the goroutine stays parked for the test's lifetime,
	// exactly like a killed process as far as the store can tell.
	s1, err := New(Config{Workers: 1, Queue: 4, StoreDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	parked := make(chan struct{})
	s1.pointHook = func() {
		if count.Add(1) == interruptAfter {
			close(parked)
			select {} // never returns
		}
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	rec := submitJob(t, ts1.URL, Spec{Type: "sweep", Figure: "fig6a", Quick: true})
	select {
	case <-parked:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never reached the parking point")
	}

	// The store now holds a running record and ≥ interruptAfter-1
	// checkpointed points (notePoint precedes the OnPoint hook).
	st, err := openFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := st.loadCkpt(rec.ID)
	if err != nil || len(ck) < interruptAfter-1 {
		t.Fatalf("checkpoints on disk: %d (%v), want >= %d", len(ck), err, interruptAfter-1)
	}

	// Daemon 2 over the same store resumes and finishes the job.
	s2, base2 := testServer(t, Config{Workers: 1, Queue: 4, StoreDir: dir, Resume: true})
	final := waitTerminal(t, base2, rec.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job ended %s: %s", final.State, final.Error)
	}
	if !final.Resumed {
		t.Fatal("resumed job not marked Resumed")
	}
	body, _ := fetchResult(t, base2, rec.ID)

	// Byte-identical to an uninterrupted run: the library path with
	// the daemon's quick knobs.
	suite := bench.NewSuite()
	suite.MaxRunLinear = 1 << 11
	suite.MaxRunCubic = 32
	suite.Reps = 1
	suite.RT = s2.RT.ForkTenant(nil)
	sizes, err := bench.FigureSizes("fig6a", true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := suite.RunFigure("fig6a", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if body != want {
		t.Fatalf("resumed table differs from uninterrupted run:\n%s\nvs\n%s", body, want)
	}

	counters, gauges := metricsOf(t, base2)
	if gauges["server.resume.jobs"] != 1 {
		t.Fatalf("resume gauge: %v", gauges)
	}
	if counters["server.resume.points"] < interruptAfter-1 {
		t.Fatalf("resume points counter %d, want >= %d",
			counters["server.resume.points"], interruptAfter-1)
	}

	// Terminal jobs shed their checkpoint files.
	if ck, _ := st.loadCkpt(rec.ID); ck != nil {
		t.Fatal("checkpoint file survived job completion")
	}
}

// TestResumeOffRecoversFailed: with Resume off (the zero config), an
// interrupted sweep still recovers as failed — the pre-resume
// contract TestStoreRecovery pins stays the default.
func TestResumeOffRecoversFailed(t *testing.T) {
	dir := t.TempDir()
	st, err := openFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.put(Record{ID: "j000001", Spec: Spec{Type: "sweep", Figure: "fig6a", Quick: true},
		State: StateRunning, CreatedNS: 1}); err != nil {
		t.Fatal(err)
	}
	_, base := testServer(t, Config{Workers: 1, Queue: 4, StoreDir: dir})
	if rec := getJob(t, base, "j000001"); rec.State != StateFailed {
		t.Fatalf("with Resume off, interrupted sweep recovered as %s, want failed", rec.State)
	}
}
