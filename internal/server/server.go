package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config sizes the daemon. Zero values pick serving defaults (one
// worker, queue of 16, in-memory-only job store, Haswell machine).
type Config struct {
	// Addr is the listen address (":0" picks an ephemeral port; the
	// bound address is printed and available via Addr()).
	Addr string
	// Workers is the job-executor pool size.
	Workers int
	// Queue bounds the pending-job queue; a full queue rejects
	// submissions with 429 + Retry-After instead of buffering without
	// limit (admission control).
	Queue int
	// Machine names the daemon's default microarchitecture ("" =
	// Haswell, the paper's platform).
	Machine string
	// Backend selects the execution backend ("" or "vm" = interpreter;
	// "native" degrades gracefully when unavailable).
	Backend string
	// CacheDir enables the persistent compile cache — a warm directory
	// makes serving compile-free.
	CacheDir string
	// StoreDir enables the filesystem job store; jobs survive restarts.
	StoreDir string
	// Drain bounds graceful shutdown: in-flight jobs get this long to
	// finish before their contexts are cancelled. Zero means 5s.
	Drain time.Duration
	// ResultCache enables the spec-keyed result cache: a repeated
	// identical request is answered from the stored result without
	// touching the queue. Entries live in a byte-budgeted memory LRU
	// and, when CacheDir is set, under <CacheDir>/results on disk.
	ResultCache bool
	// ResultCacheMem / ResultCacheDisk override the cache byte budgets
	// (zero picks 64 MiB / 256 MiB).
	ResultCacheMem  int64
	ResultCacheDisk int64
	// Coalesce enables request coalescing: concurrent identical
	// requests attach as followers to the in-flight leader job and
	// share its single execution, progress stream, and result.
	Coalesce bool
	// Resume re-enqueues sweep jobs that were pending or running when
	// the previous process died, continuing from their persisted
	// point checkpoints. Off (the zero value), such jobs recover as
	// failed — the pre-resume behavior.
	Resume bool
	// Plan controls the adaptive execution planner ("" or "auto"
	// enables it — per kernel × size bucket the daemon calibrates and
	// picks the fastest backend/tier/lanes, persisting plans in
	// CacheDir; "off" pins the static interpreter path). Results are
	// byte-identical either way; see docs/PLANNER.md.
	Plan string
}

// Server is the ngend daemon: one shared base runtime (compile caches),
// per-tenant forked runtimes, a bounded FIFO job queue drained by a
// fixed worker pool, and a filesystem-backed job history.
type Server struct {
	cfg Config
	// RT is the base runtime every tenant forks from. Exposed so tests
	// can swap the backend (e.g. the nonexistent-GoTool trick).
	RT  *core.Runtime
	Reg *obs.Registry

	store   *fsStore
	jobs    *index
	tenants *tenantSet
	queue   chan *job

	// results is the spec-keyed result cache (nil when disabled).
	results *resultCache
	// inflight is the single-flight table: canonical spec hash → the
	// leader job currently queued or executing it. flightMu orders
	// lookups/registrations against leader completion; lock order is
	// flightMu > job.mu > stream.mu.
	flightMu sync.Mutex
	inflight map[string]*job

	httpSrv   *http.Server
	listener  net.Listener
	workers   sync.WaitGroup
	draining  atomic.Bool
	rejected  atomic.Int64
	coalesced atomic.Int64
	resumed   atomic.Int64

	// Test seams: beforeJob blocks a worker before it picks the job up
	// (queue-overflow tests), pointHook runs inside every sweep point
	// (cancellation tests). Both nil in production.
	beforeJob func()
	pointHook func()
}

// New builds a server from cfg: base runtime (machine, backend, disk
// cache), job store recovery, and the worker pool. The HTTP listener
// is not started until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 5 * time.Second
	}

	rt, err := baseRuntime(cfg)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:      cfg,
		RT:       rt,
		Reg:      obs.NewRegistry(),
		jobs:     newIndex(),
		tenants:  newTenantSet(rt),
		queue:    make(chan *job, cfg.Queue),
		inflight: map[string]*job{},
	}

	if cfg.ResultCache {
		dir := ""
		if cfg.CacheDir != "" {
			dir = filepath.Join(cfg.CacheDir, "results")
		}
		rc, err := newResultCache(dir, cfg.ResultCacheMem, cfg.ResultCacheDisk)
		if err != nil {
			return nil, err
		}
		s.results = rc
	}

	if cfg.StoreDir != "" {
		st, err := openFSStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.recover(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// baseRuntime assembles the daemon's shared runtime from the config.
func baseRuntime(cfg Config) (*core.Runtime, error) {
	rt := core.DefaultRuntime()
	if cfg.Machine != "" {
		arch, err := archFor(cfg.Machine)
		if err != nil {
			return nil, err
		}
		rt = rt.ForkTenant(arch)
	}
	if cfg.CacheDir != "" {
		d, err := core.OpenDiskCache(cfg.CacheDir, 0)
		if err != nil {
			return nil, err
		}
		rt.Disk = d
	}
	if cfg.Backend != "" && cfg.Backend != "vm" {
		if err := rt.UseBackend(cfg.Backend); err != nil {
			// Same graceful degradation as the CLI: serve on the
			// interpreter, results identical.
			fmt.Printf("ngend: backend %q unavailable, serving on vm: %v\n", cfg.Backend, err)
		}
	}
	switch cfg.Plan {
	case "", "auto":
		// Planner on by default: every tenant fork shares it, so
		// calibration from any job speeds all later identical shapes.
		// Plans persist beside the compile cache when CacheDir is set.
		rt.EnableAutoPlan()
	case "off":
	default:
		return nil, fmt.Errorf("unknown plan mode %q (auto | off)", cfg.Plan)
	}
	return rt, nil
}

// recover replays the job store. Terminal records become browsable
// history. Jobs that were pending or running when the process died:
// with Resume on, sweep jobs re-enqueue carrying their persisted point
// checkpoints (recover runs before the worker pool starts, so the
// buffered queue absorbs them); everything else — and every
// interrupted job with Resume off — is marked failed, because silently
// re-running side effects on boot would surprise more than a visible
// failure does.
func (s *Server) recover() error {
	recs, err := s.store.loadAll()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if !rec.State.Terminal() {
			if s.cfg.Resume && rec.Spec.Type == "sweep" && s.resumeJob(rec) {
				continue
			}
			rec.Error = fmt.Sprintf("ngend restarted while job was %s", rec.State)
			rec.State = StateFailed
			rec.FinishedNS = time.Now().UnixNano()
			if err := s.store.put(rec); err != nil {
				return err
			}
		}
		s.jobs.adopt(rec)
	}
	return nil
}

// resumeJob re-enqueues one interrupted sweep as pending, restoring
// its checkpoint map so the sweep skips every already-measured point.
// Reports false (caller falls back to the mark-failed path) only when
// the queue cannot hold the job.
func (s *Server) resumeJob(rec Record) bool {
	rec.State = StatePending
	rec.Error = ""
	rec.StartedNS = 0
	rec.Resumed = true
	j := s.jobs.readopt(rec)
	j.specHash = hashSpec(rec.Spec, s.RT.Arch.Name)
	if ck, err := s.store.loadCkpt(rec.ID); err == nil && len(ck) > 0 {
		j.ckpt = ck
	}
	select {
	case s.queue <- j:
	default:
		s.jobs.drop(j)
		return false
	}
	if s.cfg.Coalesce {
		s.inflight[j.specHash] = j
	}
	s.resumed.Add(1)
	s.persist(j)
	j.stream.publish(Event{Event: "state", State: StatePending}, false)
	return true
}

// submit validates, registers, persists and enqueues one job. Three
// fast paths precede the queue: a result-cache hit answers instantly
// as a terminal job; an identical in-flight job adopts the request as
// a coalesced follower; otherwise the job leads — it takes a queue
// slot (a full queue returns errBusy without registering anything)
// and registers in the single-flight table for later arrivals.
func (s *Server) submit(spec Spec) (*job, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, errDraining
	}
	hash := hashSpec(spec, s.RT.Arch.Name)

	if s.results != nil {
		if ent, ok := s.results.get(hash, canonicalSpec(spec, s.RT.Arch.Name)); ok {
			return s.cachedJob(spec, hash, ent), nil
		}
	}

	if s.cfg.Coalesce {
		return s.submitCoalescing(spec, hash)
	}

	// Reserve the queue slot first: admission control must not create
	// a job record it then cannot queue.
	j := s.jobs.add(spec)
	j.specHash = hash
	select {
	case s.queue <- j:
	default:
		s.jobs.drop(j)
		s.rejected.Add(1)
		return nil, errBusy
	}
	s.persist(j)
	j.stream.publish(Event{Event: "state", State: StatePending}, false)
	return j, nil
}

// cachedJob materializes a result-cache hit as an already-done job:
// browsable, streamable (single terminal event), persisted — but it
// never occupied a queue slot or executed anything. The tenant's job
// count still increments; its op counters don't, because no ops ran.
func (s *Server) cachedJob(spec Spec, hash string, ent resultEntry) *job {
	j := s.jobs.add(spec)
	j.specHash = hash
	now := time.Now().UnixNano()
	j.mu.Lock()
	j.rec.State = StateDone
	j.rec.StartedNS = now
	j.rec.FinishedNS = now
	j.rec.Result = ent.Result
	j.rec.ResultType = ent.ResultType
	j.rec.Cached = true
	j.mu.Unlock()
	j.cancel()
	s.tenants.get(spec.Tenant).absorb(nil)
	s.persist(j)
	j.stream.publish(Event{Event: "done", State: StateDone}, true)
	return j
}

// submitCoalescing is the single-flight submit path. The whole
// check-attach-or-lead sequence holds flightMu, so two identical
// concurrent submissions cannot both become leaders, and a follower
// can never attach to a leader that already cleared itself.
func (s *Server) submitCoalescing(spec Spec, hash string) (*job, error) {
	s.flightMu.Lock()
	if leader, ok := s.inflight[hash]; ok {
		leader.mu.Lock()
		if !leader.rec.State.Terminal() {
			f := s.jobs.add(spec)
			f.specHash = hash
			f.rec.CoalescedWith = leader.rec.ID
			// Copy the leader's event history before registering the
			// follower: publishJob fans out under leader.mu, so the
			// follower's stream sees every event exactly once.
			f.stream.adopt(leader.stream.history())
			leader.followers = append(leader.followers, f)
			leader.mu.Unlock()
			s.flightMu.Unlock()
			s.coalesced.Add(1)
			s.persist(f)
			return f, nil
		}
		// Leader reached a terminal state between hash lookup and
		// attach — stale entry; this request leads a fresh execution.
		leader.mu.Unlock()
		delete(s.inflight, hash)
	}

	j := s.jobs.add(spec)
	j.specHash = hash
	select {
	case s.queue <- j:
		s.inflight[hash] = j
		s.flightMu.Unlock()
	default:
		s.flightMu.Unlock()
		s.jobs.drop(j)
		s.rejected.Add(1)
		return nil, errBusy
	}
	s.persist(j)
	s.publishJob(j, Event{Event: "state", State: StatePending}, false)
	return j, nil
}

// publishJob fans one event out to the job's stream and — for
// non-terminal events — every follower's stream, while holding j.mu.
// The lock is what makes follower attachment gap-free: an attach
// either happens before the fan-out (the follower is in the list and
// receives the event live) or after it (the copied history already
// contains the event). Terminal events go to the leader's stream
// only; finalizeFollowers closes each follower with its own record.
func (s *Server) publishJob(j *job, ev Event, terminal bool) {
	j.mu.Lock()
	j.stream.publish(ev, terminal)
	if !terminal {
		for _, f := range j.followers {
			f.stream.publish(ev, false)
		}
	}
	j.mu.Unlock()
}

// clearInflight removes the job from the single-flight table if it is
// still the registered leader for its hash (a fresh leader may have
// replaced a terminal one already).
func (s *Server) clearInflight(j *job) {
	if j.specHash == "" {
		return
	}
	s.flightMu.Lock()
	if s.inflight[j.specHash] == j {
		delete(s.inflight, j.specHash)
	}
	s.flightMu.Unlock()
}

// finalizeFollowers adopts the leader's terminal record into every
// follower still open (one cancelled individually keeps its own
// state), persists them, closes their streams, and attributes one job
// (zero ops — the leader's tenant absorbed the execution's counts) to
// each follower's tenant. The follower set is frozen: attach refuses
// terminal leaders, and final is only taken after the leader's record
// turned terminal.
func (s *Server) finalizeFollowers(j *job, final Record) {
	j.mu.Lock()
	followers := j.followers
	j.followers = nil
	j.mu.Unlock()
	for _, f := range followers {
		f.mu.Lock()
		if f.rec.State.Terminal() {
			f.mu.Unlock()
			continue
		}
		f.rec.State = final.State
		f.rec.Error = final.Error
		f.rec.Result = final.Result
		f.rec.ResultType = final.ResultType
		f.rec.Plan = final.Plan
		f.rec.StartedNS = final.StartedNS
		f.rec.FinishedNS = final.FinishedNS
		frec := f.rec
		f.mu.Unlock()
		f.cancel()
		s.persist(f)
		f.stream.publish(Event{Event: "done", State: frec.State, Error: frec.Error}, true)
		s.tenants.get(frec.Spec.Tenant).absorb(nil)
	}
}

var (
	errBusy     = fmt.Errorf("job queue full")
	errDraining = fmt.Errorf("server is shutting down")
)

// worker drains the queue until it closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.beforeJob != nil {
			s.beforeJob()
		}
		s.execute(j)
	}
}

// execute runs one job through its lifecycle, persisting every
// transition and publishing stream events — to its own stream and,
// through publishJob, to every coalesced follower's.
func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.rec.State != StatePending { // cancelled while queued
		j.mu.Unlock()
		s.clearInflight(j)
		return
	}
	j.rec.State = StateRunning
	j.rec.StartedNS = time.Now().UnixNano()
	j.mu.Unlock()
	s.persist(j)
	s.publishJob(j, Event{Event: "state", State: StateRunning}, false)

	payload, ctype, counts, err := s.runJob(j)
	if counts != nil {
		s.tenants.get(j.snapshot().Spec.Tenant).absorb(counts)
	}

	j.mu.Lock()
	j.rec.FinishedNS = time.Now().UnixNano()
	switch {
	case j.ctx.Err() != nil || err == context.Canceled:
		j.rec.State = StateCancelled
		j.rec.Error = "cancelled"
	case err != nil:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	default:
		j.rec.State = StateDone
		j.rec.Result = payload
		j.rec.ResultType = ctype
	}
	final := j.rec
	j.mu.Unlock()
	j.cancel()
	// Unregister from the single-flight table before fan-out: any
	// identical request arriving from here on leads a fresh execution
	// (or hits the result cache, populated below).
	s.clearInflight(j)
	if final.State == StateDone && s.results != nil {
		s.results.put(j.specHash, canonicalSpec(final.Spec, s.RT.Arch.Name),
			final.Result, final.ResultType)
	}
	if final.State.Terminal() && s.store != nil {
		s.store.delCkpt(final.ID) // checkpoints are only for interrupted jobs
	}
	s.Reg.Histogram("server.job.us").Observe((final.FinishedNS - final.StartedNS) / 1e3)
	s.persist(j)
	s.publishJob(j, Event{Event: "done", State: final.State, Error: final.Error}, true)
	s.finalizeFollowers(j, final)
}

// cancelJob cancels a pending or running job. Pending jobs transition
// immediately; running jobs transition when the executor observes the
// context (sweeps poll it at point granularity).
func (s *Server) cancelJob(j *job) bool {
	j.mu.Lock()
	rec := j.rec
	if rec.State.Terminal() {
		j.mu.Unlock()
		return false
	}
	wasPending := rec.State == StatePending
	if wasPending {
		j.rec.State = StateCancelled
		j.rec.Error = "cancelled"
		j.rec.FinishedNS = time.Now().UnixNano()
	}
	final := j.rec
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	if wasPending {
		// A cancelled-while-queued leader never reaches the executor's
		// finalize path, so its followers (and the single-flight entry)
		// are settled here.
		s.clearInflight(j)
		s.persist(j)
		j.stream.publish(Event{Event: "done", State: StateCancelled, Error: "cancelled"}, true)
		s.finalizeFollowers(j, final)
	}
	return true
}

// persist writes the job's current record through the store (no-op
// without one).
func (s *Server) persist(j *job) {
	if s.store == nil {
		return
	}
	if err := s.store.put(j.snapshot()); err != nil {
		fmt.Printf("ngend: job store write failed: %v\n", err)
	}
}

// Start binds the listener and serves until Shutdown. It returns once
// the listener is bound; the printed line is the startup handshake
// scripts wait for.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	fmt.Printf("ngend: listening on %s\n", ln.Addr())
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("ngend: serve: %v\n", err)
		}
	}()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.listener == nil {
		return s.cfg.Addr
	}
	return s.listener.Addr().String()
}

// Shutdown drains gracefully: stop admitting, cancel still-queued
// jobs, give in-flight jobs the drain deadline to finish, then cancel
// whatever remains and close the HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	close(s.queue)

	// Cancel jobs still sitting in the queue — workers will skip them.
	for _, rec := range s.jobs.list() {
		if rec.State == StatePending {
			if j, ok := s.jobs.get(rec.ID); ok {
				s.cancelJob(j)
			}
		}
	}

	done := make(chan struct{})
	go func() { s.workers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.Drain):
		// Deadline passed: cancel in-flight jobs and wait for the
		// workers to observe it.
		for _, rec := range s.jobs.list() {
			if rec.State == StateRunning {
				if j, ok := s.jobs.get(rec.ID); ok {
					s.cancelJob(j)
				}
			}
		}
		<-done
	}

	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}

// publishMetrics refreshes the server-level gauges and counters; the
// HTTP middleware maintains the per-endpoint series continuously.
func (s *Server) publishMetrics() {
	r := s.Reg
	r.Gauge("server.queue.depth").Set(int64(len(s.queue)))
	r.Gauge("server.queue.capacity").Set(int64(cap(s.queue)))
	r.Gauge("server.workers").Set(int64(s.cfg.Workers))
	r.Gauge("server.jobs.rejected").Set(s.rejected.Load())
	for state, n := range s.jobs.byState() {
		r.Gauge("server.jobs." + string(state)).Set(int64(n))
	}
	var dropped int64
	for _, rec := range s.jobs.list() {
		if j, ok := s.jobs.get(rec.ID); ok {
			dropped += j.stream.droppedCount()
		}
	}
	r.Gauge("server.stream.dropped").Set(dropped)
	r.Gauge("server.store.corrupt").Set(s.store.Corrupt())

	r.Gauge("server.coalesce.followers").Set(s.coalesced.Load())
	s.flightMu.Lock()
	r.Gauge("server.coalesce.inflight").Set(int64(len(s.inflight)))
	s.flightMu.Unlock()
	r.Gauge("server.resume.jobs").Set(s.resumed.Load())
	if rc := s.results; rc != nil {
		r.Gauge("server.resultcache.hits").Set(rc.hits.Load())
		r.Gauge("server.resultcache.misses").Set(rc.misses.Load())
		r.Gauge("server.resultcache.stores").Set(rc.stores.Load())
		r.Gauge("server.resultcache.evictions").Set(rc.evictions.Load())
		r.Gauge("server.resultcache.bytes").Set(rc.memSize())
	}

	cs := s.RT.CacheStats()
	r.Gauge("server.cache.hits").Set(cs.Hits)
	r.Gauge("server.cache.misses").Set(cs.Misses)
	r.Gauge("server.cache.entries").Set(int64(cs.Entries))
	if total := cs.Hits + cs.Misses; total > 0 {
		r.Gauge("server.cache.hit_ratio_pct").Set(cs.Hits * 100 / total)
	}
	r.Gauge("server.compile.full").Set(core.FullCompiles())
	if ds, ok := s.RT.DiskStats(); ok {
		r.Gauge("server.diskcache.hits").Set(ds.Hits)
		r.Gauge("server.diskcache.misses").Set(ds.Misses)
		r.Gauge("server.diskcache.stores").Set(ds.Stores)
	}
	for name, v := range s.RT.BackendCounters() {
		r.Gauge("server.backend." + name).Set(v)
	}
	if p := s.RT.Planner; p != nil {
		for name, v := range p.Stats() {
			r.Gauge("server.plan." + name).Set(v)
		}
		r.Gauge("server.plan.plans").Set(int64(len(p.Snapshot())))
	}
}
