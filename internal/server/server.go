package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config sizes the daemon. Zero values pick serving defaults (one
// worker, queue of 16, in-memory-only job store, Haswell machine).
type Config struct {
	// Addr is the listen address (":0" picks an ephemeral port; the
	// bound address is printed and available via Addr()).
	Addr string
	// Workers is the job-executor pool size.
	Workers int
	// Queue bounds the pending-job queue; a full queue rejects
	// submissions with 429 + Retry-After instead of buffering without
	// limit (admission control).
	Queue int
	// Machine names the daemon's default microarchitecture ("" =
	// Haswell, the paper's platform).
	Machine string
	// Backend selects the execution backend ("" or "vm" = interpreter;
	// "native" degrades gracefully when unavailable).
	Backend string
	// CacheDir enables the persistent compile cache — a warm directory
	// makes serving compile-free.
	CacheDir string
	// StoreDir enables the filesystem job store; jobs survive restarts.
	StoreDir string
	// Drain bounds graceful shutdown: in-flight jobs get this long to
	// finish before their contexts are cancelled. Zero means 5s.
	Drain time.Duration
}

// Server is the ngend daemon: one shared base runtime (compile caches),
// per-tenant forked runtimes, a bounded FIFO job queue drained by a
// fixed worker pool, and a filesystem-backed job history.
type Server struct {
	cfg Config
	// RT is the base runtime every tenant forks from. Exposed so tests
	// can swap the backend (e.g. the nonexistent-GoTool trick).
	RT  *core.Runtime
	Reg *obs.Registry

	store   *fsStore
	jobs    *index
	tenants *tenantSet
	queue   chan *job

	httpSrv  *http.Server
	listener net.Listener
	workers  sync.WaitGroup
	draining atomic.Bool
	rejected atomic.Int64

	// Test seams: beforeJob blocks a worker before it picks the job up
	// (queue-overflow tests), pointHook runs inside every sweep point
	// (cancellation tests). Both nil in production.
	beforeJob func()
	pointHook func()
}

// New builds a server from cfg: base runtime (machine, backend, disk
// cache), job store recovery, and the worker pool. The HTTP listener
// is not started until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 5 * time.Second
	}

	rt, err := baseRuntime(cfg)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:     cfg,
		RT:      rt,
		Reg:     obs.NewRegistry(),
		jobs:    newIndex(),
		tenants: newTenantSet(rt),
		queue:   make(chan *job, cfg.Queue),
	}

	if cfg.StoreDir != "" {
		st, err := openFSStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.recover(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// baseRuntime assembles the daemon's shared runtime from the config.
func baseRuntime(cfg Config) (*core.Runtime, error) {
	rt := core.DefaultRuntime()
	if cfg.Machine != "" {
		arch, err := archFor(cfg.Machine)
		if err != nil {
			return nil, err
		}
		rt = rt.ForkTenant(arch)
	}
	if cfg.CacheDir != "" {
		d, err := core.OpenDiskCache(cfg.CacheDir, 0)
		if err != nil {
			return nil, err
		}
		rt.Disk = d
	}
	if cfg.Backend != "" && cfg.Backend != "vm" {
		if err := rt.UseBackend(cfg.Backend); err != nil {
			// Same graceful degradation as the CLI: serve on the
			// interpreter, results identical.
			fmt.Printf("ngend: backend %q unavailable, serving on vm: %v\n", cfg.Backend, err)
		}
	}
	return rt, nil
}

// recover replays the job store. Terminal records become browsable
// history; jobs that were pending or running when the process died are
// marked failed — their work is gone, and silently re-running side
// effects on boot would surprise more than a visible failure does.
func (s *Server) recover() error {
	recs, err := s.store.loadAll()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if !rec.State.Terminal() {
			rec.Error = fmt.Sprintf("ngend restarted while job was %s", rec.State)
			rec.State = StateFailed
			rec.FinishedNS = time.Now().UnixNano()
			if err := s.store.put(rec); err != nil {
				return err
			}
		}
		s.jobs.adopt(rec)
	}
	return nil
}

// submit validates, registers, persists and enqueues one job.
// A full queue returns errBusy without registering anything.
func (s *Server) submit(spec Spec) (*job, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, errDraining
	}
	// Reserve the queue slot first: admission control must not create
	// a job record it then cannot queue.
	j := s.jobs.add(spec)
	select {
	case s.queue <- j:
	default:
		s.jobs.drop(j)
		s.rejected.Add(1)
		return nil, errBusy
	}
	s.persist(j)
	j.stream.publish(Event{Event: "state", State: StatePending}, false)
	return j, nil
}

var (
	errBusy     = fmt.Errorf("job queue full")
	errDraining = fmt.Errorf("server is shutting down")
)

// worker drains the queue until it closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.beforeJob != nil {
			s.beforeJob()
		}
		s.execute(j)
	}
}

// execute runs one job through its lifecycle, persisting every
// transition and publishing stream events.
func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.rec.State != StatePending { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.rec.State = StateRunning
	j.rec.StartedNS = time.Now().UnixNano()
	j.mu.Unlock()
	s.persist(j)
	j.stream.publish(Event{Event: "state", State: StateRunning}, false)

	payload, ctype, counts, err := s.runJob(j)
	if counts != nil {
		s.tenants.get(j.snapshot().Spec.Tenant).absorb(counts)
	}

	j.mu.Lock()
	j.rec.FinishedNS = time.Now().UnixNano()
	switch {
	case j.ctx.Err() != nil || err == context.Canceled:
		j.rec.State = StateCancelled
		j.rec.Error = "cancelled"
	case err != nil:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	default:
		j.rec.State = StateDone
		j.rec.Result = payload
		j.rec.ResultType = ctype
	}
	final := j.rec
	j.mu.Unlock()
	j.cancel()
	s.persist(j)
	j.stream.publish(Event{Event: "done", State: final.State, Error: final.Error}, true)
}

// cancelJob cancels a pending or running job. Pending jobs transition
// immediately; running jobs transition when the executor observes the
// context (sweeps poll it at point granularity).
func (s *Server) cancelJob(j *job) bool {
	j.mu.Lock()
	rec := j.rec
	if rec.State.Terminal() {
		j.mu.Unlock()
		return false
	}
	wasPending := rec.State == StatePending
	if wasPending {
		j.rec.State = StateCancelled
		j.rec.Error = "cancelled"
		j.rec.FinishedNS = time.Now().UnixNano()
	}
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	if wasPending {
		s.persist(j)
		j.stream.publish(Event{Event: "done", State: StateCancelled, Error: "cancelled"}, true)
	}
	return true
}

// persist writes the job's current record through the store (no-op
// without one).
func (s *Server) persist(j *job) {
	if s.store == nil {
		return
	}
	if err := s.store.put(j.snapshot()); err != nil {
		fmt.Printf("ngend: job store write failed: %v\n", err)
	}
}

// Start binds the listener and serves until Shutdown. It returns once
// the listener is bound; the printed line is the startup handshake
// scripts wait for.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	fmt.Printf("ngend: listening on %s\n", ln.Addr())
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("ngend: serve: %v\n", err)
		}
	}()
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.listener == nil {
		return s.cfg.Addr
	}
	return s.listener.Addr().String()
}

// Shutdown drains gracefully: stop admitting, cancel still-queued
// jobs, give in-flight jobs the drain deadline to finish, then cancel
// whatever remains and close the HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	close(s.queue)

	// Cancel jobs still sitting in the queue — workers will skip them.
	for _, rec := range s.jobs.list() {
		if rec.State == StatePending {
			if j, ok := s.jobs.get(rec.ID); ok {
				s.cancelJob(j)
			}
		}
	}

	done := make(chan struct{})
	go func() { s.workers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.Drain):
		// Deadline passed: cancel in-flight jobs and wait for the
		// workers to observe it.
		for _, rec := range s.jobs.list() {
			if rec.State == StateRunning {
				if j, ok := s.jobs.get(rec.ID); ok {
					s.cancelJob(j)
				}
			}
		}
		<-done
	}

	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}

// publishMetrics refreshes the server-level gauges and counters; the
// HTTP middleware maintains the per-endpoint series continuously.
func (s *Server) publishMetrics() {
	r := s.Reg
	r.Gauge("server.queue.depth").Set(int64(len(s.queue)))
	r.Gauge("server.queue.capacity").Set(int64(cap(s.queue)))
	r.Gauge("server.workers").Set(int64(s.cfg.Workers))
	r.Gauge("server.jobs.rejected").Set(s.rejected.Load())
	for state, n := range s.jobs.byState() {
		r.Gauge("server.jobs." + string(state)).Set(int64(n))
	}
	var dropped int64
	for _, rec := range s.jobs.list() {
		if j, ok := s.jobs.get(rec.ID); ok {
			dropped += j.stream.droppedCount()
		}
	}
	r.Gauge("server.stream.dropped").Set(dropped)
	r.Gauge("server.store.corrupt").Set(s.store.Corrupt())

	cs := s.RT.CacheStats()
	r.Gauge("server.cache.hits").Set(cs.Hits)
	r.Gauge("server.cache.misses").Set(cs.Misses)
	r.Gauge("server.cache.entries").Set(int64(cs.Entries))
	if total := cs.Hits + cs.Misses; total > 0 {
		r.Gauge("server.cache.hit_ratio_pct").Set(cs.Hits * 100 / total)
	}
	r.Gauge("server.compile.full").Set(core.FullCompiles())
	if ds, ok := s.RT.DiskStats(); ok {
		r.Gauge("server.diskcache.hits").Set(ds.Hits)
		r.Gauge("server.diskcache.misses").Set(ds.Misses)
		r.Gauge("server.diskcache.stores").Set(ds.Stores)
	}
	for name, v := range s.RT.BackendCounters() {
		r.Gauge("server.backend." + name).Set(v)
	}
}
