package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/plan"
)

// State is a job lifecycle state. Transitions are strictly
// pending → running → one of the terminal states; cancel moves a
// pending or running job to StateCancelled.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is the client-supplied half of a job — the POST /v1/jobs body.
// Type selects which fields matter: "stage" and "execute" use
// Kernel/Machine/N, "sweep" uses Figure/Quick/Sizes/Workers.
type Spec struct {
	Type   string `json:"type"`
	Tenant string `json:"tenant,omitempty"`

	// Stage + execute requests.
	Kernel  string `json:"kernel,omitempty"`
	Machine string `json:"machine,omitempty"`
	N       int    `json:"n,omitempty"`

	// Sweep requests.
	Figure string `json:"figure,omitempty"`
	Quick  bool   `json:"quick,omitempty"`
	Sizes  []int  `json:"sizes,omitempty"`
	// Workers bounds the sweep's point-measurement parallelism (the
	// ngen -j knob). 0 means 1; results are identical at any setting.
	Workers int `json:"workers,omitempty"`
}

// Record is the persisted, client-visible job state: the spec plus
// lifecycle, timestamps, and — once done — the inline result payload.
type Record struct {
	ID         string `json:"id"`
	Spec       Spec   `json:"spec"`
	State      State  `json:"state"`
	Error      string `json:"error,omitempty"`
	Result     string `json:"result,omitempty"`
	ResultType string `json:"result_type,omitempty"`
	// Cached marks a job answered from the result cache — it never
	// occupied a queue slot or executed anything.
	Cached bool `json:"cached,omitempty"`
	// CoalescedWith names the leader job whose single execution this
	// job shared (request coalescing).
	CoalescedWith string `json:"coalesced_with,omitempty"`
	// Resumed marks a sweep job re-adopted after a daemon restart; it
	// continues from its persisted checkpoints instead of starting
	// over.
	Resumed bool `json:"resumed,omitempty"`
	// Plan records the adaptive planner's decisions touching this job
	// (per kernel × size bucket: chosen strategy, predicted and
	// measured cost, full candidate table). Empty when the planner is
	// off or the job executed nothing.
	Plan       []plan.View `json:"plan,omitempty"`
	CreatedNS  int64       `json:"created_ns"`
	StartedNS  int64       `json:"started_ns,omitempty"`
	FinishedNS int64       `json:"finished_ns,omitempty"`
	// Checksum guards the persisted record against torn or mangled
	// files; see fsStore.
	Checksum string `json:"checksum,omitempty"`
}

// job is one queued unit of work: the record under its own lock, the
// cancellation context the executor polls, and the progress stream.
type job struct {
	mu     sync.Mutex
	rec    Record
	ctx    context.Context
	cancel context.CancelFunc
	stream *stream

	// specHash is the canonical content hash of the spec — the
	// single-flight and result-cache key. Set once at submission,
	// before the job is visible to any other goroutine.
	specHash string
	// followers are coalesced jobs riding this job's execution: they
	// mirror its stream events and adopt its terminal record. Guarded
	// by mu; frozen once the record turns terminal.
	followers []*job

	// ckpt accumulates the sweep's completed-point checkpoints; ckptMu
	// also orders the store writes so the persisted file never goes
	// backwards. Only sweep jobs use these.
	ckptMu sync.Mutex
	ckpt   map[int][]bench.PointCkpt
}

// snapshot returns a copy of the record for rendering.
func (j *job) snapshot() Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// index is the in-memory job table: id → job, plus submission order
// for listings and the id sequence (recovered from the store on boot).
type index struct {
	mu   sync.Mutex
	jobs map[string]*job
	seq  int
}

func newIndex() *index { return &index{jobs: map[string]*job{}} }

// add registers a new job under a fresh id.
func (ix *index) add(spec Spec) *job {
	ctx, cancel := context.WithCancel(context.Background())
	ix.mu.Lock()
	ix.seq++
	j := &job{
		rec: Record{
			ID:        fmt.Sprintf("j%06d", ix.seq),
			Spec:      spec,
			State:     StatePending,
			CreatedNS: time.Now().UnixNano(),
		},
		ctx:    ctx,
		cancel: cancel,
		stream: newStream(),
	}
	ix.jobs[j.rec.ID] = j
	ix.mu.Unlock()
	return j
}

// adopt registers a job recovered from the store, keeping the id
// sequence ahead of every recovered id.
func (ix *index) adopt(rec Record) *job {
	j := &job{rec: rec, stream: newStream()}
	if rec.State.Terminal() {
		j.stream.close()
	}
	ix.mu.Lock()
	ix.jobs[rec.ID] = j
	var n int
	if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > ix.seq {
		ix.seq = n
	}
	ix.mu.Unlock()
	return j
}

// readopt registers a recovered non-terminal job for re-execution
// (sweep resume): unlike adopt it gets a live context and an open
// stream, because the job is going back on the queue.
func (ix *index) readopt(rec Record) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{rec: rec, ctx: ctx, cancel: cancel, stream: newStream()}
	ix.mu.Lock()
	ix.jobs[rec.ID] = j
	var n int
	if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > ix.seq {
		ix.seq = n
	}
	ix.mu.Unlock()
	return j
}

// drop unregisters a job that never made it into the queue (admission
// rejection) so it leaves no trace in listings or the store.
func (ix *index) drop(j *job) {
	j.cancel()
	ix.mu.Lock()
	delete(ix.jobs, j.rec.ID)
	ix.mu.Unlock()
}

// get looks a job up by id.
func (ix *index) get(id string) (*job, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	j, ok := ix.jobs[id]
	return j, ok
}

// list returns record snapshots sorted by id (= submission order).
func (ix *index) list() []Record {
	ix.mu.Lock()
	jobs := make([]*job, 0, len(ix.jobs))
	for _, j := range ix.jobs {
		jobs = append(jobs, j)
	}
	ix.mu.Unlock()
	out := make([]Record, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// byState counts jobs per lifecycle state.
func (ix *index) byState() map[State]int {
	out := map[State]int{}
	for _, rec := range ix.list() {
		out[rec.State]++
	}
	return out
}
