package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeFileOrFatal(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep := BenchReport{
		"fig6a": {Seconds: 1.25, AllocsPerOp: 0.0003, Ops: 123456},
		"fig6b": {Seconds: 9.5, AllocsPerOp: 0, Ops: 7890123},
	}
	if err := WriteBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mutated the report:\nwrote: %+v\nread:  %+v", rep, got)
	}
	if figs := got.Figures(); len(figs) != 2 || figs[0] != "fig6a" || figs[1] != "fig6b" {
		t.Fatalf("Figures() order: %v", figs)
	}
}

func TestBenchReportValidation(t *testing.T) {
	cases := map[string]BenchReport{
		"empty":         {},
		"zero seconds":  {"x": {Seconds: 0, Ops: 1}},
		"zero ops":      {"x": {Seconds: 1, Ops: 0}},
		"neg allocs/op": {"x": {Seconds: 1, Ops: 1, AllocsPerOp: -1}},
	}
	for name, rep := range cases {
		if err := rep.Validate(); err == nil {
			t.Errorf("%s: invalid report passed validation", name)
		}
		if err := WriteBenchJSON(filepath.Join(t.TempDir(), "x.json"), rep); err == nil {
			t.Errorf("%s: WriteBenchJSON accepted an invalid report", name)
		}
	}
}

func TestReadBenchJSONRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if _, err := ReadBenchJSON(path); err == nil {
		t.Error("missing file must error")
	}
	writeFileOrFatal(t, path, "{not json")
	if _, err := ReadBenchJSON(path); err == nil {
		t.Error("malformed JSON must error")
	}
}
