package bench

import (
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

var workersAttr = regexp.MustCompile(`workers=\d+`)

// tracedRun measures a small Fig6a sweep with observability attached
// and returns the structural skeleton, the registry snapshot, and the
// merged sweep counters.
func tracedRun(t *testing.T, workers int) (string, obs.Snapshot, map[string]int64) {
	t.Helper()
	s := quickSuite()
	s.Workers = workers
	tr := obs.New()
	reg := obs.NewRegistry()
	s.Attach(tr, reg)
	if _, err := s.Fig6a([]int{64, 256, 1024, 4096}); err != nil {
		t.Fatal(err)
	}
	s.PublishMetrics()
	// The once-per-worker compile spans land under whichever point each
	// worker measured first — the single scheduling-dependent part of
	// the tree (see forEachPoint). The sweep span's workers attribute
	// reports the actual worker count, so normalize it. Everything else
	// must be identical.
	skel := tr.Skeleton(func(name string) bool { return name == "ngen.compile" })
	skel = workersAttr.ReplaceAllString(skel, "workers=W")
	counts := map[string]int64{}
	for k, v := range s.SweepCounts {
		counts[k] = v
	}
	return skel, reg.Snapshot(), counts
}

// TestTraceDeterminismAcrossWorkers is the issue's guarantee: the span
// tree (modulo the per-worker compile placement) and every
// execution-derived counter total are identical between -j 1 and -j 8
// runs.
func TestTraceDeterminismAcrossWorkers(t *testing.T) {
	skel1, snap1, counts1 := tracedRun(t, 1)
	skel8, snap8, counts8 := tracedRun(t, 8)

	if skel1 != skel8 {
		t.Fatalf("span tree differs between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s", skel1, skel8)
	}
	if !strings.Contains(skel1, "sweep:fig6a") || !strings.Contains(skel1, "point#3 [n=4096]") {
		t.Fatalf("skeleton missing sweep structure:\n%s", skel1)
	}
	if !strings.Contains(skel1, "call:saxpy") {
		t.Fatalf("kernel call spans missing:\n%s", skel1)
	}

	if !reflect.DeepEqual(counts1, counts8) {
		t.Fatalf("merged sweep counters differ:\n-j1: %v\n-j8: %v", counts1, counts8)
	}

	// Execution-derived metric counters are worker-count invariant; the
	// compile-cache hit/miss counters are not (each worker compiles
	// once against the shared artifact cache — documented behaviour),
	// and hits+misses must still equal total compile calls.
	for _, name := range []string{"ngen.kernel.call", "bench.points"} {
		if a, b := snap1.Counters[name], snap8.Counters[name]; a != b || a == 0 {
			t.Errorf("counter %s: -j1=%d -j8=%d (want equal, nonzero)", name, a, b)
		}
	}
	c1 := snap1.Counters["ngen.cache.hit"] + snap1.Counters["ngen.cache.miss"]
	c8 := snap8.Counters["ngen.cache.hit"] + snap8.Counters["ngen.cache.miss"]
	if c1 < 1 || c8 < c1 {
		t.Errorf("compile calls: -j1=%d -j8=%d (want ≥1, per-worker ≥ serial)", c1, c8)
	}

	// The merged vm.op.* gauges must mirror the sweep counters exactly
	// at either worker count.
	for op, n := range counts1 {
		if got := snap8.Gauges["vm.op."+op]; got != n {
			t.Errorf("vm.op.%s gauge = %d, want %d", op, got, n)
		}
	}
}

// TestSweepWorkerUtilizationMetrics: the registry sees worker counts
// and per-worker point distribution after a parallel sweep.
func TestSweepWorkerUtilizationMetrics(t *testing.T) {
	s := quickSuite()
	s.Workers = 2
	reg := obs.NewRegistry()
	s.Attach(nil, reg)
	if _, err := s.Fig6a([]int{64, 128, 256, 512}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("bench.sweep.workers").Load(); got != 2 {
		t.Errorf("bench.sweep.workers = %d, want 2", got)
	}
	h := reg.Histogram("bench.worker.points").Snapshot()
	if h.Count != 2 || h.Sum != 4 {
		t.Errorf("worker points histogram: %+v, want 2 workers covering 4 points", h)
	}
}

// TestSweepDisabledObsUnchanged: without Attach, sweeps still run and
// no tracer/registry state appears (the nil fast path).
func TestSweepDisabledObsUnchanged(t *testing.T) {
	s := quickSuite()
	s.Workers = 4
	if _, err := s.Fig6a([]int{64, 128}); err != nil {
		t.Fatal(err)
	}
	s.PublishMetrics() // no registry: must be a no-op, not a panic
	if s.Tracer != nil || s.Metrics != nil {
		t.Fatal("suite must stay unobserved by default")
	}
}
