package bench

import (
	"testing"
)

// quickSuite keeps test runtimes small; extrapolation covers the large
// sizes exactly as in real runs.
func quickSuite() *Suite {
	s := NewSuite()
	s.MaxRunLinear = 1 << 10
	s.MaxRunCubic = 24
	s.Reps = 1
	return s
}

func TestFig6aShape(t *testing.T) {
	s := quickSuite()
	series, err := s.Fig6a(Pow2Sizes(6, 22))
	if err != nil {
		t.Fatal(err)
	}
	java, lms := series[0], series[1]

	// Paper: "For small sizes that are L1 cache resident the Java
	// implementation does better" (JNI cost).
	jSmall, _ := java.At(64)
	lSmall, _ := lms.At(64)
	if lSmall.Perf >= jSmall.Perf {
		t.Errorf("at n=64 LMS %.2f should lose to Java %.2f (JNI overhead)",
			lSmall.Perf, jSmall.Perf)
	}

	// Paper: LMS wins for larger sizes (AVX+FMA vs SSE).
	jBig, _ := java.At(1 << 14)
	lBig, _ := lms.At(1 << 14)
	if lBig.Perf <= jBig.Perf {
		t.Errorf("at n=2^14 LMS %.2f should beat Java %.2f", lBig.Perf, jBig.Perf)
	}

	// There must be exactly one crossover (Java's lead ends once).
	crossings := 0
	prevLead := jSmall.Perf > lSmall.Perf
	for _, p := range java.Points {
		q, _ := lms.At(p.N)
		lead := p.Perf > q.Perf
		if lead != prevLead {
			crossings++
			prevLead = lead
		}
	}
	if crossings != 1 {
		t.Errorf("Java/LMS crossover count = %d, want 1", crossings)
	}

	// Both decay towards memory bandwidth at the largest sizes.
	jHuge, _ := java.At(1 << 22)
	lHuge, _ := lms.At(1 << 22)
	if jHuge.Level != "Mem" || lHuge.Level != "Mem" {
		t.Errorf("2^22 working set should be memory-resident: %s/%s", jHuge.Level, lHuge.Level)
	}
	if lHuge.Perf > lBig.Perf {
		t.Errorf("LMS performance should decay out of cache: %.2f → %.2f", lBig.Perf, lHuge.Perf)
	}
}

func TestFig6bShape(t *testing.T) {
	s := quickSuite()
	series, err := s.Fig6b([]int{8, 64, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	triple, blocked, lms := series[0], series[1], series[2]

	for _, n := range []int{64, 256, 1024} {
		tr, _ := triple.At(n)
		bl, _ := blocked.At(n)
		lm, _ := lms.At(n)
		if !(lm.Perf > bl.Perf && lm.Perf > tr.Perf) {
			t.Errorf("n=%d: LMS %.2f must beat blocked %.2f and triple %.2f",
				n, lm.Perf, bl.Perf, tr.Perf)
		}
	}

	// Paper: "improvements up to 5x over the blocked Java implementation,
	// and over 7.8x over the baseline triple loop" — allow a generous
	// modeling band around those factors.
	sBlocked := Speedup(blocked, lms)
	sTriple := Speedup(triple, lms)
	if sBlocked < 3 || sBlocked > 12 {
		t.Errorf("LMS/blocked speedup %.1f outside the plausible band of the paper's 5x", sBlocked)
	}
	if sTriple < 5 || sTriple > 25 {
		t.Errorf("LMS/triple speedup %.1f outside the plausible band of the paper's 7.8x", sTriple)
	}
	if sTriple <= sBlocked {
		t.Errorf("triple-loop speedup %.1f must exceed blocked speedup %.1f", sTriple, sBlocked)
	}

	// The triple loop decays out of cache (strided B accesses); the
	// blocked version holds.
	tr64, _ := triple.At(64)
	tr1024, _ := triple.At(1024)
	bl64, _ := blocked.At(64)
	bl1024, _ := blocked.At(1024)
	if tr1024.Perf >= tr64.Perf*0.8 {
		t.Errorf("triple loop should decay out of cache: %.2f → %.2f", tr64.Perf, tr1024.Perf)
	}
	if bl1024.Perf < bl64.Perf*0.8 {
		t.Errorf("blocked version should hold out of cache: %.2f → %.2f", bl64.Perf, bl1024.Perf)
	}
}

func TestFig7Shape(t *testing.T) {
	s := quickSuite()
	series, err := s.Fig7(Pow2Sizes(7, 26))
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Series {
		for _, ser := range series {
			if ser.Name == name {
				return ser
			}
		}
		t.Fatalf("missing series %s", name)
		return Series{}
	}
	j32, j16, j8, j4 := get("Java 32-bit"), get("Java 16-bit"), get("Java 8-bit"), get("Java 4-bit")
	l32, l16, l8, l4 := get("LMS generated 32-bit"), get("LMS generated 16-bit"),
		get("LMS generated 8-bit"), get("LMS generated 4-bit")

	// Every LMS precision beats its Java counterpart at every size past
	// the warm-up region.
	for _, pair := range []struct {
		j, l Series
	}{{j32, l32}, {j16, l16}, {j8, l8}, {j4, l4}} {
		for _, p := range pair.l.Points {
			if p.N < 1024 {
				continue
			}
			q, _ := pair.j.At(p.N)
			if p.Perf <= q.Perf {
				t.Errorf("%s at n=%d: %.2f must beat %s %.2f",
					pair.l.Name, p.N, p.Perf, pair.j.Name, q.Perf)
			}
		}
	}

	// Java 4-bit is the slowest Java series (scalar nibble decoding).
	if !(j4.Max() < j32.Max() && j4.Max() < j16.Max() && j4.Max() < j8.Max()) {
		t.Errorf("Java 4-bit max %.2f must be the slowest (32:%.2f 16:%.2f 8:%.2f)",
			j4.Max(), j32.Max(), j16.Max(), j8.Max())
	}

	// The paper's speedup ordering: 4-bit ≫ 8-bit > 32-bit ≈ 16-bit.
	s4, s8 := Speedup(j4, l4), Speedup(j8, l8)
	s16, s32 := Speedup(j16, l16), Speedup(j32, l32)
	if !(s4 > s8 && s8 > s32 && s8 > s16) {
		t.Errorf("speedup ordering violated: 4:%.1f 8:%.1f 16:%.1f 32:%.1f", s4, s8, s16, s32)
	}
	if s4 < 20 || s4 > 80 {
		t.Errorf("4-bit speedup %.1f outside the plausible band of the paper's 40x", s4)
	}
	if s32 < 3 || s32 > 9 {
		t.Errorf("32-bit speedup %.1f outside the plausible band of the paper's 5.4x", s32)
	}

	// At the largest sizes the low-precision kernels keep a bandwidth
	// advantage: LMS 4-bit must beat LMS 8-bit must beat LMS 32-bit.
	big := 1 << 26
	p4, _ := l4.At(big)
	p8, _ := l8.At(big)
	p32, _ := l32.At(big)
	if !(p4.Perf > p8.Perf && p8.Perf > p32.Perf) {
		t.Errorf("memory-resident ordering violated: 4:%.2f 8:%.2f 32:%.2f",
			p4.Perf, p8.Perf, p32.Perf)
	}
}

// TestExtrapolationExactness checks the size-scaling shortcut against a
// direct run: for these uniformly structured kernels at power-of-two
// sizes, scaled counts must reproduce the direct measurement exactly
// (modulo the unscaled JNI constant).
func TestExtrapolationExactness(t *testing.T) {
	direct := NewSuite()
	direct.MaxRunLinear = 1 << 12 // runs n=4096 directly
	direct.Reps = 1
	extrap := NewSuite()
	extrap.MaxRunLinear = 1 << 10 // extrapolates n=4096 from n=1024
	extrap.Reps = 1

	sizes := []int{1 << 12}
	d, err := direct.Fig6a(sizes)
	if err != nil {
		t.Fatal(err)
	}
	e, err := extrap.Fig6a(sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		dp, ep := d[i].Points[0], e[i].Points[0]
		rel := (dp.Perf - ep.Perf) / dp.Perf
		if rel < 0 {
			rel = -rel
		}
		// The JNI constant is amortized differently (it is measured at
		// the run size but charged once either way); allow a small
		// remainder from integer rounding of scaled counts.
		if rel > 0.02 {
			t.Errorf("%s at n=4096: direct %.4f vs extrapolated %.4f (rel %.4f)",
				d[i].Name, dp.Perf, ep.Perf, rel)
		}
	}
}

func TestSpeedupHelper(t *testing.T) {
	base := Series{Name: "b", Points: []Point{{N: 1, Perf: 1}, {N: 2, Perf: 2}}}
	comp := Series{Name: "c", Points: []Point{{N: 1, Perf: 3}, {N: 2, Perf: 2}}}
	if got := Speedup(base, comp); got != 3 {
		t.Errorf("Speedup = %v, want 3", got)
	}
}

func TestFormatRendersAllSeries(t *testing.T) {
	s := quickSuite()
	series, err := s.Fig6a([]int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	out := Format("Figure 6a — SAXPY", "flops/cycle", series)
	for _, want := range []string{"Java SAXPY", "LMS generated SAXPY", "64", "128", "flops/cycle"} {
		if !contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
