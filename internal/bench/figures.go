package bench

import "fmt"

// Figure titles and metric labels as cmd/ngen prints them. RunFigure
// renders through the same Format call as the CLI, so a sweep served
// over HTTP by ngend is byte-identical to the terminal output.
var figureMeta = map[string]struct{ title, metric string }{
	"fig6a": {"Figure 6a — SAXPY", "flops/cycle"},
	"fig6b": {"Figure 6b — Matrix-Matrix-Multiplication", "flops/cycle"},
	"fig7":  {"Figure 7 — Variable Precision dot product", "ops/cycle"},
}

// Figures lists the runnable figure sweeps in their CLI order.
func FigureNames() []string { return []string{"fig6a", "fig6b", "fig7"} }

// FigureSizes returns the size axis cmd/ngen sweeps for one figure —
// the single source of truth shared by the CLI and the ngend sweep
// jobs, so both measure identical points. quick selects the smoke-run
// axis the CLI uses under -quick.
func FigureSizes(figure string, quick bool) ([]int, error) {
	switch figure {
	case "fig6a":
		if quick {
			return Pow2Sizes(6, 16), nil
		}
		return Pow2Sizes(6, 22), nil
	case "fig6b":
		if quick {
			return []int{8, 64, 128, 256, 512}, nil
		}
		return MMMSizes(), nil
	case "fig7":
		if quick {
			return Pow2Sizes(7, 18), nil
		}
		return Pow2Sizes(7, 26), nil
	default:
		return nil, fmt.Errorf("bench: unknown figure %q", figure)
	}
}

// RunFigure runs one named figure sweep over the given sizes (nil
// means the figure's full axis) and returns the formatted table text,
// exactly the bytes cmd/ngen prints for the same figure and sizes.
func (s *Suite) RunFigure(figure string, sizes []int) (string, error) {
	meta, ok := figureMeta[figure]
	if !ok {
		return "", fmt.Errorf("bench: unknown figure %q", figure)
	}
	var (
		ss  []Series
		err error
	)
	switch figure {
	case "fig6a":
		ss, err = s.Fig6a(sizes)
	case "fig6b":
		ss, err = s.Fig6b(sizes)
	case "fig7":
		ss, err = s.Fig7(sizes)
	}
	if err != nil {
		return "", err
	}
	return Format(meta.title, meta.metric, ss), nil
}
