package bench

import (
	"reflect"
	"testing"

	"repro/internal/vm"
)

// runAll measures small versions of all three figures on one suite and
// returns their formatted tables concatenated.
func runAll(t *testing.T, workers int) (string, vm.Counter) {
	t.Helper()
	s := quickSuite()
	s.Workers = workers
	out := ""
	f6a, err := s.Fig6a([]int{64, 256, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	out += Format("Figure 6a — SAXPY", "flops/cycle", f6a)
	f6b, err := s.Fig6b([]int{8, 16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	out += Format("Figure 6b — MMM", "flops/cycle", f6b)
	f7, err := s.Fig7([]int{128, 512, 2048})
	if err != nil {
		t.Fatal(err)
	}
	out += Format("Figure 7 — dot products", "ops/cycle", f7)
	return out, s.SweepCounts
}

// TestParallelSweepDeterminism is the tentpole guarantee: any worker
// count produces byte-identical figure tables, and the merged sweep
// counters equal the serial totals.
func TestParallelSweepDeterminism(t *testing.T) {
	serialOut, serialCounts := runAll(t, 1)
	for _, workers := range []int{2, 8} {
		out, counts := runAll(t, workers)
		if out != serialOut {
			t.Fatalf("-j %d output differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, serialOut, out)
		}
		if !reflect.DeepEqual(counts, serialCounts) {
			t.Fatalf("-j %d merged counters differ from serial totals\nserial:   %v\nparallel: %v",
				workers, serialCounts, counts)
		}
	}
	if len(serialCounts) == 0 {
		t.Fatal("sweeps must accumulate merged counters")
	}
}

// TestSweepSharesCompileCache: workers fork the suite runtime, so a
// multi-worker sweep compiles each distinct kernel once and hits the
// shared cache for every other (worker, size) pair.
func TestSweepSharesCompileCache(t *testing.T) {
	s := quickSuite()
	s.Workers = 4
	if _, err := s.Fig6a([]int{64, 128, 256, 512, 1024}); err != nil {
		t.Fatal(err)
	}
	st := s.RT.CacheStats()
	if st.Entries != 1 {
		t.Errorf("Fig6a compiles one staged kernel, cache holds %d entries", st.Entries)
	}
	// Each worker compiles once (memoized per worker); concurrent first
	// compiles may race to a miss, but never more than one per worker.
	if total := st.Hits + st.Misses; total < 1 || total > 4 {
		t.Errorf("expected 1–4 compile calls across 4 workers, got %d hits + %d misses",
			st.Hits, st.Misses)
	}
}

// TestWorkersZeroAndExcess: degenerate worker counts normalize instead
// of deadlocking — 0 runs serially, more workers than points is capped.
func TestWorkersZeroAndExcess(t *testing.T) {
	s := quickSuite()
	s.Workers = 0
	if _, err := s.Fig6a([]int{64}); err != nil {
		t.Fatal(err)
	}
	s.Workers = 64
	if _, err := s.Fig6a([]int{64, 128}); err != nil {
		t.Fatal(err)
	}
}
