package bench

import (
	"fmt"

	"repro/internal/hotspot"
	"repro/internal/kernels"
	"repro/internal/quant"
	"repro/internal/vm"
)

// randSlice fills deterministic pseudo-random floats in [-1, 1).
func randSlice(n int, seed uint64) []float32 {
	rng := vm.NewXorshift(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.Uniform()*2 - 1)
	}
	return out
}

// capSize clamps a run size.
func capSize(n, max int) int {
	if n > max {
		return max
	}
	return n
}

// Fig6a regenerates Figure 6a: SAXPY performance, Java vs LMS-generated,
// in flops/cycle over the given sizes (default 2^6..2^22).
func (s *Suite) Fig6a(sizes []int) ([]Series, error) {
	if sizes == nil {
		sizes = Pow2Sizes(6, 22)
	}
	staged := Series{Name: "LMS generated SAXPY"}
	java := Series{Name: "Java SAXPY"}

	kn, err := s.RT.Compile(kernels.StagedSaxpy(s.RT.Arch.Features))
	if err != nil {
		return nil, err
	}
	jm, err := s.loadJava(kernels.JavaSaxpy(s.RT.Arch.Features))
	if err != nil {
		return nil, err
	}

	for _, n := range sizes {
		runN := capSize(n, s.MaxRunLinear)
		a := vm.PinF32(randSlice(runN, 1))
		b := vm.PinF32(randSlice(runN, 2))
		footprint := 8 * n // two float arrays

		p, err := s.measureStaged(kn, n, runN, kernels.SaxpyFlops, footprint,
			func(rn int) error {
				_, err := kn.Call(a, b, float32(2.5), rn)
				return err
			})
		if err != nil {
			return nil, err
		}
		staged.Points = append(staged.Points, p)

		q, err := s.measureJava(jm, n, runN, kernels.SaxpyFlops, footprint,
			func(rn int) error {
				_, err := jm.InvokeAt(hotspot.TierC2, vm.PtrValue(a, 0),
					vm.PtrValue(b, 0), vm.F32Value(2.5), vm.IntValue(rn))
				return err
			})
		if err != nil {
			return nil, err
		}
		java.Points = append(java.Points, q)
	}
	return []Series{java, staged}, nil
}

// Fig6b regenerates Figure 6b: matrix-matrix multiplication, triple-loop
// Java vs blocked Java vs LMS-generated AVX, in flops/cycle.
func (s *Suite) Fig6b(sizes []int) ([]Series, error) {
	if sizes == nil {
		sizes = MMMSizes()
	}
	staged := Series{Name: "LMS generated MMM"}
	triple := Series{Name: "Java MMM (triple loop)"}
	blocked := Series{Name: "Java MMM"}

	kn, err := s.RT.Compile(kernels.StagedMMM(s.RT.Arch.Features))
	if err != nil {
		return nil, err
	}
	jt, err := s.loadJava(kernels.JavaMMMTriple(s.RT.Arch.Features))
	if err != nil {
		return nil, err
	}
	jb, err := s.loadJava(kernels.JavaMMMBlocked(s.RT.Arch.Features))
	if err != nil {
		return nil, err
	}

	for _, n := range sizes {
		runN := capSize(n, s.MaxRunCubic)
		a := vm.PinF32(randSlice(runN*runN, 3))
		b := vm.PinF32(randSlice(runN*runN, 4))
		c := vm.PinF32(make([]float32, runN*runN))
		footprint := 12 * n * n // three float matrices

		p, err := s.measureStaged(kn, n, runN, kernels.MMMFlops, footprint,
			func(rn int) error {
				_, err := kn.Call(a, b, c, rn)
				return err
			})
		if err != nil {
			return nil, err
		}
		staged.Points = append(staged.Points, p)

		for _, jv := range []struct {
			m   *hotspot.Method
			ser *Series
		}{{jt, &triple}, {jb, &blocked}} {
			q, err := s.measureJava(jv.m, n, runN, kernels.MMMFlops, footprint,
				func(rn int) error {
					_, err := jv.m.InvokeAt(hotspot.TierC2, vm.PtrValue(a, 0),
						vm.PtrValue(b, 0), vm.PtrValue(c, 0), vm.IntValue(rn))
					return err
				})
			if err != nil {
				return nil, err
			}
			jv.ser.Points = append(jv.ser.Points, q)
		}
	}
	return []Series{triple, blocked, staged}, nil
}

// Fig7 regenerates Figure 7: the variable-precision dot products, Java
// and LMS at 32/16/8/4 bits, in ops/cycle (op count 2n at every
// precision, as the paper charges).
func (s *Suite) Fig7(sizes []int) ([]Series, error) {
	if sizes == nil {
		sizes = Pow2Sizes(7, 26)
	}
	var out []Series
	for _, bits := range []int{32, 16, 8, 4} {
		j, err := s.fig7Java(bits, sizes)
		if err != nil {
			return nil, err
		}
		out = append(out, j)
	}
	for _, bits := range []int{32, 16, 8, 4} {
		l, err := s.fig7Staged(bits, sizes)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// dotFootprint is the two-array working set at each precision.
func dotFootprint(bits, n int) int {
	switch bits {
	case 32:
		return 8 * n
	case 16:
		return 4 * n
	case 8:
		return 2 * n
	default:
		return n
	}
}

// dotData builds the quantized inputs for one precision at a size.
type dotData struct {
	args func(rn int) []vm.Value
}

func makeDotData(bits, runN int, rng *vm.Xorshift) dotData {
	a := randSlice(runN, 7)
	b := randSlice(runN, 8)
	switch bits {
	case 32:
		ab, bb := vm.PinF32(a), vm.PinF32(b)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), vm.IntValue(rn)}
		}}
	case 16:
		ha, hb := quant.EncodeF16(a), quant.EncodeF16(b)
		ab, bb := vm.PinU16(ha.Data), vm.PinU16(hb.Data)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), vm.IntValue(rn)}
		}}
	case 8:
		qa, qb := quant.QuantizeQ8(a, rng), quant.QuantizeQ8(b, rng)
		inv := vm.F32Value(1 / (qa.Scale * qb.Scale))
		ab, bb := vm.PinI8(qa.Data), vm.PinI8(qb.Data)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), inv, vm.IntValue(rn)}
		}}
	default:
		qa, qb := quant.QuantizeQ4(a, rng), quant.QuantizeQ4(b, rng)
		inv := vm.F32Value(1 / (qa.Scale * qb.Scale))
		ab, bb := vm.PinU8(qa.Data), vm.PinU8(qb.Data)
		lut := vm.PinI8(kernels.DecodeLUT4())
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0),
				vm.PtrValue(lut, 0), inv, vm.IntValue(rn)}
		}}
	}
}

// javaDotArgs adapts dot data to the Java kernels' signatures (the
// 16-bit Java path uses quantized shorts, and the 4-bit path has no
// LUT parameter).
func makeJavaDotData(bits, runN int, rng *vm.Xorshift) dotData {
	a := randSlice(runN, 7)
	b := randSlice(runN, 8)
	switch bits {
	case 32, 8:
		return makeDotData(bits, runN, rng)
	case 16:
		sa, sb := quant.Scale(a, 16), quant.Scale(b, 16)
		qa := make([]int16, runN)
		qb := make([]int16, runN)
		for i := range a {
			qa[i] = int16(a[i] * sa)
			qb[i] = int16(b[i] * sb)
		}
		inv := vm.F32Value(1 / (sa * sb))
		ab, bb := vm.PinI16(qa), vm.PinI16(qb)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), inv, vm.IntValue(rn)}
		}}
	default:
		qa, qb := quant.QuantizeQ4(a, rng), quant.QuantizeQ4(b, rng)
		inv := vm.F32Value(1 / (qa.Scale * qb.Scale))
		ab, bb := vm.PinU8(qa.Data), vm.PinU8(qb.Data)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), inv, vm.IntValue(rn)}
		}}
	}
}

func (s *Suite) fig7Staged(bits int, sizes []int) (Series, error) {
	ser := Series{Name: fmt.Sprintf("LMS generated %d-bit", bits)}
	k, err := kernels.StagedDot(bits, s.RT.Arch.Features)
	if err != nil {
		return ser, err
	}
	kn, err := s.RT.Compile(k)
	if err != nil {
		return ser, err
	}
	rng := vm.NewXorshift(1234)
	for _, n := range sizes {
		runN := capSize(n, s.MaxRunLinear)
		data := makeDotData(bits, runN, rng)
		p, err := s.measureStaged(kn, n, runN, kernels.DotOps, dotFootprint(bits, n),
			func(rn int) error {
				_, err := kn.CallValues(data.args(rn)...)
				return err
			})
		if err != nil {
			return ser, err
		}
		ser.Points = append(ser.Points, p)
	}
	return ser, nil
}

func (s *Suite) fig7Java(bits int, sizes []int) (Series, error) {
	ser := Series{Name: fmt.Sprintf("Java %d-bit", bits)}
	f, err := kernels.JavaDot(bits, s.RT.Arch.Features)
	if err != nil {
		return ser, err
	}
	m, err := s.loadJava(f)
	if err != nil {
		return ser, err
	}
	rng := vm.NewXorshift(4321)
	for _, n := range sizes {
		runN := capSize(n, s.MaxRunLinear)
		data := makeJavaDotData(bits, runN, rng)
		p, err := s.measureJava(m, n, runN, kernels.DotOps, dotFootprint(bits, n),
			func(rn int) error {
				_, err := m.InvokeAt(hotspot.TierC2, data.args(rn)...)
				return err
			})
		if err != nil {
			return ser, err
		}
		ser.Points = append(ser.Points, p)
	}
	return ser, nil
}
