package bench

import (
	"fmt"

	"repro/internal/dsl"
	"repro/internal/hotspot"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/quant"
	"repro/internal/vm"
)

// randSlice fills deterministic pseudo-random floats in [-1, 1).
func randSlice(n int, seed uint64) []float32 {
	rng := vm.NewXorshift(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.Uniform()*2 - 1)
	}
	return out
}

// capSize clamps a run size.
func capSize(n, max int) int {
	if n > max {
		return max
	}
	return n
}

// Each figure below splits into two stages. Input setup stays serial —
// it is cheap, and the quantized Figure 7 inputs consume a per-series
// RNG whose draw order must not depend on scheduling. Measurement fans
// out over forEachPoint: each size point runs on a checked-out worker
// and writes its Point into a pre-sized slot, so the emitted series are
// bit-identical at every worker count.

// Fig6a regenerates Figure 6a: SAXPY performance, Java vs LMS-generated,
// in flops/cycle over the given sizes (default 2^6..2^22).
func (s *Suite) Fig6a(sizes []int) ([]Series, error) {
	if sizes == nil {
		sizes = Pow2Sizes(6, 22)
	}
	staged := Series{Name: "LMS generated SAXPY", Points: make([]Point, len(sizes))}
	java := Series{Name: "Java SAXPY", Points: make([]Point, len(sizes))}

	type job struct {
		n, runN   int
		a, b      *vm.Buffer
		footprint int
	}
	jobs := make([]job, len(sizes))
	for i, n := range sizes {
		runN := capSize(n, s.MaxRunLinear)
		jobs[i] = job{n: n, runN: runN,
			a:         vm.PinF32(randSlice(runN, 1)),
			b:         vm.PinF32(randSlice(runN, 2)),
			footprint: 8 * n, // two float arrays
		}
	}

	err := s.forEachPoint("sweep:fig6a", len(jobs), func(i int, w *sweepWorker) error {
		jb := jobs[i]
		w.rt.Span.SetAttr("n", fmt.Sprint(jb.n))
		if s.restorePoint(i, &staged.Points[i], &java.Points[i]) {
			s.notePoint("sweep:fig6a", i, &staged.Points[i], &java.Points[i])
			return nil
		}
		kn, err := w.kernel("saxpy", func() (*dsl.Kernel, error) {
			return kernels.StagedSaxpy(s.RT.Arch.Features), nil
		})
		if err != nil {
			return err
		}
		jm, err := w.method("java-saxpy", func() (*ir.Func, error) {
			return kernels.JavaSaxpy(s.RT.Arch.Features), nil
		})
		if err != nil {
			return err
		}

		p, err := w.measureStaged(kn, jb.n, jb.runN, kernels.SaxpyFlops, jb.footprint,
			func(rn int) error {
				_, err := kn.Call(jb.a, jb.b, float32(2.5), rn)
				return err
			})
		if err != nil {
			return err
		}
		staged.Points[i] = p

		q, err := w.measureJava(jm, jb.n, jb.runN, kernels.SaxpyFlops, jb.footprint,
			func(rn int) error {
				_, err := jm.InvokeAt(hotspot.TierC2, vm.PtrValue(jb.a, 0),
					vm.PtrValue(jb.b, 0), vm.F32Value(2.5), vm.IntValue(rn))
				return err
			})
		if err != nil {
			return err
		}
		java.Points[i] = q
		s.notePoint("sweep:fig6a", i, &staged.Points[i], &java.Points[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Series{java, staged}, nil
}

// Fig6b regenerates Figure 6b: matrix-matrix multiplication, triple-loop
// Java vs blocked Java vs LMS-generated AVX, in flops/cycle.
func (s *Suite) Fig6b(sizes []int) ([]Series, error) {
	if sizes == nil {
		sizes = MMMSizes()
	}
	staged := Series{Name: "LMS generated MMM", Points: make([]Point, len(sizes))}
	triple := Series{Name: "Java MMM (triple loop)", Points: make([]Point, len(sizes))}
	blocked := Series{Name: "Java MMM", Points: make([]Point, len(sizes))}

	type job struct {
		n, runN   int
		a, b, c   *vm.Buffer
		footprint int
	}
	jobs := make([]job, len(sizes))
	for i, n := range sizes {
		runN := capSize(n, s.MaxRunCubic)
		jobs[i] = job{n: n, runN: runN,
			a:         vm.PinF32(randSlice(runN*runN, 3)),
			b:         vm.PinF32(randSlice(runN*runN, 4)),
			c:         vm.PinF32(make([]float32, runN*runN)),
			footprint: 12 * n * n, // three float matrices
		}
	}

	err := s.forEachPoint("sweep:fig6b", len(jobs), func(i int, w *sweepWorker) error {
		jb := jobs[i]
		w.rt.Span.SetAttr("n", fmt.Sprint(jb.n))
		if s.restorePoint(i, &staged.Points[i], &triple.Points[i], &blocked.Points[i]) {
			s.notePoint("sweep:fig6b", i, &staged.Points[i], &triple.Points[i], &blocked.Points[i])
			return nil
		}
		kn, err := w.kernel("mmm", func() (*dsl.Kernel, error) {
			return kernels.StagedMMM(s.RT.Arch.Features), nil
		})
		if err != nil {
			return err
		}
		jt, err := w.method("java-mmm-triple", func() (*ir.Func, error) {
			return kernels.JavaMMMTriple(s.RT.Arch.Features), nil
		})
		if err != nil {
			return err
		}
		jbm, err := w.method("java-mmm-blocked", func() (*ir.Func, error) {
			return kernels.JavaMMMBlocked(s.RT.Arch.Features), nil
		})
		if err != nil {
			return err
		}

		p, err := w.measureStaged(kn, jb.n, jb.runN, kernels.MMMFlops, jb.footprint,
			func(rn int) error {
				_, err := kn.Call(jb.a, jb.b, jb.c, rn)
				return err
			})
		if err != nil {
			return err
		}
		staged.Points[i] = p

		for _, jv := range []struct {
			m   *hotspot.Method
			ser *Series
		}{{jt, &triple}, {jbm, &blocked}} {
			q, err := w.measureJava(jv.m, jb.n, jb.runN, kernels.MMMFlops, jb.footprint,
				func(rn int) error {
					_, err := jv.m.InvokeAt(hotspot.TierC2, vm.PtrValue(jb.a, 0),
						vm.PtrValue(jb.b, 0), vm.PtrValue(jb.c, 0), vm.IntValue(rn))
					return err
				})
			if err != nil {
				return err
			}
			jv.ser.Points[i] = q
		}
		s.notePoint("sweep:fig6b", i, &staged.Points[i], &triple.Points[i], &blocked.Points[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Series{triple, blocked, staged}, nil
}

// Fig7 regenerates Figure 7: the variable-precision dot products, Java
// and LMS at 32/16/8/4 bits, in ops/cycle (op count 2n at every
// precision, as the paper charges).
func (s *Suite) Fig7(sizes []int) ([]Series, error) {
	if sizes == nil {
		sizes = Pow2Sizes(7, 26)
	}
	bitsList := []int{32, 16, 8, 4}
	out := make([]Series, 2*len(bitsList))

	type job struct {
		series, point int
		bits          int
		java          bool
		n, runN       int
		data          dotData
	}
	var jobs []job
	// Java series occupy out[0..3], staged out[4..7] — the serial
	// emission order. Each series owns a fresh RNG consumed across its
	// sizes in order, so quantization draws are scheduling-independent.
	for si, bits := range bitsList {
		out[si] = Series{Name: fmt.Sprintf("Java %d-bit", bits),
			Points: make([]Point, len(sizes))}
		rng := vm.NewXorshift(4321)
		for pi, n := range sizes {
			runN := capSize(n, s.MaxRunLinear)
			jobs = append(jobs, job{series: si, point: pi, bits: bits, java: true,
				n: n, runN: runN, data: makeJavaDotData(bits, runN, rng)})
		}
	}
	for si, bits := range bitsList {
		out[len(bitsList)+si] = Series{Name: fmt.Sprintf("LMS generated %d-bit", bits),
			Points: make([]Point, len(sizes))}
		rng := vm.NewXorshift(1234)
		for pi, n := range sizes {
			runN := capSize(n, s.MaxRunLinear)
			jobs = append(jobs, job{series: len(bitsList) + si, point: pi, bits: bits,
				n: n, runN: runN, data: makeDotData(bits, runN, rng)})
		}
	}

	err := s.forEachPoint("sweep:fig7", len(jobs), func(i int, w *sweepWorker) error {
		jb := jobs[i]
		series := "lms"
		if jb.java {
			series = "java"
		}
		w.rt.Span.SetAttr("n", fmt.Sprint(jb.n)).
			SetAttr("bits", fmt.Sprint(jb.bits)).SetAttr("series", series)
		if s.restorePoint(i, &out[jb.series].Points[jb.point]) {
			s.notePoint("sweep:fig7", i, &out[jb.series].Points[jb.point])
			return nil
		}
		if jb.java {
			m, err := w.method(fmt.Sprintf("java-dot-%d", jb.bits), func() (*ir.Func, error) {
				return kernels.JavaDot(jb.bits, s.RT.Arch.Features)
			})
			if err != nil {
				return err
			}
			p, err := w.measureJava(m, jb.n, jb.runN, kernels.DotOps,
				dotFootprint(jb.bits, jb.n), func(rn int) error {
					_, err := m.InvokeAt(hotspot.TierC2, jb.data.args(rn)...)
					return err
				})
			if err != nil {
				return err
			}
			out[jb.series].Points[jb.point] = p
			s.notePoint("sweep:fig7", i, &out[jb.series].Points[jb.point])
			return nil
		}
		kn, err := w.kernel(fmt.Sprintf("dot-%d", jb.bits), func() (*dsl.Kernel, error) {
			return kernels.StagedDot(jb.bits, s.RT.Arch.Features)
		})
		if err != nil {
			return err
		}
		p, err := w.measureStaged(kn, jb.n, jb.runN, kernels.DotOps,
			dotFootprint(jb.bits, jb.n), func(rn int) error {
				_, err := kn.CallValues(jb.data.args(rn)...)
				return err
			})
		if err != nil {
			return err
		}
		out[jb.series].Points[jb.point] = p
		s.notePoint("sweep:fig7", i, &out[jb.series].Points[jb.point])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dotFootprint is the two-array working set at each precision.
func dotFootprint(bits, n int) int {
	switch bits {
	case 32:
		return 8 * n
	case 16:
		return 4 * n
	case 8:
		return 2 * n
	default:
		return n
	}
}

// dotData builds the quantized inputs for one precision at a size.
type dotData struct {
	args func(rn int) []vm.Value
}

func makeDotData(bits, runN int, rng *vm.Xorshift) dotData {
	a := randSlice(runN, 7)
	b := randSlice(runN, 8)
	switch bits {
	case 32:
		ab, bb := vm.PinF32(a), vm.PinF32(b)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), vm.IntValue(rn)}
		}}
	case 16:
		ha, hb := quant.EncodeF16(a), quant.EncodeF16(b)
		ab, bb := vm.PinU16(ha.Data), vm.PinU16(hb.Data)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), vm.IntValue(rn)}
		}}
	case 8:
		qa, qb := quant.QuantizeQ8(a, rng), quant.QuantizeQ8(b, rng)
		inv := vm.F32Value(1 / (qa.Scale * qb.Scale))
		ab, bb := vm.PinI8(qa.Data), vm.PinI8(qb.Data)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), inv, vm.IntValue(rn)}
		}}
	default:
		qa, qb := quant.QuantizeQ4(a, rng), quant.QuantizeQ4(b, rng)
		inv := vm.F32Value(1 / (qa.Scale * qb.Scale))
		ab, bb := vm.PinU8(qa.Data), vm.PinU8(qb.Data)
		lut := vm.PinI8(kernels.DecodeLUT4())
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0),
				vm.PtrValue(lut, 0), inv, vm.IntValue(rn)}
		}}
	}
}

// makeJavaDotData adapts dot data to the Java kernels' signatures (the
// 16-bit Java path uses quantized shorts, and the 4-bit path has no
// LUT parameter).
func makeJavaDotData(bits, runN int, rng *vm.Xorshift) dotData {
	a := randSlice(runN, 7)
	b := randSlice(runN, 8)
	switch bits {
	case 32, 8:
		return makeDotData(bits, runN, rng)
	case 16:
		sa, sb := quant.Scale(a, 16), quant.Scale(b, 16)
		qa := make([]int16, runN)
		qb := make([]int16, runN)
		for i := range a {
			qa[i] = int16(a[i] * sa)
			qb[i] = int16(b[i] * sb)
		}
		inv := vm.F32Value(1 / (sa * sb))
		ab, bb := vm.PinI16(qa), vm.PinI16(qb)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), inv, vm.IntValue(rn)}
		}}
	default:
		qa, qb := quant.QuantizeQ4(a, rng), quant.QuantizeQ4(b, rng)
		inv := vm.F32Value(1 / (qa.Scale * qb.Scale))
		ab, bb := vm.PinU8(qa.Data), vm.PinU8(qb.Data)
		return dotData{args: func(rn int) []vm.Value {
			return []vm.Value{vm.PtrValue(ab, 0), vm.PtrValue(bb, 0), inv, vm.IntValue(rn)}
		}}
	}
}
