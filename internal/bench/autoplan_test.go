package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFigureBytesInvariantUnderAutoPlan is the figure-level planner
// determinism gate: the same sweep must render byte-identical output
// with the planner off, with it calibrating cold, and with it serving
// calibrated plans warm from disk — and the warm run must leave every
// persisted plan file untouched (write-once persistence). Strategy
// choice moves wall time, never results: every strategy executes the
// identical counted op stream.
func TestFigureBytesInvariantUnderAutoPlan(t *testing.T) {
	sizes := []int{64, 256, 1024, 4096}
	run := func(auto bool, dir string, workers int) string {
		s := NewSuite()
		s.MaxRunLinear = 1 << 11
		s.Reps = 2
		s.Workers = workers
		if dir != "" {
			d, err := core.OpenDiskCache(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			s.RT.Disk = d
		}
		if auto {
			s.RT.EnableAutoPlan()
		}
		out, err := s.RunFigure("fig6a", sizes)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := run(false, "", 1)
	dir := t.TempDir()
	cold := run(true, dir, 1)
	if cold != base {
		t.Fatalf("cold auto-planned figure diverged from the static figure:\n--- static\n%s\n--- auto\n%s", base, cold)
	}

	// Snapshot the persisted plans, then run warm: the figure must not
	// move and neither must a single plan byte (write-once).
	before := readPlanFiles(t, dir)
	if len(before) == 0 {
		t.Fatal("cold auto run persisted no plan files")
	}
	warm := run(true, dir, 2) // workers>1: forks share the planner
	if warm != base {
		t.Fatalf("warm auto-planned figure diverged:\n--- static\n%s\n--- warm\n%s", base, warm)
	}
	after := readPlanFiles(t, dir)
	if len(after) != len(before) {
		t.Fatalf("warm run changed the plan-file set: %d files, was %d", len(after), len(before))
	}
	for name, data := range before {
		if string(after[name]) != string(data) {
			t.Fatalf("warm run rewrote plan file %s", name)
		}
	}
}

// readPlanFiles maps plan-*.json basenames to contents.
func readPlanFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "plan-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}
