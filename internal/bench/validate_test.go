package bench

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/hotspot"
	"repro/internal/kernels"
	"repro/internal/vm"
)

// TestModelAgreesWithSimulator cross-validates the analytical memory
// model against the set-associative cache simulator: the footprint-based
// cache level the estimator assumes must match the level that actually
// serves the traffic when the same kernel run streams through a
// simulated Haswell hierarchy (warm cache, as the paper measures).
func TestModelAgreesWithSimulator(t *testing.T) {
	s := NewSuite()
	kn, err := s.RT.Compile(kernels.StagedSaxpy(s.RT.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	hier := cachesim.NewHaswellHierarchy()
	s.RT.Machine.Cache = hier
	defer func() { s.RT.Machine.Cache = nil }()

	cases := []struct {
		n    int
		want string // analytic level for footprint 8n
	}{
		{1 << 10, "L1"},  // 8KB
		{1 << 13, "L2"},  // 64KB
		{1 << 17, "L3"},  // 1MB
		{1 << 21, "Mem"}, // 16MB
	}
	for _, c := range cases {
		a := vm.PinF32(make([]float32, c.n))
		b := vm.PinF32(make([]float32, c.n))
		args := []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0),
			vm.F32Value(1.5), vm.IntValue(c.n)}
		hier.Reset()
		// Warm pass fills the caches; measured pass starts warm.
		if _, err := kn.CallValues(args...); err != nil {
			t.Fatal(err)
		}
		hier.ResetCounters()
		if _, err := kn.CallValues(args...); err != nil {
			t.Fatal(err)
		}
		got := hier.DominantLevel(0.25)
		if got != c.want {
			t.Errorf("n=%d (footprint %dKB): simulator says %s, model assumes %s\n%s",
				c.n, 8*c.n>>10, got, c.want, hier)
		}
		if lvl := s.RT.Arch.CacheLevel(8 * c.n); lvl != c.want {
			t.Errorf("analytic level for %dKB = %s, want %s", 8*c.n>>10, lvl, c.want)
		}
	}
}

// TestSimulatorSeesBlockedLocality shows the mechanism behind Figure 6b
// in the simulator: at a cache-straining size the triple loop misses far
// more than the blocked ikj version on the same matrices.
func TestSimulatorSeesBlockedLocality(t *testing.T) {
	s := NewSuite()
	jt, err := s.loadJava(kernels.JavaMMMTriple(s.RT.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.loadJava(kernels.JavaMMMBlocked(s.RT.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	hier := cachesim.NewHaswellHierarchy()
	s.JVM.Machine.Cache = hier
	defer func() { s.JVM.Machine.Cache = nil }()

	const n = 96 // 3×36KB: strains the 32KB L1
	a := vm.PinF32(make([]float32, n*n))
	b := vm.PinF32(make([]float32, n*n))
	c := vm.PinF32(make([]float32, n*n))
	args := []vm.Value{vm.PtrValue(a, 0), vm.PtrValue(b, 0),
		vm.PtrValue(c, 0), vm.IntValue(n)}

	hier.Reset()
	if _, err := jt.InvokeAt(hotspot.TierC2, args...); err != nil {
		t.Fatal(err)
	}
	tripleMisses := hier.L1.Misses

	hier.Reset()
	if _, err := jb.InvokeAt(hotspot.TierC2, args...); err != nil {
		t.Fatal(err)
	}
	blockedMisses := hier.L1.Misses

	if tripleMisses <= blockedMisses {
		t.Errorf("triple loop L1 misses (%d) should exceed blocked (%d)",
			tripleMisses, blockedMisses)
	}
	if float64(tripleMisses) < 1.5*float64(blockedMisses) {
		t.Errorf("locality gap too small: triple %d vs blocked %d misses",
			tripleMisses, blockedMisses)
	}
}
