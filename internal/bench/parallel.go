package bench

import (
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/hotspot"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vm"
)

// sweepWorker is one lane of a parallel sweep. Each worker owns a
// forked runtime (private vm.Machine and counter, shared compile cache)
// and a private simulated JVM, so size points measured concurrently
// never race on counters. Kernels and Java methods are memoized per
// worker: the first point a worker measures compiles them (a cache hit
// on the shared CompileCache for all but the first worker), later
// points reuse them — mirroring the one-compile-per-figure structure of
// the serial harness.
type sweepWorker struct {
	s       *Suite
	id      int
	rt      *core.Runtime
	jvm     *hotspot.VM
	total   vm.Counter
	points  int64
	kernels map[string]*core.Kernel
	methods map[string]*hotspot.Method

	// Measurement scratch, owned by the worker so the per-point measure
	// loop stays allocation-free at steady state: the cost estimator
	// (itself carrying reusable chain-analysis state), the repetition
	// perf samples, and the scaled-counts buffer reused across reps.
	est    *machine.Estimator
	perfs  []float64
	scaled vm.Counter
}

func (s *Suite) newWorker(id int) *sweepWorker {
	return &sweepWorker{
		s:       s,
		id:      id,
		rt:      s.RT.Fork(),
		jvm:     hotspot.NewVM(s.JVM.Arch),
		total:   vm.Counter{},
		kernels: map[string]*core.Kernel{},
		methods: map[string]*hotspot.Method{},
		est:     machine.NewEstimator(s.RT.Arch),
		perfs:   make([]float64, 0, s.Reps),
		scaled:  vm.Counter{},
	}
}

// kernel memoizes a compiled staged kernel under name for this worker.
func (w *sweepWorker) kernel(name string, stage func() (*dsl.Kernel, error)) (*core.Kernel, error) {
	if kn, ok := w.kernels[name]; ok {
		return kn, nil
	}
	k, err := stage()
	if err != nil {
		return nil, err
	}
	kn, err := w.rt.Compile(k)
	if err != nil {
		return nil, err
	}
	w.kernels[name] = kn
	return kn, nil
}

// method memoizes a loaded Java method under name for this worker.
func (w *sweepWorker) method(name string, build func() (*ir.Func, error)) (*hotspot.Method, error) {
	if m, ok := w.methods[name]; ok {
		return m, nil
	}
	f, err := build()
	if err != nil {
		return nil, err
	}
	m, err := w.jvm.Load(f)
	if err != nil {
		return nil, err
	}
	w.methods[name] = m
	return m, nil
}

// measureStaged runs a staged kernel at runN on this worker's machine,
// scales to n, and returns the modeled performance. Raw (unscaled)
// counts accumulate into the worker total for the post-sweep merge.
func (w *sweepWorker) measureStaged(kn *core.Kernel, n, runN int, flops func(int) int64,
	footprint int, run func(runN int) error) (Point, error) {
	perfs := w.perfs[:0]
	var rep machine.Report
	for r := 0; r < w.s.Reps; r++ {
		w.rt.Machine.Counts.Reset()
		if err := run(runN); err != nil {
			return Point{}, err
		}
		counts := w.rt.Machine.Counts
		w.total.Merge(counts)
		if runN != n {
			counts = w.scaleCounts(counts, float64(flops(n))/float64(flops(runN)))
		}
		rep = w.est.Estimate(kn.Func(), counts, footprint)
		perfs = append(perfs, machine.FlopsPerCycle(flops(n), rep))
	}
	w.perfs = perfs[:0]
	return Point{N: n, Perf: median(perfs), Bound: rep.Bound, Level: rep.Level}, nil
}

// scaleCounts is the package-level scaleCounts into the worker's
// reusable buffer: repetitions at scaled sizes stop allocating a fresh
// counter per rep.
func (w *sweepWorker) scaleCounts(c vm.Counter, factor float64) vm.Counter {
	w.scaled.Reset()
	for k, v := range c {
		if k == core.JNICall {
			w.scaled[k] = v
			continue
		}
		w.scaled[k] = int64(float64(v)*factor + 0.5)
	}
	return w.scaled
}

// measureJava runs a HotSpot method at C2 steady state on this worker's
// JVM, scales to n, and returns the modeled performance.
func (w *sweepWorker) measureJava(m *hotspot.Method, n, runN int, flops func(int) int64,
	footprint int, run func(runN int) error) (Point, error) {
	perfs := w.perfs[:0]
	var rep machine.Report
	for r := 0; r < w.s.Reps; r++ {
		w.jvm.Machine.Counts.Reset()
		if err := run(runN); err != nil {
			return Point{}, err
		}
		counts := w.jvm.Machine.Counts
		w.total.Merge(counts)
		if runN != n {
			counts = w.scaleCounts(counts, float64(flops(n))/float64(flops(runN)))
		}
		rep = m.Estimate(hotspot.TierC2, counts, footprint)
		perfs = append(perfs, machine.FlopsPerCycle(flops(n), rep))
	}
	w.perfs = perfs[:0]
	return Point{N: n, Perf: median(perfs), Bound: rep.Bound, Level: rep.Level}, nil
}

// forEachPoint fans points out over min(Workers, points) sweep workers.
// fn(i, w) measures point i on worker w and must write its result into
// a slot addressed by i only — that is what keeps the output
// deterministic regardless of scheduling. The pool is a semaphore
// channel carrying the workers themselves: a goroutine per point checks
// a worker out, measures, and returns it. After the barrier every
// worker's raw counter total merges into Suite.SweepCounts, so the
// merged counts match a serial run exactly. The single-worker path runs
// inline through the same worker code, guaranteeing -j 1 and -j N
// produce identical output.
//
// Tracing: the sweep opens one span named name, with one point#i child
// per size point created up front in index order — the span tree's
// structure is therefore identical at every worker count (the
// determinism tests compare skeletons). Each point span is Restarted
// when a worker picks it up, so its interval is the real execution
// window, and carries the worker's lane for the Chrome trace. The
// once-per-worker compile spans nest under whichever point a worker
// measured first — the only scheduling-dependent part of the tree.
func (s *Suite) forEachPoint(name string, points int, fn func(i int, w *sweepWorker) error) error {
	nw := s.Workers
	if nw < 1 {
		nw = 1
	}
	if nw > points {
		nw = points
	}
	if points == 0 {
		return nil
	}
	sweep := s.Tracer.Start(name)
	sweep.SetAttr("points", strconv.Itoa(points)).SetAttr("workers", strconv.Itoa(nw))
	defer sweep.End()
	pointSpans := make([]*obs.Span, points)
	for i := range pointSpans {
		pointSpans[i] = sweep.Child("point#" + strconv.Itoa(i))
	}

	workers := make([]*sweepWorker, nw)
	for i := range workers {
		workers[i] = s.newWorker(i)
	}
	defer func() {
		if s.SweepCounts == nil {
			s.SweepCounts = vm.Counter{}
		}
		for _, w := range workers {
			s.SweepCounts.Merge(w.total)
			s.Metrics.Histogram("bench.worker.points").Observe(w.points)
		}
		s.Metrics.Counter("bench.points").Add(int64(points))
		s.Metrics.Gauge("bench.sweep.workers").Set(int64(nw))
	}()

	// measure runs point i on worker w with the point span as the
	// worker runtime's span parent. The Interrupt poll happens before
	// the measurement so a cancelled sweep stops at the next point
	// boundary; OnPoint fires after it with the completed count.
	var done atomic.Int64
	measure := func(i int, w *sweepWorker) error {
		if s.Interrupt != nil {
			if err := s.Interrupt(); err != nil {
				return err
			}
		}
		sp := pointSpans[i]
		sp.Restart().SetTid(w.id + 1)
		w.rt.Span = sp
		err := fn(i, w)
		w.rt.Span = nil
		sp.End()
		w.points++
		if err == nil && s.OnPoint != nil {
			s.OnPoint(name, int(done.Add(1)), points)
		}
		return err
	}

	if nw == 1 {
		w := workers[0]
		for i := 0; i < points; i++ {
			if err := measure(i, w); err != nil {
				return err
			}
		}
		return nil
	}

	pool := make(chan *sweepWorker, nw)
	for _, w := range workers {
		pool <- w
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	for i := 0; i < points; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := <-pool
			defer func() { pool <- w }()
			if failed.Load() {
				return
			}
			if err := measure(i, w); err != nil {
				failed.Store(true)
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
