// Package bench is the measurement harness that regenerates the paper's
// evaluation artifacts: Figure 6a (SAXPY), Figure 6b (MMM), Figure 7
// (variable-precision dot products), and the headline speedup factors.
// It plays the role ScalaMeter plays in the paper's artifact (Section
// 3.4's setup: forked VM, warmed code, median of repetitions) — here the
// "measurement" is the analytical machine model applied to dynamic
// instruction counts from real kernel executions on the software SIMD
// machine.
//
// Large problem sizes extrapolate: the kernel runs at a reduced size and
// its counts scale by the work ratio (exact for these uniformly
// structured kernels at power-of-two sizes), while the working-set
// footprint — which decides the cache level — uses the full size. The
// fixed per-invocation JNI cost never scales.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hotspot"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Point is one measured size.
type Point struct {
	N     int
	Perf  float64 // flops (or ops) per cycle
	Bound string  // dominating bound: compute/memory/latency
	Level string  // cache level of the working set
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// At returns the point for size n.
func (s Series) At(n int) (Point, bool) {
	for _, p := range s.Points {
		if p.N == n {
			return p, true
		}
	}
	return Point{}, false
}

// Max returns the series' best performance.
func (s Series) Max() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Perf > best {
			best = p.Perf
		}
	}
	return best
}

// Suite owns the two runtimes an experiment compares: NGen (staged
// kernels over the vm) and the simulated HotSpot.
type Suite struct {
	RT  *core.Runtime
	JVM *hotspot.VM
	// MaxRunLinear / MaxRunCubic bound the directly-executed sizes for
	// linear-work and cubic-work kernels; larger sizes extrapolate.
	MaxRunLinear int
	MaxRunCubic  int
	// Reps is the ScalaMeter-style repetition count; the median
	// estimate is reported.
	Reps int
	// Workers bounds how many size points a sweep measures
	// concurrently, each on a private forked runtime. 1 (the default)
	// measures serially; either way results are deterministic and
	// identical.
	Workers int
	// SweepCounts accumulates every worker's raw instruction counts,
	// merged after each sweep's barrier. Totals are independent of
	// Workers.
	SweepCounts vm.Counter
	// Tracer and Metrics, when attached (see Attach), record one span
	// per sweep and per size point — with the runtime's compile and
	// call spans nested under the point that triggered them — and the
	// sweep-worker utilization metrics. Nil by default; a nil tracer
	// and registry cost nothing.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// OnPoint, when set, is invoked after each measured sweep point
	// with the sweep name and the completed/total point counts. Points
	// measure concurrently when Workers > 1, so implementations must be
	// safe for concurrent use. The serving layer streams these as job
	// progress events; nil (the default) changes nothing.
	OnPoint func(sweep string, done, total int)
	// Interrupt, when set, is polled before each point measurement; a
	// non-nil return aborts the sweep with that error. This is how a
	// long sweep running as an ngend job observes cancellation and
	// shutdown. Must be safe for concurrent use; nil never interrupts.
	Interrupt func() error
	// Resume maps forEachPoint indices to the series points an
	// earlier, interrupted run of the same sweep (same figure, same
	// sizes) already measured, as captured via OnPointDone. Restored
	// points fill their slots bit-exactly and skip re-measurement —
	// the checkpoint/resume half of the serving layer. Nil (the
	// default) measures every point.
	Resume map[int][]PointCkpt
	// OnPointDone, when set, receives each completed point's exact-bit
	// checkpoint payload (measured or restored) as it finishes; the
	// serving layer persists these so an interrupted sweep can resume.
	// Points complete concurrently when Workers > 1, so
	// implementations must be safe for concurrent use.
	OnPointDone func(sweep string, i int, pts []PointCkpt)
}

// NewSuite builds the default Haswell suite.
func NewSuite() *Suite {
	return &Suite{
		RT:           core.DefaultRuntime(),
		JVM:          hotspot.NewVM(isa.Haswell),
		MaxRunLinear: 1 << 14,
		MaxRunCubic:  64,
		Reps:         3,
		Workers:      1,
		SweepCounts:  vm.Counter{},
	}
}

// Attach wires an observability sink into the suite and its NGen
// runtime. Sweeps then trace (sweep → point#i → compile/call spans) and
// PublishMetrics fills the registry.
func (s *Suite) Attach(tr *obs.Tracer, reg *obs.Registry) {
	s.Tracer, s.Metrics = tr, reg
	s.RT.Tracer, s.RT.Metrics = tr, reg
}

// PublishMetrics pushes every accumulated statistic into the attached
// registry: compile-cache and frame-pool state via the runtime, and the
// merged sweep instruction counts (plus any counts on the suite's own
// machine, e.g. from the cache-validation run) under vm.op.*.
// Idempotent — call it right before snapshotting. No-op when no
// registry is attached.
func (s *Suite) PublishMetrics() {
	if s.Metrics == nil {
		return
	}
	s.RT.PublishMetrics()
	merged := s.SweepCounts.Clone()
	merged.Merge(s.RT.Machine.Counts)
	merged.Publish(s.Metrics, "vm.op.")
}

// median of a small slice.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// loadJava loads a scalar method into the simulated JVM.
func (s *Suite) loadJava(f *ir.Func) (*hotspot.Method, error) {
	return s.JVM.Load(f)
}

// Speedup returns the maximum ratio comp/base across common sizes — the
// "up to N×" figures the paper quotes.
func Speedup(base, comp Series) float64 {
	best := 0.0
	for _, p := range comp.Points {
		if b, ok := base.At(p.N); ok && b.Perf > 0 {
			if r := p.Perf / b.Perf; r > best {
				best = r
			}
		}
	}
	return best
}

// Format renders series as the aligned table cmd/ngen prints: one row
// per size, one column per series — the textual form of a figure.
func Format(title, metric string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-10s", "size")
	for _, s := range series {
		fmt.Fprintf(&b, "  %24s", s.Name)
	}
	fmt.Fprintf(&b, "\n")
	if len(series) == 0 {
		return b.String()
	}
	for _, p := range series[0].Points {
		fmt.Fprintf(&b, "%-10d", p.N)
		for _, s := range series {
			if q, ok := s.At(p.N); ok {
				fmt.Fprintf(&b, "  %18.3f %s/%s", q.Perf, abbrevBound(q.Bound), q.Level)
			} else {
				fmt.Fprintf(&b, "  %24s", "-")
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(%s; bound: c=compute m=memory l=latency; level: working-set cache level)\n", metric)
	return b.String()
}

func abbrevBound(b string) string {
	if b == "" {
		return "?"
	}
	return b[:1]
}

// Pow2Sizes returns 2^lo..2^hi.
func Pow2Sizes(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// MMMSizes returns the Figure 6b x-axis: 8 then multiples of 64 up to
// 1024.
func MMMSizes() []int {
	out := []int{8}
	for n := 64; n <= 1024; n += 64 {
		out = append(out, n)
	}
	return out
}
