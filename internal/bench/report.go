package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// FigureStat is one figure sweep's machine-readable benchmark record,
// the schema behind BENCH_pr4.json: wall time, dynamic vm op volume,
// and heap allocations amortized over those ops (the zero-alloc hot
// path keeps this near the fixed per-sweep compile cost).
type FigureStat struct {
	Seconds     float64 `json:"seconds"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Ops         int64   `json:"ops"`
}

// BenchReport maps a figure id ("fig6a", …) to its sweep statistics.
type BenchReport map[string]FigureStat

// Validate rejects records no real run can produce, so a truncated or
// hand-mangled JSON file fails loudly instead of feeding the docs.
func (r BenchReport) Validate() error {
	if len(r) == 0 {
		return fmt.Errorf("bench: report has no figures")
	}
	for _, name := range r.Figures() {
		st := r[name]
		if st.Seconds <= 0 {
			return fmt.Errorf("bench: %s: non-positive wall time %v", name, st.Seconds)
		}
		if st.Ops <= 0 {
			return fmt.Errorf("bench: %s: non-positive op count %d", name, st.Ops)
		}
		if st.AllocsPerOp < 0 {
			return fmt.Errorf("bench: %s: negative allocs/op %v", name, st.AllocsPerOp)
		}
	}
	return nil
}

// Figures lists the report's figure ids in sorted order.
func (r BenchReport) Figures() []string {
	out := make([]string, 0, len(r))
	for name := range r {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteBenchJSON writes the report as indented JSON (keys sorted by
// encoding/json), validating first.
func WriteBenchJSON(path string, r BenchReport) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads and validates a report written by WriteBenchJSON.
func ReadBenchJSON(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
