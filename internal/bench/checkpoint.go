package bench

// Sweep checkpoint/resume. A figure sweep is a list of independent
// point measurements (the forEachPoint indices); each completed index
// can be serialized exactly and fed back into a later run of the same
// sweep, which then fills the corresponding series slots bit-for-bit
// and skips re-measuring them. This is what lets a restarted ngend
// daemon resume an interrupted sweep job from the last completed
// point — the final table is byte-identical to an uninterrupted run
// because restored points are bit-exact, and the table is a pure
// function of the points.

import "math"

// PointCkpt is the exact-bit persisted form of one completed series
// point: the series slot it fills (an index into the figure's fixed
// slot order) and the Point's fields, with Perf carried as raw
// float64 bits so formatting reproduces identical bytes after a
// JSON round trip.
type PointCkpt struct {
	Series   int    `json:"series"`
	N        int    `json:"n"`
	PerfBits uint64 `json:"perf_bits"`
	Bound    string `json:"bound"`
	Level    string `json:"level"`
}

func ckptOf(series int, p Point) PointCkpt {
	return PointCkpt{Series: series, N: p.N,
		PerfBits: math.Float64bits(p.Perf), Bound: p.Bound, Level: p.Level}
}

// point reconstructs the Point bit-exactly.
func (c PointCkpt) point() Point {
	return Point{N: c.N, Perf: math.Float64frombits(c.PerfBits),
		Bound: c.Bound, Level: c.Level}
}

// restorePoint consults the Resume table for sweep job index i. On a
// hit it writes the recorded points into the figure's series slots
// and reports true — the caller skips measuring. A malformed entry
// (wrong slot count or series index out of range) is ignored and the
// point re-measures, which is always safe.
func (s *Suite) restorePoint(i int, slots ...*Point) bool {
	cks, ok := s.Resume[i]
	if !ok || len(cks) != len(slots) {
		return false
	}
	for _, c := range cks {
		if c.Series < 0 || c.Series >= len(slots) {
			return false
		}
	}
	for _, c := range cks {
		*slots[c.Series] = c.point()
	}
	return true
}

// notePoint reports index i's completed series points through
// OnPointDone (checkpoint persistence). The slot order must match the
// figure's restorePoint call — the Series field records each slot's
// position. Fires for restored points too, so a resumed run's
// checkpoint stream is as complete as a fresh run's.
func (s *Suite) notePoint(sweep string, i int, slots ...*Point) {
	if s.OnPointDone == nil {
		return
	}
	cks := make([]PointCkpt, len(slots))
	for k, p := range slots {
		cks[k] = ckptOf(k, *p)
	}
	s.OnPointDone(sweep, i, cks)
}
