package bench

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// captureCkpts runs one figure to completion while recording every
// OnPointDone checkpoint, returning the formatted table and the
// per-index checkpoint map an interrupted run would have persisted.
func captureCkpts(t *testing.T, figure string, sizes []int) (string, map[int][]PointCkpt) {
	t.Helper()
	s := quickSuite()
	var mu sync.Mutex
	cks := map[int][]PointCkpt{}
	s.OnPointDone = func(sweep string, i int, pts []PointCkpt) {
		mu.Lock()
		cks[i] = pts
		mu.Unlock()
	}
	out, err := s.RunFigure(figure, sizes)
	if err != nil {
		t.Fatal(err)
	}
	return out, cks
}

var resumeFigures = []struct {
	figure string
	sizes  []int
}{
	{"fig6a", []int{64, 256, 1024, 4096}},
	{"fig6b", []int{8, 16, 32}},
	{"fig7", []int{128, 512}},
}

// TestResumePartialByteIdentical: feeding a prefix of a finished run's
// checkpoints back via Resume re-measures only the remaining points and
// reproduces the reference table byte-for-byte — the core guarantee
// behind daemon restart resuming an interrupted sweep.
func TestResumePartialByteIdentical(t *testing.T) {
	for _, tc := range resumeFigures {
		t.Run(tc.figure, func(t *testing.T) {
			ref, cks := captureCkpts(t, tc.figure, tc.sizes)
			if len(cks) == 0 {
				t.Fatal("no checkpoints captured")
			}
			// Round-trip the checkpoints through JSON — the store
			// persists them that way — and keep only half.
			blob, err := json.Marshal(cks)
			if err != nil {
				t.Fatal(err)
			}
			restored := map[int][]PointCkpt{}
			if err := json.Unmarshal(blob, &restored); err != nil {
				t.Fatal(err)
			}
			partial := map[int][]PointCkpt{}
			for i, pts := range restored {
				if i%2 == 0 {
					partial[i] = pts
				}
			}
			s := quickSuite()
			s.Resume = partial
			out, err := s.RunFigure(tc.figure, tc.sizes)
			if err != nil {
				t.Fatal(err)
			}
			if out != ref {
				t.Errorf("resumed table differs from uninterrupted run\nref:\n%s\nresumed:\n%s", ref, out)
			}
		})
	}
}

// TestResumeFullSkipsAllMeasurement: with every point restored the
// sweep executes zero vm instructions (no kernel compiles or calls) and
// still emits the identical table. OnPointDone must re-fire for
// restored points so a resumed run's checkpoint stream stays complete.
func TestResumeFullSkipsAllMeasurement(t *testing.T) {
	for _, tc := range resumeFigures {
		t.Run(tc.figure, func(t *testing.T) {
			ref, cks := captureCkpts(t, tc.figure, tc.sizes)
			s := quickSuite()
			s.Resume = cks
			refired := map[int]bool{}
			var mu sync.Mutex
			s.OnPointDone = func(sweep string, i int, pts []PointCkpt) {
				mu.Lock()
				refired[i] = true
				mu.Unlock()
			}
			out, err := s.RunFigure(tc.figure, tc.sizes)
			if err != nil {
				t.Fatal(err)
			}
			if out != ref {
				t.Errorf("fully-restored table differs from reference")
			}
			if got := s.SweepCounts.Total(); got != 0 {
				t.Errorf("fully-restored sweep executed %d vm ops, want 0", got)
			}
			if len(refired) != len(cks) {
				t.Errorf("OnPointDone re-fired for %d/%d restored points", len(refired), len(cks))
			}
		})
	}
}

// TestResumeMalformedEntriesRemeasure: wrong slot counts or
// out-of-range series indices are ignored (the point re-measures) —
// corruption can cost time, never correctness.
func TestResumeMalformedEntriesRemeasure(t *testing.T) {
	ref, cks := captureCkpts(t, "fig6a", []int{64, 256})
	bad := map[int][]PointCkpt{
		0: cks[0][:1],                       // wrong slot count
		1: {cks[1][0], {Series: 7, N: 256}}, // series out of range
	}
	s := quickSuite()
	s.Resume = bad
	out, err := s.RunFigure("fig6a", []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if out != ref {
		t.Errorf("malformed resume entries must re-measure, got differing table")
	}
	if s.SweepCounts.Total() == 0 {
		t.Error("malformed entries should force re-measurement, but no vm ops ran")
	}
}

// TestCkptBitExact: PerfBits survives a JSON round trip bit-for-bit,
// including values a decimal float encoding would perturb.
func TestCkptBitExact(t *testing.T) {
	p := Point{N: 1 << 20, Perf: 1.0 / 3.0, Bound: "memory", Level: "L3"}
	c := ckptOf(2, p)
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back PointCkpt
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("checkpoint JSON round trip changed value: %+v vs %+v", back, c)
	}
	q := back.point()
	if q != p {
		t.Fatalf("restored point differs: %+v vs %+v", q, p)
	}
	if fmt.Sprintf("%18.3f", q.Perf) != fmt.Sprintf("%18.3f", p.Perf) {
		t.Fatal("formatted perf differs after round trip")
	}
}
