package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestInstrumentHTTP(t *testing.T) {
	reg := NewRegistry()
	h := reg.InstrumentHTTP("probe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if _, ok := w.(http.Flusher); !ok {
			t.Error("instrumented writer must forward Flush")
		}
		w.Write([]byte("ok")) // implicit 200
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/", "/boom", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	snap := reg.Snapshot()
	if got := snap.Counters["http.probe.requests"]; got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if got := snap.Counters["http.probe.status.2xx"]; got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := snap.Counters["http.probe.status.5xx"]; got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if h := snap.Hists["http.probe.us"]; h.Count != 3 {
		t.Errorf("latency observations = %d, want 3", h.Count)
	}
	if _, ok := snap.Gauges["http.inflight"]; !ok {
		t.Error("inflight gauge missing")
	}
}

func TestInstrumentHTTPNilRegistry(t *testing.T) {
	var reg *Registry
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := reg.InstrumentHTTP("x", h); got == nil {
		t.Fatal("nil registry must still return the handler")
	}
}
