package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil *Counter (what
// a nil *Registry hands out) ignores Add and loads zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value (set, not accumulated).
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Load returns the last set value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into power-of-two buckets:
// bucket i counts values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i).
// Good enough to see the shape of duration and size distributions
// without configuration.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [65]int64
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time histogram view.
type HistSnapshot struct {
	Count, Sum, Min, Max int64
	// Buckets maps the inclusive upper bound 2^i-1 → count, zero
	// buckets omitted.
	Buckets map[int64]int64
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Buckets: map[int64]int64{}}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		bound := int64(math.MaxInt64) // top buckets clamp to MaxInt64
		if i < 63 {
			bound = int64(1)<<i - 1
		}
		out.Buckets[bound] = n
	}
	return out
}

// Registry is the metric namespace: get-or-create typed instruments by
// name. A nil *Registry is disabled — every accessor returns nil, and
// the nil instruments no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a deterministic point-in-time view of every instrument.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot captures all instruments.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{},
		Hists: map[string]HistSnapshot{}}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		out.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		out.Gauges[k] = g.Load()
	}
	for k, h := range hists {
		out.Hists[k] = h.Snapshot()
	}
	return out
}

// WriteJSON renders the registry as one expvar-style JSON object with
// sorted keys, so snapshots diff cleanly run-to-run.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	writeSortedInts(&b, s.Counters)
	b.WriteString("},\n  \"gauges\": {")
	writeSortedInts(&b, s.Gauges)
	b.WriteString("},\n  \"histograms\": {")
	names := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			b.WriteString(",")
		}
		h := s.Hists[k]
		fmt.Fprintf(&b, "\n    %q: {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"mean\": %.1f}",
			k, h.Count, h.Sum, h.Min, h.Max, h.Mean())
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("}\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSortedInts(b *strings.Builder, m map[string]int64) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(b, "\n    %q: %d", k, m[k])
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
}
