package obs

import (
	"sync"
	"time"
)

// Tracer records a tree of timed spans against one monotonic epoch.
// All mutation goes through the tracer's lock, so spans may be opened
// and closed from concurrent sweep workers; child order under one
// parent is the order Child was called.
//
// A nil *Tracer is the disabled tracer: Start returns a nil *Span and
// every *Span method on nil is an allocation-free no-op.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span
}

// New creates an enabled tracer whose clock starts now.
func New() *Tracer { return &Tracer{epoch: time.Now()} }

// now is the monotonic offset since the epoch (time.Since reads the
// monotonic clock).
func (t *Tracer) now() time.Duration { return time.Since(t.epoch) }

// Start opens a top-level span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, Name: name}
	t.mu.Lock()
	sp.Begin = t.now()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

// Wall is the total time the tracer has been live — the denominator for
// trace-coverage checks.
func (t *Tracer) Wall() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Roots returns the top-level spans (snapshot under the lock).
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Attr is one span attribute.
type Attr struct {
	Key, Value string
}

// Span is one timed region of the pipeline. Fields are exported for the
// exporters; mutate only through the methods (they take the tracer
// lock). An un-Ended span exports with the duration observed so far.
type Span struct {
	t        *Tracer
	Name     string
	Begin    time.Duration // offset from the tracer epoch
	Dur      time.Duration
	Attrs    []Attr
	Tid      int // Chrome trace lane; inherited by children
	Children []*Span
	ended    bool
}

// Child opens a sub-span.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{t: sp.t, Name: name, Tid: sp.Tid}
	sp.t.mu.Lock()
	c.Begin = sp.t.now()
	sp.Children = append(sp.Children, c)
	sp.t.mu.Unlock()
	return c
}

// SetAttr appends a key/value attribute and returns the span for
// chaining.
func (sp *Span) SetAttr(key, value string) *Span {
	if sp == nil {
		return nil
	}
	sp.t.mu.Lock()
	sp.Attrs = append(sp.Attrs, Attr{key, value})
	sp.t.mu.Unlock()
	return sp
}

// SetTid assigns the span (and, by inheritance, children opened after
// the call) to a Chrome trace lane, so concurrently executing sweep
// points render on separate rows.
func (sp *Span) SetTid(tid int) *Span {
	if sp == nil {
		return nil
	}
	sp.t.mu.Lock()
	sp.Tid = tid
	sp.t.mu.Unlock()
	return sp
}

// Restart moves the span's begin time to now. Sweep spans are created
// in deterministic index order before fan-out but may wait for a pooled
// worker; Restart at checkout makes the recorded interval the actual
// execution window.
func (sp *Span) Restart() *Span {
	if sp == nil {
		return nil
	}
	sp.t.mu.Lock()
	sp.Begin = sp.t.now()
	sp.t.mu.Unlock()
	return sp
}

// End closes the span. Repeated End keeps the first duration.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if !sp.ended {
		sp.Dur = sp.t.now() - sp.Begin
		sp.ended = true
	}
	sp.t.mu.Unlock()
}

// dur is the export-time duration: recorded if ended, observed-so-far
// otherwise. Caller holds the tracer lock.
func (sp *Span) dur(now time.Duration) time.Duration {
	if sp.ended {
		return sp.Dur
	}
	return now - sp.Begin
}
