package obs

import (
	"net/http"
	"strconv"
	"time"
)

// InstrumentHTTP wraps an http.Handler with per-route serving metrics:
//
//	http.<route>.requests   counter    requests served
//	http.<route>.status.<c> counter    responses per status class (2xx…5xx)
//	http.<route>.us         histogram  request latency in microseconds
//	http.inflight           gauge      requests currently being served
//
// route is a short static label ("healthz", "jobs.submit"), never the
// raw URL — per-URL cardinality would flood the registry. A nil
// registry returns h unchanged, preserving the package's
// disabled-observability-costs-nothing contract. The wrapped response
// writer forwards Flush, so chunked streaming handlers keep working
// behind the middleware.
func (r *Registry) InstrumentHTTP(route string, h http.Handler) http.Handler {
	if r == nil {
		return h
	}
	prefix := "http." + route + "."
	requests := r.Counter(prefix + "requests")
	latency := r.Histogram(prefix + "us")
	inflight := r.Gauge("http.inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		requests.Add(1)
		n := inflightCount.Add(1)
		inflight.Set(n)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, req)
		latency.Observe(time.Since(start).Microseconds())
		inflight.Set(inflightCount.Add(-1))
		class := strconv.Itoa(sw.status()/100) + "xx"
		r.Counter(prefix + "status." + class).Add(1)
	})
}

// inflightCount backs the single cross-route http.inflight gauge: the
// gauge API is set-only, so the middleware tracks the live count here.
var inflightCount atomicCounter

type atomicCounter struct{ c Counter }

func (a *atomicCounter) Add(n int64) int64 {
	a.c.Add(n)
	return a.c.Load()
}

// statusWriter records the response status while forwarding Flush for
// streaming responses. An unset status means the handler wrote a body
// (or nothing) without WriteHeader — net/http sends 200 for those.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
