package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteTree renders the trace as an indented human-readable tree:
// duration, name, and attributes per span, children beneath parents.
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "(tracing disabled)\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var b strings.Builder
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%12s  %s%s%s\n", fmtDur(sp.dur(now)),
			strings.Repeat("  ", depth), sp.Name, attrString(sp.Attrs))
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	for _, sp := range t.roots {
		walk(sp, 0)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func attrString(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return " [" + strings.Join(parts, " ") + "]"
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// jsonlSpan is the JSON-lines export schema.
type jsonlSpan struct {
	Name    string            `json:"name"`
	BeginNs int64             `json:"begin_ns"`
	DurNs   int64             `json:"dur_ns"`
	Depth   int               `json:"depth"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL emits one JSON object per span, parents before children,
// for log shippers and ad-hoc jq analysis.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	enc := json.NewEncoder(w)
	var walk func(sp *Span, depth int) error
	walk = func(sp *Span, depth int) error {
		js := jsonlSpan{Name: sp.Name, BeginNs: int64(sp.Begin),
			DurNs: int64(sp.dur(now)), Depth: depth}
		if len(sp.Attrs) > 0 {
			js.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
		for _, c := range sp.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sp := range t.roots {
		if err := walk(sp, 0); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event entry ("X" = complete event,
// timestamps in microseconds).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the trace in Chrome's trace_event JSON-array
// format, loadable in about://tracing or ui.perfetto.dev. Span lanes
// (Tid) separate concurrently executing sweep points; the whole run is
// one process.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var events []chromeEvent
	var walk func(sp *Span)
	walk = func(sp *Span) {
		ev := chromeEvent{Name: sp.Name, Ph: "X", Pid: 1, Tid: sp.Tid,
			Ts:  float64(sp.Begin) / 1e3,
			Dur: float64(sp.dur(now)) / 1e3}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range t.roots {
		walk(sp)
	}
	out, err := json.MarshalIndent(events, "", " ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// StageTotal aggregates every span sharing one name.
type StageTotal struct {
	Name  string
	Count int64
	Total time.Duration
}

// Totals aggregates span durations by name across the whole tree,
// sorted by descending total — the "where did the milliseconds go"
// table.
func (t *Tracer) Totals() []StageTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	agg := map[string]*StageTotal{}
	var order []string
	var walk func(sp *Span)
	walk = func(sp *Span) {
		st, ok := agg[sp.Name]
		if !ok {
			st = &StageTotal{Name: sp.Name}
			agg[sp.Name] = st
			order = append(order, sp.Name)
		}
		st.Count++
		st.Total += sp.dur(now)
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range t.roots {
		walk(sp)
	}
	out := make([]StageTotal, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Coverage is the fraction of the tracer's wall time covered by
// top-level spans — the acceptance check that a trace explains where
// the run went (≥ 0.95 for an ngen experiment wrapped in its root
// span).
func (t *Tracer) Coverage() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if now <= 0 {
		return 0
	}
	var covered time.Duration
	for _, sp := range t.roots {
		covered += sp.dur(now)
	}
	if f := float64(covered) / float64(now); f < 1 {
		return f
	}
	return 1
}

// Skeleton renders the timing-free structure of the trace — names and
// attributes, indented, in tree order — excluding spans for which skip
// returns true (and their subtrees). Sweep determinism tests compare
// skeletons across worker counts; scheduling-dependent spans (the
// once-per-worker compiles) are skipped by name.
func (t *Tracer) Skeleton(skip func(name string) bool) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		if skip != nil && skip(sp.Name) {
			return
		}
		fmt.Fprintf(&b, "%s%s%s\n", strings.Repeat("  ", depth), sp.Name,
			attrString(sp.Attrs))
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	for _, sp := range t.roots {
		walk(sp, 0)
	}
	return b.String()
}
