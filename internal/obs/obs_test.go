package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledFastPathAllocsNothing is the zero-cost-when-disabled
// guarantee: a nil tracer, span and registry must not allocate on any
// instrumented hot-path operation.
func TestDisabledFastPathAllocsNothing(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("compile")
		sp.SetAttr("kernel", "saxpy")
		c := sp.Child("cgen.emit")
		c.End()
		sp.End()
		reg.Counter("x").Add(1)
		reg.Gauge("y").Set(2)
		reg.Histogram("z").Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan guards the disabled fast path in CI benchmarks:
// run with -benchmem, the report must show 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	var reg *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("call")
		sp.Child("inner").End()
		sp.End()
		reg.Counter("jni").Add(1)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := New()
	root := tr.Start("ngen.fig6a").SetAttr("workers", "2")
	p0 := root.Child("point#0").SetAttr("n", "64")
	p0.Child("call:saxpy").End()
	p0.End()
	p1 := root.Child("point#1").SetAttr("n", "128")
	p1.End()
	root.End()

	got := tr.Skeleton(nil)
	want := "ngen.fig6a [workers=2]\n" +
		"  point#0 [n=64]\n" +
		"    call:saxpy\n" +
		"  point#1 [n=128]\n"
	if got != want {
		t.Fatalf("skeleton mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Skip filters a subtree out.
	filtered := tr.Skeleton(func(name string) bool { return name == "point#0" })
	if strings.Contains(filtered, "saxpy") || strings.Contains(filtered, "point#0") {
		t.Fatalf("skip must drop the whole subtree:\n%s", filtered)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := New()
	root := tr.Start("ngen.fig6a")
	c := root.Child("ngen.compile").SetAttr("kernel", "saxpy").SetAttr("cache", "miss")
	time.Sleep(time.Millisecond)
	c.End()
	root.Child("call:saxpy").SetTid(3).End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event %v: ph=%v, want X", ev["name"], ev["ph"])
		}
		if ev["ts"].(float64) < 0 || ev["dur"].(float64) < 0 {
			t.Errorf("event %v has negative timestamps", ev["name"])
		}
	}
	if events[1]["args"].(map[string]any)["cache"] != "miss" {
		t.Errorf("attributes must export as args: %v", events[1])
	}
	if events[2]["tid"].(float64) != 3 {
		t.Errorf("SetTid must export: %v", events[2])
	}
	// The compile child must nest inside the root's interval.
	rootTs, rootDur := events[0]["ts"].(float64), events[0]["dur"].(float64)
	childTs, childDur := events[1]["ts"].(float64), events[1]["dur"].(float64)
	if childTs < rootTs || childTs+childDur > rootTs+rootDur+0.001 {
		t.Errorf("child [%f,%f] escapes root [%f,%f]",
			childTs, childTs+childDur, rootTs, rootTs+rootDur)
	}
}

func TestCoverageAndTotals(t *testing.T) {
	tr := New()
	sp := tr.Start("ngen.run")
	time.Sleep(5 * time.Millisecond)
	sp.Child("stage").End()
	sp.End()
	if cov := tr.Coverage(); cov < 0.9 {
		t.Fatalf("a root span wrapping the run must cover ~all wall time, got %.2f", cov)
	}
	totals := tr.Totals()
	if len(totals) != 2 || totals[0].Name != "ngen.run" {
		t.Fatalf("totals must aggregate by name, longest first: %+v", totals)
	}
	if totals[0].Count != 1 || totals[0].Total < 5*time.Millisecond {
		t.Fatalf("ngen.run total wrong: %+v", totals[0])
	}

	var nilTr *Tracer
	if nilTr.Coverage() != 0 || nilTr.Totals() != nil {
		t.Fatal("nil tracer must report empty coverage/totals")
	}
}

func TestRegistrySnapshotDeterministicJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ngen.cache.hit").Add(3)
	reg.Counter("ngen.cache.miss").Add(1)
	reg.Gauge("bench.workers").Set(8)
	reg.Histogram("bench.point.ns").Observe(1500)
	reg.Histogram("bench.point.ns").Observe(3000)

	var a, b bytes.Buffer
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("snapshot JSON must be deterministic")
	}
	var decoded map[string]any
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, a.String())
	}
	cs := decoded["counters"].(map[string]any)
	if cs["ngen.cache.hit"].(float64) != 3 {
		t.Errorf("counter lost: %v", cs)
	}
	hs := decoded["histograms"].(map[string]any)["bench.point.ns"].(map[string]any)
	if hs["count"].(float64) != 2 || hs["sum"].(float64) != 4500 {
		t.Errorf("histogram snapshot wrong: %v", hs)
	}

	snap := reg.Histogram("bench.point.ns").Snapshot()
	if snap.Min != 1500 || snap.Max != 3000 || snap.Mean() != 2250 {
		t.Errorf("hist stats wrong: %+v", snap)
	}
}

// TestConcurrentSpansAndMetrics exercises the locking under -race:
// spans opened from many goroutines under one parent, counters bumped
// concurrently.
func TestConcurrentSpansAndMetrics(t *testing.T) {
	tr := New()
	reg := NewRegistry()
	root := tr.Start("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.Child("point").SetAttr("j", "x")
				sp.Restart()
				sp.End()
				reg.Counter("points").Add(1)
				reg.Histogram("ns").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	root.End()
	if n := reg.Counter("points").Load(); n != 16*50 {
		t.Fatalf("counter raced: %d", n)
	}
	if len(root.Children) != 16*50 {
		t.Fatalf("span tree raced: %d children", len(root.Children))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != 16*50+1 {
		t.Fatalf("JSONL line count %d, want %d", got, 16*50+1)
	}
}

func TestWriteTreeDisabledAndEnabled(t *testing.T) {
	var nilTr *Tracer
	var buf bytes.Buffer
	if err := nilTr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil tracer tree: %q", buf.String())
	}
	buf.Reset()
	if err := nilTr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil tracer chrome trace: %q", buf.String())
	}

	tr := New()
	tr.Start("a").Child("b").SetAttr("k", "v")
	buf.Reset()
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "  b [k=v]") {
		t.Fatalf("tree output:\n%s", out)
	}
}
