// Package obs is the observability layer of the NGen reproduction: a
// lightweight, allocation-conscious tracing and metrics substrate that
// every stage of the runtime pipeline reports into.
//
// The package has two halves:
//
//   - Tracer/Span: hierarchical wall-clock spans on the monotonic clock.
//     Each runtime stage — system inspection, staging, C unparsing,
//     kernelc lowering, toolchain linking, and every Kernel.Call — opens
//     a span carrying attributes (kernel name, graph hash,
//     microarchitecture, cache hit/miss). A nil *Tracer (and a nil
//     *Span) is a fully valid disabled instance: every method is a
//     no-op that performs zero allocations, so instrumented hot paths
//     need no flag checks and cost nothing when observability is off.
//
//   - Registry: typed counters, gauges and power-of-two-bucket
//     histograms that absorb the pipeline's previously ad-hoc counters
//     (compile-cache hits and misses, dynamic vm op counts, sweep-worker
//     utilization, interpreter frame-pool recycling) behind one
//     interface with a deterministic, expvar-style JSON snapshot. A nil
//     *Registry is likewise a disabled no-op.
//
// Three exporters turn a recorded trace into operator-facing artifacts:
// an indented human-readable tree (WriteTree), JSON lines (WriteJSONL),
// and the Chrome trace_event format (WriteChromeTrace) loadable in
// about://tracing or https://ui.perfetto.dev. Totals aggregates span
// durations by name for "where did the milliseconds go" tables, and
// Skeleton renders the timing-free structure of the tree so tests can
// assert that traces are deterministic across sweep worker counts.
//
// See docs/OBSERVABILITY.md for the operator runbook and the metric
// name catalogue, and ARCHITECTURE.md for the span around each pipeline
// stage.
package obs
