package kernels

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// FillBuffer writes a deterministic, seed-dependent pattern into the
// buffer: small non-degenerate floats for float primitives, an
// xorshift byte stream for everything else. It is the shared input
// generator of the differential harnesses (the native-vs-vm kernel
// gate and the conformance suite), so two independently allocated
// buffers with equal (prim, len, seed) are byte-identical.
func FillBuffer(b *vm.Buffer, seed uint64) {
	switch b.Prim {
	case isa.PrimF32:
		for i := 0; i < b.Len(); i++ {
			v := float32(i%23)*0.375 - 3.5 + float32(seed%7)
			binary.LittleEndian.PutUint32(b.Data[i*4:], math.Float32bits(v))
		}
	case isa.PrimF64:
		for i := 0; i < b.Len(); i++ {
			v := float64(i%23)*0.375 - 3.5 + float64(seed%7)
			binary.LittleEndian.PutUint64(b.Data[i*8:], math.Float64bits(v))
		}
	default:
		x := seed*2862933555777941757 + 3037000493
		for i := range b.Data {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			b.Data[i] = byte(x)
		}
	}
}

// BuildArgs constructs one vm argument per staged parameter of f:
// pointer parameters get a fresh elems-element buffer filled by
// FillBuffer (seed advanced per parameter), integer parameters receive
// n, and float scalars a fixed 1.5. The returned buffers alias the
// pointer arguments, in parameter order, so callers can inspect memory
// effects after a run.
func BuildArgs(f *ir.Func, n, elems int, seed uint64) ([]vm.Value, []*vm.Buffer, error) {
	var args []vm.Value
	var bufs []*vm.Buffer
	for _, p := range f.Params {
		switch p.Typ.Kind {
		case ir.KindPtr:
			b := vm.NewBuffer(p.Typ.Elem, elems)
			FillBuffer(b, seed+uint64(len(args)))
			bufs = append(bufs, b)
			args = append(args, vm.PtrValue(b, 0))
		case ir.KindI32:
			args = append(args, vm.IntValue(n))
		case ir.KindI64:
			args = append(args, vm.Value{Kind: ir.KindI64, I: int64(n)})
		case ir.KindF32:
			args = append(args, vm.F32Value(1.5))
		case ir.KindF64:
			args = append(args, vm.F64Value(1.5))
		default:
			return nil, nil, fmt.Errorf("%s: no argument recipe for parameter kind %v", f.Name, p.Typ.Kind)
		}
	}
	return args, bufs, nil
}
