package kernels

import (
	"math"
	"testing"

	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/isa"
)

// TestMultiSaxpyAllArchitectures is the artifact's cgo.TestMultiSaxpy:
// the architecture-independent SAXPY must stage the widest dialect each
// machine supports and compute the same result everywhere.
func TestMultiSaxpyAllArchitectures(t *testing.T) {
	archs := []struct {
		arch     *isa.Microarch
		wantOp   string // the load op the staged dialect must use
		forbidOp string
	}{
		{isa.Haswell, "_mm256_fmadd_ps", ""},
		{isa.SandyBridge, "_mm256_mul_ps", "_mm256_fmadd_ps"},
		{isa.Nehalem, "_mm_mul_ps", "_mm256_mul_ps"},
	}
	for _, tc := range archs {
		tc := tc
		t.Run(tc.arch.Name, func(t *testing.T) {
			rt, err := core.NewRuntime(tc.arch, cgen.HostEnvironment)
			if err != nil {
				t.Fatal(err)
			}
			k := StagedSaxpyMulti(tc.arch.Features)
			ops := ir.Schedule(k.F).CountOps()
			if tc.wantOp != "" && ops[tc.wantOp] == 0 {
				t.Errorf("%s dialect missing %s: %v", tc.arch.Name, tc.wantOp, ops)
			}
			if tc.forbidOp != "" && ops[tc.forbidOp] != 0 {
				t.Errorf("%s dialect staged %s", tc.arch.Name, tc.forbidOp)
			}
			kn, err := rt.Compile(k)
			if err != nil {
				t.Fatal(err)
			}
			n := 21
			a := make([]float32, n)
			b := make([]float32, n)
			want := make([]float32, n)
			for i := range a {
				a[i] = float32(i)
				b[i] = float32(2*i + 1)
				want[i] = a[i] + b[i]*1.5
			}
			if _, err := kn.Call(a, b, float32(1.5), n); err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if math.Abs(float64(a[i]-want[i])) > 1e-5 {
					t.Fatalf("a[%d] = %v, want %v", i, a[i], want[i])
				}
			}
		})
	}
}

func TestStagedDot512OnSkylakeX(t *testing.T) {
	rt, err := core.NewRuntime(isa.SkylakeX, cgen.HostEnvironment)
	if err != nil {
		t.Fatal(err)
	}
	kn, err := rt.Compile(StagedDot512(rt.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	a := randF32(n, 41)
	b := randF32(n, 42)
	out, err := kn.Call(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	want := RefDotF32(a, b)
	if math.Abs(out.AsFloat()-want) > absDotBound(a, b) {
		t.Errorf("dot512 = %v, want %v", out.AsFloat(), want)
	}
	// And it must be rejected on Haswell (no AVX-512).
	if _, err := rt.Compile(StagedDot512(isa.Haswell.Features)); err == nil {
		t.Error("AVX-512 dot accepted on a Haswell feature set")
	}
}

func TestStagedLogistic(t *testing.T) {
	r := rt()
	kn, err := r.Compile(StagedLogistic(r.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	x := randF32(n, 51)
	for i := range x {
		x[i] *= 6 // spread over the sigmoid's interesting range
	}
	y := make([]float32, n)
	if _, err := kn.Call(x, y, n); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want := 1 / (1 + math.Exp(-float64(x[i])))
		if math.Abs(float64(y[i])-want) > 1e-5 {
			t.Fatalf("σ(%v) = %v, want %v", x[i], y[i], want)
		}
	}
}

func TestStagedMMMNaiveMatchesBlocked(t *testing.T) {
	r := rt()
	naive, err := r.Compile(StagedMMMNaive(r.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	a := randF32(n*n, 61)
	b := randF32(n*n, 62)
	c := make([]float32, n*n)
	want := make([]float32, n*n)
	RefMMM(a, b, want, n)
	if _, err := naive.Call(a, b, c, n); err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if math.Abs(float64(c[i]-want[i])) > 1e-4 {
			t.Fatalf("naive c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestBindPlaceholder(t *testing.T) {
	r := rt()
	kn, err := r.Compile(StagedSaxpy(r.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 4 pattern: declare the native placeholder, bind it,
	// call it like a plain function.
	var saxpy func(a, b []float32, s float32, n int)
	if err := core.Bind(kn, &saxpy); err != nil {
		t.Fatal(err)
	}
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := []float32{9, 8, 7, 6, 5, 4, 3, 2, 1}
	saxpy(a, b, 2, len(a))
	if a[0] != 19 || a[8] != 11 {
		t.Errorf("bound saxpy result: %v", a)
	}

	// Isomorphism violations must be rejected (the paper's Section 3.5
	// limitation, closed here).
	var wrongArity func(a []float32, s float32, n int)
	if err := core.Bind(kn, &wrongArity); err == nil {
		t.Error("arity mismatch accepted")
	}
	var wrongElem func(a, b []float64, s float32, n int)
	if err := core.Bind(kn, &wrongElem); err == nil {
		t.Error("element-type mismatch accepted")
	}
	var wrongScalar func(a, b []float32, s int, n int)
	if err := core.Bind(kn, &wrongScalar); err == nil {
		t.Error("scalar-type mismatch accepted")
	}
	var wrongReturn func(a, b []float32, s float32, n int) float32
	if err := core.Bind(kn, &wrongReturn); err == nil {
		t.Error("phantom return accepted")
	}
}

func TestBindWithResult(t *testing.T) {
	r := rt()
	k, err := StagedDot(32, r.Arch.Features)
	if err != nil {
		t.Fatal(err)
	}
	kn, err := r.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	var dot func(a, b []float32, n int) float32
	if err := core.Bind(kn, &dot); err != nil {
		t.Fatal(err)
	}
	a := make([]float32, 32)
	for i := range a {
		a[i] = 1
	}
	if got := dot(a, a, 32); got != 32 {
		t.Errorf("dot = %v, want 32", got)
	}
}
