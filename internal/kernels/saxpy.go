package kernels

import (
	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
)

// SaxpyFlops is the flop count the paper charges SAXPY: 2n.
func SaxpyFlops(n int) int64 { return 2 * int64(n) }

// StagedSaxpy stages Figure 4's NSaxpy: an AVX+FMA main loop over
// 8-element chunks plus a scalar tail, computing a[i] += b[i]·s.
func StagedSaxpy(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("saxpy", features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	b := k.ParamF32Ptr()
	scalar := k.ParamF32()
	n := k.ParamInt()

	n0 := n.Shr(3).Shl(3)
	vecS := k.MM256Set1Ps(scalar)
	k.For(k.ConstInt(0), n0, 8, func(i dsl.Int) {
		vecA := k.MM256LoaduPs(a, i)
		vecB := k.MM256LoaduPs(b, i)
		res := k.MM256FmaddPs(vecB, vecS, vecA)
		k.MM256StoreuPs(a, i, res)
	})
	k.For(n0, n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Add(b.At(i).Mul(scalar)))
	})
	return k
}

// JavaSaxpy stages the paper's JSaxpy baseline — the loop HotSpot's SLP
// does vectorize (with SSE, without FMA).
func JavaSaxpy(features isa.FeatureSet) *ir.Func {
	k := dsl.NewKernel("JSaxpy", features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	b := k.ParamF32Ptr()
	s := k.ParamF32()
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Add(b.At(i).Mul(s)))
	})
	return k.F
}

// RefSaxpy is the Go reference.
func RefSaxpy(a, b []float32, s float32) {
	for i := range a {
		a[i] += b[i] * s
	}
}
