package kernels

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hotspot"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/quant"
	"repro/internal/vm"
)

func rt() *core.Runtime { return core.DefaultRuntime() }

func randF32(n int, seed uint64) []float32 {
	rng := vm.NewXorshift(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.Uniform()*2 - 1)
	}
	return out
}

func TestStagedSaxpyMatchesReference(t *testing.T) {
	r := rt()
	kn, err := r.Compile(StagedSaxpy(r.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7, 8, 64, 100, 1000} {
		a := randF32(n, 1)
		b := randF32(n, 2)
		want := append([]float32(nil), a...)
		RefSaxpy(want, b, 1.25)
		if _, err := kn.Call(a, b, float32(1.25), n); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			// The staged kernel fuses the multiply-add; the reference
			// rounds the product, so allow one ulp of slack.
			if math.Abs(float64(a[i]-want[i])) > 1e-6*(1+math.Abs(float64(want[i]))) {
				t.Fatalf("n=%d: a[%d] = %v, want %v", n, i, a[i], want[i])
			}
		}
	}
}

func TestJavaSaxpyMatchesReference(t *testing.T) {
	v := hotspot.NewVM(isa.Haswell)
	m, err := v.Load(JavaSaxpy(isa.Haswell.Features))
	if err != nil {
		t.Fatal(err)
	}
	n := 53
	a := randF32(n, 3)
	b := randF32(n, 4)
	want := append([]float32(nil), a...)
	RefSaxpy(want, b, -0.75)
	aBuf, bBuf := vm.PinF32(a), vm.PinF32(b)
	if _, err := m.InvokeAt(hotspot.TierC2, vm.PtrValue(aBuf, 0), vm.PtrValue(bBuf, 0),
		vm.F32Value(-0.75), vm.IntValue(n)); err != nil {
		t.Fatal(err)
	}
	aBuf.UnpinF32(a)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("a[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

func mmmClose(t *testing.T, got, want []float32, tol float64) {
	t.Helper()
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > tol*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStagedMMMMatchesReference(t *testing.T) {
	r := rt()
	kn, err := r.Compile(StagedMMM(r.Arch.Features))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{8, 16, 24} {
		a := randF32(n*n, 5)
		b := randF32(n*n, 6)
		c := randF32(n*n, 7)
		want := append([]float32(nil), c...)
		RefMMM(a, b, want, n)
		if _, err := kn.Call(a, b, c, n); err != nil {
			t.Fatal(err)
		}
		mmmClose(t, c, want, 1e-4)
	}
}

func TestJavaMMMsMatchReference(t *testing.T) {
	for _, build := range []struct {
		name string
		f    func(isa.FeatureSet) *ir.Func
	}{
		{"triple", JavaMMMTriple},
		{"blocked", JavaMMMBlocked},
	} {
		build := build
		t.Run(build.name, func(t *testing.T) {
			v := hotspot.NewVM(isa.Haswell)
			m, err := v.Load(build.f(isa.Haswell.Features))
			if err != nil {
				t.Fatal(err)
			}
			n := 16
			a := randF32(n*n, 31)
			b := randF32(n*n, 32)
			c := randF32(n*n, 33)
			want := append([]float32(nil), c...)
			RefMMM(a, b, want, n)
			cBuf := vm.PinF32(c)
			if _, err := m.InvokeAt(hotspot.TierC2,
				vm.PtrValue(vm.PinF32(a), 0), vm.PtrValue(vm.PinF32(b), 0),
				vm.PtrValue(cBuf, 0), vm.IntValue(n)); err != nil {
				t.Fatal(err)
			}
			cBuf.UnpinF32(c)
			mmmClose(t, c, want, 1e-4)
			// Neither Java MMM may have been vectorized (Figure 6b).
			if m.SLP.Vectorized() {
				t.Errorf("SLP vectorized %s MMM; HotSpot does not", build.name)
			}
		})
	}
}

// absDotBound returns the float-accumulation tolerance for a dot of the
// given arrays: a small multiple of Σ|a_i·b_i|.
func absDotBound(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) * float64(b[i]))
	}
	return 1e-5 * (1 + s)
}

func TestDotStagedAllPrecisions(t *testing.T) {
	r := rt()
	n := quant.Pad(1000, 128)
	a := randF32(n, 11)
	b := randF32(n, 12)
	tol := absDotBound(a, b)
	rng := vm.NewXorshift(99)

	for _, bits := range []int{32, 16, 8, 4} {
		k, err := StagedDot(bits, r.Arch.Features)
		if err != nil {
			t.Fatal(err)
		}
		kn, err := r.Compile(k)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		var got, want float64
		switch bits {
		case 32:
			out, err := kn.Call(a, b, n)
			if err != nil {
				t.Fatal(err)
			}
			got, want = out.AsFloat(), RefDotF32(a, b)
		case 16:
			ha, hb := quant.EncodeF16(a), quant.EncodeF16(b)
			out, err := kn.Call(ha.Data, hb.Data, n)
			if err != nil {
				t.Fatal(err)
			}
			// The kernel computes exactly the dot of the decoded halves.
			got, want = out.AsFloat(), RefDotF32(ha.Decode(), hb.Decode())
		case 8:
			qa, qb := quant.QuantizeQ8(a, rng), quant.QuantizeQ8(b, rng)
			invSS := float32(1) / (qa.Scale * qb.Scale)
			out, err := kn.Call(qa.Data, qb.Data, invSS, n)
			if err != nil {
				t.Fatal(err)
			}
			got = out.AsFloat()
			want = float64(RefDotI8(qa.Data, qb.Data)) * float64(invSS)
		case 4:
			qa, qb := quant.QuantizeQ4(a, rng), quant.QuantizeQ4(b, rng)
			invSS := float32(1) / (qa.Scale * qb.Scale)
			out, err := kn.Call(qa.Data, qb.Data, DecodeLUT4(), invSS, n)
			if err != nil {
				t.Fatal(err)
			}
			got = out.AsFloat()
			want = float64(RefDotQ4(qa.Data, qb.Data, n)) * float64(invSS)

			// The ALU-decode ablation variant must agree exactly.
			alu, err := rt().Compile(StagedDot4ALU(isa.Haswell.Features))
			if err != nil {
				t.Fatal(err)
			}
			aluOut, err := alu.Call(qa.Data, qb.Data, invSS, n)
			if err != nil {
				t.Fatal(err)
			}
			if aluOut.AsFloat() != got {
				t.Errorf("4-bit ALU-decode variant = %v, LUT variant = %v",
					aluOut.AsFloat(), got)
			}
		}
		if math.Abs(got-want) > tol {
			t.Errorf("bits=%d: dot = %v, want %v (tol %g)", bits, got, want, tol)
		}
	}
}

func TestDotJavaAllPrecisions(t *testing.T) {
	n := quant.Pad(512, 128)
	a := randF32(n, 21)
	b := randF32(n, 22)
	tol := absDotBound(a, b)
	rng := vm.NewXorshift(7)
	v := hotspot.NewVM(isa.Haswell)

	for _, bits := range []int{32, 16, 8, 4} {
		f, err := JavaDot(bits, isa.Haswell.Features)
		if err != nil {
			t.Fatal(err)
		}
		m, err := v.Load(f)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		var got, want float64
		switch bits {
		case 32:
			out, err := m.InvokeAt(hotspot.TierC2,
				vm.PtrValue(vm.PinF32(a), 0), vm.PtrValue(vm.PinF32(b), 0), vm.IntValue(n))
			if err != nil {
				t.Fatal(err)
			}
			got, want = out.AsFloat(), RefDotF32(a, b)
		case 16:
			// Java 16-bit path: quantized shorts.
			sa, sb := quant.Scale(a, 16), quant.Scale(b, 16)
			qa := make([]int16, n)
			qb := make([]int16, n)
			var sum int64
			for i := range a {
				qa[i] = int16(a[i] * sa)
				qb[i] = int16(b[i] * sb)
				sum += int64(qa[i]) * int64(qb[i])
			}
			out, err := m.InvokeAt(hotspot.TierC2,
				vm.PtrValue(vm.PinI16(qa), 0), vm.PtrValue(vm.PinI16(qb), 0),
				vm.F32Value(1/(sa*sb)), vm.IntValue(n))
			if err != nil {
				t.Fatal(err)
			}
			got, want = out.AsFloat(), float64(float32(int32(sum))*(1/(sa*sb)))
		case 8:
			qa, qb := quant.QuantizeQ8(a, rng), quant.QuantizeQ8(b, rng)
			out, err := m.InvokeAt(hotspot.TierC2,
				vm.PtrValue(vm.PinI8(qa.Data), 0), vm.PtrValue(vm.PinI8(qb.Data), 0),
				vm.F32Value(1/(qa.Scale*qb.Scale)), vm.IntValue(n))
			if err != nil {
				t.Fatal(err)
			}
			got = out.AsFloat()
			want = float64(RefDotI8(qa.Data, qb.Data)) / float64(qa.Scale*qb.Scale)
		case 4:
			qa, qb := quant.QuantizeQ4(a, rng), quant.QuantizeQ4(b, rng)
			out, err := m.InvokeAt(hotspot.TierC2,
				vm.PtrValue(vm.PinU8(qa.Data), 0), vm.PtrValue(vm.PinU8(qb.Data), 0),
				vm.F32Value(1/(qa.Scale*qb.Scale)), vm.IntValue(n))
			if err != nil {
				t.Fatal(err)
			}
			got = out.AsFloat()
			want = float64(RefDotQ4(qa.Data, qb.Data, n)) / float64(qa.Scale*qb.Scale)
		}
		if math.Abs(got-want) > tol {
			t.Errorf("bits=%d: java dot = %v, want %v (tol %g)", bits, got, want, tol)
		}
	}
}

func TestStagedDotRejectsBadBits(t *testing.T) {
	if _, err := StagedDot(12, isa.Haswell.Features); err == nil {
		t.Error("bits=12 accepted")
	}
	if _, err := JavaDot(0, isa.Haswell.Features); err == nil {
		t.Error("bits=0 accepted")
	}
}

func TestDotPsStepTable(t *testing.T) {
	// Section 4.1: "in the case of 32, 16 and 8-bit versions, 32
	// elements are processed at a time and in the case of the 4-bit, 128
	// elements at a time."
	for _, c := range []struct{ bits, want int }{{32, 32}, {16, 32}, {8, 32}, {4, 128}} {
		if got := DotPsStep(c.bits); got != c.want {
			t.Errorf("dot_ps_step(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}
