package kernels

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// Target is one registered kernel as the vet driver sees it: a name, the
// CPUID families the kernel stages unconditionally (machines lacking
// them skip the target instead of reporting the inevitable ISA errors —
// the same decision Runtime.Compile makes dynamically via MissingISAs),
// and a constructor staging it against a machine's feature set.
type Target struct {
	Name     string
	Requires []isa.Family
	Build    func(features isa.FeatureSet) (*ir.Func, error)
}

// Targets lists every kernel this package ships, in a stable order. The
// ngen vet subcommand and the verifier tests range over this; a kernel
// missing from the list escapes static checking, so constructors added
// to the package should be registered here.
func Targets() []Target {
	return []Target{
		{Name: "saxpy", Requires: []isa.Family{isa.AVX, isa.FMA},
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedSaxpy(fs).F, nil }},
		{Name: "JSaxpy",
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return JavaSaxpy(fs), nil }},
		{Name: "saxpy_multi", // dispatches on the feature set; runs anywhere
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedSaxpyMulti(fs).F, nil }},
		{Name: "mmm_blocked", Requires: []isa.Family{isa.AVX},
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedMMM(fs).F, nil }},
		{Name: "mmm_naive", Requires: []isa.Family{isa.AVX, isa.FMA},
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedMMMNaive(fs).F, nil }},
		{Name: "JMMM_triple",
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return JavaMMMTriple(fs), nil }},
		{Name: "JMMM_blocked",
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return JavaMMMBlocked(fs), nil }},
		{Name: "dot32", Requires: []isa.Family{isa.AVX, isa.FMA},
			Build: stagedDotTarget(32)},
		{Name: "dot16", Requires: []isa.Family{isa.AVX, isa.FMA, isa.FP16C},
			Build: stagedDotTarget(16)},
		{Name: "dot8", Requires: []isa.Family{isa.AVX2},
			Build: stagedDotTarget(8)},
		{Name: "dot4", Requires: []isa.Family{isa.AVX2},
			Build: stagedDotTarget(4)},
		{Name: "dot4_alu", Requires: []isa.Family{isa.AVX2},
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedDot4ALU(fs).F, nil }},
		{Name: "JDot32", Build: javaDotTarget(32)},
		{Name: "JDot16", Build: javaDotTarget(16)},
		{Name: "JDot8", Build: javaDotTarget(8)},
		{Name: "JDot4", Build: javaDotTarget(4)},
		{Name: "dot512", Requires: []isa.Family{isa.AVX512},
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedDot512(fs).F, nil }},
		{Name: "logistic", Requires: []isa.Family{isa.AVX}, // SVML rides on any vector ISA
			Build: func(fs isa.FeatureSet) (*ir.Func, error) { return StagedLogistic(fs).F, nil }},
	}
}

func stagedDotTarget(bits int) func(isa.FeatureSet) (*ir.Func, error) {
	return func(fs isa.FeatureSet) (*ir.Func, error) {
		k, err := StagedDot(bits, fs)
		if err != nil {
			return nil, err
		}
		return k.F, nil
	}
}

func javaDotTarget(bits int) func(isa.FeatureSet) (*ir.Func, error) {
	return func(fs isa.FeatureSet) (*ir.Func, error) {
		return JavaDot(bits, fs)
	}
}
