package kernels

import (
	"fmt"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/quant"
)

// DotOps is the op count the paper charges every precision: 2n.
func DotOps(n int) int64 { return 2 * int64(n) }

// DotPsStep is the virtual intrinsic `dot_ps_step(bits)` of Section 4.1:
// how many elements one staged dot step consumes. 32/16/8-bit process 32
// elements per unrolled iteration, 4-bit processes 128.
func DotPsStep(bits int) int {
	if bits == 4 {
		return 128
	}
	return 32
}

// ReduceM256 stages the horizontal sum of a __m256 into a float —
// hadd/extract/add, the reduce_sum of Section 4.1.
func ReduceM256(k *dsl.Kernel, v dsl.M256) dsl.F32 {
	h1 := k.MM256HaddPs(v, v)
	h2 := k.MM256HaddPs(h1, h1)
	lo := k.MM256Castps256Ps128(h2)
	hi := k.MM256Extractf128Ps(h2, 1)
	return k.MMCvtssF32(k.MMAddPs(lo, hi))
}

// reduceI32ToF32 converts an 8×i32 accumulator to floats and sums it.
func reduceI32ToF32(k *dsl.Kernel, v dsl.M256i) dsl.F32 {
	return ReduceM256(k, k.MM256Cvtepi32Ps(v))
}

// StagedDot builds the variable-precision staged dot product
// (the paper's `dot_AVX2`): a loop stepping by DotPsStep(bits), each
// iteration staged by dotPs — the virtual intrinsic `dot_ps(bits, x, y)`
// — with the final cross-lane reduction at the end. n must be padded to
// a multiple of the step (quant.Pad).
//
// Parameter shapes by precision:
//
//	32: (a []float32, b []float32, n)          → float32
//	16: (a []uint16,  b []uint16,  n)          → float32  (IEEE half)
//	 8: (a []int8,    b []int8,    invSS, n)   → float32  (Buckwild!)
//	 4: (a []uint8,   b []uint8,   invSS, n)   → float32  (ZipML packed)
//
// invSS is 1/(s_a·s_b), the dequantization factor.
func StagedDot(bits int, features isa.FeatureSet) (*dsl.Kernel, error) {
	if err := quant.CheckBits(bits); err != nil {
		return nil, err
	}
	k := dsl.NewKernel(fmt.Sprintf("dot%d", bits), features)
	step := DotPsStep(bits)
	switch bits {
	case 32:
		a, b := k.ParamF32Ptr(), k.ParamF32Ptr()
		n := k.ParamInt()
		acc := k.ForAccM256(k.ConstInt(0), n, step, k.MM256SetzeroPs(),
			func(i dsl.Int, acc dsl.M256) dsl.M256 {
				// 4× unrolled: 32 floats per iteration.
				for u := 0; u < 4; u++ {
					va := k.MM256LoaduPs(a, i.AddC(8*u))
					vb := k.MM256LoaduPs(b, i.AddC(8*u))
					acc = k.MM256FmaddPs(va, vb, acc)
				}
				return acc
			})
		k.Return(ReduceM256(k, acc))
	case 16:
		a, b := k.ParamU16Ptr(), k.ParamU16Ptr()
		n := k.ParamInt()
		acc := k.ForAccM256(k.ConstInt(0), n, step, k.MM256SetzeroPs(),
			func(i dsl.Int, acc dsl.M256) dsl.M256 {
				for u := 0; u < 4; u++ {
					ha := k.MMLoaduSi128(a, i.AddC(8*u))
					hb := k.MMLoaduSi128(b, i.AddC(8*u))
					va := k.MM256CvtphPs(ha)
					vb := k.MM256CvtphPs(hb)
					acc = k.MM256FmaddPs(va, vb, acc)
				}
				return acc
			})
		k.Return(ReduceM256(k, acc))
	case 8:
		a, b := k.ParamI8Ptr(), k.ParamI8Ptr()
		invSS := k.ParamF32()
		n := k.ParamInt()
		ones := k.MM256Set1Epi16(k.ConstI16(1))
		acc := k.ForAccM256i(k.ConstInt(0), n, step, k.MM256SetzeroSi256(),
			func(i dsl.Int, acc dsl.M256i) dsl.M256i {
				va := k.MM256LoaduSi256(a, i)
				vb := k.MM256LoaduSi256(b, i)
				acc = dotBytes(k, va, vb, ones, acc)
				return acc
			})
		k.Return(reduceI32ToF32(k, acc).Mul(invSS))
	case 4:
		a, b := k.ParamU8Ptr(), k.ParamU8Ptr()
		lut := k.ParamI8Ptr() // 16-byte sign-magnitude decode table
		invSS := k.ParamF32()
		n := k.ParamInt() // element count; bytes hold 2 elements each
		ones := k.MM256Set1Epi16(k.ConstI16(1))
		// Hoist the decode LUT: one pshufb per code vector decodes all
		// 32 nibbles (the "domain knowledge ... HotSpot cannot
		// synthesize" of Section 4.2).
		lutVec := k.MM256Broadcastsi128Si256(k.MMLoaduSi128(lut, k.ConstInt(0)))
		mask := k.MM256Set1Epi8(k.ConstI8(0x0F))
		acc := k.ForAccM256i(k.ConstInt(0), n, step, k.MM256SetzeroSi256(),
			func(i dsl.Int, acc dsl.M256i) dsl.M256i {
				// 128 elements = 64 bytes = two 32-byte loads per array;
				// the host loop unrolls the staged code (the paper's
				// macro-system usage).
				byteOff := i.Shr(1)
				for _, u := range []int{0, 32} {
					va := k.MM256LoaduSi256(a, byteOff.AddC(u))
					vb := k.MM256LoaduSi256(b, byteOff.AddC(u))
					loA := k.MM256ShuffleEpi8(lutVec, k.MM256AndSi256(va, mask))
					loB := k.MM256ShuffleEpi8(lutVec, k.MM256AndSi256(vb, mask))
					hiA := k.MM256ShuffleEpi8(lutVec, k.MM256AndSi256(k.MM256SrliEpi16(va, 4), mask))
					hiB := k.MM256ShuffleEpi8(lutVec, k.MM256AndSi256(k.MM256SrliEpi16(vb, 4), mask))
					acc = dotBytes(k, loA, loB, ones, acc)
					acc = dotBytes(k, hiA, hiB, ones, acc)
				}
				return acc
			})
		k.Return(reduceI32ToF32(k, acc).Mul(invSS))
	}
	return k, nil
}

// DecodeLUT4 is the 16-byte table mapping a 4-bit sign-magnitude code to
// its signed byte value, for the staged 4-bit kernel's pshufb decode.
func DecodeLUT4() []int8 {
	out := make([]int8, 16)
	for c := 0; c < 16; c++ {
		out[c] = int8(quant.Decode4(uint8(c)))
	}
	return out
}

// dotBytes stages the signed-byte dot-product step: 32 products
// accumulated pairwise into 8×i32 lanes via the abs/sign/maddubs/madd
// chain (Section 4.1's "fast additions and multiplications ... without
// spending a single instruction to perform casts").
func dotBytes(k *dsl.Kernel, va, vb, ones, acc dsl.M256i) dsl.M256i {
	absA := k.MM256AbsEpi8(va)
	signB := k.MM256SignEpi8(vb, va)
	p16 := k.MM256MaddubsEpi16(absA, signB)
	p32 := k.MM256MaddEpi16(p16, ones)
	return k.MM256AddEpi32(acc, p32)
}

// unpackNibbles stages the ZipML 4-bit decode: split packed codes into
// even-element (low nibble) and odd-element (high nibble) signed bytes.
// Codes are sign-magnitude: bit 3 sign, bits 0-2 magnitude.
func unpackNibbles(k *dsl.Kernel, v dsl.M256i) (lo, hi dsl.M256i) {
	mask := k.MM256Set1Epi8(k.ConstI8(0x0F))
	decode := func(code dsl.M256i) dsl.M256i {
		mag := k.MM256AndSi256(code, k.MM256Set1Epi8(k.ConstI8(7)))
		signBit := k.MM256AndSi256(code, k.MM256Set1Epi8(k.ConstI8(8)))
		neg := k.MM256CmpeqEpi8(signBit, k.MM256Set1Epi8(k.ConstI8(8)))
		// neg is −1 where negative; OR with 1 keeps positives at +1.
		sign := k.MM256OrSi256(neg, k.MM256Set1Epi8(k.ConstI8(1)))
		return k.MM256SignEpi8(mag, sign)
	}
	loCodes := k.MM256AndSi256(v, mask)
	hiCodes := k.MM256AndSi256(k.MM256SrliEpi16(v, 4), mask)
	return decode(loCodes), decode(hiCodes)
}

// StagedDot4ALU is the ablation variant of the 4-bit kernel that decodes
// sign-magnitude nibbles with and/cmpeq/or/sign arithmetic instead of the
// pshufb LUT — the design choice DESIGN.md calls out. Same signature as
// StagedDot(4) minus the LUT parameter.
func StagedDot4ALU(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("dot4_alu", features)
	a, b := k.ParamU8Ptr(), k.ParamU8Ptr()
	invSS := k.ParamF32()
	n := k.ParamInt()
	ones := k.MM256Set1Epi16(k.ConstI16(1))
	acc := k.ForAccM256i(k.ConstInt(0), n, DotPsStep(4), k.MM256SetzeroSi256(),
		func(i dsl.Int, acc dsl.M256i) dsl.M256i {
			byteOff := i.Shr(1)
			for _, u := range []int{0, 32} {
				va := k.MM256LoaduSi256(a, byteOff.AddC(u))
				vb := k.MM256LoaduSi256(b, byteOff.AddC(u))
				loA, hiA := unpackNibbles(k, va)
				loB, hiB := unpackNibbles(k, vb)
				acc = dotBytes(k, loA, loB, ones, acc)
				acc = dotBytes(k, hiA, hiB, ones, acc)
			}
			return acc
		})
	k.Return(reduceI32ToF32(k, acc).Mul(invSS))
	return k
}

// JavaDot stages the Java baseline at each precision (Section 4.1's
// "Java implementation"): 32-bit is a plain scalar reduction; 16- and
// 8-bit operate on quantized short/byte arrays with blocked integer
// accumulation (Java promotes sub-int types to 32-bit before
// arithmetic); 4-bit decodes sign-magnitude nibble pairs with scalar bit
// manipulation.
func JavaDot(bits int, features isa.FeatureSet) (*ir.Func, error) {
	if err := quant.CheckBits(bits); err != nil {
		return nil, err
	}
	k := dsl.NewKernel(fmt.Sprintf("JDot%d", bits), features)
	switch bits {
	case 32:
		a, b := k.ParamF32Ptr(), k.ParamF32Ptr()
		n := k.ParamInt()
		acc := k.ForAccF32(k.ConstInt(0), n, 1, k.ConstF32(0),
			func(i dsl.Int, acc dsl.F32) dsl.F32 {
				return acc.Add(a.At(i).Mul(b.At(i)))
			})
		k.Return(acc)
	case 16:
		// No half floats in Java: quantized shorts, integer accumulate.
		a, b := k.ParamI16Ptr(), k.ParamI16Ptr()
		invSS := k.ParamF32()
		n := k.ParamInt()
		acc := k.ForAccI64(k.ConstInt(0), n, 1, k.ConstI64(0),
			func(i dsl.Int, acc dsl.I64) dsl.I64 {
				return acc.Add(a.At(i).Mul(b.At(i)).ToI64())
			})
		k.Return(acc.ToInt().ToF32().Mul(invSS))
	case 8:
		a, b := k.ParamI8Ptr(), k.ParamI8Ptr()
		invSS := k.ParamF32()
		n := k.ParamInt()
		acc := k.ForAccInt(k.ConstInt(0), n, 1, k.ConstInt(0),
			func(i dsl.Int, acc dsl.Int) dsl.Int {
				return acc.Add(a.At(i).Mul(b.At(i)))
			})
		k.Return(acc.ToF32().Mul(invSS))
	case 4:
		a, b := k.ParamU8Ptr(), k.ParamU8Ptr()
		invSS := k.ParamF32()
		n := k.ParamInt() // element count; loop over n/2 bytes
		one := k.ConstInt(1)
		decode := func(code dsl.Int) dsl.Int {
			mag := code.And(k.ConstInt(7))
			sign := one.Sub(code.Shr(3).And(one).Shl(1))
			return mag.Mul(sign)
		}
		acc := k.ForAccInt(k.ConstInt(0), n.Shr(1), 1, k.ConstInt(0),
			func(i dsl.Int, acc dsl.Int) dsl.Int {
				va, vb := a.At(i), b.At(i)
				lo := decode(va.And(k.ConstInt(0xF))).Mul(decode(vb.And(k.ConstInt(0xF))))
				hi := decode(va.Shr(4)).Mul(decode(vb.Shr(4)))
				return acc.Add(lo).Add(hi)
			})
		k.Return(acc.ToF32().Mul(invSS))
	}
	return k.F, nil
}

// RefDotF32 is the float reference.
func RefDotF32(a, b []float32) float64 {
	var sum float64
	for i := range a {
		sum += float64(a[i]) * float64(b[i])
	}
	return sum
}

// RefDotI8 is the quantized 8-bit reference: Σ qa·qb.
func RefDotI8(a, b []int8) int64 {
	var sum int64
	for i := range a {
		sum += int64(a[i]) * int64(b[i])
	}
	return sum
}

// RefDotQ4 is the packed 4-bit reference over the ZipML layout.
func RefDotQ4(a, b []uint8, n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		ca, cb := a[i/2], b[i/2]
		if i%2 == 1 {
			ca >>= 4
			cb >>= 4
		}
		sum += int64(quant.Decode4(ca&0xF)) * int64(quant.Decode4(cb&0xF))
	}
	return sum
}
