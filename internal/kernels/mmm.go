package kernels

import (
	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
)

// MMMFlops is the flop count of an n×n matrix multiplication: 2n³.
func MMMFlops(n int) int64 { return 2 * int64(n) * int64(n) * int64(n) }

// Transpose8x8 stages the paper's Figure 5 in-register transpose: take
// 8 __m256 rows and return the 8 transposed columns. It is written the
// way the paper advertises — host-language slices, closures and helper
// functions acting as a macro system over staged values.
func Transpose8x8(k *dsl.Kernel, row []dsl.M256) []dsl.M256 {
	// Stage 1: interleave row pairs.
	var tt []dsl.M256
	for i := 0; i < 8; i += 2 {
		tt = append(tt,
			k.MM256UnpackloPs(row[i], row[i+1]),
			k.MM256UnpackhiPs(row[i], row[i+1]))
	}
	// Stage 2: 4-wide shuffles within groups of four.
	var ss []dsl.M256
	for g := 0; g < 2; g++ {
		a, b, c, d := tt[4*g], tt[4*g+1], tt[4*g+2], tt[4*g+3]
		ss = append(ss,
			k.MM256ShufflePs(a, c, 68),
			k.MM256ShufflePs(a, c, 238),
			k.MM256ShufflePs(b, d, 68),
			k.MM256ShufflePs(b, d, 238))
	}
	// Stage 3: zip the 128-bit halves.
	out := make([]dsl.M256, 0, 8)
	for i := 0; i < 4; i++ {
		out = append(out, k.MM256Permute2f128Ps(ss[i], ss[i+4], 0x20))
	}
	for i := 0; i < 4; i++ {
		out = append(out, k.MM256Permute2f128Ps(ss[i], ss[i+4], 0x31))
	}
	return out
}

// treeAdd sums a slice of staged vectors with a balanced reduction tree
// — the recursive closure `f` of Figure 5 (lines 45-52).
func treeAdd(k *dsl.Kernel, l []dsl.M256) dsl.M256 {
	if len(l) == 1 {
		return l[0]
	}
	mid := len(l) / 2
	return k.MM256AddPs(treeAdd(k, l[:mid]), treeAdd(k, l[mid:]))
}

// StagedMMM stages Figure 5's blocked matrix multiplication
// (c += a·b, all matrices n×n row-major, n a multiple of 8): for each
// 8×8 block of B, transpose it in registers, then stream the rows of A
// against it.
func StagedMMM(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("mmm_blocked", features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	c := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()

	k.For(k.ConstInt(0), n, 8, func(kk dsl.Int) {
		k.For(k.ConstInt(0), n, 8, func(jj dsl.Int) {
			// Load the 8×8 block of B at (kk, jj) and transpose it.
			rows := make([]dsl.M256, 8)
			for i := 0; i < 8; i++ {
				rows[i] = k.MM256LoaduPs(b, kk.AddC(i).Mul(n).Add(jj))
			}
			blockB := Transpose8x8(k, rows)
			// Multiply every row of A's block column with the block.
			k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
				rowA := k.MM256LoaduPs(a, i.Mul(n).Add(kk))
				prods := make([]dsl.M256, 8)
				for j := range blockB {
					prods[j] = k.MM256MulPs(rowA, blockB[j])
				}
				mulAB := Transpose8x8(k, prods)
				rowC := k.MM256LoaduPs(c, i.Mul(n).Add(jj))
				accC := k.MM256AddPs(treeAdd(k, mulAB), rowC)
				k.MM256StoreuPs(c, i.Mul(n).Add(jj), accC)
			})
		})
	})
	return k
}

// JavaMMMTriple stages the plain Java triple loop — the Figure 6b
// baseline. The innermost loop is a scalar reduction, so SLP leaves it
// scalar.
func JavaMMMTriple(features isa.FeatureSet) *ir.Func {
	k := dsl.NewKernel("JMMM_triple", features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	c := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		k.For(k.ConstInt(0), n, 1, func(j dsl.Int) {
			sum := k.ForAccF32(k.ConstInt(0), n, 1, k.ConstF32(0),
				func(kk dsl.Int, acc dsl.F32) dsl.F32 {
					return acc.Add(a.At(i.Mul(n).Add(kk)).Mul(b.At(kk.Mul(n).Add(j))))
				})
			c.Set(i.Mul(n).Add(j), c.At(i.Mul(n).Add(j)).Add(sum))
		})
	})
	return k.F
}

// JavaMMMBlocked stages the blocked (block size 8) Java version of
// Figure 6b, in the cache-friendly i-k-j order: the innermost loop walks
// B and C contiguously, so the blocked version keeps its locality
// advantage over the triple loop. C2 unrolls it but generates no SIMD
// (Section 3.4): the inner body's multi-index addressing defeats SLP's
// adjacency packing, as the SLPReport records.
func JavaMMMBlocked(features isa.FeatureSet) *ir.Func {
	k := dsl.NewKernel("JMMM_blocked", features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	c := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 8, func(kk dsl.Int) {
		k.For(k.ConstInt(0), n, 8, func(jj dsl.Int) {
			k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
				k.For(kk, kk.AddC(8), 1, func(kx dsl.Int) {
					aik := a.At(i.Mul(n).Add(kx))
					k.For(jj, jj.AddC(8), 1, func(j dsl.Int) {
						idx := i.Mul(n).Add(j)
						c.Set(idx, c.At(idx).Add(aik.Mul(b.At(kx.Mul(n).Add(j)))))
					})
				})
			})
		})
	})
	return k.F
}

// RefMMM is the Go reference: c += a·b.
func RefMMM(a, b, c []float32, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := float32(0)
			for kk := 0; kk < n; kk++ {
				sum += a[i*n+kk] * b[kk*n+j]
			}
			c[i*n+j] += sum
		}
	}
}
