package kernels

import (
	"repro/internal/dsl"
	"repro/internal/isa"
)

// StagedSaxpyMulti is the architecture-independent SAXPY of the paper's
// artifact ("if the testing machine is not Haswell based, we provided an
// architecture-independent implementation": cgo.TestMultiSaxpy). The
// dispatch happens at staging time — the host language inspects the
// feature set and stages the widest available dialect, so the generated
// kernel contains no runtime branches:
//
//	AVX2+FMA → 8-wide fused loop (Haswell and later)
//	AVX      → 8-wide mul+add    (Sandy Bridge)
//	SSE      → 4-wide mul+add    (Nehalem and earlier)
//	otherwise a scalar loop.
func StagedSaxpyMulti(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("saxpy_multi", features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	b := k.ParamF32Ptr()
	scalar := k.ParamF32()
	n := k.ParamInt()

	switch {
	case features.Has(isa.AVX2, isa.FMA):
		n0 := n.Shr(3).Shl(3)
		vs := k.MM256Set1Ps(scalar)
		k.For(k.ConstInt(0), n0, 8, func(i dsl.Int) {
			k.MM256StoreuPs(a, i,
				k.MM256FmaddPs(k.MM256LoaduPs(b, i), vs, k.MM256LoaduPs(a, i)))
		})
		scalarTail(k, a, b, scalar, n0, n)
	case features.Has(isa.AVX):
		n0 := n.Shr(3).Shl(3)
		vs := k.MM256Set1Ps(scalar)
		k.For(k.ConstInt(0), n0, 8, func(i dsl.Int) {
			prod := k.MM256MulPs(k.MM256LoaduPs(b, i), vs)
			k.MM256StoreuPs(a, i, k.MM256AddPs(k.MM256LoaduPs(a, i), prod))
		})
		scalarTail(k, a, b, scalar, n0, n)
	case features.Has(isa.SSE):
		n0 := n.Shr(2).Shl(2)
		vs := k.MMSet1Ps(scalar)
		k.For(k.ConstInt(0), n0, 4, func(i dsl.Int) {
			prod := k.MMMulPs(k.MMLoaduPs(b, i), vs)
			k.MMStoreuPs(a, i, k.MMAddPs(k.MMLoaduPs(a, i), prod))
		})
		scalarTail(k, a, b, scalar, n0, n)
	default:
		scalarTail(k, a, b, scalar, k.ConstInt(0), n)
	}
	return k
}

func scalarTail(k *dsl.Kernel, a dsl.PF32, b dsl.PF32, s dsl.F32, from, to dsl.Int) {
	k.For(from, to, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Add(b.At(i).Mul(s)))
	})
}

// StagedDot512 is the AVX-512 dot product for Skylake-X class machines
// — the paper's forward-looking ISA (its spec work covers AVX-512 even
// though the testbed is Haswell). 32 floats per iteration in two fused
// 16-lane chains, cross-lane reduction via _mm512_reduce_add_ps.
// n must be a multiple of 32.
func StagedDot512(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("dot512", features)
	a, b := k.ParamF32Ptr(), k.ParamF32Ptr()
	n := k.ParamInt()
	acc := k.ForAccM512(k.ConstInt(0), n, 32, k.MM512SetzeroPs(),
		func(i dsl.Int, acc dsl.M512) dsl.M512 {
			for u := 0; u < 2; u++ {
				va := k.MM512LoaduPs(a, i.AddC(16*u))
				vb := k.MM512LoaduPs(b, i.AddC(16*u))
				acc = k.MM512FmaddPs(va, vb, acc)
			}
			return acc
		})
	k.Return(k.MM512ReduceAddPs(acc))
	return k
}

// StagedLogistic stages the logistic function σ(x) = 1/(1+e^(−x)) over
// a float array using the SVML exponential — the short-vector math
// library layer the paper counts in Table 1b (406 intrinsics) and
// describes new virtual ISAs as resembling (Section 4).
func StagedLogistic(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("logistic", features)
	x := k.ParamF32Ptr()
	y := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	zero := k.MM256SetzeroPs()
	one := k.MM256Set1Ps(k.ConstF32(1))
	k.For(k.ConstInt(0), n, 8, func(i dsl.Int) {
		vx := k.MM256LoaduPs(x, i)
		negX := k.MM256SubPs(zero, vx)
		e := k.MM256ExpPs(negX) // SVML
		k.MM256StoreuPs(y, i, k.MM256DivPs(one, k.MM256AddPs(one, e)))
	})
	return k
}

// StagedMMMNaive is the blocking ablation: a straightforward vectorized
// MMM without the 8×8 transpose — each C row accumulates rank-1 updates
// broadcast from A, streaming B rows directly. Correct and vector-wide,
// but with n× more passes over C and B traffic than the blocked kernel,
// it shows what Figure 5's in-register blocking buys.
func StagedMMMNaive(features isa.FeatureSet) *dsl.Kernel {
	k := dsl.NewKernel("mmm_naive", features)
	a := k.ParamF32Ptr()
	b := k.ParamF32Ptr()
	c := dsl.Mutable(k, k.ParamF32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		k.For(k.ConstInt(0), n, 1, func(kk dsl.Int) {
			aik := k.MM256BroadcastSs(a, i.Mul(n).Add(kk))
			k.For(k.ConstInt(0), n, 8, func(j dsl.Int) {
				rowB := k.MM256LoaduPs(b, kk.Mul(n).Add(j))
				rowC := k.MM256LoaduPs(c, i.Mul(n).Add(j))
				k.MM256StoreuPs(c, i.Mul(n).Add(j), k.MM256FmaddPs(aik, rowB, rowC))
			})
		})
	})
	return k
}
