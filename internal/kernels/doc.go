// Package kernels stages the paper's benchmark kernels: SAXPY (Figure 4)
// and blocked matrix-matrix multiplication (Figure 5) against AVX+FMA,
// the Section 4 variable-precision dot products against AVX2+FP16C, and
// their plain-Java counterparts that the simulated HotSpot baseline
// (internal/hotspot) compiles with SLP. Pure-Go reference
// implementations validate every kernel's output.
package kernels
