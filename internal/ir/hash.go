package ir

import "math"

// Structural hashing: a canonical 64-bit fingerprint of a staged
// function's computation graph. Two functions that stage the same ops,
// constants, types, blocks and effects hash identically even when their
// Sym numbering differs (re-staging a kernel allocates fresh ids), so
// the runtime's compile cache can recognise a graph it has already
// lowered. Everything that influences the compiled artifact is folded
// in: op names, argument structure, constant values, result wiring,
// effect annotations, and staged comment text (comments survive into
// the generated C).

// Hash returns the canonical structural hash of f. The function name is
// deliberately excluded — callers that key artifacts by name combine it
// with the hash themselves.
func Hash(f *Func) uint64 {
	h := hasher{h: fnvOffset, canon: make(map[int]uint64, f.G.NumNodes())}
	h.u64(uint64(len(f.Params)))
	for _, p := range f.Params {
		h.canonOf(p)
		h.typ(p.Typ)
		if f.G.IsMutable(p) {
			h.u64(1)
		} else {
			h.u64(0)
		}
		// Alignment facts feed the verifier, whose result is cached
		// under this hash alongside the compile artifacts.
		h.u64(uint64(f.G.Alignment(p)))
	}
	h.block(f, f.G.Root())
	return h.h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type hasher struct {
	h     uint64
	canon map[int]uint64 // sym id → canonical id, in first-visit order
	next  uint64
}

func (h *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.h = (h.h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
}

func (h *hasher) str(s string) {
	for i := 0; i < len(s); i++ {
		h.h = (h.h ^ uint64(s[i])) * fnvPrime
	}
	h.h = (h.h ^ 0xff) * fnvPrime // terminator: "ab","c" ≠ "a","bc"
}

// canonOf returns the canonical id of a symbol, assigning the next one
// on first encounter. Visit order is emission order, which is identical
// for structurally identical graphs.
func (h *hasher) canonOf(s Sym) uint64 {
	if id, ok := h.canon[s.ID]; ok {
		return id
	}
	id := h.next
	h.next++
	h.canon[s.ID] = id
	return id
}

func (h *hasher) typ(t Type) {
	h.u64(uint64(t.Kind)<<32 | uint64(t.Elem)<<16 | uint64(t.Vec))
}

func (h *hasher) exp(e Exp) {
	switch x := e.(type) {
	case nil:
		h.u64(0)
	case Sym:
		h.u64(1)
		h.u64(h.canonOf(x))
		h.typ(x.Typ)
	case Const:
		h.u64(2)
		h.typ(x.Typ)
		h.u64(uint64(x.I))
		h.u64(x.U)
		h.u64(math.Float64bits(x.F))
		if x.B {
			h.u64(1)
		} else {
			h.u64(0)
		}
	default:
		h.u64(3)
		h.str(e.String())
	}
}

func (h *hasher) effect(e Effect) {
	h.u64(uint64(e.Kind))
	h.u64(uint64(len(e.Reads)))
	for _, s := range e.Reads {
		h.u64(h.canonOf(s))
	}
	h.u64(uint64(len(e.Writes)))
	for _, s := range e.Writes {
		h.u64(h.canonOf(s))
	}
}

func (h *hasher) block(f *Func, b *Block) {
	h.u64(uint64(len(b.Params)))
	for _, p := range b.Params {
		h.u64(h.canonOf(p))
		h.typ(p.Typ)
	}
	h.u64(uint64(len(b.Nodes)))
	for _, n := range b.Nodes {
		d := n.Def
		h.str(d.Op)
		h.typ(d.Typ)
		h.u64(uint64(len(d.Args)))
		for _, a := range d.Args {
			h.exp(a)
		}
		// Staged comments carry their text in a side table; the C
		// unparser emits the text, so it is part of the identity.
		if d.Op == OpComment {
			if c, ok := d.Args[0].(Const); ok {
				h.str(f.G.CommentText(int(c.I)))
			}
		}
		h.effect(d.Effect)
		h.u64(uint64(len(d.Blocks)))
		for _, blk := range d.Blocks {
			h.block(f, blk)
		}
		h.u64(h.canonOf(n.Sym))
	}
	h.exp(b.Result)
}
