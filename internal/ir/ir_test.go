package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestCSEDeduplicatesPureNodes(t *testing.T) {
	f := NewFunc("cse", TI32, TI32)
	a, b := f.Param(0), f.Param(1)
	x := f.G.Add(a, b)
	y := f.G.Add(a, b)
	if x != y {
		t.Errorf("identical pure nodes not CSE'd: %v vs %v", x, y)
	}
	z := f.G.Add(b, a)
	if z == x {
		t.Errorf("add(b,a) wrongly CSE'd with add(a,b) (no commutativity assumed)")
	}
}

func TestCSEAcrossScopesButNotEffects(t *testing.T) {
	f := NewFunc("scopes", PtrType(isa.PrimF32), TI32)
	p := f.Param(0)
	outer := f.G.Add(f.Param(1), ConstInt(1))
	var inner Exp
	f.G.Loop(ConstInt(0), ConstInt(4), ConstInt(1), func(i Sym) {
		inner = f.G.Add(f.Param(1), ConstInt(1))
		_ = f.G.ALoad(p, i)
	})
	if inner != outer {
		t.Errorf("pure node in loop body should reuse outer definition")
	}
	// Loads are effectful: two identical loads must be distinct nodes.
	l1 := f.G.ALoad(p, ConstInt(0))
	l2 := f.G.ALoad(p, ConstInt(0))
	if l1 == l2 {
		t.Errorf("effectful loads were CSE'd")
	}
}

func TestConstantFolding(t *testing.T) {
	g := NewGraph()
	cases := []struct {
		got  Exp
		want Const
	}{
		{g.Add(ConstInt(2), ConstInt(3)), ConstInt(5)},
		{g.Mul(ConstF64(1.5), ConstF64(4)), ConstF64(6)},
		{g.Sub(ConstInt(2), ConstInt(5)), ConstInt(-3)},
		{g.Div(ConstInt(7), ConstInt(2)), ConstInt(3)},
		{g.Rem(ConstInt(7), ConstInt(2)), ConstInt(1)},
		{g.Shl(ConstInt(1), ConstInt(10)), ConstInt(1024)},
		{g.Lt(ConstInt(1), ConstInt(2)), ConstBool(true)},
		{g.Min(ConstF32(2), ConstF32(-1)), ConstF32(-1)},
		{g.And(Const{Typ: TU8, U: 0xF0}, Const{Typ: TU8, U: 0x3C}), Const{Typ: TU8, U: 0x30}},
	}
	for i, c := range cases {
		got, ok := c.got.(Const)
		if !ok {
			t.Errorf("case %d: not folded: %v", i, c.got)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: folded to %#v, want %#v", i, got, c.want)
		}
	}
	if g.NumNodes() != 0 {
		t.Errorf("constant folding emitted %d graph nodes", g.NumNodes())
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	f := NewFunc("ident", TI32, TF64)
	a := f.Param(0)
	x := f.Param(1)
	if got := f.G.Add(a, ConstInt(0)); got != Exp(a) {
		t.Errorf("a+0 = %v, want a", got)
	}
	if got := f.G.Mul(x, ConstF64(1)); got != Exp(x) {
		t.Errorf("x*1 = %v, want x", got)
	}
	if got := f.G.Mul(a, ConstInt(0)); got != Exp(ConstInt(0)) {
		t.Errorf("a*0 = %v, want 0", got)
	}
	// 0.0*x must NOT fold (NaN/Inf semantics).
	if _, isConst := f.G.Mul(x, ConstF64(0)).(Const); isConst {
		t.Error("float multiplication by zero must not fold to 0")
	}
	if got := f.G.Sub(a, ConstInt(0)); got != Exp(a) {
		t.Errorf("a-0 = %v, want a", got)
	}
	if _, isParam := f.G.Sub(ConstInt(0), a).(Sym); !isParam {
		t.Error("0-a must stage a real subtraction")
	}
}

func TestFoldWrapAround(t *testing.T) {
	g := NewGraph()
	got := g.Add(Const{Typ: TI8, I: 120}, Const{Typ: TI8, I: 10})
	want := Const{Typ: TI8, I: -126}
	if got != Exp(want) {
		t.Errorf("i8 overflow folded to %v, want %v", got, want)
	}
	gu := g.Add(Const{Typ: TU8, U: 250}, Const{Typ: TU8, U: 10})
	wantu := Const{Typ: TU8, U: 4}
	if gu != Exp(wantu) {
		t.Errorf("u8 overflow folded to %v, want %v", gu, wantu)
	}
}

func TestDCEDropsUnusedPureKeepsStores(t *testing.T) {
	f := NewFunc("dce", PtrType(isa.PrimF32), TF32)
	p := f.G.MarkMutable(f.Param(0))
	_ = f.G.Mul(f.Param(1), f.Param(1)) // dead pure node
	v := f.G.Add(f.Param(1), ConstF32(1))
	f.G.AStore(p, ConstInt(0), v)
	s := Schedule(f)
	ops := s.CountOps()
	if ops[OpMul] != 0 {
		t.Errorf("dead multiply survived scheduling")
	}
	if ops[OpAStore] != 1 {
		t.Errorf("store was dropped: %v", ops)
	}
	if ops[OpAdd] != 1 {
		t.Errorf("live add missing: %v", ops)
	}
}

func TestStoreThroughImmutablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("store through immutable pointer did not panic")
		}
	}()
	f := NewFunc("immut", PtrType(isa.PrimF32))
	f.G.AStore(f.Param(0), ConstInt(0), ConstF32(1))
}

func TestPtrAddRootsMutability(t *testing.T) {
	f := NewFunc("ptradd", PtrType(isa.PrimF32), TI32)
	p := f.G.MarkMutable(f.Param(0))
	q := f.G.PtrAdd(p, f.Param(1))
	r := f.G.PtrAdd(q, ConstInt(8))
	f.G.AStore(r, ConstInt(0), ConstF32(2)) // must not panic
	rs, ok := r.(Sym)
	if !ok {
		t.Fatalf("ptradd result is %T", r)
	}
	if root := f.G.RootPtr(rs); root != p {
		t.Errorf("root of chained ptradd = %v, want %v", root, p)
	}
}

func TestLoopSchedulingKeepsEffectfulBody(t *testing.T) {
	f := NewFunc("loop", PtrType(isa.PrimF32), PtrType(isa.PrimF32), TI32)
	a := f.G.MarkMutable(f.Param(0))
	b := f.Param(1)
	n := f.Param(2)
	f.G.Loop(ConstInt(0), n, ConstInt(1), func(i Sym) {
		av := f.G.ALoad(a, i)
		bv := f.G.ALoad(b, i)
		f.G.AStore(a, i, f.G.Add(av, bv))
	})
	s := Schedule(f)
	ops := s.CountOps()
	if ops[OpLoop] != 1 || ops[OpALoad] != 2 || ops[OpAStore] != 1 || ops[OpAdd] != 1 {
		t.Errorf("scheduled ops = %v", ops)
	}
	// The loop body must report its free variables: the two arrays.
	root := f.G.Root()
	var loopBlk *Block
	for _, node := range s.Keep[root] {
		if node.Def.Op == OpLoop {
			loopBlk = node.Def.Blocks[0]
		}
	}
	free := s.Free[loopBlk]
	if len(free) != 2 {
		t.Errorf("loop free vars = %v, want the two array params", free)
	}
}

func TestIfExpression(t *testing.T) {
	f := NewFunc("sel", TI32)
	a := f.Param(0)
	r := f.G.If(f.G.Lt(a, ConstInt(0)), TI32,
		func() Exp { return f.G.Neg(a) },
		func() Exp { return a })
	f.G.Root().Result = r
	s := Schedule(f)
	if s.CountOps()[OpIf] != 1 {
		t.Fatalf("if node missing: %v", s.CountOps())
	}
	if s.CountOps()[OpNeg] != 1 {
		t.Fatalf("then-branch body missing: %v", s.CountOps())
	}
}

func TestTransformerSubstitution(t *testing.T) {
	f := NewFunc("subst", TF32, TF32)
	sum := f.G.Add(f.Param(0), f.Param(1))
	f.G.Root().Result = f.G.Mul(sum, sum)

	tr := NewTransformer()
	tr.Subst(f.Param(1), ConstF32(3))
	nf := tr.Mirror(f)
	// After substituting b=3, the new function must still compute
	// (a+3)*(a+3) with the add CSE'd once.
	s := Schedule(nf)
	ops := s.CountOps()
	if ops[OpAdd] != 1 || ops[OpMul] != 1 {
		t.Errorf("mirrored ops = %v, want 1 add + 1 mul", ops)
	}
}

func TestTransformerRewriteHook(t *testing.T) {
	f := NewFunc("rewrite", TF32, TF32)
	f.G.Root().Result = f.G.Mul(f.Param(0), f.Param(1))
	tr := NewTransformer()
	tr.Rewrite = func(dst *Graph, d *Def) (Exp, bool) {
		if d.Op == OpMul {
			return dst.Add(d.Args[0], d.Args[1]), true
		}
		return nil, false
	}
	nf := tr.Mirror(f)
	ops := Schedule(nf).CountOps()
	if ops[OpMul] != 0 || ops[OpAdd] != 1 {
		t.Errorf("rewrite hook not applied: %v", ops)
	}
}

func TestTransformerMirrorsLoops(t *testing.T) {
	f := NewFunc("mloop", PtrType(isa.PrimF32), TI32)
	p := f.G.MarkMutable(f.Param(0))
	f.G.Loop(ConstInt(0), f.Param(1), ConstInt(1), func(i Sym) {
		f.G.AStore(p, i, ConstF32(1))
	})
	nf := NewTransformer().Mirror(f)
	ops := Schedule(nf).CountOps()
	if ops[OpLoop] != 1 || ops[OpAStore] != 1 {
		t.Errorf("mirrored loop ops = %v", ops)
	}
	// Mutability must carry over: staging another store must not panic.
	np := nf.Params[0]
	if !nf.G.IsMutable(np) {
		t.Error("mutability not preserved by mirror")
	}
}

func TestDumpContainsStructure(t *testing.T) {
	f := NewFunc("saxpyish", PtrType(isa.PrimF32), PtrType(isa.PrimF32), TF32, TI32)
	a := f.G.MarkMutable(f.Param(0))
	b, s, n := f.Param(1), f.Param(2), f.Param(3)
	f.G.Comment("scalar tail loop")
	f.G.Loop(ConstInt(0), n, ConstInt(1), func(i Sym) {
		f.G.AStore(a, i, f.G.Add(f.G.ALoad(a, i), f.G.Mul(f.G.ALoad(b, i), s)))
	})
	text := Dump(f)
	for _, want := range []string{"def saxpyish", "for ", "astore", "// scalar tail loop"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}

func TestTypeTable(t *testing.T) {
	if TM256d.CName() != "__m256d" {
		t.Errorf("TM256d = %s", TM256d.CName())
	}
	if PtrType(isa.PrimF32).CName() != "float*" {
		t.Errorf("float ptr = %s", PtrType(isa.PrimF32).CName())
	}
	if !TI32.IsSigned() || TU32.IsSigned() || !TU32.IsInteger() || !TF32.IsFloat() {
		t.Error("scalar predicates broken")
	}
	if TM512.Bits() != 512 || TI16.Bits() != 16 {
		t.Error("bit widths broken")
	}
}

func TestQuickFoldMatchesGo(t *testing.T) {
	// Property: integer constant folding agrees with Go's int32
	// arithmetic for every op where both are defined.
	err := quick.Check(func(a, b int32) bool {
		g := NewGraph()
		ca, cb := Const{Typ: TI32, I: int64(a)}, Const{Typ: TI32, I: int64(b)}
		add := g.Add(ca, cb).(Const)
		sub := g.Sub(ca, cb).(Const)
		mul := g.Mul(ca, cb).(Const)
		ok := add.I == int64(a+b) && sub.I == int64(a-b) && mul.I == int64(a*b)
		if b != 0 {
			div := g.Div(ca, cb).(Const)
			ok = ok && div.I == int64(a/b)
		}
		return ok
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickCSEStable(t *testing.T) {
	// Property: emitting the same pure expression tree twice never grows
	// the graph the second time.
	err := quick.Check(func(vals []int8) bool {
		f := NewFunc("q", TI32)
		build := func() Exp {
			acc := Exp(f.Param(0))
			for _, v := range vals {
				acc = f.G.Add(acc, f.G.Mul(ConstInt(int(v)), f.Param(0)))
			}
			return acc
		}
		x := build()
		n := f.G.NumNodes()
		y := build()
		return x == y && f.G.NumNodes() == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
