package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Kind is the coarse classification of a staged value's type.
type Kind uint8

const (
	KindVoid Kind = iota
	KindBool
	KindI8
	KindU8
	KindI16
	KindU16
	KindI32
	KindU32
	KindI64
	KindU64
	KindF32
	KindF64
	KindPtr // pointer to an array of a primitive (Array[T] ↔ T*)
	KindVec // SIMD register
)

// Type is the type of a staged expression. It is a small value type,
// comparable, and usable as a map key (CSE relies on this).
type Type struct {
	Kind Kind
	Elem isa.Prim    // pointee primitive when Kind == KindPtr
	Vec  isa.VecKind // register kind when Kind == KindVec
}

// Predefined scalar types.
var (
	TVoid = Type{Kind: KindVoid}
	TBool = Type{Kind: KindBool}
	TI8   = Type{Kind: KindI8}
	TU8   = Type{Kind: KindU8}
	TI16  = Type{Kind: KindI16}
	TU16  = Type{Kind: KindU16}
	TI32  = Type{Kind: KindI32}
	TU32  = Type{Kind: KindU32}
	TI64  = Type{Kind: KindI64}
	TU64  = Type{Kind: KindU64}
	TF32  = Type{Kind: KindF32}
	TF64  = Type{Kind: KindF64}
)

// Predefined vector types (Section 3.1's Rep[__m256d] etc.).
var (
	TM64    = VecType(isa.M64)
	TM128   = VecType(isa.M128)
	TM128d  = VecType(isa.M128d)
	TM128i  = VecType(isa.M128i)
	TM256   = VecType(isa.M256)
	TM256d  = VecType(isa.M256d)
	TM256i  = VecType(isa.M256i)
	TM512   = VecType(isa.M512)
	TM512d  = VecType(isa.M512d)
	TM512i  = VecType(isa.M512i)
	TMask8  = VecType(isa.MMask8)
	TMask16 = VecType(isa.MMask16)
)

// PtrType returns the type of a pointer to elements of primitive p.
func PtrType(p isa.Prim) Type { return Type{Kind: KindPtr, Elem: p} }

// VecType returns the type of a SIMD register of kind v.
func VecType(v isa.VecKind) Type { return Type{Kind: KindVec, Vec: v} }

// PrimType maps an isa primitive to the staged scalar type.
func PrimType(p isa.Prim) Type {
	switch p {
	case isa.PrimBool:
		return TBool
	case isa.PrimI8:
		return TI8
	case isa.PrimU8:
		return TU8
	case isa.PrimI16:
		return TI16
	case isa.PrimU16:
		return TU16
	case isa.PrimI32:
		return TI32
	case isa.PrimU32:
		return TU32
	case isa.PrimI64:
		return TI64
	case isa.PrimU64:
		return TU64
	case isa.PrimF32:
		return TF32
	case isa.PrimF64:
		return TF64
	default:
		return TVoid
	}
}

// Prim maps a scalar type back to its isa primitive (PrimVoid for
// non-scalars).
func (t Type) Prim() isa.Prim {
	switch t.Kind {
	case KindBool:
		return isa.PrimBool
	case KindI8:
		return isa.PrimI8
	case KindU8:
		return isa.PrimU8
	case KindI16:
		return isa.PrimI16
	case KindU16:
		return isa.PrimU16
	case KindI32:
		return isa.PrimI32
	case KindU32:
		return isa.PrimU32
	case KindI64:
		return isa.PrimI64
	case KindU64:
		return isa.PrimU64
	case KindF32:
		return isa.PrimF32
	case KindF64:
		return isa.PrimF64
	default:
		return isa.PrimVoid
	}
}

// IsScalar reports whether the type is a scalar primitive.
func (t Type) IsScalar() bool {
	switch t.Kind {
	case KindVoid, KindPtr, KindVec:
		return false
	default:
		return true
	}
}

// IsInteger reports whether the type is a (signed or unsigned) integer.
func (t Type) IsInteger() bool {
	switch t.Kind {
	case KindI8, KindU8, KindI16, KindU16, KindI32, KindU32, KindI64, KindU64:
		return true
	default:
		return false
	}
}

// IsFloat reports whether the type is f32 or f64.
func (t Type) IsFloat() bool { return t.Kind == KindF32 || t.Kind == KindF64 }

// IsSigned reports whether the type is a signed integer.
func (t Type) IsSigned() bool {
	switch t.Kind {
	case KindI8, KindI16, KindI32, KindI64:
		return true
	default:
		return false
	}
}

// Bits returns the scalar bit width, the vector register width, or 64
// for pointers.
func (t Type) Bits() int {
	switch t.Kind {
	case KindVec:
		return t.Vec.Bits()
	case KindPtr:
		return 64
	default:
		return t.Prim().Bits()
	}
}

// CName returns the C spelling the unparser emits.
func (t Type) CName() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindVec:
		return t.Vec.String()
	case KindPtr:
		return t.Elem.CName() + "*"
	default:
		return t.Prim().CName()
	}
}

// String returns the C spelling.
func (t Type) String() string { return t.CName() }

// GoName returns the Go spelling used in diagnostics.
func (t Type) GoName() string {
	switch t.Kind {
	case KindVoid:
		return "unit"
	case KindVec:
		return t.Vec.String()
	case KindPtr:
		return "[]" + t.Elem.GoName()
	default:
		return t.Prim().GoName()
	}
}

func (t Type) check() {
	if t.Kind == KindVec && t.Vec == isa.VecNone {
		panic(fmt.Sprintf("ir: vector type without register kind: %+v", t))
	}
}
