package ir

import (
	"fmt"
	"strings"
)

// Dump renders a staged function as readable SSA text, for debugging and
// golden tests. Only scheduled (live) nodes print.
func Dump(f *Func) string {
	s := Schedule(f)
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s: %s", p, p.Typ)
	}
	fmt.Fprintf(&b, "def %s(%s) {\n", f.Name, strings.Join(params, ", "))
	dumpBlock(&b, f, s, f.G.Root(), 1)
	b.WriteString("}\n")
	return b.String()
}

func dumpBlock(b *strings.Builder, f *Func, s *Scheduled, blk *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, n := range s.Keep[blk] {
		switch n.Def.Op {
		case OpComment:
			if c, ok := n.Def.Args[0].(Const); ok {
				fmt.Fprintf(b, "%s// %s\n", ind, f.G.CommentText(int(c.I)))
			}
			continue
		case OpLoop:
			body := n.Def.Blocks[0]
			fmt.Fprintf(b, "%sfor %s := %s; %s < %s; %s += %s {\n",
				ind, body.Params[0], n.Def.Args[0], body.Params[0],
				n.Def.Args[1], body.Params[0], n.Def.Args[2])
			dumpBlock(b, f, s, body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
			continue
		case OpIf:
			fmt.Fprintf(b, "%s%s = if %s {\n", ind, n.Sym, n.Def.Args[0])
			dumpBlock(b, f, s, n.Def.Blocks[0], depth+1)
			if r := n.Def.Blocks[0].Result; r != nil {
				fmt.Fprintf(b, "%s  → %s\n", ind, r)
			}
			fmt.Fprintf(b, "%s} else {\n", ind)
			dumpBlock(b, f, s, n.Def.Blocks[1], depth+1)
			if r := n.Def.Blocks[1].Result; r != nil {
				fmt.Fprintf(b, "%s  → %s\n", ind, r)
			}
			fmt.Fprintf(b, "%s}\n", ind)
			continue
		}
		if n.Def.Typ == TVoid {
			fmt.Fprintf(b, "%s%s\n", ind, n.Def)
		} else {
			fmt.Fprintf(b, "%sval %s: %s = %s\n", ind, n.Sym, n.Sym.Typ, n.Def)
		}
	}
	if r := blk.Result; r != nil && depth == 1 {
		fmt.Fprintf(b, "%sreturn %s\n", ind, r)
	}
}
