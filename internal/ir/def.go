package ir

import (
	"fmt"
	"strings"
)

// Scalar operation names. These cover the "auxiliary scalar operations
// and control flow" the staged graph batches together with intrinsic
// invocations (Section 1 of the paper). Intrinsic nodes use their C name
// (leading underscore) as the Op, so the two vocabularies cannot collide.
const (
	OpAdd  = "add"
	OpSub  = "sub"
	OpMul  = "mul"
	OpDiv  = "div"
	OpRem  = "rem"
	OpNeg  = "neg"
	OpMin  = "min"
	OpMax  = "max"
	OpAnd  = "and"
	OpOr   = "or"
	OpXor  = "xor"
	OpNot  = "not"
	OpShl  = "shl"
	OpShr  = "shr"
	OpEq   = "eq"
	OpNe   = "ne"
	OpLt   = "lt"
	OpLe   = "le"
	OpGt   = "gt"
	OpGe   = "ge"
	OpConv = "conv"   // scalar conversion: arg type → node type
	OpSel  = "select" // (cond, then, else)

	OpALoad  = "aload"  // (ptr, idx) → elem; reads memory
	OpAStore = "astore" // (ptr, idx, val); writes memory
	OpPtrAdd = "ptradd" // (ptr, idx) → ptr displaced by idx elements

	OpLoop = "forloop" // (start, end, stride) + body block w/ index param
	OpIf   = "if"      // (cond) + then/else blocks carrying results

	OpParam   = "param"   // function parameter placeholder
	OpComment = "comment" // structured comment carried into generated C
)

// IsIntrinsicOp reports whether op names a SIMD intrinsic (C names start
// with '_').
func IsIntrinsicOp(op string) bool { return strings.HasPrefix(op, "_") }

// EffectKind classifies how a definition interacts with the world.
type EffectKind uint8

const (
	// Pure nodes have no effects: they are subject to CSE and dead-code
	// elimination.
	Pure EffectKind = iota
	// ReadWrite nodes read and/or write the memory reachable from
	// specific symbols; ordering is preserved per symbol.
	ReadWrite
	// Global nodes order against everything (fences, zeroupper, rdtsc,
	// control flow with effectful bodies).
	Global
)

// Effect describes a definition's memory behaviour, mirroring the LMS
// read/write effects the generator infers per intrinsic (Section 3.2).
type Effect struct {
	Kind   EffectKind
	Reads  []Sym // pointer symbols whose memory is read
	Writes []Sym // pointer symbols whose memory is written
}

// PureEffect is the effect of a pure node.
var PureEffect = Effect{Kind: Pure}

// ReadEffect builds an effect reading through the given pointer symbols.
func ReadEffect(ptrs ...Sym) Effect { return Effect{Kind: ReadWrite, Reads: ptrs} }

// WriteEffect builds an effect writing through the given pointer symbols.
func WriteEffect(ptrs ...Sym) Effect { return Effect{Kind: ReadWrite, Writes: ptrs} }

// GlobalEffect orders against all other effectful nodes.
var GlobalEffect = Effect{Kind: Global}

// IsPure reports whether the effect is pure.
func (e Effect) IsPure() bool { return e.Kind == Pure }

// Union combines two effects.
func (e Effect) Union(o Effect) Effect {
	if e.Kind == Global || o.Kind == Global {
		return GlobalEffect
	}
	if e.IsPure() {
		return o
	}
	if o.IsPure() {
		return e
	}
	out := Effect{Kind: ReadWrite}
	out.Reads = append(append(out.Reads, e.Reads...), o.Reads...)
	out.Writes = append(append(out.Writes, e.Writes...), o.Writes...)
	return out
}

// Block is a nested sequence of nodes with optional parameters (loop
// indices) and an optional result expression.
type Block struct {
	Params []Sym
	Nodes  []*Node
	Result Exp
}

// Effect returns the union of the block's nodes' effects.
func (b *Block) Effect() Effect {
	eff := PureEffect
	for _, n := range b.Nodes {
		eff = eff.Union(n.Def.Effect)
	}
	return eff
}

// Def is a definition: one computation node — the analog of LMS's
// Def[T] subclasses (the generated case classes of Section 3.2). Instead
// of one Go struct per intrinsic, a Def carries its op name and typed
// argument list; the generated bindings give each intrinsic a typed
// constructor.
type Def struct {
	Op     string
	Typ    Type
	Args   []Exp
	Blocks []*Block // control-flow bodies (loops, conditionals)
	Effect Effect
}

// Node pairs a definition with the symbol naming its result (the SSA
// binding "val x7 = Def(...)").
type Node struct {
	Sym Sym
	Def *Def
}

// HasBlocks reports whether the definition carries nested blocks.
func (d *Def) HasBlocks() bool { return len(d.Blocks) > 0 }

// cseKey builds the structural key used for common-subexpression
// elimination. Only pure block-free definitions are keyed.
func (d *Def) cseKey() (string, bool) {
	if !d.Effect.IsPure() || d.HasBlocks() {
		return "", false
	}
	var b strings.Builder
	b.WriteString(d.Op)
	b.WriteByte('|')
	fmt.Fprintf(&b, "%v", d.Typ)
	for _, a := range d.Args {
		b.WriteByte('|')
		switch x := a.(type) {
		case Sym:
			fmt.Fprintf(&b, "s%d", x.ID)
		case Const:
			fmt.Fprintf(&b, "c%v:%s", x.Typ, x.String())
		default:
			return "", false
		}
	}
	return b.String(), true
}

// ArgSyms returns the symbols among the definition's direct arguments.
func (d *Def) ArgSyms() []Sym {
	var out []Sym
	for _, a := range d.Args {
		if s, ok := a.(Sym); ok {
			out = append(out, s)
		}
	}
	return out
}

func (d *Def) String() string {
	parts := make([]string, len(d.Args))
	for i, a := range d.Args {
		parts[i] = a.String()
	}
	s := fmt.Sprintf("%s(%s)", d.Op, strings.Join(parts, ", "))
	if d.HasBlocks() {
		s += fmt.Sprintf(" {%d blocks}", len(d.Blocks))
	}
	return s
}
