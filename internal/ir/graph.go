package ir

import (
	"fmt"
)

// Graph accumulates staged definitions in SSA form. It owns symbol
// allocation, structural CSE over pure nodes, the block stack for staged
// control flow, the set of symbols marked mutable (the analog of the
// paper's reflectMutableSym, which lets a kernel write into one of its
// own array parameters), and declared pointer-alignment facts the static
// verifier consumes.
type Graph struct {
	nextID   int
	blocks   []*Block         // block stack; blocks[0] is the root
	cse      []map[string]Sym // one CSE scope per open block
	mutable  map[int]bool
	align    map[int]int  // pointer sym id → declared alignment in bytes
	defs     map[int]*Def // definition lookup by symbol id (whole graph)
	comments []string     // staged comment texts, indexed by Comment arg
}

// NewGraph creates an empty graph with an open root block.
func NewGraph() *Graph {
	g := &Graph{mutable: map[int]bool{}, align: map[int]int{}, defs: map[int]*Def{}}
	g.blocks = []*Block{{}}
	g.cse = []map[string]Sym{{}}
	return g
}

// Fresh allocates a fresh symbol of type t — the paper's fresh[Int].
func (g *Graph) Fresh(t Type) Sym {
	t.check()
	s := Sym{ID: g.nextID, Typ: t}
	g.nextID++
	return s
}

// Root returns the root block.
func (g *Graph) Root() *Block { return g.blocks[0] }

// cur returns the innermost open block.
func (g *Graph) cur() *Block { return g.blocks[len(g.blocks)-1] }

// MarkMutable marks a pointer symbol as mutable so stores through it are
// accepted — reflectMutableSym in the paper's SAXPY example (Figure 4).
func (g *Graph) MarkMutable(s Sym) Sym {
	if s.Typ.Kind != KindPtr {
		panic(fmt.Sprintf("ir: MarkMutable on non-pointer %v: %v", s, s.Typ))
	}
	g.mutable[s.ID] = true
	return s
}

// IsMutable reports whether stores through the pointer symbol are allowed.
func (g *Graph) IsMutable(s Sym) bool { return g.mutable[s.ID] }

// MarkAligned declares an alignment fact: the memory behind the pointer
// symbol is aligned to the given byte boundary (a power of two). Aligned
// load/store intrinsics through pointers without such a fact are flagged
// by the static verifier, mirroring the guaranteed-alignment contracts
// real runtimes get from aligned allocators.
func (g *Graph) MarkAligned(s Sym, bytes int) Sym {
	if s.Typ.Kind != KindPtr {
		panic(fmt.Sprintf("ir: MarkAligned on non-pointer %v: %v", s, s.Typ))
	}
	if bytes <= 0 || bytes&(bytes-1) != 0 {
		panic(fmt.Sprintf("ir: MarkAligned(%v, %d): alignment must be a positive power of two", s, bytes))
	}
	g.align[s.ID] = bytes
	return s
}

// Alignment returns the declared alignment of a pointer symbol in bytes,
// or 0 when no fact has been declared.
func (g *Graph) Alignment(s Sym) int { return g.align[s.ID] }

// Def returns the definition bound to a symbol, if any (parameters and
// block params have none).
func (g *Graph) Def(s Sym) (*Def, bool) {
	d, ok := g.defs[s.ID]
	return d, ok
}

// Emit appends a definition to the current block, after CSE for pure
// nodes, and returns the expression naming its result.
func (g *Graph) Emit(d *Def) Exp {
	d.Typ.check()
	if key, ok := d.cseKey(); ok {
		// Search enclosing scopes innermost-out: a pure node computed in
		// an outer block is still valid here.
		for i := len(g.cse) - 1; i >= 0; i-- {
			if s, hit := g.cse[i][key]; hit {
				return s
			}
		}
		s := g.Fresh(d.Typ)
		g.cse[len(g.cse)-1][key] = s
		g.defs[s.ID] = d
		g.cur().Nodes = append(g.cur().Nodes, &Node{Sym: s, Def: d})
		return s
	}
	s := g.Fresh(d.Typ)
	g.defs[s.ID] = d
	g.cur().Nodes = append(g.cur().Nodes, &Node{Sym: s, Def: d})
	return s
}

// EmitStmt emits a definition executed for effect only.
func (g *Graph) EmitStmt(d *Def) { g.Emit(d) }

// InBlock stages fn inside a fresh block with the given parameters and
// returns the block. The result expression is whatever fn returns (nil
// for statement blocks).
func (g *Graph) InBlock(params []Sym, fn func() Exp) *Block {
	b := &Block{Params: params}
	g.blocks = append(g.blocks, b)
	g.cse = append(g.cse, map[string]Sym{})
	defer func() {
		g.blocks = g.blocks[:len(g.blocks)-1]
		g.cse = g.cse[:len(g.cse)-1]
	}()
	b.Result = fn()
	return b
}

// --- staged control flow -------------------------------------------------

// Loop stages a counted loop: for (i = start; i < end; i += stride) body.
// This is the paper's forloop(start, end, fresh[Int], stride, body).
func (g *Graph) Loop(start, end, stride Exp, body func(i Sym)) {
	iv := g.Fresh(TI32)
	blk := g.InBlock([]Sym{iv}, func() Exp { body(iv); return nil })
	eff := blk.Effect()
	if eff.IsPure() {
		// A loop whose body is pure still participates in scheduling
		// order relative to nothing; keep it pure so DCE can drop it if
		// its results are unused. Loops are usually effectful.
		eff = PureEffect
	}
	g.EmitStmt(&Def{Op: OpLoop, Typ: TVoid, Args: []Exp{start, end, stride},
		Blocks: []*Block{blk}, Effect: eff})
}

// LoopAcc stages a counted loop carrying one accumulator value — the
// staged encoding of `var acc = init; for(...) acc = body(i, acc)`,
// which the paper's dot products write with a mutable staged variable
// (Section 4.1). The loop node's result is the accumulator's final
// value; the body block's params are [i, acc] and its Result is the
// next accumulator.
func (g *Graph) LoopAcc(start, end, stride, init Exp, body func(i, acc Sym) Exp) Exp {
	iv := g.Fresh(TI32)
	acc := g.Fresh(init.Type())
	blk := g.InBlock([]Sym{iv, acc}, func() Exp { return body(iv, acc) })
	if blk.Result == nil || blk.Result.Type() != init.Type() {
		panic("ir: LoopAcc body must return a value of the accumulator's type")
	}
	return g.Emit(&Def{Op: OpLoop, Typ: init.Type(),
		Args: []Exp{start, end, stride, init}, Blocks: []*Block{blk},
		Effect: blk.Effect()})
}

// If stages a conditional expression with a result of type t. Pass
// TVoid and nil results for a statement-level conditional.
func (g *Graph) If(cond Exp, t Type, then, els func() Exp) Exp {
	tb := g.InBlock(nil, then)
	eb := g.InBlock(nil, els)
	eff := tb.Effect().Union(eb.Effect())
	return g.Emit(&Def{Op: OpIf, Typ: t, Args: []Exp{cond},
		Blocks: []*Block{tb, eb}, Effect: eff})
}

// --- staged scalar operations ---------------------------------------------

func (g *Graph) binop(op string, t Type, a, b Exp) Exp {
	if folded, ok := foldBinop(op, t, a, b); ok {
		return folded
	}
	return g.Emit(&Def{Op: op, Typ: t, Args: []Exp{a, b}, Effect: PureEffect})
}

func sameType(op string, a, b Exp) Type {
	if a.Type() != b.Type() {
		panic(fmt.Sprintf("ir: %s operand types differ: %v vs %v", op, a.Type(), b.Type()))
	}
	return a.Type()
}

// Add stages a + b.
func (g *Graph) Add(a, b Exp) Exp { return g.binop(OpAdd, sameType(OpAdd, a, b), a, b) }

// Sub stages a - b.
func (g *Graph) Sub(a, b Exp) Exp { return g.binop(OpSub, sameType(OpSub, a, b), a, b) }

// Mul stages a * b.
func (g *Graph) Mul(a, b Exp) Exp { return g.binop(OpMul, sameType(OpMul, a, b), a, b) }

// Div stages a / b.
func (g *Graph) Div(a, b Exp) Exp { return g.binop(OpDiv, sameType(OpDiv, a, b), a, b) }

// Rem stages a % b (integers only).
func (g *Graph) Rem(a, b Exp) Exp { return g.binop(OpRem, sameType(OpRem, a, b), a, b) }

// Min stages min(a, b).
func (g *Graph) Min(a, b Exp) Exp { return g.binop(OpMin, sameType(OpMin, a, b), a, b) }

// Max stages max(a, b).
func (g *Graph) Max(a, b Exp) Exp { return g.binop(OpMax, sameType(OpMax, a, b), a, b) }

// Neg stages -a.
func (g *Graph) Neg(a Exp) Exp {
	return g.Emit(&Def{Op: OpNeg, Typ: a.Type(), Args: []Exp{a}, Effect: PureEffect})
}

// And stages a & b (or a && b for bools).
func (g *Graph) And(a, b Exp) Exp { return g.binop(OpAnd, sameType(OpAnd, a, b), a, b) }

// Or stages a | b.
func (g *Graph) Or(a, b Exp) Exp { return g.binop(OpOr, sameType(OpOr, a, b), a, b) }

// Xor stages a ^ b.
func (g *Graph) Xor(a, b Exp) Exp { return g.binop(OpXor, sameType(OpXor, a, b), a, b) }

// Not stages ^a (or !a for bools).
func (g *Graph) Not(a Exp) Exp {
	return g.Emit(&Def{Op: OpNot, Typ: a.Type(), Args: []Exp{a}, Effect: PureEffect})
}

// Shl stages a << b.
func (g *Graph) Shl(a, b Exp) Exp { return g.binop(OpShl, a.Type(), a, b) }

// Shr stages a >> b (arithmetic for signed types, logical for unsigned).
func (g *Graph) Shr(a, b Exp) Exp { return g.binop(OpShr, a.Type(), a, b) }

func (g *Graph) cmp(op string, a, b Exp) Exp {
	sameType(op, a, b)
	return g.binop(op, TBool, a, b)
}

// Eq stages a == b.
func (g *Graph) Eq(a, b Exp) Exp { return g.cmp(OpEq, a, b) }

// Ne stages a != b.
func (g *Graph) Ne(a, b Exp) Exp { return g.cmp(OpNe, a, b) }

// Lt stages a < b.
func (g *Graph) Lt(a, b Exp) Exp { return g.cmp(OpLt, a, b) }

// Le stages a <= b.
func (g *Graph) Le(a, b Exp) Exp { return g.cmp(OpLe, a, b) }

// Gt stages a > b.
func (g *Graph) Gt(a, b Exp) Exp { return g.cmp(OpGt, a, b) }

// Ge stages a >= b.
func (g *Graph) Ge(a, b Exp) Exp { return g.cmp(OpGe, a, b) }

// Conv stages a scalar conversion of a to type t.
func (g *Graph) Conv(a Exp, t Type) Exp {
	if a.Type() == t {
		return a
	}
	if c, ok := a.(Const); ok {
		return ConstOf(t, c.AsFloat())
	}
	return g.Emit(&Def{Op: OpConv, Typ: t, Args: []Exp{a}, Effect: PureEffect})
}

// Select stages cond ? a : b.
func (g *Graph) Select(cond, a, b Exp) Exp {
	t := sameType(OpSel, a, b)
	return g.Emit(&Def{Op: OpSel, Typ: t, Args: []Exp{cond, a, b}, Effect: PureEffect})
}

// --- staged memory operations ----------------------------------------------

func ptrSym(op string, ptr Exp) Sym {
	s, ok := ptr.(Sym)
	if !ok || s.Typ.Kind != KindPtr {
		panic(fmt.Sprintf("ir: %s through non-pointer expression %v", op, ptr))
	}
	return s
}

// ALoad stages ptr[idx].
func (g *Graph) ALoad(ptr, idx Exp) Exp {
	s := ptrSym(OpALoad, ptr)
	return g.Emit(&Def{Op: OpALoad, Typ: PrimType(s.Typ.Elem),
		Args: []Exp{ptr, idx}, Effect: ReadEffect(g.rootPtr(s))})
}

// AStore stages ptr[idx] = val. The pointer (or the pointer it was
// displaced from) must have been marked mutable.
func (g *Graph) AStore(ptr, idx, val Exp) {
	s := ptrSym(OpAStore, ptr)
	root := g.rootPtr(s)
	if !g.IsMutable(root) {
		panic(fmt.Sprintf("ir: store through immutable pointer %v (call MarkMutable first)", root))
	}
	g.EmitStmt(&Def{Op: OpAStore, Typ: TVoid, Args: []Exp{ptr, idx, val},
		Effect: WriteEffect(root)})
}

// PtrAdd stages pointer displacement ptr + idx (in elements) — the
// `a + i` arithmetic the variable-precision API uses (Section 4.1).
func (g *Graph) PtrAdd(ptr, idx Exp) Exp {
	s := ptrSym(OpPtrAdd, ptr)
	return g.Emit(&Def{Op: OpPtrAdd, Typ: s.Typ, Args: []Exp{ptr, idx},
		Effect: PureEffect})
}

// rootPtr chases ptradd chains back to the underlying array symbol so
// effects and mutability attach to the true object.
func (g *Graph) rootPtr(s Sym) Sym {
	for {
		d, ok := g.defs[s.ID]
		if !ok || d.Op != OpPtrAdd {
			return s
		}
		base, ok := d.Args[0].(Sym)
		if !ok {
			return s
		}
		s = base
	}
}

// RootPtr exposes pointer-root chasing for other passes (the kernel
// compiler and the effect scheduler need the same resolution).
func (g *Graph) RootPtr(s Sym) Sym { return g.rootPtr(s) }

// Comment stages a structured comment that survives into generated C.
// The text lives in a side table; the node's argument is its index.
func (g *Graph) Comment(text string) {
	idx := len(g.comments)
	g.comments = append(g.comments, text)
	g.EmitStmt(&Def{Op: OpComment, Typ: TVoid,
		Args: []Exp{Const{Typ: TI32, I: int64(idx)}}, Effect: GlobalEffect})
}

// CommentText returns the i-th staged comment.
func (g *Graph) CommentText(i int) string {
	if i < 0 || i >= len(g.comments) {
		return ""
	}
	return g.comments[i]
}

// NumNodes returns the total number of definitions emitted.
func (g *Graph) NumNodes() int { return len(g.defs) }

// --- constant folding -------------------------------------------------------

func foldBinop(op string, t Type, a, b Exp) (Exp, bool) {
	ca, aok := a.(Const)
	cb, bok := b.(Const)
	// Algebraic identities with one constant operand.
	if aok != bok {
		c, other := ca, b
		constLeft := aok
		if bok {
			c, other = cb, a
		}
		switch op {
		case OpAdd:
			if c.IsZero() {
				return other, true
			}
		case OpSub:
			if !constLeft && c.IsZero() {
				return other, true
			}
		case OpMul:
			if c.IsZero() && t.IsInteger() {
				return ConstOf(t, 0), true
			}
			if c.AsFloat() == 1 {
				return other, true
			}
		case OpShl, OpShr:
			if !constLeft && c.IsZero() {
				return other, true
			}
		}
		return nil, false
	}
	if !aok || !bok {
		return nil, false
	}
	fa, fb := ca.AsFloat(), cb.AsFloat()
	ia, ib := ca.AsInt(), cb.AsInt()
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin, OpMax:
		if t.IsFloat() {
			var v float64
			switch op {
			case OpAdd:
				v = fa + fb
			case OpSub:
				v = fa - fb
			case OpMul:
				v = fa * fb
			case OpDiv:
				v = fa / fb
			case OpMin:
				v = minF(fa, fb)
			case OpMax:
				v = maxF(fa, fb)
			default:
				return nil, false
			}
			return ConstOf(t, v), true
		}
		if t.IsInteger() {
			var v int64
			switch op {
			case OpAdd:
				v = ia + ib
			case OpSub:
				v = ia - ib
			case OpMul:
				v = ia * ib
			case OpDiv:
				if ib == 0 {
					return nil, false
				}
				v = ia / ib
			case OpRem:
				if ib == 0 {
					return nil, false
				}
				v = ia % ib
			case OpMin:
				v = minI(ia, ib)
			case OpMax:
				v = maxI(ia, ib)
			}
			return truncConst(t, v), true
		}
	case OpShl:
		if t.IsInteger() {
			return truncConst(t, ia<<uint(ib&63)), true
		}
	case OpShr:
		if t.IsInteger() {
			if t.IsSigned() {
				return truncConst(t, ia>>uint(ib&63)), true
			}
			return truncConst(t, int64(ca.U>>uint(ib&63))), true
		}
	case OpAnd, OpOr, OpXor:
		if t.Kind == KindBool {
			switch op {
			case OpAnd:
				return ConstBool(ca.B && cb.B), true
			case OpOr:
				return ConstBool(ca.B || cb.B), true
			case OpXor:
				return ConstBool(ca.B != cb.B), true
			}
		}
		if t.IsInteger() {
			var v int64
			switch op {
			case OpAnd:
				v = ia & ib
			case OpOr:
				v = ia | ib
			case OpXor:
				v = ia ^ ib
			}
			return truncConst(t, v), true
		}
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		var v bool
		switch op {
		case OpEq:
			v = fa == fb
		case OpNe:
			v = fa != fb
		case OpLt:
			v = fa < fb
		case OpLe:
			v = fa <= fb
		case OpGt:
			v = fa > fb
		case OpGe:
			v = fa >= fb
		}
		return ConstBool(v), true
	}
	return nil, false
}

// truncConst wraps an int64 into a constant of integer type t with the
// type's wrap-around semantics.
func truncConst(t Type, v int64) Const {
	c := Const{Typ: t}
	switch t.Kind {
	case KindI8:
		c.I = int64(int8(v))
	case KindI16:
		c.I = int64(int16(v))
	case KindI32:
		c.I = int64(int32(v))
	case KindI64:
		c.I = v
	case KindU8:
		c.U = uint64(uint8(v))
	case KindU16:
		c.U = uint64(uint16(v))
	case KindU32:
		c.U = uint64(uint32(v))
	case KindU64:
		c.U = uint64(v)
	}
	return c
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Func is a staged function: named parameters plus the root block of its
// graph. It is what the compile pipeline consumes.
type Func struct {
	Name   string
	Params []Sym
	G      *Graph
}

// NewFunc allocates a staged function with parameters of the given types.
func NewFunc(name string, paramTypes ...Type) *Func {
	g := NewGraph()
	f := &Func{Name: name, G: g}
	for _, t := range paramTypes {
		f.Params = append(f.Params, g.Fresh(t))
	}
	return f
}

// Param returns the i-th parameter symbol.
func (f *Func) Param(i int) Sym { return f.Params[i] }

// Arrays returns the pointer-typed parameters, in order. The runtime
// binds these to caller arrays at invocation (the JNI array-pinning
// analog).
func (f *Func) Arrays() []Sym {
	var out []Sym
	for _, p := range f.Params {
		if p.Typ.Kind == KindPtr {
			out = append(out, p)
		}
	}
	return out
}
