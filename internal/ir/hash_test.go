package ir

import (
	"testing"

	"repro/internal/isa"
)

// buildAffine stages `(a op b) + c` with an optional comment, after
// burning `shift` symbol ids so two stagings of the same structure get
// different symbol numbering.
func buildAffine(shift int, op string, c int, comment string) *Func {
	g := NewGraph()
	for i := 0; i < shift; i++ {
		g.Fresh(TI32)
	}
	a := g.Fresh(TI32)
	b := g.Fresh(TI32)
	if comment != "" {
		g.Comment(comment)
	}
	var m Exp
	switch op {
	case OpMul:
		m = g.Mul(a, b)
	default:
		m = g.Add(a, b)
	}
	g.Root().Result = g.Add(m, ConstInt(c))
	return &Func{Name: "affine", Params: []Sym{a, b}, G: g}
}

// buildLoop stages a counted loop over a pointer parameter, exercising
// nested blocks, block parameters, and the mutability flag.
func buildLoop(shift int, mutable bool) *Func {
	g := NewGraph()
	for i := 0; i < shift; i++ {
		g.Fresh(TI32)
	}
	p := g.Fresh(PtrType(isa.PrimF32))
	if mutable {
		g.MarkMutable(p)
	}
	n := g.Fresh(TI32)
	g.Loop(ConstInt(0), n, ConstInt(1), func(i Sym) {
		g.Mul(i, i)
	})
	return &Func{Name: "loopy", Params: []Sym{p, n}, G: g}
}

func TestHashStableUnderRenumbering(t *testing.T) {
	if Hash(buildAffine(0, OpMul, 3, "")) != Hash(buildAffine(5, OpMul, 3, "")) {
		t.Error("hash must not depend on symbol numbering (scalar func)")
	}
	if Hash(buildLoop(0, true)) != Hash(buildLoop(7, true)) {
		t.Error("hash must not depend on symbol numbering (loop func)")
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	base := Hash(buildAffine(0, OpMul, 3, ""))
	cases := map[string]uint64{
		"different op":       Hash(buildAffine(0, OpAdd, 3, "")),
		"different constant": Hash(buildAffine(0, OpMul, 4, "")),
		"added comment":      Hash(buildAffine(0, OpMul, 3, "note")),
	}
	for name, h := range cases {
		if h == base {
			t.Errorf("%s must change the hash", name)
		}
	}
	if Hash(buildAffine(0, OpMul, 3, "a")) == Hash(buildAffine(0, OpMul, 3, "b")) {
		t.Error("comment text must be hashed (comments survive into generated C)")
	}
}

func TestHashSeesMutability(t *testing.T) {
	if Hash(buildLoop(0, true)) == Hash(buildLoop(0, false)) {
		t.Error("parameter mutability must change the hash")
	}
}

func TestHashIgnoresName(t *testing.T) {
	f := buildAffine(0, OpMul, 3, "")
	g := buildAffine(0, OpMul, 3, "")
	g.Name = "other"
	if Hash(f) != Hash(g) {
		t.Error("function name is part of the cache key, not the graph hash")
	}
}
