// Package ir implements the staged computation-graph intermediate
// representation at the heart of the reproduction — the analog of the LMS
// (Lightweight Modular Staging) layer the paper builds on (Section 2.3).
//
// Programs written against the staged frontend do not execute when
// invoked; they append nodes to a Graph. Expressions (Exp) are either
// constants or symbols referring to definitions (Def) held in static
// single assignment form; effectful definitions (loads, stores, mutable
// array writes) carry an Effect so the scheduler preserves their order,
// and pure definitions are deduplicated by structural CSE — exactly the
// Def[T]/Exp[T] + effects architecture the paper describes in Section 3.2.
package ir
