package ir

import "fmt"

// Transformer rebuilds a staged function into a fresh graph while
// substituting expressions — the LMS "mirroring" machinery (Section 3.2):
// when a substitution is defined the transformer creates new definitions,
// and when none applies each Def is mirrored back into an Exp in the new
// graph, recursively transforming sub-blocks.
type Transformer struct {
	// Rewrite, when non-nil, may replace a definition wholesale. It
	// receives the definition with already-transformed arguments and the
	// destination graph; returning (exp, true) uses exp instead of
	// re-emitting the definition.
	Rewrite func(dst *Graph, d *Def) (Exp, bool)

	subst map[int]Exp
}

// NewTransformer creates a transformer with an empty substitution.
func NewTransformer() *Transformer {
	return &Transformer{subst: map[int]Exp{}}
}

// Subst registers a substitution: every use of sym becomes rep.
func (t *Transformer) Subst(sym Sym, rep Exp) {
	if sym.Typ != rep.Type() {
		panic(fmt.Sprintf("ir: substitution changes type of %v: %v → %v",
			sym, sym.Typ, rep.Type()))
	}
	t.subst[sym.ID] = rep
}

// Apply transforms an expression: LMS's f(a) inside mirror().
func (t *Transformer) Apply(e Exp) Exp {
	if s, ok := e.(Sym); ok {
		if rep, hit := t.subst[s.ID]; hit {
			return rep
		}
	}
	return e
}

// Mirror rebuilds f into a new function with the same parameter types,
// applying the substitution and rewrite hook everywhere.
func (t *Transformer) Mirror(f *Func) *Func {
	types := make([]Type, len(f.Params))
	for i, p := range f.Params {
		types[i] = p.Typ
	}
	nf := NewFunc(f.Name, types...)
	for i, p := range f.Params {
		// Parameters map to the new function's parameters unless an
		// explicit substitution overrides them.
		if _, hit := t.subst[p.ID]; !hit {
			t.subst[p.ID] = nf.Params[i]
		}
		if f.G.IsMutable(p) {
			if np, ok := t.subst[p.ID].(Sym); ok {
				nf.G.MarkMutable(np)
			}
		}
	}
	nf.G.Root().Result = t.mirrorBlockInto(f, nf.G, f.G.Root())
	return nf
}

// mirrorBlockInto replays the nodes of block b into the destination
// graph's current block.
func (t *Transformer) mirrorBlockInto(src *Func, dst *Graph, b *Block) Exp {
	for _, n := range b.Nodes {
		nd := &Def{Op: n.Def.Op, Typ: n.Def.Typ, Effect: n.Def.Effect}
		nd.Args = make([]Exp, len(n.Def.Args))
		for i, a := range n.Def.Args {
			nd.Args[i] = t.Apply(a)
		}
		// Effects name pointer symbols; map them through the
		// substitution too.
		nd.Effect.Reads = t.applySyms(n.Def.Effect.Reads)
		nd.Effect.Writes = t.applySyms(n.Def.Effect.Writes)
		for _, blk := range n.Def.Blocks {
			nd.Blocks = append(nd.Blocks, t.mirrorBlock(src, dst, blk))
		}
		var rep Exp
		if t.Rewrite != nil {
			if e, ok := t.Rewrite(dst, nd); ok {
				rep = e
			}
		}
		if rep == nil {
			rep = dst.Emit(nd)
		}
		if rep.Type() != n.Sym.Typ {
			panic(fmt.Sprintf("ir: mirror of %v changes type %v → %v",
				n.Def.Op, n.Sym.Typ, rep.Type()))
		}
		t.subst[n.Sym.ID] = rep
	}
	return t.Apply(b.Result)
}

// mirrorBlock rebuilds a nested block with fresh parameters.
func (t *Transformer) mirrorBlock(src *Func, dst *Graph, b *Block) *Block {
	params := make([]Sym, len(b.Params))
	for i, p := range b.Params {
		params[i] = dst.Fresh(p.Typ)
		t.subst[p.ID] = params[i]
	}
	return dst.InBlock(params, func() Exp {
		return t.mirrorBlockInto(src, dst, b)
	})
}

func (t *Transformer) applySyms(ss []Sym) []Sym {
	if len(ss) == 0 {
		return nil
	}
	out := make([]Sym, 0, len(ss))
	for _, s := range ss {
		if rep, ok := t.Apply(s).(Sym); ok {
			out = append(out, rep)
		}
	}
	return out
}
