package ir

import (
	"testing"

	"repro/internal/isa"
)

// TestGoldenDump pins the SSA pretty-printer's output for a small
// function covering loops, conditionals, comments and effects.
func TestGoldenDump(t *testing.T) {
	f := NewFunc("clampadd", PtrType(isa.PrimF32), TI32)
	a := f.G.MarkMutable(f.Param(0))
	n := f.Param(1)
	f.G.Comment("clamp negatives to zero, in place")
	f.G.Loop(ConstInt(0), n, ConstInt(1), func(i Sym) {
		v := f.G.ALoad(a, i)
		c := f.G.If(f.G.Lt(v, ConstF32(0)), TF32,
			func() Exp { return ConstF32(0) },
			func() Exp { return v })
		f.G.AStore(a, i, c)
	})
	const want = `def clampadd(x0: float*, x1: int32_t) {
  // clamp negatives to zero, in place
  for x3 := 0; x3 < x1; x3 += 1 {
    val x4: float = aload(x0, x3)
    val x5: bool = lt(x4, 0)
    x6 = if x5 {
      → 0
    } else {
      → x4
    }
    astore(x0, x3, x6)
  }
}
`
	if got := Dump(f); got != want {
		t.Errorf("golden dump mismatch.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDumpLoopAcc(t *testing.T) {
	f := NewFunc("sum", PtrType(isa.PrimF32), TI32)
	a, n := f.Param(0), f.Param(1)
	acc := f.G.LoopAcc(ConstInt(0), n, ConstInt(1), ConstF32(0),
		func(i, acc Sym) Exp {
			return f.G.Add(acc, f.G.ALoad(a, i))
		})
	f.G.Root().Result = acc
	out := Dump(f)
	for _, want := range []string{"def sum", "return "} {
		if !contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLoopAccPanicsOnTypeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LoopAcc accepted a body returning the wrong type")
		}
	}()
	f := NewFunc("bad", TI32)
	f.G.LoopAcc(ConstInt(0), f.Param(0), ConstInt(1), ConstF32(0),
		func(i, acc Sym) Exp { return ConstInt(1) })
}

func TestSubstPanicsOnTypeChange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Subst accepted a type-changing substitution")
		}
	}()
	f := NewFunc("s", TF32)
	tr := NewTransformer()
	tr.Subst(f.Param(0), ConstInt(1))
}

func TestEffectUnion(t *testing.T) {
	f := NewFunc("e", PtrType(isa.PrimF32), PtrType(isa.PrimF32))
	p, q := f.Param(0), f.Param(1)
	r := ReadEffect(p)
	w := WriteEffect(q)
	u := r.Union(w)
	if u.IsPure() || len(u.Reads) != 1 || len(u.Writes) != 1 {
		t.Errorf("union = %+v", u)
	}
	if g := u.Union(GlobalEffect); g.Kind != Global {
		t.Errorf("union with global = %+v", g)
	}
	if pu := PureEffect.Union(PureEffect); !pu.IsPure() {
		t.Error("pure ∪ pure must stay pure")
	}
	if x := PureEffect.Union(r); len(x.Reads) != 1 {
		t.Error("pure ∪ read lost the read")
	}
}

func TestConstAccessors(t *testing.T) {
	if ConstF64(2.5).AsInt() != 2 || ConstInt(-3).AsFloat() != -3 {
		t.Error("const conversions broken")
	}
	if !ConstBool(false).IsZero() || ConstBool(true).IsZero() {
		t.Error("bool zero check broken")
	}
	if ConstU64(5).AsInt() != 5 {
		t.Error("u64 AsInt broken")
	}
	if ConstOf(TU32, -5).U != 0 {
		t.Error("negative into unsigned must clamp to 0")
	}
	if c := ConstOf(TF32, 1.0/3.0); c.F != float64(float32(1.0/3.0)) {
		t.Error("f32 const must round to float32 precision")
	}
}
