package ir

// Scheduling: decide which nodes execute and in what order. Emission
// order is already topological (SSA ids grow monotonically and arguments
// precede uses), so scheduling here means dead-code elimination over pure
// nodes while retaining every effectful node in program order — the
// property the paper's effect inference exists to protect (a store must
// not be dropped or reordered across a load of the same array).

// Scheduled is the executable view of a staged function.
type Scheduled struct {
	F *Func
	// Keep lists, per block, the nodes that must execute, in order.
	Keep map[*Block][]*Node
	// Free lists, per block, the symbols a block references but does
	// not define (loop-invariant values and outer arrays).
	Free map[*Block][]Sym
	// Stats for the ablation benchmarks.
	Total, Kept int
}

// Schedule computes the executable node sets for every block of f.
func Schedule(f *Func) *Scheduled {
	s := &Scheduled{F: f, Keep: map[*Block][]*Node{}, Free: map[*Block][]Sym{}}
	s.scheduleBlock(f.G.Root())
	return s
}

// scheduleBlock processes one block and returns the set of symbols it
// needs from enclosing scopes.
func (s *Scheduled) scheduleBlock(b *Block) map[int]Sym {
	needed := map[int]bool{}
	external := map[int]Sym{}
	defined := map[int]bool{}
	for _, p := range b.Params {
		defined[p.ID] = true
	}
	for _, n := range b.Nodes {
		defined[n.Sym.ID] = true
	}
	if r, ok := b.Result.(Sym); ok {
		needed[r.ID] = true
		if !defined[r.ID] {
			external[r.ID] = r
		}
	}

	// childNeeds caches each nested block's external requirements so a
	// kept control-flow node pulls in what its body references.
	childNeeds := map[*Block]map[int]Sym{}
	var kept []*Node
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		n := b.Nodes[i]
		s.Total++
		keep := !n.Def.Effect.IsPure() || needed[n.Sym.ID]
		if !keep {
			continue
		}
		s.Kept++
		kept = append(kept, n)
		for _, blk := range n.Def.Blocks {
			ext, ok := childNeeds[blk]
			if !ok {
				ext = s.scheduleBlock(blk)
				childNeeds[blk] = ext
			}
			for id, sym := range ext {
				if defined[id] {
					needed[id] = true
				} else {
					external[id] = sym
				}
			}
		}
		for _, a := range n.Def.ArgSyms() {
			if defined[a.ID] {
				needed[a.ID] = true
			} else {
				external[a.ID] = a
			}
		}
		// Effects referencing outer arrays also count as uses.
		for _, sym := range append(n.Def.Effect.Reads, n.Def.Effect.Writes...) {
			if defined[sym.ID] {
				needed[sym.ID] = true
			} else {
				external[sym.ID] = sym
			}
		}
	}
	// Reverse into program order.
	for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
		kept[l], kept[r] = kept[r], kept[l]
	}
	s.Keep[b] = kept
	free := make([]Sym, 0, len(external))
	for _, sym := range external {
		free = append(free, sym)
	}
	// Deterministic order for consumers.
	for i := 1; i < len(free); i++ {
		for j := i; j > 0 && free[j].ID < free[j-1].ID; j-- {
			free[j], free[j-1] = free[j-1], free[j]
		}
	}
	s.Free[b] = free
	return external
}

// Walk visits every kept node of the schedule depth-first in execution
// order, calling fn with the block nesting depth.
func (s *Scheduled) Walk(fn func(depth int, n *Node)) {
	var rec func(b *Block, depth int)
	rec = func(b *Block, depth int) {
		for _, n := range s.Keep[b] {
			fn(depth, n)
			for _, blk := range n.Def.Blocks {
				rec(blk, depth+1)
			}
		}
	}
	rec(s.F.G.Root(), 0)
}

// CountOps returns the number of kept nodes per op, a cheap way for
// tests to assert on the structure of staged kernels.
func (s *Scheduled) CountOps() map[string]int {
	out := map[string]int{}
	s.Walk(func(_ int, n *Node) { out[n.Def.Op]++ })
	return out
}
