package ir

import (
	"fmt"
	"math"
)

// Exp is a staged expression: the analog of LMS's Exp[T]. An Exp is
// either a Const or a Sym referring to a Def in the graph.
type Exp interface {
	Type() Type
	isExp()
	String() string
}

// Sym is a symbolic reference to a graph node by numeric index — LMS's
// Sym(id). Syms are small value types and compare with ==.
type Sym struct {
	ID  int
	Typ Type
}

// Type returns the symbol's staged type.
func (s Sym) Type() Type { return s.Typ }

func (s Sym) isExp() {}

// String formats the symbol like LMS does: x<id>.
func (s Sym) String() string { return fmt.Sprintf("x%d", s.ID) }

// Const is a staged literal — LMS's Const(.). The value lives in the
// field matching the type's kind; Const is comparable so pure nodes with
// identical literal arguments CSE.
type Const struct {
	Typ Type
	I   int64   // signed integers
	U   uint64  // unsigned integers
	F   float64 // f32 (rounded) and f64
	B   bool
}

// Type returns the literal's staged type.
func (c Const) Type() Type { return c.Typ }

func (c Const) isExp() {}

// String formats the literal.
func (c Const) String() string {
	switch {
	case c.Typ.Kind == KindBool:
		return fmt.Sprintf("%v", c.B)
	case c.Typ.IsFloat():
		return fmt.Sprintf("%g", c.F)
	case c.Typ.IsSigned():
		return fmt.Sprintf("%d", c.I)
	default:
		return fmt.Sprintf("%d", c.U)
	}
}

// ConstInt builds an i32 literal.
func ConstInt(v int) Const { return Const{Typ: TI32, I: int64(v)} }

// ConstI64 builds an i64 literal.
func ConstI64(v int64) Const { return Const{Typ: TI64, I: v} }

// ConstU64 builds a u64 literal.
func ConstU64(v uint64) Const { return Const{Typ: TU64, U: v} }

// ConstF32 builds an f32 literal (value stored at float32 precision).
func ConstF32(v float32) Const { return Const{Typ: TF32, F: float64(v)} }

// ConstF64 builds an f64 literal.
func ConstF64(v float64) Const { return Const{Typ: TF64, F: v} }

// ConstBool builds a bool literal.
func ConstBool(v bool) Const { return Const{Typ: TBool, B: v} }

// ConstOf builds a literal of type t from a float64 (useful for
// type-driven code such as transformers and tests).
func ConstOf(t Type, v float64) Const {
	c := Const{Typ: t}
	switch {
	case t.Kind == KindBool:
		c.B = v != 0
	case t.IsFloat():
		if t.Kind == KindF32 {
			v = float64(float32(v))
		}
		c.F = v
	case t.IsSigned():
		c.I = int64(v)
	default:
		if v < 0 {
			v = 0
		}
		c.U = uint64(v)
	}
	return c
}

// AsFloat extracts the numeric value of the literal as float64.
func (c Const) AsFloat() float64 {
	switch {
	case c.Typ.Kind == KindBool:
		if c.B {
			return 1
		}
		return 0
	case c.Typ.IsFloat():
		return c.F
	case c.Typ.IsSigned():
		return float64(c.I)
	default:
		return float64(c.U)
	}
}

// AsInt extracts the numeric value as int64 (floats truncate).
func (c Const) AsInt() int64 {
	switch {
	case c.Typ.Kind == KindBool:
		if c.B {
			return 1
		}
		return 0
	case c.Typ.IsFloat():
		if math.IsNaN(c.F) {
			return 0
		}
		return int64(c.F)
	case c.Typ.IsSigned():
		return c.I
	default:
		return int64(c.U)
	}
}

// IsZero reports whether the literal is the zero of its type.
func (c Const) IsZero() bool {
	switch {
	case c.Typ.Kind == KindBool:
		return !c.B
	case c.Typ.IsFloat():
		return c.F == 0
	case c.Typ.IsSigned():
		return c.I == 0
	default:
		return c.U == 0
	}
}
