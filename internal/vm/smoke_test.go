package vm

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/xmlspec"
)

// TestSmokeEveryImplementedIntrinsic cross-checks the executable
// semantics against the XML specification's signatures: every
// implemented intrinsic is invoked with arguments built from its spec
// signature (patterned registers, adequately sized buffers, small safe
// immediates) and must execute without error. This differential catches
// arity mismatches between the spec (which drives the generated
// bindings) and the hand-written semantics.
func TestSmokeEveryImplementedIntrinsic(t *testing.T) {
	f := xmlspec.Generate(xmlspec.Latest())
	rs, errs := xmlspec.Resolve(f)
	if len(errs) != 0 {
		t.Fatalf("resolve errors: %v", errs[0])
	}
	ix, _ := xmlspec.NewIndex(rs)

	pattern := func() Vec {
		var v Vec
		for i := 0; i < 64; i++ {
			v.SetU8(i, uint8(i*7+1))
		}
		return v
	}

	buffers := map[isa.Prim]*Buffer{}
	bufFor := func(p isa.Prim) *Buffer {
		if p == isa.PrimVoid {
			p = isa.PrimU8
		}
		if b, ok := buffers[p]; ok {
			return b
		}
		b := NewBuffer(p, 4096)
		buffers[p] = b
		return b
	}

	buildArg := func(p xmlspec.ResolvedParam) Value {
		switch {
		case p.Name == "vindex":
			// Gather indices must stay in bounds: use lane indices.
			var v Vec
			for i := 0; i < 8; i++ {
				v.SetI32(i, int32(i))
			}
			return VecValue(v)
		case p.Typ.Ptr:
			return PtrValue(bufFor(p.Typ.Prim), 0)
		case p.Typ.IsVec():
			return VecValue(pattern())
		default:
			// Scalars and immediates: 1 is safe for every shift,
			// predicate, scale and rounding-mode argument.
			switch p.Typ.Prim {
			case isa.PrimF32:
				return F32Value(1)
			case isa.PrimF64:
				return F64Value(1)
			default:
				return IntValue(1)
			}
		}
	}

	smoked := 0
	for _, name := range ImplementedNames() {
		r, ok := ix.Lookup(name)
		if !ok {
			// Implemented but not in the spec — must not happen.
			t.Errorf("%s: semantics registered but absent from the specification", name)
			continue
		}
		m := NewMachine(isa.Haswell)
		args := make([]Value, len(r.Params))
		for i, p := range r.Params {
			args[i] = buildArg(p)
		}
		out, err := m.Call(name, args...)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		// Value-returning intrinsics must not return the zero Value for
		// void (sanity of the void/value split).
		if r.Ret.IsVoid() && out.Kind != 0 {
			t.Errorf("%s: void intrinsic returned a typed value", name)
		}
		smoked++
	}
	if smoked < 600 {
		t.Errorf("smoked only %d intrinsics", smoked)
	}
}
