package vm

// Integer SIMD semantics: the SSE2/SSSE3/SSE4.1/AVX2 integer families,
// including the madd/maddubs/sign/abs chain the low-precision dot
// products build on (Section 4.1 of the paper).

func regBinI8(name string, f func(x, y int8) int8) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapI8(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinU8(name string, f func(x, y uint8) uint8) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU8(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinI16(name string, f func(x, y int16) int16) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapI16(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinU16(name string, f func(x, y uint16) uint16) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU16(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinI32(name string, f func(x, y int32) int32) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapI32(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinU32(name string, f func(x, y uint32) uint32) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU32(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinI64(name string, f func(x, y int64) int64) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapI64(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

// regShiftImm registers a shift-by-immediate on `lanes`-bit elements.
func regShiftImm(name string, elemBits int, f func(x int64, sh uint) int64) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		sh := uint(argInt(args, 1))
		a := argVec(args, 0)
		var out Vec
		n := bits / elemBits
		for i := 0; i < n; i++ {
			var x int64
			switch elemBits {
			case 16:
				x = int64(a.I16(i))
			case 32:
				x = int64(a.I32(i))
			default:
				x = a.I64(i)
			}
			r := f(x, sh)
			switch elemBits {
			case 16:
				out.SetI16(i, int16(r))
			case 32:
				out.SetI32(i, int32(r))
			default:
				out.SetI64(i, r)
			}
		}
		return vecResult(out)
	})
}

func maskI8(t bool) int8 {
	if t {
		return -1
	}
	return 0
}
func maskI16(t bool) int16 {
	if t {
		return -1
	}
	return 0
}
func maskI32(t bool) int32 {
	if t {
		return -1
	}
	return 0
}
func maskI64(t bool) int64 {
	if t {
		return -1
	}
	return 0
}

func init() {
	// ---- add/sub at every element width, 64/128/256 bits ----------------
	for _, pfx := range []string{"_mm_", "_mm256_", "_mm512_"} {
		if pfx == "_mm512_" {
			regBinI32(pfx+"add_epi32", func(x, y int32) int32 { return x + y })
			regBinI32(pfx+"sub_epi32", func(x, y int32) int32 { return x - y })
			continue
		}
		regBinI8(pfx+"add_epi8", func(x, y int8) int8 { return x + y })
		regBinI8(pfx+"sub_epi8", func(x, y int8) int8 { return x - y })
		regBinI16(pfx+"add_epi16", func(x, y int16) int16 { return x + y })
		regBinI16(pfx+"sub_epi16", func(x, y int16) int16 { return x - y })
		regBinI32(pfx+"add_epi32", func(x, y int32) int32 { return x + y })
		regBinI32(pfx+"sub_epi32", func(x, y int32) int32 { return x - y })
		regBinI64(pfx+"add_epi64", func(x, y int64) int64 { return x + y })
		regBinI64(pfx+"sub_epi64", func(x, y int64) int64 { return x - y })

		// Saturating arithmetic.
		regBinI8(pfx+"adds_epi8", func(x, y int8) int8 { return satI8(int(x) + int(y)) })
		regBinI8(pfx+"subs_epi8", func(x, y int8) int8 { return satI8(int(x) - int(y)) })
		regBinI16(pfx+"adds_epi16", func(x, y int16) int16 { return satI16(int(x) + int(y)) })
		regBinI16(pfx+"subs_epi16", func(x, y int16) int16 { return satI16(int(x) - int(y)) })
		regBinU8(pfx+"adds_epu8", func(x, y uint8) uint8 { return satU8(int(x) + int(y)) })
		regBinU8(pfx+"subs_epu8", func(x, y uint8) uint8 { return satU8(int(x) - int(y)) })
		regBinU16(pfx+"adds_epu16", func(x, y uint16) uint16 { return satU16(int(x) + int(y)) })
		regBinU16(pfx+"subs_epu16", func(x, y uint16) uint16 { return satU16(int(x) - int(y)) })

		// Comparisons.
		regBinI8(pfx+"cmpeq_epi8", func(x, y int8) int8 { return maskI8(x == y) })
		regBinI8(pfx+"cmpgt_epi8", func(x, y int8) int8 { return maskI8(x > y) })
		regBinI16(pfx+"cmpeq_epi16", func(x, y int16) int16 { return maskI16(x == y) })
		regBinI16(pfx+"cmpgt_epi16", func(x, y int16) int16 { return maskI16(x > y) })
		regBinI32(pfx+"cmpeq_epi32", func(x, y int32) int32 { return maskI32(x == y) })
		regBinI32(pfx+"cmpgt_epi32", func(x, y int32) int32 { return maskI32(x > y) })
		regBinI64(pfx+"cmpeq_epi64", func(x, y int64) int64 { return maskI64(x == y) })
		regBinI64(pfx+"cmpgt_epi64", func(x, y int64) int64 { return maskI64(x > y) })

		// Multiplies.
		regBinI16(pfx+"mullo_epi16", func(x, y int16) int16 { return int16(int32(x) * int32(y)) })
		regBinI16(pfx+"mulhi_epi16", func(x, y int16) int16 { return int16(int32(x) * int32(y) >> 16) })
		regBinU16(pfx+"mulhi_epu16", func(x, y uint16) uint16 { return uint16(uint32(x) * uint32(y) >> 16) })
		regBinI32(pfx+"mullo_epi32", func(x, y int32) int32 { return int32(int64(x) * int64(y)) })
		regBinI16(pfx+"mulhrs_epi16", func(x, y int16) int16 {
			return int16((int32(x)*int32(y)>>14 + 1) >> 1)
		})

		// Min/max.
		regBinI8(pfx+"max_epi8", func(x, y int8) int8 {
			if x > y {
				return x
			}
			return y
		})
		regBinI8(pfx+"min_epi8", func(x, y int8) int8 {
			if x < y {
				return x
			}
			return y
		})
		regBinU8(pfx+"max_epu8", func(x, y uint8) uint8 {
			if x > y {
				return x
			}
			return y
		})
		regBinU8(pfx+"min_epu8", func(x, y uint8) uint8 {
			if x < y {
				return x
			}
			return y
		})
		regBinI16(pfx+"max_epi16", func(x, y int16) int16 {
			if x > y {
				return x
			}
			return y
		})
		regBinI16(pfx+"min_epi16", func(x, y int16) int16 {
			if x < y {
				return x
			}
			return y
		})
		regBinU16(pfx+"max_epu16", func(x, y uint16) uint16 {
			if x > y {
				return x
			}
			return y
		})
		regBinU16(pfx+"min_epu16", func(x, y uint16) uint16 {
			if x < y {
				return x
			}
			return y
		})
		regBinI32(pfx+"max_epi32", func(x, y int32) int32 {
			if x > y {
				return x
			}
			return y
		})
		regBinI32(pfx+"min_epi32", func(x, y int32) int32 {
			if x < y {
				return x
			}
			return y
		})
		regBinU32(pfx+"max_epu32", func(x, y uint32) uint32 {
			if x > y {
				return x
			}
			return y
		})
		regBinU32(pfx+"min_epu32", func(x, y uint32) uint32 {
			if x < y {
				return x
			}
			return y
		})

		// Averages (rounded).
		regBinU8(pfx+"avg_epu8", func(x, y uint8) uint8 { return uint8((int(x) + int(y) + 1) >> 1) })
		regBinU16(pfx+"avg_epu16", func(x, y uint16) uint16 { return uint16((int(x) + int(y) + 1) >> 1) })

		// Shifts by immediate.
		regShiftImm(pfx+"slli_epi16", 16, func(x int64, sh uint) int64 {
			if sh > 15 {
				return 0
			}
			return int64(uint16(x) << sh)
		})
		regShiftImm(pfx+"srli_epi16", 16, func(x int64, sh uint) int64 {
			if sh > 15 {
				return 0
			}
			return int64(uint16(x) >> sh)
		})
		regShiftImm(pfx+"srai_epi16", 16, func(x int64, sh uint) int64 {
			if sh > 15 {
				sh = 15
			}
			return int64(int16(x) >> sh)
		})
		regShiftImm(pfx+"slli_epi32", 32, func(x int64, sh uint) int64 {
			if sh > 31 {
				return 0
			}
			return int64(uint32(x) << sh)
		})
		regShiftImm(pfx+"srli_epi32", 32, func(x int64, sh uint) int64 {
			if sh > 31 {
				return 0
			}
			return int64(uint32(x) >> sh)
		})
		regShiftImm(pfx+"srai_epi32", 32, func(x int64, sh uint) int64 {
			if sh > 31 {
				sh = 31
			}
			return int64(int32(x) >> sh)
		})
		regShiftImm(pfx+"slli_epi64", 64, func(x int64, sh uint) int64 {
			if sh > 63 {
				return 0
			}
			return int64(uint64(x) << sh)
		})
		regShiftImm(pfx+"srli_epi64", 64, func(x int64, sh uint) int64 {
			if sh > 63 {
				return 0
			}
			return int64(uint64(x) >> sh)
		})

		// madd: pairs of 16-bit products summed into 32-bit lanes.
		bits := widthOf(pfx + "x")
		register(pfx+"madd_epi16", maddEpi16(bits))
		register(pfx+"maddubs_epi16", maddubsEpi16(bits))
		register(pfx+"sad_epu8", sadEpu8(bits))

		// SSSE3/AVX2 sign and abs.
		regBinI8(pfx+"sign_epi8", signOp8)
		regBinI16(pfx+"sign_epi16", signOp16)
		regBinI32(pfx+"sign_epi32", signOp32)
		register(pfx+"abs_epi8", absOp(bits, 8))
		register(pfx+"abs_epi16", absOp(bits, 16))
		register(pfx+"abs_epi32", absOp(bits, 32))

		// mul_epi32 / mul_epu32: even 32-bit lanes to 64-bit products.
		register(pfx+"mul_epi32", func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for i := 0; i < bits/64; i++ {
				out.SetI64(i, int64(a.I32(2*i))*int64(b.I32(2*i)))
			}
			return vecResult(out)
		})
		register(pfx+"mul_epu32", func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for i := 0; i < bits/64; i++ {
				out.SetU64(i, uint64(a.U32(2*i))*uint64(b.U32(2*i)))
			}
			return vecResult(out)
		})

		// Horizontal integer add/sub (within 128-bit lanes).
		register(pfx+"hadd_epi16", hAddI16(bits, false))
		register(pfx+"hsub_epi16", hAddI16(bits, true))
		register(pfx+"hadd_epi32", hAddI32(bits, false))
		register(pfx+"hsub_epi32", hAddI32(bits, true))
	}
	register("_mm_hadds_epi16", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetI16(i, satI16(int(a.I16(2*i))+int(a.I16(2*i+1))))
			out.SetI16(i+4, satI16(int(b.I16(2*i))+int(b.I16(2*i+1))))
		}
		return vecResult(out)
	})

	// ---- logical on integer registers -------------------------------------
	regBitwise("_mm_and_si128", bAnd)
	regBitwise("_mm_or_si128", bOr)
	regBitwise("_mm_xor_si128", bXor)
	regBitwise("_mm_andnot_si128", bAndNot)
	regBitwise("_mm256_and_si256", bAnd)
	regBitwise("_mm256_or_si256", bOr)
	regBitwise("_mm256_xor_si256", bXor)
	regBitwise("_mm256_andnot_si256", bAndNot)
	regBitwise("_mm512_and_si512", bAnd)
	regBitwise("_mm512_or_si512", bOr)
	regBitwise("_mm_and_si64", bAnd)
	regBitwise("_mm_or_si64", bOr)
	regBitwise("_mm_xor_si64", bXor)
	regBitwise("_mm_andnot_si64", bAndNot)

	// ---- MMX subset ---------------------------------------------------------
	regBinI8("_mm_add_pi8", func(x, y int8) int8 { return x + y })
	regBinI8("_mm_sub_pi8", func(x, y int8) int8 { return x - y })
	regBinI16("_mm_add_pi16", func(x, y int16) int16 { return x + y })
	regBinI16("_mm_sub_pi16", func(x, y int16) int16 { return x - y })
	regBinI32("_mm_add_pi32", func(x, y int32) int32 { return x + y })
	regBinI32("_mm_sub_pi32", func(x, y int32) int32 { return x - y })
	regBinI8("_mm_cmpeq_pi8", func(x, y int8) int8 { return maskI8(x == y) })
	regBinI8("_mm_cmpgt_pi8", func(x, y int8) int8 { return maskI8(x > y) })
	regBinI16("_mm_cmpeq_pi16", func(x, y int16) int16 { return maskI16(x == y) })
	regBinI16("_mm_cmpgt_pi16", func(x, y int16) int16 { return maskI16(x > y) })
	regBinI32("_mm_cmpeq_pi32", func(x, y int32) int32 { return maskI32(x == y) })
	regBinI32("_mm_cmpgt_pi32", func(x, y int32) int32 { return maskI32(x > y) })
	regBinI16("_mm_mullo_pi16", func(x, y int16) int16 { return int16(int32(x) * int32(y)) })
	regBinU8("_mm_avg_pu8", func(x, y uint8) uint8 { return uint8((int(x) + int(y) + 1) >> 1) })
	regBinU16("_mm_avg_pu16", func(x, y uint16) uint16 { return uint16((int(x) + int(y) + 1) >> 1) })
	regBinI8("_mm_cmplt_epi8", func(x, y int8) int8 { return maskI8(x < y) })
	regBinI16("_mm_cmplt_epi16", func(x, y int16) int16 { return maskI16(x < y) })
	regBinI32("_mm_cmplt_epi32", func(x, y int32) int32 { return maskI32(x < y) })
	register("_mm_madd_pi16", maddEpi16(64))
	register("_mm_empty", func(m *Machine, args []Value) (Value, error) { return voidResult() })

	// SSE2/AVX2 movemask.
	register("_mm_movemask_epi8", movemask8(128))
	register("_mm256_movemask_epi8", movemask8(256))
	register("_mm_movemask_ps", movemaskF32(128))
	register("_mm256_movemask_ps", movemaskF32(256))
	register("_mm_movemask_pd", movemaskF64(128))
	register("_mm256_movemask_pd", movemaskF64(256))

	// testz: ZF = ((a & b) == 0).
	testz := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			for i := 0; i < bits/8; i++ {
				if a.b[i]&b.b[i] != 0 {
					return IntValue(0), nil
				}
			}
			return IntValue(1), nil
		}
	}
	register("_mm_testz_si128", testz(128))
	register("_mm256_testz_si256", testz(256))
	register("_mm_testc_si128", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		for i := 0; i < 16; i++ {
			if ^a.b[i]&b.b[i] != 0 {
				return IntValue(0), nil
			}
		}
		return IntValue(1), nil
	})

	// Widening integer conversions (SSE4.1 / AVX2).
	registerWidenings()
	registerPacks()
}

func maddEpi16(bits int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for i := 0; i < bits/32; i++ {
			p0 := int32(a.I16(2*i)) * int32(b.I16(2*i))
			p1 := int32(a.I16(2*i+1)) * int32(b.I16(2*i+1))
			out.SetI32(i, p0+p1)
		}
		return vecResult(out)
	}
}

// maddubsEpi16: unsigned a × signed b pairs, saturated 16-bit sums —
// the core of the 8-bit quantized dot product.
func maddubsEpi16(bits int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for i := 0; i < bits/16; i++ {
			p0 := int(a.U8(2*i)) * int(b.I8(2*i))
			p1 := int(a.U8(2*i+1)) * int(b.I8(2*i+1))
			out.SetI16(i, satI16(p0+p1))
		}
		return vecResult(out)
	}
}

func sadEpu8(bits int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for g := 0; g < bits/64; g++ {
			sum := 0
			for i := 0; i < 8; i++ {
				d := int(a.U8(g*8+i)) - int(b.U8(g*8+i))
				if d < 0 {
					d = -d
				}
				sum += d
			}
			out.SetU64(g, uint64(sum))
		}
		return vecResult(out)
	}
}

func signOp8(x, y int8) int8 {
	switch {
	case y < 0:
		return -x
	case y == 0:
		return 0
	default:
		return x
	}
}
func signOp16(x, y int16) int16 {
	switch {
	case y < 0:
		return -x
	case y == 0:
		return 0
	default:
		return x
	}
}
func signOp32(x, y int32) int32 {
	switch {
	case y < 0:
		return -x
	case y == 0:
		return 0
	default:
		return x
	}
}

func absOp(bits, elem int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < bits/elem; i++ {
			switch elem {
			case 8:
				x := a.I8(i)
				if x < 0 {
					x = -x
				}
				out.SetI8(i, x)
			case 16:
				x := a.I16(i)
				if x < 0 {
					x = -x
				}
				out.SetI16(i, x)
			default:
				x := a.I32(i)
				if x < 0 {
					x = -x
				}
				out.SetI32(i, x)
			}
		}
		return vecResult(out)
	}
}

func hAddI16(bits int, sub bool) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for lane := 0; lane < bits/128; lane++ {
			o := lane * 8
			for i := 0; i < 4; i++ {
				if sub {
					out.SetI16(o+i, a.I16(o+2*i)-a.I16(o+2*i+1))
					out.SetI16(o+4+i, b.I16(o+2*i)-b.I16(o+2*i+1))
				} else {
					out.SetI16(o+i, a.I16(o+2*i)+a.I16(o+2*i+1))
					out.SetI16(o+4+i, b.I16(o+2*i)+b.I16(o+2*i+1))
				}
			}
		}
		return vecResult(out)
	}
}

func hAddI32(bits int, sub bool) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for lane := 0; lane < bits/128; lane++ {
			o := lane * 4
			for i := 0; i < 2; i++ {
				if sub {
					out.SetI32(o+i, a.I32(o+2*i)-a.I32(o+2*i+1))
					out.SetI32(o+2+i, b.I32(o+2*i)-b.I32(o+2*i+1))
				} else {
					out.SetI32(o+i, a.I32(o+2*i)+a.I32(o+2*i+1))
					out.SetI32(o+2+i, b.I32(o+2*i)+b.I32(o+2*i+1))
				}
			}
		}
		return vecResult(out)
	}
}

func movemask8(bits int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		mask := 0
		for i := 0; i < bits/8; i++ {
			if a.b[i]&0x80 != 0 {
				mask |= 1 << i
			}
		}
		return IntValue(mask), nil
	}
}

func movemaskF32(bits int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		mask := 0
		for i := 0; i < bits/32; i++ {
			if a.U32(i)&0x80000000 != 0 {
				mask |= 1 << i
			}
		}
		return IntValue(mask), nil
	}
}

func movemaskF64(bits int) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		mask := 0
		for i := 0; i < bits/64; i++ {
			if a.U64(i)&0x8000000000000000 != 0 {
				mask |= 1 << i
			}
		}
		return IntValue(mask), nil
	}
}

func registerWidenings() {
	// 128-bit sources; SSE4.1 widens the low lanes of a 128-bit register,
	// AVX2 widens a full 128-bit register into 256 bits.
	widen := func(name string, n int, get func(a Vec, i int) int64, set func(out *Vec, i int, v int64)) {
		register(name, func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			var out Vec
			for i := 0; i < n; i++ {
				set(&out, i, get(a, i))
			}
			return vecResult(out)
		})
	}
	getI8 := func(a Vec, i int) int64 { return int64(a.I8(i)) }
	getU8 := func(a Vec, i int) int64 { return int64(a.U8(i)) }
	getI16 := func(a Vec, i int) int64 { return int64(a.I16(i)) }
	getU16 := func(a Vec, i int) int64 { return int64(a.U16(i)) }
	getI32 := func(a Vec, i int) int64 { return int64(a.I32(i)) }
	setI16 := func(out *Vec, i int, v int64) { out.SetI16(i, int16(v)) }
	setI32 := func(out *Vec, i int, v int64) { out.SetI32(i, int32(v)) }
	setI64 := func(out *Vec, i int, v int64) { out.SetI64(i, v) }

	widen("_mm_cvtepi8_epi16", 8, getI8, setI16)
	widen("_mm_cvtepi8_epi32", 4, getI8, setI32)
	widen("_mm_cvtepu8_epi16", 8, getU8, setI16)
	widen("_mm_cvtepu8_epi32", 4, getU8, setI32)
	widen("_mm_cvtepi16_epi32", 4, getI16, setI32)
	widen("_mm_cvtepu16_epi32", 4, getU16, setI32)
	widen("_mm_cvtepi32_epi64", 2, getI32, setI64)
	widen("_mm256_cvtepi8_epi16", 16, getI8, setI16)
	widen("_mm256_cvtepi8_epi32", 8, getI8, setI32)
	widen("_mm256_cvtepu8_epi16", 16, getU8, setI16)
	widen("_mm256_cvtepu8_epi32", 8, getU8, setI32)
	widen("_mm256_cvtepi16_epi32", 8, getI16, setI32)
	widen("_mm256_cvtepu16_epi32", 8, getU16, setI32)
	widen("_mm256_cvtepi32_epi64", 4, getI32, setI64)
}

func registerPacks() {
	// packs_epi16: saturate 16→8 signed; a's lanes then b's lanes, per
	// 128-bit lane.
	packs16 := func(bits int, unsigned bool) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				for i := 0; i < 8; i++ {
					av := int(a.I16(lane*8 + i))
					bv := int(b.I16(lane*8 + i))
					if unsigned {
						out.SetU8(lane*16+i, satU8(av))
						out.SetU8(lane*16+8+i, satU8(bv))
					} else {
						out.SetI8(lane*16+i, satI8(av))
						out.SetI8(lane*16+8+i, satI8(bv))
					}
				}
			}
			return vecResult(out)
		}
	}
	packs32 := func(bits int, unsigned bool) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				for i := 0; i < 4; i++ {
					av := int(a.I32(lane*4 + i))
					bv := int(b.I32(lane*4 + i))
					if unsigned {
						out.SetU16(lane*8+i, satU16(av))
						out.SetU16(lane*8+4+i, satU16(bv))
					} else {
						out.SetI16(lane*8+i, satI16(av))
						out.SetI16(lane*8+4+i, satI16(bv))
					}
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_packs_epi16", packs16(128, false))
	register("_mm_packus_epi16", packs16(128, true))
	register("_mm_packs_epi32", packs32(128, false))
	register("_mm_packus_epi32", packs32(128, true))
	register("_mm256_packs_epi16", packs16(256, false))
	register("_mm256_packus_epi16", packs16(256, true))
	register("_mm256_packs_epi32", packs32(256, false))
	register("_mm256_packus_epi32", packs32(256, true))
}
