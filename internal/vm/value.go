package vm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Buffer is a byte-addressed memory region with a primitive element type
// — the machine-side view of a managed array after the runtime pins it
// (the paper's GetPrimitiveArrayCritical discussion in Section 3.5).
// Host slices are copied in at kernel entry and copied back at exit,
// which is exactly the copying JNI may perform.
type Buffer struct {
	Prim isa.Prim
	Data []byte
	// Base is the buffer's virtual address, assigned at allocation so
	// the optional cache simulator (internal/cachesim) sees a realistic
	// page-aligned address space.
	Base uint64
}

// nextBase hands out page-aligned virtual addresses for buffers.
var nextBase atomic.Uint64

// NewBuffer allocates a zeroed buffer of n elements.
func NewBuffer(p isa.Prim, n int) *Buffer {
	size := n * p.Bits() / 8
	pages := uint64(size/4096 + 2)
	base := nextBase.Add(pages*4096) - pages*4096 + 0x10000
	return &Buffer{Prim: p, Data: make([]byte, size), Base: base}
}

// Len returns the number of elements.
func (b *Buffer) Len() int { return len(b.Data) / (b.Prim.Bits() / 8) }

// check bounds-checks a byte range; generated native code would segfault
// here (Section 3.5: "it is the responsibility of the developer to write
// valid SIMD code"), the vm reports a structured error instead.
func (b *Buffer) check(off, n int) error {
	if off < 0 || off+n > len(b.Data) {
		return fmt.Errorf("vm: out-of-bounds access [%d,%d) of %d-byte buffer",
			off, off+n, len(b.Data))
	}
	return nil
}

// LoadVec reads `bytes` bytes at element offset elemOff into a register.
func (b *Buffer) LoadVec(elemOff, bytes int) (Vec, error) {
	off := elemOff * b.Prim.Bits() / 8
	if err := b.check(off, bytes); err != nil {
		return Vec{}, err
	}
	return VecFromBytes(b.Data[off : off+bytes]), nil
}

// LoadVecInto reads `bytes` bytes at element offset elemOff into a
// caller-provided register, zeroing the upper bytes — the
// destination-passing variant of LoadVec.
func (b *Buffer) LoadVecInto(elemOff, bytes int, v *Vec) error {
	off := elemOff * b.Prim.Bits() / 8
	if err := b.check(off, bytes); err != nil {
		return err
	}
	n := copy(v.b[:], b.Data[off:off+bytes])
	for i := n; i < len(v.b); i++ {
		v.b[i] = 0
	}
	return nil
}

// StoreVec writes the low `bytes` bytes of a register at element offset
// elemOff.
func (b *Buffer) StoreVec(elemOff int, v Vec, bytes int) error {
	off := elemOff * b.Prim.Bits() / 8
	if err := b.check(off, bytes); err != nil {
		return err
	}
	copy(b.Data[off:off+bytes], v.b[:bytes])
	return nil
}

// F32At reads element i as float32.
func (b *Buffer) F32At(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b.Data[i*4:]))
}

// SetF32At writes element i as float32.
func (b *Buffer) SetF32At(i int, v float32) {
	binary.LittleEndian.PutUint32(b.Data[i*4:], math.Float32bits(v))
}

// F64At reads element i as float64.
func (b *Buffer) F64At(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Data[i*8:]))
}

// SetF64At writes element i as float64.
func (b *Buffer) SetF64At(i int, v float64) {
	binary.LittleEndian.PutUint64(b.Data[i*8:], math.Float64bits(v))
}

// IntAt reads element i sign- or zero-extended to int64 per the
// buffer's primitive.
func (b *Buffer) IntAt(i int) int64 {
	switch b.Prim {
	case isa.PrimI8:
		return int64(int8(b.Data[i]))
	case isa.PrimU8:
		return int64(b.Data[i])
	case isa.PrimI16:
		return int64(int16(binary.LittleEndian.Uint16(b.Data[i*2:])))
	case isa.PrimU16:
		return int64(binary.LittleEndian.Uint16(b.Data[i*2:]))
	case isa.PrimI32:
		return int64(int32(binary.LittleEndian.Uint32(b.Data[i*4:])))
	case isa.PrimU32:
		return int64(binary.LittleEndian.Uint32(b.Data[i*4:]))
	case isa.PrimI64, isa.PrimU64:
		return int64(binary.LittleEndian.Uint64(b.Data[i*8:]))
	default:
		panic(fmt.Sprintf("vm: IntAt on %v buffer", b.Prim))
	}
}

// SetIntAt writes element i from an int64, truncating per the primitive.
func (b *Buffer) SetIntAt(i int, v int64) {
	switch b.Prim {
	case isa.PrimI8, isa.PrimU8:
		b.Data[i] = byte(v)
	case isa.PrimI16, isa.PrimU16:
		binary.LittleEndian.PutUint16(b.Data[i*2:], uint16(v))
	case isa.PrimI32, isa.PrimU32:
		binary.LittleEndian.PutUint32(b.Data[i*4:], uint32(v))
	case isa.PrimI64, isa.PrimU64:
		binary.LittleEndian.PutUint64(b.Data[i*8:], uint64(v))
	default:
		panic(fmt.Sprintf("vm: SetIntAt on %v buffer", b.Prim))
	}
}

// --- host array pinning ------------------------------------------------------

// PinF32 copies a float32 slice into a buffer.
func PinF32(xs []float32) *Buffer {
	b := NewBuffer(isa.PrimF32, len(xs))
	for i, x := range xs {
		b.SetF32At(i, x)
	}
	return b
}

// UnpinF32 copies a buffer back into a float32 slice.
func (b *Buffer) UnpinF32(xs []float32) {
	for i := range xs {
		xs[i] = b.F32At(i)
	}
}

// PinF64 copies a float64 slice into a buffer.
func PinF64(xs []float64) *Buffer {
	b := NewBuffer(isa.PrimF64, len(xs))
	for i, x := range xs {
		b.SetF64At(i, x)
	}
	return b
}

// UnpinF64 copies a buffer back into a float64 slice.
func (b *Buffer) UnpinF64(xs []float64) {
	for i := range xs {
		xs[i] = b.F64At(i)
	}
}

// PinI8 copies an int8 slice into a buffer.
func PinI8(xs []int8) *Buffer {
	b := NewBuffer(isa.PrimI8, len(xs))
	for i, x := range xs {
		b.Data[i] = byte(x)
	}
	return b
}

// PinU8 copies a uint8 slice into a buffer.
func PinU8(xs []uint8) *Buffer {
	b := NewBuffer(isa.PrimU8, len(xs))
	copy(b.Data, xs)
	return b
}

// PinI16 copies an int16 slice into a buffer.
func PinI16(xs []int16) *Buffer {
	b := NewBuffer(isa.PrimI16, len(xs))
	for i, x := range xs {
		b.SetIntAt(i, int64(x))
	}
	return b
}

// PinU16 copies a uint16 slice into a buffer.
func PinU16(xs []uint16) *Buffer {
	b := NewBuffer(isa.PrimU16, len(xs))
	for i, x := range xs {
		b.SetIntAt(i, int64(x))
	}
	return b
}

// PinI32 copies an int32 slice into a buffer.
func PinI32(xs []int32) *Buffer {
	b := NewBuffer(isa.PrimI32, len(xs))
	for i, x := range xs {
		b.SetIntAt(i, int64(x))
	}
	return b
}

// UnpinI32 copies a buffer back into an int32 slice.
func (b *Buffer) UnpinI32(xs []int32) {
	for i := range xs {
		xs[i] = int32(b.IntAt(i))
	}
}

// --- allocation-free re-pinning ---------------------------------------------
//
// The Repin* variants reuse a previously allocated buffer when its shape
// matches (same primitive, same element count) and only then fall back
// to a fresh allocation. The runtime's Kernel.Call keeps one buffer per
// argument position, so steady-state invocation copies data without
// allocating — the pinned-array reuse a JVM's critical regions give the
// paper's pipeline.

// reusable reports whether b can hold a pin of n elements of p.
func reusable(b *Buffer, p isa.Prim, n int) bool {
	return b != nil && b.Prim == p && b.Len() == n
}

// RepinF32 copies xs into b when shapes match, else into a new buffer.
func RepinF32(b *Buffer, xs []float32) *Buffer {
	if !reusable(b, isa.PrimF32, len(xs)) {
		b = NewBuffer(isa.PrimF32, len(xs))
	}
	for i, x := range xs {
		b.SetF32At(i, x)
	}
	return b
}

// RepinF64 copies xs into b when shapes match, else into a new buffer.
func RepinF64(b *Buffer, xs []float64) *Buffer {
	if !reusable(b, isa.PrimF64, len(xs)) {
		b = NewBuffer(isa.PrimF64, len(xs))
	}
	for i, x := range xs {
		b.SetF64At(i, x)
	}
	return b
}

// RepinI8 copies xs into b when shapes match, else into a new buffer.
func RepinI8(b *Buffer, xs []int8) *Buffer {
	if !reusable(b, isa.PrimI8, len(xs)) {
		b = NewBuffer(isa.PrimI8, len(xs))
	}
	for i, x := range xs {
		b.Data[i] = byte(x)
	}
	return b
}

// RepinU8 copies xs into b when shapes match, else into a new buffer.
func RepinU8(b *Buffer, xs []uint8) *Buffer {
	if !reusable(b, isa.PrimU8, len(xs)) {
		b = NewBuffer(isa.PrimU8, len(xs))
	}
	copy(b.Data, xs)
	return b
}

// RepinI16 copies xs into b when shapes match, else into a new buffer.
func RepinI16(b *Buffer, xs []int16) *Buffer {
	if !reusable(b, isa.PrimI16, len(xs)) {
		b = NewBuffer(isa.PrimI16, len(xs))
	}
	for i, x := range xs {
		b.SetIntAt(i, int64(x))
	}
	return b
}

// RepinU16 copies xs into b when shapes match, else into a new buffer.
func RepinU16(b *Buffer, xs []uint16) *Buffer {
	if !reusable(b, isa.PrimU16, len(xs)) {
		b = NewBuffer(isa.PrimU16, len(xs))
	}
	for i, x := range xs {
		b.SetIntAt(i, int64(x))
	}
	return b
}

// RepinI32 copies xs into b when shapes match, else into a new buffer.
func RepinI32(b *Buffer, xs []int32) *Buffer {
	if !reusable(b, isa.PrimI32, len(xs)) {
		b = NewBuffer(isa.PrimI32, len(xs))
	}
	for i, x := range xs {
		b.SetIntAt(i, int64(x))
	}
	return b
}

// --- runtime values -----------------------------------------------------------

// Value is one runtime value in the kernel interpreter: a scalar, a
// register, or a displaced pointer into a buffer.
type Value struct {
	Kind ir.Kind
	I    int64
	U    uint64
	F    float64
	B    bool
	V    Vec
	Mem  *Buffer
	Off  int // pointer displacement in elements
}

// IntValue builds an i32 scalar.
func IntValue(v int) Value { return Value{Kind: ir.KindI32, I: int64(v)} }

// F32Value builds an f32 scalar.
func F32Value(v float32) Value { return Value{Kind: ir.KindF32, F: float64(v)} }

// F64Value builds an f64 scalar.
func F64Value(v float64) Value { return Value{Kind: ir.KindF64, F: v} }

// BoolValue builds a bool scalar.
func BoolValue(v bool) Value { return Value{Kind: ir.KindBool, B: v} }

// VecValue builds a register value.
func VecValue(v Vec) Value { return Value{Kind: ir.KindVec, V: v} }

// PtrValue builds a pointer to a buffer at element offset off.
func PtrValue(b *Buffer, off int) Value {
	return Value{Kind: ir.KindPtr, Mem: b, Off: off}
}

// AsInt returns the scalar numeric value as int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case ir.KindBool:
		if v.B {
			return 1
		}
		return 0
	case ir.KindF32, ir.KindF64:
		return int64(v.F)
	case ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
		return int64(v.U)
	default:
		return v.I
	}
}

// AsFloat returns the scalar numeric value as float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case ir.KindF32, ir.KindF64:
		return v.F
	case ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
		return float64(v.U)
	case ir.KindBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return float64(v.I)
	}
}

// Equal reports bit-exact equality of two values. Floats compare by bit
// pattern (NaN payloads included), pointers by displacement plus the
// pointed-to bytes — the comparison the differential harnesses use.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.I != o.I || v.U != o.U || v.B != o.B || v.V != o.V {
		return false
	}
	if math.Float64bits(v.F) != math.Float64bits(o.F) {
		return false
	}
	if (v.Mem == nil) != (o.Mem == nil) {
		return false
	}
	if v.Mem != nil {
		return v.Off == o.Off && v.Mem.Prim == o.Mem.Prim &&
			bytes.Equal(v.Mem.Data, o.Mem.Data)
	}
	return true
}
