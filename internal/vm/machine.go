package vm

import (
	"fmt"
	"sort"

	"repro/internal/cachesim"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Machine is one simulated CPU executing kernels: the feature set drives
// availability checks, the RNG backs the RDRAND/RDSEED intrinsics, and
// Counts accumulates dynamic instruction counts that the cost model
// converts into cycles.
type Machine struct {
	Arch   *isa.Microarch
	Rand   *Xorshift
	Counts Counter
	// Cache, when set, simulates the access stream through a real
	// set-associative hierarchy — used to validate the analytical
	// memory model. Nil by default (simulation costs time).
	Cache *cachesim.Hierarchy
	// Workers is the lane budget for the parallel loop tier: loops the
	// dependence analysis proves independent shard across up to this
	// many goroutines. 0 or 1 keeps every loop on the serial driver.
	// Sharded execution is disabled while Cache is attached (the
	// simulator is order-sensitive shared state).
	Workers int
	// ChunkHint, when positive, overrides the shard scheduler's default
	// chunk size for parallel loops. The execution planner sets it when
	// calibration found a better granularity; 0 keeps the
	// chunksPerWorker-derived default.
	ChunkHint int64
}

// Touch routes one memory access through the cache simulator, when
// attached.
func (m *Machine) Touch(b *Buffer, byteOff, size int) {
	if m.Cache != nil {
		m.Cache.Access(b.Base+uint64(byteOff), size)
	}
}

// NewMachine creates a machine for the given microarchitecture with a
// fixed RNG seed (the hardware RDRAND is substituted by a deterministic
// xorshift so experiments replay exactly).
func NewMachine(arch *isa.Microarch) *Machine {
	return &Machine{Arch: arch, Rand: NewXorshift(0x9E3779B97F4A7C15), Counts: Counter{}}
}

// Worker derives a lane-private machine for one shard of a parallel
// loop: same architecture, fresh deterministic RNG, an empty counter
// the scheduler merges after the join, no cache simulator, and a zero
// worker budget so nested loops inside the shard stay serial.
func (m *Machine) Worker() *Machine {
	return NewMachine(m.Arch)
}

// Counter counts dynamically executed operations by op name.
type Counter map[string]int64

// Add increments an op's count.
func (c Counter) Add(op string, n int64) { c[op] += n }

// Reset clears all counts.
func (c Counter) Reset() {
	for k := range c {
		delete(c, k)
	}
}

// Total sums every count.
func (c Counter) Total() int64 {
	var t int64
	for _, n := range c {
		t += n
	}
	return t
}

// Ops returns op names sorted for deterministic reporting.
func (c Counter) Ops() []string {
	out := make([]string, 0, len(c))
	for k := range c {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge adds every count from o into c (parallel sweep workers count on
// private machines and merge after the barrier).
func (c Counter) Merge(o Counter) {
	for k, v := range o {
		c[k] += v
	}
}

// Publish mirrors every count into the registry as gauges named
// prefix+op. Counts are cumulative totals, so gauge semantics (set, not
// add) make Publish idempotent — the harness republishes the merged
// sweep counters before each metrics snapshot.
func (c Counter) Publish(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	for _, op := range c.Ops() {
		r.Gauge(prefix + op).Set(c[op])
	}
}

// Clone copies the counter.
func (c Counter) Clone() Counter {
	out := make(Counter, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Intrinsic is one executable intrinsic semantic.
type Intrinsic struct {
	Name string
	// Fn evaluates the intrinsic. Void intrinsics return the zero Value.
	Fn func(m *Machine, args []Value) (Value, error)
	// FnInto, when non-nil, is the destination-passing fast path: it
	// writes the result into *out instead of returning a Value, so the
	// interpreter can evaluate straight into a register or arena slot
	// without copying the 112-byte Value through a return. out never
	// aliases an element of args, must be non-nil even for void
	// intrinsics (which leave it untouched), and after a successful call
	// holds exactly the Value that Fn would have returned.
	FnInto func(m *Machine, args []Value, out *Value) error
}

var registry = map[string]Intrinsic{}

// intoRegistry holds the destination-passing fast paths, keyed by
// intrinsic name. It is separate from registry so the semantics files
// need no particular init order; Lookup merges the two views.
var intoRegistry = map[string]func(m *Machine, args []Value, out *Value) error{}

// register installs a semantic; duplicate registration is a programming
// error caught at init.
func register(name string, fn func(m *Machine, args []Value) (Value, error)) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("vm: duplicate intrinsic semantic %s", name))
	}
	registry[name] = Intrinsic{Name: name, Fn: fn}
}

// registerInto installs the destination-passing fast path for an
// intrinsic. A test asserts every entry matches a register() name.
func registerInto(name string, fn func(m *Machine, args []Value, out *Value) error) {
	if _, dup := intoRegistry[name]; dup {
		panic(fmt.Sprintf("vm: duplicate in-place semantic %s", name))
	}
	intoRegistry[name] = fn
}

// Lookup finds an intrinsic's executable semantic.
func Lookup(name string) (Intrinsic, bool) {
	in, ok := registry[name]
	if ok {
		in.FnInto = intoRegistry[name]
	}
	return in, ok
}

// Implemented reports whether the machine can execute the named
// intrinsic.
func Implemented(name string) bool {
	_, ok := registry[name]
	return ok
}

// ImplementedCount returns the number of intrinsics with executable
// semantics.
func ImplementedCount() int { return len(registry) }

// IntoCount returns the number of intrinsics with a destination-passing
// fast path.
func IntoCount() int { return len(intoRegistry) }

// IntoNames lists the intrinsics with a destination-passing fast path,
// sorted by name.
func IntoNames() []string {
	out := make([]string, 0, len(intoRegistry))
	for k := range intoRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ImplementedNames lists all executable intrinsics sorted by name.
func ImplementedNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Call executes an intrinsic by name, counting it.
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	in, ok := registry[name]
	if !ok {
		return Value{}, fmt.Errorf("vm: intrinsic %s has no executable semantic", name)
	}
	m.Counts.Add(name, 1)
	return in.Fn(m, args)
}

// --- argument helpers used by the semantics files ---------------------------

func argVec(args []Value, i int) Vec { return args[i].V }

func argInt(args []Value, i int) int { return int(args[i].AsInt()) }

func argPtr(args []Value, i int) (*Buffer, int, error) {
	if args[i].Mem == nil {
		return nil, 0, fmt.Errorf("vm: argument %d is not a pointer", i)
	}
	return args[i].Mem, args[i].Off, nil
}

func vecResult(v Vec) (Value, error) { return VecValue(v), nil }

func voidResult() (Value, error) { return Value{}, nil }
