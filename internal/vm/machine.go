package vm

import (
	"fmt"
	"sort"

	"repro/internal/cachesim"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Machine is one simulated CPU executing kernels: the feature set drives
// availability checks, the RNG backs the RDRAND/RDSEED intrinsics, and
// Counts accumulates dynamic instruction counts that the cost model
// converts into cycles.
type Machine struct {
	Arch   *isa.Microarch
	Rand   *Xorshift
	Counts Counter
	// Cache, when set, simulates the access stream through a real
	// set-associative hierarchy — used to validate the analytical
	// memory model. Nil by default (simulation costs time).
	Cache *cachesim.Hierarchy
}

// Touch routes one memory access through the cache simulator, when
// attached.
func (m *Machine) Touch(b *Buffer, byteOff, size int) {
	if m.Cache != nil {
		m.Cache.Access(b.Base+uint64(byteOff), size)
	}
}

// NewMachine creates a machine for the given microarchitecture with a
// fixed RNG seed (the hardware RDRAND is substituted by a deterministic
// xorshift so experiments replay exactly).
func NewMachine(arch *isa.Microarch) *Machine {
	return &Machine{Arch: arch, Rand: NewXorshift(0x9E3779B97F4A7C15), Counts: Counter{}}
}

// Counter counts dynamically executed operations by op name.
type Counter map[string]int64

// Add increments an op's count.
func (c Counter) Add(op string, n int64) { c[op] += n }

// Reset clears all counts.
func (c Counter) Reset() {
	for k := range c {
		delete(c, k)
	}
}

// Total sums every count.
func (c Counter) Total() int64 {
	var t int64
	for _, n := range c {
		t += n
	}
	return t
}

// Ops returns op names sorted for deterministic reporting.
func (c Counter) Ops() []string {
	out := make([]string, 0, len(c))
	for k := range c {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge adds every count from o into c (parallel sweep workers count on
// private machines and merge after the barrier).
func (c Counter) Merge(o Counter) {
	for k, v := range o {
		c[k] += v
	}
}

// Publish mirrors every count into the registry as gauges named
// prefix+op. Counts are cumulative totals, so gauge semantics (set, not
// add) make Publish idempotent — the harness republishes the merged
// sweep counters before each metrics snapshot.
func (c Counter) Publish(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	for _, op := range c.Ops() {
		r.Gauge(prefix + op).Set(c[op])
	}
}

// Clone copies the counter.
func (c Counter) Clone() Counter {
	out := make(Counter, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Intrinsic is one executable intrinsic semantic.
type Intrinsic struct {
	Name string
	// Fn evaluates the intrinsic. Void intrinsics return the zero Value.
	Fn func(m *Machine, args []Value) (Value, error)
}

var registry = map[string]Intrinsic{}

// register installs a semantic; duplicate registration is a programming
// error caught at init.
func register(name string, fn func(m *Machine, args []Value) (Value, error)) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("vm: duplicate intrinsic semantic %s", name))
	}
	registry[name] = Intrinsic{Name: name, Fn: fn}
}

// Lookup finds an intrinsic's executable semantic.
func Lookup(name string) (Intrinsic, bool) {
	in, ok := registry[name]
	return in, ok
}

// Implemented reports whether the machine can execute the named
// intrinsic.
func Implemented(name string) bool {
	_, ok := registry[name]
	return ok
}

// ImplementedCount returns the number of intrinsics with executable
// semantics.
func ImplementedCount() int { return len(registry) }

// ImplementedNames lists all executable intrinsics sorted by name.
func ImplementedNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Call executes an intrinsic by name, counting it.
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	in, ok := registry[name]
	if !ok {
		return Value{}, fmt.Errorf("vm: intrinsic %s has no executable semantic", name)
	}
	m.Counts.Add(name, 1)
	return in.Fn(m, args)
}

// --- argument helpers used by the semantics files ---------------------------

func argVec(args []Value, i int) Vec { return args[i].V }

func argInt(args []Value, i int) int { return int(args[i].AsInt()) }

func argPtr(args []Value, i int) (*Buffer, int, error) {
	if args[i].Mem == nil {
		return nil, 0, fmt.Errorf("vm: argument %d is not a pointer", i)
	}
	return args[i].Mem, args[i].Off, nil
}

func vecResult(v Vec) (Value, error) { return VecValue(v), nil }

func voidResult() (Value, error) { return Value{}, nil }
