package vm

import (
	"math"
	"math/bits"

	"repro/internal/ir"
)

// Miscellaneous intrinsics: hardware RNG (backed by the machine's seeded
// xorshift), population counts, CRC32C, timestamp counter, SSE4.1 dot
// products, and the AVX-512 reductions.

func init() {
	// RDRAND / RDSEED: write through the out-pointer, return 1 (success).
	randStep := func(bitsN int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			buf, off, err := argPtr(args, 0)
			if err != nil {
				return Value{}, err
			}
			switch bitsN {
			case 16:
				buf.SetIntAt(off, int64(m.Rand.Next16()))
			case 32:
				buf.SetIntAt(off, int64(m.Rand.Next32()))
			default:
				buf.SetIntAt(off, int64(m.Rand.Next64()))
			}
			return IntValue(1), nil
		}
	}
	register("_rdrand16_step", randStep(16))
	register("_rdrand32_step", randStep(32))
	register("_rdrand64_step", randStep(64))
	register("_rdseed16_step", randStep(16))
	register("_rdseed32_step", randStep(32))
	register("_rdseed64_step", randStep(64))

	register("_mm_popcnt_u32", func(m *Machine, args []Value) (Value, error) {
		return IntValue(bits.OnesCount32(uint32(args[0].AsInt()))), nil
	})
	register("_mm_popcnt_u64", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindI64, I: int64(bits.OnesCount64(uint64(args[0].AsInt())))}, nil
	})
	register("_lzcnt_u32", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU32, U: uint64(bits.LeadingZeros32(uint32(args[0].AsInt())))}, nil
	})
	register("_lzcnt_u64", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU64, U: uint64(bits.LeadingZeros64(uint64(args[0].AsInt())))}, nil
	})
	register("_tzcnt_u32", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU32, U: uint64(bits.TrailingZeros32(uint32(args[0].AsInt())))}, nil
	})
	register("_tzcnt_u64", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU64, U: uint64(bits.TrailingZeros64(uint64(args[0].AsInt())))}, nil
	})
	register("_blsr_u32", func(m *Machine, args []Value) (Value, error) {
		x := uint32(args[0].AsInt())
		return Value{Kind: ir.KindU32, U: uint64(x & (x - 1))}, nil
	})
	register("_pext_u32", func(m *Machine, args []Value) (Value, error) {
		x, mask := uint32(args[0].AsInt()), uint32(args[1].AsInt())
		var out, k uint32
		for i := 0; i < 32; i++ {
			if mask>>i&1 == 1 {
				out |= (x >> i & 1) << k
				k++
			}
		}
		return Value{Kind: ir.KindU32, U: uint64(out)}, nil
	})
	register("_pdep_u32", func(m *Machine, args []Value) (Value, error) {
		x, mask := uint32(args[0].AsInt()), uint32(args[1].AsInt())
		var out uint32
		k := 0
		for i := 0; i < 32; i++ {
			if mask>>i&1 == 1 {
				out |= (x >> k & 1) << i
				k++
			}
		}
		return Value{Kind: ir.KindU32, U: uint64(out)}, nil
	})

	// CRC32C (Castagnoli, reflected polynomial 0x82F63B78).
	crc := func(crcIn uint32, data uint64, bytes int) uint32 {
		c := crcIn
		for i := 0; i < bytes; i++ {
			c ^= uint32(data >> (8 * i) & 0xFF)
			for k := 0; k < 8; k++ {
				if c&1 == 1 {
					c = c>>1 ^ 0x82F63B78
				} else {
					c >>= 1
				}
			}
		}
		return c
	}
	register("_mm_crc32_u8", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU32, U: uint64(crc(uint32(args[0].AsInt()), uint64(args[1].AsInt()), 1))}, nil
	})
	register("_mm_crc32_u16", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU32, U: uint64(crc(uint32(args[0].AsInt()), uint64(args[1].AsInt()), 2))}, nil
	})
	register("_mm_crc32_u32", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU32, U: uint64(crc(uint32(args[0].AsInt()), uint64(args[1].AsInt()), 4))}, nil
	})
	register("_mm_crc32_u64", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU64, U: uint64(crc(uint32(args[0].AsInt()), uint64(args[1].AsInt()), 8))}, nil
	})

	// Timestamp counter: a monotonically growing virtual cycle count
	// derived from executed-op totals.
	register("_rdtsc", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindU64, U: uint64(m.Counts.Total()) * 2}, nil
	})

	// SSE4.1 dot products.
	register("_mm_dp_ps", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		imm := argInt(args, 2)
		var sum float32
		for i := 0; i < 4; i++ {
			if imm>>(4+i)&1 == 1 {
				sum += a.F32(i) * b.F32(i)
			}
		}
		var out Vec
		for i := 0; i < 4; i++ {
			if imm>>i&1 == 1 {
				out.SetF32(i, sum)
			}
		}
		return vecResult(out)
	})
	register("_mm_dp_pd", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		imm := argInt(args, 2)
		var sum float64
		for i := 0; i < 2; i++ {
			if imm>>(4+i)&1 == 1 {
				sum += a.F64(i) * b.F64(i)
			}
		}
		var out Vec
		for i := 0; i < 2; i++ {
			if imm>>i&1 == 1 {
				out.SetF64(i, sum)
			}
		}
		return vecResult(out)
	})

	// AVX-512 reductions and masks.
	register("_mm512_reduce_add_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var sum float32
		for i := 0; i < 16; i++ {
			sum += a.F32(i)
		}
		return F32Value(sum), nil
	})
	register("_mm512_reduce_add_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var sum float64
		for i := 0; i < 8; i++ {
			sum += a.F64(i)
		}
		return F64Value(sum), nil
	})
	register("_mm512_cmpeq_epi32_mask", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var mask Vec
		var bitsOut uint16
		for i := 0; i < 16; i++ {
			if a.I32(i) == b.I32(i) {
				bitsOut |= 1 << i
			}
		}
		mask.SetU16(0, bitsOut)
		return vecResult(mask)
	})
	register("_mm512_mask_add_ps", func(m *Machine, args []Value) (Value, error) {
		src, k, a, b := argVec(args, 0), argVec(args, 1), argVec(args, 2), argVec(args, 3)
		out := src
		mask := k.U16(0)
		for i := 0; i < 16; i++ {
			if mask>>i&1 == 1 {
				out.SetF32(i, a.F32(i)+b.F32(i))
			}
		}
		return vecResult(out)
	})
	register("_mm_cmp_epi16_mask", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		imm := argInt(args, 2)
		var out Vec
		var mask uint8
		for i := 0; i < 8; i++ {
			x, y := a.I16(i), b.I16(i)
			var t bool
			switch imm & 7 {
			case 0:
				t = x == y
			case 1:
				t = x < y
			case 2:
				t = x <= y
			case 4:
				t = x != y
			case 5:
				t = x >= y
			case 6:
				t = x > y
			}
			if t {
				mask |= 1 << i
			}
		}
		out.SetU8(0, mask)
		return vecResult(out)
	})

	// AES and SHA rounds: simplified mixing functions — the exact FIPS
	// transformations are out of scope, but the ops stay executable and
	// deterministic so pipelines using them can be tested end-to-end.
	mix := func(seed uint64) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for i := 0; i < 2; i++ {
				x := a.U64(i) ^ b.U64(i)
				x ^= x >> 33
				x *= seed
				x ^= x >> 29
				out.SetU64(i, x)
			}
			return vecResult(out)
		}
	}
	register("_mm_aesdec_si128", mix(0xC2B2AE3D27D4EB4F))
	register("_mm_aesenc_si128", mix(0x9E3779B97F4A7C15))
	register("_mm_sha1msg1_epu32", mix(0xFF51AFD7ED558CCD))
	register("_mm_sha256msg1_epu32", mix(0xC4CEB9FE1A85EC53))
	register("_mm_clmulepi64_si128", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		imm := argInt(args, 2)
		x := a.U64(imm & 1)
		y := b.U64(imm >> 4 & 1)
		var lo, hi uint64
		for i := 0; i < 64; i++ {
			if y>>i&1 == 1 {
				lo ^= x << i
				if i > 0 {
					hi ^= x >> (64 - i)
				}
			}
		}
		var out Vec
		out.SetU64(0, lo)
		out.SetU64(1, hi)
		return vecResult(out)
	})

	// SSE4.2 string compares: equal-each (imm ignored beyond that) —
	// enough to execute staged string kernels.
	register("_mm_cmpistri", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		for i := 0; i < 16; i++ {
			if a.U8(i) != b.U8(i) {
				return IntValue(i), nil
			}
		}
		return IntValue(16), nil
	})
	register("_mm_cmpistrz", func(m *Machine, args []Value) (Value, error) {
		b := argVec(args, 1)
		for i := 0; i < 16; i++ {
			if b.U8(i) == 0 {
				return IntValue(1), nil
			}
		}
		return IntValue(0), nil
	})
	register("_mm_cmpistrm", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for i := 0; i < 16; i++ {
			if a.U8(i) == b.U8(i) {
				out.SetU8(i, 0xFF)
			}
		}
		return vecResult(out)
	})
	register("_mm_cmpestri", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 2)
		la, lb := argInt(args, 1), argInt(args, 3)
		n := la
		if lb < n {
			n = lb
		}
		if n > 16 {
			n = 16
		}
		for i := 0; i < n; i++ {
			if a.U8(i) != b.U8(i) {
				return IntValue(i), nil
			}
		}
		return IntValue(n), nil
	})
	register("_mm_cmpestrm", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 2)
		la, lb := argInt(args, 1), argInt(args, 3)
		n := la
		if lb < n {
			n = lb
		}
		if n > 16 {
			n = 16
		}
		var out Vec
		for i := 0; i < n; i++ {
			if a.U8(i) == b.U8(i) {
				out.SetU8(i, 0xFF)
			}
		}
		return vecResult(out)
	})

	// Approximations used by SVML tests.
	_ = math.Pi
}
