package vm

import (
	"math"

	"repro/internal/ir"
)

// This file installs destination-passing fast paths (Intrinsic.FnInto)
// for the intrinsics that dominate the figure sweeps: packed f32/f64
// add/sub/mul/div/min/max, the FMA family, packed i32 arithmetic,
// float-register bitwise logic, and plain vector loads/stores. Each
// fast path writes its result into a caller-provided Value and runs a
// monomorphic unrolled lane loop — every per-lane operation is a
// direct (inlinable) call, replacing the per-lane function-pointer
// dispatch of the generic map*/bitwise combinators. Results are
// bit-identical to the allocating Fn variants (a test and a fuzz
// target enforce this), so dynamic op counts and figure outputs do not
// change.

// vecInto resets out to a clean vector Value (matching what
// vecResult(Vec{...}) would have produced) and returns its register
// for in-place lane writes.
func vecInto(out *Value) *Vec {
	*out = Value{Kind: ir.KindVec}
	return &out.V
}

// --- packed f32 arithmetic ---------------------------------------------------
// lanes is always a multiple of 4 (4/8/16 for 128/256/512 bits).

func addPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, fAdd32(a.F32(i), b.F32(i)))
			v.SetF32(i+1, fAdd32(a.F32(i+1), b.F32(i+1)))
			v.SetF32(i+2, fAdd32(a.F32(i+2), b.F32(i+2)))
			v.SetF32(i+3, fAdd32(a.F32(i+3), b.F32(i+3)))
		}
		return nil
	}
}

func subPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, fSub32(a.F32(i), b.F32(i)))
			v.SetF32(i+1, fSub32(a.F32(i+1), b.F32(i+1)))
			v.SetF32(i+2, fSub32(a.F32(i+2), b.F32(i+2)))
			v.SetF32(i+3, fSub32(a.F32(i+3), b.F32(i+3)))
		}
		return nil
	}
}

func mulPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, fMul32(a.F32(i), b.F32(i)))
			v.SetF32(i+1, fMul32(a.F32(i+1), b.F32(i+1)))
			v.SetF32(i+2, fMul32(a.F32(i+2), b.F32(i+2)))
			v.SetF32(i+3, fMul32(a.F32(i+3), b.F32(i+3)))
		}
		return nil
	}
}

func divPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, fDiv32(a.F32(i), b.F32(i)))
			v.SetF32(i+1, fDiv32(a.F32(i+1), b.F32(i+1)))
			v.SetF32(i+2, fDiv32(a.F32(i+2), b.F32(i+2)))
			v.SetF32(i+3, fDiv32(a.F32(i+3), b.F32(i+3)))
		}
		return nil
	}
}

func minPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, fMin32(a.F32(i), b.F32(i)))
			v.SetF32(i+1, fMin32(a.F32(i+1), b.F32(i+1)))
			v.SetF32(i+2, fMin32(a.F32(i+2), b.F32(i+2)))
			v.SetF32(i+3, fMin32(a.F32(i+3), b.F32(i+3)))
		}
		return nil
	}
}

func maxPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, fMax32(a.F32(i), b.F32(i)))
			v.SetF32(i+1, fMax32(a.F32(i+1), b.F32(i+1)))
			v.SetF32(i+2, fMax32(a.F32(i+2), b.F32(i+2)))
			v.SetF32(i+3, fMax32(a.F32(i+3), b.F32(i+3)))
		}
		return nil
	}
}

// --- packed f64 arithmetic ---------------------------------------------------
// lanes is always a multiple of 2 (2/4/8 for 128/256/512 bits).

func addPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, fAdd64(a.F64(i), b.F64(i)))
			v.SetF64(i+1, fAdd64(a.F64(i+1), b.F64(i+1)))
		}
		return nil
	}
}

func subPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, fSub64(a.F64(i), b.F64(i)))
			v.SetF64(i+1, fSub64(a.F64(i+1), b.F64(i+1)))
		}
		return nil
	}
}

func mulPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, fMul64(a.F64(i), b.F64(i)))
			v.SetF64(i+1, fMul64(a.F64(i+1), b.F64(i+1)))
		}
		return nil
	}
}

func divPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, fDiv64(a.F64(i), b.F64(i)))
			v.SetF64(i+1, fDiv64(a.F64(i+1), b.F64(i+1)))
		}
		return nil
	}
}

func minPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, fMin64(a.F64(i), b.F64(i)))
			v.SetF64(i+1, fMin64(a.F64(i+1), b.F64(i+1)))
		}
		return nil
	}
}

func maxPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, fMax64(a.F64(i), b.F64(i)))
			v.SetF64(i+1, fMax64(a.F64(i+1), b.F64(i+1)))
		}
		return nil
	}
}

// --- FMA ---------------------------------------------------------------------
// math.FMA gives the exact fused semantics, same as the Fn variants.

func fmaddPSInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b, c := args[0].V, args[1].V, args[2].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetF32(i, float32(math.FMA(float64(a.F32(i)), float64(b.F32(i)), float64(c.F32(i)))))
			v.SetF32(i+1, float32(math.FMA(float64(a.F32(i+1)), float64(b.F32(i+1)), float64(c.F32(i+1)))))
			v.SetF32(i+2, float32(math.FMA(float64(a.F32(i+2)), float64(b.F32(i+2)), float64(c.F32(i+2)))))
			v.SetF32(i+3, float32(math.FMA(float64(a.F32(i+3)), float64(b.F32(i+3)), float64(c.F32(i+3)))))
		}
		return nil
	}
}

func fmaddPDInto(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b, c := args[0].V, args[1].V, args[2].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 2 {
			v.SetF64(i, math.FMA(a.F64(i), b.F64(i), c.F64(i)))
			v.SetF64(i+1, math.FMA(a.F64(i+1), b.F64(i+1), c.F64(i+1)))
		}
		return nil
	}
}

// --- packed i32 arithmetic ---------------------------------------------------

func addEpi32Into(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetI32(i, a.I32(i)+b.I32(i))
			v.SetI32(i+1, a.I32(i+1)+b.I32(i+1))
			v.SetI32(i+2, a.I32(i+2)+b.I32(i+2))
			v.SetI32(i+3, a.I32(i+3)+b.I32(i+3))
		}
		return nil
	}
}

func subEpi32Into(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i += 4 {
			v.SetI32(i, a.I32(i)-b.I32(i))
			v.SetI32(i+1, a.I32(i+1)-b.I32(i+1))
			v.SetI32(i+2, a.I32(i+2)-b.I32(i+2))
			v.SetI32(i+3, a.I32(i+3)-b.I32(i+3))
		}
		return nil
	}
}

func mulloEpi32Into(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i++ {
			v.SetI32(i, int32(int64(a.I32(i))*int64(b.I32(i))))
		}
		return nil
	}
}

func i32Min(x, y int32) int32 {
	if y < x {
		return y
	}
	return x
}

func i32Max(x, y int32) int32 {
	if y > x {
		return y
	}
	return x
}

func minEpi32Into(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i++ {
			v.SetI32(i, i32Min(a.I32(i), b.I32(i)))
		}
		return nil
	}
}

func maxEpi32Into(lanes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < lanes; i++ {
			v.SetI32(i, i32Max(a.I32(i), b.I32(i)))
		}
		return nil
	}
}

// --- bitwise logic on float registers ---------------------------------------
// nbytes is always a multiple of 8 (16/32 for 128/256 bits).

func andInto(nbytes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < nbytes; i += 8 {
			v.b[i] = a.b[i] & b.b[i]
			v.b[i+1] = a.b[i+1] & b.b[i+1]
			v.b[i+2] = a.b[i+2] & b.b[i+2]
			v.b[i+3] = a.b[i+3] & b.b[i+3]
			v.b[i+4] = a.b[i+4] & b.b[i+4]
			v.b[i+5] = a.b[i+5] & b.b[i+5]
			v.b[i+6] = a.b[i+6] & b.b[i+6]
			v.b[i+7] = a.b[i+7] & b.b[i+7]
		}
		return nil
	}
}

func orInto(nbytes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < nbytes; i += 8 {
			v.b[i] = a.b[i] | b.b[i]
			v.b[i+1] = a.b[i+1] | b.b[i+1]
			v.b[i+2] = a.b[i+2] | b.b[i+2]
			v.b[i+3] = a.b[i+3] | b.b[i+3]
			v.b[i+4] = a.b[i+4] | b.b[i+4]
			v.b[i+5] = a.b[i+5] | b.b[i+5]
			v.b[i+6] = a.b[i+6] | b.b[i+6]
			v.b[i+7] = a.b[i+7] | b.b[i+7]
		}
		return nil
	}
}

func xorInto(nbytes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < nbytes; i += 8 {
			v.b[i] = a.b[i] ^ b.b[i]
			v.b[i+1] = a.b[i+1] ^ b.b[i+1]
			v.b[i+2] = a.b[i+2] ^ b.b[i+2]
			v.b[i+3] = a.b[i+3] ^ b.b[i+3]
			v.b[i+4] = a.b[i+4] ^ b.b[i+4]
			v.b[i+5] = a.b[i+5] ^ b.b[i+5]
			v.b[i+6] = a.b[i+6] ^ b.b[i+6]
			v.b[i+7] = a.b[i+7] ^ b.b[i+7]
		}
		return nil
	}
}

func andnotInto(nbytes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		a, b := args[0].V, args[1].V
		v := vecInto(out)
		for i := 0; i < nbytes; i += 8 {
			v.b[i] = ^a.b[i] & b.b[i]
			v.b[i+1] = ^a.b[i+1] & b.b[i+1]
			v.b[i+2] = ^a.b[i+2] & b.b[i+2]
			v.b[i+3] = ^a.b[i+3] & b.b[i+3]
			v.b[i+4] = ^a.b[i+4] & b.b[i+4]
			v.b[i+5] = ^a.b[i+5] & b.b[i+5]
			v.b[i+6] = ^a.b[i+6] & b.b[i+6]
			v.b[i+7] = ^a.b[i+7] & b.b[i+7]
		}
		return nil
	}
}

// --- loads / stores ----------------------------------------------------------

func loadInto(bytes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return err
		}
		v := vecInto(out)
		if err := buf.LoadVecInto(off, bytes, v); err != nil {
			return err
		}
		m.Touch(buf, off*buf.Prim.Bits()/8, bytes)
		return nil
	}
}

// storeIntoFn is the destination-passing form of a store: void, so out
// is left untouched.
func storeIntoFn(bytes int) func(m *Machine, args []Value, out *Value) error {
	return func(m *Machine, args []Value, out *Value) error {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return err
		}
		if err := buf.StoreVec(off, args[1].V, bytes); err != nil {
			return err
		}
		m.Touch(buf, off*buf.Prim.Bits()/8, bytes)
		return nil
	}
}

func init() {
	for _, w := range []struct {
		pfx      string
		l32, l64 int
	}{
		{"_mm_", 4, 2}, {"_mm256_", 8, 4}, {"_mm512_", 16, 8},
	} {
		registerInto(w.pfx+"add_ps", addPSInto(w.l32))
		registerInto(w.pfx+"sub_ps", subPSInto(w.l32))
		registerInto(w.pfx+"mul_ps", mulPSInto(w.l32))
		registerInto(w.pfx+"div_ps", divPSInto(w.l32))
		registerInto(w.pfx+"min_ps", minPSInto(w.l32))
		registerInto(w.pfx+"max_ps", maxPSInto(w.l32))
		registerInto(w.pfx+"add_pd", addPDInto(w.l64))
		registerInto(w.pfx+"sub_pd", subPDInto(w.l64))
		registerInto(w.pfx+"mul_pd", mulPDInto(w.l64))
		registerInto(w.pfx+"div_pd", divPDInto(w.l64))
		registerInto(w.pfx+"min_pd", minPDInto(w.l64))
		registerInto(w.pfx+"max_pd", maxPDInto(w.l64))
		registerInto(w.pfx+"fmadd_ps", fmaddPSInto(w.l32))
		registerInto(w.pfx+"fmadd_pd", fmaddPDInto(w.l64))
		registerInto(w.pfx+"add_epi32", addEpi32Into(w.l32))
		registerInto(w.pfx+"sub_epi32", subEpi32Into(w.l32))
		if w.pfx != "_mm512_" {
			registerInto(w.pfx+"mullo_epi32", mulloEpi32Into(w.l32))
			registerInto(w.pfx+"min_epi32", minEpi32Into(w.l32))
			registerInto(w.pfx+"max_epi32", maxEpi32Into(w.l32))
			nbytes := w.l32 * 4
			for _, sfx := range []string{"_ps", "_pd"} {
				registerInto(w.pfx+"and"+sfx, andInto(nbytes))
				registerInto(w.pfx+"or"+sfx, orInto(nbytes))
				registerInto(w.pfx+"xor"+sfx, xorInto(nbytes))
				registerInto(w.pfx+"andnot"+sfx, andnotInto(nbytes))
			}
		}
	}

	for _, l := range []struct {
		name  string
		bytes int
	}{
		{"_mm_loadu_ps", 16}, {"_mm_load_ps", 16},
		{"_mm_loadu_pd", 16}, {"_mm_load_pd", 16},
		{"_mm_loadu_si128", 16}, {"_mm_load_si128", 16}, {"_mm_lddqu_si128", 16},
		{"_mm_stream_load_si128", 16},
		{"_mm256_loadu_ps", 32}, {"_mm256_load_ps", 32},
		{"_mm256_loadu_pd", 32}, {"_mm256_load_pd", 32},
		{"_mm256_loadu_si256", 32}, {"_mm256_load_si256", 32},
		{"_mm512_loadu_ps", 64}, {"_mm512_loadu_pd", 64}, {"_mm512_loadu_si512", 64},
	} {
		registerInto(l.name, loadInto(l.bytes))
	}
	for _, s := range []struct {
		name  string
		bytes int
	}{
		{"_mm_storeu_ps", 16}, {"_mm_store_ps", 16},
		{"_mm_storeu_pd", 16}, {"_mm_store_pd", 16},
		{"_mm_storeu_si128", 16}, {"_mm_store_si128", 16}, {"_mm_stream_si128", 16},
		{"_mm256_storeu_ps", 32}, {"_mm256_store_ps", 32}, {"_mm256_stream_ps", 32},
		{"_mm256_storeu_pd", 32}, {"_mm256_store_pd", 32}, {"_mm256_stream_pd", 32},
		{"_mm256_storeu_si256", 32}, {"_mm256_store_si256", 32},
		{"_mm256_stream_si256", 32},
		{"_mm512_storeu_ps", 64}, {"_mm512_storeu_pd", 64}, {"_mm512_storeu_si512", 64},
	} {
		registerInto(s.name, storeIntoFn(s.bytes))
	}
}
