package vm

import "math"

// IEEE 754 binary16 conversion, used by the FP16C intrinsics
// (_mm256_cvtph_ps / _mm256_cvtps_ph) that the 16-bit variable-precision
// dot product relies on (Section 4.1).

// F16FromF32 converts a float32 to the nearest binary16 value
// (round-to-nearest-even), returning its bit pattern.
func F16FromF32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127
	mant := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp > 15: // overflow → Inf
		return sign | 0x7C00
	case exp >= -14: // normal range
		// Round the 23-bit fraction down to 10 bits.
		r := roundShift(mant, 13)
		e := uint32(exp + 15)
		if r == 0x400 { // mantissa rounding overflowed into the exponent
			r = 0
			e++
		}
		if e >= 31 {
			return sign | 0x7C00
		}
		return sign | uint16(e<<10) | uint16(r)
	case exp >= -25: // subnormal half: round (1.f × 2^(exp+24)) to integer
		m := mant | 0x800000
		r := roundShift(m, uint32(-exp-1))
		if r == 0x400 { // rounded up into the smallest normal
			return sign | 0x0400
		}
		return sign | uint16(r)
	default: // underflow → signed zero
		return sign
	}
}

// roundShift shifts m right by s with round-to-nearest-even.
func roundShift(m uint32, s uint32) uint32 {
	if s == 0 {
		return m
	}
	if s > 31 {
		return 0
	}
	half := uint32(1) << (s - 1)
	rem := m & ((1 << s) - 1)
	q := m >> s
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return q
}

// F32FromF16 converts a binary16 bit pattern to float32 exactly (every
// half value is representable in single precision).
func F32FromF16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}
