package vm

// Shuffle, permute, unpack, blend and byte-move semantics — the data-
// movement vocabulary the paper's 8×8 MMM transpose (Figure 5) is built
// from.

func init() {
	registerUnpacks()
	registerShuffles()
	registerPermutes()
	registerBlends()
	registerByteShifts()
	registerInsertExtract()
	registerSets()
	registerBroadcasts()
	registerVariableShifts()
	registerMoves()
}

// unpack interleaves the low (lo=true) or high half of each 128-bit lane.
func unpack(bits, elemBytes int, lo bool) func(m *Machine, args []Value) (Value, error) {
	return func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		perLane := 16 / elemBytes // elements per 128-bit lane
		half := perLane / 2
		for lane := 0; lane < bits/128; lane++ {
			base := lane * perLane
			src := base
			if !lo {
				src = base + half
			}
			for i := 0; i < half; i++ {
				for k := 0; k < elemBytes; k++ {
					out.b[(base+2*i)*elemBytes+k] = a.b[(src+i)*elemBytes+k]
					out.b[(base+2*i+1)*elemBytes+k] = b.b[(src+i)*elemBytes+k]
				}
			}
		}
		return vecResult(out)
	}
}

func registerUnpacks() {
	type u struct {
		name  string
		bytes int
	}
	families := []u{{"epi8", 1}, {"epi16", 2}, {"epi32", 4}, {"epi64", 8}}
	for _, f := range families {
		register("_mm_unpacklo_"+f.name, unpack(128, f.bytes, true))
		register("_mm_unpackhi_"+f.name, unpack(128, f.bytes, false))
		register("_mm256_unpacklo_"+f.name, unpack(256, f.bytes, true))
		register("_mm256_unpackhi_"+f.name, unpack(256, f.bytes, false))
	}
	register("_mm_unpacklo_ps", unpack(128, 4, true))
	register("_mm_unpackhi_ps", unpack(128, 4, false))
	register("_mm256_unpacklo_ps", unpack(256, 4, true))
	register("_mm256_unpackhi_ps", unpack(256, 4, false))
	register("_mm_unpacklo_pd", unpack(128, 8, true))
	register("_mm_unpackhi_pd", unpack(128, 8, false))
	register("_mm256_unpacklo_pd", unpack(256, 8, true))
	register("_mm256_unpackhi_pd", unpack(256, 8, false))
	register("_mm_unpacklo_pi8", unpack(64, 1, true))
	register("_mm_unpackhi_pi8", unpack(64, 1, false))
}

func registerShuffles() {
	// _mm_shuffle_ps / _mm256_shuffle_ps: two lanes from a, two from b,
	// selected by imm8, per 128-bit lane.
	shufPS := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			imm := argInt(args, 2)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 4
				out.SetF32(o+0, a.F32(o+(imm>>0&3)))
				out.SetF32(o+1, a.F32(o+(imm>>2&3)))
				out.SetF32(o+2, b.F32(o+(imm>>4&3)))
				out.SetF32(o+3, b.F32(o+(imm>>6&3)))
			}
			return vecResult(out)
		}
	}
	register("_mm_shuffle_ps", shufPS(128))
	register("_mm256_shuffle_ps", shufPS(256))

	shufPD := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			imm := argInt(args, 2)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 2
				out.SetF64(o+0, a.F64(o+(imm>>(2*lane)&1)))
				out.SetF64(o+1, b.F64(o+(imm>>(2*lane+1)&1)))
			}
			return vecResult(out)
		}
	}
	register("_mm_shuffle_pd", shufPD(128))
	register("_mm256_shuffle_pd", shufPD(256))

	shufEpi32 := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			imm := argInt(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 4
				for i := 0; i < 4; i++ {
					out.SetI32(o+i, a.I32(o+(imm>>(2*i)&3)))
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_shuffle_epi32", shufEpi32(128))
	register("_mm256_shuffle_epi32", shufEpi32(256))

	shufHiLo := func(bits int, hi bool) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			imm := argInt(args, 1)
			out := a
			for lane := 0; lane < bits/128; lane++ {
				base := lane * 8
				off := base
				if hi {
					off = base + 4
				}
				var tmp [4]int16
				for i := 0; i < 4; i++ {
					tmp[i] = a.I16(off + (imm >> (2 * i) & 3))
				}
				for i := 0; i < 4; i++ {
					out.SetI16(off+i, tmp[i])
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_shufflehi_epi16", shufHiLo(128, true))
	register("_mm_shufflelo_epi16", shufHiLo(128, false))
	register("_mm256_shufflehi_epi16", shufHiLo(256, true))
	register("_mm256_shufflelo_epi16", shufHiLo(256, false))

	// pshufb: byte shuffle within each 128-bit lane, high bit zeroes.
	shufB := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 16
				for i := 0; i < 16; i++ {
					c := b.U8(o + i)
					if c&0x80 != 0 {
						out.SetU8(o+i, 0)
					} else {
						out.SetU8(o+i, a.U8(o+int(c&0x0F)))
					}
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_shuffle_epi8", shufB(128))
	register("_mm256_shuffle_epi8", shufB(256))

	// alignr: concatenate each 128-bit lane pair and shift right by imm
	// bytes.
	alignr := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			imm := argInt(args, 2)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 16
				var concat [32]byte
				copy(concat[:16], b.b[o:o+16])
				copy(concat[16:], a.b[o:o+16])
				for i := 0; i < 16; i++ {
					idx := i + imm
					if idx < 32 {
						out.b[o+i] = concat[idx]
					}
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_alignr_epi8", alignr(128))
	register("_mm256_alignr_epi8", alignr(256))
}

func registerPermutes() {
	// permute2f128 / permute2x128: select 128-bit halves of a:b by imm.
	perm2 := func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		imm := argInt(args, 2)
		var out Vec
		sel := func(ctrl int) []byte {
			if ctrl&8 != 0 { // zero flag
				return make([]byte, 16)
			}
			switch ctrl & 3 {
			case 0:
				return a.b[0:16]
			case 1:
				return a.b[16:32]
			case 2:
				return b.b[0:16]
			default:
				return b.b[16:32]
			}
		}
		copy(out.b[0:16], sel(imm&0xF))
		copy(out.b[16:32], sel(imm>>4&0xF))
		return vecResult(out)
	}
	register("_mm256_permute2f128_ps", perm2)
	register("_mm256_permute2f128_pd", perm2)
	register("_mm256_permute2f128_si256", perm2)
	register("_mm256_permute2x128_si256", perm2)

	// permute_ps: in-lane permute by imm (like shuffle_epi32 on floats).
	register("_mm256_permute_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		imm := argInt(args, 1)
		var out Vec
		for lane := 0; lane < 2; lane++ {
			o := lane * 4
			for i := 0; i < 4; i++ {
				out.SetF32(o+i, a.F32(o+(imm>>(2*i)&3)))
			}
		}
		return vecResult(out)
	})
	register("_mm256_permute_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		imm := argInt(args, 1)
		var out Vec
		for lane := 0; lane < 2; lane++ {
			o := lane * 2
			out.SetF64(o+0, a.F64(o+(imm>>(2*lane)&1)))
			out.SetF64(o+1, a.F64(o+(imm>>(2*lane+1)&1)))
		}
		return vecResult(out)
	})
	register("_mm256_permutevar_ps", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for lane := 0; lane < 2; lane++ {
			o := lane * 4
			for i := 0; i < 4; i++ {
				out.SetF32(o+i, a.F32(o+int(b.U32(o+i)&3)))
			}
		}
		return vecResult(out)
	})
	register("_mm256_permutevar_pd", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		for lane := 0; lane < 2; lane++ {
			o := lane * 2
			for i := 0; i < 2; i++ {
				out.SetF64(o+i, a.F64(o+int(b.U64(o+i)>>1&1)))
			}
		}
		return vecResult(out)
	})
	register("_mm256_permute4x64_epi64", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		imm := argInt(args, 1)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetI64(i, a.I64(imm>>(2*i)&3))
		}
		return vecResult(out)
	})
	register("_mm256_permute4x64_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		imm := argInt(args, 1)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF64(i, a.F64(imm>>(2*i)&3))
		}
		return vecResult(out)
	})
	permVar8x32 := func(m *Machine, args []Value) (Value, error) {
		a, idx := argVec(args, 0), argVec(args, 1)
		var out Vec
		for i := 0; i < 8; i++ {
			out.SetU32(i, a.U32(int(idx.U32(i)&7)))
		}
		return vecResult(out)
	}
	register("_mm256_permutevar8x32_epi32", permVar8x32)
	register("_mm256_permutevar8x32_ps", permVar8x32)
}

func registerBlends() {
	blendImm := func(bits, elemBytes int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			imm := argInt(args, 2)
			out := a
			n := bits / (8 * elemBytes)
			for i := 0; i < n; i++ {
				// 16-bit blends repeat the immediate per 128-bit lane.
				bit := i
				if elemBytes == 2 {
					bit = i % 8
				}
				if imm>>(bit)&1 == 1 {
					for k := 0; k < elemBytes; k++ {
						out.b[i*elemBytes+k] = b.b[i*elemBytes+k]
					}
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_blend_ps", blendImm(128, 4))
	register("_mm_blend_pd", blendImm(128, 8))
	register("_mm256_blend_ps", blendImm(256, 4))
	register("_mm256_blend_pd", blendImm(256, 8))
	register("_mm256_blend_epi16", blendImm(256, 2))
	register("_mm256_blend_epi32", blendImm(256, 4))

	blendvByte := func(bits, elemBytes int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b, mask := argVec(args, 0), argVec(args, 1), argVec(args, 2)
			out := a
			n := bits / (8 * elemBytes)
			for i := 0; i < n; i++ {
				// Select on the sign bit of the mask element.
				if mask.b[(i+1)*elemBytes-1]&0x80 != 0 {
					for k := 0; k < elemBytes; k++ {
						out.b[i*elemBytes+k] = b.b[i*elemBytes+k]
					}
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_blendv_ps", blendvByte(128, 4))
	register("_mm_blendv_pd", blendvByte(128, 8))
	register("_mm_blendv_epi8", blendvByte(128, 1))
	register("_mm256_blendv_ps", blendvByte(256, 4))
	register("_mm256_blendv_pd", blendvByte(256, 8))
	register("_mm256_blendv_epi8", blendvByte(256, 1))
}

func registerByteShifts() {
	byteShift := func(bits int, left bool) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			imm := argInt(args, 1)
			var out Vec
			if imm > 15 {
				return vecResult(out)
			}
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 16
				for i := 0; i < 16; i++ {
					var src int
					if left {
						src = i - imm
					} else {
						src = i + imm
					}
					if src >= 0 && src < 16 {
						out.b[o+i] = a.b[o+src]
					}
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_slli_si128", byteShift(128, true))
	register("_mm_srli_si128", byteShift(128, false))
	register("_mm256_bslli_epi128", byteShift(256, true))
	register("_mm256_bsrli_epi128", byteShift(256, false))
}

func registerInsertExtract() {
	register("_mm256_extractf128_ps", extract128)
	register("_mm256_extractf128_pd", extract128)
	register("_mm256_extractf128_si256", extract128)
	register("_mm256_insertf128_ps", insert128)
	register("_mm256_insertf128_pd", insert128)
	register("_mm256_insertf128_si256", insert128)
	register("_mm_extract_epi32", func(m *Machine, args []Value) (Value, error) {
		return IntValue(int(args[0].V.I32(argInt(args, 1) & 3))), nil
	})
	register("_mm_extract_epi8", func(m *Machine, args []Value) (Value, error) {
		return IntValue(int(args[0].V.U8(argInt(args, 1) & 15))), nil
	})
	register("_mm_insert_epi32", func(m *Machine, args []Value) (Value, error) {
		out := argVec(args, 0)
		out.SetI32(argInt(args, 2)&3, int32(args[1].AsInt()))
		return vecResult(out)
	})
	register("_mm_minpos_epu16", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		minv, mini := a.U16(0), 0
		for i := 1; i < 8; i++ {
			if a.U16(i) < minv {
				minv, mini = a.U16(i), i
			}
		}
		var out Vec
		out.SetU16(0, minv)
		out.SetU16(1, uint16(mini))
		return vecResult(out)
	})
}

func extract128(m *Machine, args []Value) (Value, error) {
	a := argVec(args, 0)
	imm := argInt(args, 1)
	var out Vec
	if imm&1 == 1 {
		copy(out.b[:16], a.b[16:32])
	} else {
		copy(out.b[:16], a.b[:16])
	}
	return vecResult(out)
}

func insert128(m *Machine, args []Value) (Value, error) {
	out := argVec(args, 0)
	b := argVec(args, 1)
	if argInt(args, 2)&1 == 1 {
		copy(out.b[16:32], b.b[:16])
	} else {
		copy(out.b[:16], b.b[:16])
	}
	return vecResult(out)
}

func registerSets() {
	setzero := func(m *Machine, args []Value) (Value, error) { return vecResult(Vec{}) }
	for _, n := range []string{
		"_mm_setzero_ps", "_mm_setzero_pd", "_mm_setzero_si128", "_mm_setzero_si64",
		"_mm256_setzero_ps", "_mm256_setzero_pd", "_mm256_setzero_si256",
		"_mm512_setzero_ps", "_mm512_setzero_pd", "_mm512_setzero_si512",
	} {
		register(n, setzero)
	}

	set1F32 := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			x := float32(args[0].AsFloat())
			var out Vec
			for i := 0; i < bits/32; i++ {
				out.SetF32(i, x)
			}
			return vecResult(out)
		}
	}
	set1F64 := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			x := args[0].AsFloat()
			var out Vec
			for i := 0; i < bits/64; i++ {
				out.SetF64(i, x)
			}
			return vecResult(out)
		}
	}
	set1Int := func(bits, elemBits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			x := args[0].AsInt()
			var out Vec
			for i := 0; i < bits/elemBits; i++ {
				switch elemBits {
				case 8:
					out.SetI8(i, int8(x))
				case 16:
					out.SetI16(i, int16(x))
				case 32:
					out.SetI32(i, int32(x))
				default:
					out.SetI64(i, x)
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_set1_ps", set1F32(128))
	register("_mm256_set1_ps", set1F32(256))
	register("_mm512_set1_ps", set1F32(512))
	register("_mm_set1_pd", set1F64(128))
	register("_mm256_set1_pd", set1F64(256))
	register("_mm512_set1_pd", set1F64(512))
	register("_mm_set1_epi8", set1Int(128, 8))
	register("_mm_set1_epi16", set1Int(128, 16))
	register("_mm_set1_epi32", set1Int(128, 32))
	register("_mm_set1_epi64x", set1Int(128, 64))
	register("_mm256_set1_epi8", set1Int(256, 8))
	register("_mm256_set1_epi16", set1Int(256, 16))
	register("_mm256_set1_epi32", set1Int(256, 32))
	register("_mm256_set1_epi64x", set1Int(256, 64))
	register("_mm_set1_pi8", set1Int(64, 8))
	register("_mm_set1_pi16", set1Int(64, 16))
	register("_mm_set1_pi32", set1Int(64, 32))

	// set_ps takes arguments high-lane first (Intel convention).
	register("_mm_set_ps", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF32(3-i, float32(args[i].AsFloat()))
		}
		return vecResult(out)
	})
	register("_mm256_set_ps", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		for i := 0; i < 8; i++ {
			out.SetF32(7-i, float32(args[i].AsFloat()))
		}
		return vecResult(out)
	})
	register("_mm_set_pd", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		out.SetF64(1, args[0].AsFloat())
		out.SetF64(0, args[1].AsFloat())
		return vecResult(out)
	})
	register("_mm256_set_pd", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF64(3-i, args[i].AsFloat())
		}
		return vecResult(out)
	})
	register("_mm_set_ss", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		out.SetF32(0, float32(args[0].AsFloat()))
		return vecResult(out)
	})
}

func registerBroadcasts() {
	register("_mm256_broadcastss_ps", func(m *Machine, args []Value) (Value, error) {
		x := args[0].V.F32(0)
		var out Vec
		for i := 0; i < 8; i++ {
			out.SetF32(i, x)
		}
		return vecResult(out)
	})
	register("_mm256_broadcastsi128_si256", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		copy(out.b[:16], a.b[:16])
		copy(out.b[16:32], a.b[:16])
		return vecResult(out)
	})
	bcastInt := func(elemBits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			var out Vec
			for i := 0; i < 256/elemBits; i++ {
				switch elemBits {
				case 8:
					out.SetI8(i, a.I8(0))
				case 16:
					out.SetI16(i, a.I16(0))
				default:
					out.SetI32(i, a.I32(0))
				}
			}
			return vecResult(out)
		}
	}
	register("_mm256_broadcastb_epi8", bcastInt(8))
	register("_mm256_broadcastw_epi16", bcastInt(16))
	register("_mm256_broadcastd_epi32", bcastInt(32))
}

func registerVariableShifts() {
	register("_mm256_sllv_epi32", func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU32(256, argVec(args, 0), argVec(args, 1),
			func(x, c uint32) uint32 {
				if c > 31 {
					return 0
				}
				return x << c
			}))
	})
	register("_mm256_srlv_epi32", func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU32(256, argVec(args, 0), argVec(args, 1),
			func(x, c uint32) uint32 {
				if c > 31 {
					return 0
				}
				return x >> c
			}))
	})
	register("_mm256_srav_epi32", func(m *Machine, args []Value) (Value, error) {
		a, c := argVec(args, 0), argVec(args, 1)
		var out Vec
		for i := 0; i < 8; i++ {
			sh := c.U32(i)
			if sh > 31 {
				sh = 31
			}
			out.SetI32(i, a.I32(i)>>sh)
		}
		return vecResult(out)
	})
	register("_mm256_sllv_epi64", func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU64(256, argVec(args, 0), argVec(args, 1),
			func(x, c uint64) uint64 {
				if c > 63 {
					return 0
				}
				return x << c
			}))
	})
	register("_mm256_srlv_epi64", func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapU64(256, argVec(args, 0), argVec(args, 1),
			func(x, c uint64) uint64 {
				if c > 63 {
					return 0
				}
				return x >> c
			}))
	})
	register("_mm512_rol_epi32", func(m *Machine, args []Value) (Value, error) {
		imm := uint(argInt(args, 1)) & 31
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 16; i++ {
			x := a.U32(i)
			out.SetU32(i, x<<imm|x>>(32-imm))
		}
		return vecResult(out)
	})
}

func registerMoves() {
	register("_mm_movehl_ps", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		out.SetF32(0, b.F32(2))
		out.SetF32(1, b.F32(3))
		out.SetF32(2, a.F32(2))
		out.SetF32(3, a.F32(3))
		return vecResult(out)
	})
	register("_mm_movelh_ps", func(m *Machine, args []Value) (Value, error) {
		a, b := argVec(args, 0), argVec(args, 1)
		var out Vec
		out.SetF32(0, a.F32(0))
		out.SetF32(1, a.F32(1))
		out.SetF32(2, b.F32(0))
		out.SetF32(3, b.F32(1))
		return vecResult(out)
	})
	register("_mm_movehdup_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 2; i++ {
			out.SetF32(2*i, a.F32(2*i+1))
			out.SetF32(2*i+1, a.F32(2*i+1))
		}
		return vecResult(out)
	})
	register("_mm_moveldup_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 2; i++ {
			out.SetF32(2*i, a.F32(2*i))
			out.SetF32(2*i+1, a.F32(2*i))
		}
		return vecResult(out)
	})
	register("_mm_movedup_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		out.SetF64(0, a.F64(0))
		out.SetF64(1, a.F64(0))
		return vecResult(out)
	})
}
