package vm

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// TestIntoRegistryIsSubset: every destination-passing fast path must
// shadow a registered intrinsic of the same name — a FnInto without an
// Fn would be unreachable and, worse, untestable against a reference.
func TestIntoRegistryIsSubset(t *testing.T) {
	if IntoCount() == 0 {
		t.Fatal("no destination-passing intrinsics registered")
	}
	for _, name := range IntoNames() {
		in, ok := Lookup(name)
		if !ok {
			t.Errorf("%s: FnInto registered but no Fn", name)
			continue
		}
		if in.FnInto == nil {
			t.Errorf("%s: Lookup did not attach the registered FnInto", name)
		}
	}
}

// intoArgs builds one deterministic argument list for a fast-path
// intrinsic from its name shape: fused-multiply-adds take three
// registers, loads a pointer, stores a pointer plus a register,
// everything else two registers.
func intoArgs(name string, seed byte) ([]Value, *Buffer) {
	vec := func(k byte) Value {
		var p [64]byte
		for i := range p {
			p[i] = byte(i)*7 + k + seed
		}
		return VecValue(VecFromBytes(p[:]))
	}
	switch {
	case strings.Contains(name, "store"):
		b := NewBuffer(isa.PrimU8, 128)
		return []Value{PtrValue(b, 0), vec(3)}, b
	case strings.Contains(name, "load"), strings.Contains(name, "lddqu"):
		b := NewBuffer(isa.PrimU8, 128)
		for i := range b.Data {
			b.Data[i] = byte(i)*5 + seed
		}
		return []Value{PtrValue(b, 0)}, b
	case strings.Contains(name, "fmadd"):
		return []Value{vec(1), vec(2), vec(3)}, nil
	default:
		return []Value{vec(1), vec(2)}, nil
	}
}

// sameResult compares Values bitwise (NaN-tolerant on the scalar float
// field; registers are byte arrays and compare exactly).
func sameResult(a, b Value) bool {
	af, bf := a, b
	af.F, bf.F = 0, 0
	af.Mem, bf.Mem = nil, nil
	return af == bf && math.Float64bits(a.F) == math.Float64bits(b.F) &&
		(a.Mem == nil) == (b.Mem == nil)
}

// TestIntoOpsMatchReference runs every destination-passing intrinsic
// against its allocating reference implementation on identical inputs:
// same result Value, same memory effects, same counter stream.
func TestIntoOpsMatchReference(t *testing.T) {
	for _, name := range IntoNames() {
		t.Run(name, func(t *testing.T) {
			in, ok := Lookup(name)
			if !ok || in.FnInto == nil {
				t.Fatalf("%s not fully registered", name)
			}
			for seed := byte(0); seed < 3; seed++ {
				argsA, bufA := intoArgs(name, seed)
				argsB, bufB := intoArgs(name, seed)
				mA := NewMachine(isa.SkylakeX)
				mB := NewMachine(isa.SkylakeX)
				want, errA := in.Fn(mA, argsA)
				// Poison the destination: FnInto must fully overwrite it
				// for value-producing ops and leave it untouched for void
				// ones.
				got := Value{Kind: ir.KindI32, I: -1}
				poison := got
				errB := in.FnInto(mB, argsB, &got)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("seed %d: errors diverge: Fn=%v FnInto=%v", seed, errA, errB)
				}
				if errA != nil {
					continue
				}
				if want.Kind == ir.KindVoid {
					if got != poison {
						t.Fatalf("seed %d: void op wrote to out: %+v", seed, got)
					}
				} else if !sameResult(want, got) {
					t.Fatalf("seed %d: results diverge:\nFn:     %+v\nFnInto: %+v",
						seed, want, got)
				}
				if bufA != nil && !bytes.Equal(bufA.Data, bufB.Data) {
					t.Fatalf("seed %d: memory effects diverge", seed)
				}
				if len(mA.Counts) != len(mB.Counts) {
					t.Fatalf("seed %d: counter sets differ: %v vs %v",
						seed, mA.Counts, mB.Counts)
				}
				for k, v := range mA.Counts {
					if mB.Counts[k] != v {
						t.Fatalf("seed %d: counter %q: Fn=%d FnInto=%d",
							seed, k, v, mB.Counts[k])
					}
				}
			}
		})
	}
}

// TestVecBytesBounds locks in the typed bounds error on register reads.
func TestVecBytesBounds(t *testing.T) {
	var v Vec
	if _, err := v.Bytes(64); err != nil {
		t.Errorf("64 bytes is the full register, want success: %v", err)
	}
	for _, n := range []int{-1, 65, 1 << 20} {
		_, err := v.Bytes(n)
		re, ok := err.(*RangeError)
		if !ok {
			t.Fatalf("Bytes(%d): want *RangeError, got %v", n, err)
		}
		if re.N != n || re.Cap != 64 {
			t.Errorf("Bytes(%d): error carries %+v", n, re)
		}
	}
	if _, err := VecFromBytesErr(make([]byte, 65)); err == nil {
		t.Error("VecFromBytesErr must reject 65 bytes")
	}
	if _, err := VecFromBytesErr(make([]byte, 64)); err != nil {
		t.Errorf("VecFromBytesErr must accept 64 bytes: %v", err)
	}
}

// FuzzIntoOpsAgree cross-checks the destination-passing fast paths
// against the allocating reference on fuzzer-chosen register contents.
func FuzzIntoOpsAgree(f *testing.F) {
	names := IntoNames()
	f.Add(uint16(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint16(7), bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, pick uint16, raw []byte) {
		name := names[int(pick)%len(names)]
		in, _ := Lookup(name)
		if in.FnInto == nil {
			t.Skip()
		}
		var p [64]byte
		copy(p[:], raw)
		vec := func(rot int) Value {
			var q [64]byte
			for i := range q {
				q[i] = p[(i+rot)%64]
			}
			return VecValue(VecFromBytes(q[:]))
		}
		build := func() ([]Value, *Buffer) {
			switch {
			case strings.Contains(name, "store"):
				b := NewBuffer(isa.PrimU8, 128)
				return []Value{PtrValue(b, 0), vec(1)}, b
			case strings.Contains(name, "load"), strings.Contains(name, "lddqu"):
				b := NewBuffer(isa.PrimU8, 128)
				for i := range b.Data {
					b.Data[i] = p[i%64]
				}
				return []Value{PtrValue(b, 0)}, b
			case strings.Contains(name, "fmadd"):
				return []Value{vec(0), vec(1), vec(2)}, nil
			default:
				return []Value{vec(0), vec(1)}, nil
			}
		}
		argsA, bufA := build()
		argsB, bufB := build()
		mA, mB := NewMachine(isa.SkylakeX), NewMachine(isa.SkylakeX)
		want, errA := in.Fn(mA, argsA)
		var got Value
		errB := in.FnInto(mB, argsB, &got)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: errors diverge: %v vs %v", name, errA, errB)
		}
		if errA != nil {
			return
		}
		if want.Kind != ir.KindVoid && !sameResult(want, got) {
			t.Fatalf("%s: results diverge:\nFn:     %+v\nFnInto: %+v", name, want, got)
		}
		if bufA != nil && !bytes.Equal(bufA.Data, bufB.Data) {
			t.Fatalf("%s: memory effects diverge", name)
		}
	})
}
