package vm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vec is one SIMD register value. The array always holds 64 bytes; the
// register's logical width (64/128/256/512 bits) is a property of the
// value's type, not of the storage. Lanes are little-endian, matching
// x86.
type Vec struct {
	b [64]byte
}

// Bytes returns a copy of the first n bytes of the register.
func (v Vec) Bytes(n int) []byte {
	out := make([]byte, n)
	copy(out, v.b[:n])
	return out
}

// SetBytes fills the register from raw bytes (upper bytes zeroed).
func VecFromBytes(p []byte) Vec {
	var v Vec
	copy(v.b[:], p)
	return v
}

// --- 32-bit float lanes ----------------------------------------------------

// F32 returns lane i viewed as float32.
func (v Vec) F32(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v.b[i*4:]))
}

// SetF32 stores a float32 into lane i.
func (v *Vec) SetF32(i int, x float32) {
	binary.LittleEndian.PutUint32(v.b[i*4:], math.Float32bits(x))
}

// --- 64-bit float lanes ----------------------------------------------------

// F64 returns lane i viewed as float64.
func (v Vec) F64(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.b[i*8:]))
}

// SetF64 stores a float64 into lane i.
func (v *Vec) SetF64(i int, x float64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], math.Float64bits(x))
}

// --- integer lanes -----------------------------------------------------------

// I8 returns lane i viewed as int8.
func (v Vec) I8(i int) int8 { return int8(v.b[i]) }

// SetI8 stores an int8 into lane i.
func (v *Vec) SetI8(i int, x int8) { v.b[i] = byte(x) }

// U8 returns lane i viewed as uint8.
func (v Vec) U8(i int) uint8 { return v.b[i] }

// SetU8 stores a uint8 into lane i.
func (v *Vec) SetU8(i int, x uint8) { v.b[i] = x }

// I16 returns lane i viewed as int16.
func (v Vec) I16(i int) int16 {
	return int16(binary.LittleEndian.Uint16(v.b[i*2:]))
}

// SetI16 stores an int16 into lane i.
func (v *Vec) SetI16(i int, x int16) {
	binary.LittleEndian.PutUint16(v.b[i*2:], uint16(x))
}

// U16 returns lane i viewed as uint16.
func (v Vec) U16(i int) uint16 { return binary.LittleEndian.Uint16(v.b[i*2:]) }

// SetU16 stores a uint16 into lane i.
func (v *Vec) SetU16(i int, x uint16) {
	binary.LittleEndian.PutUint16(v.b[i*2:], x)
}

// I32 returns lane i viewed as int32.
func (v Vec) I32(i int) int32 {
	return int32(binary.LittleEndian.Uint32(v.b[i*4:]))
}

// SetI32 stores an int32 into lane i.
func (v *Vec) SetI32(i int, x int32) {
	binary.LittleEndian.PutUint32(v.b[i*4:], uint32(x))
}

// U32 returns lane i viewed as uint32.
func (v Vec) U32(i int) uint32 { return binary.LittleEndian.Uint32(v.b[i*4:]) }

// SetU32 stores a uint32 into lane i.
func (v *Vec) SetU32(i int, x uint32) {
	binary.LittleEndian.PutUint32(v.b[i*4:], x)
}

// I64 returns lane i viewed as int64.
func (v Vec) I64(i int) int64 {
	return int64(binary.LittleEndian.Uint64(v.b[i*8:]))
}

// SetI64 stores an int64 into lane i.
func (v *Vec) SetI64(i int, x int64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], uint64(x))
}

// U64 returns lane i viewed as uint64.
func (v Vec) U64(i int) uint64 { return binary.LittleEndian.Uint64(v.b[i*8:]) }

// SetU64 stores a uint64 into lane i.
func (v *Vec) SetU64(i int, x uint64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], x)
}

// String formats the low 256 bits as hex, low byte first.
func (v Vec) String() string {
	return fmt.Sprintf("%x", v.b[:32])
}

// --- lanewise combinators ----------------------------------------------------

func mapF32(bits int, a, b Vec, f func(x, y float32) float32) Vec {
	var out Vec
	for i := 0; i < bits/32; i++ {
		out.SetF32(i, f(a.F32(i), b.F32(i)))
	}
	return out
}

func map1F32(bits int, a Vec, f func(x float32) float32) Vec {
	var out Vec
	for i := 0; i < bits/32; i++ {
		out.SetF32(i, f(a.F32(i)))
	}
	return out
}

func mapF64(bits int, a, b Vec, f func(x, y float64) float64) Vec {
	var out Vec
	for i := 0; i < bits/64; i++ {
		out.SetF64(i, f(a.F64(i), b.F64(i)))
	}
	return out
}

func map1F64(bits int, a Vec, f func(x float64) float64) Vec {
	var out Vec
	for i := 0; i < bits/64; i++ {
		out.SetF64(i, f(a.F64(i)))
	}
	return out
}

func mapI8(bits int, a, b Vec, f func(x, y int8) int8) Vec {
	var out Vec
	for i := 0; i < bits/8; i++ {
		out.SetI8(i, f(a.I8(i), b.I8(i)))
	}
	return out
}

func mapU8(bits int, a, b Vec, f func(x, y uint8) uint8) Vec {
	var out Vec
	for i := 0; i < bits/8; i++ {
		out.SetU8(i, f(a.U8(i), b.U8(i)))
	}
	return out
}

func mapI16(bits int, a, b Vec, f func(x, y int16) int16) Vec {
	var out Vec
	for i := 0; i < bits/16; i++ {
		out.SetI16(i, f(a.I16(i), b.I16(i)))
	}
	return out
}

func mapU16(bits int, a, b Vec, f func(x, y uint16) uint16) Vec {
	var out Vec
	for i := 0; i < bits/16; i++ {
		out.SetU16(i, f(a.U16(i), b.U16(i)))
	}
	return out
}

func mapI32(bits int, a, b Vec, f func(x, y int32) int32) Vec {
	var out Vec
	for i := 0; i < bits/32; i++ {
		out.SetI32(i, f(a.I32(i), b.I32(i)))
	}
	return out
}

func mapU32(bits int, a, b Vec, f func(x, y uint32) uint32) Vec {
	var out Vec
	for i := 0; i < bits/32; i++ {
		out.SetU32(i, f(a.U32(i), b.U32(i)))
	}
	return out
}

func mapI64(bits int, a, b Vec, f func(x, y int64) int64) Vec {
	var out Vec
	for i := 0; i < bits/64; i++ {
		out.SetI64(i, f(a.I64(i), b.I64(i)))
	}
	return out
}

func mapU64(bits int, a, b Vec, f func(x, y uint64) uint64) Vec {
	var out Vec
	for i := 0; i < bits/64; i++ {
		out.SetU64(i, f(a.U64(i), b.U64(i)))
	}
	return out
}

// bitwise applies f to the register byte-by-byte (logical ops are width-
// and element-type-agnostic).
func bitwise(bits int, a, b Vec, f func(x, y byte) byte) Vec {
	var out Vec
	for i := 0; i < bits/8; i++ {
		out.b[i] = f(a.b[i], b.b[i])
	}
	return out
}

// saturation helpers.

func satI8(v int) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func satI16(v int) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

func satU8(v int) uint8 {
	if v > 255 {
		return 255
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}

func satU16(v int) uint16 {
	if v > 65535 {
		return 65535
	}
	if v < 0 {
		return 0
	}
	return uint16(v)
}
