package vm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vec is one SIMD register value. The array always holds 64 bytes; the
// register's logical width (64/128/256/512 bits) is a property of the
// value's type, not of the storage. Lanes are little-endian, matching
// x86.
type Vec struct {
	b [64]byte
}

// RangeError reports a byte count that does not fit the 64-byte
// register storage. It is a typed error so sweeps can distinguish a
// malformed width from a genuine interpreter fault.
type RangeError struct {
	N   int // requested byte count
	Cap int // register capacity in bytes
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("vm: %d bytes out of range for a %d-byte register", e.N, e.Cap)
}

// Bytes returns a copy of the first n bytes of the register, or a
// *RangeError when n is negative or exceeds the 64-byte storage.
func (v Vec) Bytes(n int) ([]byte, error) {
	if n < 0 || n > len(v.b) {
		return nil, &RangeError{N: n, Cap: len(v.b)}
	}
	out := make([]byte, n)
	copy(out, v.b[:n])
	return out, nil
}

// VecFromBytes fills the register from raw bytes (upper bytes zeroed).
// Slices longer than the 64-byte storage are silently truncated; use
// VecFromBytesErr to surface that as an error.
func VecFromBytes(p []byte) Vec {
	var v Vec
	copy(v.b[:], p)
	return v
}

// VecFromBytesErr is VecFromBytes with a *RangeError instead of silent
// truncation when the slice exceeds the register storage.
func VecFromBytesErr(p []byte) (Vec, error) {
	var v Vec
	if len(p) > len(v.b) {
		return Vec{}, &RangeError{N: len(p), Cap: len(v.b)}
	}
	copy(v.b[:], p)
	return v, nil
}

// --- 32-bit float lanes ----------------------------------------------------

// F32 returns lane i viewed as float32.
func (v Vec) F32(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v.b[i*4:]))
}

// SetF32 stores a float32 into lane i.
func (v *Vec) SetF32(i int, x float32) {
	binary.LittleEndian.PutUint32(v.b[i*4:], math.Float32bits(x))
}

// --- 64-bit float lanes ----------------------------------------------------

// F64 returns lane i viewed as float64.
func (v Vec) F64(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.b[i*8:]))
}

// SetF64 stores a float64 into lane i.
func (v *Vec) SetF64(i int, x float64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], math.Float64bits(x))
}

// --- integer lanes -----------------------------------------------------------

// I8 returns lane i viewed as int8.
func (v Vec) I8(i int) int8 { return int8(v.b[i]) }

// SetI8 stores an int8 into lane i.
func (v *Vec) SetI8(i int, x int8) { v.b[i] = byte(x) }

// U8 returns lane i viewed as uint8.
func (v Vec) U8(i int) uint8 { return v.b[i] }

// SetU8 stores a uint8 into lane i.
func (v *Vec) SetU8(i int, x uint8) { v.b[i] = x }

// I16 returns lane i viewed as int16.
func (v Vec) I16(i int) int16 {
	return int16(binary.LittleEndian.Uint16(v.b[i*2:]))
}

// SetI16 stores an int16 into lane i.
func (v *Vec) SetI16(i int, x int16) {
	binary.LittleEndian.PutUint16(v.b[i*2:], uint16(x))
}

// U16 returns lane i viewed as uint16.
func (v Vec) U16(i int) uint16 { return binary.LittleEndian.Uint16(v.b[i*2:]) }

// SetU16 stores a uint16 into lane i.
func (v *Vec) SetU16(i int, x uint16) {
	binary.LittleEndian.PutUint16(v.b[i*2:], x)
}

// I32 returns lane i viewed as int32.
func (v Vec) I32(i int) int32 {
	return int32(binary.LittleEndian.Uint32(v.b[i*4:]))
}

// SetI32 stores an int32 into lane i.
func (v *Vec) SetI32(i int, x int32) {
	binary.LittleEndian.PutUint32(v.b[i*4:], uint32(x))
}

// U32 returns lane i viewed as uint32.
func (v Vec) U32(i int) uint32 { return binary.LittleEndian.Uint32(v.b[i*4:]) }

// SetU32 stores a uint32 into lane i.
func (v *Vec) SetU32(i int, x uint32) {
	binary.LittleEndian.PutUint32(v.b[i*4:], x)
}

// I64 returns lane i viewed as int64.
func (v Vec) I64(i int) int64 {
	return int64(binary.LittleEndian.Uint64(v.b[i*8:]))
}

// SetI64 stores an int64 into lane i.
func (v *Vec) SetI64(i int, x int64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], uint64(x))
}

// U64 returns lane i viewed as uint64.
func (v Vec) U64(i int) uint64 { return binary.LittleEndian.Uint64(v.b[i*8:]) }

// SetU64 stores a uint64 into lane i.
func (v *Vec) SetU64(i int, x uint64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], x)
}

// String formats the low 256 bits as hex, low byte first.
func (v Vec) String() string {
	return fmt.Sprintf("%x", v.b[:32])
}

// --- lanewise combinators ----------------------------------------------------
//
// Each family has an in-place variant (xxxInto) that writes lanes into a
// caller-provided register, and an allocating wrapper kept for the
// registration tables. out may alias a or b: every lane is fully read
// before it is written.

func mapF32Into(bits int, a, b Vec, out *Vec, f func(x, y float32) float32) {
	for i := 0; i < bits/32; i++ {
		out.SetF32(i, f(a.F32(i), b.F32(i)))
	}
}

func mapF32(bits int, a, b Vec, f func(x, y float32) float32) Vec {
	var out Vec
	mapF32Into(bits, a, b, &out, f)
	return out
}

func map1F32Into(bits int, a Vec, out *Vec, f func(x float32) float32) {
	for i := 0; i < bits/32; i++ {
		out.SetF32(i, f(a.F32(i)))
	}
}

func map1F32(bits int, a Vec, f func(x float32) float32) Vec {
	var out Vec
	map1F32Into(bits, a, &out, f)
	return out
}

func mapF64Into(bits int, a, b Vec, out *Vec, f func(x, y float64) float64) {
	for i := 0; i < bits/64; i++ {
		out.SetF64(i, f(a.F64(i), b.F64(i)))
	}
}

func mapF64(bits int, a, b Vec, f func(x, y float64) float64) Vec {
	var out Vec
	mapF64Into(bits, a, b, &out, f)
	return out
}

func map1F64Into(bits int, a Vec, out *Vec, f func(x float64) float64) {
	for i := 0; i < bits/64; i++ {
		out.SetF64(i, f(a.F64(i)))
	}
}

func map1F64(bits int, a Vec, f func(x float64) float64) Vec {
	var out Vec
	map1F64Into(bits, a, &out, f)
	return out
}

func mapI8Into(bits int, a, b Vec, out *Vec, f func(x, y int8) int8) {
	for i := 0; i < bits/8; i++ {
		out.SetI8(i, f(a.I8(i), b.I8(i)))
	}
}

func mapI8(bits int, a, b Vec, f func(x, y int8) int8) Vec {
	var out Vec
	mapI8Into(bits, a, b, &out, f)
	return out
}

func mapU8Into(bits int, a, b Vec, out *Vec, f func(x, y uint8) uint8) {
	for i := 0; i < bits/8; i++ {
		out.SetU8(i, f(a.U8(i), b.U8(i)))
	}
}

func mapU8(bits int, a, b Vec, f func(x, y uint8) uint8) Vec {
	var out Vec
	mapU8Into(bits, a, b, &out, f)
	return out
}

func mapI16Into(bits int, a, b Vec, out *Vec, f func(x, y int16) int16) {
	for i := 0; i < bits/16; i++ {
		out.SetI16(i, f(a.I16(i), b.I16(i)))
	}
}

func mapI16(bits int, a, b Vec, f func(x, y int16) int16) Vec {
	var out Vec
	mapI16Into(bits, a, b, &out, f)
	return out
}

func mapU16Into(bits int, a, b Vec, out *Vec, f func(x, y uint16) uint16) {
	for i := 0; i < bits/16; i++ {
		out.SetU16(i, f(a.U16(i), b.U16(i)))
	}
}

func mapU16(bits int, a, b Vec, f func(x, y uint16) uint16) Vec {
	var out Vec
	mapU16Into(bits, a, b, &out, f)
	return out
}

func mapI32Into(bits int, a, b Vec, out *Vec, f func(x, y int32) int32) {
	for i := 0; i < bits/32; i++ {
		out.SetI32(i, f(a.I32(i), b.I32(i)))
	}
}

func mapI32(bits int, a, b Vec, f func(x, y int32) int32) Vec {
	var out Vec
	mapI32Into(bits, a, b, &out, f)
	return out
}

func mapU32Into(bits int, a, b Vec, out *Vec, f func(x, y uint32) uint32) {
	for i := 0; i < bits/32; i++ {
		out.SetU32(i, f(a.U32(i), b.U32(i)))
	}
}

func mapU32(bits int, a, b Vec, f func(x, y uint32) uint32) Vec {
	var out Vec
	mapU32Into(bits, a, b, &out, f)
	return out
}

func mapI64Into(bits int, a, b Vec, out *Vec, f func(x, y int64) int64) {
	for i := 0; i < bits/64; i++ {
		out.SetI64(i, f(a.I64(i), b.I64(i)))
	}
}

func mapI64(bits int, a, b Vec, f func(x, y int64) int64) Vec {
	var out Vec
	mapI64Into(bits, a, b, &out, f)
	return out
}

func mapU64Into(bits int, a, b Vec, out *Vec, f func(x, y uint64) uint64) {
	for i := 0; i < bits/64; i++ {
		out.SetU64(i, f(a.U64(i), b.U64(i)))
	}
}

func mapU64(bits int, a, b Vec, f func(x, y uint64) uint64) Vec {
	var out Vec
	mapU64Into(bits, a, b, &out, f)
	return out
}

// bitwiseInto applies f to the register byte-by-byte (logical ops are
// width- and element-type-agnostic), writing into out.
func bitwiseInto(bits int, a, b Vec, out *Vec, f func(x, y byte) byte) {
	for i := 0; i < bits/8; i++ {
		out.b[i] = f(a.b[i], b.b[i])
	}
}

func bitwise(bits int, a, b Vec, f func(x, y byte) byte) Vec {
	var out Vec
	bitwiseInto(bits, a, b, &out, f)
	return out
}

// saturation helpers.

func satI8(v int) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func satI16(v int) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

func satU8(v int) uint8 {
	if v > 255 {
		return 255
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}

func satU16(v int) uint16 {
	if v > 65535 {
		return 65535
	}
	if v < 0 {
		return 0
	}
	return uint16(v)
}
