// Package vm is the software SIMD machine that stands in for native
// execution in this reproduction. It implements the lane-exact semantics
// of every intrinsic the generated bindings expose, over 64..512-bit
// register values and byte-addressed buffers (the JNI-pinned-array
// analog). The kernel compiler (internal/kernelc) executes staged graphs
// against this machine; the analytical cost model (internal/machine)
// converts the machine's dynamic instruction counts into cycle estimates.
package vm
