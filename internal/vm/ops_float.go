package vm

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ir"
)

// widthOf derives the register width in bits from an intrinsic's name
// prefix (every Intel intrinsic encodes it: _mm_ = 128, _mm256_ = 256,
// _mm512_ = 512; MMX helpers use 64).
func widthOf(name string) int {
	switch {
	case strings.HasPrefix(name, "_mm512_"):
		return 512
	case strings.HasPrefix(name, "_mm256_"):
		return 256
	case strings.HasPrefix(name, "_mm_"):
		return 128
	default:
		return 64
	}
}

// --- registration helpers ----------------------------------------------------

func regBinF32(name string, f func(x, y float32) float32) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapF32(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regBinF64(name string, f func(x, y float64) float64) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(mapF64(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

func regUnF32(name string, f func(x float32) float32) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(map1F32(bits, argVec(args, 0), f))
	})
}

func regUnF64(name string, f func(x float64) float64) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(map1F64(bits, argVec(args, 0), f))
	})
}

// scalar (ss/sd) ops: lane 0 computed, upper lanes copied from a.
func regBinSS(name string, f func(x, y float32) float32) {
	register(name, func(m *Machine, args []Value) (Value, error) {
		out := argVec(args, 0)
		out.SetF32(0, f(args[0].V.F32(0), args[1].V.F32(0)))
		return vecResult(out)
	})
}

func regBinSD(name string, f func(x, y float64) float64) {
	register(name, func(m *Machine, args []Value) (Value, error) {
		out := argVec(args, 0)
		out.SetF64(0, f(args[0].V.F64(0), args[1].V.F64(0)))
		return vecResult(out)
	})
}

func regBitwise(name string, f func(x, y byte) byte) {
	bits := widthOf(name)
	register(name, func(m *Machine, args []Value) (Value, error) {
		return vecResult(bitwise(bits, argVec(args, 0), argVec(args, 1), f))
	})
}

// mask32/mask64 build comparison results (all-ones on true).
func mask32(t bool) float32 {
	if t {
		return math.Float32frombits(0xFFFFFFFF)
	}
	return math.Float32frombits(0)
}

func mask64(t bool) float64 {
	if t {
		return math.Float64frombits(0xFFFFFFFFFFFFFFFF)
	}
	return math.Float64frombits(0)
}

func regCmpF32(name string, f func(x, y float32) bool) {
	regBinF32(name, func(x, y float32) float32 { return mask32(f(x, y)) })
}

func regCmpF64(name string, f func(x, y float64) bool) {
	regBinF64(name, func(x, y float64) float64 { return mask64(f(x, y)) })
}

// fAdd/fSub etc. — shared float kernels.
func fAdd32(x, y float32) float32 { return x + y }
func fSub32(x, y float32) float32 { return x - y }
func fMul32(x, y float32) float32 { return x * y }
func fDiv32(x, y float32) float32 { return x / y }
func fMin32(x, y float32) float32 {
	if y < x {
		return y
	}
	return x
}
func fMax32(x, y float32) float32 {
	if y > x {
		return y
	}
	return x
}
func fAdd64(x, y float64) float64 { return x + y }
func fSub64(x, y float64) float64 { return x - y }
func fMul64(x, y float64) float64 { return x * y }
func fDiv64(x, y float64) float64 { return x / y }
func fMin64(x, y float64) float64 {
	if y < x {
		return y
	}
	return x
}
func fMax64(x, y float64) float64 {
	if y > x {
		return y
	}
	return x
}

func bAnd(x, y byte) byte    { return x & y }
func bOr(x, y byte) byte     { return x | y }
func bXor(x, y byte) byte    { return x ^ y }
func bAndNot(x, y byte) byte { return ^x & y } // x is NOT'd, per Intel

func init() {
	// ---- packed float arithmetic (SSE/SSE2/AVX/AVX-512) ----------------
	for _, pfx := range []string{"_mm_", "_mm256_", "_mm512_"} {
		regBinF32(pfx+"add_ps", fAdd32)
		regBinF32(pfx+"sub_ps", fSub32)
		regBinF32(pfx+"mul_ps", fMul32)
		regBinF32(pfx+"div_ps", fDiv32)
		regBinF32(pfx+"min_ps", fMin32)
		regBinF32(pfx+"max_ps", fMax32)
		regBinF64(pfx+"add_pd", fAdd64)
		regBinF64(pfx+"sub_pd", fSub64)
		regBinF64(pfx+"mul_pd", fMul64)
		regBinF64(pfx+"div_pd", fDiv64)
		regBinF64(pfx+"min_pd", fMin64)
		regBinF64(pfx+"max_pd", fMax64)
		regUnF32(pfx+"sqrt_ps", func(x float32) float32 { return float32(math.Sqrt(float64(x))) })
		regUnF64(pfx+"sqrt_pd", math.Sqrt)
	}
	regBinSS("_mm_add_ss", fAdd32)
	regBinSS("_mm_sub_ss", fSub32)
	regBinSS("_mm_mul_ss", fMul32)
	regBinSS("_mm_div_ss", fDiv32)
	regBinSS("_mm_min_ss", fMin32)
	regBinSS("_mm_max_ss", fMax32)
	regBinSD("_mm_add_sd", fAdd64)
	regBinSD("_mm_sub_sd", fSub64)
	regBinSD("_mm_mul_sd", fMul64)
	regBinSD("_mm_div_sd", fDiv64)
	regBinSD("_mm_min_sd", fMin64)
	regBinSD("_mm_max_sd", fMax64)

	// Approximate reciprocal ops (full precision here; the hardware's
	// 12-bit approximation is below the resolution this study needs).
	regUnF32("_mm_rcp_ps", func(x float32) float32 { return 1 / x })
	regUnF32("_mm256_rcp_ps", func(x float32) float32 { return 1 / x })
	regUnF32("_mm_rsqrt_ps", func(x float32) float32 { return float32(1 / math.Sqrt(float64(x))) })
	regUnF32("_mm256_rsqrt_ps", func(x float32) float32 { return float32(1 / math.Sqrt(float64(x))) })

	// ---- logical on float registers -------------------------------------
	for _, pfx := range []string{"_mm_", "_mm256_"} {
		for _, sfx := range []string{"_ps", "_pd"} {
			regBitwise(pfx+"and"+sfx, bAnd)
			regBitwise(pfx+"or"+sfx, bOr)
			regBitwise(pfx+"xor"+sfx, bXor)
			regBitwise(pfx+"andnot"+sfx, bAndNot)
		}
	}

	// ---- comparisons ------------------------------------------------------
	for _, pfx := range []string{"_mm_"} {
		regCmpF32(pfx+"cmpeq_ps", func(x, y float32) bool { return x == y })
		regCmpF32(pfx+"cmplt_ps", func(x, y float32) bool { return x < y })
		regCmpF32(pfx+"cmple_ps", func(x, y float32) bool { return x <= y })
		regCmpF32(pfx+"cmpgt_ps", func(x, y float32) bool { return x > y })
		regCmpF32(pfx+"cmpge_ps", func(x, y float32) bool { return x >= y })
		regCmpF32(pfx+"cmpneq_ps", func(x, y float32) bool { return x != y })
		regCmpF64(pfx+"cmpeq_pd", func(x, y float64) bool { return x == y })
		regCmpF64(pfx+"cmplt_pd", func(x, y float64) bool { return x < y })
		regCmpF64(pfx+"cmple_pd", func(x, y float64) bool { return x <= y })
		regCmpF64(pfx+"cmpgt_pd", func(x, y float64) bool { return x > y })
		regCmpF64(pfx+"cmpge_pd", func(x, y float64) bool { return x >= y })
		regCmpF64(pfx+"cmpneq_pd", func(x, y float64) bool { return x != y })
	}
	// AVX's predicate-parameter compare: _mm256_cmp_ps/pd(a, b, imm8).
	register("_mm256_cmp_ps", func(m *Machine, args []Value) (Value, error) {
		pred, err := cmpPredicate(argInt(args, 2))
		if err != nil {
			return Value{}, err
		}
		return vecResult(mapF32(256, argVec(args, 0), argVec(args, 1),
			func(x, y float32) float32 { return mask32(pred(float64(x), float64(y))) }))
	})
	register("_mm256_cmp_pd", func(m *Machine, args []Value) (Value, error) {
		pred, err := cmpPredicate(argInt(args, 2))
		if err != nil {
			return Value{}, err
		}
		return vecResult(mapF64(256, argVec(args, 0), argVec(args, 1),
			func(x, y float64) float64 { return mask64(pred(x, y)) }))
	})

	// ---- horizontal and alternating arithmetic ---------------------------
	registerHaddFamily()

	// ---- FMA family (all 32 of Table 1b's FMA entries) --------------------
	registerFMAFamily()

	// ---- rounding -----------------------------------------------------------
	registerRounding()

	// ---- conversions ---------------------------------------------------------
	registerFloatConversions()

	// ---- SVML (short vector math library) -------------------------------------
	registerSVML()
}

// cmpPredicate decodes the low 3 bits of AVX compare immediates (the
// ordered/unordered and signalling variants collapse onto these for the
// simulator's purposes).
func cmpPredicate(imm int) (func(x, y float64) bool, error) {
	switch imm & 0x7 {
	case 0:
		return func(x, y float64) bool { return x == y }, nil
	case 1:
		return func(x, y float64) bool { return x < y }, nil
	case 2:
		return func(x, y float64) bool { return x <= y }, nil
	case 3:
		return func(x, y float64) bool { return math.IsNaN(x) || math.IsNaN(y) }, nil
	case 4:
		return func(x, y float64) bool { return x != y }, nil
	case 5:
		return func(x, y float64) bool { return !(x < y) }, nil
	case 6:
		return func(x, y float64) bool { return !(x <= y) }, nil
	case 7:
		return func(x, y float64) bool { return !math.IsNaN(x) && !math.IsNaN(y) }, nil
	}
	return nil, fmt.Errorf("vm: bad compare predicate %d", imm)
}

// registerHaddFamily installs hadd/hsub/addsub for ps/pd at 128 and 256
// bits. AVX horizontal ops work within each 128-bit lane independently.
func registerHaddFamily() {
	haddPS := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 4
				out.SetF32(o+0, a.F32(o+0)+a.F32(o+1))
				out.SetF32(o+1, a.F32(o+2)+a.F32(o+3))
				out.SetF32(o+2, b.F32(o+0)+b.F32(o+1))
				out.SetF32(o+3, b.F32(o+2)+b.F32(o+3))
			}
			return vecResult(out)
		}
	}
	hsubPS := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 4
				out.SetF32(o+0, a.F32(o+0)-a.F32(o+1))
				out.SetF32(o+1, a.F32(o+2)-a.F32(o+3))
				out.SetF32(o+2, b.F32(o+0)-b.F32(o+1))
				out.SetF32(o+3, b.F32(o+2)-b.F32(o+3))
			}
			return vecResult(out)
		}
	}
	haddPD := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 2
				out.SetF64(o+0, a.F64(o+0)+a.F64(o+1))
				out.SetF64(o+1, b.F64(o+0)+b.F64(o+1))
			}
			return vecResult(out)
		}
	}
	hsubPD := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for lane := 0; lane < bits/128; lane++ {
				o := lane * 2
				out.SetF64(o+0, a.F64(o+0)-a.F64(o+1))
				out.SetF64(o+1, b.F64(o+0)-b.F64(o+1))
			}
			return vecResult(out)
		}
	}
	register("_mm_hadd_ps", haddPS(128))
	register("_mm256_hadd_ps", haddPS(256))
	register("_mm_hsub_ps", hsubPS(128))
	register("_mm256_hsub_ps", hsubPS(256))
	register("_mm_hadd_pd", haddPD(128))
	register("_mm256_hadd_pd", haddPD(256))
	register("_mm_hsub_pd", hsubPD(128))
	register("_mm256_hsub_pd", hsubPD(256))

	addsubPS := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for i := 0; i < bits/32; i++ {
				if i%2 == 0 {
					out.SetF32(i, a.F32(i)-b.F32(i))
				} else {
					out.SetF32(i, a.F32(i)+b.F32(i))
				}
			}
			return vecResult(out)
		}
	}
	addsubPD := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			a, b := argVec(args, 0), argVec(args, 1)
			var out Vec
			for i := 0; i < bits/64; i++ {
				if i%2 == 0 {
					out.SetF64(i, a.F64(i)-b.F64(i))
				} else {
					out.SetF64(i, a.F64(i)+b.F64(i))
				}
			}
			return vecResult(out)
		}
	}
	register("_mm_addsub_ps", addsubPS(128))
	register("_mm256_addsub_ps", addsubPS(256))
	register("_mm_addsub_pd", addsubPD(128))
	register("_mm256_addsub_pd", addsubPD(256))
}

// registerFMAFamily installs the 24 packed and 8 scalar FMA intrinsics
// plus the AVX-512 fmadd. Go's math.FMA gives the exact fused semantics.
func registerFMAFamily() {
	fma32 := func(a, b, c float32) float32 {
		return float32(math.FMA(float64(a), float64(b), float64(c)))
	}
	type variant struct {
		name string
		f32  func(a, b, c float32) float32
		f64  func(a, b, c float64) float64
	}
	variants := []variant{
		{"fmadd", func(a, b, c float32) float32 { return fma32(a, b, c) },
			func(a, b, c float64) float64 { return math.FMA(a, b, c) }},
		{"fmsub", func(a, b, c float32) float32 { return fma32(a, b, -c) },
			func(a, b, c float64) float64 { return math.FMA(a, b, -c) }},
		{"fnmadd", func(a, b, c float32) float32 { return fma32(-a, b, c) },
			func(a, b, c float64) float64 { return math.FMA(-a, b, c) }},
		{"fnmsub", func(a, b, c float32) float32 { return fma32(-a, b, -c) },
			func(a, b, c float64) float64 { return math.FMA(-a, b, -c) }},
	}
	for _, v := range variants {
		v := v
		for _, pfx := range []string{"_mm_", "_mm256_", "_mm512_"} {
			if pfx == "_mm512_" && v.name != "fmadd" {
				continue
			}
			bits := widthOf(pfx + "x")
			register(pfx+v.name+"_ps", func(m *Machine, args []Value) (Value, error) {
				a, b, c := argVec(args, 0), argVec(args, 1), argVec(args, 2)
				var out Vec
				for i := 0; i < bits/32; i++ {
					out.SetF32(i, v.f32(a.F32(i), b.F32(i), c.F32(i)))
				}
				return vecResult(out)
			})
			register(pfx+v.name+"_pd", func(m *Machine, args []Value) (Value, error) {
				a, b, c := argVec(args, 0), argVec(args, 1), argVec(args, 2)
				var out Vec
				for i := 0; i < bits/64; i++ {
					out.SetF64(i, v.f64(a.F64(i), b.F64(i), c.F64(i)))
				}
				return vecResult(out)
			})
		}
		register("_mm_"+v.name+"_ss", func(m *Machine, args []Value) (Value, error) {
			out := argVec(args, 0)
			out.SetF32(0, v.f32(args[0].V.F32(0), args[1].V.F32(0), args[2].V.F32(0)))
			return vecResult(out)
		})
		register("_mm_"+v.name+"_sd", func(m *Machine, args []Value) (Value, error) {
			out := argVec(args, 0)
			out.SetF64(0, v.f64(args[0].V.F64(0), args[1].V.F64(0), args[2].V.F64(0)))
			return vecResult(out)
		})
	}
	// fmaddsub: odd lanes add, even lanes sub; fmsubadd: the reverse.
	for _, pfx := range []string{"_mm_", "_mm256_"} {
		bits := widthOf(pfx + "x")
		for _, alt := range []struct {
			name    string
			evenSub bool
		}{{"fmaddsub", true}, {"fmsubadd", false}} {
			alt := alt
			register(pfx+alt.name+"_ps", func(m *Machine, args []Value) (Value, error) {
				a, b, c := argVec(args, 0), argVec(args, 1), argVec(args, 2)
				var out Vec
				for i := 0; i < bits/32; i++ {
					ci := c.F32(i)
					if (i%2 == 0) == alt.evenSub {
						ci = -ci
					}
					out.SetF32(i, fma32(a.F32(i), b.F32(i), ci))
				}
				return vecResult(out)
			})
			register(pfx+alt.name+"_pd", func(m *Machine, args []Value) (Value, error) {
				a, b, c := argVec(args, 0), argVec(args, 1), argVec(args, 2)
				var out Vec
				for i := 0; i < bits/64; i++ {
					ci := c.F64(i)
					if (i%2 == 0) == alt.evenSub {
						ci = -ci
					}
					out.SetF64(i, math.FMA(a.F64(i), b.F64(i), ci))
				}
				return vecResult(out)
			})
		}
	}
}

func registerRounding() {
	roundMode := func(mode int) func(float64) float64 {
		switch mode & 0x3 {
		case 0:
			return math.RoundToEven
		case 1:
			return math.Floor
		case 2:
			return math.Ceil
		default:
			return math.Trunc
		}
	}
	for _, pfx := range []string{"_mm_", "_mm256_"} {
		bits := widthOf(pfx + "x")
		register(pfx+"round_ps", func(m *Machine, args []Value) (Value, error) {
			f := roundMode(argInt(args, 1))
			return vecResult(map1F32(bits, argVec(args, 0),
				func(x float32) float32 { return float32(f(float64(x))) }))
		})
		register(pfx+"round_pd", func(m *Machine, args []Value) (Value, error) {
			f := roundMode(argInt(args, 1))
			return vecResult(map1F64(bits, argVec(args, 0), f))
		})
		regUnF32(pfx+"floor_ps", func(x float32) float32 { return float32(math.Floor(float64(x))) })
		regUnF64(pfx+"floor_pd", math.Floor)
		regUnF32(pfx+"ceil_ps", func(x float32) float32 { return float32(math.Ceil(float64(x))) })
		regUnF64(pfx+"ceil_pd", math.Ceil)
	}
}

func registerFloatConversions() {
	// int32 ↔ float32, packed.
	for _, pfx := range []string{"_mm_", "_mm256_"} {
		bits := widthOf(pfx + "x")
		register(pfx+"cvtepi32_ps", func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			var out Vec
			for i := 0; i < bits/32; i++ {
				out.SetF32(i, float32(a.I32(i)))
			}
			return vecResult(out)
		})
		register(pfx+"cvtps_epi32", func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			var out Vec
			for i := 0; i < bits/32; i++ {
				out.SetI32(i, int32(math.RoundToEven(float64(a.F32(i)))))
			}
			return vecResult(out)
		})
		register(pfx+"cvttps_epi32", func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			var out Vec
			for i := 0; i < bits/32; i++ {
				out.SetI32(i, int32(a.F32(i)))
			}
			return vecResult(out)
		})
	}
	register("_mm_cvtepi32_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 2; i++ {
			out.SetF64(i, float64(a.I32(i)))
		}
		return vecResult(out)
	})
	// float32 ↔ float64.
	register("_mm_cvtps_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 2; i++ {
			out.SetF64(i, float64(a.F32(i)))
		}
		return vecResult(out)
	})
	register("_mm_cvtpd_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 2; i++ {
			out.SetF32(i, float32(a.F64(i)))
		}
		return vecResult(out)
	})
	register("_mm256_cvtps_pd", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF64(i, float64(a.F32(i)))
		}
		return vecResult(out)
	})
	register("_mm256_cvtpd_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF32(i, float32(a.F64(i)))
		}
		return vecResult(out)
	})
	// Scalar extraction.
	register("_mm_cvtss_f32", func(m *Machine, args []Value) (Value, error) {
		return F32Value(args[0].V.F32(0)), nil
	})
	register("_mm_cvtsd_f64", func(m *Machine, args []Value) (Value, error) {
		return F64Value(args[0].V.F64(0)), nil
	})
	register("_mm_cvtsi128_si32", func(m *Machine, args []Value) (Value, error) {
		return IntValue(int(args[0].V.I32(0))), nil
	})
	register("_mm_cvtsi128_si64", func(m *Machine, args []Value) (Value, error) {
		return Value{Kind: ir.KindI64, I: args[0].V.I64(0)}, nil
	})
	register("_mm_cvtsi32_si128", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		out.SetI32(0, int32(args[0].AsInt()))
		return vecResult(out)
	})
	register("_mm_cvtsi64_si128", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		out.SetI64(0, args[0].AsInt())
		return vecResult(out)
	})
	register("_mm_cvtsi64_si32", func(m *Machine, args []Value) (Value, error) {
		return IntValue(int(args[0].V.I32(0))), nil
	})
	register("_mm_cvtsi32_si64", func(m *Machine, args []Value) (Value, error) {
		var out Vec
		out.SetI32(0, int32(args[0].AsInt()))
		return vecResult(out)
	})

	// FP16C: half-precision packed conversion.
	register("_mm_cvtph_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF32(i, F32FromF16(a.U16(i)))
		}
		return vecResult(out)
	})
	register("_mm256_cvtph_ps", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 8; i++ {
			out.SetF32(i, F32FromF16(a.U16(i)))
		}
		return vecResult(out)
	})
	register("_mm_cvtps_ph", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetU16(i, F16FromF32(a.F32(i)))
		}
		return vecResult(out)
	})
	register("_mm256_cvtps_ph", func(m *Machine, args []Value) (Value, error) {
		a := argVec(args, 0)
		var out Vec
		for i := 0; i < 8; i++ {
			out.SetU16(i, F16FromF32(a.F32(i)))
		}
		return vecResult(out)
	})

	// Casts are free reinterpretations.
	for _, name := range []string{
		"_mm_castpd_ps", "_mm_castps_pd", "_mm_castps_si128", "_mm_castsi128_ps",
		"_mm256_castps_pd", "_mm256_castpd_ps", "_mm256_castps_si256",
		"_mm256_castsi256_ps", "_mm256_castps256_ps128", "_mm256_castpd256_pd128",
		"_mm256_castsi256_si128",
	} {
		register(name, func(m *Machine, args []Value) (Value, error) {
			return vecResult(argVec(args, 0))
		})
	}
	// Widening casts zero the upper half (the Intel docs say undefined;
	// zeroing is the common hardware behaviour).
	for _, name := range []string{"_mm256_castps128_ps256", "_mm256_castpd128_pd256", "_mm256_castsi128_si256"} {
		register(name, func(m *Machine, args []Value) (Value, error) {
			a := argVec(args, 0)
			var out Vec
			copy(out.b[:16], a.b[:16])
			return vecResult(out)
		})
	}
}

func registerSVML() {
	un32 := func(f func(float64) float64) func(x float32) float32 {
		return func(x float32) float32 { return float32(f(float64(x))) }
	}
	cdfnorm := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	pow2o3 := func(x float64) float64 { return math.Cbrt(x * x) }
	for _, pfx := range []string{"_mm_", "_mm256_"} {
		regUnF32(pfx+"sin_ps", un32(math.Sin))
		regUnF64(pfx+"sin_pd", math.Sin)
		regUnF32(pfx+"cos_ps", un32(math.Cos))
		regUnF64(pfx+"cos_pd", math.Cos)
		regUnF32(pfx+"exp_ps", un32(math.Exp))
		regUnF64(pfx+"exp_pd", math.Exp)
		regUnF32(pfx+"log_ps", un32(math.Log))
		regUnF64(pfx+"log_pd", math.Log)
		regUnF32(pfx+"pow2o3_ps", un32(pow2o3))
		regUnF64(pfx+"pow2o3_pd", pow2o3)
		regUnF32(pfx+"cdfnorm_ps", un32(cdfnorm))
		regUnF64(pfx+"cdfnorm_pd", cdfnorm)
		regUnF32(pfx+"svml_sqrt_ps", un32(math.Sqrt))
		regUnF64(pfx+"svml_sqrt_pd", math.Sqrt)
		regUnF32(pfx+"invsqrt_ps", un32(func(x float64) float64 { return 1 / math.Sqrt(x) }))
		regUnF64(pfx+"invsqrt_pd", func(x float64) float64 { return 1 / math.Sqrt(x) })
	}
	divEpi32 := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			return vecResult(mapI32(bits, argVec(args, 0), argVec(args, 1),
				func(x, y int32) int32 {
					if y == 0 {
						return 0
					}
					return x / y
				}))
		}
	}
	remEpi32 := func(bits int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			return vecResult(mapI32(bits, argVec(args, 0), argVec(args, 1),
				func(x, y int32) int32 {
					if y == 0 {
						return 0
					}
					return x % y
				}))
		}
	}
	register("_mm_div_epi32", divEpi32(128))
	register("_mm256_div_epi32", divEpi32(256))
	register("_mm_rem_epi32", remEpi32(128))
	register("_mm256_rem_epi32", remEpi32(256))
}
