package vm

import (
	"testing"

	"repro/internal/ir"
)

// Edge-case coverage for the swizzle, pack and integer families.

func TestAlignr(t *testing.T) {
	var a, b Vec
	for i := 0; i < 16; i++ {
		a.SetU8(i, uint8(0x10+i)) // high half of the concatenation
		b.SetU8(i, uint8(i))      // low half
	}
	out := call(t, "_mm_alignr_epi8", VecValue(a), VecValue(b), IntValue(4))
	// Result = bytes 4..19 of b:a.
	for i := 0; i < 12; i++ {
		if out.V.U8(i) != uint8(4+i) {
			t.Fatalf("byte %d = %#x", i, out.V.U8(i))
		}
	}
	for i := 12; i < 16; i++ {
		if out.V.U8(i) != uint8(0x10+i-12) {
			t.Fatalf("byte %d = %#x", i, out.V.U8(i))
		}
	}
	// Shift ≥ 32 zeroes everything.
	out = call(t, "_mm_alignr_epi8", VecValue(a), VecValue(b), IntValue(33))
	for i := 0; i < 16; i++ {
		if out.V.U8(i) != 0 {
			t.Fatalf("alignr(33) byte %d = %#x", i, out.V.U8(i))
		}
	}
}

func TestShuffleEpi8HighBitZeroes(t *testing.T) {
	var a, ctrl Vec
	for i := 0; i < 16; i++ {
		a.SetU8(i, uint8(100+i))
	}
	ctrl.SetU8(0, 5)
	ctrl.SetU8(1, 0x80) // high bit → zero
	ctrl.SetU8(2, 0x8F) // high bit → zero even with index bits
	ctrl.SetU8(3, 15)
	out := call(t, "_mm_shuffle_epi8", VecValue(a), VecValue(ctrl))
	if out.V.U8(0) != 105 || out.V.U8(1) != 0 || out.V.U8(2) != 0 || out.V.U8(3) != 115 {
		t.Errorf("pshufb = %d,%d,%d,%d", out.V.U8(0), out.V.U8(1), out.V.U8(2), out.V.U8(3))
	}
}

func TestShuffleEpi8PerLane(t *testing.T) {
	// AVX2 pshufb must not cross 128-bit lanes.
	var a, ctrl Vec
	for i := 0; i < 32; i++ {
		a.SetU8(i, uint8(i))
		ctrl.SetU8(i, 0) // every control selects lane-local byte 0
	}
	out := call(t, "_mm256_shuffle_epi8", VecValue(a), VecValue(ctrl))
	if out.V.U8(0) != 0 || out.V.U8(16) != 16 {
		t.Errorf("cross-lane pshufb: low %d, high %d (want 0, 16)",
			out.V.U8(0), out.V.U8(16))
	}
}

func TestPacksSaturation(t *testing.T) {
	a := vecI16(300, -300, 127, -128, 0, 1, -1, 32767)
	out := call(t, "_mm_packs_epi16", VecValue(a), VecValue(a))
	want := []int8{127, -128, 127, -128, 0, 1, -1, 127}
	for i, w := range want {
		if out.V.I8(i) != w {
			t.Errorf("packs lane %d = %d, want %d", i, out.V.I8(i), w)
		}
	}
	outU := call(t, "_mm_packus_epi16", VecValue(a), VecValue(a))
	wantU := []uint8{255, 0, 127, 0, 0, 1, 0, 255}
	for i, w := range wantU {
		if outU.V.U8(i) != w {
			t.Errorf("packus lane %d = %d, want %d", i, outU.V.U8(i), w)
		}
	}
}

func TestUnpackEpi32Lanes(t *testing.T) {
	a := vecI32(0, 1, 2, 3, 4, 5, 6, 7)
	b := vecI32(10, 11, 12, 13, 14, 15, 16, 17)
	out := call(t, "_mm256_unpacklo_epi32", VecValue(a), VecValue(b))
	want := []int32{0, 10, 1, 11, 4, 14, 5, 15}
	for i, w := range want {
		if out.V.I32(i) != w {
			t.Errorf("unpacklo_epi32 lane %d = %d, want %d", i, out.V.I32(i), w)
		}
	}
}

func TestPermute4x64(t *testing.T) {
	var a Vec
	for i := 0; i < 4; i++ {
		a.SetI64(i, int64(100+i))
	}
	// imm 0b00011011 = reverse.
	out := call(t, "_mm256_permute4x64_epi64", VecValue(a), IntValue(0x1B))
	for i := 0; i < 4; i++ {
		if out.V.I64(i) != int64(103-i) {
			t.Errorf("permute4x64 lane %d = %d", i, out.V.I64(i))
		}
	}
}

func TestPermutevar8x32(t *testing.T) {
	a := vecF32(0, 10, 20, 30, 40, 50, 60, 70)
	idx := vecI32(7, 6, 5, 4, 3, 2, 1, 0)
	out := call(t, "_mm256_permutevar8x32_ps", VecValue(a), VecValue(idx))
	for i := 0; i < 8; i++ {
		if out.V.F32(i) != float32((7-i)*10) {
			t.Errorf("permutevar lane %d = %v", i, out.V.F32(i))
		}
	}
}

func TestBlendImmPerLaneRepeat(t *testing.T) {
	// blend_epi16 repeats the 8-bit immediate per 128-bit lane.
	var a, b Vec
	for i := 0; i < 16; i++ {
		a.SetI16(i, 1)
		b.SetI16(i, 2)
	}
	out := call(t, "_mm256_blend_epi16", VecValue(a), VecValue(b), IntValue(0b10101010))
	for i := 0; i < 16; i++ {
		want := int16(1)
		if i%2 == 1 {
			want = 2
		}
		if out.V.I16(i) != want {
			t.Errorf("blend_epi16 lane %d = %d, want %d", i, out.V.I16(i), want)
		}
	}
}

func TestInsertExtract128(t *testing.T) {
	a := vecF32(0, 1, 2, 3, 4, 5, 6, 7)
	hi := call(t, "_mm256_extractf128_ps", VecValue(a), IntValue(1))
	if hi.V.F32(0) != 4 || hi.V.F32(3) != 7 {
		t.Errorf("extract hi = %v..%v", hi.V.F32(0), hi.V.F32(3))
	}
	ins := call(t, "_mm256_insertf128_ps", VecValue(a), hi, IntValue(0))
	if ins.V.F32(0) != 4 || ins.V.F32(4) != 4 {
		t.Errorf("insert low = %v, high stays %v", ins.V.F32(0), ins.V.F32(4))
	}
}

func TestMinposEpu16(t *testing.T) {
	var a Vec
	vals := []uint16{9, 4, 7, 4, 100, 50, 30, 8}
	for i, v := range vals {
		a.SetU16(i, v)
	}
	out := call(t, "_mm_minpos_epu16", VecValue(a))
	if out.V.U16(0) != 4 || out.V.U16(1) != 1 {
		t.Errorf("minpos = (%d, idx %d), want (4, idx 1)", out.V.U16(0), out.V.U16(1))
	}
}

func TestMulhiMullo(t *testing.T) {
	a := vecI16(1000, -1000)
	b := vecI16(2000, 2000)
	lo := call(t, "_mm_mullo_epi16", VecValue(a), VecValue(b))
	hi := call(t, "_mm_mulhi_epi16", VecValue(a), VecValue(b))
	full := int32(1000) * 2000
	if lo.V.I16(0) != int16(full) || hi.V.I16(0) != int16(full>>16) {
		t.Errorf("1000*2000: lo %d hi %d", lo.V.I16(0), hi.V.I16(0))
	}
	fullNeg := int32(-1000) * 2000
	if hi.V.I16(1) != int16(fullNeg>>16) {
		t.Errorf("-1000*2000 hi = %d, want %d", hi.V.I16(1), int16(fullNeg>>16))
	}
}

func TestMulEpi32EvenLanes(t *testing.T) {
	a := vecI32(3, 999, -4, 999)
	b := vecI32(5, 999, 6, 999)
	out := call(t, "_mm_mul_epi32", VecValue(a), VecValue(b))
	if out.V.I64(0) != 15 || out.V.I64(1) != -24 {
		t.Errorf("mul_epi32 = %d, %d", out.V.I64(0), out.V.I64(1))
	}
}

func TestCvtRounding(t *testing.T) {
	a := vecF32(1.5, 2.5, -1.5, 1.7)
	rounded := call(t, "_mm_cvtps_epi32", VecValue(a))
	// Round-to-nearest-even: 1.5→2, 2.5→2, −1.5→−2, 1.7→2.
	want := []int32{2, 2, -2, 2}
	for i, w := range want {
		if rounded.V.I32(i) != w {
			t.Errorf("cvtps lane %d = %d, want %d", i, rounded.V.I32(i), w)
		}
	}
	trunc := call(t, "_mm_cvttps_epi32", VecValue(a))
	wantT := []int32{1, 2, -1, 1}
	for i, w := range wantT {
		if trunc.V.I32(i) != w {
			t.Errorf("cvttps lane %d = %d, want %d", i, trunc.V.I32(i), w)
		}
	}
}

func TestHaddPd(t *testing.T) {
	a := vecF64(1, 2, 3, 4)
	b := vecF64(10, 20, 30, 40)
	out := call(t, "_mm256_hadd_pd", VecValue(a), VecValue(b))
	want := []float64{3, 30, 7, 70}
	for i, w := range want {
		if out.V.F64(i) != w {
			t.Errorf("hadd_pd lane %d = %v, want %v", i, out.V.F64(i), w)
		}
	}
}

func TestDpPs(t *testing.T) {
	a := vecF32(1, 2, 3, 4)
	b := vecF32(5, 6, 7, 8)
	// Multiply all four lanes (0xF0), broadcast to lanes 0 and 2 (0x05).
	out := call(t, "_mm_dp_ps", VecValue(a), VecValue(b), IntValue(0xF5))
	if out.V.F32(0) != 70 || out.V.F32(2) != 70 || out.V.F32(1) != 0 {
		t.Errorf("dp_ps = %v,%v,%v", out.V.F32(0), out.V.F32(1), out.V.F32(2))
	}
}

func TestPextPdep(t *testing.T) {
	x := Value{Kind: ir.KindU32, U: 0b10110010}
	mask := Value{Kind: ir.KindU32, U: 0b11110000}
	out := call(t, "_pext_u32", x, mask)
	if out.U != 0b1011 {
		t.Errorf("pext = %b", out.U)
	}
	dep := call(t, "_pdep_u32", Value{Kind: ir.KindU32, U: 0b1011}, mask)
	if dep.U != 0b10110000 {
		t.Errorf("pdep = %b", dep.U)
	}
}

func TestMaskLoadStore(t *testing.T) {
	buf := PinF32([]float32{1, 2, 3, 4, 5, 6, 7, 8})
	var mask Vec
	for i := 0; i < 8; i += 2 {
		mask.SetI32(i, -1) // sign bit set → selected
	}
	out := call(t, "_mm256_maskload_ps", PtrValue(buf, 0), VecValue(mask))
	for i := 0; i < 8; i++ {
		want := float32(0)
		if i%2 == 0 {
			want = float32(i + 1)
		}
		if out.V.F32(i) != want {
			t.Errorf("maskload lane %d = %v, want %v", i, out.V.F32(i), want)
		}
	}
	dst := NewBuffer(buf.Prim, 8)
	call(t, "_mm256_maskstore_ps", PtrValue(dst, 0), VecValue(mask), out)
	if dst.F32At(0) != 1 || dst.F32At(1) != 0 || dst.F32At(2) != 3 {
		t.Errorf("maskstore = %v,%v,%v", dst.F32At(0), dst.F32At(1), dst.F32At(2))
	}
	// Masked lanes never touch memory: a masked-off OOB lane is safe.
	short := PinF32([]float32{1})
	var one Vec
	one.SetI32(0, -1)
	if _, err := mach().Call("_mm256_maskload_ps", PtrValue(short, 0), VecValue(one)); err != nil {
		t.Errorf("masked-off OOB lanes must not fault: %v", err)
	}
}

func TestSignZeroes(t *testing.T) {
	a := vecI8(5, 5, 5)
	b := vecI8(1, 0, -1)
	out := call(t, "_mm_sign_epi8", VecValue(a), VecValue(b))
	if out.V.I8(0) != 5 || out.V.I8(1) != 0 || out.V.I8(2) != -5 {
		t.Errorf("sign = %d,%d,%d", out.V.I8(0), out.V.I8(1), out.V.I8(2))
	}
}

func TestAvx512MaskOps(t *testing.T) {
	var a, b Vec
	for i := 0; i < 16; i++ {
		a.SetI32(i, int32(i))
		b.SetI32(i, int32(i%2))
	}
	k := call(t, "_mm512_cmpeq_epi32_mask", VecValue(a), VecValue(b))
	if k.V.U16(0) != 0b11 { // lanes 0 (0==0) and 1 (1==1)
		t.Errorf("cmpeq mask = %b", k.V.U16(0))
	}
	src := call(t, "_mm512_set1_ps", F32Value(-1))
	sum := call(t, "_mm512_mask_add_ps", src, k, VecValue(vecF32(1, 1)), VecValue(vecF32(2, 2)))
	if sum.V.F32(0) != 3 || sum.V.F32(2) != -1 {
		t.Errorf("mask_add = %v, %v", sum.V.F32(0), sum.V.F32(2))
	}
}

func TestReduceAddPs512(t *testing.T) {
	var a Vec
	for i := 0; i < 16; i++ {
		a.SetF32(i, float32(i+1))
	}
	out := call(t, "_mm512_reduce_add_ps", VecValue(a))
	if out.AsFloat() != 136 {
		t.Errorf("reduce_add = %v, want 136", out.AsFloat())
	}
}

func TestVariableShifts(t *testing.T) {
	a := vecI32(1, 1, 1, 1, 1, 1, 1, 1)
	cnt := vecI32(0, 1, 2, 3, 31, 32, 40, 4)
	out := call(t, "_mm256_sllv_epi32", VecValue(a), VecValue(cnt))
	want := []uint32{1, 2, 4, 8, 1 << 31, 0, 0, 16}
	for i, w := range want {
		if out.V.U32(i) != w {
			t.Errorf("sllv lane %d = %d, want %d", i, out.V.U32(i), w)
		}
	}
}

func TestStringCompareIntrinsics(t *testing.T) {
	var a, b Vec
	copy(a.b[:], "hello world!!!!!")
	copy(b.b[:], "hello_world!!!!!")
	idx := call(t, "_mm_cmpistri", VecValue(a), VecValue(b))
	if idx.AsInt() != 5 { // first mismatch at '_' vs ' '
		t.Errorf("cmpistri = %d, want 5", idx.AsInt())
	}
	z := call(t, "_mm_cmpistrz", VecValue(a), VecValue(b))
	if z.AsInt() != 0 {
		t.Errorf("cmpistrz on full block = %d", z.AsInt())
	}
}

func TestBroadcasts(t *testing.T) {
	var x Vec
	x.SetF32(0, 3.25)
	out := call(t, "_mm256_broadcastss_ps", VecValue(x))
	for i := 0; i < 8; i++ {
		if out.V.F32(i) != 3.25 {
			t.Fatalf("broadcastss lane %d = %v", i, out.V.F32(i))
		}
	}
	buf := PinF32([]float32{7.5})
	mem := call(t, "_mm256_broadcast_ss", PtrValue(buf, 0))
	for i := 0; i < 8; i++ {
		if mem.V.F32(i) != 7.5 {
			t.Fatalf("broadcast_ss lane %d = %v", i, mem.V.F32(i))
		}
	}
}

func TestMovemaskOnCompare(t *testing.T) {
	a := vecI8(-1, 1, -1, 1)
	bits := call(t, "_mm_movemask_epi8", VecValue(a))
	if bits.AsInt()&0xF != 0b0101 {
		t.Errorf("movemask = %b", bits.AsInt())
	}
}

func TestSVMLAccuracy(t *testing.T) {
	a := vecF32(0, 1, -1, 0.5)
	sin := call(t, "_mm256_sin_ps", VecValue(a))
	if sin.V.F32(0) != 0 || sin.V.F32(1) < 0.84 || sin.V.F32(1) > 0.85 {
		t.Errorf("sin = %v, %v", sin.V.F32(0), sin.V.F32(1))
	}
	exp := call(t, "_mm256_exp_ps", VecValue(a))
	if exp.V.F32(0) != 1 || exp.V.F32(1) < 2.71 || exp.V.F32(1) > 2.72 {
		t.Errorf("exp = %v, %v", exp.V.F32(0), exp.V.F32(1))
	}
	cdf := call(t, "_mm256_cdfnorm_pd", VecValue(vecF64(0)))
	if cdf.V.F64(0) != 0.5 {
		t.Errorf("cdfnorm(0) = %v, want 0.5", cdf.V.F64(0))
	}
}
