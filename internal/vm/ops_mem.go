package vm

// Memory intrinsics: loads, stores, broadcasts from memory, masked and
// gathered accesses. Pointer arguments are displaced buffer references;
// a register load/store moves width/8 bytes starting at the pointer's
// element offset. Alignment-checking variants behave like their
// unaligned counterparts (the simulator's buffers carry no addresses),
// but remain distinct ops so the cost model can price them apart.

func regLoad(name string, bytes int) {
	register(name, func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		v, err := buf.LoadVec(off, bytes)
		if err != nil {
			return Value{}, err
		}
		m.Touch(buf, off*buf.Prim.Bits()/8, bytes)
		return vecResult(v)
	})
}

func regStore(name string, bytes int) {
	register(name, func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.StoreVec(off, argVec(args, 1), bytes); err != nil {
			return Value{}, err
		}
		m.Touch(buf, off*buf.Prim.Bits()/8, bytes)
		return voidResult()
	})
}

func init() {
	// Plain loads/stores at every width. The *u (unaligned) and aligned
	// forms share semantics here.
	for _, l := range []struct {
		name  string
		bytes int
	}{
		{"_mm_loadu_ps", 16}, {"_mm_load_ps", 16},
		{"_mm_loadu_pd", 16}, {"_mm_load_pd", 16},
		{"_mm_loadu_si128", 16}, {"_mm_load_si128", 16}, {"_mm_lddqu_si128", 16},
		{"_mm_stream_load_si128", 16},
		{"_mm256_loadu_ps", 32}, {"_mm256_load_ps", 32},
		{"_mm256_loadu_pd", 32}, {"_mm256_load_pd", 32},
		{"_mm256_loadu_si256", 32}, {"_mm256_load_si256", 32},
		{"_mm256_lddqu_si256", 32},
		{"_mm512_loadu_ps", 64}, {"_mm512_loadu_pd", 64}, {"_mm512_loadu_si512", 64},
	} {
		regLoad(l.name, l.bytes)
	}
	for _, s := range []struct {
		name  string
		bytes int
	}{
		{"_mm_storeu_ps", 16}, {"_mm_store_ps", 16},
		{"_mm_storeu_pd", 16}, {"_mm_store_pd", 16},
		{"_mm_storeu_si128", 16}, {"_mm_store_si128", 16}, {"_mm_stream_si128", 16},
		{"_mm256_storeu_ps", 32}, {"_mm256_store_ps", 32}, {"_mm256_stream_ps", 32},
		{"_mm256_storeu_pd", 32}, {"_mm256_store_pd", 32}, {"_mm256_stream_pd", 32},
		{"_mm256_storeu_si256", 32}, {"_mm256_store_si256", 32},
		{"_mm256_stream_si256", 32},
		{"_mm512_storeu_ps", 64}, {"_mm512_storeu_pd", 64}, {"_mm512_storeu_si512", 64},
		{"_mm512_storenrngo_pd", 64},
	} {
		regStore(s.name, s.bytes)
	}

	// Scalar loads/stores.
	register("_mm_load_ss", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*4, 4); err != nil {
			return Value{}, err
		}
		var out Vec
		out.SetF32(0, buf.F32At(off))
		return vecResult(out)
	})
	register("_mm_store_ss", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*4, 4); err != nil {
			return Value{}, err
		}
		buf.SetF32At(off, args[1].V.F32(0))
		return voidResult()
	})
	register("_mm_load_ps1", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*4, 4); err != nil {
			return Value{}, err
		}
		x := buf.F32At(off)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF32(i, x)
		}
		return vecResult(out)
	})
	register("_mm_store_ps1", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*4, 16); err != nil {
			return Value{}, err
		}
		x := args[1].V.F32(0)
		for i := 0; i < 4; i++ {
			buf.SetF32At(off+i, x)
		}
		return voidResult()
	})
	register("_mm_store_pd1", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*8, 16); err != nil {
			return Value{}, err
		}
		x := args[1].V.F64(0)
		for i := 0; i < 2; i++ {
			buf.SetF64At(off+i, x)
		}
		return voidResult()
	})
	register("_mm_loaddup_pd", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*8, 8); err != nil {
			return Value{}, err
		}
		x := buf.F64At(off)
		var out Vec
		out.SetF64(0, x)
		out.SetF64(1, x)
		return vecResult(out)
	})

	// Memory broadcasts.
	register("_mm256_broadcast_ss", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*4, 4); err != nil {
			return Value{}, err
		}
		x := buf.F32At(off)
		var out Vec
		for i := 0; i < 8; i++ {
			out.SetF32(i, x)
		}
		return vecResult(out)
	})
	register("_mm256_broadcast_sd", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		if err := buf.check(off*8, 8); err != nil {
			return Value{}, err
		}
		x := buf.F64At(off)
		var out Vec
		for i := 0; i < 4; i++ {
			out.SetF64(i, x)
		}
		return vecResult(out)
	})
	bcast128 := func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		v, err := buf.LoadVec(off, 16)
		if err != nil {
			return Value{}, err
		}
		var out Vec
		copy(out.b[:16], v.b[:16])
		copy(out.b[16:32], v.b[:16])
		return vecResult(out)
	}
	register("_mm256_broadcast_ps", bcast128)
	register("_mm256_broadcast_pd", bcast128)

	// Masked loads/stores (AVX / AVX2): element moves where the mask's
	// sign bit is set.
	maskLoad := func(elemBytes, n int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			buf, off, err := argPtr(args, 0)
			if err != nil {
				return Value{}, err
			}
			mask := argVec(args, 1)
			var out Vec
			for i := 0; i < n; i++ {
				if mask.b[(i+1)*elemBytes-1]&0x80 == 0 {
					continue
				}
				byteOff := (off + i) * buf.Prim.Bits() / 8
				if err := buf.check(byteOff, elemBytes); err != nil {
					return Value{}, err
				}
				m.Touch(buf, byteOff, elemBytes)
				copy(out.b[i*elemBytes:(i+1)*elemBytes], buf.Data[byteOff:byteOff+elemBytes])
			}
			return vecResult(out)
		}
	}
	maskStore := func(elemBytes, n int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			buf, off, err := argPtr(args, 0)
			if err != nil {
				return Value{}, err
			}
			mask, a := argVec(args, 1), argVec(args, 2)
			for i := 0; i < n; i++ {
				if mask.b[(i+1)*elemBytes-1]&0x80 == 0 {
					continue
				}
				byteOff := (off + i) * buf.Prim.Bits() / 8
				if err := buf.check(byteOff, elemBytes); err != nil {
					return Value{}, err
				}
				m.Touch(buf, byteOff, elemBytes)
				copy(buf.Data[byteOff:byteOff+elemBytes], a.b[i*elemBytes:(i+1)*elemBytes])
			}
			return voidResult()
		}
	}
	register("_mm256_maskload_ps", maskLoad(4, 8))
	register("_mm256_maskstore_ps", maskStore(4, 8))
	register("_mm256_maskload_pd", maskLoad(8, 4))
	register("_mm256_maskstore_pd", maskStore(8, 4))
	register("_mm256_maskload_epi32", maskLoad(4, 8))
	register("_mm256_maskstore_epi32", maskStore(4, 8))

	// Gathers (AVX2): scale is in bytes on hardware; buffers are element-
	// typed here, so the simulator honours scale relative to the element
	// size.
	gather32 := func(n int) func(m *Machine, args []Value) (Value, error) {
		return func(m *Machine, args []Value) (Value, error) {
			buf, off, err := argPtr(args, 0)
			if err != nil {
				return Value{}, err
			}
			vindex := argVec(args, 1)
			scale := argInt(args, 2)
			elemBytes := buf.Prim.Bits() / 8
			var out Vec
			for i := 0; i < n; i++ {
				byteOff := off*elemBytes + int(vindex.I32(i))*scale
				if err := buf.check(byteOff, 4); err != nil {
					return Value{}, err
				}
				m.Touch(buf, byteOff, 4)
				copy(out.b[i*4:(i+1)*4], buf.Data[byteOff:byteOff+4])
			}
			return vecResult(out)
		}
	}
	register("_mm256_i32gather_epi32", gather32(8))
	register("_mm256_i32gather_ps", gather32(8))
	register("_mm256_i32gather_pd", func(m *Machine, args []Value) (Value, error) {
		buf, off, err := argPtr(args, 0)
		if err != nil {
			return Value{}, err
		}
		vindex := argVec(args, 1)
		scale := argInt(args, 2)
		elemBytes := buf.Prim.Bits() / 8
		var out Vec
		for i := 0; i < 4; i++ {
			byteOff := off*elemBytes + int(vindex.I32(i))*scale
			if err := buf.check(byteOff, 8); err != nil {
				return Value{}, err
			}
			copy(out.b[i*8:(i+1)*8], buf.Data[byteOff:byteOff+8])
		}
		return vecResult(out)
	})

	// Cache-control and fences: no-ops with cost-model presence.
	noop := func(m *Machine, args []Value) (Value, error) { return voidResult() }
	for _, n := range []string{"_mm_prefetch", "_mm_sfence", "_mm_lfence",
		"_mm_mfence", "_mm256_zeroall", "_mm256_zeroupper"} {
		register(n, noop)
	}
}
