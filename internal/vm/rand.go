package vm

// Xorshift is the deterministic pseudo-random source standing in for the
// RDRAND/RDSEED hardware generators (xorshift64*, Vigna 2016). The paper
// uses RDRAND for stochastic quantization (Section 4); a seeded generator
// preserves the code path while making experiments reproducible.
type Xorshift struct {
	state uint64
}

// NewXorshift seeds a generator; a zero seed is replaced (xorshift has a
// zero fixed point).
func NewXorshift(seed uint64) *Xorshift {
	if seed == 0 {
		seed = 0x2545F4914F6CDD1D
	}
	return &Xorshift{state: seed}
}

// Next64 returns the next 64 random bits.
func (x *Xorshift) Next64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Next32 returns 32 random bits.
func (x *Xorshift) Next32() uint32 { return uint32(x.Next64() >> 32) }

// Next16 returns 16 random bits.
func (x *Xorshift) Next16() uint16 { return uint16(x.Next64() >> 48) }

// Uniform returns a float64 uniformly distributed in (0, 1).
func (x *Xorshift) Uniform() float64 {
	// 53 random mantissa bits, then nudge off exact zero.
	u := x.Next64() >> 11
	f := float64(u) / (1 << 53)
	if f == 0 {
		return 0.5 / (1 << 53)
	}
	return f
}
