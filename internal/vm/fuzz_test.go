package vm

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip: encoding any float32 to half and back must stay
// within half-precision error bounds, and re-encoding the decoded value
// must be a fixed point (decode∘encode is idempotent).
func FuzzF16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1, 65504, 65520, 6e-5, 5.9e-8, 1e-9,
		float32(math.Inf(1)), float32(math.NaN()), 0.333333, -2.5} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		h := F16FromF32(x)
		back := F32FromF16(h)
		if math.IsNaN(float64(x)) {
			if !math.IsNaN(float64(back)) {
				t.Fatalf("NaN %x lost through half: %v", math.Float32bits(x), back)
			}
			return
		}
		// Idempotence: the decoded value is exactly representable.
		if h2 := F16FromF32(back); h2 != h {
			t.Fatalf("decode∘encode not idempotent: %v → %#x → %v → %#x", x, h, back, h2)
		}
		// Sign preservation for every non-NaN value.
		if math.Signbit(float64(x)) != math.Signbit(float64(back)) && back != 0 {
			t.Fatalf("sign flipped: %v → %v", x, back)
		}
	})
}

// FuzzXorshiftUniform: the RDRAND substitute must emit values strictly
// inside (0,1) for any seed.
func FuzzXorshiftUniform(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := NewXorshift(seed)
		for i := 0; i < 64; i++ {
			u := rng.Uniform()
			if u <= 0 || u >= 1 {
				t.Fatalf("Uniform() = %v with seed %d", u, seed)
			}
		}
	})
}
