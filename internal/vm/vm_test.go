package vm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/isa"
)

func mach() *Machine { return NewMachine(isa.Haswell) }

func vecF32(xs ...float32) Vec {
	var v Vec
	for i, x := range xs {
		v.SetF32(i, x)
	}
	return v
}

func vecF64(xs ...float64) Vec {
	var v Vec
	for i, x := range xs {
		v.SetF64(i, x)
	}
	return v
}

func vecI8(xs ...int8) Vec {
	var v Vec
	for i, x := range xs {
		v.SetI8(i, x)
	}
	return v
}

func vecI16(xs ...int16) Vec {
	var v Vec
	for i, x := range xs {
		v.SetI16(i, x)
	}
	return v
}

func vecI32(xs ...int32) Vec {
	var v Vec
	for i, x := range xs {
		v.SetI32(i, x)
	}
	return v
}

func call(t *testing.T, name string, args ...Value) Value {
	t.Helper()
	out, err := mach().Call(name, args...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func TestAddPs256(t *testing.T) {
	a := vecF32(1, 2, 3, 4, 5, 6, 7, 8)
	b := vecF32(10, 20, 30, 40, 50, 60, 70, 80)
	out := call(t, "_mm256_add_ps", VecValue(a), VecValue(b))
	for i := 0; i < 8; i++ {
		want := float32(11 * (i + 1))
		if out.V.F32(i) != want {
			t.Errorf("lane %d = %v, want %v", i, out.V.F32(i), want)
		}
	}
}

func TestFmaddMatchesFusedSemantics(t *testing.T) {
	// 1e8 + 1 − 1e8 loses the 1 with separate rounding but keeps it when
	// fused with a multiplier chosen to expose the difference.
	a := vecF32(1 + 0x1p-12)
	b := vecF32(1 + 0x1p-12)
	c := vecF32(-(1 + 0x1p-11))
	out := call(t, "_mm256_fmadd_ps", VecValue(a), VecValue(b), VecValue(c))
	want := float32(math.FMA(float64(a.F32(0)), float64(b.F32(0)), float64(c.F32(0))))
	if out.V.F32(0) != want {
		t.Errorf("fused result %g, want %g", out.V.F32(0), want)
	}
	sep := a.F32(0)*b.F32(0) + c.F32(0)
	if want == sep {
		t.Skip("test inputs did not expose fusion; pick better constants")
	}
}

func TestUnpackloPs(t *testing.T) {
	a := vecF32(0, 1, 2, 3, 4, 5, 6, 7)
	b := vecF32(10, 11, 12, 13, 14, 15, 16, 17)
	out := call(t, "_mm256_unpacklo_ps", VecValue(a), VecValue(b))
	want := []float32{0, 10, 1, 11, 4, 14, 5, 15}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
	out = call(t, "_mm256_unpackhi_ps", VecValue(a), VecValue(b))
	want = []float32{2, 12, 3, 13, 6, 16, 7, 17}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("hi lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
}

func TestShufflePs(t *testing.T) {
	a := vecF32(0, 1, 2, 3, 4, 5, 6, 7)
	b := vecF32(10, 11, 12, 13, 14, 15, 16, 17)
	// imm 68 = 0b01000100: a[0],a[1],b[0],b[1] per lane.
	out := call(t, "_mm256_shuffle_ps", VecValue(a), VecValue(b), IntValue(68))
	want := []float32{0, 1, 10, 11, 4, 5, 14, 15}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
	// imm 238 = 0b11101110: a[2],a[3],b[2],b[3].
	out = call(t, "_mm256_shuffle_ps", VecValue(a), VecValue(b), IntValue(238))
	want = []float32{2, 3, 12, 13, 6, 7, 16, 17}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("imm238 lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
}

func TestPermute2f128(t *testing.T) {
	a := vecF32(0, 1, 2, 3, 4, 5, 6, 7)
	b := vecF32(10, 11, 12, 13, 14, 15, 16, 17)
	// 0x20: low = a.lo, high = b.lo.
	out := call(t, "_mm256_permute2f128_ps", VecValue(a), VecValue(b), IntValue(0x20))
	want := []float32{0, 1, 2, 3, 10, 11, 12, 13}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("0x20 lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
	// 0x31: low = a.hi, high = b.hi.
	out = call(t, "_mm256_permute2f128_ps", VecValue(a), VecValue(b), IntValue(0x31))
	want = []float32{4, 5, 6, 7, 14, 15, 16, 17}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("0x31 lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
}

// TestTranspose8x8 runs the paper's Figure 5 transpose network directly
// against the vm and checks it transposes an 8×8 tile.
func TestTranspose8x8(t *testing.T) {
	m := mach()
	row := make([]Vec, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			row[r].SetF32(c, float32(r*8+c))
		}
	}
	callv := func(name string, args ...Value) Vec {
		out, err := m.Call(name, args...)
		if err != nil {
			t.Fatal(err)
		}
		return out.V
	}
	// Stage 1: unpacklo/unpackhi pairs.
	var tt []Vec
	for i := 0; i < 8; i += 2 {
		tt = append(tt,
			callv("_mm256_unpacklo_ps", VecValue(row[i]), VecValue(row[i+1])),
			callv("_mm256_unpackhi_ps", VecValue(row[i]), VecValue(row[i+1])))
	}
	// Stage 2: shuffle groups of 4.
	var ss []Vec
	for g := 0; g < 2; g++ {
		a, b, c, d := tt[4*g], tt[4*g+1], tt[4*g+2], tt[4*g+3]
		ss = append(ss,
			callv("_mm256_shuffle_ps", VecValue(a), VecValue(c), IntValue(68)),
			callv("_mm256_shuffle_ps", VecValue(a), VecValue(c), IntValue(238)),
			callv("_mm256_shuffle_ps", VecValue(b), VecValue(d), IntValue(68)),
			callv("_mm256_shuffle_ps", VecValue(b), VecValue(d), IntValue(238)))
	}
	// Stage 3: permute2f128 zip.
	var out []Vec
	for i := 0; i < 4; i++ {
		out = append(out, callv("_mm256_permute2f128_ps", VecValue(ss[i]), VecValue(ss[i+4]), IntValue(0x20)))
	}
	for i := 0; i < 4; i++ {
		out = append(out, callv("_mm256_permute2f128_ps", VecValue(ss[i]), VecValue(ss[i+4]), IntValue(0x31)))
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if got, want := out[r].F32(c), float32(c*8+r); got != want {
				t.Fatalf("transposed[%d][%d] = %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestMaddubsSignChain(t *testing.T) {
	// The 8-bit dot-product core: sign(a,b) restores signedness so
	// maddubs(|a|, sign(b,a)) accumulates a·b pairs.
	a := vecI8(-3, 5, 7, -2)
	b := vecI8(4, -6, 2, 8)
	absA := call(t, "_mm256_abs_epi8", VecValue(a))
	signB := call(t, "_mm256_sign_epi8", VecValue(b), VecValue(a))
	prod := call(t, "_mm256_maddubs_epi16", absA, signB)
	// Lane 0: |−3|·sign(4,−3) + |5|·sign(−6,5) = 3·(−4) + 5·(−6) = −42.
	if got := prod.V.I16(0); got != -42 {
		t.Errorf("maddubs pair 0 = %d, want -42", got)
	}
	// Lane 1: 7·2 + 2·(−8)... sign(8,−2) = −8 → 14 − 16 = −2.
	if got := prod.V.I16(1); got != -2 {
		t.Errorf("maddubs pair 1 = %d, want -2", got)
	}
}

func TestMaddEpi16(t *testing.T) {
	a := vecI16(100, 200, -300, 400)
	b := vecI16(7, -8, 9, 10)
	out := call(t, "_mm256_madd_epi16", VecValue(a), VecValue(b))
	if got := out.V.I32(0); got != 100*7-200*8 {
		t.Errorf("madd lane 0 = %d", got)
	}
	if got := out.V.I32(1); got != -300*9+400*10 {
		t.Errorf("madd lane 1 = %d", got)
	}
}

func TestMaddubsSaturates(t *testing.T) {
	var a, b Vec
	a.SetU8(0, 255)
	a.SetU8(1, 255)
	b.SetI8(0, 127)
	b.SetI8(1, 127)
	out := call(t, "_mm_maddubs_epi16", VecValue(a), VecValue(b))
	if got := out.V.I16(0); got != 32767 {
		t.Errorf("maddubs saturation = %d, want 32767", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	buf := PinF32([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	v := call(t, "_mm256_loadu_ps", PtrValue(buf, 1))
	if v.V.F32(0) != 2 || v.V.F32(7) != 9 {
		t.Fatalf("load at offset 1: %v…%v", v.V.F32(0), v.V.F32(7))
	}
	dst := NewBuffer(isa.PrimF32, 10)
	call(t, "_mm256_storeu_ps", PtrValue(dst, 2), v)
	if dst.F32At(2) != 2 || dst.F32At(9) != 9 {
		t.Fatal("store did not round-trip")
	}
}

func TestLoadOutOfBoundsErrors(t *testing.T) {
	buf := PinF32(make([]float32, 4))
	if _, err := mach().Call("_mm256_loadu_ps", PtrValue(buf, 0)); err == nil {
		t.Error("8-float load from 4-float buffer must error")
	}
	if _, err := mach().Call("_mm256_loadu_ps", PtrValue(buf, -1)); err == nil {
		t.Error("negative offset must error")
	}
}

func TestSet1AndSetzero(t *testing.T) {
	v := call(t, "_mm256_set1_ps", F32Value(3.5))
	for i := 0; i < 8; i++ {
		if v.V.F32(i) != 3.5 {
			t.Fatalf("set1 lane %d = %v", i, v.V.F32(i))
		}
	}
	z := call(t, "_mm256_setzero_ps")
	for i := 0; i < 8; i++ {
		if z.V.F32(i) != 0 {
			t.Fatalf("setzero lane %d = %v", i, z.V.F32(i))
		}
	}
	s := call(t, "_mm256_set_ps", F32Value(7), F32Value(6), F32Value(5),
		F32Value(4), F32Value(3), F32Value(2), F32Value(1), F32Value(0))
	for i := 0; i < 8; i++ {
		if s.V.F32(i) != float32(i) {
			t.Fatalf("set_ps lane %d = %v (args are high-first)", i, s.V.F32(i))
		}
	}
}

func TestHaddReduce(t *testing.T) {
	// Sum 8 floats with hadd+extract — the reduce pattern dot products
	// use.
	a := vecF32(1, 2, 3, 4, 5, 6, 7, 8)
	h1 := call(t, "_mm256_hadd_ps", VecValue(a), VecValue(a))
	h2 := call(t, "_mm256_hadd_ps", h1, h1)
	lo := call(t, "_mm256_castps256_ps128", h2)
	hi := call(t, "_mm256_extractf128_ps", h2, IntValue(1))
	sum := call(t, "_mm_add_ps", lo, hi)
	got := call(t, "_mm_cvtss_f32", sum)
	if got.AsFloat() != 36 {
		t.Errorf("reduce sum = %v, want 36", got.AsFloat())
	}
}

func TestCvtphRoundTrip(t *testing.T) {
	vals := []float32{0, 1, -1, 0.5, 65504, 0.0001, 3.14159, -2.71828}
	var packed Vec
	for i, x := range vals {
		packed.SetU16(i, F16FromF32(x))
	}
	out := call(t, "_mm256_cvtph_ps", VecValue(packed))
	for i, x := range vals {
		got := out.V.F32(i)
		rel := math.Abs(float64(got-x)) / math.Max(1e-9, math.Abs(float64(x)))
		if x != 0 && rel > 1e-3 {
			t.Errorf("half round-trip of %g = %g (rel err %g)", x, got, rel)
		}
	}
	back := call(t, "_mm256_cvtps_ph", out, IntValue(0))
	for i := range vals {
		if back.V.U16(i) != packed.U16(i) {
			t.Errorf("cvtps_ph lane %d = %#x, want %#x", i, back.V.U16(i), packed.U16(i))
		}
	}
}

func TestFloat16Properties(t *testing.T) {
	if F16FromF32(0) != 0 {
		t.Error("half(0) != +0")
	}
	if F16FromF32(float32(math.Inf(1))) != 0x7C00 {
		t.Error("half(+Inf) wrong")
	}
	if F32FromF16(0x7C00) != float32(math.Inf(1)) {
		t.Error("unhalf(+Inf) wrong")
	}
	if !math.IsNaN(float64(F32FromF16(0x7E00))) {
		t.Error("unhalf(NaN) wrong")
	}
	// Round-trip is exact for every representable half.
	for h := 0; h < 1<<16; h++ {
		f := F32FromF16(uint16(h))
		if math.IsNaN(float64(f)) {
			continue
		}
		if got := F16FromF32(f); got != uint16(h) {
			t.Fatalf("half %#04x → %g → %#04x", h, f, got)
		}
	}
}

func TestQuickHalfConversionMonotone(t *testing.T) {
	// Property: conversion to half never increases magnitude error beyond
	// half-ULP of the half format (2^-11 relative for normals).
	err := quick.Check(func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		if x > 65504 || x < -65504 || (x != 0 && math.Abs(float64(x)) < 6.1e-5) {
			return true // outside the half normal range
		}
		h := F16FromF32(x)
		back := F32FromF16(h)
		rel := math.Abs(float64(back-x)) / math.Abs(float64(x))
		return x == 0 || rel <= 1.0/2048
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestRdrandWritesDeterministically(t *testing.T) {
	m1, m2 := mach(), mach()
	buf1 := NewBuffer(isa.PrimU16, 1)
	buf2 := NewBuffer(isa.PrimU16, 1)
	r1, err := m1.Call("_rdrand16_step", PtrValue(buf1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.AsInt() != 1 {
		t.Error("rdrand must report success")
	}
	if _, err := m2.Call("_rdrand16_step", PtrValue(buf2, 0)); err != nil {
		t.Fatal(err)
	}
	if buf1.IntAt(0) != buf2.IntAt(0) {
		t.Error("seeded rdrand must be deterministic across machines")
	}
	// And successive draws differ.
	prev := buf1.IntAt(0)
	if _, err := m1.Call("_rdrand16_step", PtrValue(buf1, 0)); err != nil {
		t.Fatal(err)
	}
	if buf1.IntAt(0) == prev {
		t.Error("successive rdrand draws should differ")
	}
}

func TestMovemaskAndBlendv(t *testing.T) {
	a := vecF32(1, -1, 2, -2)
	mask := call(t, "_mm_cmplt_ps", VecValue(a), VecValue(Vec{}))
	bits := call(t, "_mm_movemask_ps", mask)
	if bits.AsInt() != 0b1010 {
		t.Errorf("movemask = %b, want 1010", bits.AsInt())
	}
	sel := call(t, "_mm_blendv_ps", VecValue(vecF32(0, 0, 0, 0)),
		VecValue(vecF32(9, 9, 9, 9)), mask)
	want := []float32{0, 9, 0, 9}
	for i, w := range want {
		if sel.V.F32(i) != w {
			t.Errorf("blendv lane %d = %v, want %v", i, sel.V.F32(i), w)
		}
	}
}

func TestGatherPs(t *testing.T) {
	buf := PinF32([]float32{0, 10, 20, 30, 40, 50, 60, 70, 80, 90})
	idx := vecI32(9, 0, 3, 1, 7, 2, 5, 4)
	out := call(t, "_mm256_i32gather_ps", PtrValue(buf, 0), VecValue(idx), IntValue(4))
	want := []float32{90, 0, 30, 10, 70, 20, 50, 40}
	for i, w := range want {
		if out.V.F32(i) != w {
			t.Errorf("gather lane %d = %v, want %v", i, out.V.F32(i), w)
		}
	}
}

func TestSadAndAvg(t *testing.T) {
	var a, b Vec
	for i := 0; i < 8; i++ {
		a.SetU8(i, uint8(i*10))
		b.SetU8(i, uint8(i*10+3))
	}
	out := call(t, "_mm_sad_epu8", VecValue(a), VecValue(b))
	if out.V.U64(0) != 24 {
		t.Errorf("sad = %d, want 24", out.V.U64(0))
	}
	av := call(t, "_mm_avg_epu8", VecValue(a), VecValue(b))
	if av.V.U8(0) != 2 { // (0+3+1)/2 = 2
		t.Errorf("avg lane 0 = %d, want 2", av.V.U8(0))
	}
}

func TestSaturatingAdds(t *testing.T) {
	a := vecI8(120, -120)
	b := vecI8(100, -100)
	out := call(t, "_mm_adds_epi8", VecValue(a), VecValue(b))
	if out.V.I8(0) != 127 || out.V.I8(1) != -128 {
		t.Errorf("adds_epi8 = %d,%d", out.V.I8(0), out.V.I8(1))
	}
}

func TestShiftsAndLogic(t *testing.T) {
	a := vecI32(-8, 16, -32, 64)
	sra := call(t, "_mm_srai_epi32", VecValue(a), IntValue(2))
	if sra.V.I32(0) != -2 || sra.V.I32(1) != 4 {
		t.Errorf("srai = %d,%d", sra.V.I32(0), sra.V.I32(1))
	}
	srl := call(t, "_mm_srli_epi32", VecValue(a), IntValue(2))
	if srl.V.U32(0) != 0x3FFFFFFE {
		t.Errorf("srli = %#x", srl.V.U32(0))
	}
	sll := call(t, "_mm_slli_epi32", VecValue(a), IntValue(1))
	if sll.V.I32(1) != 32 {
		t.Errorf("slli = %d", sll.V.I32(1))
	}
}

func TestCountsAccumulate(t *testing.T) {
	m := mach()
	a := VecValue(vecF32(1, 2, 3, 4, 5, 6, 7, 8))
	for i := 0; i < 5; i++ {
		if _, err := m.Call("_mm256_add_ps", a, a); err != nil {
			t.Fatal(err)
		}
	}
	if m.Counts["_mm256_add_ps"] != 5 {
		t.Errorf("count = %d, want 5", m.Counts["_mm256_add_ps"])
	}
	m.Counts.Reset()
	if m.Counts.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestUnknownIntrinsicErrors(t *testing.T) {
	if _, err := mach().Call("_mm256_definitely_not_real_ps"); err == nil {
		t.Error("unknown intrinsic must error")
	}
}

func TestImplementedCount(t *testing.T) {
	if n := ImplementedCount(); n < 300 {
		t.Errorf("only %d intrinsics have executable semantics; expected 300+", n)
	}
}

func TestQuickVecRoundTrip(t *testing.T) {
	err := quick.Check(func(xs [8]int32) bool {
		var v Vec
		for i, x := range xs {
			v.SetI32(i, x)
		}
		for i, x := range xs {
			if v.I32(i) != x {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCrc32MatchesKnownVector(t *testing.T) {
	// CRC32C of the byte 0x00 with initial CRC 0 is 0x00000000; of 0xFF
	// with 0 is 0xAD7D5351 per the Castagnoli reference tables.
	out := call(t, "_mm_crc32_u8", Value{Kind: ir.KindU32, U: 0}, IntValue(0xFF))
	if uint32(out.AsInt()) != 0xAD7D5351 {
		t.Errorf("crc32c(0xFF) = %#x, want 0xAD7D5351", uint32(out.AsInt()))
	}
}
