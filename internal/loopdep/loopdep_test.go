package loopdep

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/vm"
)

// TestSpanTablesMatchRegistry holds the byte-footprint tables to the
// live interpreter: every op they name must exist in the vm intrinsic
// registry (a renamed or removed intrinsic must not linger here with a
// stale footprint), and the direction encoded by the table must match
// the mnemonic.
func TestSpanTablesMatchRegistry(t *testing.T) {
	for op, w := range loadSpan {
		if _, ok := vm.Lookup(op); !ok {
			t.Errorf("loadSpan[%q] names an intrinsic the vm does not implement", op)
		}
		if w <= 0 || w > 64 {
			t.Errorf("loadSpan[%q] = %d bytes is not a plausible SIMD span", op, w)
		}
		if strings.Contains(op, "_store") || strings.Contains(op, "_stream_s") {
			t.Errorf("loadSpan[%q] looks like a store mnemonic", op)
		}
	}
	for op, w := range storeSpan {
		if _, ok := vm.Lookup(op); !ok {
			t.Errorf("storeSpan[%q] names an intrinsic the vm does not implement", op)
		}
		if w <= 0 || w > 64 {
			t.Errorf("storeSpan[%q] = %d bytes is not a plausible SIMD span", op, w)
		}
		if !strings.Contains(op, "store") && !strings.Contains(op, "stream") {
			t.Errorf("storeSpan[%q] does not look like a store mnemonic", op)
		}
		if _, dup := loadSpan[op]; dup {
			t.Errorf("%q appears in both span tables", op)
		}
	}
	for _, op := range []string{"_mm256_loadu_ps", "_mm256_storeu_ps"} {
		if _, _, known := intrinsicSpan(op); !known {
			t.Errorf("intrinsicSpan(%q) should be known", op)
		}
	}
	if _, _, known := intrinsicSpan("_mm256_add_ps"); known {
		t.Error("non-memory intrinsic must not have a span")
	}
}

// topLoop finds the first top-level loop node of a staged kernel.
func topLoop(t *testing.T, f *ir.Func) *ir.Node {
	t.Helper()
	for _, n := range f.G.Root().Nodes {
		if n.Def.Op == ir.OpLoop {
			return n
		}
	}
	t.Fatal("kernel has no top-level loop")
	return nil
}

// TestAnalyzeElementwise: a[i] = 2*b[i] is the canonical shardable
// loop — two affine probes, a write and a read, no reduction.
func TestAnalyzeElementwise(t *testing.T) {
	k := dsl.NewKernel("dep_elem", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamI32Ptr())
	b := k.ParamI32Ptr()
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, b.At(i).Mul(k.ConstInt(2)))
	})
	rep := Analyze(k.F, topLoop(t, k.F))
	if !rep.OK {
		t.Fatalf("elementwise loop judged serial: %s", rep.Reason)
	}
	if rep.Writes() != 1 || len(rep.Probes) != 2 {
		t.Fatalf("want 2 probes (1 write), got %d probes (%d writes)",
			len(rep.Probes), rep.Writes())
	}
	if rep.Reduce != nil {
		t.Fatalf("plain loop reported a reduction: %v", rep.Reduce)
	}
}

// TestAnalyzeIntReduction: an integer scalar accumulator is a
// whitelisted exact reduction.
func TestAnalyzeIntReduction(t *testing.T) {
	k := dsl.NewKernel("dep_isum", isa.Haswell.Features)
	b := k.ParamI32Ptr()
	n := k.ParamInt()
	sum := k.ForAccInt(k.ConstInt(0), n, 1, k.ConstInt(0),
		func(i dsl.Int, acc dsl.Int) dsl.Int {
			return acc.Add(b.At(i))
		})
	k.Return(sum)
	rep := Analyze(k.F, topLoop(t, k.F))
	if !rep.OK {
		t.Fatalf("integer sum judged serial: %s", rep.Reason)
	}
	if rep.Reduce == nil || rep.Reduce.Op != "add" || rep.Reduce.Vec {
		t.Fatalf("want scalar add reduction, got %+v", rep.Reduce)
	}
}

// TestAnalyzeFloatReductionSerial: float accumulation is never
// whitelisted — reassociating it changes rounding, and the parallel
// tier's contract is byte-identical results.
func TestAnalyzeFloatReductionSerial(t *testing.T) {
	k := dsl.NewKernel("dep_fsum", isa.Haswell.Features)
	b := k.ParamF32Ptr()
	n := k.ParamInt()
	sum := k.ForAccF32(k.ConstInt(0), n, 1, k.ConstF32(0),
		func(i dsl.Int, acc dsl.F32) dsl.F32 {
			return acc.Add(b.At(i))
		})
	k.Return(sum)
	rep := Analyze(k.F, topLoop(t, k.F))
	if rep.OK {
		t.Fatal("float accumulation must stay serial")
	}
	if !strings.Contains(rep.Reason, "reduction") && !strings.Contains(rep.Reason, "carried") {
		t.Fatalf("reason should name the carried accumulator, got %q", rep.Reason)
	}
}

// TestAnalyzeIndirectStoreSerial: a[b[i]] = i scatters through a
// data-dependent index; no static or probe-based disjointness proof
// exists, so the verdict must be serial.
func TestAnalyzeIndirectStoreSerial(t *testing.T) {
	k := dsl.NewKernel("dep_scatter", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamI32Ptr())
	b := k.ParamI32Ptr()
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(b.At(i), i)
	})
	rep := Analyze(k.F, topLoop(t, k.F))
	if rep.OK {
		t.Fatal("data-dependent store index must stay serial")
	}
}

// TestAnalyzeIndirectReadFreeRoot: reading at a data-dependent address
// (a gather) is fine as long as the gathered buffer is not written —
// the analysis records the root for the runtime distinctness check
// instead of going serial.
func TestAnalyzeIndirectReadFreeRoot(t *testing.T) {
	k := dsl.NewKernel("dep_gather", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamI32Ptr())
	b := k.ParamI32Ptr()
	idx := k.ParamI32Ptr()
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, b.At(idx.At(i)))
	})
	rep := Analyze(k.F, topLoop(t, k.F))
	if !rep.OK {
		t.Fatalf("gather-read loop judged serial: %s", rep.Reason)
	}
	if len(rep.FreeRoots) == 0 {
		t.Fatal("gather read should surface free roots for the runtime aliasing check")
	}
}

// TestAnalyzeNestedWriteSerial: a loop whose body contains another
// loop that writes has no per-iteration window the probe can bound.
func TestAnalyzeNestedWriteSerial(t *testing.T) {
	k := dsl.NewKernel("dep_nested", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamI32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		k.For(k.ConstInt(0), n, 1, func(j dsl.Int) {
			a.Set(j, i)
		})
	})
	rep := Analyze(k.F, topLoop(t, k.F))
	if rep.OK {
		t.Fatal("loop with nested writing loop must stay serial")
	}
}
