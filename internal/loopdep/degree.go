package loopdep

import "repro/internal/ir"

// degVariant marks a value that depends on per-iteration state in a way
// the address probe cannot extrapolate. The lattice mirrors the
// strength-reduction pass in kernelc (degree 0 invariant, 1 affine), but
// runs over the raw block nodes so irverify and kernelc agree without
// sharing a schedule. One deliberate difference: the probe evaluates
// address chains at concrete iterations instead of stepping them
// incrementally, so affine degrees are accepted at every integer width,
// not just i32 — the three-point linearity check catches wraparound.
const degVariant = 99

// expDegree is the degree of an operand expression.
func expDegree(e ir.Exp, iv ir.Sym, bodyDefined map[int]bool, deg map[int]int) int {
	switch x := e.(type) {
	case ir.Const:
		return 0
	case ir.Sym:
		if x.ID == iv.ID {
			return 1
		}
		if !bodyDefined[x.ID] {
			return 0 // parameters, outer-loop values: invariant here
		}
		if dg, ok := deg[x.ID]; ok {
			return dg
		}
		return degVariant
	default:
		return degVariant
	}
}

// nodeDegree computes a def's degree in the induction variable.
func nodeDegree(d *ir.Def, iv ir.Sym, bodyDefined map[int]bool, deg map[int]int) int {
	if len(d.Blocks) != 0 || !d.Effect.IsPure() {
		return degVariant
	}
	argDeg := func(e ir.Exp) int { return expDegree(e, iv, bodyDefined, deg) }
	switch d.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl, ir.OpNeg:
		// Linear-capable: degree arithmetic below.
	case ir.OpDiv, ir.OpRem, ir.OpShr, ir.OpNot, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpMin, ir.OpMax, ir.OpConv, ir.OpSel,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		// Invariant-only whitelist.
		for _, a := range d.Args {
			if argDeg(a) != 0 {
				return degVariant
			}
		}
		return 0
	case ir.OpPtrAdd:
		// Pointer chains are chased separately (ptrDegree); as a plain
		// value a ptradd inherits the displacement's degree.
		if len(d.Args) == 2 && argDeg(d.Args[0]) == 0 {
			return argDeg(d.Args[1])
		}
		return degVariant
	default:
		return degVariant
	}
	out := degVariant
	switch d.Op {
	case ir.OpAdd, ir.OpSub:
		if len(d.Args) == 2 {
			a, b := argDeg(d.Args[0]), argDeg(d.Args[1])
			out = a
			if b > out {
				out = b
			}
		}
	case ir.OpMul:
		if len(d.Args) == 2 {
			out = argDeg(d.Args[0]) + argDeg(d.Args[1])
		}
	case ir.OpShl:
		if len(d.Args) == 2 && argDeg(d.Args[1]) == 0 {
			out = argDeg(d.Args[0])
		}
	case ir.OpNeg:
		if len(d.Args) == 1 {
			out = argDeg(d.Args[0])
		}
	}
	if out > 1 {
		return degVariant
	}
	return out
}
