package loopdep

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Accumulator recognition. A ForAcc loop parallelizes only when the
// carried value is combined by an operation that is exact under
// re-association, so per-chunk partials folded in chunk order reproduce
// the serial result bit for bit:
//
//   - integer scalar add/and/or/xor (modular or idempotent — fully
//     associative and commutative at every width);
//   - integer scalar min/max (idempotent: each chunk may be seeded with
//     the loop's init value without changing the fold);
//   - lanewise integer vector adds (_mm*_add_epi*), which the paper's
//     quantized dot kernels use as vector accumulators.
//
// Floating-point accumulators never qualify: re-association changes
// rounding, and the contract is byte-identical results.

// vecAddBits maps lanewise integer vector add intrinsics to their lane
// width in bits.
var vecAddBits = map[string]int{
	"_mm_add_epi8": 8, "_mm_add_epi16": 16, "_mm_add_epi32": 32, "_mm_add_epi64": 64,
	"_mm256_add_epi8": 8, "_mm256_add_epi16": 16, "_mm256_add_epi32": 32, "_mm256_add_epi64": 64,
	"_mm512_add_epi32": 32, "_mm512_add_epi64": 64,
}

// reduction recognizes the accumulator update of a ForAcc body. It
// requires the carried symbol to flow through a single-use chain of one
// whitelisted operation ending at the block result (quantized dot
// kernels chain two vector adds per iteration), so seeding a chunk with
// the operation's identity — or the init value, for idempotent ops —
// and folding the partials afterwards is exact.
func reduction(f *ir.Func, body *ir.Block) (*Reduction, string) {
	acc := body.Params[1]
	res, ok := body.Result.(ir.Sym)
	if !ok {
		return nil, "accumulator result is not a staged node"
	}
	uses := map[int]int{}
	countBlockUses(body, uses)
	if uses[acc.ID] == 0 {
		return nil, "carried value is unused: not a recognized reduction"
	}
	if uses[acc.ID] != 1 {
		return nil, "carried value is used more than once per iteration"
	}

	red := &Reduction{Typ: acc.Typ}
	cur := acc
	for hops := 0; hops <= len(body.Nodes); hops++ {
		user := topUser(body, cur)
		if user == nil {
			return nil, "carried value escapes into a nested block"
		}
		op, vec, bits, okOp := reduceKind(user.Def, cur)
		if !okOp {
			return nil, fmt.Sprintf("carried value flows through %s, which is not an exact re-associable reduction", user.Def.Op)
		}
		if red.Op == "" {
			red.Op, red.Vec, red.ElemBits = op, vec, bits
		} else if red.Op != op {
			return nil, fmt.Sprintf("mixed operations in reduction chain (%s vs %s)", red.Op, op)
		}
		if user.Sym.ID == res.ID {
			return red, ""
		}
		if uses[user.Sym.ID] != 1 {
			return nil, "reduction chain value is used outside the chain"
		}
		cur = user.Sym
	}
	return nil, "carried value does not reach the loop result"
}

// countBlockUses tallies every symbol reference inside b, nested blocks
// included.
func countBlockUses(b *ir.Block, uses map[int]int) {
	if s, ok := b.Result.(ir.Sym); ok {
		uses[s.ID]++
	}
	for _, n := range b.Nodes {
		for _, a := range n.Def.Args {
			if s, ok := a.(ir.Sym); ok {
				uses[s.ID]++
			}
		}
		for _, blk := range n.Def.Blocks {
			countBlockUses(blk, uses)
		}
	}
}

// topUser finds the top-level body node consuming s as a direct
// argument (nil when the single use sits in a nested block or the block
// result).
func topUser(b *ir.Block, s ir.Sym) *ir.Node {
	for _, n := range b.Nodes {
		for _, a := range n.Def.Args {
			if as, ok := a.(ir.Sym); ok && as.ID == s.ID {
				return n
			}
		}
	}
	return nil
}

// reduceKind classifies one chain step: d must combine cur (appearing
// exactly once) with an iteration-local value under a whitelisted op.
func reduceKind(d *ir.Def, cur ir.Sym) (op string, vec bool, bits int, ok bool) {
	if len(d.Args) != 2 || len(d.Blocks) != 0 {
		return "", false, 0, false
	}
	hits := 0
	for _, a := range d.Args {
		if as, isSym := a.(ir.Sym); isSym && as.ID == cur.ID {
			hits++
		}
	}
	if hits != 1 {
		return "", false, 0, false
	}
	switch d.Op {
	case ir.OpAdd, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpMin, ir.OpMax:
		if d.Typ.IsInteger() {
			return d.Op, false, d.Typ.Bits(), true
		}
		return "", false, 0, false
	}
	if b, isVec := vecAddBits[d.Op]; isVec {
		return d.Op, true, b, true
	}
	return "", false, 0, false
}

// SeedsWithInit reports whether chunk partials must be seeded with the
// loop's init value (idempotent min/max) rather than the op identity.
func (r *Reduction) SeedsWithInit() bool {
	return !r.Vec && (r.Op == ir.OpMin || r.Op == ir.OpMax)
}

// String renders the reduction for diagnostics.
func (r *Reduction) String() string {
	if r.Vec {
		return fmt.Sprintf("lanewise %s", strings.TrimPrefix(r.Op, "_"))
	}
	return fmt.Sprintf("%s %s", r.Typ.GoName(), r.Op)
}
