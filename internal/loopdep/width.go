package loopdep

// Byte footprints of the memory intrinsics the interpreter implements
// (mirrors internal/vm/ops_mem.go: every access moves a fixed span
// starting at the pointer's displaced element offset). Intrinsics
// absent from both tables have data-dependent footprints — masked
// loads/stores, gathers — or unknown destinations (rdrand-style) and
// are never probed: reads fall back to root-distinctness checks,
// writes force a serial verdict. The table is cross-checked against the
// live vm registry by the package tests.

var loadSpan = map[string]int{
	"_mm_load_ss": 4, "_mm_load_ps1": 4, "_mm256_broadcast_ss": 4,
	"_mm_loaddup_pd": 8, "_mm256_broadcast_sd": 8,
	"_mm_loadu_ps": 16, "_mm_load_ps": 16,
	"_mm_loadu_pd": 16, "_mm_load_pd": 16,
	"_mm_loadu_si128": 16, "_mm_load_si128": 16, "_mm_lddqu_si128": 16,
	"_mm_stream_load_si128": 16,
	"_mm256_broadcast_ps":   16, "_mm256_broadcast_pd": 16,
	"_mm256_loadu_ps": 32, "_mm256_load_ps": 32,
	"_mm256_loadu_pd": 32, "_mm256_load_pd": 32,
	"_mm256_loadu_si256": 32, "_mm256_load_si256": 32,
	"_mm256_lddqu_si256": 32,
	"_mm512_loadu_ps":    64, "_mm512_loadu_pd": 64, "_mm512_loadu_si512": 64,
}

var storeSpan = map[string]int{
	"_mm_store_ss":  4,
	"_mm_storeu_ps": 16, "_mm_store_ps": 16, "_mm_store_ps1": 16,
	"_mm_storeu_pd": 16, "_mm_store_pd": 16, "_mm_store_pd1": 16,
	"_mm_storeu_si128": 16, "_mm_store_si128": 16, "_mm_stream_si128": 16,
	"_mm256_storeu_ps": 32, "_mm256_store_ps": 32, "_mm256_stream_ps": 32,
	"_mm256_storeu_pd": 32, "_mm256_store_pd": 32, "_mm256_stream_pd": 32,
	"_mm256_storeu_si256": 32, "_mm256_store_si256": 32,
	"_mm256_stream_si256": 32,
	"_mm512_storeu_ps":    64, "_mm512_storeu_pd": 64, "_mm512_storeu_si512": 64,
	"_mm512_storenrngo_pd": 64,
}

// intrinsicSpan returns the byte span and direction of a memory
// intrinsic, or known=false when the footprint is not statically fixed.
func intrinsicSpan(op string) (bytes int, store, known bool) {
	if w, ok := storeSpan[op]; ok {
		return w, true, true
	}
	if w, ok := loadSpan[op]; ok {
		return w, false, true
	}
	return 0, false, false
}
