// Package loopdep decides, from the staged IR alone, whether a counted
// loop's iterations can execute in parallel. It is the static half of
// the parallel execution tier: irverify runs it to explain (per loop)
// why iterations will or will not shard, and kernelc runs it to decide
// which loops get a parallel driver.
//
// The analysis is deliberately schedule-independent — it walks the raw
// block nodes, not a lowering schedule — so the verifier and the kernel
// compiler reach the same verdict from the same graph. A loop
// parallelizes when
//
//   - every memory write in the body is a "probed access": the written
//     address is affine in the loop's own induction variable (the same
//     degree lattice the strength-reduction pass uses), so the runtime
//     can evaluate the address chain at three iterations and prove the
//     per-iteration store windows disjoint;
//   - every read is a probed access, or falls back to a "free read"
//     whose root buffer the runtime checks for distinctness from all
//     written buffers (non-affine gathers, nested read-only blocks);
//   - the only value carried between iterations is the loop
//     accumulator, and the accumulator update is a whitelisted exact
//     reduction (integer scalar add/and/or/xor/min/max, or a lanewise
//     integer vector add), which the runtime re-associates into one
//     ordered partial per chunk without changing a single result bit.
//
// Anything else — an unknown store intrinsic, a write inside a nested
// block, a global effect, a floating-point accumulator — produces a
// serial verdict with a human-readable reason. The verdict is advisory:
// the parallel driver still re-checks the address arithmetic at run
// time (probing defeats wraparound and parameter aliasing) and falls
// back to the serial driver when the probe disagrees.
package loopdep

import (
	"fmt"

	"repro/internal/ir"
)

// Access is one memory access whose address is affine in the loop's
// induction variable. The runtime probe evaluates Ptr (and Idx, for
// element accesses) at three iterations to recover the concrete byte
// interval each iteration touches.
type Access struct {
	// Node is the accessing node in the loop body.
	Node *ir.Node
	// Ptr is the pointer operand (always a symbol: a parameter or a
	// ptradd chain).
	Ptr ir.Sym
	// Idx is the element-index expression for aload/astore accesses;
	// nil for intrinsic accesses, which displace the pointer directly.
	Idx ir.Exp
	// Bytes is the access width in bytes (0 for aload/astore, whose
	// width is the buffer's element size and only known at run time).
	Bytes int
	// Write reports whether the access stores.
	Write bool
}

// Reduction describes a recognized loop-carried accumulator update.
type Reduction struct {
	// Op is the reduction operation: an ir scalar op name (add, and,
	// or, xor, min, max) or a lanewise integer vector intrinsic name
	// (e.g. _mm256_add_epi32).
	Op string
	// Vec reports whether the reduction runs on a vector register.
	Vec bool
	// ElemBits is the vector lane width in bits (vector reductions).
	ElemBits int
	// Typ is the accumulator's staged type.
	Typ ir.Type
}

// Report is the analysis verdict for one loop.
type Report struct {
	// OK reports whether the loop's iterations are provably
	// independent up to the runtime probe.
	OK bool
	// Reason explains a serial verdict (empty when OK).
	Reason string
	// Probes lists the affine accesses the runtime must check.
	Probes []Access
	// FreeRoots lists root buffer symbols read at unanalyzed addresses;
	// the runtime must verify none aliases a written buffer.
	FreeRoots []ir.Sym
	// Reduce is the recognized accumulator reduction, when the loop is
	// a ForAcc (nil for plain loops and after-fold-free accumulators).
	Reduce *Reduction
}

// Writes counts the probed accesses that store.
func (r *Report) Writes() int {
	n := 0
	for _, a := range r.Probes {
		if a.Write {
			n++
		}
	}
	return n
}

func serial(format string, args ...any) Report {
	return Report{Reason: fmt.Sprintf(format, args...)}
}

// Analyze inspects one staged loop node (ir.OpLoop) of f and reports
// whether its iterations can shard.
func Analyze(f *ir.Func, loop *ir.Node) Report {
	d := loop.Def
	if d.Op != ir.OpLoop || len(d.Blocks) != 1 {
		return serial("not a counted loop")
	}
	body := d.Blocks[0]
	if len(body.Params) == 0 {
		return serial("loop body has no induction variable")
	}
	iv := body.Params[0]

	rep := Report{OK: true}
	if len(d.Args) == 4 {
		// Loop-carried accumulator: only whitelisted exact reductions
		// survive re-association into per-chunk partials.
		red, reason := reduction(f, body)
		if red == nil {
			return serial("%s", reason)
		}
		rep.Reduce = red
	}

	// Degree of every body node in the induction variable, using the
	// same lattice as the strength-reduction pass: 0 invariant, 1
	// affine, degVariant otherwise.
	bodyDefined := make(map[int]bool, len(body.Nodes)+len(body.Params))
	for _, p := range body.Params {
		bodyDefined[p.ID] = true
	}
	for _, n := range body.Nodes {
		bodyDefined[n.Sym.ID] = true
	}
	deg := make(map[int]int, len(body.Nodes))

	for _, n := range body.Nodes {
		nd := n.Def
		if nd.Op == ir.OpComment || nd.Op == ir.OpParam {
			continue
		}
		deg[n.Sym.ID] = nodeDegree(nd, iv, bodyDefined, deg)
		e := nd.Effect
		switch {
		case e.Kind == ir.Global:
			return serial("node x%d (%s) has a global side effect", n.Sym.ID, nd.Op)
		case len(nd.Blocks) > 0:
			// Nested loop or branch: writes anywhere inside force a
			// serial verdict (iteration-local scratch would need a
			// per-iteration footprint proof we do not attempt); pure
			// reads become free-read roots.
			if len(e.Writes) > 0 {
				return serial("nested block in x%d (%s) writes memory", n.Sym.ID, nd.Op)
			}
			rep.FreeRoots = append(rep.FreeRoots, e.Reads...)
		case e.IsPure():
			// No memory traffic.
		default:
			acc, free, reason := classifyAccess(f, n, iv, bodyDefined, deg)
			switch {
			case acc != nil:
				rep.Probes = append(rep.Probes, *acc)
			case free != nil:
				rep.FreeRoots = append(rep.FreeRoots, free...)
			default:
				return serial("%s", reason)
			}
		}
	}
	rep.FreeRoots = dedupSyms(rep.FreeRoots)
	return rep
}

// classifyAccess decides how one effectful straight-line node is
// handled: as a probed affine access, as free reads (root distinctness
// checked at run time), or not at all (reason explains the serial
// verdict). Writes must probe; reads may fall back.
func classifyAccess(f *ir.Func, n *ir.Node, iv ir.Sym, bodyDefined map[int]bool, deg map[int]int) (*Access, []ir.Sym, string) {
	d := n.Def
	argDeg := func(e ir.Exp) int { return expDegree(e, iv, bodyDefined, deg) }
	freeReads := func() ([]ir.Sym, string) {
		if len(d.Effect.Writes) > 0 {
			return nil, ""
		}
		return append([]ir.Sym(nil), d.Effect.Reads...), ""
	}

	switch d.Op {
	case ir.OpALoad, ir.OpAStore:
		ptr, ok := d.Args[0].(ir.Sym)
		if !ok {
			return nil, nil, fmt.Sprintf("x%d (%s) has a non-symbol pointer", n.Sym.ID, d.Op)
		}
		affine := ptrDegree(f, ptr, iv, bodyDefined, deg) <= 1 && argDeg(d.Args[1]) <= 1
		if d.Op == ir.OpALoad {
			if affine {
				return &Access{Node: n, Ptr: ptr, Idx: d.Args[1]}, nil, ""
			}
			if fr, _ := freeReads(); fr != nil {
				return nil, fr, ""
			}
			return nil, nil, fmt.Sprintf("x%d (aload) reads at a non-affine address with no root", n.Sym.ID)
		}
		if !affine {
			return nil, nil, fmt.Sprintf("x%d (astore) writes at a non-affine address", n.Sym.ID)
		}
		return &Access{Node: n, Ptr: ptr, Idx: d.Args[1], Write: true}, nil, ""
	}

	// Intrinsic with memory traffic: width table decides.
	w, isStore, known := intrinsicSpan(d.Op)
	if known {
		ptr, ok := onePtrArg(d)
		if !ok {
			return nil, nil, fmt.Sprintf("x%d (%s) has no unique pointer operand", n.Sym.ID, d.Op)
		}
		if ptrDegree(f, ptr, iv, bodyDefined, deg) <= 1 {
			return &Access{Node: n, Ptr: ptr, Bytes: w, Write: isStore}, nil, ""
		}
		if isStore {
			return nil, nil, fmt.Sprintf("x%d (%s) stores at a non-affine address", n.Sym.ID, d.Op)
		}
		if fr, _ := freeReads(); fr != nil {
			return nil, fr, ""
		}
		return nil, nil, fmt.Sprintf("x%d (%s) reads at a non-affine address with no root", n.Sym.ID, d.Op)
	}
	if len(d.Effect.Writes) > 0 {
		// Unknown store footprint (masked stores, scatters, rdrand-style
		// destination writes): cannot prove disjointness.
		return nil, nil, fmt.Sprintf("x%d (%s) writes memory with an unknown footprint", n.Sym.ID, d.Op)
	}
	if fr, _ := freeReads(); fr != nil {
		return nil, fr, ""
	}
	return nil, nil, fmt.Sprintf("x%d (%s) has an unanalyzable effect", n.Sym.ID, d.Op)
}

// ptrDegree chases a pointer symbol through body-defined ptradd nodes,
// returning the maximum degree of any displacement step (degVariant on
// a non-ptradd body definition).
func ptrDegree(f *ir.Func, ptr ir.Sym, iv ir.Sym, bodyDefined map[int]bool, deg map[int]int) int {
	out := 0
	s := ptr
	for hops := 0; hops < 64; hops++ {
		if !bodyDefined[s.ID] {
			return out // rooted outside the loop: invariant base
		}
		d, ok := f.G.Def(s)
		if !ok || d.Op != ir.OpPtrAdd {
			return degVariant
		}
		if dg := expDegree(d.Args[1], iv, bodyDefined, deg); dg > out {
			out = dg
		}
		base, ok := d.Args[0].(ir.Sym)
		if !ok {
			return degVariant
		}
		s = base
	}
	return degVariant
}

func onePtrArg(d *ir.Def) (ir.Sym, bool) {
	var ptr ir.Sym
	found := false
	for _, a := range d.Args {
		if a.Type().Kind != ir.KindPtr {
			continue
		}
		s, ok := a.(ir.Sym)
		if !ok || found {
			return ir.Sym{}, false
		}
		ptr, found = s, true
	}
	return ptr, found
}

func dedupSyms(ss []ir.Sym) []ir.Sym {
	if len(ss) < 2 {
		return ss
	}
	seen := make(map[int]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s.ID] {
			seen[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}
