package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func TestScale(t *testing.T) {
	xs := []float32{0.5, -2, 1}
	if got, want := Scale(xs, 8), float32(127)/2; got != want {
		t.Errorf("Scale 8-bit = %v, want %v", got, want)
	}
	if got, want := Scale(xs, 4), float32(7)/2; got != want {
		t.Errorf("Scale 4-bit = %v, want %v", got, want)
	}
	if Scale([]float32{0, 0}, 8) != 1 {
		t.Error("zero vector must get unit scale")
	}
}

func TestQ8RoundTripAccuracy(t *testing.T) {
	rng := vm.NewXorshift(1)
	xs := make([]float32, 500)
	for i := range xs {
		xs[i] = float32(rng.Uniform()*4 - 2)
	}
	q := QuantizeQ8(xs, rng)
	back := q.Dequantize()
	for i := range xs {
		// Stochastic rounding error < 1/scale + one step.
		if math.Abs(float64(back[i]-xs[i])) > 2/float64(q.Scale) {
			t.Fatalf("x[%d]=%v dequantized to %v (scale %v)", i, xs[i], back[i], q.Scale)
		}
	}
}

func TestQ8ValuesInRange(t *testing.T) {
	rng := vm.NewXorshift(2)
	xs := []float32{-10, 10, -10, 10, 0}
	q := QuantizeQ8(xs, rng)
	for i, v := range q.Data {
		if v > 127 || v < -127 {
			t.Errorf("q[%d] = %d out of the symmetric 8-bit range", i, v)
		}
	}
}

func TestCode4RoundTrip(t *testing.T) {
	for v := -7; v <= 7; v++ {
		if got := Decode4(Code4(v)); got != v {
			t.Errorf("Decode4(Code4(%d)) = %d", v, got)
		}
	}
	// Sign-magnitude layout per the paper: "sign-bit followed by the
	// base in binary format".
	if Code4(-3) != 0xB || Code4(3) != 0x3 {
		t.Errorf("codes: -3→%#x, 3→%#x", Code4(-3), Code4(3))
	}
}

func TestQ4PackingLayout(t *testing.T) {
	rng := vm.NewXorshift(3)
	xs := []float32{1, -1, 0.5, -0.5, 0}
	q := QuantizeQ4(xs, rng)
	if len(q.Data) != 3 {
		t.Fatalf("5 elements must pack into 3 bytes, got %d", len(q.Data))
	}
	// Element 0 in low nibble of byte 0, element 1 in high nibble.
	lo := Decode4(q.Data[0] & 0xF)
	hi := Decode4(q.Data[0] >> 4)
	if lo <= 0 || hi >= 0 {
		t.Errorf("packed signs wrong: lo=%d hi=%d", lo, hi)
	}
	back := q.Dequantize()
	if len(back) != 5 {
		t.Fatalf("dequantize length %d", len(back))
	}
	for i := range xs {
		if math.Abs(float64(back[i]-xs[i])) > 2/float64(q.Scale) {
			t.Errorf("x[%d]=%v → %v", i, xs[i], back[i])
		}
	}
}

func TestQuantizationIsStochastic(t *testing.T) {
	// With µ ~ U(0,1), quantizing 0.5 (scale 1 ⇒ q ∈ {0, 1}) must hit
	// both values.
	rng := vm.NewXorshift(4)
	xs := make([]float32, 200)
	for i := range xs {
		xs[i] = 3.5 // scale = 7/7 = ... use values mid-step
	}
	xs[0] = 7 // pins the scale to 127/7... use 8-bit
	q := QuantizeQ8(xs, rng)
	seen := map[int8]bool{}
	for _, v := range q.Data[1:] {
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("stochastic rounding produced a single value %v", q.Data[1])
	}
}

func TestQuantizeQ8UnbiasedMean(t *testing.T) {
	// Stochastic rounding is unbiased: E[q/s] = x.
	rng := vm.NewXorshift(5)
	const reps = 2000
	x := float32(0.3)
	var sum float64
	for r := 0; r < reps; r++ {
		q := QuantizeQ8([]float32{x, 1}, rng) // second element pins scale
		sum += float64(q.Data[0]) / float64(q.Scale)
	}
	mean := sum / reps
	if math.Abs(mean-float64(x)) > 0.01 {
		t.Errorf("stochastic quantization biased: mean %v, want %v", mean, x)
	}
}

func TestF16Codec(t *testing.T) {
	xs := []float32{0, 1, -2.5, 65504, 0.000061}
	h := EncodeF16(xs)
	back := h.Decode()
	for i := range xs {
		rel := math.Abs(float64(back[i]-xs[i])) / (1e-9 + math.Abs(float64(xs[i])))
		if xs[i] != 0 && rel > 1e-3 {
			t.Errorf("f16 round trip of %v = %v", xs[i], back[i])
		}
	}
}

func TestPad(t *testing.T) {
	if Pad(100, 32) != 128 || Pad(128, 32) != 128 || Pad(1, 128) != 128 {
		t.Error("Pad broken")
	}
}

func TestCheckBits(t *testing.T) {
	for _, ok := range []int{32, 16, 8, 4} {
		if err := CheckBits(ok); err != nil {
			t.Errorf("CheckBits(%d): %v", ok, err)
		}
	}
	for _, bad := range []int{0, 2, 12, 64} {
		if err := CheckBits(bad); err == nil {
			t.Errorf("CheckBits(%d) accepted", bad)
		}
	}
}

func TestQuickQ4CodesValid(t *testing.T) {
	err := quick.Check(func(seed uint64, raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				raw[i] = 0
			}
		}
		q := QuantizeQ4(raw, vm.NewXorshift(seed))
		for i := 0; i < q.N; i++ {
			c := q.Data[i/2]
			if i%2 == 1 {
				c >>= 4
			}
			v := Decode4(c & 0xF)
			if v < -7 || v > 7 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
