// Package quant implements the variable-precision data formats of the
// paper's Section 4: IEEE half-precision arrays (FP16C path), 8-bit
// two's-complement quantized arrays (Buckwild!), and the ZipML 4-bit
// sign-magnitude format packed two values per byte — all with the
// stochastic quantization rule
//
//	s_v = (2^(b-1) − 1) / max_i |v_i|,  v_i → ⌊v_i·s_v + µ⌋,  µ ~ U(0,1).
package quant

import (
	"fmt"
	"math"

	"repro/internal/vm"
)

// Scale computes the quantization scale factor s_v for b-bit precision.
func Scale(xs []float32, bits int) float32 {
	maxAbs := float32(0)
	for _, x := range xs {
		a := float32(math.Abs(float64(x)))
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return (float32(int(1)<<(bits-1)) - 1) / maxAbs
}

// quantizeValue applies the stochastic rounding rule.
func quantizeValue(x, scale float32, rng *vm.Xorshift, bits int) int {
	mu := rng.Uniform()
	q := int(math.Floor(float64(x)*float64(scale) + mu))
	limit := 1<<(bits-1) - 1
	if q > limit {
		q = limit
	}
	if q < -limit {
		q = -limit
	}
	return q
}

// Q8 is an 8-bit quantized array: one scale plus two's-complement bytes
// (the Buckwild! format).
type Q8 struct {
	Scale float32
	Data  []int8
}

// QuantizeQ8 quantizes a float vector to 8 bits.
func QuantizeQ8(xs []float32, rng *vm.Xorshift) *Q8 {
	s := Scale(xs, 8)
	out := &Q8{Scale: s, Data: make([]int8, len(xs))}
	for i, x := range xs {
		out.Data[i] = int8(quantizeValue(x, s, rng, 8))
	}
	return out
}

// Dequantize reconstructs the float approximation.
func (q *Q8) Dequantize() []float32 {
	out := make([]float32, len(q.Data))
	for i, v := range q.Data {
		out[i] = float32(v) / q.Scale
	}
	return out
}

// Q4 is a 4-bit quantized array in ZipML sign-magnitude layout: each
// byte packs two values; bit 3 is the sign, bits 0-2 the magnitude.
// Element 2j sits in byte j's low nibble, element 2j+1 in the high one.
type Q4 struct {
	Scale float32
	N     int
	Data  []uint8
}

// Code4 builds the 4-bit sign-magnitude code of a value in [-7, 7].
func Code4(v int) uint8 {
	if v < 0 {
		return 0x8 | uint8(-v)
	}
	return uint8(v)
}

// Decode4 reads a 4-bit sign-magnitude code.
func Decode4(c uint8) int {
	mag := int(c & 0x7)
	if c&0x8 != 0 {
		return -mag
	}
	return mag
}

// QuantizeQ4 quantizes a float vector to 4 bits. The element count is
// padded up to an even length internally.
func QuantizeQ4(xs []float32, rng *vm.Xorshift) *Q4 {
	s := Scale(xs, 4)
	out := &Q4{Scale: s, N: len(xs), Data: make([]uint8, (len(xs)+1)/2)}
	for i, x := range xs {
		code := Code4(quantizeValue(x, s, rng, 4))
		if i%2 == 0 {
			out.Data[i/2] |= code
		} else {
			out.Data[i/2] |= code << 4
		}
	}
	return out
}

// At returns the dequantized element i.
func (q *Q4) At(i int) float32 {
	c := q.Data[i/2]
	if i%2 == 1 {
		c >>= 4
	}
	return float32(Decode4(c&0xF)) / q.Scale
}

// Dequantize reconstructs the float approximation.
func (q *Q4) Dequantize() []float32 {
	out := make([]float32, q.N)
	for i := range out {
		out[i] = q.At(i)
	}
	return out
}

// F16 is a half-precision array (the FP16C path of Section 4.1: data
// held in 16 bits, arithmetic in 32).
type F16 struct {
	Data []uint16
}

// EncodeF16 converts floats to half precision (round-to-nearest-even,
// matching VCVTPS2PH).
func EncodeF16(xs []float32) *F16 {
	out := &F16{Data: make([]uint16, len(xs))}
	for i, x := range xs {
		out.Data[i] = vm.F16FromF32(x)
	}
	return out
}

// Decode reconstructs the float32 values.
func (h *F16) Decode() []float32 {
	out := make([]float32, len(h.Data))
	for i, v := range h.Data {
		out[i] = vm.F32FromF16(v)
	}
	return out
}

// DotError bounds the acceptable relative error of a b-bit quantized
// dot product of n elements — a coarse bound used by the tests.
func DotError(bits, n int) float64 {
	switch bits {
	case 32:
		return 1e-5
	case 16:
		return 1e-2
	case 8:
		return 0.05
	case 4:
		return 0.40
	}
	return 1
}

// Pad rounds n up to a multiple of step (the paper pads arrays to their
// dot_ps_step).
func Pad(n, step int) int {
	if n%step == 0 {
		return n
	}
	return n + step - n%step
}

// CheckBits validates a supported precision.
func CheckBits(bits int) error {
	switch bits {
	case 32, 16, 8, 4:
		return nil
	default:
		return fmt.Errorf("quant: unsupported precision %d (want 32, 16, 8 or 4)", bits)
	}
}
