package backend

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/vm"
)

// TestLookupInterpAliases: the interpreter backend is always present
// under both its canonical name and the empty default.
func TestLookupInterpAliases(t *testing.T) {
	for _, name := range []string{"", "vm"} {
		be, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if be.Name() != "vm" {
			t.Fatalf("Lookup(%q).Name() = %q", name, be.Name())
		}
		if err := be.Available(); err != nil {
			t.Fatalf("interpreter unavailable: %v", err)
		}
	}
	if _, err := Lookup("no-such-backend"); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend lookup: %v", err)
	}
}

// TestRegistryNamesAndDuplicates: registered names list "vm" first then
// sorted, and re-registering a name panics (programming error).
func TestRegistryNamesAndDuplicates(t *testing.T) {
	Register("ztest", func() Backend { return Interp{} })
	Register("atest", func() Backend { return Interp{} })
	names := Names()
	if names[0] != "vm" {
		t.Fatalf("Names()[0] = %q, want vm", names[0])
	}
	ai, zi := -1, -1
	for i, n := range names {
		switch n {
		case "atest":
			ai = i
		case "ztest":
			zi = i
		}
	}
	if ai < 0 || zi < 0 || ai > zi {
		t.Fatalf("registered names missing or unsorted: %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("ztest", func() Backend { return Interp{} })
}

// TestInterpCompileRuns: the interpreter adapter lowers and executes a
// staged kernel through the Backend interface.
func TestInterpCompileRuns(t *testing.T) {
	k := dsl.NewKernel("bump", isa.Haswell.Features)
	a := dsl.Mutable(k, k.ParamI32Ptr())
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Add(k.ConstInt(1)))
	})
	exe, err := Interp{Tier: kernelc.TierOpt}.Compile(k.F, kernelc.TierOpt)
	if err != nil {
		t.Fatal(err)
	}
	buf := vm.NewBuffer(isa.PrimI32, 4)
	m := vm.NewMachine(isa.Haswell)
	if _, err := exe.Run(m, vm.PtrValue(buf, 0), vm.IntValue(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if buf.IntAt(i) != 1 {
			t.Fatalf("a[%d] = %d, want 1", i, buf.IntAt(i))
		}
	}
}
