package native

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/dsl"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernelc"
	"repro/internal/kernels"
	"repro/internal/vm"
)

// The input-generation helpers mirror kernelc's optimizer differential
// exactly, so the native tier is held to the same ground truth as the
// interpreter tiers hold each other to.

func firstSupporting(reqs []isa.Family) *isa.Microarch {
	for _, m := range isa.Microarchs() {
		if m.Features.Has(reqs...) {
			return m
		}
	}
	return nil
}

func kernelArgs(t *testing.T, f *ir.Func, n, elems int, seed uint64) ([]vm.Value, []*vm.Buffer) {
	t.Helper()
	args, bufs, err := kernels.BuildArgs(f, n, elems, seed)
	if err != nil {
		t.Fatal(err)
	}
	return args, bufs
}

func sameValue(a, b vm.Value) bool { return a.Equal(b) }

// TestNativeDifferentialAllKernels is the native tier's acceptance
// gate: every registered kernel, at every interpreter tier and several
// sizes (including a non-multiple-of-width tail), must produce
// bit-identical results, memory contents, dynamic op counts, and error
// behavior through the plugin path.
func TestNativeDifferentialAllKernels(t *testing.T) {
	be := New()
	if err := be.Available(); err != nil {
		t.Skipf("native backend unavailable on this host: %v", err)
	}
	targets := kernels.Targets()
	if len(targets) < 18 {
		t.Fatalf("expected the full 18-kernel registry, got %d", len(targets))
	}
	for _, tgt := range targets {
		t.Run(tgt.Name, func(t *testing.T) {
			arch := firstSupporting(tgt.Requires)
			if arch == nil {
				t.Skipf("no microarchitecture supports %v", tgt.Requires)
			}
			f, err := tgt.Build(arch.Features)
			if err != nil {
				t.Fatal(err)
			}
			if err := Lowerable(f); err != nil {
				t.Fatalf("kernel is not native-lowerable: %v", err)
			}
			for _, tier := range []kernelc.Tier{kernelc.TierPlain, kernelc.TierOpt} {
				interp, err := kernelc.CompileTier(f, tier)
				if err != nil {
					t.Fatal(err)
				}
				nat, err := be.Compile(f, tier)
				if err != nil {
					t.Fatalf("native compile: %v", err)
				}
				square := strings.Contains(strings.ToLower(tgt.Name), "mmm")
				for _, n := range []int{8, 32, 33} {
					elems := n
					if square {
						elems = n * n
					}
					argsI, bufsI := kernelArgs(t, f, n, elems, 42)
					argsN, bufsN := kernelArgs(t, f, n, elems, 42)
					mI, mN := vm.NewMachine(arch), vm.NewMachine(arch)
					outI, errI := interp.Run(mI, argsI...)
					outN, errN := nat.Run(mN, argsN...)
					if (errI == nil) != (errN == nil) ||
						(errI != nil && errI.Error() != errN.Error()) {
						t.Fatalf("tier=%v n=%d: error divergence:\nvm:     %v\nnative: %v",
							tier, n, errI, errN)
					}
					if !sameValue(outI, outN) {
						t.Fatalf("tier=%v n=%d: results diverge:\nvm:     %+v\nnative: %+v",
							tier, n, outI, outN)
					}
					for i := range bufsI {
						if !bytes.Equal(bufsI[i].Data, bufsN[i].Data) {
							t.Fatalf("tier=%v n=%d: buffer %d contents diverge", tier, n, i)
						}
					}
					if !reflect.DeepEqual(mI.Counts, mN.Counts) {
						t.Fatalf("tier=%v n=%d: dynamic op counts diverge:\nvm:     %v\nnative: %v",
							tier, n, mI.Counts, mN.Counts)
					}
				}
			}
		})
	}
}

// dirStore is a minimal ArtifactStore over a directory, standing in for
// core.DiskCache's blob sidecars.
type dirStore struct{ dir string }

func (s dirStore) path(key string) string { return filepath.Join(s.dir, key+".so") }

func (s dirStore) LoadBlob(key string) (string, bool) {
	p := s.path(key)
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

func (s dirStore) StoreBlob(key string, data []byte) (string, error) {
	p := s.path(key)
	return p, os.WriteFile(p, data, 0o644)
}

// buildTestKernel stages a small kernel private to the cache tests.
// Reusing a registry kernel would collide with the differential suite:
// a plugin's identity is content-derived and can be loaded only once
// per process, so a rebuild of an already-loaded kernel from a fresh
// path would fail with "plugin already loaded".
func buildTestKernel(t *testing.T) (*ir.Func, *isa.Microarch) {
	t.Helper()
	archs := isa.Microarchs()
	if len(archs) == 0 {
		t.Skip("no microarchitectures registered")
	}
	arch := archs[0]
	k := dsl.NewKernel("cachekern", arch.Features)
	a := dsl.Mutable(k, k.ParamF32Ptr())
	b := k.ParamF32Ptr()
	s := k.ParamF32()
	n := k.ParamInt()
	k.For(k.ConstInt(0), n, 1, func(i dsl.Int) {
		a.Set(i, a.At(i).Mul(s).Add(b.At(i)))
	})
	return k.F, arch
}

// TestNativeWarmCacheZeroBuilds pins the headline property: with a
// populated artifact store, a fresh backend (fresh process simulated by
// dropping the plugin memo) compiles without invoking the Go toolchain
// at all.
func TestNativeWarmCacheZeroBuilds(t *testing.T) {
	be := New()
	if err := be.Available(); err != nil {
		t.Skipf("native backend unavailable on this host: %v", err)
	}
	f, arch := buildTestKernel(t)
	store := dirStore{dir: t.TempDir()}
	be.Store = store
	if _, err := be.Compile(f, kernelc.TierOpt); err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	if got := be.Counters()["build"]; got != 1 {
		t.Fatalf("cold compile ran %d builds, want 1", got)
	}

	// Simulate a new process: empty memo, new backend instance, same
	// store, and a go tool that cannot work — any build attempt fails.
	resetMemoForTest()
	warm := New()
	warm.Store = store
	warm.GoTool = filepath.Join(t.TempDir(), "no-such-go")
	exe, err := warm.Compile(f, kernelc.TierOpt)
	if err != nil {
		t.Fatalf("warm compile hit the toolchain: %v", err)
	}
	if got := warm.Counters()["build"]; got != 0 {
		t.Fatalf("warm compile ran %d builds, want 0", got)
	}
	if got := warm.Counters()["loadhit"]; got != 1 {
		t.Fatalf("warm compile recorded %d load hits, want 1", got)
	}
	// And the loaded artifact actually runs.
	args, _ := kernelArgs(t, f, 8, 8, 1)
	if _, err := exe.Run(vm.NewMachine(arch), args...); err != nil {
		t.Fatalf("warm-loaded kernel run: %v", err)
	}
}

// TestNativeCorruptArtifact exercises the corrupt-blob path: a store
// entry that is not a loadable plugin is dropped (and counted), and the
// backend falls through to a rebuild — which this test forces to fail,
// so the caller sees a compile error and stays on the vm.
func TestNativeCorruptArtifact(t *testing.T) {
	be := New()
	if err := be.Available(); err != nil {
		t.Skipf("native backend unavailable on this host: %v", err)
	}
	f, _ := buildTestKernel(t)
	src, err := generate(f)
	if err != nil {
		t.Fatal(err)
	}
	key := contentKey(src)
	store := dirStore{dir: t.TempDir()}
	if _, err := store.StoreBlob(key, []byte("not a plugin")); err != nil {
		t.Fatal(err)
	}
	resetMemoForTest()
	bad := New()
	bad.Store = store
	bad.GoTool = filepath.Join(t.TempDir(), "no-such-go")
	if _, err := bad.Compile(f, kernelc.TierOpt); err == nil {
		t.Fatal("compile succeeded through a corrupt blob and a broken toolchain")
	}
	if got := bad.Counters()["corrupt"]; got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if _, ok := store.LoadBlob(key); ok {
		t.Fatal("corrupt blob was not removed from the store")
	}
}

// TestNativeRunFallbackSignals pins the per-call fallback conditions:
// a machine with a cache simulator (or no machine) must route back to
// the interpreter via ErrFallback rather than running natively.
func TestNativeRunFallbackSignals(t *testing.T) {
	p := &program{name: "probe"}
	if _, err := p.Run(nil); !errors.Is(err, backend.ErrFallback) {
		t.Fatalf("nil machine: got %v, want ErrFallback", err)
	}
}
