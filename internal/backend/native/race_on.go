//go:build race

package native

// See race_off.go; under -race the plugin ABI does not match and the
// backend reports unavailable.
const raceEnabled = true
