package native

import (
	"fmt"

	"repro/internal/ir"
)

// loadWidth / storeWidth give the register width in bytes for the
// memory intrinsics the registered kernels use. Anything absent from
// these maps and the switch below is simply not native-lowerable and
// stays on the vm interpreter — the emitter set grows with the kernel
// suite, not with the vm's full intrinsic catalogue.
var loadWidth = map[string]int{
	"_mm_loadu_ps":       16,
	"_mm_loadu_si128":    16,
	"_mm256_loadu_ps":    32,
	"_mm256_loadu_si256": 32,
	"_mm512_loadu_ps":    64,
}

var storeWidth = map[string]int{
	"_mm_storeu_ps":    16,
	"_mm256_storeu_ps": 32,
}

func (g *gen) intrinsic(n *ir.Node) error {
	d := n.Def
	name := d.Op
	id := n.Sym.ID
	x := vname(n.Sym)
	vecArg := func(i int) (string, error) {
		s, ok := d.Args[i].(ir.Sym)
		if !ok || s.Typ.Kind != ir.KindVec {
			return "", fmt.Errorf("%s: argument %d is not a vector register", name, i)
		}
		return vname(s), nil
	}
	immArg := func(i int) (string, error) {
		e, err := g.asInt(d.Args[i])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("int(%s)", e), nil
	}
	// wrapErr emits the interpreter's intrinsic error wrapping: the vm's
	// runtime error prefixed with the intrinsic name (kernelc then adds
	// the "kernelc: <kernel>:" outer layer on the host side).
	wrapErr := func() {
		g.p("if e%d != nil {", id)
		g.ind++
		g.p("err = fmt.Errorf(%q, e%d)", name+": %w", id)
		g.p("return")
		g.ind--
		g.p("}")
	}
	emit := func(expr string) {
		g.p("%s := %s", x, expr)
		g.p("_ = %s", x)
	}

	if bytes, ok := loadWidth[name]; ok {
		ps, err := ptrArg(d.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		es := ps.Typ.Elem.Bits() / 8
		g.p("%s, e%d := loadv(%s, %d, %s, %d)", x, id, pd(ps), es, po(ps), bytes)
		wrapErr()
		g.p("_ = %s", x)
		return nil
	}
	if bytes, ok := storeWidth[name]; ok {
		ps, err := ptrArg(d.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		es := ps.Typ.Elem.Bits() / 8
		v, err := vecArg(1)
		if err != nil {
			return err
		}
		g.p("e%d := storev(%s, %d, %s, %s, %d)", id, pd(ps), es, po(ps), v, bytes)
		wrapErr()
		return nil
	}

	// Single-vector-arg helpers.
	un := func(fn string, bits int) error {
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		if bits == 0 {
			emit(fmt.Sprintf("%s(%s)", fn, a))
		} else {
			emit(fmt.Sprintf("%s(%d, %s)", fn, bits, a))
		}
		return nil
	}
	bin := func(fn string, bits int) error {
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("%s(%d, %s, %s)", fn, bits, a, b))
		return nil
	}
	binImm := func(fn string, bits int) error {
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		imm, err := immArg(2)
		if err != nil {
			return err
		}
		if bits == 0 {
			emit(fmt.Sprintf("%s(%s, %s, %s)", fn, a, b, imm))
		} else {
			emit(fmt.Sprintf("%s(%d, %s, %s, %s)", fn, bits, a, b, imm))
		}
		return nil
	}

	switch name {
	case "_mm256_broadcast_ss":
		ps, err := ptrArg(d.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		g.p("%s, e%d := bcastss(%s, %s)", x, id, pd(ps), po(ps))
		wrapErr()
		g.p("_ = %s", x)
		return nil

	case "_mm_add_ps":
		return bin("addps", 128)
	case "_mm256_add_ps":
		return bin("addps", 256)
	case "_mm256_sub_ps":
		return bin("subps", 256)
	case "_mm_mul_ps":
		return bin("mulps", 128)
	case "_mm256_mul_ps":
		return bin("mulps", 256)
	case "_mm256_div_ps":
		return bin("divps", 256)

	case "_mm256_fmadd_ps", "_mm512_fmadd_ps":
		bits := 256
		if name == "_mm512_fmadd_ps" {
			bits = 512
		}
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		c, err := vecArg(2)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("fmaddps(%d, %s, %s, %s)", bits, a, b, c))
		return nil

	case "_mm_set1_ps", "_mm256_set1_ps", "_mm512_set1_ps":
		bits := map[string]int{"_mm_set1_ps": 128, "_mm256_set1_ps": 256, "_mm512_set1_ps": 512}[name]
		f, err := g.asFloat(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1ps(%d, %s)", bits, f))
		return nil
	case "_mm256_set1_epi8":
		i, err := g.asInt(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1epi8(256, %s)", i))
		return nil
	case "_mm256_set1_epi16":
		i, err := g.asInt(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1epi16(256, %s)", i))
		return nil

	case "_mm256_setzero_ps", "_mm256_setzero_si256", "_mm512_setzero_ps":
		emit("vec{}")
		return nil

	case "_mm256_and_si256":
		return bin("bitand", 256)
	case "_mm256_or_si256":
		return bin("bitor", 256)
	case "_mm256_cmpeq_epi8":
		return bin("cmpeqepi8", 256)
	case "_mm256_abs_epi8":
		return un("absepi8", 256)
	case "_mm256_sign_epi8":
		return bin("signepi8", 256)
	case "_mm256_add_epi32":
		return bin("addepi32", 256)
	case "_mm256_madd_epi16":
		return bin("maddepi16", 256)
	case "_mm256_maddubs_epi16":
		return bin("maddubsepi16", 256)

	case "_mm256_srli_epi16":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		imm, err := immArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("srliepi16(256, %s, %s)", a, imm))
		return nil

	case "_mm256_shuffle_epi8":
		return bin("shufepi8", 256)
	case "_mm256_shuffle_ps":
		return binImm("shufps", 256)
	case "_mm256_hadd_ps":
		return bin("haddps", 256)
	case "_mm256_permute2f128_ps":
		return binImm("perm2f128", 0)

	case "_mm256_extractf128_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		imm, err := immArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("extractf128(%s, %s)", a, imm))
		return nil

	case "_mm256_unpacklo_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("unpck(256, 4, true, %s, %s)", a, b))
		return nil
	case "_mm256_unpackhi_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("unpck(256, 4, false, %s, %s)", a, b))
		return nil

	case "_mm256_broadcastsi128_si256":
		return un("bsi128", 0)
	case "_mm256_castps256_ps128":
		// Reinterpreting cast: the vm passes the full register through.
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		emit(a)
		return nil
	case "_mm256_cvtepi32_ps":
		return un("cvtepi32ps", 256)
	case "_mm256_cvtph_ps":
		return un("cvtphps", 0)
	case "_mm256_exp_ps":
		return un("expps", 256)

	case "_mm_cvtss_f32":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("float64(%s.f32(0))", a))
		return nil
	case "_mm512_reduce_add_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("reduceaddps(%s)", a))
		return nil
	}
	return fmt.Errorf("intrinsic %s has no native emitter (stays on vm)", name)
}
