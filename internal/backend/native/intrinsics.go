package native

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// loadWidth / storeWidth give the register width in bytes for the
// memory intrinsics the registered kernels use. Anything absent from
// these maps and the switch below is simply not native-lowerable and
// stays on the vm interpreter — the emitter set grows with the kernel
// suite, not with the vm's full intrinsic catalogue.
var loadWidth = map[string]int{
	"_mm_loadu_ps":       16,
	"_mm_loadu_pd":       16,
	"_mm_loadu_si128":    16,
	"_mm256_loadu_ps":    32,
	"_mm256_loadu_pd":    32,
	"_mm256_loadu_si256": 32,
	"_mm512_loadu_ps":    64,
	// The vm treats aligned loads identically to unaligned ones (the
	// simulated machine has no alignment faults), so they share loadv.
	"_mm_load_ps":    16,
	"_mm_load_pd":    16,
	"_mm256_load_ps": 32,
	"_mm256_load_pd": 32,
}

var storeWidth = map[string]int{
	"_mm_storeu_ps":    16,
	"_mm_storeu_pd":    16,
	"_mm256_storeu_ps": 32,
	"_mm256_storeu_pd": 32,
	"_mm_store_ps":     16,
	"_mm_store_pd":     16,
	"_mm256_store_ps":  32,
	"_mm256_store_pd":  32,
}

// laneHelper maps a packed-float lane op (stem + precision suffix,
// prefix stripped) to its prelude helper. Both 128- and 256-bit forms
// share one helper parameterized on the register width; the bitwise
// helpers are precision-blind (they run over raw register bytes, as
// the vm's regBitwise does).
var laneHelper = map[string]struct {
	fn    string
	arity int
}{
	"add_ps": {"addps", 2}, "sub_ps": {"subps", 2},
	"mul_ps": {"mulps", 2}, "div_ps": {"divps", 2},
	"min_ps": {"minps", 2}, "max_ps": {"maxps", 2},
	"sqrt_ps": {"sqrtps", 1},
	"add_pd":  {"addpd", 2}, "sub_pd": {"subpd", 2},
	"mul_pd": {"mulpd", 2}, "div_pd": {"divpd", 2},
	"min_pd": {"minpd", 2}, "max_pd": {"maxpd", 2},
	"sqrt_pd":  {"sqrtpd", 1},
	"fmadd_ps": {"fmaddps", 3}, "fmsub_ps": {"fmsubps", 3},
	"fnmadd_ps": {"fnmaddps", 3}, "fnmsub_ps": {"fnmsubps", 3},
	"fmadd_pd": {"fmaddpd", 3}, "fmsub_pd": {"fmsubpd", 3},
	"fnmadd_pd": {"fnmaddpd", 3}, "fnmsub_pd": {"fnmsubpd", 3},
	"and_ps": {"bitand", 2}, "or_ps": {"bitor", 2},
	"xor_ps": {"bitxor", 2}, "andnot_ps": {"bitandnot", 2},
	"and_pd": {"bitand", 2}, "or_pd": {"bitor", 2},
	"xor_pd": {"bitxor", 2}, "andnot_pd": {"bitandnot", 2},
}

// laneOp resolves an intrinsic name against laneHelper, returning the
// register width its prefix implies.
func laneOp(name string) (fn string, arity, bits int, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(name, "_mm256_"):
		bits, rest = 256, name[len("_mm256_"):]
	case strings.HasPrefix(name, "_mm_"):
		bits, rest = 128, name[len("_mm_"):]
	default:
		return "", 0, 0, false
	}
	h, ok := laneHelper[rest]
	return h.fn, h.arity, bits, ok
}

func (g *gen) intrinsic(n *ir.Node) error {
	d := n.Def
	name := d.Op
	id := n.Sym.ID
	x := vname(n.Sym)
	vecArg := func(i int) (string, error) {
		s, ok := d.Args[i].(ir.Sym)
		if !ok || s.Typ.Kind != ir.KindVec {
			return "", fmt.Errorf("%s: argument %d is not a vector register", name, i)
		}
		return vname(s), nil
	}
	immArg := func(i int) (string, error) {
		e, err := g.asInt(d.Args[i])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("int(%s)", e), nil
	}
	// wrapErr emits the interpreter's intrinsic error wrapping: the vm's
	// runtime error prefixed with the intrinsic name (kernelc then adds
	// the "kernelc: <kernel>:" outer layer on the host side).
	wrapErr := func() {
		g.p("if e%d != nil {", id)
		g.ind++
		g.p("err = fmt.Errorf(%q, e%d)", name+": %w", id)
		g.p("return")
		g.ind--
		g.p("}")
	}
	emit := func(expr string) {
		g.p("%s := %s", x, expr)
		g.p("_ = %s", x)
	}

	if bytes, ok := loadWidth[name]; ok {
		ps, err := ptrArg(d.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		es := ps.Typ.Elem.Bits() / 8
		g.p("%s, e%d := loadv(%s, %d, %s, %d)", x, id, pd(ps), es, po(ps), bytes)
		wrapErr()
		g.p("_ = %s", x)
		return nil
	}
	if bytes, ok := storeWidth[name]; ok {
		ps, err := ptrArg(d.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		es := ps.Typ.Elem.Bits() / 8
		v, err := vecArg(1)
		if err != nil {
			return err
		}
		g.p("e%d := storev(%s, %d, %s, %s, %d)", id, pd(ps), es, po(ps), v, bytes)
		wrapErr()
		return nil
	}

	// Single-vector-arg helpers.
	un := func(fn string, bits int) error {
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		if bits == 0 {
			emit(fmt.Sprintf("%s(%s)", fn, a))
		} else {
			emit(fmt.Sprintf("%s(%d, %s)", fn, bits, a))
		}
		return nil
	}
	bin := func(fn string, bits int) error {
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("%s(%d, %s, %s)", fn, bits, a, b))
		return nil
	}
	binImm := func(fn string, bits int) error {
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		imm, err := immArg(2)
		if err != nil {
			return err
		}
		if bits == 0 {
			emit(fmt.Sprintf("%s(%s, %s, %s)", fn, a, b, imm))
		} else {
			emit(fmt.Sprintf("%s(%d, %s, %s, %s)", fn, bits, a, b, imm))
		}
		return nil
	}

	// Packed-float lane arithmetic, shared across widths and precisions.
	if fn, arity, bits, ok := laneOp(name); ok {
		switch arity {
		case 1:
			return un(fn, bits)
		case 2:
			return bin(fn, bits)
		default:
			a, err := vecArg(0)
			if err != nil {
				return err
			}
			b, err := vecArg(1)
			if err != nil {
				return err
			}
			c, err := vecArg(2)
			if err != nil {
				return err
			}
			emit(fmt.Sprintf("%s(%d, %s, %s, %s)", fn, bits, a, b, c))
			return nil
		}
	}

	switch name {
	case "_mm256_broadcast_ss":
		ps, err := ptrArg(d.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		g.p("%s, e%d := bcastss(%s, %s)", x, id, pd(ps), po(ps))
		wrapErr()
		g.p("_ = %s", x)
		return nil

	case "_mm512_fmadd_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		c, err := vecArg(2)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("fmaddps(512, %s, %s, %s)", a, b, c))
		return nil

	case "_mm_set1_ps", "_mm256_set1_ps", "_mm512_set1_ps":
		bits := map[string]int{"_mm_set1_ps": 128, "_mm256_set1_ps": 256, "_mm512_set1_ps": 512}[name]
		f, err := g.asFloat(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1ps(%d, %s)", bits, f))
		return nil
	case "_mm_set1_pd", "_mm256_set1_pd":
		bits := map[string]int{"_mm_set1_pd": 128, "_mm256_set1_pd": 256}[name]
		f, err := g.asFloat(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1pd(%d, %s)", bits, f))
		return nil
	case "_mm256_set1_epi8":
		i, err := g.asInt(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1epi8(256, %s)", i))
		return nil
	case "_mm256_set1_epi16":
		i, err := g.asInt(d.Args[0])
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("set1epi16(256, %s)", i))
		return nil

	case "_mm256_setzero_ps", "_mm256_setzero_si256", "_mm512_setzero_ps":
		emit("vec{}")
		return nil

	case "_mm256_and_si256":
		return bin("bitand", 256)
	case "_mm256_or_si256":
		return bin("bitor", 256)
	case "_mm256_cmpeq_epi8":
		return bin("cmpeqepi8", 256)
	case "_mm256_abs_epi8":
		return un("absepi8", 256)
	case "_mm256_sign_epi8":
		return bin("signepi8", 256)
	case "_mm256_add_epi32":
		return bin("addepi32", 256)
	case "_mm256_madd_epi16":
		return bin("maddepi16", 256)
	case "_mm256_maddubs_epi16":
		return bin("maddubsepi16", 256)

	case "_mm256_srli_epi16":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		imm, err := immArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("srliepi16(256, %s, %s)", a, imm))
		return nil

	case "_mm256_shuffle_epi8":
		return bin("shufepi8", 256)
	case "_mm256_shuffle_ps":
		return binImm("shufps", 256)
	case "_mm256_hadd_ps":
		return bin("haddps", 256)
	case "_mm256_permute2f128_ps":
		return binImm("perm2f128", 0)

	case "_mm256_extractf128_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		imm, err := immArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("extractf128(%s, %s)", a, imm))
		return nil

	case "_mm256_unpacklo_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("unpck(256, 4, true, %s, %s)", a, b))
		return nil
	case "_mm256_unpackhi_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		b, err := vecArg(1)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("unpck(256, 4, false, %s, %s)", a, b))
		return nil

	case "_mm256_broadcastsi128_si256":
		return un("bsi128", 0)
	case "_mm256_castps256_ps128":
		// Reinterpreting cast: the vm passes the full register through.
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		emit(a)
		return nil
	case "_mm256_cvtepi32_ps":
		return un("cvtepi32ps", 256)
	case "_mm256_cvtph_ps":
		return un("cvtphps", 0)
	case "_mm256_exp_ps":
		return un("expps", 256)

	case "_mm_cvtss_f32":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("float64(%s.f32(0))", a))
		return nil
	case "_mm512_reduce_add_ps":
		a, err := vecArg(0)
		if err != nil {
			return err
		}
		emit(fmt.Sprintf("reduceaddps(%s)", a))
		return nil
	}
	return fmt.Errorf("intrinsic %s has no native emitter (stays on vm)", name)
}
