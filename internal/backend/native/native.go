// Package native is the plugin-compiled execution backend: it
// specializes a staged SIMD graph into standalone Go source (the lane
// loops monomorphized, the interpreter's dispatch gone), builds it with
// the real Go toolchain as -buildmode=plugin, loads it in-process, and
// memoizes the built artifact in the compile cache so warm runs pay
// zero build cost. This is the reproduction's analogue of the paper's
// LMS→C→JNI pipeline, using Go's own native toolchain in place of icc.
//
// Semantics are bit-identical to the vm interpreter at every tier:
// results, memory writes, dynamic op counts, and error text all match
// (gated by the 18-kernel differential suite). Calls the plugin cannot
// serve faithfully — a machine with a cache simulator attached needs
// the interpreter's per-access Touch stream — return
// backend.ErrFallback and are transparently re-run on the vm.
package native

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/cgen"
	"repro/internal/ir"
	"repro/internal/kernelc"
	"repro/internal/vm"
)

func init() {
	backend.Register("native", func() backend.Backend { return New() })
}

// Backend builds and runs native plugin kernels. The zero value is
// usable; New is the conventional constructor. Not a singleton: each
// instance carries its own counters, but the loaded-plugin memo is
// process-wide (plugins cannot be unloaded).
type Backend struct {
	// Store persists built artifacts across processes (the compile
	// cache's blob sidecars). Nil means build-per-process.
	Store backend.ArtifactStore
	// GoTool overrides the go binary used for plugin builds. Empty
	// means auto-detect via cgen.FindGo. Tests point this at a
	// nonexistent file to force the build path to fail.
	GoTool string

	build   atomic.Int64 // plugin builds actually run
	loadhit atomic.Int64 // compiles served without a build (memo or blob)
	corrupt atomic.Int64 // artifacts that failed to load and were dropped
}

// New returns a backend with no artifact store attached.
func New() *Backend { return &Backend{} }

// SetStore attaches an artifact store (backend.StoreAware); the runtime
// points this at its disk cache so plugin objects survive the process.
func (b *Backend) SetStore(s backend.ArtifactStore) { b.Store = s }

// Name identifies the backend in cache keys and obs counters.
func (b *Backend) Name() string { return "native" }

// Counters exposes build/load statistics for obs gauge publication
// (core.PublishMetrics picks this up via an optional interface).
func (b *Backend) Counters() map[string]int64 {
	return map[string]int64{
		"build":   b.build.Load(),
		"loadhit": b.loadhit.Load(),
		"corrupt": b.corrupt.Load(),
	}
}

// Available reports whether this host can build and load plugins.
func (b *Backend) Available() error {
	if raceEnabled {
		return errors.New("native: race-instrumented hosts cannot load plugins")
	}
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd":
	default:
		return fmt.Errorf("native: -buildmode=plugin is unsupported on %s", runtime.GOOS)
	}
	if _, err := b.tool(); err != nil {
		return err
	}
	return nil
}

func (b *Backend) tool() (string, error) {
	if b.GoTool != "" {
		return b.GoTool, nil
	}
	return cgen.FindGo()
}

// Compile lowers the function to plugin code. The tier is accepted for
// interface symmetry but does not change the artifact: kernel semantics
// are tier-invariant (the optimizer differential suite pins plain and
// opt to identical observables), so both tiers share one plugin.
func (b *Backend) Compile(f *ir.Func, _ kernelc.Tier) (backend.Executable, error) {
	src, err := generate(f)
	if err != nil {
		return nil, err
	}
	fn, err := b.resolve(contentKey(src), src)
	if err != nil {
		return nil, err
	}
	resKind := ir.KindVoid
	if r := f.G.Root().Result; r != nil {
		resKind = r.Type().Kind
	}
	return &program{fn: fn, name: f.Name, params: f.Params, resKind: resKind}, nil
}

// CompileCached serves a compile only when the plugin is already built:
// process memo first, then the artifact store. It never invokes the Go
// toolchain, so the execution planner can call it from inside a
// measured run to see whether the native strategy is admissible without
// perturbing timings. Lowering to source still happens (it is the
// content key), but that is pure computation with no I/O.
func (b *Backend) CompileCached(f *ir.Func, _ kernelc.Tier) (backend.Executable, bool) {
	if b.Available() != nil {
		return nil, false
	}
	src, err := generate(f)
	if err != nil {
		return nil, false
	}
	key := contentKey(src)
	memoMu.Lock()
	fn, ok := memo[key]
	if !ok && b.Store != nil {
		if path, have := b.Store.LoadBlob(key); have {
			if loaded, lerr := openPlugin(path); lerr == nil {
				fn, ok = loaded, true
				memo[key] = fn
			}
		}
	}
	if ok {
		b.loadhit.Add(1)
	}
	memoMu.Unlock()
	if !ok {
		return nil, false
	}
	resKind := ir.KindVoid
	if r := f.G.Root().Result; r != nil {
		resKind = r.Type().Kind
	}
	return &program{fn: fn, name: f.Name, params: f.Params, resKind: resKind}, true
}

// resolve turns a content key into a callable entry point: process memo
// first, then the artifact store, then a real build. Single-flight
// under memoMu — concurrent builds of the same key from different temp
// paths would trip Go's "plugin already loaded" check.
func (b *Backend) resolve(key, src string) (runFn, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	if fn, ok := memo[key]; ok {
		b.loadhit.Add(1)
		return fn, nil
	}
	if b.Store != nil {
		if path, ok := b.Store.LoadBlob(key); ok {
			fn, err := openPlugin(path)
			if err == nil {
				b.loadhit.Add(1)
				memo[key] = fn
				return fn, nil
			}
			// Corrupt or stale artifact: drop it and rebuild below.
			os.Remove(path)
			b.corrupt.Add(1)
		}
	}
	tool, err := b.tool()
	if err != nil {
		return nil, err
	}
	data, err := buildPlugin(tool, src, key)
	if err != nil {
		return nil, err
	}
	b.build.Add(1)
	var path string
	if b.Store != nil {
		if path, err = b.Store.StoreBlob(key, data); err != nil {
			return nil, err
		}
	} else {
		// No store: park the object in a temp dir for the process
		// lifetime (it cannot be deleted while mapped anyway).
		dir, err := os.MkdirTemp("", "ngen-native-run-")
		if err != nil {
			return nil, err
		}
		path = filepath.Join(dir, key+".so")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
	}
	fn, err := openPlugin(path)
	if err != nil {
		return nil, err
	}
	memo[key] = fn
	return fn, nil
}

// program is one compiled kernel: the host-side wrapper that marshals
// vm.Values across the plugin ABI and reconstructs the interpreter's
// exact observable behavior.
type program struct {
	fn      runFn
	name    string
	params  []ir.Sym
	resKind ir.Kind
}

// Run executes the plugin. Calls it cannot serve identically to the
// interpreter return backend.ErrFallback; genuine kernel faults come
// back with the interpreter's error text.
func (p *program) Run(m *vm.Machine, args ...vm.Value) (vm.Value, error) {
	if m == nil || m.Cache != nil {
		// The cache simulator consumes the interpreter's per-access
		// Touch stream, which compiled code does not emit.
		return vm.Value{}, backend.ErrFallback
	}
	if len(args) != len(p.params) {
		return vm.Value{}, fmt.Errorf("kernelc: %s: got %d arguments, want %d", p.name, len(args), len(p.params))
	}
	flat := make([]any, 0, len(p.params)+2)
	for i, prm := range p.params {
		a := args[i]
		if prm.Typ.Kind == ir.KindPtr {
			if a.Mem == nil || a.Mem.Prim != prm.Typ.Elem {
				return vm.Value{}, backend.ErrFallback
			}
			flat = append(flat, a.Mem.Data, int64(a.Off))
			continue
		}
		if a.Kind != prm.Typ.Kind {
			return vm.Value{}, backend.ErrFallback
		}
		switch prm.Typ.Kind {
		case ir.KindBool:
			flat = append(flat, a.B)
		case ir.KindF32, ir.KindF64:
			flat = append(flat, a.F)
		case ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
			flat = append(flat, a.U)
		default:
			flat = append(flat, a.I)
		}
	}
	res, cnts, err := p.fn(flat)
	// Partial counts are merged even on error, exactly like the
	// interpreter's already-flushed loop counts on a mid-kernel fault.
	m.Counts.Merge(vm.Counter(cnts))
	if err != nil {
		return vm.Value{}, fmt.Errorf("kernelc: %s: %w", p.name, err)
	}
	switch p.resKind {
	case ir.KindVoid:
		return vm.Value{}, nil
	case ir.KindBool:
		return vm.Value{Kind: ir.KindBool, B: res.(bool)}, nil
	case ir.KindF32, ir.KindF64:
		return vm.Value{Kind: p.resKind, F: res.(float64)}, nil
	case ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
		return vm.Value{Kind: p.resKind, U: res.(uint64)}, nil
	default:
		return vm.Value{Kind: p.resKind, I: res.(int64)}, nil
	}
}
