package native

import (
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"runtime"
	"sync"
)

// runFn is the plugin entry point's shape: flattened arguments in,
// boxed result + dynamic count vector + error out. Counts accumulated
// so far are returned even when err is non-nil (the host merges them
// before inspecting the error, matching the interpreter's partial-count
// behavior on mid-kernel faults).
type runFn func(args []any) (any, map[string]int64, error)

// contentKey fingerprints generated source together with the toolchain
// that will compile it: same source + same Go version/OS/arch → same
// artifact. The key is deliberately tier-independent — kernel semantics
// are tier-invariant, so both interpreter tiers share one plugin.
func contentKey(src string) string {
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte(runtime.Version()))
	h.Write([]byte(runtime.GOOS))
	h.Write([]byte(runtime.GOARCH))
	return fmt.Sprintf("%016x", h.Sum64())
}

// A loaded plugin can never be unloaded, and opening the same
// pluginpath from a *different* file path is an error — so resolution
// is memoized process-wide on the content key, and blobs are always
// opened through their canonical store path.
var (
	memoMu sync.Mutex
	memo   = map[string]runFn{}
)

// resetMemoForTest drops the process-wide key→fn memo so tests can
// exercise the disk-blob load path. The underlying plugins stay mapped
// (Go plugins cannot unload); reopening the same canonical path is a
// cheap no-op that returns the already-loaded plugin.
func resetMemoForTest() {
	memoMu.Lock()
	defer memoMu.Unlock()
	memo = map[string]runFn{}
}

// openPlugin loads the artifact at path and resolves its Run symbol.
func openPlugin(path string) (runFn, error) {
	p, err := plugin.Open(path)
	if err != nil {
		return nil, err
	}
	sym, err := p.Lookup("Run")
	if err != nil {
		return nil, err
	}
	fn, ok := sym.(func([]any) (any, map[string]int64, error))
	if !ok {
		return nil, fmt.Errorf("native: plugin Run has wrong type %T", sym)
	}
	return fn, nil
}

// buildPlugin compiles src with the go tool into a plugin object and
// returns the object bytes. The source is stdlib-only, so it builds in
// a bare temp dir outside any module. The go tool assigns file-argument
// plugins the identity plugin/unnamed-<contenthash>, which is
// deterministic for fixed source and toolchain — two builds of the
// same generated source are interchangeable. (Overriding it with an
// -ldflags=-pluginpath is a trap: the linker still renames the
// exported symbols under the computed default, so Lookup on the
// overridden path finds nothing.)
func buildPlugin(goTool, src, key string) ([]byte, error) {
	dir, err := os.MkdirTemp("", "ngen-native-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srcPath := filepath.Join(dir, "kernel.go")
	if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
		return nil, err
	}
	out := filepath.Join(dir, "kernel.so")
	cmd := exec.Command(goTool, "build", "-buildmode=plugin", "-o", out, srcPath)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GO111MODULE=off", "CGO_ENABLED=1")
	if msg, err := cmd.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("native: go build failed: %v\n%s", err, msg)
	}
	return os.ReadFile(out)
}
