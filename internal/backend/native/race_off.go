//go:build !race

package native

// raceEnabled reports whether this binary carries race instrumentation.
// A race-instrumented host cannot load plugins built without it, so the
// native backend declares itself unavailable under -race rather than
// failing at plugin.Open time.
const raceEnabled = false
