package native

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/kernelc"
)

// generate specializes a staged function into standalone Go plugin
// source. The walk mirrors kernelc's compile pass over the same
// ir.Schedule: identical node order, identical error strings, identical
// static count vectors (flushed per block, scaled by trip counts), so
// the plugin's results, memory writes, and dynamic op counts are
// byte-identical to the interpreter at every tier. (The plain and
// optimized interpreter tiers already agree on all observables — the
// optimizer differential suite pins that — so one generated form
// matches both.)
//
// A non-nil error means the function is not native-lowerable; the error
// text is the reason reported by ngen vet's "native" pass and by the
// runtime's fallback notice.
func generate(f *ir.Func) (string, error) {
	g := &gen{f: f, sched: ir.Schedule(f)}
	var b strings.Builder
	b.WriteString(prelude)
	b.WriteString("\n// Run executes kernel ")
	b.WriteString(f.Name)
	b.WriteString(".\nfunc Run(args []any) (res any, cnt map[string]int64, err error) {\n")
	g.ind = 1
	g.p("cnt = map[string]int64{}")
	slot := 0
	for _, prm := range f.Params {
		switch prm.Typ.Kind {
		case ir.KindPtr:
			if !supportedElem(prm.Typ.Elem) {
				return "", fmt.Errorf("parameter %s: unsupported element type %v", prm, prm.Typ.Elem)
			}
			g.p("%s := args[%d].([]byte)", pd(prm), slot)
			g.p("%s := args[%d].(int64)", po(prm), slot+1)
			g.p("_ = %s", pd(prm))
			g.p("_ = %s", po(prm))
			slot += 2
		case ir.KindVec:
			return "", fmt.Errorf("parameter %s: vector-typed parameters are not lowerable", prm)
		case ir.KindVoid:
			return "", fmt.Errorf("parameter %s: void parameter", prm)
		default:
			g.p("%s := args[%d].(%s)", vname(prm), slot, goType(prm.Typ.Kind))
			g.p("_ = %s", vname(prm))
			slot++
		}
	}
	root := f.G.Root()
	if r := root.Result; r != nil {
		switch r.Type().Kind {
		case ir.KindPtr, ir.KindVec:
			return "", fmt.Errorf("result type %v is not lowerable", r.Type())
		}
	}
	counts, err := g.block(root)
	if err != nil {
		return "", err
	}
	g.flush(counts, "")
	if r := root.Result; r != nil {
		e, err := g.scalarExpr(r)
		if err != nil {
			return "", fmt.Errorf("result: %w", err)
		}
		g.p("res = %s", e)
	}
	g.p("return")
	b.WriteString(g.b.String())
	b.WriteString("}\n")
	return b.String(), nil
}

// Lowerable reports whether the native backend can lower the function;
// a non-nil error carries the human-readable reason. It is the check
// ngen vet's "native" pass surfaces.
func Lowerable(f *ir.Func) error {
	_, err := generate(f)
	return err
}

type gen struct {
	f       *ir.Func
	sched   *ir.Scheduled
	b       strings.Builder
	ind     int
	loopIVs []ir.Sym
}

func (g *gen) p(format string, args ...any) {
	for i := 0; i < g.ind; i++ {
		g.b.WriteByte('\t')
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// --- naming and literals -----------------------------------------------------

func vname(s ir.Sym) string { return fmt.Sprintf("x%d", s.ID) }
func pd(s ir.Sym) string    { return fmt.Sprintf("p%dd", s.ID) }
func po(s ir.Sym) string    { return fmt.Sprintf("p%do", s.ID) }

func goType(k ir.Kind) string {
	switch k {
	case ir.KindBool:
		return "bool"
	case ir.KindF32, ir.KindF64:
		return "float64"
	case ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
		return "uint64"
	case ir.KindVec:
		return "vec"
	default:
		return "int64"
	}
}

func goInt(v int64) string {
	if v == math.MinInt64 {
		return "(-9223372036854775807 - 1)"
	}
	return strconv.FormatInt(v, 10)
}

func goFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "math.NaN()"
	case math.IsInf(v, 1):
		return "math.Inf(1)"
	case math.IsInf(v, -1):
		return "math.Inf(-1)"
	}
	return strconv.FormatFloat(v, 'x', -1, 64)
}

func supportedElem(p isa.Prim) bool {
	switch p {
	case isa.PrimI8, isa.PrimU8, isa.PrimI16, isa.PrimU16, isa.PrimI32,
		isa.PrimU32, isa.PrimI64, isa.PrimU64, isa.PrimF32, isa.PrimF64:
		return true
	}
	return false
}

// scalarExpr renders an expression as its generated-code representation
// (bool, int64, uint64, float64, or vec — never a pointer pair).
func (g *gen) scalarExpr(e ir.Exp) (string, error) {
	switch x := e.(type) {
	case ir.Sym:
		if x.Typ.Kind == ir.KindPtr {
			return "", fmt.Errorf("pointer value %s used in scalar position", x)
		}
		return vname(x), nil
	case ir.Const:
		switch {
		case x.Typ.Kind == ir.KindBool:
			return strconv.FormatBool(x.B), nil
		case x.Typ.IsFloat():
			return goFloat(x.F), nil
		case x.Typ.IsSigned():
			return fmt.Sprintf("int64(%s)", goInt(x.I)), nil
		default:
			return fmt.Sprintf("uint64(%d)", x.U), nil
		}
	}
	return "", fmt.Errorf("unsupported expression %T", e)
}

// asInt renders vm.Value.AsInt of an expression: an int64-typed string.
func (g *gen) asInt(e ir.Exp) (string, error) {
	if c, ok := e.(ir.Const); ok {
		var raw int64
		switch {
		case c.Typ.Kind == ir.KindBool:
			if c.B {
				raw = 1
			}
		case c.Typ.IsFloat():
			raw = int64(c.F) // same runtime conversion the interpreter performs
		case c.Typ.IsSigned():
			raw = c.I
		default:
			raw = int64(c.U)
		}
		return fmt.Sprintf("int64(%s)", goInt(raw)), nil
	}
	s, ok := e.(ir.Sym)
	if !ok {
		return "", fmt.Errorf("unsupported expression %T", e)
	}
	switch s.Typ.Kind {
	case ir.KindBool:
		return fmt.Sprintf("b2i(%s)", vname(s)), nil
	case ir.KindI8, ir.KindI16, ir.KindI32, ir.KindI64:
		return vname(s), nil
	case ir.KindF32, ir.KindF64, ir.KindU8, ir.KindU16, ir.KindU32, ir.KindU64:
		return fmt.Sprintf("int64(%s)", vname(s)), nil
	}
	return "", fmt.Errorf("AsInt of %v value %s", s.Typ, s)
}

// asFloat renders vm.Value.AsFloat of an expression: a float64 string.
func (g *gen) asFloat(e ir.Exp) (string, error) {
	if c, ok := e.(ir.Const); ok {
		var f float64
		switch {
		case c.Typ.Kind == ir.KindBool:
			if c.B {
				f = 1
			}
		case c.Typ.IsFloat():
			f = c.F
		case c.Typ.IsSigned():
			f = float64(c.I)
		default:
			f = float64(c.U)
		}
		return fmt.Sprintf("float64(%s)", goFloat(f)), nil
	}
	s, ok := e.(ir.Sym)
	if !ok {
		return "", fmt.Errorf("unsupported expression %T", e)
	}
	switch s.Typ.Kind {
	case ir.KindF32, ir.KindF64:
		return vname(s), nil
	case ir.KindBool:
		return fmt.Sprintf("float64(b2i(%s))", vname(s)), nil
	case ir.KindPtr, ir.KindVec, ir.KindVoid:
		return "", fmt.Errorf("AsFloat of %v value %s", s.Typ, s)
	default:
		return fmt.Sprintf("float64(%s)", vname(s)), nil
	}
}

// trunc renders kernelc's truncInt: wrap an int64 expression into the
// target integer type's representation (int64 for signed, uint64 for
// unsigned).
func trunc(k ir.Kind, inner string) string {
	switch k {
	case ir.KindI8:
		return fmt.Sprintf("int64(int8(%s))", inner)
	case ir.KindI16:
		return fmt.Sprintf("int64(int16(%s))", inner)
	case ir.KindI32:
		return fmt.Sprintf("int64(int32(%s))", inner)
	case ir.KindI64:
		return fmt.Sprintf("(%s)", inner)
	case ir.KindU8:
		return fmt.Sprintf("uint64(uint8(%s))", inner)
	case ir.KindU16:
		return fmt.Sprintf("uint64(uint16(%s))", inner)
	case ir.KindU32:
		return fmt.Sprintf("uint64(uint32(%s))", inner)
	default: // KindU64
		return fmt.Sprintf("uint64(%s)", inner)
	}
}

// --- statics ----------------------------------------------------------------

// flush emits the block's static count vector, optionally scaled by a
// trip-count variable. Keys are sorted for deterministic source (the
// build cache keys on the generated text).
func (g *gen) flush(counts map[string]int64, scale string) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if scale == "" {
			g.p("cnt[%q] += %s", k, goInt(counts[k]))
		} else {
			g.p("cnt[%q] += %s * %s", k, goInt(counts[k]), scale)
		}
	}
}

func isCmp(op string) bool {
	switch op {
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return true
	}
	return false
}

// scalarCost mirrors kernelc's cost classification.
func scalarCost(op string, t ir.Type) string {
	switch op {
	case ir.OpMul:
		if t.IsFloat() {
			return kernelc.OpScalarFMul
		}
		return kernelc.OpScalarMul
	case ir.OpDiv, ir.OpRem:
		if t.IsFloat() {
			return kernelc.OpScalarFDiv
		}
		return kernelc.OpScalarDiv
	case ir.OpAdd, ir.OpSub, ir.OpNeg, ir.OpMin, ir.OpMax:
		if t.IsFloat() {
			return kernelc.OpScalarFP
		}
		return kernelc.OpScalarALU
	default:
		return kernelc.OpScalarALU
	}
}

// strided mirrors kernelc's stride classification of scalar loads: the
// index expression multiplies the innermost loop variable.
func (g *gen) strided(idx ir.Exp) bool {
	if len(g.loopIVs) == 0 {
		return false
	}
	iv := g.loopIVs[len(g.loopIVs)-1]
	var walk func(e ir.Exp, depth int) bool
	walk = func(e ir.Exp, depth int) bool {
		s, ok := e.(ir.Sym)
		if !ok || depth > 6 {
			return false
		}
		d, ok := g.f.G.Def(s)
		if !ok {
			return false
		}
		switch d.Op {
		case ir.OpMul, ir.OpShl:
			for _, a := range d.ArgSyms() {
				if a == iv {
					return true
				}
			}
			return false
		case ir.OpAdd, ir.OpSub:
			for _, a := range d.Args {
				if walk(a, depth+1) {
					return true
				}
			}
		}
		return false
	}
	return walk(idx, 0)
}

// --- block walk --------------------------------------------------------------

func (g *gen) block(b *ir.Block) (map[string]int64, error) {
	counts := map[string]int64{}
	for _, n := range g.sched.Keep[b] {
		d := n.Def
		switch d.Op {
		case ir.OpComment, ir.OpParam:
			continue
		case ir.OpLoop:
			if err := g.loop(n); err != nil {
				return nil, err
			}
		case ir.OpIf:
			if err := g.ifStmt(n); err != nil {
				return nil, err
			}
			counts[kernelc.OpBranch]++
		default:
			if err := g.simple(n, counts); err != nil {
				return nil, err
			}
		}
	}
	return counts, nil
}

func (g *gen) simple(n *ir.Node, counts map[string]int64) error {
	d := n.Def
	if ir.IsIntrinsicOp(d.Op) {
		counts[d.Op]++
		return g.intrinsic(n)
	}
	switch d.Op {
	case ir.OpALoad:
		key := kernelc.OpScalarLoad
		if g.strided(d.Args[1]) {
			key = kernelc.OpScalarLoadStrided
		}
		counts[key]++
		return g.aload(n)
	case ir.OpAStore:
		counts[kernelc.OpScalarStore]++
		return g.astore(n)
	case ir.OpPtrAdd:
		counts[kernelc.OpScalarALU]++
		return g.ptradd(n)
	case ir.OpConv:
		counts[kernelc.OpScalarConv]++
		return g.conv(n)
	case ir.OpSel:
		counts[kernelc.OpScalarALU]++
		return g.sel(n)
	default:
		counts[scalarCost(d.Op, d.Typ)]++
		return g.scalar(n)
	}
}

// declare emits the variable(s) backing a symbol, assign fills them, and
// use silences Go's unused-variable check.
func (g *gen) declare(s ir.Sym) {
	if s.Typ.Kind == ir.KindPtr {
		g.p("var %s []byte", pd(s))
		g.p("var %s int64", po(s))
		return
	}
	g.p("var %s %s", vname(s), goType(s.Typ.Kind))
}

func (g *gen) assign(dst ir.Sym, src ir.Exp) error {
	if dst.Typ.Kind == ir.KindPtr {
		ss, ok := src.(ir.Sym)
		if !ok || ss.Typ.Kind != ir.KindPtr {
			return fmt.Errorf("pointer assignment from non-pointer %v", src)
		}
		g.p("%s = %s", pd(dst), pd(ss))
		g.p("%s = %s", po(dst), po(ss))
		return nil
	}
	e, err := g.scalarExpr(src)
	if err != nil {
		return err
	}
	g.p("%s = %s", vname(dst), e)
	return nil
}

func (g *gen) use(s ir.Sym) {
	if s.Typ.Kind == ir.KindPtr {
		g.p("_ = %s", pd(s))
		g.p("_ = %s", po(s))
		return
	}
	g.p("_ = %s", vname(s))
}

// --- control flow ------------------------------------------------------------

func (g *gen) loop(n *ir.Node) error {
	d := n.Def
	body := d.Blocks[0]
	id := n.Sym.ID
	carried := len(d.Args) == 4
	iv := body.Params[0]
	lo, err := g.asInt(d.Args[0])
	if err != nil {
		return err
	}
	hi, err := g.asInt(d.Args[1])
	if err != nil {
		return err
	}
	st, err := g.asInt(d.Args[2])
	if err != nil {
		return err
	}
	g.p("lo%d := %s", id, lo)
	g.p("hi%d := %s", id, hi)
	g.p("st%d := %s", id, st)
	g.p("if st%d <= 0 {", id)
	g.ind++
	g.p(`err = fmt.Errorf("forloop stride %%d must be positive", st%d)`, id)
	g.p("return")
	g.ind--
	g.p("}")
	if carried {
		acc := body.Params[1]
		g.declare(acc)
		if err := g.assign(acc, d.Args[3]); err != nil {
			return err
		}
	}
	g.p("it%d := int64(0)", id)
	g.p("for %s := lo%d; %s < hi%d; %s += st%d {", vname(iv), id, vname(iv), id, vname(iv), id)
	g.ind++
	g.p("_ = %s", vname(iv))
	g.loopIVs = append(g.loopIVs, iv)
	bodyCounts, err := g.block(body)
	g.loopIVs = g.loopIVs[:len(g.loopIVs)-1]
	if err != nil {
		return err
	}
	if carried {
		if err := g.assign(body.Params[1], body.Result); err != nil {
			return err
		}
	}
	g.p("it%d++", id)
	g.ind--
	g.p("}")
	// The loop's dynamic count contribution, exactly as the interpreter
	// flushes it once the loop completes: iteration pseudo-op, per-loop
	// attribution key, and the body's static vector scaled by the trip
	// count. A body error returns before reaching this point, matching
	// the interpreter's mid-loop error behavior.
	g.p("cnt[%q] += it%d", kernelc.OpLoopIter, id)
	g.p("cnt[%q] += it%d", fmt.Sprintf("loop.#%d", id), id)
	g.flush(bodyCounts, fmt.Sprintf("it%d", id))
	if carried {
		g.declare(n.Sym)
		if err := g.assign(n.Sym, body.Params[1]); err != nil {
			return err
		}
		g.use(n.Sym)
	}
	return nil
}

func (g *gen) ifStmt(n *ir.Node) error {
	d := n.Def
	cond, err := g.scalarExpr(d.Args[0])
	if err != nil {
		return err
	}
	void := d.Typ == ir.TVoid
	if !void {
		g.declare(n.Sym)
	}
	thenB, elseB := d.Blocks[0], d.Blocks[1]
	g.p("if %s {", cond)
	g.ind++
	thenCounts, err := g.block(thenB)
	if err != nil {
		return err
	}
	g.flush(thenCounts, "")
	if !void && thenB.Result != nil {
		if err := g.assign(n.Sym, thenB.Result); err != nil {
			return err
		}
	}
	g.ind--
	g.p("} else {")
	g.ind++
	elseCounts, err := g.block(elseB)
	if err != nil {
		return err
	}
	g.flush(elseCounts, "")
	if !void && elseB.Result != nil {
		if err := g.assign(n.Sym, elseB.Result); err != nil {
			return err
		}
	}
	g.ind--
	g.p("}")
	if !void {
		g.use(n.Sym)
	}
	return nil
}

// --- memory ops --------------------------------------------------------------

func ptrArg(e ir.Exp) (ir.Sym, error) {
	s, ok := e.(ir.Sym)
	if !ok || s.Typ.Kind != ir.KindPtr {
		return ir.Sym{}, fmt.Errorf("expected pointer symbol, got %v", e)
	}
	return s, nil
}

func (g *gen) aload(n *ir.Node) error {
	d := n.Def
	ps, err := ptrArg(d.Args[0])
	if err != nil {
		return err
	}
	es := ps.Typ.Elem.Bits() / 8
	idx, err := g.asInt(d.Args[1])
	if err != nil {
		return err
	}
	id := n.Sym.ID
	g.p("i%d := int(%s) + int(%s)", id, idx, po(ps))
	g.p("if i%d < 0 || i%d >= len(%s)/%d {", id, id, pd(ps), es)
	g.ind++
	g.p(`err = fmt.Errorf("aload index %%d out of bounds [0,%%d)", i%d, len(%s)/%d)`, id, pd(ps), es)
	g.p("return")
	g.ind--
	g.p("}")
	x := vname(n.Sym)
	switch n.Sym.Typ.Kind {
	case ir.KindF32:
		g.p("%s := float64(bf32(%s, i%d))", x, pd(ps), id)
	case ir.KindF64:
		g.p("%s := bf64(%s, i%d)", x, pd(ps), id)
	case ir.KindI8:
		g.p("%s := bi8(%s, i%d)", x, pd(ps), id)
	case ir.KindU8:
		g.p("%s := uint64(bu8(%s, i%d))", x, pd(ps), id)
	case ir.KindI16:
		g.p("%s := bi16(%s, i%d)", x, pd(ps), id)
	case ir.KindU16:
		g.p("%s := uint64(bu16(%s, i%d))", x, pd(ps), id)
	case ir.KindI32:
		g.p("%s := bi32(%s, i%d)", x, pd(ps), id)
	case ir.KindU32:
		g.p("%s := uint64(bu32(%s, i%d))", x, pd(ps), id)
	case ir.KindI64:
		g.p("%s := bi64(%s, i%d)", x, pd(ps), id)
	case ir.KindU64:
		g.p("%s := uint64(bi64(%s, i%d))", x, pd(ps), id)
	default:
		return fmt.Errorf("aload of unsupported kind %v", n.Sym.Typ)
	}
	g.p("_ = %s", x)
	return nil
}

func (g *gen) astore(n *ir.Node) error {
	d := n.Def
	ps, err := ptrArg(d.Args[0])
	if err != nil {
		return err
	}
	es := ps.Typ.Elem.Bits() / 8
	idx, err := g.asInt(d.Args[1])
	if err != nil {
		return err
	}
	id := n.Sym.ID
	g.p("i%d := int(%s) + int(%s)", id, idx, po(ps))
	g.p("if i%d < 0 || i%d >= len(%s)/%d {", id, id, pd(ps), es)
	g.ind++
	g.p(`err = fmt.Errorf("astore index %%d out of bounds [0,%%d)", i%d, len(%s)/%d)`, id, pd(ps), es)
	g.p("return")
	g.ind--
	g.p("}")
	val := d.Args[2]
	switch val.Type().Kind {
	case ir.KindF32, ir.KindF64:
		fe, err := g.scalarExpr(val)
		if err != nil {
			return err
		}
		if ps.Typ.Elem.Bits() == 32 {
			g.p("bsetf32(%s, i%d, float32(%s))", pd(ps), id, fe)
		} else {
			g.p("bsetf64(%s, i%d, %s)", pd(ps), id, fe)
		}
	default:
		ie, err := g.asInt(val)
		if err != nil {
			return err
		}
		switch ps.Typ.Elem.Bits() {
		case 8:
			g.p("bset8(%s, i%d, %s)", pd(ps), id, ie)
		case 16:
			g.p("bset16(%s, i%d, %s)", pd(ps), id, ie)
		case 32:
			g.p("bset32(%s, i%d, %s)", pd(ps), id, ie)
		default:
			g.p("bset64(%s, i%d, %s)", pd(ps), id, ie)
		}
	}
	return nil
}

func (g *gen) ptradd(n *ir.Node) error {
	d := n.Def
	ps, err := ptrArg(d.Args[0])
	if err != nil {
		return err
	}
	idx, err := g.asInt(d.Args[1])
	if err != nil {
		return err
	}
	g.p("%s := %s", pd(n.Sym), pd(ps))
	g.p("%s := %s + %s", po(n.Sym), po(ps), idx)
	g.use(n.Sym)
	return nil
}

// --- scalar ops --------------------------------------------------------------

func (g *gen) conv(n *ir.Node) error {
	src := n.Def.Args[0]
	to := n.Sym.Typ
	x := vname(n.Sym)
	switch {
	case to.Kind == ir.KindBool:
		ie, err := g.asInt(src)
		if err != nil {
			return err
		}
		g.p("%s := %s != 0", x, ie)
	case to.IsFloat():
		var base string
		var err error
		switch src.Type().Kind {
		case ir.KindF32, ir.KindF64:
			base, err = g.scalarExpr(src)
		default:
			base, err = g.asFloat(src)
		}
		if err != nil {
			return err
		}
		if to.Kind == ir.KindF32 {
			g.p("%s := float64(float32(%s))", x, base)
		} else {
			g.p("%s := float64(%s)", x, base)
		}
	default:
		var raw string
		switch src.Type().Kind {
		case ir.KindF32, ir.KindF64:
			if c, ok := src.(ir.Const); ok {
				var r int64
				if !math.IsNaN(c.F) {
					r = int64(c.F)
				}
				raw = fmt.Sprintf("int64(%s)", goInt(r))
			} else {
				se, err := g.scalarExpr(src)
				if err != nil {
					return err
				}
				raw = fmt.Sprintf("f2i(%s)", se)
			}
		default:
			var err error
			raw, err = g.asInt(src)
			if err != nil {
				return err
			}
		}
		g.p("%s := %s", x, trunc(to.Kind, raw))
	}
	g.p("_ = %s", x)
	return nil
}

func (g *gen) sel(n *ir.Node) error {
	d := n.Def
	cond, err := g.scalarExpr(d.Args[0])
	if err != nil {
		return err
	}
	g.declare(n.Sym)
	g.p("if %s {", cond)
	g.ind++
	if err := g.assign(n.Sym, d.Args[1]); err != nil {
		return err
	}
	g.ind--
	g.p("} else {")
	g.ind++
	if err := g.assign(n.Sym, d.Args[2]); err != nil {
		return err
	}
	g.ind--
	g.p("}")
	g.use(n.Sym)
	return nil
}

func (g *gen) scalar(n *ir.Node) error {
	d := n.Def
	t := d.Typ
	opT := t
	if isCmp(d.Op) {
		opT = d.Args[0].Type()
	}
	switch len(d.Args) {
	case 1:
		return g.unary(n, t)
	case 2:
		return g.binary(n, t, opT)
	}
	return fmt.Errorf("scalar op %s with %d args", d.Op, len(d.Args))
}

func (g *gen) unary(n *ir.Node, t ir.Type) error {
	d := n.Def
	x := vname(n.Sym)
	switch d.Op {
	case ir.OpNeg:
		if t.IsFloat() {
			a, err := g.scalarExpr(d.Args[0])
			if err != nil {
				return err
			}
			if t.Kind == ir.KindF32 {
				g.p("%s := float64(float32(-(%s)))", x, a)
			} else {
				g.p("%s := float64(-(%s))", x, a)
			}
		} else {
			ai, err := g.asInt(d.Args[0])
			if err != nil {
				return err
			}
			g.p("%s := %s", x, trunc(t.Kind, fmt.Sprintf("-(%s)", ai)))
		}
	case ir.OpNot:
		if t.Kind == ir.KindBool {
			a, err := g.scalarExpr(d.Args[0])
			if err != nil {
				return err
			}
			g.p("%s := !(%s)", x, a)
		} else {
			ai, err := g.asInt(d.Args[0])
			if err != nil {
				return err
			}
			g.p("%s := %s", x, trunc(t.Kind, fmt.Sprintf("^(%s)", ai)))
		}
	default:
		return fmt.Errorf("unsupported unary op %s", d.Op)
	}
	g.p("_ = %s", x)
	return nil
}

func (g *gen) binary(n *ir.Node, t, opT ir.Type) error {
	d := n.Def
	x := vname(n.Sym)
	emit := func(expr string) {
		g.p("%s := %s", x, expr)
		g.p("_ = %s", x)
	}
	if opT.IsFloat() {
		a, err := g.scalarExpr(d.Args[0])
		if err != nil {
			return err
		}
		b, err := g.scalarExpr(d.Args[1])
		if err != nil {
			return err
		}
		round := func(inner string) string {
			if opT.Kind == ir.KindF64 {
				return fmt.Sprintf("float64(%s)", inner)
			}
			return fmt.Sprintf("float64(float32(%s))", inner)
		}
		switch d.Op {
		case ir.OpAdd:
			emit(round(fmt.Sprintf("(%s) + (%s)", a, b)))
		case ir.OpSub:
			emit(round(fmt.Sprintf("(%s) - (%s)", a, b)))
		case ir.OpMul:
			emit(round(fmt.Sprintf("(%s) * (%s)", a, b)))
		case ir.OpDiv:
			emit(round(fmt.Sprintf("(%s) / (%s)", a, b)))
		case ir.OpMin:
			g.p("var %s float64", x)
			g.p("if (%s) < (%s) {", b, a)
			g.ind++
			g.p("%s = %s", x, round(b))
			g.ind--
			g.p("} else {")
			g.ind++
			g.p("%s = %s", x, round(a))
			g.ind--
			g.p("}")
			g.p("_ = %s", x)
		case ir.OpMax:
			g.p("var %s float64", x)
			g.p("if (%s) > (%s) {", b, a)
			g.ind++
			g.p("%s = %s", x, round(b))
			g.ind--
			g.p("} else {")
			g.ind++
			g.p("%s = %s", x, round(a))
			g.ind--
			g.p("}")
			g.p("_ = %s", x)
		case ir.OpEq:
			emit(fmt.Sprintf("(%s) == (%s)", a, b))
		case ir.OpNe:
			emit(fmt.Sprintf("(%s) != (%s)", a, b))
		case ir.OpLt:
			emit(fmt.Sprintf("(%s) < (%s)", a, b))
		case ir.OpLe:
			emit(fmt.Sprintf("(%s) <= (%s)", a, b))
		case ir.OpGt:
			emit(fmt.Sprintf("(%s) > (%s)", a, b))
		case ir.OpGe:
			emit(fmt.Sprintf("(%s) >= (%s)", a, b))
		default:
			return fmt.Errorf("unsupported float op %s", d.Op)
		}
		return nil
	}
	if opT.Kind == ir.KindBool {
		a, err := g.scalarExpr(d.Args[0])
		if err != nil {
			return err
		}
		b, err := g.scalarExpr(d.Args[1])
		if err != nil {
			return err
		}
		switch d.Op {
		case ir.OpAnd:
			emit(fmt.Sprintf("(%s) && (%s)", a, b))
		case ir.OpOr:
			emit(fmt.Sprintf("(%s) || (%s)", a, b))
		case ir.OpXor, ir.OpNe:
			emit(fmt.Sprintf("(%s) != (%s)", a, b))
		case ir.OpEq:
			emit(fmt.Sprintf("(%s) == (%s)", a, b))
		default:
			return fmt.Errorf("unsupported bool op %s", d.Op)
		}
		return nil
	}
	if !opT.IsInteger() {
		return fmt.Errorf("unsupported operand type %v for op %s", opT, d.Op)
	}
	ai, err := g.asInt(d.Args[0])
	if err != nil {
		return err
	}
	bi, err := g.asInt(d.Args[1])
	if err != nil {
		return err
	}
	signed := opT.IsSigned()
	w := func(inner string) string { return trunc(opT.Kind, inner) }
	switch d.Op {
	case ir.OpAdd:
		emit(w(fmt.Sprintf("(%s) + (%s)", ai, bi)))
	case ir.OpSub:
		emit(w(fmt.Sprintf("(%s) - (%s)", ai, bi)))
	case ir.OpMul:
		emit(w(fmt.Sprintf("(%s) * (%s)", ai, bi)))
	case ir.OpDiv:
		g.p("var %s %s", x, goType(opT.Kind))
		g.p("if (%s) == 0 {", bi)
		g.ind++
		g.p("%s = %s", x, w("0"))
		g.ind--
		g.p("} else {")
		g.ind++
		if signed {
			g.p("%s = %s", x, w(fmt.Sprintf("(%s) / (%s)", ai, bi)))
		} else {
			g.p("%s = %s", x, w(fmt.Sprintf("int64(uint64(%s) / uint64(%s))", ai, bi)))
		}
		g.ind--
		g.p("}")
		g.p("_ = %s", x)
	case ir.OpRem:
		g.p("var %s %s", x, goType(opT.Kind))
		g.p("if (%s) == 0 {", bi)
		g.ind++
		g.p("%s = %s", x, w("0"))
		g.ind--
		g.p("} else {")
		g.ind++
		g.p("%s = %s", x, w(fmt.Sprintf("(%s) %% (%s)", ai, bi)))
		g.ind--
		g.p("}")
		g.p("_ = %s", x)
	case ir.OpMin:
		g.p("var %s %s", x, goType(opT.Kind))
		g.p("if (%s) < (%s) {", bi, ai)
		g.ind++
		g.p("%s = %s", x, w(bi))
		g.ind--
		g.p("} else {")
		g.ind++
		g.p("%s = %s", x, w(ai))
		g.ind--
		g.p("}")
		g.p("_ = %s", x)
	case ir.OpMax:
		g.p("var %s %s", x, goType(opT.Kind))
		g.p("if (%s) > (%s) {", bi, ai)
		g.ind++
		g.p("%s = %s", x, w(bi))
		g.ind--
		g.p("} else {")
		g.ind++
		g.p("%s = %s", x, w(ai))
		g.ind--
		g.p("}")
		g.p("_ = %s", x)
	case ir.OpAnd:
		emit(w(fmt.Sprintf("(%s) & (%s)", ai, bi)))
	case ir.OpOr:
		emit(w(fmt.Sprintf("(%s) | (%s)", ai, bi)))
	case ir.OpXor:
		emit(w(fmt.Sprintf("(%s) ^ (%s)", ai, bi)))
	case ir.OpShl:
		emit(w(fmt.Sprintf("(%s) << uint((%s) & 63)", ai, bi)))
	case ir.OpShr:
		if signed {
			emit(w(fmt.Sprintf("(%s) >> uint((%s) & 63)", ai, bi)))
		} else {
			emit(w(fmt.Sprintf("int64(uint64(%s) >> uint((%s) & 63))", ai, bi)))
		}
	case ir.OpEq:
		emit(fmt.Sprintf("(%s) == (%s)", ai, bi))
	case ir.OpNe:
		emit(fmt.Sprintf("(%s) != (%s)", ai, bi))
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		sym := map[string]string{ir.OpLt: "<", ir.OpLe: "<=", ir.OpGt: ">", ir.OpGe: ">="}[d.Op]
		if signed {
			emit(fmt.Sprintf("(%s) %s (%s)", ai, sym, bi))
		} else {
			emit(fmt.Sprintf("uint64(%s) %s uint64(%s)", ai, sym, bi))
		}
	default:
		return fmt.Errorf("unsupported integer op %s", d.Op)
	}
	return nil
}
