// Package backend defines the pluggable execution-backend seam between
// the staged-graph compiler and whatever actually runs a kernel. The
// paper's pipeline lowers a staged SIMD graph to C, compiles it with a
// native toolchain and calls it through JNI; our reproduction has so
// far substituted a single software interpreter (internal/vm driven by
// internal/kernelc). A Backend abstracts that choice: the interpreter
// tiers are the first implementations, and backend/native adds a true
// native tier that specializes the graph into standalone Go source,
// builds it as a plugin, and executes it in-process. Future NEON/RVV/
// GPU backends register here as well.
//
// Layering: core imports backend (never a concrete backend); the CLI
// constructs concrete backends and hands them to core.Runtime. A
// Backend must never import core.
package backend

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
	"repro/internal/kernelc"
	"repro/internal/vm"
)

// ErrFallback is returned by an Executable's Run when this particular
// invocation cannot be served natively (for example, the machine has a
// cache simulator attached and needs the interpreter's per-access
// stream). The caller must transparently re-run the call on the vm
// interpreter; ErrFallback is a routing signal, not a failure.
var ErrFallback = errors.New("backend: fall back to vm interpreter")

// Executable is one compiled kernel ready to run. Implementations must
// be safe for concurrent Run calls and must preserve the interpreter's
// observable semantics bit-for-bit: results, memory writes, dynamic op
// counts, and error text.
type Executable interface {
	Run(m *vm.Machine, args ...vm.Value) (vm.Value, error)
}

// Backend turns a staged function into an Executable.
type Backend interface {
	// Name labels the backend in cache keys, obs counters, and span
	// attributes; it must be stable across processes (it keys the disk
	// cache) and unique among registered backends.
	Name() string
	// Available reports whether the backend can run on this host; the
	// returned error explains why not (missing toolchain, unsupported
	// OS, race-instrumented host, ...). Callers use it to decide
	// whether to fall back before paying a Compile.
	Available() error
	// Compile lowers the function at the given interpreter tier. A
	// non-nil error means the kernel stays on the vm interpreter; the
	// error text is the human-readable reason (surfaced by ngen vet's
	// native-lowerable pass and the runtime's fallback report).
	Compile(f *ir.Func, tier kernelc.Tier) (Executable, error)
}

// CachedCompiler is implemented by backends that can distinguish a
// cheap compile (artifact already in the process memo or artifact
// store) from an expensive one (a real toolchain build). The execution
// planner uses it to admit a backend as a candidate strategy without
// ever paying a build inside a measured run: CompileCached returns
// (exe, true) only when the artifact was already on hand, and
// (nil, false) — with no side effects beyond a load attempt — when a
// full Compile would have to build.
type CachedCompiler interface {
	CompileCached(f *ir.Func, tier kernelc.Tier) (Executable, bool)
}

// ArtifactStore persists backend build products (for example native
// plugin objects) between processes. core.DiskCache satisfies it with
// blob sidecars next to its JSON entries.
type ArtifactStore interface {
	// LoadBlob returns the canonical on-disk path of the blob for key,
	// if present.
	LoadBlob(key string) (path string, ok bool)
	// StoreBlob writes data under key and returns its canonical path.
	StoreBlob(key string, data []byte) (path string, err error)
}

// StoreAware is implemented by backends that can persist artifacts in
// an ArtifactStore; the runtime attaches its disk cache through it.
type StoreAware interface {
	SetStore(ArtifactStore)
}

// Interp is the interpreter backend: a thin adapter over the existing
// kernelc tiers, so the default execution path flows through the same
// interface the native tier plugs into.
type Interp struct {
	Tier kernelc.Tier
}

// Name returns "vm" — the canonical name of the interpreter backend.
// Cache entries written before the Backend refactor carry this name
// implicitly, so it must never change.
func (Interp) Name() string { return "vm" }

// Available always succeeds: the interpreter runs everywhere.
func (Interp) Available() error { return nil }

// Compile lowers through kernelc at the requested tier.
func (Interp) Compile(f *ir.Func, tier kernelc.Tier) (Executable, error) {
	p, err := kernelc.CompileTier(f, tier)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// --- registry ----------------------------------------------------------------

var (
	regMu    sync.RWMutex
	registry = map[string]func() Backend{}
)

// Register installs a backend constructor under its name. Concrete
// backends (native, and later neon/rvv) register from their package
// init; duplicate names are a programming error.
func Register(name string, ctor func() Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate backend %q", name))
	}
	registry[name] = ctor
}

// Lookup constructs the named backend. The interpreter backend "vm" is
// always present.
func Lookup(name string) (Backend, error) {
	if name == "" || name == "vm" {
		return Interp{}, nil
	}
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the registered backend names, "vm" first, the rest
// sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := []string{"vm"}
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out[1:])
	return out
}
