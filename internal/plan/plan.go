// Package plan is the adaptive execution planner: for each (kernel
// graph, microarchitecture, working-set size bucket) it selects the
// fastest execution strategy — backend (vm interpreter or native
// plugin), lowering tier (opt or plain), and parallel lane count with
// shard chunk size — by combining the analytical cost model's
// prediction with bounded online calibration.
//
// The paper's pipeline faces the same decision implicitly: when is the
// JNI crossing to a native kernel worth its fixed cost, and when does
// the managed tier win? Here the decision is explicit and measured.
// Strategy switching is safe by construction: every strategy executes
// the identical counted op stream (the tier/backend/parallel
// differential suites pin results, writes, and dynamic counts to be
// bit-identical), so the planner can only change wall-clock time, never
// figures or results.
//
// Lifecycle of one (hash, arch, bucket) key:
//
//  1. Unknown — Decide returns ok=false; the caller runs the default
//     strategy (vm/opt, the zero-value runtime behavior), measures its
//     single-invocation op-count delta and wall time, and calls
//     Install with model-priced candidates followed by Observe for the
//     default run. Prediction (machine.PredictStrategies) ranks the
//     admissible tuples; candidates predicted slower than PruneRatio ×
//     the best are pruned so calibration never wastes probe runs on
//     hopeless strategies (ExploreAll disables pruning for the `ngen
//     plan` calibration tool).
//  2. Calibrating — Decide rotates through unpruned candidates until
//     each has ProbeBudget timed probes. Probe runs are real
//     invocations serving real callers (exploration is amortized
//     across a benchmark's repeat loop, never extra work), they just
//     pick the strategy under test instead of the incumbent.
//  3. Calibrated — the candidate with the lowest exponentially
//     smoothed measured time wins; if that differs from the model's
//     pick, the plan.mispredict counter records it (the telemetry that
//     says where the cost model's host constants are off). The plan
//     persists once — write-once, atomic, checksummed — through the
//     attached Store, so a warm -cachedir process loads it and runs
//     zero exploration probes. The measurement table freezes with the
//     plan: post-calibration observations are ignored (they could only
//     drift the chosen row against its frozen rivals without informing
//     any decision), so the live table always agrees with the
//     persisted plan.
package plan

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
)

// Version is the persisted-plan schema version; bumped on any change
// to the file format so stale files miss instead of misparse.
const Version = 1

// Key identifies one planning unit: a staged graph (by canonical
// structural hash), the microarchitecture it runs on, and the
// log2-size bucket of the invocation's working set. Buckets group
// nearby sizes so a sweep does not recalibrate at every point, while
// still separating the cache regimes where the best strategy flips.
type Key struct {
	Hash   uint64
	Arch   string
	Bucket int
}

// ID renders the key as a filesystem- and map-safe identifier, the
// persisted plan's filename stem.
func (k Key) ID() string {
	return fmt.Sprintf("%016x-%s-b%d", k.Hash, sanitize(k.Arch), k.Bucket)
}

func sanitize(s string) string {
	out := []byte(s)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Bucket maps a working-set footprint in bytes to its size bucket
// (log2, so bucket n covers [2^n, 2^(n+1)) bytes; 0 covers 0–1).
func Bucket(bytes int64) int {
	b := 0
	for v := bytes; v > 1; v >>= 1 {
		b++
	}
	return b
}

// Candidate is one admissible strategy with its predicted and (once
// probed) measured cost.
type Candidate struct {
	Spec machine.StrategySpec `json:"spec"`
	// PredNs is the cost model's host-time prediction for one
	// invocation in this bucket.
	PredNs float64 `json:"pred_ns"`
	// MeasNs is the exponentially smoothed measured wall time per
	// invocation; 0 until the first probe lands.
	MeasNs float64 `json:"meas_ns"`
	// Probes counts timed runs folded into MeasNs.
	Probes int `json:"probes"`
	// Pruned marks candidates the model priced out of contention
	// (> PruneRatio × best prediction); they are never probed.
	Pruned bool `json:"pruned,omitempty"`
}

// Decision is the planner's answer for one invocation.
type Decision struct {
	Spec machine.StrategySpec
	// Probe marks a calibration run: the caller should time the
	// invocation and report it via Observe.
	Probe bool
}

// Store persists calibrated plans between processes. core.DiskCache
// satisfies it with plan-<id>.json entries in the compile-cache
// directory (same atomic-rename discipline as compile artifacts).
type Store interface {
	LoadPlan(id string) ([]byte, bool)
	StorePlan(id string, data []byte) error
}

// Config tunes the planner; the zero value selects the defaults.
type Config struct {
	// ProbeBudget is how many timed runs each unpruned candidate gets
	// before the plan calibrates. Default 2.
	ProbeBudget int
	// PruneRatio drops candidates predicted slower than this multiple
	// of the best prediction. Default 1.5.
	PruneRatio float64
	// Alpha is the exponential smoothing factor for measured times
	// (new = alpha×sample + (1-alpha)×old). Default 0.3.
	Alpha float64
	// ExploreAll disables prediction-based pruning so every admissible
	// candidate is probed — the `ngen plan` calibration tool uses it to
	// produce complete predicted-vs-measured tables.
	ExploreAll bool
}

func (c Config) withDefaults() Config {
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 2
	}
	if c.PruneRatio <= 0 {
		c.PruneRatio = 1.5
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// Planner holds the live plan table. Safe for concurrent use; forked
// runtimes share one Planner so calibration from any worker benefits
// all of them.
type Planner struct {
	cfg Config

	mu    sync.Mutex
	store Store
	plans map[Key]*entry

	decisions    atomic.Int64 // planner-routed invocations
	probeRuns    atomic.Int64 // invocations that were calibration probes
	installs     atomic.Int64 // plans installed (priced cold)
	calibrations atomic.Int64 // plans that finished calibration
	mispredicts  atomic.Int64 // calibrated plans where measurement overruled the model
	loads        atomic.Int64 // plans loaded from the store
	persists     atomic.Int64 // plans written to the store
}

type entry struct {
	key        Key
	kernel     string
	cands      []Candidate
	chosen     int
	calibrated bool
	persisted  bool
}

// New creates a planner with the given configuration (zero value for
// defaults) and no persistence.
func New(cfg Config) *Planner {
	return &Planner{cfg: cfg.withDefaults(), plans: map[Key]*entry{}}
}

// SetStore attaches plan persistence (nil detaches it).
func (p *Planner) SetStore(s Store) {
	p.mu.Lock()
	p.store = s
	p.mu.Unlock()
}

// Decide returns the strategy to use for one invocation under key.
// ok=false means no plan exists yet: the caller must run the default
// strategy, then Install a priced plan and Observe that run.
func (p *Planner) Decide(key Key) (Decision, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.plans[key]
	if !ok {
		e, ok = p.loadLocked(key)
		if !ok {
			return Decision{}, false
		}
	}
	p.decisions.Add(1)
	if !e.calibrated {
		if idx := e.nextProbe(p.cfg.ProbeBudget); idx >= 0 {
			p.probeRuns.Add(1)
			return Decision{Spec: e.cands[idx].Spec, Probe: true}, true
		}
		// Every unpruned candidate met its budget but the closing
		// Observe has not arrived yet (concurrent callers): serve the
		// current measured best meanwhile.
		p.finishLocked(e)
	}
	return Decision{Spec: e.cands[e.chosen].Spec}, true
}

// nextProbe picks the unpruned candidate with the fewest probes, if
// any still needs one.
func (e *entry) nextProbe(budget int) int {
	best, min := -1, budget
	for i := range e.cands {
		if e.cands[i].Pruned {
			continue
		}
		if e.cands[i].Probes < min {
			best, min = i, e.cands[i].Probes
		}
	}
	return best
}

// Install registers a freshly priced plan for key. costs come from
// machine.PredictStrategies on the invocation's measured op-count
// delta; the first entry must be the default strategy the caller just
// ran (it survives pruning unconditionally, so the planner always has
// a safe incumbent). Install is idempotent: a concurrent or repeated
// install for an existing key is ignored.
func (p *Planner) Install(key Key, kernel string, costs []machine.StrategyCost) {
	if len(costs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.plans[key]; dup {
		return
	}
	e := &entry{key: key, kernel: kernel, cands: make([]Candidate, len(costs))}
	bestPred := costs[0].HostNs
	for _, c := range costs[1:] {
		if c.HostNs < bestPred {
			bestPred = c.HostNs
		}
	}
	for i, c := range costs {
		e.cands[i] = Candidate{Spec: c.Spec, PredNs: c.HostNs}
		if !p.cfg.ExploreAll && i > 0 && c.HostNs > bestPred*p.cfg.PruneRatio {
			e.cands[i].Pruned = true
		}
	}
	p.plans[key] = e
	p.installs.Add(1)
}

// Observe folds one timed invocation into the plan. While the plan is
// calibrating this is a probe result; afterwards it keeps smoothing
// the incumbent's estimate (drift tracking — in memory only, the
// persisted plan never changes).
func (p *Planner) Observe(key Key, spec machine.StrategySpec, ns float64) {
	if ns <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.plans[key]
	if !ok {
		return
	}
	if e.calibrated {
		// The candidate table freezes at calibration: only probed
		// strategies re-measure, so further smoothing would drift the
		// chosen row against its frozen rivals — making the live table
		// disagree with the persisted plan and with the measured-argmin
		// invariant (`ngen plan -check`) — without ever informing a
		// decision, since calibrated plans are final.
		return
	}
	for i := range e.cands {
		if e.cands[i].Spec != spec {
			continue
		}
		c := &e.cands[i]
		if c.MeasNs == 0 {
			c.MeasNs = ns
		} else {
			c.MeasNs = p.cfg.Alpha*ns + (1-p.cfg.Alpha)*c.MeasNs
		}
		c.Probes++
		break
	}
	if !e.calibrated && e.nextProbe(p.cfg.ProbeBudget) < 0 {
		p.finishLocked(e)
	}
}

// finishLocked closes calibration: the measured argmin becomes the
// chosen strategy, a model disagreement counts as a mispredict, and
// the plan persists exactly once. Called with p.mu held.
func (p *Planner) finishLocked(e *entry) {
	if e.calibrated {
		return
	}
	measBest, predBest := -1, 0
	for i := range e.cands {
		c := &e.cands[i]
		if c.PredNs < e.cands[predBest].PredNs {
			predBest = i
		}
		if c.Pruned || c.MeasNs == 0 {
			continue
		}
		if measBest < 0 || c.MeasNs < e.cands[measBest].MeasNs {
			measBest = i
		}
	}
	if measBest < 0 {
		// Nothing measured (should not happen — the default strategy is
		// always probed): keep the safe incumbent.
		measBest = 0
	}
	e.chosen = measBest
	e.calibrated = true
	p.calibrations.Add(1)
	if measBest != predBest {
		p.mispredicts.Add(1)
	}
	p.persistLocked(e)
}

// Calibrated reports whether key has a closed plan.
func (p *Planner) Calibrated(key Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.plans[key]
	return ok && e.calibrated
}

// --- persistence -------------------------------------------------------------

// planFile is the persisted form: the full candidate table (so `ngen
// plan` can render predicted-vs-measured on warm runs), the chosen
// index, and an fnv-1a checksum in the disk cache's idiom.
type planFile struct {
	Version    int         `json:"version"`
	Hash       string      `json:"hash"`
	Arch       string      `json:"arch"`
	Bucket     int         `json:"bucket"`
	Kernel     string      `json:"kernel"`
	Candidates []Candidate `json:"candidates"`
	Chosen     int         `json:"chosen"`
	Sum        uint64      `json:"sum"`
}

func (f *planFile) checksum() uint64 {
	shadow := *f
	shadow.Sum = 0
	raw, err := json.Marshal(&shadow)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(raw)
	return h.Sum64()
}

func (p *Planner) persistLocked(e *entry) {
	if p.store == nil || e.persisted {
		return
	}
	f := &planFile{
		Version: Version, Hash: fmt.Sprintf("%016x", e.key.Hash),
		Arch: e.key.Arch, Bucket: e.key.Bucket, Kernel: e.kernel,
		Candidates: e.cands, Chosen: e.chosen,
	}
	f.Sum = f.checksum()
	raw, err := json.Marshal(f)
	if err != nil {
		return
	}
	if p.store.StorePlan(e.key.ID(), raw) == nil {
		e.persisted = true
		p.persists.Add(1)
	}
}

// loadLocked tries the store for a previously calibrated plan. Corrupt
// or mismatched files are ignored (recalibration overwrites them).
// Called with p.mu held.
func (p *Planner) loadLocked(key Key) (*entry, bool) {
	if p.store == nil {
		return nil, false
	}
	raw, ok := p.store.LoadPlan(key.ID())
	if !ok {
		return nil, false
	}
	var f planFile
	if json.Unmarshal(raw, &f) != nil ||
		f.Version != Version ||
		f.Hash != fmt.Sprintf("%016x", key.Hash) ||
		f.Arch != key.Arch || f.Bucket != key.Bucket ||
		len(f.Candidates) == 0 ||
		f.Chosen < 0 || f.Chosen >= len(f.Candidates) ||
		f.Sum != f.checksum() {
		return nil, false
	}
	e := &entry{key: key, kernel: f.Kernel, cands: f.Candidates,
		chosen: f.Chosen, calibrated: true, persisted: true}
	p.plans[key] = e
	p.loads.Add(1)
	return e, true
}

// --- introspection -----------------------------------------------------------

// View is one plan rendered for telemetry: the chosen strategy with
// its predicted and measured cost, plus the full candidate table.
type View struct {
	Kernel     string      `json:"kernel"`
	Hash       string      `json:"hash"`
	Arch       string      `json:"arch"`
	Bucket     int         `json:"bucket"`
	Spec       string      `json:"spec"`
	PredNs     float64     `json:"pred_ns"`
	MeasNs     float64     `json:"meas_ns"`
	Calibrated bool        `json:"calibrated"`
	Candidates []Candidate `json:"candidates,omitempty"`
}

// Snapshot returns every live plan, sorted by kernel then bucket.
// Candidate slices are copied; mutating them is safe.
func (p *Planner) Snapshot() []View {
	p.mu.Lock()
	out := make([]View, 0, len(p.plans))
	for _, e := range p.plans {
		c := e.cands[e.chosen]
		v := View{
			Kernel: e.kernel, Hash: fmt.Sprintf("%016x", e.key.Hash),
			Arch: e.key.Arch, Bucket: e.key.Bucket,
			Spec: c.Spec.String(), PredNs: c.PredNs, MeasNs: c.MeasNs,
			Calibrated: e.calibrated,
			Candidates: append([]Candidate(nil), e.cands...),
		}
		out = append(out, v)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		if out[i].Bucket != out[j].Bucket {
			return out[i].Bucket < out[j].Bucket
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// KernelViews returns the plans for one kernel name (Snapshot order).
func (p *Planner) KernelViews(kernel string) []View {
	all := p.Snapshot()
	out := all[:0]
	for _, v := range all {
		if v.Kernel == kernel {
			out = append(out, v)
		}
	}
	return out
}

// Stats exposes the planner's cumulative counters for obs gauges
// (plan.* — see docs/OBSERVABILITY.md).
func (p *Planner) Stats() map[string]int64 {
	return map[string]int64{
		"decisions":  p.decisions.Load(),
		"probes":     p.probeRuns.Load(),
		"installs":   p.installs.Load(),
		"calibrated": p.calibrations.Load(),
		"mispredict": p.mispredicts.Load(),
		"loads":      p.loads.Load(),
		"persists":   p.persists.Load(),
	}
}
