package plan

import (
	"bytes"
	"testing"

	"repro/internal/machine"
)

func spec(b, tier string, lanes int) machine.StrategySpec {
	return machine.StrategySpec{Backend: b, Tier: tier, Lanes: lanes}
}

func costs(ns ...float64) []machine.StrategyCost {
	specs := []machine.StrategySpec{
		spec("vm", "opt", 1), spec("vm", "plain", 1), spec("native", "opt", 1),
	}
	out := make([]machine.StrategyCost, len(ns))
	for i, n := range ns {
		out[i] = machine.StrategyCost{Spec: specs[i], HostNs: n}
	}
	return out
}

// TestBucket pins the log2 bucketing: powers of two open their own
// bucket, everything in [2^n, 2^(n+1)) shares it.
func TestBucket(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {1025, 10}}
	for _, c := range cases {
		if got := Bucket(c.bytes); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

// TestLifecycle walks one key through the planner states: unknown →
// install → probe rotation → calibration, with the measured argmin
// winning over the model's pick (and counting a mispredict).
func TestLifecycle(t *testing.T) {
	p := New(Config{ProbeBudget: 2})
	key := Key{Hash: 0xfeed, Arch: "Haswell", Bucket: 10}
	if _, ok := p.Decide(key); ok {
		t.Fatal("Decide hit before any plan was installed")
	}
	// Model says native (80ns) beats opt (100) and plain (120).
	p.Install(key, "k", costs(100, 120, 80))
	p.Observe(key, spec("vm", "opt", 1), 100) // the cold default run

	seen := map[string]int{}
	for i := 0; i < 16 && !p.Calibrated(key); i++ {
		d, ok := p.Decide(key)
		if !ok {
			t.Fatal("Decide missed an installed plan")
		}
		if !d.Probe {
			t.Fatalf("iteration %d: expected a probe while calibrating, got %v", i, d.Spec)
		}
		seen[d.Spec.String()]++
		// Measurement disagrees with the model: opt is actually fastest.
		ns := map[string]float64{"vm/opt/1": 90, "vm/plain/1": 200, "native/opt/1": 150}[d.Spec.String()]
		p.Observe(key, d.Spec, ns)
	}
	if !p.Calibrated(key) {
		t.Fatal("plan never calibrated")
	}
	for s, n := range seen {
		if n > 2 {
			t.Errorf("candidate %s probed %d times, budget is 2", s, n)
		}
	}
	d, ok := p.Decide(key)
	if !ok || d.Probe {
		t.Fatalf("calibrated Decide = %+v, %v", d, ok)
	}
	if d.Spec != spec("vm", "opt", 1) {
		t.Fatalf("measured argmin lost: chose %v", d.Spec)
	}
	if got := p.Stats()["mispredict"]; got != 1 {
		t.Fatalf("model was overruled but mispredict = %d", got)
	}
}

// TestPruning: a candidate predicted beyond PruneRatio × best is never
// probed, and the default (index 0) survives any prediction.
func TestPruning(t *testing.T) {
	p := New(Config{ProbeBudget: 1, PruneRatio: 1.5})
	key := Key{Hash: 1, Arch: "A", Bucket: 4}
	// Best is native (100); plain at 200 exceeds 1.5× and is pruned;
	// the default stays despite predicting 3× the best.
	p.Install(key, "k", costs(300, 200, 100))
	p.Observe(key, spec("vm", "opt", 1), 300)
	for i := 0; i < 8 && !p.Calibrated(key); i++ {
		d, ok := p.Decide(key)
		if !ok {
			t.Fatal("miss")
		}
		if d.Probe && d.Spec == spec("vm", "plain", 1) {
			t.Fatal("pruned candidate was probed")
		}
		p.Observe(key, d.Spec, 100)
	}
	if !p.Calibrated(key) {
		t.Fatal("never calibrated")
	}
	v := p.Snapshot()[0]
	var prunedOK bool
	for _, c := range v.Candidates {
		if c.Spec == spec("vm", "plain", 1) {
			prunedOK = c.Pruned && c.Probes == 0
		}
		if c.Spec == spec("vm", "opt", 1) && c.Pruned {
			t.Fatal("the default strategy must never be pruned")
		}
	}
	if !prunedOK {
		t.Fatal("2×-best candidate escaped the 1.5× prune")
	}
}

// memStore is an in-memory plan.Store recording traffic.
type memStore struct {
	m      map[string][]byte
	stores int
}

func (s *memStore) LoadPlan(id string) ([]byte, bool) { b, ok := s.m[id]; return b, ok }
func (s *memStore) StorePlan(id string, b []byte) error {
	if s.m == nil {
		s.m = map[string][]byte{}
	}
	s.m[id] = append([]byte(nil), b...)
	s.stores++
	return nil
}

// TestPersistence pins the warm-start contract: a calibrated plan
// persists exactly once, a fresh planner over the same store serves it
// with zero probes, and the stored bytes never change afterwards
// (write-once — the determinism gate depends on it).
func TestPersistence(t *testing.T) {
	st := &memStore{}
	p := New(Config{ProbeBudget: 1})
	p.SetStore(st)
	key := Key{Hash: 0xabc, Arch: "Haswell", Bucket: 12}
	p.Install(key, "k", costs(100, 120, 90))
	p.Observe(key, spec("vm", "opt", 1), 100)
	for i := 0; i < 8 && !p.Calibrated(key); i++ {
		d, _ := p.Decide(key)
		p.Observe(key, d.Spec, 100+float64(i))
	}
	if !p.Calibrated(key) || st.stores != 1 {
		t.Fatalf("calibrated=%v stores=%d", p.Calibrated(key), st.stores)
	}
	frozen := append([]byte(nil), st.m[key.ID()]...)

	// Warm planner: loads, decides without probing, never rewrites.
	p2 := New(Config{ProbeBudget: 1})
	p2.SetStore(st)
	d, ok := p2.Decide(key)
	if !ok || d.Probe {
		t.Fatalf("warm Decide = %+v, %v", d, ok)
	}
	for i := 0; i < 4; i++ {
		p2.Observe(key, d.Spec, 80) // post-calibration drift tracking
		p2.Decide(key)
	}
	if st.stores != 1 || !bytes.Equal(st.m[key.ID()], frozen) {
		t.Fatal("warm run rewrote a persisted plan")
	}
	if got := p2.Stats()["probes"]; got != 0 {
		t.Fatalf("warm run ran %d probes, want 0", got)
	}
	if got := p2.Stats()["loads"]; got != 1 {
		t.Fatalf("loads = %d", got)
	}
}

// TestCorruptPlanIgnored: scribbled or mis-keyed plan files miss
// instead of misparse.
func TestCorruptPlanIgnored(t *testing.T) {
	st := &memStore{m: map[string][]byte{}}
	key := Key{Hash: 2, Arch: "A", Bucket: 3}
	st.m[key.ID()] = []byte(`{"version":1,"hash":"junk"`)
	p := New(Config{})
	p.SetStore(st)
	if _, ok := p.Decide(key); ok {
		t.Fatal("corrupt plan served a decision")
	}
	// A valid file under the wrong key must also miss.
	other := Key{Hash: 3, Arch: "A", Bucket: 3}
	p2 := New(Config{ProbeBudget: 1})
	p2.SetStore(st)
	p2.Install(other, "k", costs(100, 120, 90))
	p2.Observe(other, spec("vm", "opt", 1), 100)
	for i := 0; i < 8 && !p2.Calibrated(other); i++ {
		d, _ := p2.Decide(other)
		p2.Observe(other, d.Spec, 100)
	}
	raw := st.m[other.ID()]
	st.m[key.ID()] = raw
	p3 := New(Config{})
	p3.SetStore(st)
	if _, ok := p3.Decide(key); ok {
		t.Fatal("plan for another key was accepted")
	}
}

// TestExploreAll: with pruning disabled every candidate is probed.
func TestExploreAll(t *testing.T) {
	p := New(Config{ProbeBudget: 1, ExploreAll: true})
	key := Key{Hash: 9, Arch: "A", Bucket: 1}
	p.Install(key, "k", costs(100, 1e9, 90)) // plain absurdly slow in the model
	p.Observe(key, spec("vm", "opt", 1), 100)
	probed := map[string]bool{}
	for i := 0; i < 8 && !p.Calibrated(key); i++ {
		d, _ := p.Decide(key)
		if d.Probe {
			probed[d.Spec.String()] = true
		}
		p.Observe(key, d.Spec, 50)
	}
	if !probed["vm/plain/1"] || !probed["native/opt/1"] {
		t.Fatalf("ExploreAll skipped candidates: %v", probed)
	}
}
