package isa

import (
	"testing"
	"testing/quick"
)

func TestParseFamilySpellings(t *testing.T) {
	cases := []struct {
		in   string
		want Family
	}{
		{"SSE4.1", SSE41}, {"SSE41", SSE41}, {"sse4.2", SSE42},
		{"AVX-512", AVX512}, {"AVX512F", AVX512}, {"AVX512_BW", AVX512},
		{"KNC", KNC}, {"KNCNI", KNC}, {"MMX", MMX}, {"FMA", FMA},
		{"SVML", SVML}, {"FP16C", FP16C}, {"RDRAND", RDRAND},
	}
	for _, c := range cases {
		got, ok := ParseFamily(c.in)
		if !ok || got != c.want {
			t.Errorf("ParseFamily(%q) = %v/%v, want %v", c.in, got, ok, c.want)
		}
	}
	if _, ok := ParseFamily("QUANTUM9000"); ok {
		t.Error("unknown family accepted")
	}
}

func TestFamilyRoundTrip(t *testing.T) {
	for _, f := range Families() {
		got, ok := ParseFamily(f.String())
		if !ok || got != f {
			t.Errorf("round trip of %v failed: %v/%v", f, got, ok)
		}
	}
}

func TestImplicationChain(t *testing.T) {
	if !AVX2.Implies(SSE) || !AVX2.Implies(AVX) || !AVX.Implies(SSSE3) {
		t.Error("SSE-stack implication broken")
	}
	if SSE.Implies(AVX) {
		t.Error("implication must not run backwards")
	}
	if AVX512.Implies(KNC) || KNC.Implies(AVX512) {
		t.Error("AVX-512 and KNC are distinct lines")
	}
	if !AVX512.Implies(AVX2) {
		t.Error("AVX-512F machines support AVX2")
	}
}

func TestFeatureSetClosure(t *testing.T) {
	fs := NewFeatureSet(AVX2, FMA)
	for _, f := range []Family{SSE, SSE2, SSE3, SSSE3, SSE41, SSE42, AVX, AVX2, FMA} {
		if !fs.Has(f) {
			t.Errorf("AVX2+FMA set missing %v", f)
		}
	}
	if fs.Has(AVX512) {
		t.Error("feature set over-closed to AVX-512")
	}
	if fs.MaxVectorBits() != 256 {
		t.Errorf("max vector bits = %d", fs.MaxVectorBits())
	}
	fs.Add(AVX512)
	if fs.MaxVectorBits() != 512 {
		t.Errorf("after Add(AVX512): %d", fs.MaxVectorBits())
	}
}

func TestVectorBits(t *testing.T) {
	cases := map[Family]int{MMX: 64, SSE2: 128, AVX: 256, AVX512: 512, POPCNT: 0}
	for f, want := range cases {
		if got := f.VectorBits(); got != want {
			t.Errorf("%v.VectorBits() = %d, want %d", f, got, want)
		}
	}
}

func TestTable1bFamilies(t *testing.T) {
	fams := Table1bFamilies()
	if len(fams) != 13 {
		t.Fatalf("Table 1b lists 13 ISAs, got %d", len(fams))
	}
	if fams[0] != MMX || fams[9] != AVX512 || fams[12] != SVML {
		t.Errorf("Table 1b order wrong: %v", fams)
	}
}

func TestPrimTable2Mapping(t *testing.T) {
	// Table 2 of the paper.
	pairs := []struct {
		p    Prim
		jvm  string
		c    string
		bits int
	}{
		{PrimF32, "Float", "float", 32},
		{PrimF64, "Double", "double", 64},
		{PrimI8, "Byte", "int8_t", 8},
		{PrimU8, "UByte", "uint8_t", 8},
		{PrimI16, "Short", "int16_t", 16},
		{PrimU16, "UShort", "uint16_t", 16},
		{PrimI32, "Int", "int32_t", 32},
		{PrimU32, "UInt", "uint32_t", 32},
		{PrimI64, "Long", "int64_t", 64},
		{PrimU64, "ULong", "uint64_t", 64},
		{PrimBool, "Boolean", "bool", 8},
	}
	for _, c := range pairs {
		if c.p.JVMName() != c.jvm || c.p.CName() != c.c || c.p.Bits() != c.bits {
			t.Errorf("%v: (%s,%s,%d), want (%s,%s,%d)", c.p,
				c.p.JVMName(), c.p.CName(), c.p.Bits(), c.jvm, c.c, c.bits)
		}
	}
}

func TestParsePrimC(t *testing.T) {
	cases := map[string]Prim{
		"unsigned int": PrimU32, "unsigned short": PrimU16,
		"__int64": PrimI64, "unsigned __int64": PrimU64,
		"const float": PrimF32, "char": PrimI8, "size_t": PrimU64,
	}
	for in, want := range cases {
		got, ok := ParsePrimC(in)
		if !ok || got != want {
			t.Errorf("ParsePrimC(%q) = %v/%v, want %v", in, got, ok, want)
		}
	}
}

func TestVecKindLanes(t *testing.T) {
	if M256.Lanes(PrimF32) != 8 || M256d.Lanes(PrimF64) != 4 ||
		M128i.Lanes(PrimI8) != 16 || M512.Lanes(PrimF32) != 16 {
		t.Error("lane math broken")
	}
	v, ok := ParseVecKind("__m256d")
	if !ok || v != M256d {
		t.Errorf("ParseVecKind(__m256d) = %v", v)
	}
}

func TestMicroarchDatabase(t *testing.T) {
	m, err := LookupMicroarch("haswell")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Features.Has(AVX2, FMA, FP16C, RDRAND) {
		t.Error("Haswell missing the paper's required ISAs")
	}
	if m.Features.Has(AVX512) {
		t.Error("Haswell must not have AVX-512")
	}
	if m.CacheLevel(16<<10) != "L1" || m.CacheLevel(100<<10) != "L2" ||
		m.CacheLevel(4<<20) != "L3" || m.CacheLevel(100<<20) != "Mem" {
		t.Error("cache level classification broken")
	}
	if _, err := LookupMicroarch("z80"); err == nil {
		t.Error("unknown microarchitecture accepted")
	}
	if len(Microarchs()) < 4 {
		t.Error("microarchitecture database too small")
	}
}

func TestQuickFeatureSetMonotone(t *testing.T) {
	// Property: adding a family never removes support for another.
	fams := Families()
	err := quick.Check(func(aIdx, bIdx uint8) bool {
		a := fams[int(aIdx)%len(fams)]
		b := fams[int(bIdx)%len(fams)]
		fs := NewFeatureSet(a)
		before := fs.Has(a)
		fs.Add(b)
		return before && fs.Has(a) && fs.Has(b)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestMemoryCategoryHeuristic(t *testing.T) {
	r, w := CatLoad.MemoryCategory()
	if !r || w {
		t.Error("Load category must read only")
	}
	r, w = CatStore.MemoryCategory()
	if r || !w {
		t.Error("Store category must write only")
	}
	r, w = CatArithmetic.MemoryCategory()
	if r || w {
		t.Error("Arithmetic must be memory-free")
	}
}
