package isa

import (
	"fmt"
	"strings"
)

// Prim is a primitive (scalar) machine type. The set mirrors Table 2 of
// the paper: the 12 JVM↔C primitive pairs, plus Void for intrinsics that
// return nothing and MemAddr for raw pointers whose element type is
// unspecified (void*).
type Prim int

const (
	PrimVoid Prim = iota
	PrimBool
	PrimI8
	PrimU8
	PrimI16
	PrimU16
	PrimI32
	PrimU32
	PrimI64
	PrimU64
	PrimF32
	PrimF64
	primCount
)

var primC = map[Prim]string{
	PrimVoid: "void", PrimBool: "bool",
	PrimI8: "int8_t", PrimU8: "uint8_t",
	PrimI16: "int16_t", PrimU16: "uint16_t",
	PrimI32: "int32_t", PrimU32: "uint32_t",
	PrimI64: "int64_t", PrimU64: "uint64_t",
	PrimF32: "float", PrimF64: "double",
}

var primJVM = map[Prim]string{
	PrimVoid: "Unit", PrimBool: "Boolean",
	PrimI8: "Byte", PrimU8: "UByte",
	PrimI16: "Short", PrimU16: "UShort",
	PrimI32: "Int", PrimU32: "UInt",
	PrimI64: "Long", PrimU64: "ULong",
	PrimF32: "Float", PrimF64: "Double",
}

var primGo = map[Prim]string{
	PrimVoid: "struct{}", PrimBool: "bool",
	PrimI8: "int8", PrimU8: "uint8",
	PrimI16: "int16", PrimU16: "uint16",
	PrimI32: "int32", PrimU32: "uint32",
	PrimI64: "int64", PrimU64: "uint64",
	PrimF32: "float32", PrimF64: "float64",
}

// CName returns the C/C++ spelling of the primitive (Table 2 right column).
func (p Prim) CName() string { return primC[p] }

// JVMName returns the managed-runtime spelling (Table 2 left column). In
// this Go reproduction the "JVM side" is the staged frontend; the mapping
// is retained because the unparser and the spec parser both need it.
func (p Prim) JVMName() string { return primJVM[p] }

// GoName returns the Go spelling used by the generated bindings.
func (p Prim) GoName() string { return primGo[p] }

// String returns the C spelling; primitives are usually discussed in
// their C form in the paper.
func (p Prim) String() string { return p.CName() }

// Bits returns the width of the primitive in bits (0 for void).
func (p Prim) Bits() int {
	switch p {
	case PrimBool, PrimI8, PrimU8:
		return 8
	case PrimI16, PrimU16:
		return 16
	case PrimI32, PrimU32, PrimF32:
		return 32
	case PrimI64, PrimU64, PrimF64:
		return 64
	}
	return 0
}

// Signed reports whether the primitive is a signed integer.
func (p Prim) Signed() bool {
	switch p {
	case PrimI8, PrimI16, PrimI32, PrimI64:
		return true
	}
	return false
}

// Unsigned reports whether the primitive is an unsigned integer.
func (p Prim) Unsigned() bool {
	switch p {
	case PrimU8, PrimU16, PrimU32, PrimU64:
		return true
	}
	return false
}

// Float reports whether the primitive is a floating-point type.
func (p Prim) Float() bool { return p == PrimF32 || p == PrimF64 }

// ParsePrimC parses a C type spelling from the XML specification
// ("unsigned int", "__int64", "const float", …) into a Prim.
func ParsePrimC(s string) (Prim, bool) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "const ")
	t = strings.TrimSpace(strings.TrimSuffix(t, "const"))
	switch t {
	case "void":
		return PrimVoid, true
	case "bool", "_Bool":
		return PrimBool, true
	case "char", "signed char", "int8_t", "__int8":
		return PrimI8, true
	case "unsigned char", "uint8_t":
		return PrimU8, true
	case "short", "int16_t", "__int16":
		return PrimI16, true
	case "unsigned short", "uint16_t":
		return PrimU16, true
	case "int", "int32_t", "__int32", "long":
		return PrimI32, true
	case "unsigned int", "uint32_t", "unsigned", "unsigned long":
		return PrimU32, true
	case "long long", "int64_t", "__int64", "ptrdiff_t", "ssize_t":
		return PrimI64, true
	case "unsigned long long", "uint64_t", "unsigned __int64", "size_t":
		return PrimU64, true
	case "float":
		return PrimF32, true
	case "double":
		return PrimF64, true
	}
	return PrimVoid, false
}

// VecKind identifies one of the SIMD register types exposed by the
// intrinsics API (Section 3.1 of the paper). Integer registers carry no
// element type: as in C, __m128i holds 2×64, 4×32, 8×16 or 16×8-bit
// integers depending on the instruction applied to it.
type VecKind int

const (
	VecNone VecKind = iota
	M64             // MMX integer
	M128            // SSE 4×f32
	M128d           // SSE2 2×f64
	M128i           // SSE2 integer
	M256            // AVX 8×f32
	M256d           // AVX 4×f64
	M256i           // AVX integer
	M512            // AVX-512 16×f32
	M512d           // AVX-512 8×f64
	M512i           // AVX-512 integer
	MMask8          // AVX-512 __mmask8
	MMask16         // AVX-512 __mmask16
	MMask32         // AVX-512 __mmask32
	MMask64         // AVX-512 __mmask64
	vecKindCount
)

var vecNames = map[VecKind]string{
	M64: "__m64", M128: "__m128", M128d: "__m128d", M128i: "__m128i",
	M256: "__m256", M256d: "__m256d", M256i: "__m256i",
	M512: "__m512", M512d: "__m512d", M512i: "__m512i",
	MMask8: "__mmask8", MMask16: "__mmask16", MMask32: "__mmask32",
	MMask64: "__mmask64",
}

// String returns the C spelling (__m256d etc.).
func (v VecKind) String() string {
	if s, ok := vecNames[v]; ok {
		return s
	}
	return fmt.Sprintf("VecKind(%d)", int(v))
}

// ParseVecKind parses a C vector type spelling.
func ParseVecKind(s string) (VecKind, bool) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "const ")
	for v, name := range vecNames {
		if name == t {
			return v, true
		}
	}
	return VecNone, false
}

// Bits returns the register width in bits. Mask kinds report their mask
// width (they live in dedicated k-registers).
func (v VecKind) Bits() int {
	switch v {
	case M64:
		return 64
	case M128, M128d, M128i:
		return 128
	case M256, M256d, M256i:
		return 256
	case M512, M512d, M512i:
		return 512
	case MMask8:
		return 8
	case MMask16:
		return 16
	case MMask32:
		return 32
	case MMask64:
		return 64
	}
	return 0
}

// ElemPrim returns the natural element primitive of the register type,
// or PrimVoid for integer registers (whose element type is per-
// instruction) and masks.
func (v VecKind) ElemPrim() Prim {
	switch v {
	case M128, M256, M512:
		return PrimF32
	case M128d, M256d, M512d:
		return PrimF64
	}
	return PrimVoid
}

// Lanes returns the number of elements of prim p that the register holds.
func (v VecKind) Lanes(p Prim) int {
	if p.Bits() == 0 {
		return 0
	}
	return v.Bits() / p.Bits()
}
